// Unit tests for src/model: SystemParams validation and derived quantities,
// CapacityProfile builders and the §4 deficit machinery, Catalog id algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "model/params.hpp"
#include "util/rng.hpp"

namespace m = p2pvod::model;

namespace {
m::SystemParams valid_params() {
  m::SystemParams p;
  p.n = 100;
  p.u = 1.5;
  p.d = 4.0;
  p.m = 100;
  p.c = 4;
  p.k = 4;
  p.mu = 1.2;
  p.video_duration = 20;
  return p;
}
}  // namespace

// ----------------------------------------------------------------- params

TEST(SystemParams, ValidatesGoodConfig) {
  EXPECT_NO_THROW(valid_params().validate());
}

TEST(SystemParams, RejectsZeroN) {
  auto p = valid_params();
  p.n = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SystemParams, RejectsZeroCatalog) {
  auto p = valid_params();
  p.m = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SystemParams, RejectsMuBelowOne) {
  auto p = valid_params();
  p.mu = 0.9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SystemParams, RejectsOverfullStorage) {
  auto p = valid_params();
  p.k = 100;  // 100*100*4 replicas > 4*100*4 slots
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SystemParams, RejectsNegativeUpload) {
  auto p = valid_params();
  p.u = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SystemParams, DerivedCounts) {
  const auto p = valid_params();
  EXPECT_EQ(p.stripe_count(), 400u);
  EXPECT_EQ(p.replica_count(), 1600u);
  EXPECT_EQ(p.slots_per_box(), 16u);
  EXPECT_EQ(p.slot_count(), 1600u);
}

TEST(SystemParams, UploadSlotsFloor) {
  auto p = valid_params();
  p.u = 1.5;
  p.c = 4;
  EXPECT_EQ(p.upload_slots(), 6u);  // ⌊1.5·4⌋
  p.u = 1.24;
  EXPECT_EQ(p.upload_slots(), 4u);  // ⌊4.96⌋
  EXPECT_NEAR(p.u_prime(), 1.0, 1e-12);
}

TEST(SystemParams, UPrimeNeverExceedsU) {
  for (const double u : {0.5, 1.0, 1.1, 1.7, 2.3}) {
    for (const std::uint32_t c : {1u, 2u, 5u, 9u}) {
      auto p = valid_params();
      p.u = u;
      p.c = c;
      EXPECT_LE(p.u_prime(), u + 1e-12);
      EXPECT_GT(p.u_prime(), u - 1.0 / c - 1e-12);  // u' > u - 1/c (§3)
    }
  }
}

TEST(SystemParams, StripeIdRoundTrip) {
  const auto p = valid_params();
  for (m::VideoId v = 0; v < 5; ++v) {
    for (std::uint32_t i = 0; i < p.c; ++i) {
      const auto s = p.stripe_id(v, i);
      const auto ref = p.stripe_ref(s);
      EXPECT_EQ(ref.video, v);
      EXPECT_EQ(ref.index, i);
    }
  }
}

TEST(SystemParams, CatalogFromReplication) {
  EXPECT_EQ(m::SystemParams::catalog_from_replication(100, 4.0, 4), 100u);
  EXPECT_EQ(m::SystemParams::catalog_from_replication(100, 4.0, 7), 57u);
  EXPECT_EQ(m::SystemParams::catalog_from_replication(10, 0.5, 100), 1u);
  EXPECT_THROW((void)m::SystemParams::catalog_from_replication(10, 1.0, 0),
               std::invalid_argument);
}

TEST(SystemParams, MinChunkIsReciprocalC) {
  auto p = valid_params();
  p.c = 8;
  EXPECT_NEAR(p.min_chunk(), 0.125, 1e-12);
}

// ----------------------------------------------------------------- capacity

TEST(Capacity, EmptyMatchesSizeZero) {
  EXPECT_TRUE(m::CapacityProfile().empty());
  const auto prof = m::CapacityProfile::homogeneous(3, 1.5, 4.0);
  EXPECT_FALSE(prof.empty());
  EXPECT_EQ(prof.size(), 3u);
}

TEST(Capacity, HomogeneousProfile) {
  const auto prof = m::CapacityProfile::homogeneous(10, 1.5, 4.0);
  EXPECT_EQ(prof.size(), 10u);
  EXPECT_TRUE(prof.is_homogeneous());
  EXPECT_TRUE(prof.is_proportional());
  EXPECT_NEAR(prof.average_upload(), 1.5, 1e-12);
  EXPECT_NEAR(prof.average_storage(), 4.0, 1e-12);
  EXPECT_NEAR(prof.upload_deficit(1.0), 0.0, 1e-12);
}

TEST(Capacity, TwoClassMix) {
  const auto prof = m::CapacityProfile::two_class(10, 4, 0.5, 2.0, 2.0, 8.0);
  EXPECT_FALSE(prof.is_homogeneous());
  EXPECT_NEAR(prof.average_upload(), (4 * 0.5 + 6 * 2.0) / 10.0, 1e-12);
  EXPECT_EQ(prof.poor_boxes(1.0).size(), 4u);
  EXPECT_EQ(prof.rich_boxes(1.0).size(), 6u);
  EXPECT_NEAR(prof.upload_deficit(1.0), 4 * 0.5, 1e-12);
}

TEST(Capacity, TwoClassRejectsTooManyPoor) {
  EXPECT_THROW(m::CapacityProfile::two_class(5, 6, 0.5, 1, 2, 2),
               std::invalid_argument);
}

TEST(Capacity, ProportionalBuilderKeepsRatio) {
  p2pvod::util::Rng rng(5);
  const auto prof = m::CapacityProfile::proportional(50, 0.5, 3.0, 2.5, rng);
  EXPECT_TRUE(prof.is_proportional());
  for (m::BoxId b = 0; b < prof.size(); ++b) {
    EXPECT_GE(prof.upload(b), 0.5);
    EXPECT_LE(prof.upload(b), 3.0);
    EXPECT_NEAR(prof.storage(b) / prof.upload(b), 2.5, 1e-9);
  }
}

TEST(Capacity, ServerPlusClients) {
  const auto prof = m::CapacityProfile::server_plus_clients(5, 20, 100, 0, 0);
  EXPECT_EQ(prof.upload(0), 20.0);
  EXPECT_EQ(prof.upload(4), 0.0);
  EXPECT_EQ(prof.rich_boxes(1.0).size(), 1u);
  EXPECT_NEAR(prof.upload_deficit(1.0), 4.0, 1e-12);
}

TEST(Capacity, DeficitConditionSection4) {
  // u = 1.55 > 1 + Δ(1)/n = 1 + 0.2 -> satisfied.
  const auto good = m::CapacityProfile::two_class(10, 4, 0.5, 2, 2.25, 8);
  EXPECT_TRUE(good.satisfies_deficit_condition());
  // u = 0.95 < 1 + anything -> violated.
  const auto bad = m::CapacityProfile::homogeneous(10, 0.95, 4);
  EXPECT_FALSE(bad.satisfies_deficit_condition());
}

TEST(Capacity, UploadSlotsFloorPerBox) {
  const auto prof = m::CapacityProfile::homogeneous(3, 1.3, 4.0);
  EXPECT_EQ(prof.upload_slots(0, 10), 13u);
  EXPECT_EQ(prof.upload_slots(0, 3), 3u);  // ⌊3.9⌋
}

TEST(Capacity, StorageSlotsRounds) {
  const auto prof = m::CapacityProfile::homogeneous(3, 1.0, 3.5);
  EXPECT_EQ(prof.storage_slots(0, 2), 7u);
  EXPECT_EQ(prof.total_storage_slots(2), 21u);
}

TEST(Capacity, WithStorageRatio) {
  const auto prof = m::CapacityProfile::two_class(4, 2, 0.5, 9, 2.0, 1);
  const auto balanced = prof.with_storage_ratio(3.0);
  for (m::BoxId b = 0; b < balanced.size(); ++b)
    EXPECT_NEAR(balanced.storage(b), 3.0 * balanced.upload(b), 1e-12);
}

TEST(Capacity, RejectsMismatchedVectors) {
  EXPECT_THROW(m::CapacityProfile({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Capacity, RejectsNegativeValues) {
  EXPECT_THROW(m::CapacityProfile({-1.0}, {1.0}), std::invalid_argument);
}

// ----------------------------------------------------------------- catalog

TEST(Catalog, IdAlgebraRoundTrip) {
  const m::Catalog cat(7, 3, 10);
  EXPECT_EQ(cat.stripe_count(), 21u);
  for (m::VideoId v = 0; v < 7; ++v) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const auto s = cat.stripe_id(v, i);
      EXPECT_EQ(cat.video_of(s), v);
      EXPECT_EQ(cat.index_of(s), i);
      EXPECT_EQ(cat.stripe_ref(s).video, v);
    }
  }
}

TEST(Catalog, StripesOfVideoAreContiguous) {
  const m::Catalog cat(4, 5, 8);
  const auto stripes = cat.stripes_of(2);
  ASSERT_EQ(stripes.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(stripes[i], 10u + i);
}

TEST(Catalog, BoundsChecking) {
  const m::Catalog cat(2, 2, 5);
  EXPECT_THROW((void)cat.stripe_id(2, 0), std::out_of_range);
  EXPECT_THROW((void)cat.stripe_id(0, 2), std::out_of_range);
  EXPECT_THROW((void)cat.video_of(4), std::out_of_range);
  EXPECT_THROW((void)cat.stripes_of(2), std::out_of_range);
  EXPECT_FALSE(cat.contains(4));
  EXPECT_TRUE(cat.contains(3));
}

TEST(Catalog, RejectsDegenerateShapes) {
  EXPECT_THROW(m::Catalog(0, 1, 5), std::invalid_argument);
  EXPECT_THROW(m::Catalog(1, 0, 5), std::invalid_argument);
  EXPECT_THROW(m::Catalog(1, 1, 0), std::invalid_argument);
}

TEST(Catalog, PositionRange) {
  const m::Catalog cat(1, 1, 10);
  EXPECT_TRUE(cat.position_in_range(0));
  EXPECT_TRUE(cat.position_in_range(9));
  EXPECT_FALSE(cat.position_in_range(10));
  EXPECT_FALSE(cat.position_in_range(-1));
}

TEST(Ids, StripeRefHashAndEquality) {
  const m::StripeRef a{3, 1}, b{3, 1}, c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<m::StripeRef>{}(a), std::hash<m::StripeRef>{}(b));
}

TEST(Ids, RequestKeyEquality) {
  const m::RequestKey a{5, 10, 2}, b{5, 10, 2}, c{5, 11, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}
