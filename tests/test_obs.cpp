// Tests for the observability layer (src/obs/): metric registry semantics,
// sharded counter exactness under parallel increments, histogram bucketing,
// snapshot/delta/stability filtering, trace session recording and Chrome
// trace-event output, and the headline determinism contract — the kStable
// metric slice of a scenario run is identical at 1, 4, and 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sink.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace obs = p2pvod::obs;
namespace sc = p2pvod::scenario;
namespace u = p2pvod::util;

namespace {

/// Sets an environment variable for the test's lifetime, restoring the
/// previous value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str()); old != nullptr) {
      old_ = old;
    }
    setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

}  // namespace

// --- clock ------------------------------------------------------------------

TEST(ObsClock, MonotonicNsDoesNotGoBackwards) {
  const std::uint64_t a = obs::monotonic_ns();
  const std::uint64_t b = obs::monotonic_ns();
  EXPECT_GE(b, a);
  const obs::WallTimer timer;
  EXPECT_GE(timer.seconds(), 0.0);
}

// --- registry ---------------------------------------------------------------

TEST(ObsMetrics, CounterRegistrationIsIdempotent) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("flow/x");
  obs::Counter& b = registry.counter("flow/x");
  EXPECT_EQ(&a, &b);
  a.add();
  b.add(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(a.name(), "flow/x");
  EXPECT_EQ(a.stability(), obs::Stability::kStable);
}

TEST(ObsMetrics, KindClashThrows) {
  obs::MetricsRegistry registry;
  (void)registry.counter("m");
  EXPECT_THROW((void)registry.gauge("m"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("m", {1, 2}), std::logic_error);
  (void)registry.histogram("h", {1, 2});
  EXPECT_THROW((void)registry.counter("h"), std::logic_error);
  // Re-registering a histogram with different bounds is a bug, not a merge.
  EXPECT_THROW((void)registry.histogram("h", {1, 2, 3}), std::logic_error);
  (void)registry.histogram("h", {1, 2});  // same bounds: fine
}

TEST(ObsMetrics, HistogramValidatesBounds) {
  obs::MetricsRegistry registry;
  EXPECT_THROW((void)registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("dup", {1, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("desc", {4, 2}),
               std::invalid_argument);
}

TEST(ObsMetrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("h", {1, 2, 4});
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) h.observe(v);
  // Buckets: <=1, <=2, <=4, overflow.
  EXPECT_EQ(h.bucket_counts(),
            (std::vector<std::uint64_t>{2, 1, 2, 2}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 100);
}

TEST(ObsMetrics, GaugeSetAndRecordMax) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("g");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.record_max(3);  // below: no change
  EXPECT_EQ(g.value(), 7);
  g.record_max(11);
  EXPECT_EQ(g.value(), 11);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(ObsMetrics, Pow2BoundsShape) {
  EXPECT_EQ(obs::pow2_bounds(3), (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(ObsMetrics, ShardedCounterIsExactUnderParallelIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("parallel/adds");
  u::ThreadPool pool(8);
  constexpr std::size_t kAdds = 100000;
  u::parallel_for(
      0, kAdds, [&](std::size_t) { counter.add(); }, &pool);
  // Exactly-once accounting: no increment lost to contention or sharding.
  EXPECT_EQ(counter.value(), kAdds);
}

TEST(ObsMetrics, SnapshotIsNameOrderedAndDeltaSubtracts) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("b/counter");
  obs::Gauge& g = registry.gauge("a/gauge");
  obs::Histogram& h = registry.histogram("c/hist", {1, 2});
  c.add(5);
  g.set(9);
  h.observe(1);
  h.observe(3);
  const obs::MetricsSnapshot before = registry.snapshot();

  std::vector<std::string> names;
  for (const auto& [name, value] : before.values) names.push_back(name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"a/gauge", "b/counter", "c/hist"}));

  c.add(2);
  g.set(4);
  h.observe(2);
  const obs::MetricsSnapshot delta = registry.snapshot().delta_since(before);
  EXPECT_EQ(delta.values.at("b/counter").count, 2u);
  // Gauges are instantaneous: the delta keeps the current reading.
  EXPECT_EQ(delta.values.at("a/gauge").gauge, 4);
  EXPECT_EQ(delta.values.at("c/hist").count, 1u);
  EXPECT_EQ(delta.values.at("c/hist").sum, 2u);
  EXPECT_EQ(delta.values.at("c/hist").buckets,
            (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(ObsMetrics, WithStabilityFiltersTheSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("stable/one").add();
  registry.counter("sched/steals", obs::Stability::kScheduling).add(4);
  const obs::MetricsSnapshot all = registry.snapshot();
  const obs::MetricsSnapshot stable =
      all.with_stability(obs::Stability::kStable);
  EXPECT_EQ(stable.values.size(), 1u);
  EXPECT_EQ(stable.values.count("stable/one"), 1u);
  const obs::MetricsSnapshot sched =
      all.with_stability(obs::Stability::kScheduling);
  EXPECT_EQ(sched.values.size(), 1u);
  EXPECT_EQ(sched.values.at("sched/steals").count, 4u);
}

TEST(ObsMetrics, ToJsonCarriesKindStabilityAndValues) {
  obs::MetricsRegistry registry;
  registry.counter("a/c").add(3);
  registry.gauge("a/g", obs::Stability::kWallClock).set(-1);
  registry.histogram("a/h", {2, 4}, obs::Stability::kScheduling).observe(3);
  const u::json::Value doc = registry.snapshot().to_json();
  EXPECT_EQ(doc.at("a/c").at("kind").as_string(), "counter");
  EXPECT_EQ(doc.at("a/c").at("stability").as_string(), "stable");
  EXPECT_DOUBLE_EQ(doc.at("a/c").at("value").as_number(), 3.0);
  EXPECT_EQ(doc.at("a/g").at("kind").as_string(), "gauge");
  EXPECT_EQ(doc.at("a/g").at("stability").as_string(), "wall-clock");
  EXPECT_DOUBLE_EQ(doc.at("a/g").at("value").as_number(), -1.0);
  EXPECT_EQ(doc.at("a/h").at("kind").as_string(), "histogram");
  EXPECT_EQ(doc.at("a/h").at("stability").as_string(), "scheduling");
  EXPECT_DOUBLE_EQ(doc.at("a/h").at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("a/h").at("sum").as_number(), 3.0);
  ASSERT_EQ(doc.at("a/h").at("buckets").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a/h").at("buckets").as_array()[1].as_number(), 1.0);
}

TEST(ObsMetrics, GlobalRegistryHasTheInstrumentedFamilies) {
  // The hot paths register through function-local statics on first use; the
  // global registry must at minimum resolve the names without kind clashes.
  auto& registry = obs::MetricsRegistry::global();
  (void)registry.counter("pool/submitted", obs::Stability::kScheduling);
  (void)registry.counter("flow/dinic_solves");
  (void)registry.counter("sim/rounds");
  (void)registry.counter("sweep/points");
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_GE(snapshot.values.size(), 4u);
}

// --- trace sessions ---------------------------------------------------------

TEST(ObsTrace, InactiveSessionRecordsNothing) {
  ASSERT_FALSE(obs::TraceSession::active());
  {
    OBS_SPAN("test/ignored");
    OBS_INSTANT("test/ignored_instant");
  }
  EXPECT_TRUE(obs::TraceSession::stop().empty());
}

TEST(ObsTrace, RecordsSpansAndInstantsSortedByTimestamp) {
  obs::TraceSession::start();
  ASSERT_TRUE(obs::TraceSession::active());
  {
    OBS_SPAN("test/outer");
    { OBS_SPAN("test/inner"); }
    OBS_INSTANT("test/tick");
  }
  const std::vector<obs::TraceEvent> events = obs::TraceSession::stop();
  EXPECT_FALSE(obs::TraceSession::active());
  ASSERT_EQ(events.size(), 3u);
  std::set<std::string> names;
  for (const obs::TraceEvent& event : events) names.insert(event.name);
  EXPECT_EQ(names, (std::set<std::string>{"test/outer", "test/inner",
                                          "test/tick"}));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  for (const obs::TraceEvent& event : events) {
    if (event.phase == 'X') continue;
    EXPECT_EQ(event.phase, 'i');
    EXPECT_EQ(event.dur_ns, 0u);
  }
}

TEST(ObsTrace, DynamicSpanBuildsNameOnlyWhenActive) {
  obs::TraceSession::start();
  {
    const std::string id = "threshold";
    OBS_SPAN_DYN([&] { return "scenario/" + id; });
  }
  const auto events = obs::TraceSession::stop();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scenario/threshold");
  EXPECT_EQ(events[0].phase, 'X');
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  const std::uint64_t dropped_before = obs::TraceSession::dropped_events();
  obs::TraceSession::Options options;
  options.ring_capacity = 4;
  obs::TraceSession::start(options);
  for (int i = 0; i < 10; ++i) OBS_INSTANT("test/flood");
  const auto events = obs::TraceSession::stop();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(obs::TraceSession::dropped_events() - dropped_before, 6u);
}

TEST(ObsTrace, StartWhileActiveIsANoop) {
  obs::TraceSession::start();
  OBS_INSTANT("test/kept");
  obs::TraceSession::start();  // must not clear the buffer
  OBS_INSTANT("test/kept_too");
  EXPECT_EQ(obs::TraceSession::stop().size(), 2u);
}

TEST(ObsTrace, ChromeJsonHasRequiredFieldsAndRelativeMicroseconds) {
  obs::TraceSession::start();
  {
    OBS_SPAN("test/span");
    OBS_INSTANT("test/instant");
  }
  const auto events = obs::TraceSession::stop();
  const std::string json = obs::TraceSession::to_chrome_json(events);
  const u::json::Value doc = u::json::parse(json);
  const auto& trace_events = doc.at("traceEvents").as_array();
  ASSERT_EQ(trace_events.size(), events.size());
  for (const auto& event : trace_events) {
    EXPECT_TRUE(event.at("name").is_string());
    EXPECT_TRUE(event.at("ph").is_string());
    EXPECT_TRUE(event.at("ts").is_number());
    EXPECT_TRUE(event.at("pid").is_number());
    EXPECT_TRUE(event.at("tid").is_number());
    EXPECT_GE(event.at("ts").as_number(), 0.0);  // relative to earliest
    if (event.at("ph").as_string() == "X") {
      EXPECT_TRUE(event.at("dur").is_number());
    }
    // "cat" is the module prefix of "module/name".
    EXPECT_EQ(event.at("cat").as_string(), "test");
  }
}

TEST(ObsTrace, StopToFileWritesParseableFileAndCreatesDirectories) {
  const std::string dir = testing::TempDir() + "/obs_trace_nested/deeper";
  const std::string path = dir + "/TRACE_test.json";
  std::filesystem::remove_all(testing::TempDir() + "/obs_trace_nested");
  obs::TraceSession::start();
  { OBS_SPAN("test/file_span"); }
  obs::TraceSession::stop_to_file(path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const u::json::Value doc = u::json::parse_file(path);
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
}

// --- scenario integration ---------------------------------------------------

namespace {

/// Sink capturing the completed run so tests can inspect ScenarioRun::metrics.
struct MetricsCapture final : sc::ResultSink {
  std::optional<sc::ScenarioRun> run;
  void on_complete(const sc::Scenario& /*scenario*/,
                   const sc::ScenarioRun& completed,
                   double /*wall_seconds*/) override {
    run = completed;
  }
};

/// Run a builtin scenario on a fresh pool and return the kStable slice of
/// its metric delta.
obs::MetricsSnapshot stable_metrics_with_threads(const std::string& id,
                                                 std::size_t threads) {
  const sc::Scenario& scenario = sc::ScenarioRegistry::builtin().at(id);
  u::ThreadPool pool(threads);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  options.collect_metrics = true;
  MetricsCapture capture;
  sc::run_scenario(scenario, {&capture}, options);
  EXPECT_TRUE(capture.run.has_value());
  EXPECT_TRUE(capture.run->metrics.has_value());
  return capture.run->metrics->with_stability(obs::Stability::kStable);
}

}  // namespace

// The headline determinism contract: every kStable counter/histogram delta
// of a scenario run is identical at 1, 4, and 8 threads. Scheduling metrics
// (pool steals, trace drops) are excluded by construction via the stability
// tag. Uses "threshold" (E2), whose calibration path evaluates a fixed,
// thread-count-independent trial set.
TEST(ObsDeterminism, StableMetricsIdenticalAcrossThreadCounts) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.25");
  const obs::MetricsSnapshot serial =
      stable_metrics_with_threads("threshold", 1);
  const obs::MetricsSnapshot four = stable_metrics_with_threads("threshold", 4);
  const obs::MetricsSnapshot eight =
      stable_metrics_with_threads("threshold", 8);

  ASSERT_FALSE(serial.values.empty());
  // The run must actually have exercised the instrumented hot paths.
  EXPECT_GT(serial.values.at("sim/rounds").count, 0u);
  EXPECT_GT(serial.values.at("sweep/points").count, 0u);

  EXPECT_EQ(serial.values.size(), four.values.size());
  EXPECT_EQ(serial.values.size(), eight.values.size());
  for (const auto& [name, value] : serial.values) {
    ASSERT_EQ(four.values.count(name), 1u) << name;
    ASSERT_EQ(eight.values.count(name), 1u) << name;
    EXPECT_EQ(value, four.values.at(name)) << "metric drifted at 4 threads: "
                                           << name;
    EXPECT_EQ(value, eight.values.at(name)) << "metric drifted at 8 threads: "
                                            << name;
  }
}

TEST(ObsScenario, TraceDirProducesLoadableTraceWithSweepSpans) {
  const std::string dir = testing::TempDir() + "/obs_scenario_trace";
  std::filesystem::remove_all(dir);
  const sc::Scenario& scenario =
      sc::ScenarioRegistry::builtin().at("threshold");
  const ScopedEnv scale("P2PVOD_SCALE", "0.25");
  u::ThreadPool pool(4);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  options.trace_dir = dir;
  std::ostringstream out;
  sc::TableSink sink(out);
  sc::run_scenario(scenario, {&sink}, options);

  const std::string path = dir + "/TRACE_threshold.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  const u::json::Value doc = u::json::parse_file(path);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_sweep_point = false;
  bool saw_scenario_span = false;
  for (const auto& event : events) {
    const std::string& name = event.at("name").as_string();
    if (name == "sweep/point") saw_sweep_point = true;
    if (name.rfind("scenario/threshold", 0) == 0) saw_scenario_span = true;
    EXPECT_NE(event.find("ph"), nullptr);
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("pid"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
  }
  EXPECT_TRUE(saw_sweep_point);
  EXPECT_TRUE(saw_scenario_span);
}

TEST(ObsScenario, ApplyObsEnvReadsTheKnobs) {
  sc::RunOptions options;
  {
    const ScopedEnv metrics("P2PVOD_METRICS", "1");
    const ScopedEnv trace("P2PVOD_TRACE", "/tmp/traces");
    sc::apply_obs_env(options);
    EXPECT_TRUE(options.collect_metrics);
    EXPECT_EQ(options.trace_dir, "/tmp/traces");
  }
  sc::RunOptions off;
  {
    const ScopedEnv metrics("P2PVOD_METRICS", "0");
    sc::apply_obs_env(off);
    EXPECT_FALSE(off.collect_metrics);
    EXPECT_TRUE(off.trace_dir.empty());
  }
}
