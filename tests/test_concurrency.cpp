// Concurrency stress tests for the work-stealing executor: mixed-priority
// floods, nested submission from workers, exception propagation through
// futures, steal-path correctness under contention, and helping waits.
//
// These tests are the ones the TSan CI job (P2PVOD_SANITIZE=thread) runs:
// they are written to maximize cross-thread interleavings (many more tasks
// than workers, submitters racing workers, gates forcing queues to fill)
// rather than to measure anything.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace u = p2pvod::util;

namespace {

/// Blocks pool workers until release() — lets a test queue work behind a
/// running task so pop/steal order and priority handling become observable.
class Gate {
 public:
  void release() {
    {
      const std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Submit a gate-wait blocker and don't return until a worker has actually
/// started executing it: tests that rely on "the worker is busy, the queue
/// is backed up" would otherwise race task pickup (and a test thread helping
/// via try_run_one() could even steal the blocker and deadlock on its own
/// gate).
std::future<void> submit_started_blocker(u::ThreadPool& pool, Gate& gate) {
  // shared_ptr because submit() takes a (copyable) std::function.
  auto started = std::make_shared<std::promise<void>>();
  auto running = started->get_future();
  auto blocker = pool.submit([&gate, started] {
    started->set_value();
    gate.wait();
  });
  running.get();
  return blocker;
}

}  // namespace

TEST(Concurrency, ThousandsOfMixedPriorityTasksAllRunExactlyOnce) {
  u::ThreadPool pool(4);
  constexpr std::size_t kTasks = 3000;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  const u::TaskPriority priorities[] = {
      u::TaskPriority::kHigh, u::TaskPriority::kNormal, u::TaskPriority::kLow};
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(
        pool.submit([&runs, i] { runs[i].fetch_add(1); }, priorities[i % 3]));
  }
  for (auto& future : futures) future.get();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(Concurrency, HigherPrioritiesDrainFirst) {
  // One worker, held at a gate while the queues fill: once released, every
  // high-priority task must run before any low-priority one (ordering within
  // a level is unspecified — LIFO locally, FIFO when stolen).
  u::ThreadPool pool(1);
  Gate gate;
  auto blocker = submit_started_blocker(pool, gate);

  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit(
        [&order_mutex, &order] {
          const std::lock_guard lock(order_mutex);
          order.push_back(2);
        },
        u::TaskPriority::kLow));
  }
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit(
        [&order_mutex, &order] {
          const std::lock_guard lock(order_mutex);
          order.push_back(0);
        },
        u::TaskPriority::kHigh));
  }
  gate.release();
  blocker.get();
  for (auto& future : futures) future.get();

  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], 0) << i;
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(order[i], 2) << i;
}

TEST(Concurrency, StealPrefersHigherPriorityAcrossQueues) {
  // Two workers held at gates so external round-robin submission spreads
  // tasks across BOTH deques; the main thread then drains everything through
  // try_run_one() steals. The steal sweep iterates priority levels in the
  // outer loop, so every kHigh task must run before any kLow one even when
  // they sit in different victims' deques.
  u::ThreadPool pool(2);
  Gate gate;
  auto blocker_a = submit_started_blocker(pool, gate);
  auto blocker_b = submit_started_blocker(pool, gate);

  std::vector<int> order;  // drained single-threadedly by main: no lock
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        pool.submit([&order] { order.push_back(2); }, u::TaskPriority::kLow));
  }
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        pool.submit([&order] { order.push_back(0); }, u::TaskPriority::kHigh));
  }
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pool.try_run_one()) << i;
  gate.release();
  blocker_a.get();
  blocker_b.get();
  for (auto& future : futures) future.get();

  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(order[i], 0) << i;
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(order[i], 2) << i;
}

TEST(Concurrency, NestedSubmitFromWorkersCompletes) {
  // Outer tasks submit inner tasks and block on them with the helping
  // wait(). Must complete at any pool size — including 1, where the lone
  // worker has to execute its own nested submissions while "waiting".
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    u::ThreadPool pool(threads);
    std::atomic<int> inner_runs{0};
    std::vector<std::future<void>> outer;
    for (int i = 0; i < 16; ++i) {
      outer.push_back(pool.submit([&pool, &inner_runs] {
        EXPECT_TRUE(pool.on_worker_thread());
        std::vector<std::future<void>> inner;
        for (int j = 0; j < 8; ++j) {
          inner.push_back(pool.submit([&inner_runs] { ++inner_runs; }));
        }
        for (auto& future : inner) pool.wait(future);
      }));
    }
    for (auto& future : outer) future.get();
    EXPECT_EQ(inner_runs.load(), 16 * 8) << "threads=" << threads;
  }
}

TEST(Concurrency, ExceptionsPropagateThroughFutures) {
  u::ThreadPool pool(2);
  auto throwing = pool.submit(
      [] { throw std::runtime_error("boom from worker"); });
  EXPECT_THROW(
      {
        try {
          throwing.get();
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "boom from worker");
          throw;
        }
      },
      std::runtime_error);

  // The pool survives a throwing task: later tasks still run.
  std::atomic<int> after{0};
  auto ok = pool.submit([&after] { ++after; });
  ok.get();
  EXPECT_EQ(after.load(), 1);

  // parallel_for drains every chunk before rethrowing the first error, even
  // when several chunks throw on different workers. Chunk boundaries are
  // static: grain 4 over [0, 64) with throws at multiples of 8 means every
  // even chunk visits exactly its first index before throwing (1 each) and
  // every odd chunk completes (4 each) — 8*1 + 8*4 = 40 visits, no more, no
  // less, and none after parallel_for returns.
  std::atomic<int> visited{0};
  EXPECT_THROW(
      u::parallel_for(
          0, 64,
          [&visited](std::size_t i) {
            ++visited;
            if (i % 8 == 0) throw std::invalid_argument("chunk error");
          },
          &pool, /*grain=*/4),
      std::invalid_argument);
  const int at_return = visited.load();
  EXPECT_EQ(at_return, 40);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(visited.load(), at_return) << "chunk still ran after the rethrow";
}

TEST(Concurrency, StealPathCoversWorkerLocalBacklog) {
  // One worker builds a large local backlog (nested submits go to its own
  // deque) while it stays busy; the other workers must steal the backlog.
  // Every task runs exactly once and at least one steal must have happened
  // for the producer's work to finish this fast... correctness is what we
  // assert: exactly-once execution and no lost tasks.
  u::ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  std::vector<std::atomic<int>> runs(kTasks);
  Gate gate;

  std::vector<std::future<void>> nested(kTasks);
  auto producer = pool.submit([&pool, &runs, &nested, &gate] {
    for (std::size_t i = 0; i < kTasks; ++i) {
      nested[i] = pool.submit([&runs, i] { runs[i].fetch_add(1); });
    }
    gate.release();
    // Keep the producer busy so thieves (not the local LIFO pop) get a
    // chance at most of the backlog.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  producer.get();
  gate.wait();
  for (auto& future : nested) future.get();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(Concurrency, ExternalSubmittersRaceWorkers) {
  // Several plain std::threads hammer submit() concurrently; round-robin
  // distribution plus stealing must neither lose nor duplicate tasks.
  u::ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(kSubmitters * kPerSubmitter);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &total, &futures, &futures_mutex] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        auto future = pool.submit([&total] { ++total; });
        const std::lock_guard lock(futures_mutex);
        futures.push_back(std::move(future));
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  for (auto& future : futures) future.get();
  EXPECT_EQ(total.load(), kSubmitters * kPerSubmitter);
}

TEST(Concurrency, TryRunOneHelpsFromNonWorkerThreads) {
  // A gated pool cannot make progress on its own; the main thread drains the
  // backlog through try_run_one() steals.
  u::ThreadPool pool(1);
  Gate gate;
  auto blocker = submit_started_blocker(pool, gate);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&runs] { ++runs; }));
  }
  EXPECT_FALSE(pool.on_worker_thread());
  while (runs.load() < 32) {
    if (!pool.try_run_one()) std::this_thread::yield();
  }
  EXPECT_EQ(runs.load(), 32);
  gate.release();
  blocker.get();
  for (auto& future : futures) future.get();
  // Nothing left: try_run_one reports idle.
  EXPECT_FALSE(pool.try_run_one());
}

TEST(Concurrency, DestructorDrainsQueuedTasks) {
  // Same contract as the old single-queue pool: every submitted future
  // completes even when the pool is destroyed immediately after submission.
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  {
    u::ThreadPool pool(2);
    for (int i = 0; i < 256; ++i) {
      futures.push_back(pool.submit([&runs] { ++runs; }));
    }
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(runs.load(), 256);
}

TEST(Concurrency, CurrentPoolIdentifiesOwningPoolOnly) {
  u::ThreadPool pool_a(2);
  u::ThreadPool pool_b(2);
  EXPECT_EQ(u::ThreadPool::current(), nullptr);
  auto in_a = pool_a.submit([&pool_a, &pool_b] {
    EXPECT_EQ(u::ThreadPool::current(), &pool_a);
    EXPECT_TRUE(pool_a.on_worker_thread());
    EXPECT_FALSE(pool_b.on_worker_thread());
  });
  in_a.get();
  EXPECT_EQ(u::ThreadPool::current(), nullptr);
}

TEST(Concurrency, PoolStatsCountEveryTaskExactlyOnce) {
  // The accounting identity: every task leaves a queue through exactly one of
  // pop-local or steal, so after a full drain submitted == executed_local +
  // executed_stolen, with the local/stolen split free to vary run to run.
  u::ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  std::atomic<std::size_t> runs{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&runs] { runs.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(runs.load(), kTasks);

  const u::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, kTasks);
  EXPECT_EQ(stats.executed_local + stats.executed_stolen, kTasks);
  EXPECT_EQ(stats.executed(), kTasks);
  // No try_run_one()/wait() in this test: nothing ran via helping.
  EXPECT_EQ(stats.helping_runs, 0u);
  ASSERT_EQ(stats.per_worker_executed.size(), pool.size());
  std::uint64_t on_workers = 0;
  for (const std::uint64_t executed : stats.per_worker_executed) {
    on_workers += executed;
  }
  // Every execution happened on a worker thread (the main thread only
  // blocked on futures).
  EXPECT_EQ(on_workers, kTasks);
}

TEST(Concurrency, PoolStatsAttributeHelpingRunsToTheIdentity) {
  // Block both workers, drain the backlog from the main thread: helping runs
  // are counted separately but the dequeued tasks still land in the
  // local/stolen split, so the exactly-once identity keeps holding.
  u::ThreadPool pool(2);
  Gate gate;
  auto blocker_a = submit_started_blocker(pool, gate);
  auto blocker_b = submit_started_blocker(pool, gate);
  constexpr std::size_t kTasks = 64;
  std::atomic<std::size_t> runs{0};
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&runs] { runs.fetch_add(1); }));
  }
  while (runs.load() < kTasks) {
    if (!pool.try_run_one()) std::this_thread::yield();
  }
  gate.release();
  blocker_a.get();
  blocker_b.get();
  for (auto& future : futures) future.get();

  const u::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, kTasks + 2);
  EXPECT_EQ(stats.executed(), kTasks + 2);
  // Workers were gated, so the main thread ran the entire backlog.
  EXPECT_EQ(stats.helping_runs, kTasks);
  std::uint64_t on_workers = 0;
  for (const std::uint64_t executed : stats.per_worker_executed) {
    on_workers += executed;
  }
  // Only the two blockers actually ran on worker threads.
  EXPECT_EQ(on_workers, 2u);
}

TEST(Concurrency, ParallelForUnderContentionIsExactlyOnce) {
  // Two concurrent parallel_for calls from different external threads over
  // the same pool: chunks interleave arbitrarily but each index of each
  // range must be visited exactly once.
  u::ThreadPool pool(4);
  constexpr std::size_t kCount = 4096;
  std::vector<std::atomic<int>> hits_a(kCount);
  std::vector<std::atomic<int>> hits_b(kCount);
  std::thread other([&pool, &hits_b] {
    u::parallel_for(
        0, kCount, [&hits_b](std::size_t i) { hits_b[i].fetch_add(1); }, &pool,
        /*grain=*/16);
  });
  u::parallel_for(
      0, kCount, [&hits_a](std::size_t i) { hits_a[i].fetch_add(1); }, &pool,
      /*grain=*/16);
  other.join();
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits_a[i].load(), 1) << i;
    ASSERT_EQ(hits_b[i].load(), 1) << i;
  }
}
