// Unit tests for src/util: RNG determinism and distributions, log-space math,
// statistics, table rendering, thread pool, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logmath.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace u = p2pvod::util;

// ----------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  u::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMixIsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 2000; ++x)
    outputs.insert(u::splitmix64_mix(x));
  EXPECT_EQ(outputs.size(), 2000u);
}

TEST(Rng, ChildSeedsIndependentOfParentState) {
  u::Rng parent(7);
  (void)parent();
  (void)parent();
  u::Rng fresh(7);
  EXPECT_EQ(parent.child(3).seed(), fresh.child(3).seed());
}

TEST(Rng, ChildSeedsDifferByIndex) {
  EXPECT_NE(u::child_seed(1, 0), u::child_seed(1, 1));
  EXPECT_NE(u::child_seed(1, 0), u::child_seed(2, 0));
}

TEST(Rng, NextBelowStaysInRange) {
  u::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  u::Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  u::Rng rng(11);
  std::array<int, 5> counts{};
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(5)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / 5, kSamples / 50);
  }
}

TEST(Rng, NextBetweenInclusive) {
  u::Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_between(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  u::Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  u::Rng rng(1);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Rng, BernoulliFrequency) {
  u::Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  u::Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  u::Rng rng(23);
  const auto perm = rng.permutation(257);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  u::Rng rng(29);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, JumpChangesStream) {
  u::Xoshiro256StarStar a(99), b(99);
  b.jump();
  EXPECT_NE(a(), b());
}

// ----------------------------------------------------------------- logmath

TEST(LogMath, FactorialSmallValues) {
  EXPECT_NEAR(u::log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(u::log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(u::log_factorial(5), std::log(120.0), 1e-9);
}

TEST(LogMath, FactorialNegativeThrows) {
  EXPECT_THROW((void)u::log_factorial(-1), std::invalid_argument);
}

TEST(LogMath, BinomialMatchesPascal) {
  EXPECT_NEAR(u::log_binomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(u::log_binomial(52, 5), std::log(2598960.0), 1e-6);
}

TEST(LogMath, BinomialZeroCases) {
  EXPECT_EQ(u::log_binomial(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(u::log_binomial(5, -1), -std::numeric_limits<double>::infinity());
  EXPECT_NEAR(u::log_binomial(5, 0), 0.0, 1e-12);
  EXPECT_NEAR(u::log_binomial(5, 5), 0.0, 1e-12);
}

TEST(LogMath, CompositionsStarsAndBars) {
  // #multisets of size 5 using exactly 3 distinct symbols: C(4,2) = 6.
  EXPECT_NEAR(u::log_compositions(5, 3), std::log(6.0), 1e-9);
  EXPECT_EQ(u::log_compositions(2, 3),
            -std::numeric_limits<double>::infinity());
}

TEST(LogMath, LogSumExpBasics) {
  const std::vector<double> values{std::log(1.0), std::log(2.0),
                                   std::log(3.0)};
  EXPECT_NEAR(u::log_sum_exp(values), std::log(6.0), 1e-12);
}

TEST(LogMath, LogSumExpHandlesLargeMagnitudes) {
  const std::vector<double> values{1000.0, 1000.0};
  EXPECT_NEAR(u::log_sum_exp(values), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogMath, LogSumExpEmptyIsNegInf) {
  EXPECT_EQ(u::log_sum_exp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogMath, LogAddExp) {
  EXPECT_NEAR(u::log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  EXPECT_NEAR(u::log_add_exp(-std::numeric_limits<double>::infinity(), 1.5),
              1.5, 1e-12);
}

TEST(LogMath, ExpClamped) {
  EXPECT_EQ(u::exp_clamped(800.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(u::exp_clamped(-800.0), 0.0);
  EXPECT_NEAR(u::exp_clamped(1.0), std::exp(1.0), 1e-12);
}

TEST(LogMath, XlogyZeroConvention) {
  EXPECT_EQ(u::xlogy(0.0, 0.0), 0.0);
  EXPECT_NEAR(u::xlogy(2.0, std::exp(1.0)), 2.0, 1e-12);
}

TEST(LogMath, AccumulatorMatchesDirectSum) {
  u::LogSumAccumulator acc;
  double direct = 0.0;
  for (int i = 1; i <= 50; ++i) {
    const double p = 1.0 / (i * i);
    acc.add_log(std::log(p));
    direct += p;
  }
  EXPECT_NEAR(acc.total(), direct, 1e-9);
  EXPECT_EQ(acc.count(), 50u);
}

TEST(LogMath, AccumulatorIgnoresNegInfTerms) {
  u::LogSumAccumulator acc;
  acc.add_log(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(acc.log_total(), -std::numeric_limits<double>::infinity());
  acc.add_log(0.0);  // + 1.0
  EXPECT_NEAR(acc.total(), 1.0, 1e-12);
}

// ----------------------------------------------------------------- stats

TEST(Stats, OnlineMeanVariance) {
  u::OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, MergeEqualsConcatenation) {
  u::OnlineStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 0.5);
    all.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, SingleSampleHasZeroVariance) {
  u::OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Stats, SumSurvivesCatastrophicCancellation) {
  // A mean*count reconstruction drops the unit addends entirely once the
  // huge value dominates the Welford mean; the compensated running total
  // keeps every bit of them.
  u::OnlineStats s;
  s.add(1e16);
  for (int i = 0; i < 1000; ++i) s.add(1.0);
  s.add(-1e16);
  EXPECT_DOUBLE_EQ(s.sum(), 1000.0);
  EXPECT_EQ(s.count(), 1002u);
}

TEST(Stats, SumOfPlainSamplesIsExact) {
  u::OnlineStats s;
  double expected = 0.0;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
    expected += x;
  }
  EXPECT_DOUBLE_EQ(s.sum(), expected);
}

TEST(Stats, MergePreservesCompensatedSum) {
  u::OnlineStats a, b;
  a.add(1e16);
  for (int i = 0; i < 500; ++i) a.add(1.0);
  for (int i = 0; i < 500; ++i) b.add(1.0);
  b.add(-1e16);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum(), 1000.0);
  EXPECT_EQ(a.count(), 1002u);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_NEAR(u::quantile({1, 2, 3, 4}, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(u::quantile({1, 2, 3, 4}, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(u::quantile({1, 2, 3, 4}, 1.0), 4.0, 1e-12);
}

TEST(Stats, QuantileEmptyThrows) {
  EXPECT_THROW((void)u::quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, WilsonIntervalContainsEstimate) {
  const auto p = u::wilson_interval(7, 10);
  EXPECT_NEAR(p.estimate, 0.7, 1e-12);
  EXPECT_LT(p.lower, 0.7);
  EXPECT_GT(p.upper, 0.7);
  EXPECT_GE(p.lower, 0.0);
  EXPECT_LE(p.upper, 1.0);
}

TEST(Stats, WilsonIntervalExtremes) {
  const auto all = u::wilson_interval(10, 10);
  EXPECT_EQ(all.estimate, 1.0);
  EXPECT_LT(all.lower, 1.0);  // still uncertain with 10 trials
  const auto none = u::wilson_interval(0, 10);
  EXPECT_EQ(none.estimate, 0.0);
  EXPECT_GT(none.upper, 0.0);
}

TEST(Stats, WilsonZeroTrials) {
  const auto p = u::wilson_interval(0, 0);
  EXPECT_EQ(p.estimate, 0.0);
}

TEST(Stats, HistogramPercentiles) {
  u::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(0.99), 99);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 1e-12);
}

TEST(Stats, HistogramWeights) {
  u::Histogram h;
  h.add(3, 5);
  h.add(10, 1);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.percentile(0.5), 3);
  EXPECT_EQ(h.percentile(1.0), 10);
}

TEST(Stats, HistogramEmptyThrows) {
  u::Histogram h;
  EXPECT_THROW((void)h.min(), std::logic_error);
  EXPECT_THROW((void)h.percentile(0.5), std::logic_error);
}

// ----------------------------------------------------------------- table

TEST(Table, AlignedOutputHasHeaderRule) {
  u::Table t("demo");
  t.set_header({"a", "bb"});
  t.begin_row().cell("x").cell(std::int64_t{42});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  u::Table t;
  t.set_header({"name"});
  t.begin_row().cell("a,b");
  t.begin_row().cell("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, BoolAndDoubleFormatting) {
  u::Table t;
  t.begin_row().cell(true).cell(false).cell(3.14159, 3);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("yes"), std::string::npos);
  EXPECT_NE(text.find("no"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
}

TEST(Table, FormatDoubleSpecials) {
  EXPECT_EQ(u::Table::format_double(std::nan("")), "nan");
  EXPECT_EQ(u::Table::format_double(INFINITY), "inf");
  EXPECT_EQ(u::Table::format_double(-INFINITY), "-inf");
}

TEST(Table, ColumnsIsMaxWidth) {
  u::Table t;
  t.set_header({"a"});
  t.begin_row().cell("1").cell("2").cell("3");
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 1u);
}

// ----------------------------------------------------------------- threads

TEST(ThreadPool, RunsSubmittedTasks) {
  u::ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<int> hits(100, 0);
  u::parallel_for(0, 100, [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool called = false;
  u::parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  const auto out = u::parallel_map<std::size_t>(
      50, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SubmitWithPriorityRunsTask) {
  u::ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto high = pool.submit([&counter] { ++counter; }, u::TaskPriority::kHigh);
  auto low = pool.submit([&counter] { ++counter; }, u::TaskPriority::kLow);
  high.get();
  low.get();
  EXPECT_EQ(counter.load(), 2);
}

// --- parallel_for grain-size properties: every grain choice must cover the
// --- range exactly once, whatever its relation to range and worker count.

namespace {

/// Runs parallel_for over [begin, end) with the given pool/grain and asserts
/// exactly-once coverage.
void expect_covers_once(std::size_t begin, std::size_t end,
                        u::ThreadPool* pool, std::size_t grain) {
  std::vector<std::atomic<int>> hits(end);
  u::parallel_for(
      begin, end, [&hits](std::size_t i) { hits[i].fetch_add(1); }, pool,
      grain);
  for (std::size_t i = 0; i < end; ++i) {
    ASSERT_EQ(hits[i].load(), i < begin ? 0 : 1)
        << "i=" << i << " grain=" << grain;
  }
}

}  // namespace

TEST(ParallelForGrain, EmptyRangeNeverCallsBody) {
  u::ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{100}}) {
    bool called = false;
    u::parallel_for(
        7, 7, [&](std::size_t) { called = true; }, &pool, grain);
    EXPECT_FALSE(called) << grain;
    // Inverted range behaves as empty, not as a crash or wraparound.
    u::parallel_for(
        9, 3, [&](std::size_t) { called = true; }, &pool, grain);
    EXPECT_FALSE(called) << grain;
  }
}

TEST(ParallelForGrain, RangeSmallerThanWorkerCount) {
  u::ThreadPool pool(8);
  for (const std::size_t grain :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    expect_covers_once(0, 3, &pool, grain);
  }
}

TEST(ParallelForGrain, GrainLargerThanRangeDegradesToSerial) {
  u::ThreadPool pool(4);
  expect_covers_once(0, 5, &pool, 100);
  expect_covers_once(2, 6, &pool, 4);  // exactly one chunk
}

TEST(ParallelForGrain, AssortedGrainsCoverAssortedRanges) {
  u::ThreadPool pool(3);
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{64},
        std::size_t{1000}}) {
    for (const std::size_t grain :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{64},
          std::size_t{5000}}) {
      expect_covers_once(0, count, &pool, grain);
    }
  }
}

TEST(ParallelForGrain, NonZeroBeginRespectsOffsets) {
  u::ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}}) {
    expect_covers_once(13, 77, &pool, grain);
  }
}

TEST(ParallelForGrain, ResultsIndependentOfGrainAndThreads) {
  // The same deterministic body must produce identical outputs whatever the
  // chunking: grain only changes scheduling, never the index->value map.
  const std::function<std::uint64_t(std::size_t)> body =
      [](std::size_t i) { return u::splitmix64_mix(i); };
  u::ThreadPool serial(1);
  u::ThreadPool wide(4);
  const auto reference = u::parallel_map<std::uint64_t>(500, body, &serial);
  for (const std::size_t grain :
       {std::size_t{1}, std::size_t{9}, std::size_t{128}, std::size_t{1000}}) {
    EXPECT_EQ(u::parallel_map<std::uint64_t>(500, body, &wide, grain),
              reference)
        << grain;
  }
}

TEST(ParallelForGrain, EnvGrainKnobIsHonored) {
  // P2PVOD_GRAIN only changes chunk shapes; coverage and results must not
  // move. (Value 1 maximizes task count — the worst case for bookkeeping.)
  u::ThreadPool pool(4);
  setenv("P2PVOD_GRAIN", "1", 1);
  expect_covers_once(0, 37, &pool, 0);
  setenv("P2PVOD_GRAIN", "1000000", 1);
  expect_covers_once(0, 37, &pool, 0);
  setenv("P2PVOD_GRAIN", "garbage", 1);
  expect_covers_once(0, 37, &pool, 0);
  unsetenv("P2PVOD_GRAIN");
  expect_covers_once(0, 37, &pool, 0);
}

// ----------------------------------------------------------------- cli

TEST(Cli, ParsesEqualsAndSpaceForms) {
  // Note: a bare flag followed by a non-flag token would consume it as the
  // flag's value (--u 1.5 style), so bare flags go last or use --flag=true.
  const char* argv[] = {"prog", "pos1", "--n=100", "--u", "1.5", "--flag"};
  u::ArgParser args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_NEAR(args.get_double("u", 0.0), 1.5, 1e-12);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  u::ArgParser args(1, argv);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_string("missing", "x"), "x");
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, DeclaredBareFlagsDoNotConsumePositionals) {
  const char* argv[] = {"prog", "--all", "run-me", "--depth", "3", "too"};
  u::ArgParser args(6, argv, {"all"});
  EXPECT_TRUE(args.get_bool("all", false));
  EXPECT_EQ(args.get_int("depth", 0), 3);
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"run-me", "too"}));
  // Without the declaration the old greedy behavior stands.
  u::ArgParser greedy(6, argv);
  EXPECT_EQ(greedy.get_string("all", ""), "run-me");
  EXPECT_EQ(greedy.positional(), (std::vector<std::string>{"too"}));
}

TEST(Cli, BoolParsingVariants) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=on", "--d=false"};
  u::ArgParser args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Cli, BenchScaleDefaultsToOne) {
  // No P2PVOD_SCALE in the test environment.
  EXPECT_GT(u::bench_scale(), 0.0);
}

TEST(Cli, MalformedNumericOptionsThrowInvalidArgument) {
  const char* argv[] = {"prog", "--depth=abc", "--ratio=x", "--seed=y"};
  u::ArgParser args(4, argv);
  EXPECT_THROW((void)args.get_int("depth", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("ratio", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_seed("seed", 0), std::invalid_argument);
}

TEST(Cli, OptionNamesListsCommandLineFlags) {
  const char* argv[] = {"prog", "--b=1", "--a", "pos"};
  u::ArgParser args(4, argv, {"a"});
  EXPECT_EQ(args.option_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, ScaledCountSurvivesAbsurdScales) {
  // llround on a double beyond long long is unspecified; the clamp must win.
  setenv("P2PVOD_SCALE", "1e18", 1);
  EXPECT_EQ(u::scaled_count(48, 2), 0xffffffffu);
  unsetenv("P2PVOD_SCALE");
}

// ----------------------------------------------------------------- json

TEST(Json, ParseRoundTripsAllValueKinds) {
  const std::string text =
      R"({"null":null,"t":true,"f":false,"num":-12.5,"int":42,)"
      R"("str":"a\"b\\c\n","arr":[1,[2],{}],"obj":{"nested":"x"}})";
  const auto doc = u::json::parse(text);
  EXPECT_TRUE(doc.at("null").is_null());
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("num").as_number(), -12.5);
  EXPECT_DOUBLE_EQ(doc.at("int").as_number(), 42.0);
  EXPECT_EQ(doc.at("str").as_string(), "a\"b\\c\n");
  EXPECT_EQ(doc.at("arr").as_array().size(), 3u);
  EXPECT_EQ(doc.at("obj").at("nested").as_string(), "x");
  // Compact dump re-parses to the same structure.
  const auto again = u::json::parse(doc.dump());
  EXPECT_EQ(again.at("str").as_string(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(again.at("num").as_number(), -12.5);
}

TEST(Json, NumberFormattingRoundTrips) {
  // Integral doubles print without a fraction; others with full precision.
  EXPECT_EQ(u::json::Value(3.0).dump(), "3");
  EXPECT_EQ(u::json::Value(-7).dump(), "-7");
  const double pi = 3.141592653589793;
  EXPECT_DOUBLE_EQ(u::json::parse(u::json::Value(pi).dump()).as_number(), pi);
  const double tiny = 1.2345678901234567e-100;
  EXPECT_DOUBLE_EQ(u::json::parse(u::json::Value(tiny).dump()).as_number(),
                   tiny);
}

TEST(Json, ScientificNotationAndUnicodeEscapes) {
  EXPECT_DOUBLE_EQ(u::json::parse("1.5e3").as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(u::json::parse("-2E-2").as_number(), -0.02);
  // \u escapes decode to UTF-8 (two- and three-byte forms), and raw UTF-8
  // passes through untouched.
  EXPECT_EQ(u::json::parse("\"A\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(u::json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  EXPECT_EQ(u::json::parse("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW((void)u::json::parse(""), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("1 2"), std::runtime_error);  // trailing
  EXPECT_THROW((void)u::json::parse("{}").at("missing"), std::runtime_error);
  EXPECT_THROW((void)u::json::parse("[]").as_object(), std::runtime_error);
}

TEST(Json, ObjectKeysKeepInsertionOrder) {
  u::json::Value doc{u::json::Value::Object{}};
  doc.set("z", 1);
  doc.set("a", 2);
  EXPECT_EQ(doc.dump(), R"({"z":1,"a":2})");
  EXPECT_EQ(doc.find("missing"), nullptr);
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 2.0);
}
