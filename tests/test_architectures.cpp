// Architecture tests: §1 of the paper claims the model "encompasses various
// architectures such as a peer-assisted server or a distributed server
// serving purely client boxes (i.e. with no upload capacity)". These tests
// exercise exactly those corners, plus failure-injection tests for the
// simulator's contract with strategies.
#include <gtest/gtest.h>

#include "alloc/permutation.hpp"
#include "core/vod_system.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "sim/simulator.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"
#include "workload/zipf.hpp"

namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace s = p2pvod::sim;
namespace w = p2pvod::workload;
namespace h = p2pvod::hetero;

// ------------------------------------------------ pure server architecture

namespace {

/// One server (all storage, big upload) + clients with zero upload/storage.
struct ServerWorld {
  ServerWorld(std::uint32_t clients, double server_upload)
      : profile(m::CapacityProfile::server_plus_clients(
            clients + 1, server_upload, /*server storage=*/50.0,
            /*client upload=*/0.0, /*client storage=*/0.0)),
        catalog(/*m=*/8, /*c=*/4, /*T=*/12) {}

  m::CapacityProfile profile;
  m::Catalog catalog;
};

}  // namespace

TEST(Architectures, PureServerCompensatesZeroUploadClients) {
  ServerWorld world(8, 30.0);
  // Reservation per client: u* + 1 - 2*0 = 2.5; headroom 30 - 1.5 = 28.5.
  const auto plan = h::Compensator::plan(world.profile, 1.5, 4, 1.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->poor_count(), 8u);
  for (m::BoxId b = 1; b <= 8; ++b) EXPECT_EQ(plan->relay[b], 0u);
  plan->check(world.profile);
}

TEST(Architectures, PureServerFleetStreamsFromStorage) {
  ServerWorld world(8, 30.0);
  const auto plan = h::Compensator::plan(world.profile, 1.5, 4, 1.0);
  ASSERT_TRUE(plan.has_value());

  // All stripes on the server box 0.
  std::vector<a::Allocation::Placement> placements;
  for (m::StripeId stripe = 0; stripe < world.catalog.stripe_count(); ++stripe)
    placements.push_back({0, stripe});
  const a::Allocation allocation(world.profile.size(),
                                 world.catalog.stripe_count(),
                                 std::move(placements));

  h::RelayStrategy strategy(*plan);
  s::SimulatorOptions options;
  options.capacity_override = plan->capacity_slots();
  s::Simulator sim(world.catalog, world.profile, allocation, strategy,
                   options);
  sim.step({{1, 0}, {2, 1}});
  for (int t = 1; t < 30; ++t) sim.step({});

  const auto& report = sim.report();
  EXPECT_TRUE(report.success);
  // The server holds every stripe: everything is forwarded from storage over
  // the reserved upload — zero network (matched) requests.
  EXPECT_EQ(report.requests_issued, 0u);
  EXPECT_EQ(report.sessions_completed, 2u);
}

TEST(Architectures, UnderProvisionedServerCannotCompensate) {
  ServerWorld world(8, 5.0);  // headroom 3.5 < 8 * 2.5
  EXPECT_FALSE(h::Compensator::plan(world.profile, 1.5, 4, 1.0).has_value());
}

// A *distributed* server: several server boxes, many zero-upload clients.
TEST(Architectures, DistributedServerSharesClients) {
  std::vector<double> upload(12, 0.0), storage(12, 0.0);
  upload[0] = upload[1] = upload[2] = 12.0;
  storage[0] = storage[1] = storage[2] = 24.0;
  const m::CapacityProfile profile(std::move(upload), std::move(storage));
  const auto plan = h::Compensator::plan(profile, 1.5, 4, 1.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->poor_count(), 9u);
  // 9 clients, each reserving 2.5: needs 22.5 total; per-server headroom
  // 10.5 hosts at most 4 -> all three servers must share.
  std::array<int, 3> hosted{};
  for (m::BoxId b = 3; b < 12; ++b) {
    const auto r = plan->relay[b];
    ASSERT_LT(r, 3u);
    ++hosted[r];
  }
  for (const int h_count : hosted) EXPECT_GT(h_count, 0);
  plan->check(profile);
}

// Peer-assisted server: clients have *some* upload; the server absorbs the
// deficit, peers swarm the rest (the middle ground of §1).
TEST(Architectures, PeerAssistedServerRuns) {
  const std::uint32_t n = 13;
  std::vector<double> upload(n, 0.8), storage(n, 2.0);
  upload[0] = 20.0;
  storage[0] = 40.0;
  const m::CapacityProfile profile(std::move(upload), std::move(storage));
  const auto plan = h::Compensator::plan(profile, 1.5, 8, 1.0);
  ASSERT_TRUE(plan.has_value()) << "server headroom must cover 12 * 0.9";

  const m::Catalog catalog(10, 8, 12);
  p2pvod::util::Rng rng(77);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, 3, rng);
  h::RelayStrategy strategy(*plan);
  s::SimulatorOptions options;
  options.capacity_override = plan->capacity_slots();
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  w::ZipfDemand audience(10, 0.8, 0.15, 99);
  w::GrowthLimiter limited(audience, 1.2);
  const auto report = sim.run(limited, 40);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_GT(report.demands_admitted, 0u);
}

// ------------------------------------------------ failure injection

namespace {

/// Strategy that violates the simulator contract: issues in the past.
class TimeTravelStrategy final : public s::RequestStrategy {
 public:
  void plan(m::BoxId b, m::VideoId v, std::uint64_t, m::Round now,
            s::Simulator& sim, std::vector<s::PlannedRequest>& out) override {
    out.push_back(s::PlannedRequest::direct(
        b, sim.catalog().stripe_id(v, 0), now - 1));
  }
  [[nodiscard]] std::string name() const override { return "time-travel"; }
};

/// Strategy that references a stripe outside the catalog.
class WildStripeStrategy final : public s::RequestStrategy {
 public:
  void plan(m::BoxId b, m::VideoId, std::uint64_t, m::Round now,
            s::Simulator& sim, std::vector<s::PlannedRequest>& out) override {
    out.push_back(s::PlannedRequest::direct(
        b, sim.catalog().stripe_count() + 5, now));
  }
  [[nodiscard]] std::string name() const override { return "wild-stripe"; }
};

struct TinyWorld {
  TinyWorld()
      : catalog(2, 2, 6),
        profile(m::CapacityProfile::homogeneous(3, 2.0, 10.0)),
        allocation(build()) {}
  static a::Allocation build() {
    std::vector<a::Allocation::Placement> placements;
    for (m::StripeId stripe = 0; stripe < 4; ++stripe)
      placements.push_back({2, stripe});
    return a::Allocation(3, 4, std::move(placements));
  }
  m::Catalog catalog;
  m::CapacityProfile profile;
  a::Allocation allocation;
};

}  // namespace

TEST(FailureInjection, PastIssueRejected) {
  TinyWorld world;
  TimeTravelStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({});  // move to round 1 so "now - 1" is a genuine past round
  EXPECT_THROW(sim.step({{0, 0}}), std::logic_error);
}

TEST(FailureInjection, UnknownStripeRejected) {
  TinyWorld world;
  WildStripeStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  EXPECT_THROW(sim.step({{0, 0}}), std::out_of_range);
}

TEST(FailureInjection, MismatchedAllocationRejected) {
  TinyWorld world;
  const m::Catalog other(5, 2, 6);  // 10 stripes != allocation's 4
  s::PreloadingStrategy strategy;
  EXPECT_THROW(s::Simulator(other, world.profile, world.allocation, strategy),
               std::invalid_argument);
}

TEST(FailureInjection, ZeroCapacityEverywhereStallsImmediately) {
  TinyWorld world;
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.capacity_override = {0, 0, 0};
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}});  // box 0 lacks the stripes; nobody can upload
  EXPECT_FALSE(sim.report().success);
  EXPECT_EQ(sim.report().first_stall, 0);
}

// ------------------------------------------------ misc edge behaviours

TEST(Edges, ReportContinuityWithNoTraffic) {
  s::RunReport report;
  EXPECT_EQ(report.continuity(), 1.0);
}

TEST(Edges, StrictStallKeepsSwarmMembership) {
  // After a strict stall the simulator freezes; swarm sizes remain as they
  // were at the stall (no phantom leaves).
  TinyWorld world;
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.capacity_override = {0, 0, 0};
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}});
  const auto size_at_stall = sim.swarms().size(0);
  sim.step({});
  sim.step({});
  EXPECT_EQ(sim.swarms().size(0), size_at_stall);
}

TEST(Edges, HugeMuMakesLimiterTransparent) {
  TinyWorld world;
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  w::SequentialViewer inner(5, 1.0);
  w::GrowthLimiter limiter(inner, 1000.0);
  const auto demands = limiter.demands(sim);
  EXPECT_EQ(demands.size(), 3u);  // nothing dropped
  EXPECT_EQ(limiter.dropped(), 0u);
}

TEST(Edges, VodSystemBelowStorageIdentityStillRuns) {
  // m explicitly smaller than d*n/k: extra storage slots stay empty.
  p2pvod::core::SystemConfig config;
  config.n = 12;
  config.u = 2.0;
  config.c = 2;
  config.k = 3;
  config.m = 4;
  config.duration = 6;
  const auto system = p2pvod::core::VodSystem::build(config);
  EXPECT_EQ(system.catalog().video_count(), 4u);
  w::ZipfDemand audience(4, 0.5, 0.3, 3);
  const auto report = system.run(audience, 20);
  EXPECT_TRUE(report.success);
}
