// Unit tests for src/hetero: §4 compensation plans, storage balance, and the
// relay strategy's request schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/allocation.hpp"
#include "hetero/balance.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "sim/simulator.hpp"

namespace h = p2pvod::hetero;
namespace m = p2pvod::model;
namespace s = p2pvod::sim;
namespace a = p2pvod::alloc;

// ----------------------------------------------------------------- compensation

TEST(Compensation, HomogeneousRichNeedsNoRelays) {
  const auto profile = m::CapacityProfile::homogeneous(8, 2.0, 4.0);
  const auto plan = h::Compensator::plan(profile, 1.5, 8, 1.1);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->poor_count(), 0u);
  for (m::BoxId b = 0; b < 8; ++b)
    EXPECT_NEAR(plan->usable_upload[b], 2.0, 1e-12);
  plan->check(profile);
}

TEST(Compensation, PairsPoorWithRich) {
  // 2 poor boxes (u=0.5) need reservation u*+1-2*0.5 = 1.5 each; rich boxes
  // (u=4) have headroom 4-1.5 = 2.5 >= 1.5.
  const auto profile = m::CapacityProfile::two_class(6, 2, 0.5, 2.0, 4.0, 8.0);
  const auto plan = h::Compensator::plan(profile, 1.5, 10, 1.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->poor_count(), 2u);
  for (const m::BoxId b : profile.poor_boxes(1.5)) {
    const m::BoxId r = plan->relay[b];
    ASSERT_NE(r, m::kInvalidBox);
    EXPECT_GE(profile.upload(r), 1.5);
  }
  plan->check(profile);
}

TEST(Compensation, FailsWhenRichHaveNoHeadroom) {
  // Rich boxes at exactly u* cannot host any reservation.
  const auto profile = m::CapacityProfile::two_class(4, 2, 0.5, 2.0, 1.5, 8.0);
  EXPECT_FALSE(h::Compensator::plan(profile, 1.5, 10, 1.0).has_value());
}

TEST(Compensation, FailsWithNoRichBoxes) {
  const auto profile = m::CapacityProfile::homogeneous(4, 0.8, 4.0);
  EXPECT_FALSE(h::Compensator::plan(profile, 1.5, 10, 1.0).has_value());
}

TEST(Compensation, DirectStripeCountFormula) {
  // c_b = max(0, ⌊c·u_b − 4µ⁴⌋), capped at c−1.
  EXPECT_EQ(h::Compensator::direct_stripe_count(0.5, 20, 1.0), 6u);  // 10-4
  EXPECT_EQ(h::Compensator::direct_stripe_count(0.1, 20, 1.0), 0u);  // 2-4 < 0
  EXPECT_EQ(h::Compensator::direct_stripe_count(0.9, 10, 1.2),
            static_cast<std::uint32_t>(
                std::max(0.0, std::floor(9.0 - 4.0 * std::pow(1.2, 4.0)))));
  EXPECT_EQ(h::Compensator::direct_stripe_count(5.0, 4, 1.0), 3u);  // cap c-1
}

TEST(Compensation, UsableUploadSubtractsForwarding) {
  const auto profile = m::CapacityProfile::two_class(3, 1, 0.5, 2.0, 4.0, 8.0);
  const std::uint32_t c = 20;
  const auto plan = h::Compensator::plan(profile, 1.5, c, 1.0);
  ASSERT_TRUE(plan.has_value());
  const m::BoxId relay = plan->relay[0];
  const std::uint32_t cb = plan->direct_stripes[0];
  const double forwarding = static_cast<double>(c - cb) / c;
  EXPECT_NEAR(plan->usable_upload[relay], 4.0 - forwarding, 1e-9);
  // The poor box keeps its full upload for serving others.
  EXPECT_NEAR(plan->usable_upload[0], 0.5, 1e-12);
}

TEST(Compensation, NecessaryConditionSection4) {
  // u = (2*0.5 + 2*4)/4 = 2.25, u* + Δ(1)/n = 1.5 + 1/4 = 1.75: holds.
  const auto good = m::CapacityProfile::two_class(4, 2, 0.5, 2, 4.0, 8);
  EXPECT_TRUE(h::Compensator::necessary_condition(good, 1.5));
  // u = (2*0.5 + 2*1.6)/4 = 1.05 < 1.75: fails.
  const auto bad = m::CapacityProfile::two_class(4, 2, 0.5, 2, 1.6, 8);
  EXPECT_FALSE(h::Compensator::necessary_condition(bad, 1.5));
}

TEST(Compensation, CapacitySlotsFloorUsable) {
  const auto profile = m::CapacityProfile::two_class(3, 1, 0.5, 2.0, 4.0, 8.0);
  const auto plan = h::Compensator::plan(profile, 1.5, 10, 1.0);
  ASSERT_TRUE(plan.has_value());
  const auto slots = plan->capacity_slots();
  for (m::BoxId b = 0; b < 3; ++b) {
    EXPECT_EQ(slots[b], static_cast<std::uint32_t>(
                            std::floor(plan->usable_upload[b] * 10 + 1e-9)));
  }
}

TEST(Compensation, CheckDetectsTampering) {
  const auto profile = m::CapacityProfile::two_class(4, 1, 0.5, 2.0, 4.0, 8.0);
  auto plan = h::Compensator::plan(profile, 1.5, 10, 1.0);
  ASSERT_TRUE(plan.has_value());
  plan->reserved[plan->relay[0]] += 1.0;  // corrupt the ledger
  EXPECT_THROW(plan->check(profile), std::logic_error);
}

TEST(Compensation, RejectsBadArguments) {
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 4.0);
  EXPECT_THROW((void)h::Compensator::plan(profile, 1.0, 10, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)h::Compensator::plan(profile, 1.5, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)h::Compensator::plan(profile, 1.5, 10, 0.5),
               std::invalid_argument);
}

// ----------------------------------------------------------------- balance

TEST(Balance, HomogeneousProportionalIsBalanced) {
  // d/u = 4/1.5 ≈ 2.67 >= 2 and d_b/u_b == d/u <= d/u* for u* <= u.
  const auto profile = m::CapacityProfile::homogeneous(6, 1.5, 4.0);
  const auto report = h::BalanceChecker::check(profile, 1.5);
  EXPECT_TRUE(report.storage_balanced);
  EXPECT_NEAR(report.min_ratio, 4.0 / 1.5, 1e-12);
}

TEST(Balance, DetectsLowStorage) {
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 3.0);  // ratio 1.5 < 2
  const auto report = h::BalanceChecker::check(profile, 1.5);
  EXPECT_FALSE(report.storage_balanced);
  EXPECT_EQ(report.below_lower.size(), 4u);
}

TEST(Balance, DetectsOverProvisionedStorage) {
  // Box 0: ratio 9/0.5 = 18 > d/u* = (9+2*3)/3... build explicit vectors.
  const m::CapacityProfile profile({0.5, 2.0, 2.0}, {9.0, 4.0, 4.0});
  const auto report = h::BalanceChecker::check(profile, 1.5);
  EXPECT_FALSE(report.storage_balanced);
  EXPECT_FALSE(report.above_upper.empty());
}

TEST(Balance, ZeroUploadWithStorageUnbalanced) {
  const m::CapacityProfile profile({0.0, 2.0}, {4.0, 4.0});
  const auto report = h::BalanceChecker::check(profile, 1.5);
  EXPECT_FALSE(report.storage_balanced);
}

TEST(Balance, TruncateStorageEqualizesRatios) {
  const m::CapacityProfile profile({1.0, 2.0}, {8.0, 4.0});
  const auto truncated = h::BalanceChecker::truncate_storage(profile);
  // τ = min(8, 2) = 2 -> storage = 2·u.
  EXPECT_NEAR(truncated.storage(0), 2.0, 1e-12);
  EXPECT_NEAR(truncated.storage(1), 4.0, 1e-12);
  EXPECT_TRUE(truncated.is_proportional());
}

TEST(Balance, TruncateRejectsZeroUploadWithStorage) {
  const m::CapacityProfile profile({0.0}, {4.0});
  EXPECT_THROW((void)h::BalanceChecker::truncate_storage(profile),
               std::invalid_argument);
}

TEST(Balance, SubBoxCount) {
  const m::CapacityProfile profile({1.5, 0.7}, {4.0, 4.0});
  // ⌊1.5·10⌋ + ⌊0.7·10⌋ = 15 + 7.
  EXPECT_EQ(h::BalanceChecker::sub_box_count(profile, 10), 22u);
}

// ----------------------------------------------------------------- relay

namespace {

struct RelayWorld {
  RelayWorld()
      : profile(m::CapacityProfile::two_class(4, 1, 0.5, 2.0, 4.0, 8.0)),
        catalog(2, 8, 20),
        plan(*h::Compensator::plan(profile, 1.5, 8, 1.0)),
        allocation(build()) {}

  a::Allocation build() const {
    // All stripes held by box 3 (a rich box, not the relay necessarily).
    std::vector<a::Allocation::Placement> placements;
    for (m::StripeId stripe = 0; stripe < catalog.stripe_count(); ++stripe)
      placements.push_back({3, stripe});
    return a::Allocation(4, catalog.stripe_count(), std::move(placements));
  }

  m::CapacityProfile profile;
  m::Catalog catalog;
  h::CompensationPlan plan;
  a::Allocation allocation;
};

}  // namespace

TEST(Relay, PoorBoxScheduleFollowsSection4) {
  RelayWorld world;
  h::RelayStrategy strategy(world.plan);
  s::SimulatorOptions options;
  options.capacity_override = world.plan.capacity_slots();
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);

  std::vector<s::PlannedRequest> plans;
  strategy.plan(/*box=*/0, /*video=*/0, /*ticket=*/0, /*now=*/10, sim, plans);

  const m::BoxId relay = world.plan.relay[0];
  ASSERT_NE(relay, m::kInvalidBox);
  const std::uint32_t cb = world.plan.direct_stripes[0];
  EXPECT_EQ(cb, 0u);  // ⌊8·0.5 − 4⌋ = 0

  std::uint32_t preload = 0, direct = 0, relayed = 0;
  for (const auto& p : plans) {
    if (p.issue == 10) {
      ++preload;
      EXPECT_EQ(p.requester, relay);
      // Both the relay (entry 10) and the viewer (entry 11) gain cache data.
      ASSERT_EQ(p.grants.size(), 2u);
      EXPECT_EQ(p.grants[0].box, relay);
      EXPECT_EQ(p.grants[0].entry, 10);
      EXPECT_EQ(p.grants[1].box, 0u);
      EXPECT_EQ(p.grants[1].entry, 11);
    } else if (p.issue == 12) {
      ++direct;
      EXPECT_EQ(p.requester, 0u);
    } else {
      EXPECT_EQ(p.issue, 13);
      ++relayed;
      EXPECT_EQ(p.requester, relay);
    }
  }
  EXPECT_EQ(preload, 1u);
  EXPECT_EQ(direct, cb);
  EXPECT_EQ(relayed, 8u - 1u - cb);
}

TEST(Relay, RichBoxPostponesAtPlusTwo) {
  RelayWorld world;
  h::RelayStrategy strategy(world.plan);
  s::SimulatorOptions options;
  options.capacity_override = world.plan.capacity_slots();
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);

  std::vector<s::PlannedRequest> plans;
  strategy.plan(/*box=*/1, /*video=*/0, /*ticket=*/2, /*now=*/4, sim, plans);
  ASSERT_EQ(plans.size(), 8u);
  std::uint32_t at_now = 0, at_plus2 = 0;
  for (const auto& p : plans) {
    EXPECT_EQ(p.requester, 1u);
    if (p.issue == 4) {
      ++at_now;
      EXPECT_EQ(p.stripe, 2u);  // ticket 2 mod 8
    } else {
      EXPECT_EQ(p.issue, 6);
      ++at_plus2;
    }
  }
  EXPECT_EQ(at_now, 1u);
  EXPECT_EQ(at_plus2, 7u);
}

TEST(Relay, RelayHoldingStripeForwardsFromStorage) {
  RelayWorld world;
  // Force the relay to be box 3 (the holder of everything) by remapping.
  world.plan.relay[0] = 3;
  h::RelayStrategy strategy(world.plan);
  s::SimulatorOptions options;
  options.capacity_override = world.plan.capacity_slots();
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);

  std::vector<s::PlannedRequest> plans;
  strategy.plan(0, 0, 0, 5, sim, plans);
  // Every stripe is held by the relay: all plans are forwarding-only.
  for (const auto& p : plans) {
    EXPECT_EQ(p.requester, m::kInvalidBox);
    ASSERT_EQ(p.grants.size(), 1u);
    EXPECT_EQ(p.grants[0].box, 0u);
  }
}

TEST(Relay, EndToEndPoorBoxPlaybackSucceeds) {
  RelayWorld world;
  h::RelayStrategy strategy(world.plan);
  s::SimulatorOptions options;
  options.capacity_override = world.plan.capacity_slots();
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}});  // poor box demands
  for (int t = 1; t < 30; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
  EXPECT_EQ(sim.report().sessions_completed, 1u);
}

TEST(Relay, EndToEndMixedCrowdSucceeds) {
  RelayWorld world;
  h::RelayStrategy strategy(world.plan);
  s::SimulatorOptions options;
  options.capacity_override = world.plan.capacity_slots();
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}});           // poor viewer
  sim.step({});
  sim.step({{1, 0}, {2, 1}});   // rich viewers, staggered
  for (int t = 3; t < 40; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
  EXPECT_EQ(sim.report().sessions_completed, 3u);
}
