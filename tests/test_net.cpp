// Tests for src/net: Topology builders, the zone cost model, link caps, and
// the simulator's zone-aware matching round (cross-zone accounting, link-cap
// admission control, VodSystem zones knob).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "core/vod_system.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/zipf.hpp"

namespace n = p2pvod::net;
namespace s = p2pvod::sim;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;

// ----------------------------------------------------------------- topology

TEST(Topology, UniformAssignsRoundRobin) {
  const auto topo = n::Topology::uniform(10, 3);
  EXPECT_EQ(topo.box_count(), 10u);
  EXPECT_EQ(topo.zone_count(), 3u);
  for (std::uint32_t b = 0; b < 10; ++b) EXPECT_EQ(topo.zone_of(b), b % 3);
  // Sizes differ by at most one.
  EXPECT_EQ(topo.zone_size(0), 4u);
  EXPECT_EQ(topo.zone_size(1), 3u);
  EXPECT_EQ(topo.zone_size(2), 3u);
  EXPECT_EQ(topo.members(1), (std::vector<m::BoxId>{1, 4, 7}));
}

TEST(Topology, ZipfSizedCoversAllBoxesDeterministically) {
  const auto first = n::Topology::zipf_sized(40, 4, 1.0, 7);
  const auto second = n::Topology::zipf_sized(40, 4, 1.0, 7);
  std::uint32_t total = 0;
  for (n::ZoneId z = 0; z < 4; ++z) {
    EXPECT_GE(first.zone_size(z), 1u);  // boxes >= zones: no empty zone
    EXPECT_EQ(first.zone_size(z), second.zone_size(z));
    total += first.zone_size(z);
  }
  EXPECT_EQ(total, 40u);
  for (std::uint32_t b = 0; b < 40; ++b)
    EXPECT_EQ(first.zone_of(b), second.zone_of(b));
  // The skewed head zone dominates the tail zone.
  EXPECT_GT(first.zone_size(0), first.zone_size(3));
  // A different seed shuffles membership (sizes stay put).
  const auto reseeded = n::Topology::zipf_sized(40, 4, 1.0, 8);
  EXPECT_EQ(reseeded.zone_size(0), first.zone_size(0));
  bool any_moved = false;
  for (std::uint32_t b = 0; b < 40 && !any_moved; ++b)
    any_moved = reseeded.zone_of(b) != first.zone_of(b);
  EXPECT_TRUE(any_moved);
}

TEST(Topology, ZipfSizedZeroSkewIsBalanced) {
  const auto topo = n::Topology::zipf_sized(12, 4, 0.0, 1);
  for (n::ZoneId z = 0; z < 4; ++z) EXPECT_EQ(topo.zone_size(z), 3u);
}

TEST(Topology, RandomIsSeedDeterministic) {
  const auto first = n::Topology::random(25, 5, 42);
  const auto second = n::Topology::random(25, 5, 42);
  for (std::uint32_t b = 0; b < 25; ++b) {
    EXPECT_EQ(first.zone_of(b), second.zone_of(b));
    EXPECT_LT(first.zone_of(b), 5u);
  }
}

TEST(Topology, UniformCostAndOverrides) {
  auto topo = n::Topology::uniform(6, 3);
  EXPECT_TRUE(topo.all_costs_zero());
  topo.set_uniform_cost(0, 2);
  EXPECT_FALSE(topo.all_costs_zero());
  EXPECT_EQ(topo.cost(1, 1), 0);
  EXPECT_EQ(topo.cost(0, 2), 2);
  topo.set_cost(0, 2, 7);  // directed override
  EXPECT_EQ(topo.cost(0, 2), 7);
  EXPECT_EQ(topo.cost(2, 0), 2);
  EXPECT_EQ(topo.box_cost(0, 2), 7);  // box 0 in zone 0, box 2 in zone 2
}

TEST(Topology, LinkCapsDefaultUnlimited) {
  auto topo = n::Topology::uniform(6, 3);
  EXPECT_FALSE(topo.has_link_caps());
  EXPECT_EQ(topo.link_cap(0, 1), n::kUnlimitedLink);
  topo.set_uniform_link_cap(4);
  EXPECT_TRUE(topo.has_link_caps());
  EXPECT_EQ(topo.link_cap(0, 1), 4u);
  EXPECT_EQ(topo.link_cap(1, 1), n::kUnlimitedLink);  // intra stays free
  topo.set_link_cap(0, 1, n::kUnlimitedLink);
  EXPECT_EQ(topo.link_cap(0, 1), n::kUnlimitedLink);
}

TEST(Topology, RejectsBadArguments) {
  EXPECT_THROW((void)n::Topology::uniform(4, 0), std::invalid_argument);
  EXPECT_THROW((void)n::Topology({0, 3}, 2), std::invalid_argument);
  EXPECT_THROW((void)n::Topology::zipf_sized(8, 2, -1.0, 0),
               std::invalid_argument);
  auto topo = n::Topology::uniform(4, 2);
  EXPECT_THROW(topo.set_cost(0, 5, 1), std::out_of_range);
  EXPECT_THROW(topo.set_cost(0, 1, -1), std::invalid_argument);
  EXPECT_THROW((void)topo.zone_of(99), std::out_of_range);
  EXPECT_THROW((void)topo.zone_size(7), std::out_of_range);
  EXPECT_THROW((void)topo.members(7), std::out_of_range);
}

TEST(Topology, DescribeMentionsShape) {
  auto topo = n::Topology::uniform(6, 2);
  topo.set_uniform_cost(0, 1).set_uniform_link_cap(3);
  const auto text = topo.describe();
  EXPECT_NE(text.find("zones=2"), std::string::npos);
  EXPECT_NE(text.find("costed"), std::string::npos);
  EXPECT_NE(text.find("capped"), std::string::npos);
}

// ------------------------------------------------- zone-aware simulation

namespace {

/// One viewer (box 0, zone 0) demanding the single 1-stripe video; the
/// stripe's static holders are the test knob. duration 2 => 2 chunks served.
struct TinyZoned {
  m::Catalog catalog{1, 1, 2};
  m::CapacityProfile profile = m::CapacityProfile::homogeneous(3, 2.0, 4.0);
  a::Allocation allocation;
  s::PreloadingStrategy strategy;

  explicit TinyZoned(std::vector<m::BoxId> holders)
      : allocation(3, 1, [&] {
          std::vector<a::Allocation::Placement> placements;
          for (const m::BoxId b : holders) placements.push_back({b, 0});
          return placements;
        }()) {}

  s::RunReport run(const n::Topology& topology, bool strict = false) {
    s::SimulatorOptions options;
    options.strict = strict;
    options.topology = &topology;
    s::Simulator simulator(catalog, profile, allocation, strategy, options);
    simulator.step({});                 // round 0: idle
    simulator.step({{0, 0}});           // round 1: box 0 demands video 0
    for (int i = 0; i < 5; ++i) simulator.step({});
    return simulator.report();
  }
};

}  // namespace

TEST(ZoneAwareSimulator, PrefersIntraZoneServer) {
  // Holders in both zones; min-cost matching must stay local.
  TinyZoned tiny({1, 2});
  auto topology = n::Topology({0, 0, 1}, 2);
  topology.set_uniform_cost(0, 1);
  const auto report = tiny.run(topology);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.intra_zone_chunks, 2u);  // box 1, same zone, both chunks
  EXPECT_EQ(report.cross_zone_chunks, 0u);
  EXPECT_EQ(report.zone_cost_total, 0);
  EXPECT_DOUBLE_EQ(report.cross_zone_fraction.mean(), 0.0);
  EXPECT_DOUBLE_EQ(report.cross_zone_share(), 0.0);
}

TEST(ZoneAwareSimulator, AccountsForcedCrossZoneTraffic) {
  // Only a foreign holder exists: every chunk crosses the zone boundary.
  TinyZoned tiny({2});
  auto topology = n::Topology({0, 0, 1}, 2);
  topology.set_uniform_cost(0, 3);
  const auto report = tiny.run(topology);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.intra_zone_chunks, 0u);
  EXPECT_EQ(report.cross_zone_chunks, 2u);
  EXPECT_EQ(report.zone_cost_total, 6);  // 2 chunks x cost 3
  EXPECT_DOUBLE_EQ(report.cross_zone_fraction.mean(), 1.0);
  EXPECT_DOUBLE_EQ(report.cross_zone_share(), 1.0);
}

TEST(ZoneAwareSimulator, LinkCapZeroStallsStrictRun) {
  TinyZoned tiny({2});
  auto topology = n::Topology({0, 0, 1}, 2);
  topology.set_uniform_cost(0, 1);
  topology.set_link_cap(1, 0, 0);  // the only usable link is shut
  const auto report = tiny.run(topology, /*strict=*/true);
  EXPECT_FALSE(report.success);
  EXPECT_GE(report.link_cap_rejections, 1u);
  EXPECT_EQ(report.cross_zone_chunks, 0u);
}

TEST(ZoneAwareSimulator, CapRescueReroutesOverOpenLink) {
  // Box 1 (zone 1) is the cheap server, box 2 (zone 2) the expensive one.
  // Shutting link 1->0 forces the admission control to drop the cheap
  // connection and the rescue pass to reroute it over 2->0.
  TinyZoned tiny({1, 2});
  auto topology = n::Topology({0, 1, 2}, 3);
  topology.set_uniform_cost(0, 1);
  topology.set_cost(2, 0, 5);      // box 2 strictly more expensive
  topology.set_link_cap(1, 0, 0);  // cheap link shut
  const auto report = tiny.run(topology, /*strict=*/true);
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.link_cap_rejections, 1u);
  EXPECT_EQ(report.cross_zone_chunks, 2u);
  EXPECT_EQ(report.zone_cost_total, 10);  // both chunks over the 5-cost link
}

TEST(ZoneAwareSimulator, ZeroCostTopologyMatchesCostBlindFeasibility) {
  // With all costs zero the min-cost path degrades to Dinic: served counts
  // (and hence continuity) must equal a run without any topology.
  const std::uint32_t boxes = 12;
  const m::Catalog catalog(4, 2, 6);
  const auto profile = m::CapacityProfile::homogeneous(boxes, 1.5, 4.0);
  p2pvod::util::Rng rng(0xBEEF);
  std::vector<a::Allocation::Placement> placements;
  for (m::StripeId stripe = 0; stripe < catalog.stripe_count(); ++stripe) {
    for (int replica = 0; replica < 3; ++replica) {
      placements.push_back(
          {static_cast<m::BoxId>(rng.next_below(boxes)), stripe});
    }
  }
  const a::Allocation allocation(boxes, catalog.stripe_count(), placements);
  const auto topology = n::Topology::uniform(boxes, 3);  // costs all zero

  const auto drive = [&](const n::Topology* topo) {
    s::PreloadingStrategy strategy;
    s::SimulatorOptions options;
    options.strict = false;
    options.topology = topo;
    s::Simulator simulator(catalog, profile, allocation, strategy, options);
    p2pvod::workload::ZipfDemand audience(4, 0.8, 0.4, 0xFACE);
    return simulator.run(audience, 30);
  };
  const auto zoned = drive(&topology);
  const auto bare = drive(nullptr);
  EXPECT_EQ(zoned.chunks_served, bare.chunks_served);
  EXPECT_EQ(zoned.chunks_stalled, bare.chunks_stalled);
  // Zone accounting still ran in the zoned run.
  EXPECT_EQ(zoned.intra_zone_chunks + zoned.cross_zone_chunks,
            zoned.chunks_served);
  EXPECT_EQ(zoned.zone_cost_total, 0);
}

TEST(ZoneAwareSimulator, RejectsTopologySizeMismatch) {
  TinyZoned tiny({1});
  const auto topology = n::Topology::uniform(7, 2);  // 7 boxes != 3
  s::SimulatorOptions options;
  options.topology = &topology;
  EXPECT_THROW(s::Simulator(tiny.catalog, tiny.profile, tiny.allocation,
                            tiny.strategy, options),
               std::invalid_argument);
}

// ----------------------------------------------------------- vod system

TEST(VodSystemZones, BuildsTopologyAndAccountsTraffic) {
  p2pvod::core::SystemConfig config;
  config.n = 24;
  config.u = 2.0;
  config.d = 4.0;
  config.zones = 4;
  config.c = 4;
  config.k = 6;
  config.duration = 8;
  config.strict = false;
  const auto system = p2pvod::core::VodSystem::build(config);
  ASSERT_NE(system.topology(), nullptr);
  EXPECT_EQ(system.topology()->zone_count(), 4u);
  EXPECT_EQ(system.topology()->box_count(), 24u);
  EXPECT_NE(system.describe().find("zones=4"), std::string::npos);

  p2pvod::workload::ZipfDemand audience(system.catalog().video_count(), 0.8,
                                        0.3, 99);
  const auto report = system.run(audience, 40);
  EXPECT_GT(report.intra_zone_chunks + report.cross_zone_chunks, 0u);
}

TEST(VodSystemZones, ZeroZonesMeansNoTopology) {
  p2pvod::core::SystemConfig config;
  config.n = 8;
  config.u = 2.0;
  config.c = 2;
  config.k = 2;
  const auto system = p2pvod::core::VodSystem::build(config);
  EXPECT_EQ(system.topology(), nullptr);
}

TEST(VodSystemZones, ValidateRejectsMoreZonesThanBoxes) {
  p2pvod::core::SystemConfig config;
  config.n = 4;
  config.zones = 5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}
