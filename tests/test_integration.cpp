// Integration tests: cross-module scenarios reproducing the paper's headline
// behaviours end to end — the u<1 collapse, the u>1 feasibility, the
// full-replication baseline trade-off, trace reproducibility.
#include <gtest/gtest.h>

#include "alloc/full_replication.hpp"
#include "alloc/permutation.hpp"
#include "analysis/impossibility.hpp"
#include "core/vod_system.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"
#include "workload/trace.hpp"
#include "workload/zipf.hpp"

namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace s = p2pvod::sim;
namespace w = p2pvod::workload;
namespace an = p2pvod::analysis;
namespace core = p2pvod::core;

// The §1.3 impossibility, executed: u < 1, m > d·c, avoider adversary ->
// the simulation must stall, and the analyzer must have predicted it.
TEST(Integration, BelowThresholdAvoiderDefeatsAnySystem) {
  const std::uint32_t n = 16, c = 2;
  const m::Catalog catalog(/*m=*/8, c, /*T=*/12);  // m=8 > d*c=4
  const auto profile = m::CapacityProfile::homogeneous(n, 0.5, 2.0);

  const auto cert = an::ImpossibilityAnalyzer::analyze(profile, catalog);
  ASSERT_TRUE(cert.applies);

  p2pvod::util::Rng rng(31337);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  s::PreloadingStrategy strategy;
  s::Simulator sim(catalog, profile, allocation, strategy);
  w::AvoiderAdversary adversary(1);
  const auto report = sim.run(adversary, 24);
  EXPECT_FALSE(report.success);
  EXPECT_GE(report.first_stall, 0);
  EXPECT_GT(report.stall_witness_size, 0u);
}

// Above the threshold the same adversary is absorbed (empirical Theorem 1).
TEST(Integration, AboveThresholdAvoiderAbsorbed) {
  const std::uint32_t n = 32, c = 4, k = 8;
  const m::Catalog catalog(/*m=*/16, c, /*T=*/12);
  const auto profile = m::CapacityProfile::homogeneous(n, 2.0, 4.0);
  p2pvod::util::Rng rng(4242);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, k, rng);
  s::PreloadingStrategy strategy;
  s::Simulator sim(catalog, profile, allocation, strategy);
  w::AvoiderAdversary inner(7);
  w::GrowthLimiter adversary(inner, 1.5);
  const auto report = sim.run(adversary, 36);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_GT(report.demands_admitted, 0u);
}

// Full-replication baseline (Suh et al. [22]): survives u<1 where random
// allocation dies, but its catalog is pinned at d·c.
TEST(Integration, FullReplicationSurvivesBelowThreshold) {
  const std::uint32_t n = 16, c = 4;
  const auto profile = m::CapacityProfile::homogeneous(n, 0.75, 2.0);
  const std::uint32_t max_m =
      a::FullReplicationAllocator::max_catalog(profile, c);
  EXPECT_EQ(max_m, 8u);  // d·c: the §1.3 constant-catalog ceiling

  const m::Catalog catalog(max_m, c, /*T=*/12);
  p2pvod::util::Rng rng(5);
  const auto allocation =
      a::FullReplicationAllocator().allocate(catalog, profile, 1, rng);
  s::PreloadingStrategy strategy;
  s::Simulator sim(catalog, profile, allocation, strategy);
  // u=0.75 -> 3 stripe-slots per box; each box needs at most 3 remote
  // stripes (one stripe of each video is local). Staggered arrivals via a
  // sequential viewer pattern.
  w::SequentialViewer viewers(11, /*join prob=*/0.25);
  w::GrowthLimiter limited(viewers, 1.3);
  const auto report = sim.run(limited, 48);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_GT(report.sessions_completed, 0u);
}

// Flash crowd at growth µ: preloading strategy survives where naive fails,
// with the same allocation (the §3 staggering ablation).
TEST(Integration, PreloadingBeatsNaiveUnderFlashCrowd) {
  const std::uint32_t n = 64, c = 4, k = 3;
  const m::Catalog catalog(/*m=*/32, c, /*T=*/16);
  const auto profile = m::CapacityProfile::homogeneous(n, 1.5, 4.0);
  p2pvod::util::Rng rng(99);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, k, rng);

  auto run_with = [&](s::RequestStrategy& strategy) {
    s::Simulator sim(catalog, profile, allocation, strategy);
    w::FlashCrowd crowd(/*video=*/3, /*mu=*/2.0);
    return sim.run(crowd, 40);
  };

  s::PreloadingStrategy preloading;
  const auto good = run_with(preloading);
  EXPECT_TRUE(good.success) << good.summary();

  s::NaiveStrategy naive;
  const auto bad = run_with(naive);
  EXPECT_FALSE(bad.success)
      << "naive strategy should collapse under maximal-growth flash crowd";
}

// A recorded defeating trace replays to the identical stall round.
TEST(Integration, DefeatingTraceReplaysExactly) {
  const std::uint32_t n = 16, c = 2;
  const m::Catalog catalog(8, c, 12);
  const auto profile = m::CapacityProfile::homogeneous(n, 0.5, 2.0);
  p2pvod::util::Rng rng(1);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  s::PreloadingStrategy strategy;

  w::AvoiderAdversary inner(1);
  w::TraceRecorder recorder(inner);
  s::Simulator sim1(catalog, profile, allocation, strategy);
  const auto first = sim1.run(recorder, 24);
  ASSERT_FALSE(first.success);

  w::TraceReplay replay(recorder.trace());
  s::Simulator sim2(catalog, profile, allocation, strategy);
  const auto second = sim2.run(replay, 24);
  EXPECT_FALSE(second.success);
  EXPECT_EQ(second.first_stall, first.first_stall);
  EXPECT_EQ(second.chunks_served, first.chunks_served);
}

// Same config + same seed -> bit-identical outcomes (full determinism).
TEST(Integration, EndToEndDeterminism) {
  auto run_once = [] {
    core::SystemConfig config;
    config.n = 32;
    config.u = 2.0;
    config.d = 4.0;
    config.c = 4;
    config.k = 6;
    config.duration = 10;
    config.seed = 777;
    const auto system = core::VodSystem::build(config);
    w::ZipfDemand zipf(system.catalog().video_count(), 0.9, 0.15, 555);
    return system.run(zipf, 30);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.demands_admitted, r2.demands_admitted);
  EXPECT_EQ(r1.requests_issued, r2.requests_issued);
  EXPECT_EQ(r1.chunks_served, r2.chunks_served);
  EXPECT_EQ(r1.success, r2.success);
}

// Matcher engines and incremental mode give identical feasibility verdicts.
TEST(Integration, EngineChoiceDoesNotChangeOutcome) {
  const std::uint32_t n = 24, c = 4, k = 4;
  const m::Catalog catalog(12, c, 10);
  const auto profile = m::CapacityProfile::homogeneous(n, 1.5, 4.0);
  p2pvod::util::Rng rng(12);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, k, rng);
  s::PreloadingStrategy strategy;

  auto run_with = [&](bool incremental, p2pvod::flow::Engine engine) {
    s::SimulatorOptions options;
    options.incremental = incremental;
    options.engine = engine;
    s::Simulator sim(catalog, profile, allocation, strategy, options);
    w::ZipfDemand zipf(12, 0.8, 0.2, 31);
    return sim.run(zipf, 30);
  };

  const auto a1 = run_with(true, p2pvod::flow::Engine::kDinic);
  const auto a2 = run_with(false, p2pvod::flow::Engine::kDinic);
  const auto a3 = run_with(false, p2pvod::flow::Engine::kHopcroftKarp);
  EXPECT_EQ(a1.success, a2.success);
  EXPECT_EQ(a2.success, a3.success);
  EXPECT_EQ(a1.chunks_served, a2.chunks_served);
  EXPECT_EQ(a2.chunks_served, a3.chunks_served);
}

// The binge viewer exercises the "end of previous + start of current" cache
// shape for many rounds without leaks or stalls on a generous system.
TEST(Integration, BingeViewingSoak) {
  const std::uint32_t n = 24, c = 2, k = 6;
  const m::Catalog catalog(8, c, 6);
  const auto profile = m::CapacityProfile::homogeneous(n, 2.5, 4.0);
  p2pvod::util::Rng rng(3);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, k, rng);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.verify_incremental = true;  // cross-check matcher all the way
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  w::SequentialViewer viewers(21, 0.5);
  w::GrowthLimiter limited(viewers, 1.4);
  const auto report = sim.run(limited, 60);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_GT(report.sessions_completed, n);  // multiple videos per box
}
