// Tests for the PR 9 profiling & perf-trajectory layer: call-tree
// aggregation from trace events (nesting, clock-tie tie-breaks, self/total
// accounting, log2-bucket quantiles, collapsed-stack and JSON exports),
// per-round metric time-series exactness under parallel increments, the
// WallStats median+MAD reduction, the statistical wall-time gate
// (2x slowdown flagged, MAD-level noise passes), BENCH-document reduction,
// and the sparse-path kStable counters' thread-count independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trajectory.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sink.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace obs = p2pvod::obs;
namespace sc = p2pvod::scenario;
namespace u = p2pvod::util;

namespace {

/// Sets an environment variable for the test's lifetime, restoring the
/// previous value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str()); old != nullptr) {
      old_ = old;
    }
    setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

/// Hand-built event set with known nesting (TraceEvent is
/// {name, phase, ts_ns, dur_ns, tid}):
///
///   tid 0: root[0,100) > a[10,40) > leaf[12,17), a[45,65), b[70,80)
///   tid 1: other[0,50)
///
/// plus an instant that aggregation must ignore. Shuffled on purpose:
/// from_events must not depend on input order.
std::vector<obs::TraceEvent> nested_events() {
  return {
      {"a", 'X', 45, 20, 0},     {"leaf", 'X', 12, 5, 0},
      {"ignored", 'i', 5, 0, 0}, {"other", 'X', 0, 50, 1},
      {"b", 'X', 70, 10, 0},     {"root", 'X', 0, 100, 0},
      {"a", 'X', 10, 30, 0},
  };
}

}  // namespace

// --- call-tree aggregation --------------------------------------------------

TEST(ObsProfile, BuildsCallTreeWithCountsTotalsAndSelfTimes) {
  const obs::Profile profile = obs::Profile::from_events(nested_events());
  ASSERT_EQ(profile.threads().size(), 2u);
  EXPECT_EQ(profile.span_count(), 6u);  // the instant is not a span
  EXPECT_FALSE(profile.empty());

  const obs::ThreadProfile& t0 = profile.threads()[0];
  EXPECT_EQ(t0.tid, 0u);
  ASSERT_EQ(t0.root.children.size(), 1u);
  const obs::ProfileNode& root = t0.root.children.at("root");
  EXPECT_EQ(root.count, 1u);
  EXPECT_EQ(root.total_ns, 100u);
  EXPECT_EQ(root.self_ns, 40u);  // 100 - (30 + 20 + 10)
  ASSERT_EQ(root.children.size(), 2u);

  const obs::ProfileNode& a = root.children.at("a");
  EXPECT_EQ(a.count, 2u);        // both a-spans land on the same path
  EXPECT_EQ(a.total_ns, 50u);    // 30 + 20
  EXPECT_EQ(a.self_ns, 45u);     // 50 - leaf's 5
  ASSERT_EQ(a.children.size(), 1u);
  const obs::ProfileNode& leaf = a.children.at("leaf");
  EXPECT_EQ(leaf.count, 1u);
  EXPECT_EQ(leaf.total_ns, 5u);
  EXPECT_EQ(leaf.self_ns, 5u);

  const obs::ProfileNode& b = root.children.at("b");
  EXPECT_EQ(b.total_ns, 10u);
  EXPECT_EQ(b.self_ns, 10u);

  const obs::ThreadProfile& t1 = profile.threads()[1];
  EXPECT_EQ(t1.tid, 1u);
  const obs::ProfileNode& other = t1.root.children.at("other");
  EXPECT_EQ(other.total_ns, 50u);
  EXPECT_EQ(other.self_ns, 50u);
}

TEST(ObsProfile, TimestampTiesNestTheShorterSpanInsideTheLonger) {
  // Coarse clocks can stamp an outer span and its first child with the same
  // start; the duration tie-break must keep outer as the parent.
  const std::vector<obs::TraceEvent> events = {
      {"inner", 'X', 0, 50, 0},
      {"outer", 'X', 0, 100, 0},
  };
  const obs::Profile profile = obs::Profile::from_events(events);
  ASSERT_EQ(profile.threads().size(), 1u);
  const obs::ProfileNode& top = profile.threads()[0].root;
  ASSERT_EQ(top.children.size(), 1u);
  const obs::ProfileNode& outer = top.children.at("outer");
  ASSERT_EQ(outer.children.count("inner"), 1u);
  EXPECT_EQ(outer.self_ns, 50u);
  EXPECT_EQ(outer.children.at("inner").self_ns, 50u);
}

TEST(ObsProfile, EmptyAndInstantOnlyInputsProduceEmptyProfiles) {
  EXPECT_TRUE(obs::Profile::from_events({}).empty());
  const std::vector<obs::TraceEvent> instants = {{"tick", 'i', 1, 0, 0}};
  const obs::Profile profile = obs::Profile::from_events(instants);
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.span_count(), 0u);
  EXPECT_TRUE(profile.to_collapsed().empty());
}

TEST(ObsProfile, QuantilesReportLog2BucketUpperBounds) {
  // Durations 8,8,8 fall in bucket bit_width(8)=4, upper bound 15; the 1000
  // outlier lands in bucket 10, upper bound 1023. Non-overlapping spans.
  const std::vector<obs::TraceEvent> events = {
      {"q", 'X', 0, 8, 0},
      {"q", 'X', 100, 8, 0},
      {"q", 'X', 200, 8, 0},
      {"q", 'X', 300, 1000, 0},
      {"z", 'X', 2000, 0, 0},
  };
  const obs::Profile profile = obs::Profile::from_events(events);
  const obs::ProfileNode& q = profile.threads()[0].root.children.at("q");
  EXPECT_EQ(q.count, 4u);
  EXPECT_EQ(q.quantile_ns(0.50), 15u);   // rank 2 of 4 -> bucket 4
  EXPECT_EQ(q.quantile_ns(0.75), 15u);   // rank 3 of 4 -> still bucket 4
  EXPECT_EQ(q.quantile_ns(0.99), 1023u); // rank 4 of 4 -> outlier bucket
  const obs::ProfileNode& z = profile.threads()[0].root.children.at("z");
  EXPECT_EQ(z.quantile_ns(0.50), 0u);    // zero-duration bucket
  EXPECT_EQ(obs::ProfileNode{}.quantile_ns(0.5), 0u);  // no spans at all
}

TEST(ObsProfile, MergedTreeSumsThreadsByPath) {
  const obs::Profile profile = obs::Profile::from_events(nested_events());
  const obs::ProfileNode merged = profile.merged();
  ASSERT_EQ(merged.children.size(), 2u);  // "other" and "root"
  EXPECT_EQ(merged.children.at("root").total_ns, 100u);
  EXPECT_EQ(merged.children.at("other").total_ns, 50u);

  // Merging a duplicated event set doubles every aggregate on the same path.
  std::vector<obs::TraceEvent> doubled = nested_events();
  for (obs::TraceEvent event : nested_events()) {
    event.tid += 2;  // same shapes on two more threads
    doubled.push_back(event);
  }
  const obs::ProfileNode merged2 =
      obs::Profile::from_events(doubled).merged();
  EXPECT_EQ(merged2.children.at("root").total_ns, 200u);
  EXPECT_EQ(merged2.children.at("root").children.at("a").count, 4u);
  EXPECT_EQ(merged2.children.at("root").children.at("a").self_ns, 90u);
}

TEST(ObsProfile, CollapsedStacksCarrySelfTimesAndFullPaths) {
  const obs::Profile profile = obs::Profile::from_events(nested_events());
  const std::string collapsed = profile.to_collapsed();
  // Pre-order over name-sorted children, "path;to;node <self_ns>" per line.
  EXPECT_EQ(collapsed,
            "other 50\n"
            "root 40\n"
            "root;a 45\n"
            "root;a;leaf 5\n"
            "root;b 10\n");
  // Invariant behind flamegraphs: self times over all lines sum to the
  // total inclusive time of the top-level spans.
  std::uint64_t self_sum = 0;
  std::istringstream lines(collapsed);
  std::string path;
  std::uint64_t self = 0;
  while (lines >> path >> self) self_sum += self;
  EXPECT_EQ(self_sum, 150u);
}

TEST(ObsProfile, JsonDocumentCarriesSchemaAndPerThreadTrees) {
  const obs::Profile profile = obs::Profile::from_events(nested_events());
  const u::json::Value doc = profile.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "p2pvod-profile-v1");
  EXPECT_EQ(doc.at("unit").as_string(), "ns");
  EXPECT_DOUBLE_EQ(doc.at("span_count").as_number(), 6.0);
  const auto& threads = doc.at("threads").as_array();
  ASSERT_EQ(threads.size(), 2u);
  EXPECT_DOUBLE_EQ(threads[0].at("tid").as_number(), 0.0);
  const auto& spans = threads[0].at("spans").as_array();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at("name").as_string(), "root");
  EXPECT_DOUBLE_EQ(spans[0].at("total_ns").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(spans[0].at("self_ns").as_number(), 40.0);
  EXPECT_TRUE(spans[0].at("p50_ns").is_number());
  EXPECT_TRUE(spans[0].at("p95_ns").is_number());
  EXPECT_TRUE(spans[0].at("p99_ns").is_number());
  const auto& children = spans[0].at("children").as_array();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].at("name").as_string(), "a");
  EXPECT_EQ(children[1].at("name").as_string(), "b");
}

TEST(ObsProfile, WriteFilesEmitsParseableJsonAndMatchingCollapsed) {
  const std::string dir = testing::TempDir() + "/obs_profile_files/deeper";
  std::filesystem::remove_all(testing::TempDir() + "/obs_profile_files");
  const obs::Profile profile = obs::Profile::from_events(nested_events());
  profile.write_files(dir, "test");
  const u::json::Value doc = u::json::parse_file(dir + "/PROFILE_test.json");
  EXPECT_EQ(doc.at("schema").as_string(), "p2pvod-profile-v1");
  std::ifstream in(dir + "/PROFILE_test.collapsed", std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), profile.to_collapsed());
}

// --- per-round time-series --------------------------------------------------

TEST(ObsRoundSeries, InactiveTickIsANoopAndStopReturnsEmpty) {
  ASSERT_FALSE(obs::RoundSeries::active());
  obs::RoundSeries::tick(1);
  EXPECT_TRUE(obs::RoundSeries::stop().empty());
}

namespace {

/// Column of `data` by name; empty (with a test failure) when absent.
std::vector<std::uint64_t> series_column(const obs::RoundSeriesData& data,
                                         const std::string& name) {
  const auto it = std::find(data.columns.begin(), data.columns.end(), name);
  if (it == data.columns.end()) {
    ADD_FAILURE() << "series column missing: " << name;
    return {};
  }
  return data.values[static_cast<std::size_t>(it - data.columns.begin())];
}

}  // namespace

TEST(ObsRoundSeries, PerRoundDeltasAreExactUnderParallelIncrements) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& a = registry.counter("series_test/a");
  obs::Counter& b = registry.counter("series_test/b");
  a.add(3);  // pre-start increments must not leak into the first row
  obs::RoundSeries::start();
  ASSERT_TRUE(obs::RoundSeries::active());
  obs::RoundSeries::start();  // start while active is a no-op

  u::ThreadPool pool(8);
  constexpr std::size_t kAdds = 100000;
  u::parallel_for(
      0, kAdds, [&](std::size_t) { a.add(); }, &pool);
  b.add(500);
  obs::RoundSeries::tick(1);
  a.add(7);
  obs::RoundSeries::tick(2);

  const obs::RoundSeriesData data = obs::RoundSeries::stop();
  EXPECT_FALSE(obs::RoundSeries::active());
  ASSERT_EQ(data.rounds, (std::vector<std::uint64_t>{1, 2}));
  ASSERT_EQ(data.columns.size(), data.values.size());
  EXPECT_TRUE(std::is_sorted(data.columns.begin(), data.columns.end()));
  // Exactly-once accounting: the sharded counter's parallel adds all land in
  // the round whose tick closed them.
  EXPECT_EQ(series_column(data, "series_test/a"),
            (std::vector<std::uint64_t>{kAdds, 7}));
  EXPECT_EQ(series_column(data, "series_test/b"),
            (std::vector<std::uint64_t>{500, 0}));
}

TEST(ObsRoundSeries, LateRegisteredCountersAreZeroBackfilled) {
  obs::RoundSeries::start();
  obs::RoundSeries::tick(1);
  obs::Counter& late =
      obs::MetricsRegistry::global().counter("series_test/late");
  late.add(2);
  obs::RoundSeries::tick(2);
  const obs::RoundSeriesData data = obs::RoundSeries::stop();
  ASSERT_EQ(data.rounds.size(), 2u);
  EXPECT_EQ(series_column(data, "series_test/late"),
            (std::vector<std::uint64_t>{0, 2}));
}

TEST(ObsRoundSeries, CsvAndJsonExportsAreColumnar) {
  obs::RoundSeriesData data;
  data.rounds = {1, 2};
  data.columns = {"a", "b"};
  data.values = {{3, 4}, {5, 6}};
  EXPECT_EQ(data.to_csv(), "round,a,b\n1,3,5\n2,4,6\n");
  const u::json::Value doc = data.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "p2pvod-series-v1");
  ASSERT_EQ(doc.at("rounds").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("series").at("a").as_array()[1].as_number(), 4.0);
  EXPECT_DOUBLE_EQ(doc.at("series").at("b").as_array()[0].as_number(), 5.0);
}

// --- wall-time statistics and the regression gate ---------------------------

TEST(ObsTrajectory, WallStatsReduceIsRobustToOutliers) {
  const obs::WallStats stats = obs::WallStats::reduce({100.0, 1.0, 2.0});
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_DOUBLE_EQ(stats.median, 2.0);
  EXPECT_DOUBLE_EQ(stats.mad, 1.0);  // |deviations| = {98, 1, 0} -> median 1
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.mean, 103.0 / 3.0, 1e-12);

  const obs::WallStats empty = obs::WallStats::reduce({});
  EXPECT_EQ(empty.runs, 0u);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);

  // Even-count median is the midpoint of the middle pair.
  EXPECT_DOUBLE_EQ(obs::WallStats::reduce({1.0, 2.0, 3.0, 4.0}).median, 2.5);
}

TEST(ObsTrajectory, WallStatsJsonRoundTrips) {
  const obs::WallStats stats = obs::WallStats::reduce({0.5, 0.6, 0.7});
  const obs::WallStats back = obs::WallStats::from_json(stats.to_json());
  EXPECT_EQ(back.runs, stats.runs);
  EXPECT_DOUBLE_EQ(back.median, stats.median);
  EXPECT_DOUBLE_EQ(back.mad, stats.mad);
  EXPECT_DOUBLE_EQ(back.mean, stats.mean);
  EXPECT_DOUBLE_EQ(back.stddev, stats.stddev);
  EXPECT_DOUBLE_EQ(back.min, stats.min);
  EXPECT_DOUBLE_EQ(back.max, stats.max);
}

namespace {

obs::TrajectoryPoint make_point(const std::string& label, double scale,
                                std::vector<double> totals,
                                std::vector<double> sweep_stage) {
  obs::TrajectoryPoint point;
  point.label = label;
  point.scale = scale;
  obs::ScenarioPerf perf;
  perf.total = obs::WallStats::reduce(std::move(totals));
  perf.stages.emplace("sweep", obs::WallStats::reduce(std::move(sweep_stage)));
  point.scenarios.emplace("threshold", std::move(perf));
  return point;
}

}  // namespace

TEST(ObsTrajectory, JsonRoundTripsAndReferencePicksMostRecentSameScale) {
  obs::Trajectory trajectory;
  trajectory.points.push_back(
      make_point("a", 0.25, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.2}));
  trajectory.points.push_back(
      make_point("b", 1.0, {2.0, 2.0, 2.0}, {1.0, 1.0, 1.0}));
  trajectory.points.push_back(
      make_point("c", 0.25, {0.4, 0.4, 0.4}, {0.2, 0.2, 0.2}));

  const obs::Trajectory back =
      obs::Trajectory::from_json(trajectory.to_json());
  ASSERT_EQ(back.points.size(), 3u);
  EXPECT_EQ(back.points[1].label, "b");
  EXPECT_DOUBLE_EQ(back.points[1].scale, 1.0);
  EXPECT_DOUBLE_EQ(
      back.points[2].scenarios.at("threshold").total.median, 0.4);
  EXPECT_DOUBLE_EQ(
      back.points[0].scenarios.at("threshold").stages.at("sweep").median,
      0.2);

  ASSERT_NE(back.reference(0.25), nullptr);
  EXPECT_EQ(back.reference(0.25)->label, "c");  // most recent at that scale
  ASSERT_NE(back.reference(1.0), nullptr);
  EXPECT_EQ(back.reference(1.0)->label, "b");
  EXPECT_EQ(back.reference(0.5), nullptr);

  EXPECT_THROW((void)obs::Trajectory::from_json(
                   u::json::parse(R"({"schema":"wrong"})")),
               std::runtime_error);
}

TEST(ObsTrajectory, GateFlagsTwoXSlowdownAndPassesNoise) {
  obs::Trajectory history;
  history.points.push_back(
      make_point("seed", 0.25, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.2}));

  // 2x total slowdown: limit = 0.5 + max(0.05, 0.25*0.5, 0) = 0.625 < 1.0.
  const obs::TrajectoryPoint slow =
      make_point("slow", 0.25, {1.0, 1.0, 1.0}, {0.2, 0.2, 0.2});
  const std::vector<obs::GateFinding> flagged =
      obs::gate_compare(slow, history);
  ASSERT_EQ(flagged.size(), 2u);  // total first, then the sweep stage
  EXPECT_EQ(flagged[0].stage, "");
  EXPECT_TRUE(flagged[0].regression);
  EXPECT_DOUBLE_EQ(flagged[0].reference_median, 0.5);
  EXPECT_DOUBLE_EQ(flagged[0].candidate_median, 1.0);
  EXPECT_DOUBLE_EQ(flagged[0].limit, 0.625);
  EXPECT_EQ(flagged[1].stage, "sweep");
  EXPECT_FALSE(flagged[1].regression);

  // Noise within the relative band passes.
  const obs::TrajectoryPoint noisy =
      make_point("noisy", 0.25, {0.55, 0.55, 0.55}, {0.21, 0.21, 0.21});
  for (const obs::GateFinding& finding : obs::gate_compare(noisy, history)) {
    EXPECT_FALSE(finding.regression) << finding.scenario << ":"
                                     << finding.stage;
  }

  // A 2x slowdown in one *stage* is flagged even when the total stays put.
  const obs::TrajectoryPoint stage_slow =
      make_point("stage", 0.25, {0.5, 0.5, 0.5}, {0.4, 0.4, 0.4});
  const std::vector<obs::GateFinding> stage_findings =
      obs::gate_compare(stage_slow, history);
  ASSERT_EQ(stage_findings.size(), 2u);
  EXPECT_FALSE(stage_findings[0].regression);
  EXPECT_TRUE(stage_findings[1].regression);
  EXPECT_EQ(stage_findings[1].stage, "sweep");
}

TEST(ObsTrajectory, GateBandWidensWithObservedMad) {
  obs::Trajectory history;
  history.points.push_back(
      make_point("seed", 0.25, {0.50, 0.52, 0.48}, {0.2, 0.2, 0.2}));
  // mad(ref)=0.02, mad(cand)=0.02: band = max(0.05, 0.125, 4*0.04)=0.16, so
  // a 0.6 median passes where a zero-MAD gate at rel_tol=0.1 would flag it.
  const obs::TrajectoryPoint cand =
      make_point("cand", 0.25, {0.60, 0.62, 0.58}, {0.2, 0.2, 0.2});
  obs::GateOptions tight;
  tight.rel_tol = 0.1;
  tight.abs_slack = 0.01;
  const std::vector<obs::GateFinding> findings =
      obs::gate_compare(cand, history, tight);
  ASSERT_FALSE(findings.empty());
  EXPECT_FALSE(findings[0].regression);
  EXPECT_DOUBLE_EQ(findings[0].limit, 0.5 + 4.0 * 0.04);
}

TEST(ObsTrajectory, GateSkipsMismatchedScalesAndNewScenarios) {
  obs::Trajectory history;
  history.points.push_back(
      make_point("seed", 0.25, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.2}));

  // Candidate at a never-gated scale passes vacuously.
  const obs::TrajectoryPoint full_scale =
      make_point("full", 1.0, {9.0, 9.0, 9.0}, {5.0, 5.0, 5.0});
  EXPECT_TRUE(obs::gate_compare(full_scale, history).empty());

  // Scenarios and stages new to the candidate produce no finding.
  obs::TrajectoryPoint cand =
      make_point("cand", 0.25, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.2});
  obs::ScenarioPerf fresh;
  fresh.total = obs::WallStats::reduce({99.0});
  cand.scenarios.emplace("brand_new", std::move(fresh));
  cand.scenarios.at("threshold")
      .stages.emplace("new_stage", obs::WallStats::reduce({42.0}));
  const std::vector<obs::GateFinding> findings =
      obs::gate_compare(cand, history);
  ASSERT_EQ(findings.size(), 2u);
  for (const obs::GateFinding& finding : findings) {
    EXPECT_EQ(finding.scenario, "threshold");
    EXPECT_FALSE(finding.regression);
  }
}

namespace {

u::json::Value bench_doc(const std::string& id, double scale, double wall,
                         double sweep_wall) {
  std::ostringstream doc;
  doc << R"({"schema":"p2pvod-bench-v1","id":")" << id
      << R"(","scale":)" << scale << R"(,"wall_seconds":)" << wall
      << R"(,"stages":[{"name":"sweep","wall_seconds":)" << sweep_wall
      << "}]}";
  return u::json::parse(doc.str());
}

}  // namespace

TEST(ObsTrajectory, ReduceBenchRunsGroupsByScenarioId) {
  const std::vector<u::json::Value> documents = {
      bench_doc("threshold", 0.25, 1.0, 0.5),
      bench_doc("threshold", 0.25, 3.0, 0.7),
      bench_doc("churn", 0.25, 4.0, 1.0),
      bench_doc("threshold", 0.25, 2.0, 0.6),
  };
  const obs::TrajectoryPoint point =
      obs::reduce_bench_runs(documents, "ci-123");
  EXPECT_EQ(point.label, "ci-123");
  EXPECT_DOUBLE_EQ(point.scale, 0.25);
  ASSERT_EQ(point.scenarios.size(), 2u);
  const obs::ScenarioPerf& threshold = point.scenarios.at("threshold");
  EXPECT_EQ(threshold.total.runs, 3u);
  EXPECT_DOUBLE_EQ(threshold.total.median, 2.0);
  EXPECT_DOUBLE_EQ(threshold.stages.at("sweep").median, 0.6);
  EXPECT_EQ(point.scenarios.at("churn").total.runs, 1u);
  EXPECT_DOUBLE_EQ(point.scenarios.at("churn").total.median, 4.0);
}

TEST(ObsTrajectory, ReduceBenchRunsRejectsMixedScalesAndEmptyInput) {
  const std::vector<u::json::Value> mixed = {
      bench_doc("threshold", 0.25, 1.0, 0.5),
      bench_doc("threshold", 1.0, 4.0, 2.0),
  };
  EXPECT_THROW((void)obs::reduce_bench_runs(mixed, "x"), std::runtime_error);
  EXPECT_THROW((void)obs::reduce_bench_runs({}, "x"), std::runtime_error);
}

// --- scenario integration ---------------------------------------------------

namespace {

/// Sink capturing the completed run so tests can inspect ScenarioRun::metrics.
struct MetricsCapture final : sc::ResultSink {
  std::optional<sc::ScenarioRun> run;
  void on_complete(const sc::Scenario& /*scenario*/,
                   const sc::ScenarioRun& completed,
                   double /*wall_seconds*/) override {
    run = completed;
  }
};

/// Run a builtin scenario on a fresh pool and return the kStable slice of
/// its metric delta.
obs::MetricsSnapshot stable_metrics_with_threads(const std::string& id,
                                                 std::size_t threads) {
  const sc::Scenario& scenario = sc::ScenarioRegistry::builtin().at(id);
  u::ThreadPool pool(threads);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  options.collect_metrics = true;
  MetricsCapture capture;
  sc::run_scenario(scenario, {&capture}, options);
  EXPECT_TRUE(capture.run.has_value());
  EXPECT_TRUE(capture.run->metrics.has_value());
  return capture.run->metrics->with_stability(obs::Stability::kStable);
}

}  // namespace

// The sparse round path's mirrored counters (rows built, row patches, full
// rebuilds, ...) are kStable: identical at 1, 4, and 8 threads. Uses the E16
// scale ladder, the only builtin scenario that exercises the sparse engine.
TEST(ObsSparseCounters, SparsePathCountersAreThreadCountIndependent) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.001");
  const obs::MetricsSnapshot serial =
      stable_metrics_with_threads("scaleladder", 1);
  const obs::MetricsSnapshot four =
      stable_metrics_with_threads("scaleladder", 4);
  const obs::MetricsSnapshot eight =
      stable_metrics_with_threads("scaleladder", 8);

  ASSERT_FALSE(serial.values.empty());
  // The run must actually have exercised the sparse engine.
  EXPECT_GT(serial.values.at("sim/sparse_rows_built").count, 0u);
  ASSERT_EQ(serial.values.count("sim/sparse_row_patches"), 1u);
  ASSERT_EQ(serial.values.count("sim/sparse_full_rebuilds"), 1u);

  EXPECT_EQ(serial.values.size(), four.values.size());
  EXPECT_EQ(serial.values.size(), eight.values.size());
  for (const auto& [name, value] : serial.values) {
    ASSERT_EQ(four.values.count(name), 1u) << name;
    ASSERT_EQ(eight.values.count(name), 1u) << name;
    EXPECT_EQ(value, four.values.at(name))
        << "metric drifted at 4 threads: " << name;
    EXPECT_EQ(value, eight.values.at(name))
        << "metric drifted at 8 threads: " << name;
  }
}

TEST(ObsProfileScenario, ProfileDirProducesValidProfileWithSweepSpans) {
  const std::string dir = testing::TempDir() + "/obs_profile_scenario";
  std::filesystem::remove_all(dir);
  const sc::Scenario& scenario =
      sc::ScenarioRegistry::builtin().at("threshold");
  const ScopedEnv scale("P2PVOD_SCALE", "0.25");
  u::ThreadPool pool(4);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  options.profile_dir = dir;
  std::ostringstream out;
  sc::TableSink sink(out);
  sc::run_scenario(scenario, {&sink}, options);

  const std::string json_path = dir + "/PROFILE_threshold.json";
  ASSERT_TRUE(std::filesystem::exists(json_path));
  const u::json::Value doc = u::json::parse_file(json_path);
  EXPECT_EQ(doc.at("schema").as_string(), "p2pvod-profile-v1");
  EXPECT_GT(doc.at("span_count").as_number(), 0.0);

  std::ifstream collapsed_in(dir + "/PROFILE_threshold.collapsed",
                             std::ios::binary);
  ASSERT_TRUE(collapsed_in.good());
  std::ostringstream collapsed;
  collapsed << collapsed_in.rdbuf();
  EXPECT_NE(collapsed.str().find("sweep/point"), std::string::npos);
  EXPECT_NE(collapsed.str().find("scenario/threshold"), std::string::npos);
  // No trace was requested: profiling alone must not leave a trace file.
  EXPECT_FALSE(std::filesystem::exists(dir + "/TRACE_threshold.json"));
}

TEST(ObsSeriesScenario, SeriesDirProducesPerRoundCsvAndJson) {
  const std::string dir = testing::TempDir() + "/obs_series_scenario";
  std::filesystem::remove_all(dir);
  const sc::Scenario& scenario =
      sc::ScenarioRegistry::builtin().at("threshold");
  const ScopedEnv scale("P2PVOD_SCALE", "0.25");
  u::ThreadPool pool(4);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  options.series_dir = dir;
  std::ostringstream out;
  sc::TableSink sink(out);
  sc::run_scenario(scenario, {&sink}, options);
  EXPECT_FALSE(obs::RoundSeries::active());  // runner closed the window

  const std::string json_path = dir + "/SERIES_threshold.json";
  ASSERT_TRUE(std::filesystem::exists(json_path));
  const u::json::Value doc = u::json::parse_file(json_path);
  EXPECT_EQ(doc.at("schema").as_string(), "p2pvod-series-v1");
  EXPECT_FALSE(doc.at("rounds").as_array().empty());
  ASSERT_TRUE(doc.at("series").is_object());
  EXPECT_NE(doc.at("series").find("sim/rounds"), nullptr);

  std::ifstream csv_in(dir + "/SERIES_threshold.csv");
  ASSERT_TRUE(csv_in.good());
  std::string header;
  std::getline(csv_in, header);
  EXPECT_EQ(header.rfind("round,", 0), 0u);
}

TEST(ObsProfileScenario, ApplyObsEnvReadsProfileAndSeriesKnobs) {
  sc::RunOptions options;
  {
    const ScopedEnv profile("P2PVOD_PROFILE", "/tmp/profiles");
    const ScopedEnv series("P2PVOD_SERIES", "/tmp/series");
    sc::apply_obs_env(options);
    EXPECT_EQ(options.profile_dir, "/tmp/profiles");
    EXPECT_EQ(options.series_dir, "/tmp/series");
  }
  sc::RunOptions off;
  sc::apply_obs_env(off);
  EXPECT_TRUE(off.profile_dir.empty());
  EXPECT_TRUE(off.series_dir.empty());
}
