// Unit tests for src/core: config validation, VodSystem assembly (both
// homogeneous and heterogeneous), planner, verdict.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/planner.hpp"
#include "core/verdict.hpp"
#include "core/vod_system.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/zipf.hpp"

namespace c = p2pvod::core;
namespace m = p2pvod::model;
namespace w = p2pvod::workload;

// ----------------------------------------------------------------- config

TEST(Config, DefaultsValidate) { EXPECT_NO_THROW(c::SystemConfig{}.validate()); }

TEST(Config, RejectsBadValues) {
  c::SystemConfig config;
  config.n = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.mu = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.duration = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, DescribeMentionsOverrides) {
  c::SystemConfig config;
  config.c = 4;
  config.k = 7;
  const auto text = config.describe();
  EXPECT_NE(text.find("c=4"), std::string::npos);
  EXPECT_NE(text.find("k=7"), std::string::npos);
}

// ----------------------------------------------------------------- verdict

TEST(Verdict, BelowThreshold) {
  const auto profile = m::CapacityProfile::homogeneous(10, 0.8, 4.0);
  const auto verdict = c::Verdict::classify(profile, 4);
  EXPECT_EQ(verdict.regime, c::Regime::kBelowThreshold);
  EXPECT_EQ(verdict.constant_catalog_limit, 16u);
}

TEST(Verdict, AtThreshold) {
  const auto profile = m::CapacityProfile::homogeneous(10, 1.0, 4.0);
  EXPECT_EQ(c::Verdict::classify(profile, 4).regime, c::Regime::kAtThreshold);
}

TEST(Verdict, ScalableHomogeneous) {
  const auto profile = m::CapacityProfile::homogeneous(10, 1.5, 4.0);
  const auto verdict = c::Verdict::classify(profile, 4);
  EXPECT_EQ(verdict.regime, c::Regime::kScalable);
  EXPECT_NE(verdict.message.find("Theorem 1"), std::string::npos);
}

TEST(Verdict, HeterogeneousDeficitBound) {
  // u = 1.05 but Δ(1)/n = 0.25: u <= 1 + 0.25.
  const auto profile = m::CapacityProfile::two_class(4, 2, 0.5, 2, 1.6, 8);
  const auto verdict = c::Verdict::classify(profile, 4);
  EXPECT_EQ(verdict.regime, c::Regime::kDeficitBound);
}

TEST(Verdict, HeterogeneousScalable) {
  const auto profile = m::CapacityProfile::two_class(4, 1, 0.5, 2, 4.0, 8);
  const auto verdict = c::Verdict::classify(profile, 4);
  EXPECT_EQ(verdict.regime, c::Regime::kScalable);
  EXPECT_NE(verdict.message.find("Theorem 2"), std::string::npos);
}

TEST(Verdict, RegimeNames) {
  EXPECT_STREQ(c::regime_name(c::Regime::kScalable), "scalable");
  EXPECT_STREQ(c::regime_name(c::Regime::kBelowThreshold),
               "below-threshold");
}

// ----------------------------------------------------------------- planner

TEST(Planner, TheoryModeMatchesTheorem1) {
  const c::CatalogPlanner planner(100000, 1.5, 4.0, 1.2);
  const auto plan = planner.plan(c::PlanMode::kTheory);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.c, 8u);
  EXPECT_EQ(plan.k, planner.bounds().k);
  EXPECT_GT(plan.m, 0u);
  EXPECT_GT(plan.m_closed_form, 0.0);
}

TEST(Planner, TheoryInfeasibleBelowThreshold) {
  const c::CatalogPlanner planner(1000, 0.9, 4.0, 1.2);
  const auto plan = planner.plan(c::PlanMode::kTheory);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.regime, c::Regime::kBelowThreshold);
}

TEST(Planner, TheoryFlagsSmallN) {
  // Theorem k ~ hundreds; with n=20 and d=4 the storage budget d·n = 80
  // cannot host it.
  const c::CatalogPlanner planner(20, 1.2, 4.0, 1.5);
  const auto plan = planner.plan(c::PlanMode::kTheory);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.notes.find("storage budget"), std::string::npos);
}

TEST(Planner, CalibratedModeFindsSmallerK) {
  const c::CatalogPlanner planner(32, 2.5, 4.0, 1.3, /*duration=*/10);
  const auto plan = planner.plan(c::PlanMode::kCalibrated, /*trials=*/3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.k, 1u);
  EXPECT_LE(plan.k, 64u);
  EXPECT_GT(plan.m, 0u);
  // The whole point: empirical k is far below the worst-case theory k.
  EXPECT_LT(static_cast<double>(plan.k), plan.k_theory);
}

// ----------------------------------------------------------------- vod system

TEST(VodSystem, BuildDerivesParametersFromTheorem1) {
  c::SystemConfig config;
  config.n = 400;
  config.u = 1.5;
  config.d = 4.0;
  config.mu = 1.2;
  const auto system = c::VodSystem::build(config);
  EXPECT_EQ(system.config().c, 8u);
  EXPECT_GT(system.config().k, 0u);
  EXPECT_GT(system.config().m, 0u);
  EXPECT_EQ(system.catalog().video_count(), system.config().m);
  system.allocation().check_integrity(&system.profile(),
                                      system.config().c);
}

TEST(VodSystem, BuildHonorsOverrides) {
  c::SystemConfig config;
  config.n = 50;
  config.u = 2.0;
  config.c = 4;
  config.k = 6;
  config.m = 25;
  const auto system = c::VodSystem::build(config);
  EXPECT_EQ(system.catalog().video_count(), 25u);
  EXPECT_EQ(system.catalog().stripes_per_video(), 4u);
}

TEST(VodSystem, BuildRejectsBelowThresholdWithoutOverrides) {
  c::SystemConfig config;
  config.u = 0.8;
  EXPECT_THROW((void)c::VodSystem::build(config), std::invalid_argument);
}

TEST(VodSystem, BelowThresholdBuildableWithExplicitParams) {
  c::SystemConfig config;
  config.n = 20;
  config.u = 0.8;
  config.c = 2;
  config.k = 2;
  config.m = 10;
  EXPECT_NO_THROW((void)c::VodSystem::build(config));
}

TEST(VodSystem, RunZipfWorkloadSucceeds) {
  c::SystemConfig config;
  config.n = 48;
  config.u = 2.5;
  config.d = 4.0;
  config.mu = 1.3;
  config.c = 4;   // explicit small protocol for test speed
  config.k = 8;
  config.duration = 10;
  const auto system = c::VodSystem::build(config);
  w::ZipfDemand zipf(system.catalog().video_count(), 0.8, 0.1,
                     /*seed=*/2024);
  const auto report = system.run(zipf, 40);
  EXPECT_TRUE(report.success);
  EXPECT_GT(report.demands_admitted, 0u);
}

TEST(VodSystem, FreshSimulatorPerRun) {
  c::SystemConfig config;
  config.n = 24;
  config.u = 2.5;
  config.c = 4;
  config.k = 6;
  config.duration = 8;
  const auto system = c::VodSystem::build(config);
  w::FlashCrowd crowd1(0, 1.5);
  const auto r1 = system.run(crowd1, 20);
  w::FlashCrowd crowd2(0, 1.5);
  const auto r2 = system.run(crowd2, 20);
  // Identical workloads on fresh simulators: identical reports.
  EXPECT_EQ(r1.demands_admitted, r2.demands_admitted);
  EXPECT_EQ(r1.chunks_served, r2.chunks_served);
}

TEST(VodSystem, HeterogeneousBuildInstallsCompensation) {
  c::SystemConfig config;
  config.n = 12;
  config.mu = 1.0;
  config.c = 16;
  config.k = 4;
  config.duration = 10;
  auto profile = m::CapacityProfile::two_class(12, 3, 0.5, 4.0, 4.0, 8.0);
  const auto system =
      c::VodSystem::build_heterogeneous(config, std::move(profile), 1.5);
  ASSERT_TRUE(system.compensation().has_value());
  EXPECT_EQ(system.compensation()->poor_count(), 3u);
  EXPECT_NE(system.describe().find("compensation"), std::string::npos);
}

TEST(VodSystem, HeterogeneousRejectsUncompensatable) {
  c::SystemConfig config;
  config.n = 4;
  config.c = 8;
  config.k = 2;
  auto profile = m::CapacityProfile::homogeneous(4, 0.5, 4.0);  // all poor
  EXPECT_THROW((void)c::VodSystem::build_heterogeneous(config,
                                                       std::move(profile),
                                                       1.5),
               std::invalid_argument);
}

TEST(VodSystem, HeterogeneousRunServesPoorBoxes) {
  c::SystemConfig config;
  config.n = 12;
  config.mu = 1.0;
  config.c = 16;
  config.k = 6;
  config.m = 6;
  config.duration = 12;
  auto profile = m::CapacityProfile::two_class(12, 3, 0.5, 4.0, 4.0, 8.0);
  const auto system =
      c::VodSystem::build_heterogeneous(config, std::move(profile), 1.5);
  w::ZipfDemand zipf(system.catalog().video_count(), 0.5, 0.2, 77);
  const auto report = system.run(zipf, 50);
  EXPECT_TRUE(report.success) << report.summary();
  EXPECT_GT(report.demands_admitted, 0u);
}

TEST(VodSystem, ProfileSizeMismatchThrows) {
  c::SystemConfig config;
  config.n = 10;
  auto profile = m::CapacityProfile::homogeneous(5, 2.0, 4.0);
  EXPECT_THROW((void)c::VodSystem::build_heterogeneous(config,
                                                       std::move(profile),
                                                       1.5),
               std::invalid_argument);
}
