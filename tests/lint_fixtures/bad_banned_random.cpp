// Lint fixture: every banned randomness source in one file. Never compiled;
// consumed by tests/test_lint.cpp through lint_file().
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int roll() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // BAD twice over
  std::random_device entropy;                        // BAD
  return std::rand() + static_cast<int>(entropy());  // BAD
}

}  // namespace fixture
