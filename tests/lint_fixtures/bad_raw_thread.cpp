// Lint fixture: raw std::thread construction and detach() outside the
// ThreadPool. Never compiled; consumed by tests/test_lint.cpp.
#include <thread>

namespace fixture {

void fire_and_forget() {
  std::thread worker([] {});  // BAD
  worker.detach();            // BAD
}

}  // namespace fixture
