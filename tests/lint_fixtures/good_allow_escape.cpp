// Lint fixture: real violations silenced through the escape hatch, both the
// same-line and previous-line forms, each with the rationale the contract
// expects. Must lint clean. Never compiled; consumed by tests/test_lint.cpp.
#include <chrono>
#include <cstdint>
#include <unordered_map>

namespace fixture {

std::uint64_t suppressed(const std::unordered_map<int, int>& cache) {
  std::uint64_t sum = 0;
  // Order cannot escape: addition over all entries is commutative here.
  // p2pvod-lint: allow(unordered-iteration)
  for (const auto& [key, value] : cache) {
    sum += static_cast<std::uint64_t>(value);
  }
  const auto t0 = std::chrono::steady_clock::now();  // p2pvod-lint: allow(wall-clock) — progress logging only
  sum += static_cast<std::uint64_t>(t0.time_since_epoch().count() > 0);
  return sum;
}

}  // namespace fixture
