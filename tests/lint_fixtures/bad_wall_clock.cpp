// Lint fixture: wall-clock reads outside the timing whitelist. Never
// compiled; consumed by tests/test_lint.cpp through lint_file().
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t ticket() {
  const auto now = std::chrono::steady_clock::now();  // BAD
  const auto wall = std::chrono::system_clock::now();  // BAD
  return static_cast<std::uint64_t>(now.time_since_epoch().count()) ^
         static_cast<std::uint64_t>(wall.time_since_epoch().count());
}

}  // namespace fixture
