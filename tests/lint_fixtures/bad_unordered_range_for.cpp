// Lint fixture: range-for over std::unordered_map — the canonical
// determinism break (iteration order is address-dependent). Never compiled;
// consumed by tests/test_lint.cpp through lint_file().
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

std::uint64_t sum_values(const std::unordered_map<std::string, int>& table) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : table) {  // BAD: order leaks into `sum`
    sum = sum * 31 + static_cast<std::uint64_t>(value);
  }
  return sum;
}

}  // namespace fixture
