// Lint fixture: explicit iterator walk over an unordered container, via a
// `using` alias — both the alias and the begin()/end() calls must be seen.
// Never compiled; consumed by tests/test_lint.cpp through lint_file().
#include <cstdint>
#include <unordered_set>

namespace fixture {

using SeenSet = std::unordered_set<std::uint32_t>;

std::uint32_t first_seen(const SeenSet& seen) {
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // BAD
    return *it;
  }
  return 0;
}

}  // namespace fixture
