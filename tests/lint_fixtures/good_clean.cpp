// Lint fixture: a file that exercises every rule's *negative* space — the
// constructs that look adjacent to violations but are fine. Must stay clean
// under all rules. Never compiled; consumed by tests/test_lint.cpp.
#include <cstdint>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fixture {

std::uint64_t ok_patterns(const std::unordered_map<int, int>& cache) {
  // Lookups (not iteration) on unordered containers are the supported use.
  std::uint64_t sum = cache.count(7);
  if (const auto it = cache.find(3); it != cache.end()) {
    sum += static_cast<std::uint64_t>(it->second);
  }
  // Ordered containers may be iterated freely.
  const std::map<int, int> ordered = {{1, 2}, {3, 4}};
  for (const auto& [key, value] : ordered) {
    sum += static_cast<std::uint64_t>(key + value);
  }
  // Classic counted loops are not range-fors.
  for (std::size_t i = 0; i < 4; ++i) sum += i;
  // std::this_thread and thread_local are not raw std::thread usage;
  // "rand" / "time(nullptr)" in comments and strings do not count, and
  // identifiers merely *containing* banned names (strand, mod_time) pass.
  std::this_thread::yield();
  thread_local std::uint64_t strand = 0;
  const char* note = "do not call rand() or time(nullptr) here";
  sum += strand + static_cast<std::uint64_t>(note[0]);
  return sum;
}

std::uint64_t mod_time(std::uint64_t t) { return t % 7; }
std::uint64_t use_mod_time() { return mod_time(0); }

}  // namespace fixture
