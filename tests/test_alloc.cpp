// Unit tests for src/alloc: the Allocation container invariants and the four
// placement schemes (§2.1 permutation/independent, round-robin and
// full-replication baselines).
#include <gtest/gtest.h>

#include <set>

#include "alloc/allocation.hpp"
#include "alloc/allocator.hpp"
#include "alloc/full_replication.hpp"
#include "alloc/independent.hpp"
#include "alloc/permutation.hpp"
#include "alloc/round_robin.hpp"
#include "util/rng.hpp"

namespace a = p2pvod::alloc;
namespace m = p2pvod::model;

namespace {
struct Fixture {
  m::Catalog catalog{20, 4, 16};                          // m=20, c=4
  m::CapacityProfile profile{m::CapacityProfile::homogeneous(16, 1.5, 5.0)};
  p2pvod::util::Rng rng{4242};
};
}  // namespace

// ----------------------------------------------------------------- container

TEST(Allocation, BuildsInverseMaps) {
  a::Allocation alloc(3, 4, {{0, 1}, {1, 1}, {2, 3}, {0, 3}});
  EXPECT_EQ(alloc.holders(1).size(), 2u);
  EXPECT_EQ(alloc.holders(0).size(), 0u);
  EXPECT_TRUE(alloc.box_has(0, 1));
  EXPECT_TRUE(alloc.box_has(0, 3));
  EXPECT_FALSE(alloc.box_has(1, 3));
  alloc.check_integrity();
}

TEST(Allocation, CountsDuplicates) {
  a::Allocation alloc(2, 2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(alloc.duplicate_replicas(), 1u);
  EXPECT_EQ(alloc.holders(1).size(), 1u);   // deduplicated
  EXPECT_EQ(alloc.slot_usage(0), 2u);        // but both slots consumed
}

TEST(Allocation, RejectsOutOfRange) {
  EXPECT_THROW(a::Allocation(1, 1, {{2, 0}}), std::out_of_range);
  EXPECT_THROW(a::Allocation(1, 1, {{0, 5}}), std::out_of_range);
}

TEST(Allocation, ReplicationStats) {
  a::Allocation alloc(4, 2, {{0, 0}, {1, 0}, {2, 0}, {3, 1}});
  EXPECT_EQ(alloc.min_replication(), 1u);
  EXPECT_EQ(alloc.max_replication(), 3u);
  EXPECT_EQ(alloc.max_slot_usage(), 1u);
  EXPECT_NEAR(alloc.mean_slot_usage(), 1.0, 1e-12);
}

TEST(Allocation, VideoDataQuery) {
  const m::Catalog catalog(3, 2, 8);  // stripes: v0={0,1} v1={2,3} v2={4,5}
  a::Allocation alloc(2, 6, {{0, 2}, {1, 5}});
  EXPECT_TRUE(alloc.box_has_video_data(0, catalog, 1));
  EXPECT_FALSE(alloc.box_has_video_data(0, catalog, 0));
  EXPECT_FALSE(alloc.box_has_video_data(0, catalog, 2));
  EXPECT_TRUE(alloc.box_has_video_data(1, catalog, 2));
}

TEST(Allocation, IntegrityDetectsOverCapacity) {
  const auto profile = m::CapacityProfile::homogeneous(1, 1.0, 0.5);
  // 0.5 videos * c=2 -> 1 slot, but two replicas placed.
  a::Allocation alloc(1, 2, {{0, 0}, {0, 1}});
  EXPECT_THROW(alloc.check_integrity(&profile, 2), std::logic_error);
}

// ----------------------------------------------------------------- permutation

TEST(Permutation, ExactReplicationAndBalance) {
  Fixture fx;
  const auto alloc =
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 4, fx.rng);
  alloc.check_integrity(&fx.profile, fx.catalog.stripes_per_video());
  // k*m*c = 320 replicas into 16*20=320 slots: every box exactly full.
  for (m::BoxId b = 0; b < fx.profile.size(); ++b)
    EXPECT_EQ(alloc.slot_usage(b), 20u);
  // Each stripe has <= k holders (== k minus same-box duplicates).
  for (m::StripeId s = 0; s < fx.catalog.stripe_count(); ++s) {
    EXPECT_LE(alloc.holders(s).size(), 4u);
    EXPECT_GE(alloc.holders(s).size(), 1u);
  }
}

TEST(Permutation, DifferentSeedsDifferentPlacements) {
  Fixture fx;
  p2pvod::util::Rng rng1(1), rng2(2);
  const auto a1 =
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 2, rng1);
  const auto a2 =
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 2, rng2);
  bool differs = false;
  for (m::StripeId s = 0; s < fx.catalog.stripe_count() && !differs; ++s) {
    const auto h1 = a1.holders(s);
    const auto h2 = a2.holders(s);
    differs = !std::equal(h1.begin(), h1.end(), h2.begin(), h2.end());
  }
  EXPECT_TRUE(differs);
}

TEST(Permutation, SameSeedReproducible) {
  Fixture fx;
  p2pvod::util::Rng rng1(9), rng2(9);
  const auto a1 =
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 3, rng1);
  const auto a2 =
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 3, rng2);
  for (m::StripeId s = 0; s < fx.catalog.stripe_count(); ++s) {
    const auto h1 = a1.holders(s);
    const auto h2 = a2.holders(s);
    ASSERT_TRUE(std::equal(h1.begin(), h1.end(), h2.begin(), h2.end()));
  }
}

TEST(Permutation, RejectsOverfull) {
  Fixture fx;
  EXPECT_THROW(
      a::PermutationAllocator().allocate(fx.catalog, fx.profile, 5, fx.rng),
      std::invalid_argument);
}

TEST(Permutation, HeterogeneousStorageWeighting) {
  const m::Catalog catalog(10, 2, 8);
  const auto profile = m::CapacityProfile::two_class(4, 2, 1.0, 1.0, 1.0, 9.0);
  p2pvod::util::Rng rng(31);
  const auto alloc = a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  alloc.check_integrity(&profile, 2);
  // Large boxes (18 slots) must hold more than small ones (2 slots) can.
  EXPECT_LE(alloc.slot_usage(0), 2u);
  EXPECT_LE(alloc.slot_usage(1), 2u);
}

// ----------------------------------------------------------------- independent

TEST(Independent, RedrawPolicyFitsCapacity) {
  Fixture fx;
  const auto alloc = a::IndependentAllocator(a::FullBoxPolicy::kRedraw)
                         .allocate(fx.catalog, fx.profile, 4, fx.rng);
  alloc.check_integrity(&fx.profile, fx.catalog.stripes_per_video());
}

TEST(Independent, LoadsAreUnbalanced) {
  // Unlike permutation, independent placement deviates from the mean; with
  // replicas == slots some box must overflow its mean share.
  const m::Catalog catalog(100, 4, 8);
  const auto profile = m::CapacityProfile::homogeneous(50, 1.5, 16.0);
  p2pvod::util::Rng rng(77);
  const auto alloc = a::IndependentAllocator(a::FullBoxPolicy::kRedraw)
                         .allocate(catalog, profile, 4, rng);
  // mean load = 4*400/50 = 32 of 64 slots; max should exceed the mean.
  EXPECT_GT(alloc.max_slot_usage(), 32u);
}

TEST(Independent, FailPolicyThrowsWhenSlotsTight) {
  // k=2 replicas of 20 stripes exactly fill the 40 slots: independent draws
  // hit a full box long before the last replica (deterministic seed).
  const m::Catalog catalog(10, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(5, 1.0, 4.0);
  p2pvod::util::Rng rng(13);
  EXPECT_THROW(a::IndependentAllocator(a::FullBoxPolicy::kFail)
                   .allocate(catalog, profile, 2, rng),
               std::runtime_error);
}

TEST(Independent, RejectsOverfull) {
  Fixture fx;
  EXPECT_THROW(a::IndependentAllocator().allocate(fx.catalog, fx.profile, 6,
                                                  fx.rng),
               std::invalid_argument);
}

// ----------------------------------------------------------------- round robin

TEST(RoundRobin, DeterministicPlacement) {
  Fixture fx;
  p2pvod::util::Rng rng1(1), rng2(999);
  const auto a1 =
      a::RoundRobinAllocator().allocate(fx.catalog, fx.profile, 3, rng1);
  const auto a2 =
      a::RoundRobinAllocator().allocate(fx.catalog, fx.profile, 3, rng2);
  for (m::StripeId s = 0; s < fx.catalog.stripe_count(); ++s) {
    const auto h1 = a1.holders(s);
    const auto h2 = a2.holders(s);
    ASSERT_TRUE(std::equal(h1.begin(), h1.end(), h2.begin(), h2.end()));
  }
}

TEST(RoundRobin, ExactlyKDistinctHolders) {
  Fixture fx;
  const auto alloc =
      a::RoundRobinAllocator().allocate(fx.catalog, fx.profile, 3, fx.rng);
  for (m::StripeId s = 0; s < fx.catalog.stripe_count(); ++s)
    EXPECT_EQ(alloc.holders(s).size(), 3u);
  EXPECT_EQ(alloc.duplicate_replicas(), 0u);
}

TEST(RoundRobin, PerfectlyBalancedLoad) {
  Fixture fx;
  const auto alloc =
      a::RoundRobinAllocator().allocate(fx.catalog, fx.profile, 4, fx.rng);
  for (m::BoxId b = 0; b < fx.profile.size(); ++b)
    EXPECT_EQ(alloc.slot_usage(b), 20u);
}

TEST(RoundRobin, RejectsKAboveN) {
  Fixture fx;
  const m::Catalog small(2, 4, 16);
  EXPECT_THROW(
      a::RoundRobinAllocator().allocate(small, fx.profile, 17, fx.rng),
      std::invalid_argument);
}

// ----------------------------------------------------------------- full replication

TEST(FullReplication, EveryBoxHasEveryVideo) {
  const m::Catalog catalog(12, 4, 16);  // m = 12 <= d*c = 20
  Fixture fx;
  const auto alloc = a::FullReplicationAllocator().allocate(
      catalog, fx.profile, /*k ignored*/ 1, fx.rng);
  for (m::BoxId b = 0; b < fx.profile.size(); ++b) {
    for (m::VideoId v = 0; v < catalog.video_count(); ++v)
      EXPECT_TRUE(alloc.box_has_video_data(b, catalog, v));
  }
}

TEST(FullReplication, StripeIndexFollowsBoxClass) {
  const m::Catalog catalog(5, 4, 16);
  Fixture fx;
  const auto alloc =
      a::FullReplicationAllocator().allocate(catalog, fx.profile, 1, fx.rng);
  // Box b stores stripe index b mod c of every video.
  for (m::BoxId b = 0; b < fx.profile.size(); ++b) {
    for (m::VideoId v = 0; v < catalog.video_count(); ++v) {
      EXPECT_TRUE(alloc.box_has(b, catalog.stripe_id(v, b % 4)));
    }
  }
}

TEST(FullReplication, MaxCatalogOfEmptyProfileIsZero) {
  EXPECT_EQ(
      a::FullReplicationAllocator::max_catalog(m::CapacityProfile(), 4), 0u);
}

TEST(FullReplication, MaxCatalogBound) {
  Fixture fx;
  EXPECT_EQ(a::FullReplicationAllocator::max_catalog(fx.profile, 4), 20u);
  const m::Catalog too_big(21, 4, 16);
  EXPECT_THROW(
      a::FullReplicationAllocator().allocate(too_big, fx.profile, 1, fx.rng),
      std::invalid_argument);
}

TEST(FullReplication, HoldersSpreadAcrossClasses) {
  const m::Catalog catalog(3, 4, 16);
  Fixture fx;  // n = 16 boxes, c = 4 -> 4 holders per stripe
  const auto alloc =
      a::FullReplicationAllocator().allocate(catalog, fx.profile, 1, fx.rng);
  for (m::StripeId s = 0; s < catalog.stripe_count(); ++s)
    EXPECT_EQ(alloc.holders(s).size(), 4u);
}

// ----------------------------------------------------------------- factory

TEST(Factory, MakesEveryScheme) {
  for (const auto scheme :
       {a::Scheme::kPermutation, a::Scheme::kIndependent,
        a::Scheme::kRoundRobin, a::Scheme::kFullReplication}) {
    const auto allocator = a::make_allocator(scheme);
    ASSERT_NE(allocator, nullptr);
    EXPECT_EQ(allocator->name(), a::scheme_name(scheme));
  }
}

TEST(Factory, AllSchemesProduceValidAllocations) {
  const m::Catalog catalog(8, 4, 16);
  const auto profile = m::CapacityProfile::homogeneous(8, 1.5, 4.0);
  for (const auto scheme :
       {a::Scheme::kPermutation, a::Scheme::kIndependent,
        a::Scheme::kRoundRobin, a::Scheme::kFullReplication}) {
    p2pvod::util::Rng rng(3);
    const auto alloc =
        a::make_allocator(scheme)->allocate(catalog, profile, 2, rng);
    alloc.check_integrity(&profile, 4);
    for (m::StripeId s = 0; s < catalog.stripe_count(); ++s)
      EXPECT_GE(alloc.holders(s).size(), 1u) << a::scheme_name(scheme);
  }
}
