// Unit tests for src/sim: swarm registry, cache index availability rule,
// strategies, and hand-checkable end-to-end simulator scenarios.
#include <gtest/gtest.h>

#include "alloc/allocation.hpp"
#include "sim/cache.hpp"
#include "sim/simulator.hpp"
#include "sim/strategy.hpp"
#include "sim/swarm.hpp"
#include "workload/trace.hpp"

namespace s = p2pvod::sim;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace w = p2pvod::workload;

// ----------------------------------------------------------------- swarm

TEST(Swarm, TicketsAreSequential) {
  s::SwarmRegistry reg(2);
  EXPECT_EQ(reg.enter(0, 0), 0u);
  EXPECT_EQ(reg.enter(0, 0), 1u);
  EXPECT_EQ(reg.enter(1, 0), 0u);
  EXPECT_EQ(reg.total_entries(0), 2u);
}

TEST(Swarm, SizeTracksEnterLeave) {
  s::SwarmRegistry reg(1);
  reg.enter(0, 0);
  reg.enter(0, 0);
  EXPECT_EQ(reg.size(0), 2u);
  reg.leave(0);
  EXPECT_EQ(reg.size(0), 1u);
  EXPECT_EQ(reg.peak_size(), 2u);
}

TEST(Swarm, LeaveOnEmptyThrows) {
  s::SwarmRegistry reg(1);
  EXPECT_THROW(reg.leave(0), std::logic_error);
}

TEST(Swarm, AdmissibleJoinsFollowGrowthRule) {
  s::SwarmRegistry reg(1);
  reg.begin_round(0);
  // f=0: ceil(max(0,1)*2) = 2 joins allowed.
  EXPECT_EQ(reg.admissible_joins(0, 2.0), 2u);
  reg.enter(0, 0);
  reg.enter(0, 0);
  EXPECT_EQ(reg.admissible_joins(0, 2.0), 0u);
  reg.begin_round(1);
  // f=2: up to ceil(4)=4, so 2 more.
  EXPECT_EQ(reg.admissible_joins(0, 2.0), 2u);
}

TEST(Swarm, OutOfRangeThrows) {
  s::SwarmRegistry reg(1);
  EXPECT_THROW((void)reg.size(1), std::out_of_range);
  EXPECT_THROW((void)reg.enter(1, 0), std::out_of_range);
}

// --- growth-rule edge cases (previously only exercised through scenarios) ---

TEST(Swarm, AdmissibleJoinsWithMuBelowOne) {
  // µ < 1 is outside the paper's model (configs reject it) but the registry
  // must still behave: ceil(max(f,1)·µ) keeps at least one admissible join
  // into an empty swarm and shrinks — never underflows — a populated one.
  s::SwarmRegistry reg(1);
  reg.begin_round(0);
  // f=0: ceil(max(0,1)*0.5) = ceil(0.5) = 1 join allowed.
  EXPECT_EQ(reg.admissible_joins(0, 0.5), 1u);
  reg.enter(0, 0);
  reg.enter(0, 0);
  reg.enter(0, 0);
  reg.begin_round(1);
  // f=3: limit ceil(1.5) = 2 < current size 3 — clamped at 0, no underflow.
  EXPECT_EQ(reg.admissible_joins(0, 0.5), 0u);
}

TEST(Swarm, EmptySwarmReentryAfterFullDrain) {
  s::SwarmRegistry reg(1);
  reg.enter(0, 0);
  reg.enter(0, 0);
  reg.leave(0);
  reg.leave(0);
  EXPECT_EQ(reg.size(0), 0u);
  // Re-entry after a full drain: growth restarts from the empty-swarm floor
  // f=1, and the lifetime ticket counter keeps counting (tickets are entry
  // numbers, not population).
  reg.begin_round(5);
  EXPECT_EQ(reg.admissible_joins(0, 1.3), 2u);  // ceil(1.3) = 2
  EXPECT_EQ(reg.enter(0, 5), 2u);               // third lifetime entry
  EXPECT_EQ(reg.size(0), 1u);
  EXPECT_EQ(reg.total_entries(0), 3u);
  EXPECT_EQ(reg.peak_size(), 2u);  // peak survives the drain
}

TEST(Swarm, AdmissibleJoinsClampAtCeiling) {
  s::SwarmRegistry reg(1);
  reg.begin_round(0);
  reg.enter(0, 0);
  reg.enter(0, 0);
  reg.begin_round(1);
  // f_start=2, µ=1.3: limit ceil(2.6) = 3, one more join admissible.
  EXPECT_EQ(reg.admissible_joins(0, 1.3), 1u);
  reg.enter(0, 1);
  EXPECT_EQ(reg.admissible_joins(0, 1.3), 0u);
  // Joins beyond the ceiling (a generator ignoring the limiter) clamp at 0
  // instead of wrapping around.
  reg.enter(0, 1);
  EXPECT_EQ(reg.size(0), 4u);
  EXPECT_EQ(reg.admissible_joins(0, 1.3), 0u);
  // Integer-valued µ on an exact boundary: f_start=2, µ=2 -> limit 4 == size.
  reg.begin_round(2);
  EXPECT_EQ(reg.admissible_joins(0, 2.0), 4u);  // f_start=4: ceil(8)-4
  EXPECT_EQ(reg.admissible_joins(0, 1.0), 0u);  // limit 4 == current size
}

// ----------------------------------------------------------------- cache

TEST(Cache, EarlierJoinerServesLaterRequest) {
  s::CacheIndex cache(1, /*window=*/8);
  cache.grant(0, /*box=*/3, /*entry=*/5);
  std::vector<m::BoxId> out;
  // Request issued at 6 (strictly after 5): box 3 qualifies at round 7.
  EXPECT_EQ(cache.collect_servers(0, 6, 7, m::kInvalidBox, out), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(Cache, SameRoundJoinersCannotServeEachOther) {
  s::CacheIndex cache(1, 8);
  cache.grant(0, 3, 5);
  std::vector<m::BoxId> out;
  // Request also issued at 5: strict inequality excludes box 3 (§2.2).
  EXPECT_EQ(cache.collect_servers(0, 5, 7, m::kInvalidBox, out), 0u);
}

TEST(Cache, RetentionWindowExpires) {
  s::CacheIndex cache(1, 4);
  cache.grant(0, 3, 5);
  std::vector<m::BoxId> out;
  EXPECT_EQ(cache.collect_servers(0, 9, 9, m::kInvalidBox, out), 1u);
  out.clear();
  // now=10: oldest retained entry is 10-4=6 > 5.
  EXPECT_EQ(cache.collect_servers(0, 9, 10, m::kInvalidBox, out), 0u);
}

TEST(Cache, ExcludesRequesterItself) {
  s::CacheIndex cache(1, 8);
  cache.grant(0, 3, 5);
  std::vector<m::BoxId> out;
  EXPECT_EQ(cache.collect_servers(0, 6, 7, /*exclude=*/3, out), 0u);
}

TEST(Cache, FutureGrantsInvisibleToEarlierRequests) {
  s::CacheIndex cache(1, 8);
  cache.grant(0, 3, 9);  // relay-lagged entry in the future
  std::vector<m::BoxId> out;
  EXPECT_EQ(cache.collect_servers(0, 7, 8, m::kInvalidBox, out), 0u);
}

TEST(Cache, PruneDropsExpiredEntries) {
  s::CacheIndex cache(2, 4);
  cache.grant(0, 1, 0);
  cache.grant(1, 2, 6);
  EXPECT_EQ(cache.entry_count(), 2u);
  cache.prune(10);  // oldest kept entry: 6
  EXPECT_EQ(cache.entry_count(), 1u);
}

// ----------------------------------------------------------------- fixtures

namespace {

/// n boxes, one video with c stripes all stored on the last `holders` boxes,
/// k = holders. Simple hand-checkable world.
struct World {
  World(std::uint32_t n, std::uint32_t c, m::Round T, double u,
        std::uint32_t holder_count, std::uint32_t videos = 1)
      : catalog(videos, c, T),
        profile(m::CapacityProfile::homogeneous(n, u, 100.0)),
        allocation(build_allocation(n, videos, c, holder_count)) {}

  static a::Allocation build_allocation(std::uint32_t n, std::uint32_t videos,
                                        std::uint32_t c,
                                        std::uint32_t holder_count) {
    std::vector<a::Allocation::Placement> placements;
    for (std::uint32_t v = 0; v < videos; ++v) {
      for (std::uint32_t i = 0; i < c; ++i) {
        for (std::uint32_t h = 0; h < holder_count; ++h) {
          placements.push_back({n - 1 - h, v * c + i});
        }
      }
    }
    return a::Allocation(n, videos * c, std::move(placements));
  }

  m::Catalog catalog;
  m::CapacityProfile profile;
  a::Allocation allocation;
};

}  // namespace

// ----------------------------------------------------------------- strategy

TEST(Strategy, PreloadingStaggersRequests) {
  World world(4, 3, 12, 2.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  std::vector<s::PlannedRequest> plans;
  strategy.plan(/*box=*/0, /*video=*/0, /*ticket=*/1, /*now=*/5, sim, plans);
  ASSERT_EQ(plans.size(), 3u);
  int at_now = 0, at_next = 0;
  for (const auto& p : plans) {
    EXPECT_EQ(p.requester, 0u);
    if (p.issue == 5) {
      ++at_now;
      EXPECT_EQ(p.stripe, 1u);  // ticket 1 mod 3
    } else {
      EXPECT_EQ(p.issue, 6);
      ++at_next;
    }
  }
  EXPECT_EQ(at_now, 1);
  EXPECT_EQ(at_next, 2);
}

TEST(Strategy, PreloadIndexCyclesWithTicket) {
  World world(4, 3, 12, 2.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  for (std::uint64_t ticket = 0; ticket < 6; ++ticket) {
    std::vector<s::PlannedRequest> plans;
    strategy.plan(0, 0, ticket, 0, sim, plans);
    for (const auto& p : plans) {
      if (p.issue == 0) {
        EXPECT_EQ(p.stripe, ticket % 3);
      }
    }
  }
}

TEST(Strategy, NaiveIssuesEverythingNow) {
  World world(4, 3, 12, 2.0, 1);
  s::NaiveStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  std::vector<s::PlannedRequest> plans;
  strategy.plan(0, 0, 4, 7, sim, plans);
  ASSERT_EQ(plans.size(), 3u);
  for (const auto& p : plans) EXPECT_EQ(p.issue, 7);
}

TEST(Strategy, SkipsLocallyStoredStripes) {
  World world(4, 3, 12, 2.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  std::vector<s::PlannedRequest> plans;
  // Box 3 is the holder of all stripes: nothing to request.
  strategy.plan(3, 0, 0, 2, sim, plans);
  EXPECT_TRUE(plans.empty());
}

TEST(Strategy, FactoryNames) {
  EXPECT_EQ(s::make_strategy(s::StrategyKind::kPreloading)->name(),
            "preloading");
  EXPECT_EQ(s::make_strategy(s::StrategyKind::kNaive)->name(), "naive");
}

// ----------------------------------------------------------------- simulator

TEST(Simulator, SingleViewerServedByHolder) {
  World world(2, 1, 4, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});               // demand at round 0
  for (int t = 1; t < 8; ++t) sim.step({});
  const auto& report = sim.report();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.demands_admitted, 1u);
  EXPECT_EQ(report.requests_issued, 1u);
  EXPECT_EQ(report.chunks_served, 4u);  // T = 4
  EXPECT_EQ(report.sessions_completed, 1u);
}

TEST(Simulator, CacheChainServesSecondViewer) {
  // One holder with capacity 1; two staggered viewers. The second must be
  // served from the first viewer's playback cache.
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});  // round 0: box 0 joins
  sim.step({{1, 0}});  // round 1: box 1 joins, must lean on box 0's cache
  for (int t = 2; t < 12; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
  EXPECT_EQ(sim.report().sessions_completed, 2u);
}

TEST(Simulator, SimultaneousJoinersCannotShareCache) {
  // Same as above but both join in the same round: strict t_j < t_i means no
  // cache help, and the single holder slot cannot serve both.
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}, {1, 0}});
  EXPECT_FALSE(sim.report().success);
  EXPECT_EQ(sim.report().first_stall, 0);
  EXPECT_GE(sim.report().stall_witness_size, 2u);
  EXPECT_TRUE(sim.stalled());
}

TEST(Simulator, StalledStrictModeFreezes) {
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}, {1, 0}});
  const auto rounds = sim.report().rounds;
  sim.step({});  // no-op once stalled
  EXPECT_EQ(sim.report().rounds, rounds);
}

TEST(Simulator, NonStrictModeCountsStallsAndContinues) {
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.strict = false;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}, {1, 0}});
  for (int t = 1; t < 12; ++t) sim.step({});
  const auto& report = sim.report();
  EXPECT_TRUE(report.success);  // strict-mode flag untouched
  EXPECT_GT(report.chunks_stalled, 0u);
  EXPECT_LT(report.continuity(), 1.0);
  EXPECT_EQ(report.sessions_completed, 2u);  // positions advanced regardless
}

TEST(Simulator, BusyBoxRejectsSecondDemand) {
  World world(2, 1, 6, 1.0, 1, /*videos=*/2);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  sim.step({{0, 1}});  // still playing video 0
  EXPECT_EQ(sim.report().demands_admitted, 1u);
  EXPECT_EQ(sim.report().demands_rejected, 1u);
}

TEST(Simulator, BoxIdleAgainAfterPlayback) {
  World world(2, 1, 4, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  EXPECT_FALSE(sim.box_idle(0));
  // playback_start = 1, ends = 1 + 4 = 5: idle from round 5 on.
  for (int t = 1; t <= 5; ++t) sim.step({});
  EXPECT_TRUE(sim.box_idle(0));
  EXPECT_EQ(sim.report().sessions_completed, 1u);
  EXPECT_EQ(sim.swarms().size(0), 0u);
}

TEST(Simulator, StartupDelayIsThreeRoundsWithPreloading) {
  World world(4, 3, 12, 4.0, 2);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({});          // round 0 idle
  sim.step({{0, 0}});    // demand at round 1
  for (int t = 2; t < 6; ++t) sim.step({});
  const auto& delays = sim.report().startup_delay;
  ASSERT_EQ(delays.total(), 1u);
  // preload at 1, postponed at 2, playback at 3; arrival interval starts at
  // round 0 -> delay 3, the §3 constant.
  EXPECT_EQ(delays.min(), 3);
}

TEST(Simulator, StartupDelayIsTwoRoundsWithNaive) {
  World world(4, 3, 12, 4.0, 2);
  s::NaiveStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({});
  sim.step({{0, 0}});
  for (int t = 2; t < 6; ++t) sim.step({});
  EXPECT_EQ(sim.report().startup_delay.min(), 2);
}

TEST(Simulator, LocalPlaybackNeedsNoRequests) {
  World world(2, 2, 5, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{1, 0}});  // box 1 holds everything
  EXPECT_EQ(sim.report().requests_issued, 0u);
  EXPECT_FALSE(sim.box_idle(1));       // still "watching"
  EXPECT_EQ(sim.swarms().size(0), 1u);  // and in the swarm
  EXPECT_TRUE(sim.report().success);
}

TEST(Simulator, UtilizationBounded) {
  World world(4, 2, 6, 1.0, 2);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  sim.step({{1, 0}});
  for (int t = 2; t < 10; ++t) sim.step({});
  const auto& util = sim.report().upload_utilization;
  EXPECT_GT(util.count(), 0u);
  EXPECT_GE(util.min(), 0.0);
  EXPECT_LE(util.max(), 1.0);
}

TEST(Simulator, VerifyIncrementalAgainstReference) {
  World world(6, 2, 6, 1.5, 2, /*videos=*/3);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.verify_incremental = true;  // throws on disagreement
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}});
  sim.step({{1, 1}});
  sim.step({{2, 2}, {4, 0}});
  for (int t = 3; t < 16; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
}

TEST(Simulator, CapacityOverrideRespected) {
  World world(3, 1, 8, 5.0, 1);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.capacity_override = {0, 0, 1};  // throttle the holder to 1 slot
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy,
                   options);
  sim.step({{0, 0}, {1, 0}});  // two simultaneous joiners, one slot
  EXPECT_FALSE(sim.report().success);
}

TEST(Simulator, RejectsMismatchedCapacityOverride) {
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.capacity_override = {1};
  EXPECT_THROW(s::Simulator(world.catalog, world.profile, world.allocation,
                            strategy, options),
               std::invalid_argument);
}

TEST(Simulator, UnknownDemandThrows) {
  World world(2, 1, 4, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  EXPECT_THROW(sim.step({{0, 9}}), std::out_of_range);
  EXPECT_THROW(sim.step({{9, 0}}), std::out_of_range);
}

TEST(Simulator, RunDrivesGeneratorUntilStall) {
  World world(3, 1, 8, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  w::Trace trace;
  trace.add(0, 0, 0);
  trace.add(3, 1, 0);  // staggered: feasible via cache
  w::TraceReplay replay(trace);
  const auto report = sim.run(replay, 20);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.demands_admitted, 2u);
  EXPECT_EQ(report.rounds, 20);
}

TEST(Simulator, ReportSummaryMentionsOutcome) {
  World world(2, 1, 4, 1.0, 1);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  EXPECT_NE(sim.report().summary().find("SUCCESS"), std::string::npos);
}

TEST(Simulator, ActiveRequestsTracked) {
  World world(4, 2, 6, 2.0, 2);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});          // preload active
  EXPECT_EQ(sim.active_request_count(), 1u);
  sim.step({});                 // postponed joins
  EXPECT_EQ(sim.active_request_count(), 2u);
}
