// Tests for the parameter-sweep engine: grid expansion, deterministic
// per-point seeding, and scheduling-independent results.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/calibrate.hpp"
#include "sweep/parameter_grid.hpp"
#include "sweep/sweep_result.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sw = p2pvod::sweep;
namespace u = p2pvod::util;

namespace {

sw::ParameterGrid three_axis_grid() {
  p2pvod::analysis::TrialSpec base;
  base.n = 10;
  sw::ParameterGrid grid(base);
  grid.axis("u", {0.5, 1.5})
      .axis("k", {2, 3, 4})
      .axis("rounds", {8, 16, 24, 32});
  return grid;
}

}  // namespace

TEST(ParameterGrid, EmptyGridIsSingleBasePoint) {
  p2pvod::analysis::TrialSpec base;
  base.n = 77;
  base.u = 2.5;
  const sw::ParameterGrid grid(base);
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.axis_count(), 0u);
  const auto point = grid.point(0);
  EXPECT_EQ(point.index, 0u);
  EXPECT_TRUE(point.values.empty());
  EXPECT_EQ(point.spec.n, 77u);
  EXPECT_DOUBLE_EQ(point.spec.u, 2.5);
}

TEST(ParameterGrid, SizeIsProductOfAxisSizes) {
  const auto grid = three_axis_grid();
  EXPECT_EQ(grid.axis_count(), 3u);
  EXPECT_EQ(grid.size(), 2u * 3u * 4u);
  EXPECT_EQ(grid.expand().size(), 24u);
}

TEST(ParameterGrid, RowMajorOrderLastAxisFastest) {
  const auto grid = three_axis_grid();
  const auto points = grid.expand();
  // index = ((ui * 3) + ki) * 4 + ri.
  for (std::size_t ui = 0; ui < 2; ++ui) {
    for (std::size_t ki = 0; ki < 3; ++ki) {
      for (std::size_t ri = 0; ri < 4; ++ri) {
        const std::size_t index = (ui * 3 + ki) * 4 + ri;
        const auto& p = points[index];
        EXPECT_EQ(p.index, index);
        ASSERT_EQ(p.values.size(), 3u);
        EXPECT_DOUBLE_EQ(p.values[0], ui == 0 ? 0.5 : 1.5);
        EXPECT_DOUBLE_EQ(p.values[1], static_cast<double>(2 + ki));
        EXPECT_DOUBLE_EQ(p.values[2], static_cast<double>(8 * (ri + 1)));
      }
    }
  }
}

TEST(ParameterGrid, ValuesAreAppliedToSpecFields) {
  p2pvod::analysis::TrialSpec base;
  sw::ParameterGrid grid(base);
  grid.axis("n", {64})
      .axis("u", {1.25})
      .axis("d", {6.0})
      .axis("mu", {1.7})
      .axis("c", {8})
      .axis("k", {5})
      .axis("m", {40})
      .axis("duration", {13})
      .axis("rounds", {39});
  ASSERT_EQ(grid.size(), 1u);
  const auto spec = grid.point(0).spec;
  EXPECT_EQ(spec.n, 64u);
  EXPECT_DOUBLE_EQ(spec.u, 1.25);
  EXPECT_DOUBLE_EQ(spec.d, 6.0);
  EXPECT_DOUBLE_EQ(spec.mu, 1.7);
  EXPECT_EQ(spec.c, 8u);
  EXPECT_EQ(spec.k, 5u);
  EXPECT_EQ(spec.m_override, 40u);
  EXPECT_EQ(spec.duration, 13);
  EXPECT_EQ(spec.rounds, 39);
  // m_override wins over the derived catalog.
  EXPECT_EQ(spec.catalog(), 40u);
}

TEST(ParameterGrid, RejectsBadAxes) {
  sw::ParameterGrid grid;
  EXPECT_THROW(grid.axis("upload", {1.0}), std::invalid_argument);
  EXPECT_THROW(grid.axis("u", {}), std::invalid_argument);
  EXPECT_THROW(grid.axis("u", {1.0, std::nan("")}), std::invalid_argument);
  grid.axis("u", {1.0, 2.0});
  EXPECT_THROW(grid.axis("u", {3.0}), std::invalid_argument);
  EXPECT_THROW(grid.point(2), std::out_of_range);
  EXPECT_THROW((void)grid.values("k"), std::invalid_argument);
  EXPECT_EQ(grid.values("u").size(), 2u);
}

TEST(ParameterGrid, FreeAxisEnumeratesWithoutTouchingSpec) {
  p2pvod::analysis::TrialSpec base;
  base.n = 9;
  base.k = 7;
  sw::ParameterGrid grid(base);
  grid.free_axis("fail_prob", {0.0, 0.5}).axis("u", {1.0, 2.0});
  EXPECT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid.names(), (std::vector<std::string>{"fail_prob", "u"}));
  const auto point = grid.point(3);  // fail_prob=0.5, u=2.0
  EXPECT_DOUBLE_EQ(point.values[0], 0.5);
  EXPECT_DOUBLE_EQ(point.values[1], 2.0);
  EXPECT_DOUBLE_EQ(point.spec.u, 2.0);  // spec axis applied
  EXPECT_EQ(point.spec.n, 9u);          // free axis left the spec alone
  EXPECT_EQ(point.spec.k, 7u);
}

TEST(ParameterGrid, FreeAxisMayShadowSpecFieldNamesWithoutApplyingThem) {
  p2pvod::analysis::TrialSpec base;
  base.k = 7;
  sw::ParameterGrid grid(base);
  grid.free_axis("k", {2, 4});  // enumerates k values, spec.k untouched
  EXPECT_EQ(grid.point(1).spec.k, 7u);
  EXPECT_DOUBLE_EQ(grid.point(1).values[0], 4.0);
}

TEST(ParameterGrid, FreeAxisValidatesLikeRegularAxes) {
  sw::ParameterGrid grid;
  EXPECT_THROW(grid.free_axis("", {1.0}), std::invalid_argument);
  EXPECT_THROW(grid.free_axis("p", {}), std::invalid_argument);
  EXPECT_THROW(grid.free_axis("p", {std::nan("")}), std::invalid_argument);
  grid.free_axis("p", {0.5});
  EXPECT_THROW(grid.free_axis("p", {1.0}), std::invalid_argument);
  EXPECT_THROW(grid.axis("p", {1.0}), std::invalid_argument);
}

TEST(ParameterGrid, OutOfRangeValuesClampToFieldLimits) {
  sw::ParameterGrid grid;
  grid.axis("n", {5e18}).axis("k", {-3.0}).axis("rounds", {1e20});
  const auto spec = grid.point(0).spec;
  EXPECT_EQ(spec.n, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(spec.k, 0u);
  EXPECT_EQ(spec.rounds, std::numeric_limits<p2pvod::model::Round>::max());
}

TEST(SweepRunner, PointSeedsAreDeterministicAndDistinct) {
  const std::uint64_t base = 0xABCDEF;
  EXPECT_EQ(sw::SweepRunner::point_seed(base, 7),
            sw::SweepRunner::point_seed(base, 7));
  EXPECT_EQ(sw::SweepRunner::point_seed(base, 7),
            u::child_seed(base, 7));
  EXPECT_NE(sw::SweepRunner::point_seed(base, 0),
            sw::SweepRunner::point_seed(base, 1));
  EXPECT_NE(sw::SweepRunner::point_seed(base, 0),
            sw::SweepRunner::point_seed(base + 1, 0));
}

TEST(SweepRunner, ResultsInGridOrderRegardlessOfThreadCount) {
  sw::ParameterGrid grid;
  grid.axis("u", {1.0, 1.1, 1.2, 1.3, 1.4}).axis("k", {1, 2, 3});

  // Metric = pure function of point values and seed: any scheduling change
  // that leaked into results would show up as a mismatch between pools.
  const sw::SweepRunner::PointFn fn = [](const sw::GridPoint& point,
                                         std::uint64_t seed) {
    u::Rng rng(seed);
    return std::vector<double>{
        point.values[0] * 100.0 + point.values[1],
        static_cast<double>(rng.next_below(1u << 20)),
    };
  };

  u::ThreadPool serial(1);
  u::ThreadPool wide(4);
  const sw::SweepRunner runner_serial({0xFEED, &serial});
  const sw::SweepRunner runner_wide({0xFEED, &wide});
  const auto a = runner_serial.run(grid, {"value", "draw"}, fn);
  const auto b = runner_wide.run(grid, {"value", "draw"}, fn);

  ASSERT_EQ(a.row_count(), 15u);
  ASSERT_EQ(b.row_count(), 15u);
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_EQ(a.row(i).point.index, i);
    EXPECT_EQ(b.row(i).point.index, i);
    EXPECT_EQ(a.row(i).point.values, b.row(i).point.values);
    EXPECT_EQ(a.row(i).metrics, b.row(i).metrics);
  }
  // Identical base seed -> identical RNG streams -> identical draws on a
  // re-run; a different base seed changes them.
  const auto c = runner_wide.run(grid, {"value", "draw"}, fn);
  const sw::SweepRunner reseeded({0xBEEF, &wide});
  const auto d = reseeded.run(grid, {"value", "draw"}, fn);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_EQ(b.row(i).metrics, c.row(i).metrics);
    if (c.row(i).metrics[1] != d.row(i).metrics[1]) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(SweepRunner, NestedParallelHelpersDoNotDeadlock) {
  // Each point runs a Calibrator-style nested parallel_map on the SAME pool
  // the sweep is batched onto; the worker-thread guard must degrade it to a
  // serial loop rather than deadlocking.
  u::ThreadPool pool(3);
  sw::ParameterGrid grid;
  grid.axis("k", {1, 2, 3, 4, 5, 6});
  const sw::SweepRunner runner({0x11, &pool});
  const auto result = runner.run(
      grid, {"sum"},
      [&pool](const sw::GridPoint& point, std::uint64_t) {
        const auto parts = u::parallel_map<double>(
            8, [&](std::size_t i) {
              return point.values[0] * static_cast<double>(i);
            },
            &pool);
        double sum = 0.0;
        for (const double part : parts) sum += part;
        return std::vector<double>{sum};
      });
  for (std::size_t i = 0; i < result.row_count(); ++i) {
    EXPECT_DOUBLE_EQ(result.row(i).metrics[0],
                     result.row(i).point.values[0] * 28.0);
  }
}

TEST(SweepRunner, CalibratorTrialsMatchSerialCalls) {
  // A sweep over u must reproduce exactly what direct serial Calibrator
  // calls produce for the same specs and seeds (this is the property the
  // figure benches rely on).
  p2pvod::analysis::TrialSpec base;
  base.n = 12;
  base.d = 2.0;
  base.c = 2;
  base.k = 2;
  base.duration = 4;
  base.rounds = 8;
  base.suite = p2pvod::analysis::WorkloadSuite::kFlashCrowd;

  sw::ParameterGrid grid(base);
  grid.axis("u", {0.5, 1.5, 3.0});

  u::ThreadPool pool(4);
  const sw::SweepRunner runner({0x42, &pool});
  const auto result = runner.run(
      grid, {"rate"},
      [&pool](const sw::GridPoint& point, std::uint64_t seed) {
        const auto rate = p2pvod::analysis::Calibrator::success_rate(
            point.spec, 6, seed, &pool);
        return std::vector<double>{rate.estimate};
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    auto spec = grid.point(i).spec;
    const auto expected = p2pvod::analysis::Calibrator::success_rate(
        spec, 6, sw::SweepRunner::point_seed(0x42, i));
    EXPECT_DOUBLE_EQ(result.row(i).metrics[0], expected.estimate) << i;
  }
}

TEST(SweepRunner, RecordsPerPointWallTimes) {
  sw::ParameterGrid grid;
  grid.axis("u", {1.0, 2.0, 3.0});
  u::ThreadPool pool(2);
  const sw::SweepRunner runner({7, &pool});
  const auto result = runner.run(
      grid, {"one"}, [](const sw::GridPoint&, std::uint64_t) {
        return std::vector<double>{1.0};
      });
  for (std::size_t i = 0; i < result.row_count(); ++i) {
    EXPECT_GE(result.row(i).seconds, 0.0) << i;
    EXPECT_TRUE(std::isfinite(result.row(i).seconds)) << i;
  }
}

TEST(SweepResult, SetRowStoresSecondsAndDefaultsToZero) {
  sw::SweepResult result({"u"}, {"m"}, 2);
  sw::GridPoint point;
  point.index = 0;
  point.values = {1.0};
  result.set_row(0, point, {4.0}, 0.125);
  point.index = 1;
  result.set_row(1, point, {5.0});
  EXPECT_DOUBLE_EQ(result.row(0).seconds, 0.125);
  EXPECT_DOUBLE_EQ(result.row(1).seconds, 0.0);
}

TEST(SweepResult, TableAndCsvShape) {
  sw::ParameterGrid grid;
  grid.axis("u", {1.0, 2.0}).axis("k", {3});
  u::ThreadPool pool(1);
  const sw::SweepRunner runner({1, &pool});
  const auto result =
      runner.run(grid, {"sum", "prod"},
                 [](const sw::GridPoint& p, std::uint64_t) {
                   return std::vector<double>{p.values[0] + p.values[1],
                                              p.values[0] * p.values[1]};
                 });
  EXPECT_EQ(result.metric(1, "sum"), 5.0);
  EXPECT_EQ(result.metric(1, "prod"), 6.0);
  EXPECT_THROW((void)result.metric(0, "nope"), std::invalid_argument);

  const auto table = result.to_table("title");
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 4u);
  const std::string csv = result.to_csv();
  EXPECT_NE(csv.find("u,k,sum,prod"), std::string::npos);
  EXPECT_NE(csv.find("2,3,5,6"), std::string::npos);
}

TEST(SweepRunner, WrongMetricCountThrows) {
  sw::ParameterGrid grid;
  grid.axis("u", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  // Multi-thread pool on purpose: the throw must propagate only after every
  // in-flight chunk has drained (parallel_for keeps the captured state alive
  // until then).
  u::ThreadPool pool(4);
  const sw::SweepRunner runner({1, &pool});
  EXPECT_THROW(
      (void)runner.run(grid, {"a", "b"},
                       [](const sw::GridPoint&, std::uint64_t) {
                         return std::vector<double>{1.0};
                       }),
      std::invalid_argument);
}
