// Property-based tests (parameterized gtest sweeps) over the library's key
// invariants:
//   * Lemma 1: flow-matching feasibility == Hall condition, across an
//     instance family
//   * allocation schemes preserve structural invariants across seeds
//   * simulator feasibility is monotone in upload capacity and replication
//   * incremental matcher == reference matcher along whole simulations
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "alloc/allocator.hpp"
#include "analysis/calibrate.hpp"
#include "flow/bipartite.hpp"
#include "flow/hall.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/zipf.hpp"

namespace f = p2pvod::flow;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace s = p2pvod::sim;
namespace w = p2pvod::workload;
namespace an = p2pvod::analysis;

// ------------------------------------------------ Lemma 1 equivalence sweep

struct Lemma1Params {
  std::uint32_t boxes;
  std::uint32_t requests;
  std::uint32_t max_capacity;
  double edge_prob;
  std::uint64_t seed;
};

class Lemma1Sweep : public ::testing::TestWithParam<Lemma1Params> {};

TEST_P(Lemma1Sweep, FlowFeasibilityEqualsHallCondition) {
  const auto p = GetParam();
  p2pvod::util::Rng rng(p.seed);
  for (int trial = 0; trial < 20; ++trial) {
    f::ConnectionProblem problem(p.boxes);
    for (std::uint32_t b = 0; b < p.boxes; ++b) {
      problem.set_capacity(
          b, static_cast<std::uint32_t>(rng.next_below(p.max_capacity + 1)));
    }
    for (std::uint32_t r = 0; r < p.requests; ++r) {
      std::vector<std::uint32_t> cands;
      for (std::uint32_t b = 0; b < p.boxes; ++b) {
        if (rng.next_bool(p.edge_prob)) cands.push_back(b);
      }
      problem.add_request(std::move(cands));
    }
    const bool by_flow = problem.solve(f::Engine::kDinic).complete;
    const bool by_hk = problem.solve(f::Engine::kHopcroftKarp).complete;
    const bool by_hall = f::HallChecker::feasible(problem);
    ASSERT_EQ(by_flow, by_hall);
    ASSERT_EQ(by_hk, by_hall);
  }
}

INSTANTIATE_TEST_SUITE_P(
    InstanceFamilies, Lemma1Sweep,
    ::testing::Values(Lemma1Params{4, 6, 1, 0.3, 101},
                      Lemma1Params{4, 8, 2, 0.25, 202},
                      Lemma1Params{6, 10, 1, 0.2, 303},
                      Lemma1Params{6, 12, 3, 0.35, 404},
                      Lemma1Params{8, 14, 2, 0.15, 505},
                      Lemma1Params{3, 9, 2, 0.5, 606},
                      Lemma1Params{10, 16, 1, 0.12, 707}));

// ------------------------------------------------ allocation invariant sweep

struct AllocParams {
  a::Scheme scheme;
  std::uint32_t n;
  std::uint32_t m;
  std::uint32_t c;
  std::uint32_t k;
  std::uint64_t seed;
};

class AllocationSweep : public ::testing::TestWithParam<AllocParams> {};

TEST_P(AllocationSweep, StructuralInvariantsHold) {
  const auto p = GetParam();
  const m::Catalog catalog(p.m, p.c, 16);
  const auto profile = m::CapacityProfile::homogeneous(p.n, 1.5, 6.0);
  p2pvod::util::Rng rng(p.seed);
  const auto allocation =
      a::make_allocator(p.scheme)->allocate(catalog, profile, p.k, rng);

  allocation.check_integrity(&profile, p.c);
  EXPECT_EQ(allocation.stripe_count(), p.m * p.c);
  // Every stripe is stored somewhere (k >= 1 and no replica loss).
  for (m::StripeId stripe = 0; stripe < allocation.stripe_count(); ++stripe)
    ASSERT_GE(allocation.holders(stripe).size(), 1u);
  // Total distinct replicas bounded by k·m·c.
  std::uint64_t total = 0;
  for (m::StripeId stripe = 0; stripe < allocation.stripe_count(); ++stripe)
    total += allocation.holders(stripe).size();
  if (p.scheme != a::Scheme::kFullReplication) {
    EXPECT_LE(total, static_cast<std::uint64_t>(p.k) * p.m * p.c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, AllocationSweep,
    ::testing::Values(
        AllocParams{a::Scheme::kPermutation, 16, 24, 4, 4, 1},
        AllocParams{a::Scheme::kPermutation, 16, 24, 4, 4, 2},
        AllocParams{a::Scheme::kPermutation, 32, 8, 2, 16, 3},
        AllocParams{a::Scheme::kIndependent, 16, 24, 4, 4, 4},
        AllocParams{a::Scheme::kIndependent, 16, 24, 4, 4, 5},
        AllocParams{a::Scheme::kIndependent, 32, 48, 2, 4, 6},
        AllocParams{a::Scheme::kRoundRobin, 16, 24, 4, 4, 7},
        AllocParams{a::Scheme::kRoundRobin, 32, 8, 2, 16, 8},
        AllocParams{a::Scheme::kFullReplication, 16, 20, 4, 1, 9},
        AllocParams{a::Scheme::kFullReplication, 12, 12, 3, 1, 10}));

// ------------------------------------------------ threshold monotonicity

class UploadSweep : public ::testing::TestWithParam<double> {};

// Feasibility against the full adversarial suite must improve with u; we pin
// the expected verdict per u value (deterministic seeds).
TEST_P(UploadSweep, SuccessConsistentWithThresholdSide) {
  const double u = GetParam();
  an::TrialSpec spec;
  spec.n = 24;
  spec.u = u;
  spec.d = 4.0;
  spec.mu = 1.3;
  spec.c = 4;
  spec.k = 6;
  spec.duration = 10;
  spec.rounds = 30;
  spec.suite = an::WorkloadSuite::kAvoider;
  const bool ok = an::Calibrator::run_trial(spec, 90210);
  if (u < 1.0) {
    EXPECT_FALSE(ok) << "u=" << u << " should be starved by the avoider";
  }
  if (u >= 2.0) {
    EXPECT_TRUE(ok) << "u=" << u << " should absorb the avoider";
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossThreshold, UploadSweep,
                         ::testing::Values(0.5, 0.75, 0.9, 2.0, 2.5, 3.0));

// ------------------------------------------------ replication monotonicity

class ReplicationSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReplicationSweep, MoreReplicasNeverHurtFlashCrowd) {
  const std::uint32_t k = GetParam();
  const std::uint32_t n = 32, c = 4;
  const m::Catalog catalog(16, c, 12);
  const auto profile = m::CapacityProfile::homogeneous(n, 1.5, 4.0);
  p2pvod::util::Rng rng(31415);
  const auto allocation =
      a::make_allocator(a::Scheme::kPermutation)
          ->allocate(catalog, profile, k, rng);
  s::PreloadingStrategy strategy;
  s::Simulator sim(catalog, profile, allocation, strategy);
  w::FlashCrowd crowd(5, 1.6);
  const auto report = sim.run(crowd, 36);
  // k >= 4 absorbs this crowd (empirical anchor for this seed family).
  if (k >= 4) {
    EXPECT_TRUE(report.success) << "k=" << k;
  }
}

// k is capped at 8: k·m·c = 8·16·4 = 512 exactly fills the d·n·c = 512 slots.
INSTANTIATE_TEST_SUITE_P(KValues, ReplicationSweep,
                         ::testing::Values(4u, 5u, 6u, 8u));

// ------------------------------------------------ matcher agreement sweep

struct MatcherParams {
  std::uint32_t n;
  std::uint32_t m;
  std::uint32_t c;
  std::uint32_t k;
  double zipf_alpha;
  std::uint64_t seed;
};

class MatcherSweep : public ::testing::TestWithParam<MatcherParams> {};

TEST_P(MatcherSweep, IncrementalAlwaysMatchesReference) {
  const auto p = GetParam();
  const m::Catalog catalog(p.m, p.c, 8);
  const auto profile = m::CapacityProfile::homogeneous(p.n, 2.0, 5.0);
  p2pvod::util::Rng rng(p.seed);
  const auto allocation =
      a::make_allocator(a::Scheme::kPermutation)
          ->allocate(catalog, profile, p.k, rng);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.verify_incremental = true;  // throws on any disagreement
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  w::ZipfDemand zipf(p.m, p.zipf_alpha, 0.25, p.seed ^ 0xabcdefULL);
  EXPECT_NO_THROW({
    const auto report = sim.run(zipf, 30);
    (void)report;
  });
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadFamilies, MatcherSweep,
    ::testing::Values(MatcherParams{16, 8, 2, 6, 0.0, 11},
                      MatcherParams{16, 8, 2, 6, 1.0, 22},
                      MatcherParams{24, 12, 4, 6, 0.8, 33},
                      MatcherParams{32, 16, 2, 8, 1.2, 44}));

// ------------------------------------------------ growth limiter safety

class MuSweep : public ::testing::TestWithParam<double> {};

TEST_P(MuSweep, LimitedFloodNeverExceedsAnchoredBound) {
  const double mu = GetParam();
  const std::uint32_t n = 64;
  const m::Catalog catalog(4, 2, 24);
  const auto profile = m::CapacityProfile::homogeneous(n, 8.0, 8.0);
  p2pvod::util::Rng rng(5);
  const auto allocation =
      a::make_allocator(a::Scheme::kPermutation)
          ->allocate(catalog, profile, 8, rng);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.strict = false;  // observe sizes even under stress
  s::Simulator sim(catalog, profile, allocation, strategy, options);

  w::FlashCrowd crowd(0, /*mu inside generator*/ 1e9);  // unbounded flood
  w::GrowthLimiter limited(crowd, mu);

  std::vector<std::uint32_t> sizes;
  for (int t = 0; t < 10; ++t) {
    const auto demands = limited.demands(sim);
    sim.step(demands);
    sizes.push_back(sim.swarms().size(0));
  }
  // Verify the paper's multi-step rule f(t+i) <= ceil(max(f(t),1)·µ^i)
  // for every anchor pair (t, t+i).
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    for (std::size_t i = 1; t + i < sizes.size(); ++i) {
      const double anchor = std::max<double>(1.0, sizes[t]);
      const double bound =
          std::ceil(anchor * std::pow(mu, static_cast<double>(i)) - 1e-9);
      ASSERT_LE(static_cast<double>(sizes[t + i]), bound)
          << "mu=" << mu << " t=" << t << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GrowthRates, MuSweep,
                         ::testing::Values(1.0, 1.2, 1.4, 1.7, 2.0, 3.0));
