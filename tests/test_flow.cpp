// Unit tests for src/flow: Dinic max-flow, Hopcroft-Karp b-matching, the
// connection-problem reduction, Hall checking, incremental matching, and the
// min-cost matching engine (successive shortest paths with potentials).
#include <gtest/gtest.h>

#include "flow/bipartite.hpp"
#include "flow/dinic.hpp"
#include "flow/graph.hpp"
#include "flow/hall.hpp"
#include "flow/hopcroft_karp.hpp"
#include "flow/matcher.hpp"
#include "flow/min_cost.hpp"
#include "util/rng.hpp"

namespace f = p2pvod::flow;

// ----------------------------------------------------------------- network

TEST(FlowNetwork, EdgePairing) {
  f::FlowNetwork net(3);
  const auto e = net.add_edge(0, 1, 5);
  EXPECT_EQ(net.residual(e), 5);
  EXPECT_EQ(net.residual(e ^ 1u), 0);
  net.push(e, 3);
  EXPECT_EQ(net.residual(e), 2);
  EXPECT_EQ(net.flow_on(e), 3);
  net.reset_flow();
  EXPECT_EQ(net.flow_on(e), 0);
}

TEST(FlowNetwork, RejectsBadEdges) {
  f::FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(net.add_edge(0, 1, -1), std::invalid_argument);
}

TEST(FlowNetwork, AddNodesReturnsFirstId) {
  f::FlowNetwork net(2);
  EXPECT_EQ(net.add_nodes(3), 2u);
  EXPECT_EQ(net.node_count(), 5u);
}

// ----------------------------------------------------------------- dinic

TEST(Dinic, SingleEdge) {
  f::FlowNetwork net(2);
  net.add_edge(0, 1, 7);
  EXPECT_EQ(f::Dinic(net).max_flow(0, 1), 7);
}

TEST(Dinic, SeriesBottleneck) {
  f::FlowNetwork net(3);
  net.add_edge(0, 1, 10);
  net.add_edge(1, 2, 4);
  EXPECT_EQ(f::Dinic(net).max_flow(0, 2), 4);
}

TEST(Dinic, ParallelPathsSum) {
  f::FlowNetwork net(4);
  net.add_edge(0, 1, 3);
  net.add_edge(1, 3, 3);
  net.add_edge(0, 2, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(f::Dinic(net).max_flow(0, 3), 8);
}

TEST(Dinic, ClassicTextbookInstance) {
  // CLRS-style 6-node instance with known max flow 23.
  f::FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(f::Dinic(net).max_flow(0, 5), 23);
}

TEST(Dinic, DisconnectedIsZero) {
  f::FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(f::Dinic(net).max_flow(0, 3), 0);
}

TEST(Dinic, MinCutSeparatesSourceFromSink) {
  f::FlowNetwork net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(1, 2, 1);  // bottleneck
  net.add_edge(2, 3, 2);
  f::Dinic dinic(net);
  EXPECT_EQ(dinic.max_flow(0, 3), 1);
  const auto side = dinic.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

TEST(Dinic, FlowConservationAtInternalNodes) {
  f::FlowNetwork net(5);
  std::vector<f::EdgeId> edges;
  edges.push_back(net.add_edge(0, 1, 4));
  edges.push_back(net.add_edge(0, 2, 4));
  edges.push_back(net.add_edge(1, 3, 3));
  edges.push_back(net.add_edge(2, 3, 2));
  edges.push_back(net.add_edge(3, 4, 6));
  f::Dinic dinic(net);
  const auto total = dinic.max_flow(0, 4);
  EXPECT_EQ(total, 5);
  // in(3) == out(3)
  const auto in3 = net.flow_on(edges[2]) + net.flow_on(edges[3]);
  EXPECT_EQ(in3, net.flow_on(edges[4]));
}

// ----------------------------------------------------------------- hk

TEST(HopcroftKarp, PerfectMatchingUnitCaps) {
  const std::vector<std::vector<std::uint32_t>> adj{{0, 1}, {0}, {1, 2}};
  f::HopcroftKarp hk(adj, {1, 1, 1});
  EXPECT_EQ(hk.solve(), 3u);
  const auto& match = hk.assignment();
  EXPECT_EQ(match[1], 0);  // request 1 can only use box 0
}

TEST(HopcroftKarp, RespectsBoxCapacity) {
  // Three requests all wanting box 0 with capacity 2.
  const std::vector<std::vector<std::uint32_t>> adj{{0}, {0}, {0}};
  f::HopcroftKarp hk(adj, {2});
  EXPECT_EQ(hk.solve(), 2u);
}

TEST(HopcroftKarp, AugmentsThroughSaturatedBoxes) {
  // r0 -> {b0}; r1 -> {b0, b1}. Greedy could give r1 b0 and starve r0;
  // augmenting must fix it.
  const std::vector<std::vector<std::uint32_t>> adj{{0}, {0, 1}};
  f::HopcroftKarp hk(adj, {1, 1});
  EXPECT_EQ(hk.solve(), 2u);
}

TEST(HopcroftKarp, EmptyCandidatesUnmatched) {
  const std::vector<std::vector<std::uint32_t>> adj{{}, {0}};
  f::HopcroftKarp hk(adj, {1});
  EXPECT_EQ(hk.solve(), 1u);
  EXPECT_EQ(hk.assignment()[0], -1);
}

TEST(HopcroftKarp, ZeroCapacityBoxUnusable) {
  const std::vector<std::vector<std::uint32_t>> adj{{0}};
  f::HopcroftKarp hk(adj, {0});
  EXPECT_EQ(hk.solve(), 0u);
}

// ----------------------------------------------------------------- problem

namespace {
f::ConnectionProblem random_problem(p2pvod::util::Rng& rng,
                                    std::uint32_t boxes,
                                    std::uint32_t requests,
                                    std::uint32_t max_capacity,
                                    double edge_prob) {
  f::ConnectionProblem problem(boxes);
  for (std::uint32_t b = 0; b < boxes; ++b) {
    problem.set_capacity(
        b, static_cast<std::uint32_t>(rng.next_below(max_capacity + 1)));
  }
  for (std::uint32_t r = 0; r < requests; ++r) {
    std::vector<std::uint32_t> cands;
    for (std::uint32_t b = 0; b < boxes; ++b) {
      if (rng.next_bool(edge_prob)) cands.push_back(b);
    }
    problem.add_request(std::move(cands));
  }
  return problem;
}
}  // namespace

TEST(ConnectionProblem, TrivialComplete) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0});
  p.add_request({1});
  const auto result = p.solve();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(ConnectionProblem, InfeasibleWhenOversubscribed) {
  f::ConnectionProblem p(1);
  p.set_capacity(0, 1);
  p.add_request({0});
  p.add_request({0});
  const auto result = p.solve();
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.served, 1u);
}

TEST(ConnectionProblem, EnginesAgreeOnRandomInstances) {
  p2pvod::util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto problem = random_problem(rng, 8, 12, 3, 0.3);
    const auto dinic = problem.solve(f::Engine::kDinic);
    const auto hk = problem.solve(f::Engine::kHopcroftKarp);
    ASSERT_EQ(dinic.served, hk.served) << "trial " << trial;
  }
}

TEST(ConnectionProblem, AssignmentRespectsCapacities) {
  p2pvod::util::Rng rng(88);
  for (int trial = 0; trial < 25; ++trial) {
    auto problem = random_problem(rng, 6, 15, 2, 0.4);
    for (const auto engine : {f::Engine::kDinic, f::Engine::kHopcroftKarp}) {
      const auto result = problem.solve(engine);
      const auto degrees = result.box_degrees(problem.box_count());
      for (std::uint32_t b = 0; b < problem.box_count(); ++b)
        EXPECT_LE(degrees[b], problem.capacity(b));
      // Assignments must be candidates.
      for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
        if (result.assignment[r] < 0) continue;
        const auto& cands = problem.candidates(r);
        EXPECT_NE(std::find(cands.begin(), cands.end(),
                            static_cast<std::uint32_t>(result.assignment[r])),
                  cands.end());
      }
    }
  }
}

TEST(ConnectionProblem, WitnessOnlyWhenInfeasible) {
  f::ConnectionProblem feasible(2);
  feasible.set_capacity(0, 2);
  feasible.add_request({0});
  EXPECT_FALSE(feasible.infeasibility_witness().has_value());

  f::ConnectionProblem infeasible(1);
  infeasible.set_capacity(0, 1);
  infeasible.add_request({0});
  infeasible.add_request({0});
  const auto witness = infeasible.infeasibility_witness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->empty());
}

TEST(ConnectionProblem, WitnessViolatesHall) {
  // Witness X must satisfy sum capacities of B(X) < |X|.
  p2pvod::util::Rng rng(99);
  int found = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto problem = random_problem(rng, 5, 10, 1, 0.25);
    const auto witness = problem.infeasibility_witness();
    if (!witness) continue;
    ++found;
    std::vector<bool> in_bx(problem.box_count(), false);
    std::uint64_t cap = 0;
    for (const auto r : *witness) {
      for (const auto b : problem.candidates(r)) {
        if (!in_bx[b]) {
          in_bx[b] = true;
          cap += problem.capacity(b);
        }
      }
    }
    EXPECT_LT(cap, witness->size());
  }
  EXPECT_GT(found, 0) << "no infeasible instance generated; weaken params";
}

TEST(ConnectionProblem, EdgeCountSums) {
  f::ConnectionProblem p(3);
  p.add_request({0, 1});
  p.add_request({2});
  EXPECT_EQ(p.edge_count(), 3u);
}

TEST(ConnectionProblem, RejectsForeignBoxes) {
  f::ConnectionProblem p(2);
  EXPECT_THROW(p.add_request({5}), std::out_of_range);
  EXPECT_THROW(p.set_capacities({1}), std::invalid_argument);
}

// ----------------------------------------------------------------- hall

TEST(Hall, FeasibleInstancePassesAllSubsets) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  p.add_request({0, 1});
  EXPECT_TRUE(f::HallChecker::feasible(p));
}

TEST(Hall, DetectsViolation) {
  f::ConnectionProblem p(1);
  p.set_capacity(0, 1);
  p.add_request({0});
  p.add_request({0});
  const auto violation = f::HallChecker::find_violation(p);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->demand, 2u);
  EXPECT_EQ(violation->capacity, 1u);
}

TEST(Hall, SubsetChecker) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 0);
  p.set_capacity(1, 5);
  p.add_request({0});
  p.add_request({1});
  EXPECT_TRUE(f::HallChecker::check_subset(p, {0}).has_value());
  EXPECT_FALSE(f::HallChecker::check_subset(p, {1}).has_value());
}

TEST(Hall, RejectsHugeInstances) {
  f::ConnectionProblem p(1);
  p.set_capacity(0, 100);
  for (int i = 0; i < 30; ++i) p.add_request({0});
  EXPECT_THROW((void)f::HallChecker::find_violation(p),
               std::invalid_argument);
}

// Lemma 1 (min-cut max-flow): matching exists iff no Hall violation.
TEST(Hall, Lemma1EquivalenceOnRandomInstances) {
  p2pvod::util::Rng rng(123);
  int feasible_count = 0, infeasible_count = 0;
  for (int trial = 0; trial < 120; ++trial) {
    // Mean total capacity 7.5 vs 5 requests with dense edges: a healthy mix
    // of feasible and infeasible instances.
    auto problem = random_problem(rng, 5, 5, 3, 0.5);
    const bool by_flow = problem.solve().complete;
    const bool by_hall = f::HallChecker::feasible(problem);
    ASSERT_EQ(by_flow, by_hall) << "Lemma 1 equivalence failed, trial "
                                << trial;
    by_flow ? ++feasible_count : ++infeasible_count;
  }
  EXPECT_GT(feasible_count, 0);
  EXPECT_GT(infeasible_count, 0);
}

// ----------------------------------------------------------------- matcher

TEST(IncrementalMatcher, MatchesFromScratch) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  p.add_request({0});
  f::IncrementalMatcher matcher(2);
  const auto result = matcher.solve(p, {-1, -1});
  EXPECT_TRUE(result.complete);
}

TEST(IncrementalMatcher, KeepsValidCarries) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  p.add_request({0, 1});
  f::IncrementalMatcher matcher(2);
  const auto result = matcher.solve(p, {1, 0});  // previous round's wiring
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_EQ(result.assignment[1], 0);
  EXPECT_EQ(matcher.stats().kept_connections, 2u);
  EXPECT_EQ(matcher.stats().new_connections, 0u);
}

TEST(IncrementalMatcher, DropsInvalidCarries) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({1});  // box 0 no longer a candidate
  f::IncrementalMatcher matcher(2);
  const auto result = matcher.solve(p, {0});
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.assignment[0], 1);
}

TEST(IncrementalMatcher, AgreesWithDinicOnRandomSequences) {
  p2pvod::util::Rng rng(555);
  f::IncrementalMatcher matcher(8);
  std::vector<std::int32_t> carry;
  for (int round = 0; round < 40; ++round) {
    auto problem = random_problem(rng, 8, 10, 2, 0.35);
    carry.resize(problem.request_count(), -1);
    const auto incremental = matcher.solve(problem, carry);
    const auto reference = problem.solve(f::Engine::kDinic);
    ASSERT_EQ(incremental.served, reference.served) << "round " << round;
    carry = incremental.assignment;
  }
  EXPECT_GT(matcher.stats().kept_connections, 0u);
}

TEST(IncrementalMatcher, RejectsBoxCountChange) {
  f::IncrementalMatcher matcher(3);
  f::ConnectionProblem p(2);
  EXPECT_THROW((void)matcher.solve(p, {}), std::invalid_argument);
}

TEST(EngineName, Strings) {
  EXPECT_STREQ(f::engine_name(f::Engine::kDinic), "dinic");
  EXPECT_STREQ(f::engine_name(f::Engine::kHopcroftKarp), "hopcroft-karp");
}

// ----------------------------------------------------------------- min-cost

namespace {
f::EdgeCosts random_costs(p2pvod::util::Rng& rng,
                          const f::ConnectionProblem& problem,
                          p2pvod::flow::Cost max_cost) {
  f::EdgeCosts costs(problem.request_count());
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    for (std::size_t j = 0; j < problem.candidates(r).size(); ++j) {
      costs[r].push_back(
          static_cast<f::Cost>(rng.next_below(max_cost + 1)));
    }
  }
  return costs;
}

void check_valid(const f::ConnectionProblem& problem,
                 const f::MinCostResult& result) {
  const auto degrees = result.match.box_degrees(problem.box_count());
  for (std::uint32_t b = 0; b < problem.box_count(); ++b)
    ASSERT_LE(degrees[b], problem.capacity(b));
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    if (result.match.assignment[r] < 0) continue;
    const auto& cands = problem.candidates(r);
    ASSERT_NE(std::find(cands.begin(), cands.end(),
                        static_cast<std::uint32_t>(
                            result.match.assignment[r])),
              cands.end());
  }
}
}  // namespace

TEST(MinCostMatcher, PrefersCheapEdge) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  const auto result = f::MinCostMatcher::solve(p, {{5, 2}});
  EXPECT_TRUE(result.match.complete);
  EXPECT_EQ(result.match.assignment[0], 1);
  EXPECT_EQ(result.total_cost, 2);
}

TEST(MinCostMatcher, MaximalityBeatsCheapness) {
  // Serving both requests requires the expensive wiring; a maximum matching
  // must never be traded for a cheaper partial one.
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  p.add_request({0});
  const auto result = f::MinCostMatcher::solve(p, {{0, 100}, {0}});
  EXPECT_TRUE(result.match.complete);
  EXPECT_EQ(result.match.assignment[0], 1);
  EXPECT_EQ(result.match.assignment[1], 0);
  EXPECT_EQ(result.total_cost, 100);
}

TEST(MinCostMatcher, ZeroCostsDegradeToDinic) {
  p2pvod::util::Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    auto problem = random_problem(rng, 7, 12, 2, 0.35);
    f::EdgeCosts zero(problem.request_count());
    for (std::uint32_t r = 0; r < problem.request_count(); ++r)
      zero[r].assign(problem.candidates(r).size(), 0);
    const auto mincost = f::MinCostMatcher::solve(problem, zero);
    const auto dinic = problem.solve(f::Engine::kDinic);
    ASSERT_EQ(mincost.match.served, dinic.served) << "trial " << trial;
    ASSERT_EQ(mincost.match.assignment, dinic.assignment) << "trial " << trial;
    ASSERT_EQ(mincost.total_cost, 0);
  }
}

// Acceptance property: on randomized small instances the SSP solver agrees
// with exhaustive enumeration on BOTH optimality criteria — matching size
// first, total cost second.
TEST(MinCostMatcher, AgreesWithBruteForceOnRandomInstances) {
  p2pvod::util::Rng rng(31337);
  for (int trial = 0; trial < 80; ++trial) {
    auto problem = random_problem(rng, 5, 6, 2, 0.45);
    const auto costs = random_costs(rng, problem, 7);
    const auto fast = f::MinCostMatcher::solve(problem, costs);
    const auto slow = f::min_cost_brute_force(problem, costs);
    ASSERT_EQ(fast.match.served, slow.match.served) << "trial " << trial;
    ASSERT_EQ(fast.total_cost, slow.total_cost) << "trial " << trial;
    check_valid(problem, fast);
  }
}

// The matching size must equal the cost-blind maximum at any cost profile:
// costs steer, they never shrink feasibility.
TEST(MinCostMatcher, ServedCountMatchesDinicUnderAnyCosts) {
  p2pvod::util::Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    auto problem = random_problem(rng, 8, 14, 3, 0.3);
    const auto costs = random_costs(rng, problem, 9);
    const auto mincost = f::MinCostMatcher::solve(problem, costs);
    const auto dinic = problem.solve(f::Engine::kDinic);
    ASSERT_EQ(mincost.match.served, dinic.served) << "trial " << trial;
    check_valid(problem, mincost);
  }
}

TEST(MinCostMatcher, DeterministicAcrossRepeatSolves) {
  p2pvod::util::Rng rng(99);
  auto problem = random_problem(rng, 6, 10, 2, 0.4);
  const auto costs = random_costs(rng, problem, 5);
  const auto first = f::MinCostMatcher::solve(problem, costs);
  const auto second = f::MinCostMatcher::solve(problem, costs);
  EXPECT_EQ(first.match.assignment, second.match.assignment);
  EXPECT_EQ(first.total_cost, second.total_cost);
}

TEST(MinCostMatcher, RejectsBadShapesAndNegativeCosts) {
  f::ConnectionProblem p(2);
  p.set_capacity(0, 1);
  p.add_request({0});
  EXPECT_THROW((void)f::MinCostMatcher::solve(p, {}),
               std::invalid_argument);
  EXPECT_THROW((void)f::MinCostMatcher::solve(p, {{1, 2}}),
               std::invalid_argument);
  EXPECT_THROW((void)f::MinCostMatcher::solve(p, {{-1}}),
               std::invalid_argument);
  EXPECT_THROW((void)f::min_cost_brute_force(p, {{-1}}),
               std::invalid_argument);
}

TEST(MinCostBruteForce, RejectsHugeInstances) {
  f::ConnectionProblem p(8);
  for (std::uint32_t b = 0; b < 8; ++b) p.set_capacity(b, 8);
  f::EdgeCosts costs;
  for (int r = 0; r < 12; ++r) {
    p.add_request({0, 1, 2, 3, 4, 5, 6, 7});
    costs.push_back({0, 0, 0, 0, 0, 0, 0, 0});
  }
  EXPECT_THROW((void)f::min_cost_brute_force(p, costs),
               std::invalid_argument);
}

// ---------------------------------------------------------------- group caps

namespace {

/// Zone-style groups over a random problem: box b lives in zone b % zones,
/// request r in zone r % zones, and an edge's group is the directed zone
/// pair. Mirrors how the simulator maps link caps onto enforce_group_caps.
f::EdgeGroups zone_groups(const f::ConnectionProblem& problem,
                          std::uint32_t zones) {
  f::EdgeGroups groups(problem.request_count());
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    for (const std::uint32_t b : problem.candidates(r)) {
      groups[r].push_back((b % zones) * zones + (r % zones));
    }
  }
  return groups;
}

/// Count each group's usage under an assignment and check it against caps.
void check_group_budgets(const f::ConnectionProblem& problem,
                         const f::EdgeGroups& groups,
                         const std::vector<std::uint32_t>& caps,
                         const std::vector<std::int32_t>& assignment) {
  std::vector<std::uint32_t> used(caps.size(), 0);
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    if (assignment[r] < 0) continue;
    const auto& cands = problem.candidates(r);
    const auto it = std::find(cands.begin(), cands.end(),
                              static_cast<std::uint32_t>(assignment[r]));
    ASSERT_NE(it, cands.end());
    const std::uint32_t g =
        groups[r][static_cast<std::size_t>(it - cands.begin())];
    if (g != f::kUncappedGroup) ++used[g];
  }
  for (std::size_t g = 0; g < caps.size(); ++g) {
    if (caps[g] != f::kUncappedGroup) ASSERT_LE(used[g], caps[g]);
  }
}

}  // namespace

TEST(GroupCaps, AdmissionDropsOverCapThenRescues) {
  // Both requests matched onto box 0 (zone 0) from zone-0 requests is fine;
  // cap the 0->0 link at 1 and the second connection must be dropped, then
  // rescued onto box 1 over the uncapped 1->0 link.
  f::ConnectionProblem p(2);
  p.set_capacity(0, 2);
  p.set_capacity(1, 2);
  p.add_request({0, 1});
  p.add_request({0, 1});
  const f::EdgeCosts costs{{0, 1}, {0, 1}};
  const f::EdgeGroups groups{{0, 1}, {0, 1}};
  const std::vector<std::uint32_t> caps{1, f::kUncappedGroup};

  auto result = f::MinCostMatcher::solve(p, costs).match;
  ASSERT_EQ(result.served, 2u);
  ASSERT_EQ(result.assignment[0], 0);
  ASSERT_EQ(result.assignment[1], 0);

  const auto outcome = f::enforce_group_caps(p, costs, groups, caps, result);
  EXPECT_EQ(outcome.rejections, 1u);
  EXPECT_EQ(outcome.rescues, 1u);
  EXPECT_EQ(result.served, 2u);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);  // rescued over the uncapped group
}

TEST(GroupCaps, RescueRespectsBoxCapacity) {
  // The only alternative server has no spare upload slot: the dropped
  // request must stay unserved, never overloading the box.
  f::ConnectionProblem p(2);
  p.set_capacity(0, 2);
  p.set_capacity(1, 1);
  p.add_request({0, 1});
  p.add_request({0, 1});
  p.add_request({1});
  const f::EdgeCosts costs{{0, 0}, {0, 0}, {0}};
  const f::EdgeGroups groups{{0, 1}, {0, 1}, {1}};
  const std::vector<std::uint32_t> caps{1, f::kUncappedGroup};

  auto result = f::MinCostMatcher::solve(p, costs).match;
  ASSERT_EQ(result.served, 3u);
  const auto outcome = f::enforce_group_caps(p, costs, groups, caps, result);
  // Request 2 pins box 1, so requests 0 and 1 both sat on box 0's capped
  // group and the second was dropped. Its rescue candidates: box 0 is out of
  // group budget, box 1 out of upload slots -> it stays unserved.
  EXPECT_EQ(outcome.rejections, 1u);
  EXPECT_EQ(outcome.rescues, 0u);
  EXPECT_EQ(result.served, 2u);
  const auto degrees = result.box_degrees(2);
  EXPECT_LE(degrees[0], 2u);
  EXPECT_LE(degrees[1], 1u);
}

TEST(GroupCaps, UnlimitedBudgetAndUncappedEdgesNeverDrop) {
  // A caps[] entry of kUncappedGroup means unlimited budget; a groups[][j]
  // entry of kUncappedGroup means the edge is outside every group. Neither
  // may ever reject, no matter how much load they carry.
  f::ConnectionProblem p(1);
  p.set_capacity(0, 8);
  f::EdgeCosts costs;
  f::EdgeGroups groups;
  for (int r = 0; r < 8; ++r) {
    p.add_request({0});
    costs.push_back({0});
    groups.push_back({r % 2 == 0 ? 0u : f::kUncappedGroup});
  }
  const std::vector<std::uint32_t> caps{f::kUncappedGroup};
  auto result = p.solve(f::Engine::kDinic);
  ASSERT_EQ(result.served, 8u);
  const auto outcome = f::enforce_group_caps(p, costs, groups, caps, result);
  EXPECT_EQ(outcome.rejections, 0u);
  EXPECT_EQ(outcome.rescues, 0u);
  EXPECT_EQ(result.served, 8u);
}

TEST(GroupCaps, RescuePicksCheapestThenLowestBox) {
  f::ConnectionProblem p(3);
  p.set_capacity(0, 2);  // room for both, so min-cost parks both on box 0
  p.set_capacity(1, 1);
  p.set_capacity(2, 1);
  p.add_request({0});
  p.add_request({0, 1, 2});
  // Both on the capped group through box 0 -> request 1 dropped; boxes 1 and
  // 2 tie on cost, the lower id must win.
  const f::EdgeCosts costs{{0}, {0, 3, 3}};
  const f::EdgeGroups groups{{0}, {0, 1, 1}};
  const std::vector<std::uint32_t> caps{1, f::kUncappedGroup};
  auto result = f::MinCostMatcher::solve(p, costs).match;
  ASSERT_EQ(result.assignment[0], 0);
  ASSERT_EQ(result.assignment[1], 0);
  const auto outcome = f::enforce_group_caps(p, costs, groups, caps, result);
  EXPECT_EQ(outcome.rescues, 1u);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(GroupCaps, RejectsBadShapesAndGroupIds) {
  f::ConnectionProblem p(1);
  p.set_capacity(0, 1);
  p.add_request({0});
  auto result = p.solve(f::Engine::kDinic);
  // Row-count mismatch.
  EXPECT_THROW((void)f::enforce_group_caps(p, {{0}}, {}, {1}, result),
               std::invalid_argument);
  // Row-shape mismatch.
  EXPECT_THROW((void)f::enforce_group_caps(p, {{0}}, {{0, 1}}, {1}, result),
               std::invalid_argument);
  // Out-of-range group id.
  EXPECT_THROW((void)f::enforce_group_caps(p, {{0}}, {{7}}, {1}, result),
               std::invalid_argument);
}

TEST(CappedBruteForce, UnlimitedCapsMatchUncappedReference) {
  p2pvod::util::Rng rng(909);
  for (int trial = 0; trial < 20; ++trial) {
    auto problem = random_problem(rng, 4, 5, 2, 0.5);
    const auto costs = random_costs(rng, problem, 5);
    const auto groups = zone_groups(problem, 2);
    const std::vector<std::uint32_t> caps(4, f::kUncappedGroup);
    const auto capped =
        f::min_cost_capped_brute_force(problem, costs, groups, caps);
    const auto plain = f::min_cost_brute_force(problem, costs);
    ASSERT_EQ(capped.match.served, plain.match.served) << "trial " << trial;
    ASSERT_EQ(capped.total_cost, plain.total_cost) << "trial " << trial;
  }
}

// Acceptance property: on randomized capped instances,
//   admission-only served <= admission+rescue served <= exact capped served,
// and every assignment respects box capacities and group budgets. The exact
// solver upper-bounds the two-pass heuristic by construction.
TEST(GroupCaps, HeuristicBoundedByExactCappedSolver) {
  p2pvod::util::Rng rng(24601);
  for (int trial = 0; trial < 60; ++trial) {
    auto problem = random_problem(rng, 5, 6, 2, 0.45);
    const auto costs = random_costs(rng, problem, 4);
    const auto groups = zone_groups(problem, 2);
    std::vector<std::uint32_t> caps(4);
    for (auto& cap : caps) {
      cap = rng.next_bool(0.25)
                ? f::kUncappedGroup
                : static_cast<std::uint32_t>(rng.next_below(3));
    }

    auto heuristic = f::MinCostMatcher::solve(problem, costs).match;
    const auto outcome =
        f::enforce_group_caps(problem, costs, groups, caps, heuristic);
    ASSERT_LE(outcome.rescues, outcome.rejections) << "trial " << trial;
    const std::uint32_t admission_only = heuristic.served - static_cast<std::uint32_t>(outcome.rescues);

    const auto exact =
        f::min_cost_capped_brute_force(problem, costs, groups, caps);
    ASSERT_LE(admission_only, heuristic.served) << "trial " << trial;
    ASSERT_LE(heuristic.served, exact.match.served) << "trial " << trial;

    check_group_budgets(problem, groups, caps, heuristic.assignment);
    check_group_budgets(problem, groups, caps, exact.match.assignment);
    const auto degrees = heuristic.box_degrees(problem.box_count());
    for (std::uint32_t b = 0; b < problem.box_count(); ++b)
      ASSERT_LE(degrees[b], problem.capacity(b)) << "trial " << trial;
  }
}
