// Unit tests for src/workload: each generator's contract plus the µ-growth
// limiter's compounding-ceiling semantics.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "alloc/permutation.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"
#include "workload/distinct.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/poisson.hpp"
#include "workload/sequential.hpp"
#include "workload/trace.hpp"
#include "workload/zipf.hpp"

namespace w = p2pvod::workload;
namespace s = p2pvod::sim;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;

namespace {

struct SimWorld {
  SimWorld(std::uint32_t n, std::uint32_t videos, std::uint32_t c,
           m::Round T, double u = 4.0, std::uint32_t k = 2,
           std::uint64_t seed = 99)
      : catalog(videos, c, T),
        profile(m::CapacityProfile::homogeneous(n, u, 8.0)),
        rng(seed),
        allocation(a::PermutationAllocator().allocate(catalog, profile, k,
                                                      rng)),
        simulator(catalog, profile, allocation, strategy) {}

  m::Catalog catalog;
  m::CapacityProfile profile;
  p2pvod::util::Rng rng;
  a::Allocation allocation;
  s::PreloadingStrategy strategy;
  s::Simulator simulator;
};

}  // namespace

// ----------------------------------------------------------------- helpers

TEST(Workload, IdleBoxesMatchesSimulatorState) {
  SimWorld world(6, 4, 2, 8);
  EXPECT_EQ(w::idle_boxes(world.simulator).size(), 6u);
  world.simulator.step({{2, 0}});
  const auto idle = w::idle_boxes(world.simulator);
  EXPECT_EQ(idle.size(), 5u);
  EXPECT_EQ(std::count(idle.begin(), idle.end(), 2u), 0);
}

// ----------------------------------------------------------------- avoider

TEST(Avoider, PicksVideosTheBoxLacks) {
  SimWorld world(8, 16, 2, 8);
  w::AvoiderAdversary adversary(123);
  const auto demands = adversary.demands(world.simulator);
  EXPECT_FALSE(demands.empty());
  for (const auto& d : demands) {
    EXPECT_FALSE(world.allocation.box_has_video_data(d.box, world.catalog,
                                                     d.video))
        << "box " << d.box << " stores data of video " << d.video;
  }
}

TEST(Avoider, SilentWhenEveryVideoCovered) {
  // k = 32 replicas of each of the 2 stripes fill every one of the 64 slots,
  // so every box necessarily holds data of the single video.
  SimWorld world(4, 1, 2, 8, 4.0, /*k=*/32);
  w::AvoiderAdversary adversary(5, w::AvoiderAdversary::Fallback::kStaySilent);
  EXPECT_TRUE(adversary.demands(world.simulator).empty());
}

TEST(Avoider, FallbackLeastLocalData) {
  SimWorld world(4, 1, 2, 8, 4.0, 32);
  w::AvoiderAdversary adversary(5,
                                w::AvoiderAdversary::Fallback::kLeastLocalData);
  const auto demands = adversary.demands(world.simulator);
  EXPECT_EQ(demands.size(), 4u);  // every idle box demands something
}

TEST(Avoider, RespectsPerRoundCap) {
  SimWorld world(8, 16, 2, 8);
  w::AvoiderAdversary adversary(9, w::AvoiderAdversary::Fallback::kStaySilent,
                                /*max per round=*/3);
  EXPECT_LE(adversary.demands(world.simulator).size(), 3u);
}

// ----------------------------------------------------------------- flash crowd

TEST(FlashCrowd, SeedsOneViewerThenGrows) {
  SimWorld world(32, 4, 2, 16);
  w::FlashCrowd crowd(/*video=*/1, /*mu=*/2.0);
  auto demands = crowd.demands(world.simulator);
  ASSERT_EQ(demands.size(), 2u);  // f=0 -> ceil(1*2) = 2 joiners allowed
  world.simulator.step(demands);
  demands = crowd.demands(world.simulator);
  EXPECT_EQ(demands.size(), 2u);  // f=2 -> up to 4
  world.simulator.step(demands);
  demands = crowd.demands(world.simulator);
  EXPECT_EQ(demands.size(), 4u);  // f=4 -> up to 8
}

TEST(FlashCrowd, HonorsStartRound) {
  SimWorld world(8, 4, 2, 16);
  w::FlashCrowd crowd(0, 2.0, /*start=*/3);
  EXPECT_TRUE(crowd.demands(world.simulator).empty());
  world.simulator.step({});
  world.simulator.step({});
  world.simulator.step({});
  EXPECT_FALSE(crowd.demands(world.simulator).empty());
}

TEST(FlashCrowd, StopsAtMaxJoiners) {
  SimWorld world(32, 4, 2, 16);
  w::FlashCrowd crowd(0, 4.0, 0, /*max joiners=*/5);
  std::uint32_t total = 0;
  for (int t = 0; t < 6; ++t) {
    const auto demands = crowd.demands(world.simulator);
    total += static_cast<std::uint32_t>(demands.size());
    world.simulator.step(demands);
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(crowd.total_joined(), 5u);
}

// ----------------------------------------------------------------- zipf

TEST(Zipf, SamplerProbabilitiesDecreaseWithRank) {
  w::ZipfSampler sampler(10, 1.0);
  for (std::uint32_t r = 1; r < 10; ++r)
    EXPECT_GT(sampler.probability(r - 1), sampler.probability(r));
}

TEST(Zipf, AlphaZeroIsUniform) {
  w::ZipfSampler sampler(8, 0.0);
  for (std::uint32_t r = 0; r < 8; ++r)
    EXPECT_NEAR(sampler.probability(r), 0.125, 1e-12);
}

TEST(Zipf, SampleFrequenciesTrackProbabilities) {
  w::ZipfSampler sampler(5, 1.2);
  p2pvod::util::Rng rng(7);
  std::array<int, 5> counts{};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.sample(rng)];
  for (std::uint32_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kSamples),
                sampler.probability(r), 0.02);
  }
}

TEST(Zipf, RejectsDegenerateInputs) {
  EXPECT_THROW(w::ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(w::ZipfSampler(5, -0.1), std::invalid_argument);
}

TEST(Zipf, GeneratorTargetsIdleBoxesOnly) {
  SimWorld world(6, 8, 2, 8);
  world.simulator.step({{0, 0}});
  w::ZipfDemand zipf(8, 0.8, 1.0, 11);
  const auto demands = zipf.demands(world.simulator);
  EXPECT_EQ(demands.size(), 5u);  // all idle boxes demand with prob 1
  for (const auto& d : demands) EXPECT_NE(d.box, 0u);
}

// ----------------------------------------------------------------- poisson

TEST(Poisson, RateControlsVolume) {
  SimWorld world(64, 8, 2, 8);
  w::PoissonArrivals gen(3.0, 17);
  double total = 0.0;
  for (int t = 0; t < 200; ++t)
    total += static_cast<double>(gen.demands(world.simulator).size());
  EXPECT_NEAR(total / 200.0, 3.0, 0.5);
}

TEST(Poisson, NeverAssignsSameBoxTwicePerRound) {
  SimWorld world(8, 4, 2, 8);
  w::PoissonArrivals gen(6.0, 23);
  for (int t = 0; t < 50; ++t) {
    const auto demands = gen.demands(world.simulator);
    std::set<m::BoxId> boxes;
    for (const auto& d : demands) {
      EXPECT_TRUE(boxes.insert(d.box).second) << "duplicate box in round";
    }
  }
}

// ----------------------------------------------------------------- distinct

TEST(Distinct, FirstRoundPairwiseDistinct) {
  SimWorld world(6, 8, 2, 8);
  w::DistinctVideosSweep sweep(3);
  const auto demands = sweep.demands(world.simulator);
  ASSERT_EQ(demands.size(), 6u);
  std::set<m::VideoId> videos;
  for (const auto& d : demands) EXPECT_TRUE(videos.insert(d.video).second);
}

TEST(Distinct, NoRepeatWithoutFlag) {
  SimWorld world(4, 8, 2, 8);
  w::DistinctVideosSweep sweep(3, /*repeat=*/false);
  (void)sweep.demands(world.simulator);
  EXPECT_TRUE(sweep.demands(world.simulator).empty());
}

TEST(Distinct, RepeatRotatesVideos) {
  SimWorld world(4, 8, 2, 8);
  w::DistinctVideosSweep sweep(3, /*repeat=*/true);
  const auto first = sweep.demands(world.simulator);
  const auto second = sweep.demands(world.simulator);  // boxes still idle
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].box, first[i].box);
    EXPECT_EQ(second[i].video, (first[i].video + 1) % 8);
  }
}

// ----------------------------------------------------------------- sequential

TEST(Sequential, IdleBoxesRejoinNextVideo) {
  SimWorld world(4, 6, 2, 8);
  w::SequentialViewer viewer(3, 1.0);
  const auto first = viewer.demands(world.simulator);
  ASSERT_EQ(first.size(), 4u);
  const auto second = viewer.demands(world.simulator);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i].video, (first[i].video + 1) % 6);
  }
}

TEST(Sequential, JoinProbabilityZeroIsSilent) {
  SimWorld world(4, 6, 2, 8);
  w::SequentialViewer viewer(3, 0.0);
  EXPECT_TRUE(viewer.demands(world.simulator).empty());
}

// ----------------------------------------------------------------- trace

TEST(Trace, SaveLoadRoundTrip) {
  w::Trace trace;
  trace.add(0, 1, 2);
  trace.add(0, 3, 4);
  trace.add(5, 0, 1);
  std::stringstream buffer;
  trace.save(buffer);
  const auto loaded = w::Trace::load(buffer);
  EXPECT_EQ(loaded.entries(), trace.entries());
}

TEST(Trace, LoadSkipsCommentsAndRejectsGarbage) {
  std::stringstream good("# comment\n1 2 3\n");
  EXPECT_EQ(w::Trace::load(good).size(), 1u);
  std::stringstream bad("1 two 3\n");
  EXPECT_THROW((void)w::Trace::load(bad), std::runtime_error);
}

namespace {
std::string load_error(const std::string& text) {
  std::stringstream in(text);
  try {
    (void)w::Trace::load(in);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return {};
}
}  // namespace

TEST(Trace, LoadRejectsTruncatedLineWithLineNumber) {
  const auto what = load_error("0 1 2\n3 4\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("video"), std::string::npos) << what;  // missing field
}

TEST(Trace, LoadRejectsNonNumericFieldWithLineNumber) {
  const auto what = load_error("# header\n0 1 2\nx 1 2\n");
  EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  EXPECT_NE(what.find("non-numeric round"), std::string::npos) << what;
}

TEST(Trace, LoadRejectsNegativeAndOversizedIds) {
  EXPECT_NE(load_error("0 -1 2\n").find("box id -1 out of range"),
            std::string::npos);
  EXPECT_NE(load_error("0 1 99999999999\n").find("video id"),
            std::string::npos);
}

TEST(Trace, LoadBlamesTheOverflowingFieldItself) {
  // A value past long long must be blamed on its own token, not on the field
  // after it (naive istream extraction consumes the oversized number and
  // misattributes the error to the next field).
  const auto what = load_error("99999999999999999999999 1 2\n");
  EXPECT_NE(what.find("round field '99999999999999999999999' out of range"),
            std::string::npos)
      << what;
}

TEST(Trace, LoadRejectsTrailingGarbage) {
  const auto what = load_error("0 1 2 3\n");
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  EXPECT_NE(what.find("trailing garbage '3'"), std::string::npos) << what;
}

TEST(Trace, LoadRejectsUnsortedRounds) {
  const auto what = load_error("5 0 0\n3 0 0\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("non-decreasing"), std::string::npos) << what;
}

TEST(Trace, LoadAcceptsNegativeRoundsInOrder) {
  // Rounds may be negative (model::Round is signed; tests use them).
  std::stringstream in("-3 0 1\n-1 2 3\n0 4 5\n");
  const auto loaded = w::Trace::load(in);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.entries()[0].round, -3);
}

TEST(Trace, AddRejectsOutOfOrderRounds) {
  w::Trace trace;
  trace.add(5, 0, 0);
  EXPECT_THROW(trace.add(4, 0, 0), std::invalid_argument);
}

TEST(Trace, RecorderCapturesReplayReproduces) {
  SimWorld world(6, 8, 2, 8);
  w::DistinctVideosSweep inner(3);
  w::TraceRecorder recorder(inner);
  const auto demands = recorder.demands(world.simulator);
  EXPECT_EQ(recorder.trace().size(), demands.size());

  SimWorld world2(6, 8, 2, 8);
  w::TraceReplay replay(recorder.trace());
  const auto replayed = replay.demands(world2.simulator);
  ASSERT_EQ(replayed.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_EQ(replayed[i].box, demands[i].box);
    EXPECT_EQ(replayed[i].video, demands[i].video);
  }
}

TEST(Trace, ReplayEmitsAtRecordedRound) {
  w::Trace trace;
  trace.add(2, 0, 1);
  w::TraceReplay replay(trace);
  SimWorld world(4, 4, 2, 8);
  EXPECT_TRUE(replay.demands(world.simulator).empty());  // round 0
  world.simulator.step({});
  EXPECT_TRUE(replay.demands(world.simulator).empty());  // round 1
  world.simulator.step({});
  EXPECT_EQ(replay.demands(world.simulator).size(), 1u);  // round 2
}

// ----------------------------------------------------------------- limiter

namespace {
/// Generator that floods one video with every idle box, to stress the cap.
class Flood final : public w::DemandGenerator {
 public:
  explicit Flood(m::VideoId video) : video_(video) {}
  std::vector<s::Demand> demands(const s::Simulator& sim) override {
    std::vector<s::Demand> out;
    for (const auto b : w::idle_boxes(sim)) out.push_back({b, video_});
    return out;
  }
  std::string name() const override { return "flood"; }

 private:
  m::VideoId video_;
};
}  // namespace

TEST(Limiter, CapsJoinsToGrowthBound) {
  SimWorld world(64, 4, 2, 32);
  Flood flood(0);
  w::GrowthLimiter limited(flood, /*mu=*/2.0);
  // Round 0: f=0, cap = ceil(1*2) = 2.
  auto demands = limited.demands(world.simulator);
  EXPECT_EQ(demands.size(), 2u);
  world.simulator.step(demands);
  // Round 1: f=2, cap 4 -> 2 more.
  demands = limited.demands(world.simulator);
  EXPECT_EQ(demands.size(), 2u);
  EXPECT_GT(limited.dropped(), 0u);
}

TEST(Limiter, CompoundingCeilingsDoNotLeak) {
  // µ=1.4 from f=1: one-step ceilings would allow 2 then 3, but the anchored
  // rule caps f(2) at ceil(1*1.4^2) = 2.
  SimWorld world(16, 4, 2, 32);
  Flood flood(0);
  w::GrowthLimiter limited(flood, 1.4);
  auto demands = limited.demands(world.simulator);  // round 0: cap ceil(1.4)=2?
  // f=0 -> anchor log(1); cap at t=1 is ceil(1.4) = 2... the first round cap
  // allows ceil(mu) joins.
  ASSERT_LE(demands.size(), 2u);
  world.simulator.step(demands);
  const auto f1 = world.simulator.swarms().size(0);
  demands = limited.demands(world.simulator);
  world.simulator.step(demands);
  const auto f2 = world.simulator.swarms().size(0);
  // The anchored bound from round 0 (f<=1): f(2) <= ceil(1 * 1.4^2) = 2.
  EXPECT_LE(f2, 2u);
  EXPECT_LE(f1, 2u);
}

TEST(Limiter, NameWrapsInner) {
  Flood flood(0);
  w::GrowthLimiter limited(flood, 2.0);
  EXPECT_EQ(limited.name(), "mu-limited(flood)");
}

TEST(Limiter, RejectsMuBelowOne) {
  Flood flood(0);
  EXPECT_THROW(w::GrowthLimiter(flood, 0.5), std::invalid_argument);
}
