// Tests for the determinism linter (src/lint/linter.hpp): per-rule positive
// and negative cases on inline sources, the fixture corpus under
// tests/lint_fixtures/, the allow() escape hatch, path allowlists, and the
// self-test that keeps the real tree clean — the lint gate in CI is only as
// trustworthy as these fixtures proving each rule actually fires.
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace lint = p2pvod::lint;

namespace {

std::vector<lint::Diagnostic> run(std::string_view source,
                                  std::string_view path = "src/x/y.cpp") {
  return lint::lint_source(path, source, lint::Config::repo_default());
}

bool fires(const std::vector<lint::Diagnostic>& diags, lint::Rule rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const lint::Diagnostic& d) { return d.rule == rule; });
}

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(P2PVOD_SOURCE_DIR) / "tests" / "lint_fixtures" /
         name;
}

// --- rule metadata ----------------------------------------------------------

TEST(LintRules, NamesRoundTrip) {
  for (const auto rule : lint::all_rules()) {
    const auto name = lint::rule_name(rule);
    ASSERT_FALSE(name.empty());
    const auto parsed = lint::rule_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, rule);
    EXPECT_FALSE(lint::rule_summary(rule).empty());
  }
  EXPECT_FALSE(lint::rule_from_name("no-such-rule").has_value());
}

TEST(LintRules, DiagnosticFormatIsGccStyle) {
  const auto diags = run("int main() { return std::rand(); }");
  ASSERT_EQ(diags.size(), 1u);
  const std::string text = diags[0].format();
  EXPECT_NE(text.find("src/x/y.cpp:1: error: [banned-random]"),
            std::string::npos)
      << text;
}

// --- banned-random ----------------------------------------------------------

TEST(LintBannedRandom, FlagsEachSource) {
  EXPECT_TRUE(fires(run("int a = std::rand();"), lint::Rule::kBannedRandom));
  EXPECT_TRUE(fires(run("srand(42);"), lint::Rule::kBannedRandom));
  EXPECT_TRUE(
      fires(run("std::random_device rd;"), lint::Rule::kBannedRandom));
  EXPECT_TRUE(fires(run("auto s = time(nullptr);"),
                    lint::Rule::kBannedRandom));
  EXPECT_TRUE(fires(run("auto s = time(NULL);"), lint::Rule::kBannedRandom));
  EXPECT_TRUE(fires(run("auto s = time(0);"), lint::Rule::kBannedRandom));
}

TEST(LintBannedRandom, IgnoresLookalikes) {
  EXPECT_TRUE(run("int strand = 3; int x = mod_time(0);").empty());
  EXPECT_TRUE(run("// call rand() at your peril\nint x = 0;").empty());
  EXPECT_TRUE(run("const char* s = \"rand() time(nullptr)\";").empty());
  // time() with a real argument is taking a time, not seeding from one.
  EXPECT_TRUE(run("auto t = time(&slot);").empty());
}

TEST(LintBannedRandom, RngModuleIsExempt) {
  const auto diags =
      lint::lint_source("src/util/rng.cpp", "std::random_device rd;",
                        lint::Config::repo_default());
  EXPECT_TRUE(diags.empty());
}

// --- wall-clock -------------------------------------------------------------

TEST(LintWallClock, FlagsEveryClock) {
  EXPECT_TRUE(fires(run("auto t = std::chrono::steady_clock::now();"),
                    lint::Rule::kWallClock));
  EXPECT_TRUE(fires(run("auto t = std::chrono::system_clock::now();"),
                    lint::Rule::kWallClock));
  EXPECT_TRUE(
      fires(run("auto t = std::chrono::high_resolution_clock::now();"),
            lint::Rule::kWallClock));
}

TEST(LintWallClock, OnlyTheObsClockTuIsExempt) {
  const auto config = lint::Config::repo_default();
  const std::string source = "auto t = std::chrono::steady_clock::now();";
  // The single allowlisted entry point for wall time.
  EXPECT_TRUE(
      lint::lint_source("src/obs/clock.cpp", source, config).empty());
  EXPECT_TRUE(
      lint::lint_source("src/obs/clock.hpp", source, config).empty());
  // Everything else is flagged — including the REST of src/obs/ (trace and
  // metrics must go through obs::monotonic_ns, not read clocks directly) and
  // the layers the allowlist used to cover before the obs migration.
  EXPECT_FALSE(
      lint::lint_source("src/obs/trace.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/obs/metrics.cpp", source, config).empty());
  // The PR 9 analysis TUs consume timestamps only via obs/clock and
  // TraceEvent fields; a direct chrono read there must stay flagged.
  EXPECT_FALSE(
      lint::lint_source("src/obs/profile.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/obs/timeseries.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/obs/trajectory.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/sweep/sweep_result.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/util/thread_pool.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("bench/bench_perf_pool.cpp", source, config).empty());
  EXPECT_FALSE(
      lint::lint_source("src/sim/simulator.cpp", source, config).empty());
}

TEST(LintWallClock, DurationTypesAloneAreFine) {
  EXPECT_TRUE(run("std::chrono::steady_clock::duration d{};").empty());
  EXPECT_TRUE(run("using Clock = std::chrono::steady_clock;").empty());
}

// --- raw-thread -------------------------------------------------------------

TEST(LintRawThread, FlagsConstructionAndDetach) {
  EXPECT_TRUE(
      fires(run("std::thread t([]{});"), lint::Rule::kRawThread));
  EXPECT_TRUE(fires(run("worker.detach();"), lint::Rule::kRawThread));
  EXPECT_TRUE(fires(run("worker->detach();"), lint::Rule::kRawThread));
  EXPECT_TRUE(fires(run("auto n = std::thread::hardware_concurrency();"),
                    lint::Rule::kRawThread));
}

TEST(LintRawThread, IgnoresLookalikes) {
  EXPECT_TRUE(run("#include <thread>\nstd::this_thread::yield();").empty());
  EXPECT_TRUE(run("thread_local int depth = 0;").empty());
  EXPECT_TRUE(run("int detach = 3; use(detach);").empty());
}

TEST(LintRawThread, ThreadPoolIsExempt) {
  const auto diags = lint::lint_source("src/util/thread_pool.cpp",
                                       "std::thread t([]{}); t.detach();",
                                       lint::Config::repo_default());
  EXPECT_TRUE(diags.empty());
}

// --- unordered-iteration ----------------------------------------------------

TEST(LintUnorderedIteration, FlagsRangeForOverDeclaredVariable) {
  const std::string source =
      "std::unordered_map<int, int> table;\n"
      "void f() { for (const auto& [k, v] : table) { use(k, v); } }\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kUnorderedIteration));
}

TEST(LintUnorderedIteration, FlagsRangeForOverReferenceParameter) {
  const std::string source =
      "void f(const std::unordered_set<int>& seen) {\n"
      "  for (int s : seen) use(s);\n"
      "}\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kUnorderedIteration));
}

TEST(LintUnorderedIteration, FlagsRangeForOverUsingAlias) {
  const std::string source =
      "using Cache = std::unordered_map<int, double>;\n"
      "void f(const Cache& cache) {\n"
      "  for (const auto& entry : cache) use(entry);\n"
      "}\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kUnorderedIteration));
}

TEST(LintUnorderedIteration, FlagsBeginIterator) {
  const std::string source =
      "std::unordered_map<int, int> table_;\n"
      "auto it = table_.begin();\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kUnorderedIteration));
}

TEST(LintUnorderedIteration, AllowsLookupsAndOrderedContainers) {
  const std::string source =
      "std::unordered_map<int, int> table;\n"
      "std::map<int, int> ordered;\n"
      "void f() {\n"
      "  if (auto it = table.find(3); it != table.end()) use(it->second);\n"
      "  auto n = table.count(7) + table.size();\n"
      "  for (const auto& [k, v] : ordered) use(k, v);\n"
      "  for (int i = 0; i < 3; ++i) use(i, i);\n"
      "}\n";
  EXPECT_TRUE(run(source).empty());
}

// --- escape hatch -----------------------------------------------------------

TEST(LintAllow, SameLineSuppresses) {
  const std::string source =
      "auto t = std::chrono::steady_clock::now();"
      "  // p2pvod-lint: allow(wall-clock) — progress logging only\n";
  EXPECT_TRUE(run(source).empty());
}

TEST(LintAllow, PreviousLineSuppresses) {
  const std::string source =
      "// order is commutative here; p2pvod-lint: allow(unordered-iteration)\n"
      "for (const auto& [k, v] : table) use(k, v);\n"
      "std::unordered_map<int, int> table;\n";
  EXPECT_TRUE(run(source).empty());
}

TEST(LintAllow, WrongRuleDoesNotSuppress) {
  const std::string source =
      "// p2pvod-lint: allow(wall-clock)\n"
      "int x = std::rand();\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kBannedRandom));
}

TEST(LintAllow, UnknownNameDoesNotSuppress) {
  const std::string source =
      "// p2pvod-lint: allow(bannedrandom)\n"
      "int x = std::rand();\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kBannedRandom));
}

TEST(LintAllow, ListSuppressesSeveralRules) {
  const std::string source =
      "// p2pvod-lint: allow(banned-random, wall-clock)\n"
      "auto x = time(nullptr) + "
      "std::chrono::steady_clock::now().time_since_epoch().count();\n";
  EXPECT_TRUE(run(source).empty());
}

TEST(LintAllow, TwoLinesDownIsOutOfScope) {
  const std::string source =
      "// p2pvod-lint: allow(banned-random)\n"
      "int y = 0;\n"
      "int x = std::rand();\n";
  EXPECT_TRUE(fires(run(source), lint::Rule::kBannedRandom));
}

// --- fixture corpus ---------------------------------------------------------

struct FixtureCase {
  const char* file;
  lint::Rule rule;
  std::size_t min_hits;
};

TEST(LintFixtures, BadFixturesFire) {
  const FixtureCase cases[] = {
      {"bad_unordered_range_for.cpp", lint::Rule::kUnorderedIteration, 1},
      {"bad_unordered_iterator.cpp", lint::Rule::kUnorderedIteration, 1},
      {"bad_banned_random.cpp", lint::Rule::kBannedRandom, 4},
      {"bad_wall_clock.cpp", lint::Rule::kWallClock, 2},
      {"bad_raw_thread.cpp", lint::Rule::kRawThread, 2},
  };
  for (const auto& test_case : cases) {
    const auto diags =
        lint::lint_file(fixture(test_case.file), lint::Config::repo_default());
    std::size_t hits = 0;
    for (const auto& diag : diags) {
      EXPECT_EQ(diag.rule, test_case.rule) << diag.format();
      EXPECT_GT(diag.line, 0u);
      ++hits;
    }
    EXPECT_GE(hits, test_case.min_hits) << test_case.file;
  }
}

TEST(LintFixtures, GoodFixturesAreClean) {
  for (const char* file : {"good_clean.cpp", "good_allow_escape.cpp"}) {
    const auto diags =
        lint::lint_file(fixture(file), lint::Config::repo_default());
    for (const auto& diag : diags) ADD_FAILURE() << diag.format();
  }
}

TEST(LintFixtures, MissingFileThrows) {
  EXPECT_THROW(lint::lint_file(fixture("no_such_fixture.cpp"),
                               lint::Config::repo_default()),
               std::runtime_error);
}

// --- whole-tree self-test ---------------------------------------------------

// The gate itself: the real src/, bench/, examples/, tools/ tree lints clean
// with the repo-default config. A violation anywhere (new code iterating an
// unordered map, a stray random_device, ...) fails this test long before the
// runtime baseline diff would catch the skew.
TEST(LintSelfTest, RealTreeIsClean) {
  const auto diags = lint::lint_tree(std::filesystem::path(P2PVOD_SOURCE_DIR),
                                     lint::Config::repo_default());
  for (const auto& diag : diags) ADD_FAILURE() << diag.format();
}

TEST(LintSelfTest, TreeScanIsDeterministic) {
  const auto root = std::filesystem::path(P2PVOD_SOURCE_DIR);
  const auto config = lint::Config::repo_default();
  const auto first = lint::lint_dirs({root / "tests" / "lint_fixtures"},
                                     config);
  const auto second = lint::lint_dirs({root / "tests" / "lint_fixtures"},
                                      config);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].format(), second[i].format());
  }
  // Sorted by path, so diagnostics batch stably across filesystems.
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end(),
                             [](const auto& a, const auto& b) {
                               return a.file < b.file ||
                                      (a.file == b.file && a.line < b.line);
                             }));
}

}  // namespace
