// Tests for the million-box sparse round path: CsrProblem delta maintenance,
// CsrMatcher incremental repair, validate_assignment (the strengthened
// verify_incremental check), the ±delta capacity bookkeeping under churn, and
// dense-vs-sparse lockstep equivalence across churn / strict / override /
// engine configurations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "alloc/allocation.hpp"
#include "alloc/permutation.hpp"
#include "flow/bipartite.hpp"
#include "flow/csr_matcher.hpp"
#include "flow/csr_problem.hpp"
#include "flow/verify.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/sparse_round.hpp"
#include "sim/strategy.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace s = p2pvod::sim;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace f = p2pvod::flow;
namespace w = p2pvod::workload;

namespace {

class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str()); old != nullptr) {
      old_ = old;
    }
    setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

}  // namespace

// ------------------------------------------------------------- CsrProblem

TEST(CsrProblem, AddSourceKeepsRowsSortedUnique) {
  f::CsrProblem csr;
  csr.ensure_row(0);
  csr.add_source(0, 5);
  csr.add_source(0, 2);
  csr.add_source(0, 9);
  csr.add_source(0, 2);  // duplicate source of box 2: count bump, no new edge
  const auto row = csr.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 2u);
  EXPECT_EQ(row[1], 5u);
  EXPECT_EQ(row[2], 9u);
  EXPECT_EQ(csr.edge_count(), 3u);
  EXPECT_TRUE(csr.contains(0, 5));
  EXPECT_FALSE(csr.contains(0, 4));
}

TEST(CsrProblem, RemoveSourceHonorsCounts) {
  f::CsrProblem csr;
  csr.ensure_row(0);
  csr.add_source(0, 2);
  csr.add_source(0, 2);
  // First removal drops one of two sources: box 2 stays a candidate.
  EXPECT_FALSE(csr.remove_source(0, 2));
  EXPECT_TRUE(csr.contains(0, 2));
  EXPECT_EQ(csr.edge_count(), 1u);
  // Second removal exhausts the count: the box leaves the row.
  EXPECT_TRUE(csr.remove_source(0, 2));
  EXPECT_FALSE(csr.contains(0, 2));
  EXPECT_EQ(csr.edge_count(), 0u);
  // A miss is a tolerated no-op (the row was rebuilt since the grant).
  EXPECT_FALSE(csr.remove_source(0, 7));
}

TEST(CsrProblem, RemoveBoxDropsAllSourcesAtOnce) {
  f::CsrProblem csr;
  csr.ensure_row(0);
  csr.add_source(0, 4);
  csr.add_source(0, 4);
  csr.add_source(0, 4);
  csr.add_source(0, 6);
  csr.remove_box(0, 4);
  EXPECT_FALSE(csr.contains(0, 4));
  EXPECT_TRUE(csr.contains(0, 6));
  EXPECT_EQ(csr.edge_count(), 1u);
  csr.remove_box(0, 99);  // miss: no-op
  EXPECT_EQ(csr.edge_count(), 1u);
}

TEST(CsrProblem, AssignRowReplacesAndClearRowEmpties) {
  f::CsrProblem csr;
  csr.ensure_row(1);
  csr.add_source(1, 3);
  const std::vector<std::uint32_t> boxes = {1, 4, 8};
  const std::vector<std::uint32_t> counts = {1, 2, 1};
  csr.assign_row(1, boxes, counts);
  ASSERT_EQ(csr.row(1).size(), 3u);
  EXPECT_FALSE(csr.contains(1, 3));
  EXPECT_TRUE(csr.contains(1, 4));
  EXPECT_EQ(csr.edge_count(), 3u);
  // Counted membership survives the bulk assignment.
  EXPECT_FALSE(csr.remove_source(1, 4));
  EXPECT_TRUE(csr.remove_source(1, 4));
  csr.clear_row(1);
  EXPECT_EQ(csr.row(1).size(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
}

TEST(CsrProblem, RelocationAndCompactionStress) {
  // Interleaved growth across rows forces relocations; periodic clears leave
  // abandoned spans that compaction must fold without corrupting survivors.
  // A per-row reference map is the ground truth.
  f::CsrProblem csr;
  constexpr std::uint32_t kRows = 5;
  std::vector<std::map<std::uint32_t, std::uint32_t>> truth(kRows);
  for (std::uint32_t r = 0; r < kRows; ++r) csr.ensure_row(r);
  p2pvod::util::Rng rng(0xC5A11);
  for (std::uint32_t step = 0; step < 4000; ++step) {
    const auto r = static_cast<std::uint32_t>(rng.next_below(kRows));
    const auto box = static_cast<std::uint32_t>(rng.next_below(64));
    const double roll = rng.next_double();
    if (roll < 0.60) {
      csr.add_source(r, box);
      ++truth[r][box];
    } else if (roll < 0.90) {
      const bool left = csr.remove_source(r, box);
      auto it = truth[r].find(box);
      if (it == truth[r].end()) {
        EXPECT_FALSE(left);
      } else {
        EXPECT_EQ(left, it->second == 1);
        if (--it->second == 0) truth[r].erase(it);
      }
    } else {
      csr.clear_row(r);
      truth[r].clear();
    }
  }
  std::uint64_t edges = 0;
  for (std::uint32_t r = 0; r < kRows; ++r) {
    const auto row = csr.row(r);
    ASSERT_EQ(row.size(), truth[r].size()) << "row " << r;
    std::size_t i = 0;
    for (const auto& [box, count] : truth[r]) {
      EXPECT_EQ(row[i], box) << "row " << r << " slot " << i;
      (void)count;
      ++i;
    }
    edges += row.size();
  }
  EXPECT_EQ(csr.edge_count(), edges);
  // Compaction keeps the pool proportional to live content, not churn.
  EXPECT_LT(csr.pool_size(), 8192u);
}

// ------------------------------------------------------------- CsrMatcher

TEST(CsrMatcher, AugmentDisplacesAlongAlternatingPath) {
  f::CsrProblem csr;
  csr.ensure_row(1);
  csr.add_source(0, 0);  // row 0 can only use box 0
  csr.add_source(1, 0);  // row 1 can use either
  csr.add_source(1, 1);
  const std::vector<std::uint32_t> cap = {1, 1};
  f::CsrMatcher matcher(2);
  matcher.ensure_rows(2);
  // Row 1 grabs box 0 first (sorted candidate order)...
  EXPECT_TRUE(matcher.augment(csr, cap, 1));
  EXPECT_EQ(matcher.assignment(1), 0);
  // ...so serving row 0 must displace row 1 onto box 1.
  EXPECT_TRUE(matcher.augment(csr, cap, 0));
  EXPECT_EQ(matcher.assignment(0), 0);
  EXPECT_EQ(matcher.assignment(1), 1);
  EXPECT_EQ(matcher.degree(0), 1u);
  EXPECT_EQ(matcher.degree(1), 1u);
}

TEST(CsrMatcher, AugmentFailsWhenNoPathExists) {
  f::CsrProblem csr;
  csr.ensure_row(1);
  csr.add_source(0, 0);
  csr.add_source(1, 0);
  const std::vector<std::uint32_t> cap = {1, 0};
  f::CsrMatcher matcher(2);
  matcher.ensure_rows(2);
  EXPECT_TRUE(matcher.augment(csr, cap, 0));
  EXPECT_FALSE(matcher.augment(csr, cap, 1));
  EXPECT_EQ(matcher.assignment(1), -1);
  EXPECT_EQ(matcher.assignment(0), 0);  // failed search left the matching alone
}

TEST(CsrMatcher, UnassignBoxReleasesItsRows) {
  f::CsrProblem csr;
  csr.ensure_row(2);
  csr.add_source(0, 0);
  csr.add_source(1, 0);
  csr.add_source(2, 1);
  const std::vector<std::uint32_t> cap = {2, 1};
  f::CsrMatcher matcher(2);
  matcher.ensure_rows(3);
  EXPECT_TRUE(matcher.augment(csr, cap, 0));
  EXPECT_TRUE(matcher.augment(csr, cap, 1));
  EXPECT_TRUE(matcher.augment(csr, cap, 2));
  std::vector<std::uint32_t> hit;
  matcher.unassign_box(0, hit);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(matcher.assignment(0), -1);
  EXPECT_EQ(matcher.assignment(1), -1);
  EXPECT_EQ(matcher.assignment(2), 1);
  EXPECT_EQ(matcher.degree(0), 0u);
}

TEST(CsrMatcher, ExhaustiveAugmentationMatchesDenseSolve) {
  // Berge: augmenting every unmatched row from any partial matching reaches a
  // maximum matching — so the served count must equal ConnectionProblem's.
  p2pvod::util::Rng rng(0xBE26E);
  for (int trial = 0; trial < 20; ++trial) {
    constexpr std::uint32_t kBoxes = 16;
    const auto rows = static_cast<std::uint32_t>(rng.next_between(1, 40));
    f::CsrProblem csr;
    csr.ensure_row(rows - 1);
    f::ConnectionProblem dense(kBoxes);
    std::vector<std::uint32_t> cap(kBoxes);
    for (auto& c : cap) c = static_cast<std::uint32_t>(rng.next_below(4));
    dense.set_capacities(cap);
    for (std::uint32_t r = 0; r < rows; ++r) {
      std::vector<std::uint32_t> cands;
      for (std::uint32_t b = 0; b < kBoxes; ++b) {
        if (rng.next_bool(0.25)) {
          csr.add_source(r, b);
          cands.push_back(b);
        }
      }
      dense.add_request(std::move(cands));
    }
    f::CsrMatcher matcher(kBoxes);
    matcher.ensure_rows(rows);
    std::uint32_t served = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
      if (matcher.augment(csr, cap, r)) ++served;
    }
    EXPECT_EQ(served, dense.solve().served) << "trial " << trial;
  }
}

// ----------------------------------------------------- validate_assignment

namespace {

/// 2 boxes (caps 1 and 2), three requests; request 1 can use either box.
f::ConnectionProblem tiny_problem() {
  f::ConnectionProblem problem(2);
  problem.set_capacity(0, 1);
  problem.set_capacity(1, 2);
  problem.add_request({0});
  problem.add_request({0, 1});
  problem.add_request({1});
  return problem;
}

}  // namespace

TEST(ValidateAssignment, AcceptsSolverOutput) {
  const auto problem = tiny_problem();
  const auto result = problem.solve();
  EXPECT_NO_THROW(f::validate_assignment(problem, result));
}

TEST(ValidateAssignment, RejectsServerOutsideCandidateSet) {
  // Regression for the verifier bugfix: same served count as a correct
  // matching, but request 1's server is not in its candidate set. The old
  // served-count-only check accepted exactly this.
  const auto problem = tiny_problem();
  f::MatchResult bogus;
  bogus.assignment = {0, 2, 1};  // box 2 does not exist for request 1
  bogus.served = 3;
  bogus.complete = true;
  EXPECT_THROW(f::validate_assignment(problem, bogus), std::logic_error);
  f::MatchResult off_list;
  off_list.assignment = {0, 1, 1};
  off_list.served = 3;
  off_list.complete = true;
  // request 0 assigned box 1, which is not a candidate of request 0
  off_list.assignment = {1, 0, 1};
  try {
    f::validate_assignment(problem, off_list);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("request 0"), std::string::npos)
        << e.what();
  }
}

TEST(ValidateAssignment, RejectsCapacityOverflow) {
  const auto problem = tiny_problem();
  f::MatchResult bogus;
  bogus.assignment = {0, 0, 1};  // box 0 (cap 1) serves two requests
  bogus.served = 3;
  bogus.complete = true;
  try {
    f::validate_assignment(problem, bogus);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("box 0"), std::string::npos)
        << e.what();
  }
}

TEST(ValidateAssignment, RejectsBookkeepingMismatches) {
  const auto problem = tiny_problem();
  f::MatchResult wrong_count;
  wrong_count.assignment = {0, 1, 1};
  wrong_count.served = 2;  // actually 3 matched
  wrong_count.complete = false;
  EXPECT_THROW(f::validate_assignment(problem, wrong_count), std::logic_error);
  f::MatchResult wrong_len;
  wrong_len.assignment = {0, 1};
  wrong_len.served = 2;
  wrong_len.complete = false;
  EXPECT_THROW(f::validate_assignment(problem, wrong_len), std::logic_error);
  f::MatchResult wrong_flag;
  wrong_flag.assignment = {0, 1, -1};
  wrong_flag.served = 2;
  wrong_flag.complete = true;  // request 2 is unserved
  EXPECT_THROW(f::validate_assignment(problem, wrong_flag), std::logic_error);
}

// -------------------------------------------------------- SparseRoundState

TEST(SparseRoundState, ExpiryRetiresCacheSources) {
  // Window 3; box 2 is the static holder of stripe 0; box 1 gains a cache
  // entry at round 0, which leaves the window at round 4.
  s::SparseRoundState state(/*box_count=*/3, /*stripe_count=*/1, /*window=*/3,
                            /*rebuild_fraction=*/0.5);
  m::Round now = 0;
  std::vector<std::pair<m::BoxId, m::Round>> cache;
  const auto collect = [&](m::StripeId, m::Round issue, m::BoxId requester,
                           std::vector<m::BoxId>& out) {
    if (requester != 2) out.push_back(2);
    for (const auto& [box, entry] : cache) {
      if (entry >= now - 3 && entry < issue && box != requester)
        out.push_back(box);
    }
  };
  const std::vector<std::uint32_t> cap = {4, 4, 4};
  const auto slot = state.add_request(/*stripe=*/0, /*issue=*/1,
                                      /*requester=*/0);
  now = 1;
  EXPECT_EQ(state.solve(now, cap, collect), 1u);
  EXPECT_EQ(state.edge_count(), 1u);  // static holder only
  // Grant lands: box 1 becomes a second candidate via its cache entry.
  cache.emplace_back(1, 0);
  state.on_grant(/*stripe=*/0, /*box=*/1, /*entry=*/0, now);
  now = 2;
  EXPECT_EQ(state.solve(now, cap, collect), 1u);
  EXPECT_EQ(state.edge_count(), 2u);
  // At round 4 the entry is outside the window: the calendar event must
  // remove exactly that source, leaving the static holder.
  now = 4;
  cache.clear();
  EXPECT_EQ(state.solve(now, cap, collect), 1u);
  EXPECT_EQ(state.edge_count(), 1u);
  EXPECT_EQ(state.stats().expiry_events, 1u);
  EXPECT_EQ(state.assignment(slot), 2);
}

TEST(SparseRoundState, ChurnEpochInvalidatesStaleExpiries) {
  // A cache entry dies with its box; the box returns and earns a new entry
  // that outlives the dead entry's expiry round. The stale calendar event
  // must not eat the new source.
  s::SparseRoundState state(3, 1, /*window=*/3, 0.5);
  m::Round now = 5;
  std::vector<std::pair<m::BoxId, m::Round>> cache;
  const auto collect = [&](m::StripeId, m::Round issue, m::BoxId requester,
                           std::vector<m::BoxId>& out) {
    if (requester != 2) out.push_back(2);
    for (const auto& [box, entry] : cache) {
      if (entry >= now - 3 && entry < issue && box != requester)
        out.push_back(box);
    }
  };
  const std::vector<std::uint32_t> cap = {4, 4, 4};
  (void)state.add_request(/*stripe=*/0, /*issue=*/6, /*requester=*/0);
  cache.emplace_back(1, 3);  // expires at 3+3+1 = 7
  state.on_grant(0, 1, /*entry=*/3, now);
  EXPECT_EQ(state.solve(now /*=5*/, cap, collect), 1u);
  EXPECT_EQ(state.edge_count(), 2u);
  // Box 1 crashes (cache dies) and comes straight back; a fresh grant gives
  // it a new entry whose own expiry is round 8.
  cache.clear();
  state.on_box_offline(1, /*stored=*/{}, /*cached=*/std::vector<m::StripeId>{0});
  EXPECT_EQ(state.edge_count(), 1u);
  state.on_box_online(1, /*stored=*/{});
  cache.emplace_back(1, 4);
  state.on_grant(0, 1, /*entry=*/4, now);
  EXPECT_EQ(state.edge_count(), 2u);
  // Round 7: the dead entry's event fires but is epoch-stale — box 1 stays.
  now = 7;
  EXPECT_EQ(state.solve(now, cap, collect), 1u);
  EXPECT_TRUE(state.edge_count() == 2u);
  // Round 8: the live entry expires for real.
  now = 8;
  cache.clear();
  EXPECT_EQ(state.solve(now, cap, collect), 1u);
  EXPECT_EQ(state.edge_count(), 1u);
}

TEST(SparseRoundState, DirtyFractionTriggersFullRebuild) {
  s::SparseRoundState state(4, 2, /*window=*/3, /*rebuild_fraction=*/0.0);
  const auto collect = [&](m::StripeId stripe, m::Round, m::BoxId,
                           std::vector<m::BoxId>& out) {
    out.push_back(stripe == 0 ? 2u : 3u);
  };
  const std::vector<std::uint32_t> cap = {1, 1, 1, 1};
  (void)state.add_request(0, 1, 0);
  (void)state.add_request(0, 1, 1);
  (void)state.add_request(1, 1, 0);
  // First solve: every row is new (dirty == live), not a fallback trip.
  EXPECT_EQ(state.solve(1, cap, collect), 2u);  // caps bind: 2 of 3 served
  EXPECT_EQ(state.stats().full_rebuilds, 0u);
  EXPECT_EQ(state.stats().rows_built, 3u);
  // One new arrival dirties one row; fraction 0 forces a global rebuild.
  (void)state.add_request(1, 2, 1);
  EXPECT_EQ(state.solve(2, cap, collect), 2u);
  EXPECT_EQ(state.stats().full_rebuilds, 1u);
  EXPECT_EQ(state.stats().rows_built, 7u);  // 3 + all 4 live rows
  EXPECT_EQ(state.live_rows(), 4u);
}

// ------------------------------------------- churn capacity ±delta (bugfix)

TEST(Churn, CapacityTotalTracksToggleSequence) {
  // Regression for the O(n) rescan bugfix: total_capacity_slots() must equal
  // a fresh per-box sum after any sequence of offline/online toggles,
  // including repeated no-op toggles.
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(8, 1.5, 100.0);
  std::vector<a::Allocation::Placement> placements;
  for (std::uint32_t i = 0; i < 4; ++i) placements.push_back({7, i});
  const a::Allocation allocation(8, 4, std::move(placements));
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.strict = false;
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  const auto rescan = [&sim] {
    std::uint64_t total = 0;
    for (m::BoxId b = 0; b < 8; ++b) total += sim.capacity_slots(b);
    return total;
  };
  EXPECT_EQ(sim.total_capacity_slots(), rescan());
  EXPECT_EQ(sim.capacity_slots(0), 6u);  // ⌊1.5·4⌋
  sim.set_box_online(3, false);
  EXPECT_EQ(sim.total_capacity_slots(), rescan());
  sim.set_box_online(3, false);  // repeated: must not double-subtract
  EXPECT_EQ(sim.total_capacity_slots(), rescan());
  sim.set_box_online(5, false);
  sim.set_box_online(3, true);
  sim.set_box_online(3, true);  // repeated: must not double-add
  EXPECT_EQ(sim.total_capacity_slots(), rescan());
  EXPECT_EQ(sim.capacity_slots(3), 6u);
  sim.set_box_online(5, true);
  EXPECT_EQ(sim.total_capacity_slots(), rescan());
  EXPECT_EQ(sim.total_capacity_slots(), 48u);
}

TEST(Churn, CapacityDeltaRespectsOverride) {
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 100.0);
  std::vector<a::Allocation::Placement> placements;
  for (std::uint32_t i = 0; i < 4; ++i) placements.push_back({3, i});
  const a::Allocation allocation(4, 4, std::move(placements));
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.strict = false;
  options.capacity_override = {1, 2, 3, 4};
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  EXPECT_EQ(sim.total_capacity_slots(), 10u);
  sim.set_box_online(2, false);
  EXPECT_EQ(sim.total_capacity_slots(), 7u);
  EXPECT_EQ(sim.capacity_slots(2), 0u);
  sim.set_box_online(2, true);
  // Recovery restores the override value, not the profile's ⌊u·c⌋.
  EXPECT_EQ(sim.capacity_slots(2), 3u);
  EXPECT_EQ(sim.total_capacity_slots(), 10u);
}

// ----------------------------------------- dense vs sparse lockstep twins

namespace {

struct TwinConfig {
  std::uint32_t boxes = 48;
  std::uint32_t videos = 24;
  std::uint32_t chunks = 4;   // c
  m::Round duration = 12;     // T
  double upload = 2.0;        // u
  std::uint32_t replicas = 6; // k
  double alpha = 0.8;
  double demand_prob = 0.25;
  m::Round rounds = 40;
  std::uint64_t seed = 0x5EED0;
  double fail_prob = 0.0;     // per-box per-round crash probability
  m::Round outage = 5;        // rounds a crashed box stays down
  s::SimulatorOptions options;  // sparse/verify flags set by the harness
};

/// Drive a dense and a sparse simulator in lockstep on one demand stream and
/// one churn schedule, asserting the per-round metrics that must be identical
/// (served, stalled, edges — the matchings are both maximum) every round.
/// The sparse twin runs with verify_incremental, so every round's assignment
/// is also structurally validated against the dense ground-truth problem.
void run_twins(TwinConfig cfg) {
  const m::Catalog catalog(cfg.videos, cfg.chunks, cfg.duration);
  const auto profile =
      m::CapacityProfile::homogeneous(cfg.boxes, cfg.upload, 8.0);
  p2pvod::util::Rng alloc_rng(cfg.seed);
  const a::Allocation allocation = a::PermutationAllocator().allocate(
      catalog, profile, cfg.replicas, alloc_rng);

  s::SimulatorOptions dense_options = cfg.options;
  dense_options.sparse = false;
  s::SimulatorOptions sparse_options = cfg.options;
  sparse_options.sparse = true;
  sparse_options.verify_incremental = true;
  s::PreloadingStrategy dense_strategy;
  s::PreloadingStrategy sparse_strategy;
  s::Simulator dense(catalog, profile, allocation, dense_strategy,
                     dense_options);
  s::Simulator sparse(catalog, profile, allocation, sparse_strategy,
                      sparse_options);
  ASSERT_FALSE(dense.sparse_active());
  ASSERT_TRUE(sparse.sparse_active());

  w::ZipfDemand audience(cfg.videos, cfg.alpha, cfg.demand_prob,
                         cfg.seed ^ 0xA0D1EBCE);
  p2pvod::util::Rng churn_rng(cfg.seed ^ 0xC84);
  std::vector<m::Round> down_until(cfg.boxes, -1);
  for (m::Round round = 0; round < cfg.rounds; ++round) {
    for (m::BoxId b = 0; b < cfg.boxes; ++b) {
      if (down_until[b] >= 0) {
        if (round >= down_until[b]) {
          dense.set_box_online(b, true);
          sparse.set_box_online(b, true);
          down_until[b] = -1;
        }
      } else if (cfg.fail_prob > 0 && churn_rng.next_bool(cfg.fail_prob)) {
        dense.set_box_online(b, false);
        sparse.set_box_online(b, false);
        down_until[b] = round + cfg.outage;
      }
    }
    // Both twins have identical admission state, so one demand stream (drawn
    // against the dense twin) is valid for both.
    const auto demands = audience.demands(dense);
    dense.step(demands);
    sparse.step(demands);
    ASSERT_EQ(dense.report().chunks_served, sparse.report().chunks_served)
        << "round " << round;
    ASSERT_EQ(dense.report().chunks_stalled, sparse.report().chunks_stalled)
        << "round " << round;
    ASSERT_EQ(dense.report().matcher_edges, sparse.report().matcher_edges)
        << "round " << round;
    ASSERT_EQ(dense.active_request_count(), sparse.active_request_count())
        << "round " << round;
    ASSERT_EQ(dense.stalled(), sparse.stalled()) << "round " << round;
    if (dense.stalled() && dense_options.strict) break;
  }
  EXPECT_EQ(dense.report().success, sparse.report().success);
  EXPECT_EQ(dense.report().first_stall, sparse.report().first_stall);
  EXPECT_EQ(dense.report().stall_witness_size,
            sparse.report().stall_witness_size);
  EXPECT_EQ(dense.report().requests_issued, sparse.report().requests_issued);
  EXPECT_EQ(dense.report().demands_admitted, sparse.report().demands_admitted);
  EXPECT_EQ(dense.report().sessions_completed,
            sparse.report().sessions_completed);
  // The point of the sparse path: it collects only dirtied rows, the dense
  // path collects every live row every round.
  EXPECT_LT(sparse.report().rows_built, dense.report().rows_built);
  EXPECT_GT(sparse.report().rows_built, 0u);
}

}  // namespace

TEST(SparseTwins, PlainRun) { run_twins({}); }

TEST(SparseTwins, UnderChurn) {
  TwinConfig cfg;
  cfg.fail_prob = 0.02;
  cfg.rounds = 50;
  run_twins(cfg);
}

TEST(SparseTwins, StrictModeStallsIdentically) {
  TwinConfig cfg;
  cfg.boxes = 24;
  cfg.videos = 8;
  cfg.upload = 1.0;
  cfg.replicas = 2;
  cfg.demand_prob = 0.9;
  cfg.rounds = 30;
  cfg.options.strict = true;
  run_twins(cfg);
}

TEST(SparseTwins, CapacityOverride) {
  TwinConfig cfg;
  cfg.options.capacity_override.resize(cfg.boxes);
  for (std::uint32_t b = 0; b < cfg.boxes; ++b) {
    cfg.options.capacity_override[b] = b % 3 + 1;
  }
  run_twins(cfg);
}

TEST(SparseTwins, HopcroftKarpReference) {
  TwinConfig cfg;
  cfg.options.engine = p2pvod::flow::Engine::kHopcroftKarp;
  cfg.rounds = 25;
  run_twins(cfg);
}

TEST(SparseTwins, EagerRebuildFallback) {
  // rebuild_fraction 0 forces the dirty-fraction fallback almost every round;
  // correctness must not depend on the patch path being taken.
  TwinConfig cfg;
  cfg.options.sparse_rebuild_fraction = 0.0;
  cfg.fail_prob = 0.02;
  cfg.rounds = 30;
  run_twins(cfg);
}

TEST(SparseTwins, RandomizedChurnProperty) {
  // Seeded property sweep: modest world, random churn + Zipf demands; every
  // round's served/stalled/edges must match and every sparse assignment must
  // validate (verify_incremental inside run_twins).
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TwinConfig cfg;
    cfg.boxes = 64;
    cfg.videos = 16;
    cfg.seed = seed;
    cfg.fail_prob = 0.03;
    cfg.outage = 4;
    cfg.demand_prob = 0.35;
    cfg.rounds = 45;
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_twins(cfg);
  }
}

// ------------------------------------------------------------- env plumbing

TEST(SparseEnv, EnvKnobForcesSparsePath) {
  const ScopedEnv env("P2PVOD_SPARSE", "1");
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 100.0);
  std::vector<a::Allocation::Placement> placements;
  for (std::uint32_t i = 0; i < 4; ++i) placements.push_back({3, i});
  const a::Allocation allocation(4, 4, std::move(placements));
  s::PreloadingStrategy strategy;
  s::Simulator sim(catalog, profile, allocation, strategy, {});
  EXPECT_TRUE(sim.sparse_active());
}

TEST(SparseEnv, ExplicitSparseWithTopologyIsConfigError) {
  // The sparse engine is cost-blind; asking for it together with a topology
  // used to silently downgrade to dense. It is now a hard config error.
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 100.0);
  std::vector<a::Allocation::Placement> placements;
  for (std::uint32_t i = 0; i < 4; ++i) placements.push_back({3, i});
  const a::Allocation allocation(4, 4, std::move(placements));
  const auto topology = p2pvod::net::Topology::uniform(4, 2);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.sparse = true;
  options.topology = &topology;
  EXPECT_THROW(s::Simulator(catalog, profile, allocation, strategy, options),
               std::invalid_argument);
}

TEST(SparseEnv, EnvSparseWithTopologyDowngradesToDense) {
  // The env knob re-runs whole suites; zone-aware runs must not crash under
  // it. They stay dense and count the downgrade instead.
  const ScopedEnv env("P2PVOD_SPARSE", "1");
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(4, 2.0, 100.0);
  std::vector<a::Allocation::Placement> placements;
  for (std::uint32_t i = 0; i < 4; ++i) placements.push_back({3, i});
  const a::Allocation allocation(4, 4, std::move(placements));
  const auto topology = p2pvod::net::Topology::uniform(4, 2);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.topology = &topology;
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  EXPECT_FALSE(sim.sparse_active());
}
