// Unit tests for src/analysis: Theorem 1/2 formula transcription, the
// first-moment evaluator, obstruction probes, the §1.3 impossibility
// certificate, and the Monte-Carlo calibrator.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "alloc/permutation.hpp"
#include "analysis/bounds.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/first_moment.hpp"
#include "analysis/impossibility.hpp"
#include "analysis/obstruction.hpp"
#include "util/logmath.hpp"

namespace an = p2pvod::analysis;
namespace m = p2pvod::model;
namespace a = p2pvod::alloc;

constexpr double kE = 2.718281828459045;

// ----------------------------------------------------------------- theorem 1

TEST(Theorem1, MinCIsSmallestIntegerAboveBound) {
  // u=1.5, µ=1.2: (2·1.44−1)/0.5 = 3.76 -> c = 4.
  EXPECT_EQ(an::Theorem1::min_c(1.5, 1.2), 4u);
  // Exactly integral boundary: u=2, µ=1: (2−1)/1 = 1 -> strict: c = 2.
  EXPECT_EQ(an::Theorem1::min_c(2.0, 1.0), 2u);
  EXPECT_EQ(an::Theorem1::min_c(0.9, 1.2), 0u);  // below threshold
}

TEST(Theorem1, RecommendedCDoublesTheBound) {
  // c = ⌈2(2µ²−1)/(u−1)⌉ = ⌈7.52⌉ = 8 for u=1.5, µ=1.2.
  EXPECT_EQ(an::Theorem1::recommended_c(1.5, 1.2), 8u);
  EXPECT_GE(an::Theorem1::recommended_c(1.5, 1.2),
            an::Theorem1::min_c(1.5, 1.2));
}

TEST(Theorem1, NuMatchesHandComputation) {
  // ν = 1/(c+2µ²−1) − 1/(uc); c=8, µ=1.2, u=1.5:
  // 1/(8+1.88) − 1/12 = 0.101214... − 0.083333... = 0.0178...
  const double nu = an::Theorem1::nu(1.5, 1.2, 8);
  EXPECT_NEAR(nu, 1.0 / 9.88 - 1.0 / 12.0, 1e-12);
  EXPECT_GT(nu, 0.0);
}

TEST(Theorem1, NuNegativeWhenCTooSmall) {
  // c=3 < min_c=4 for (u=1.5, µ=1.2): uc = 4.5 < c+2µ²−1 = 4.88.
  EXPECT_LT(an::Theorem1::nu(1.5, 1.2, 3), 0.0);
}

TEST(Theorem1, UPrimeFloors) {
  EXPECT_NEAR(an::Theorem1::u_prime(1.5, 8), 12.0 / 8.0, 1e-12);
  EXPECT_NEAR(an::Theorem1::u_prime(1.3, 3), 3.0 / 3.0, 1e-12);  // ⌊3.9⌋/3
}

TEST(Theorem1, DPrimeTakesMax) {
  EXPECT_NEAR(an::Theorem1::d_prime(4.0, 1.5), 4.0, 1e-12);
  EXPECT_NEAR(an::Theorem1::d_prime(1.0, 1.5), kE, 1e-12);
  EXPECT_NEAR(an::Theorem1::d_prime(1.0, 5.0), 5.0, 1e-12);
}

TEST(Theorem1, KBoundHandComputation) {
  // k = 5/ν · log d′ / log u′ with c=8, u=1.5, d=4, µ=1.2.
  const double nu = an::Theorem1::nu(1.5, 1.2, 8);
  const double expected = 5.0 / nu * std::log(4.0) / std::log(1.5);
  EXPECT_NEAR(an::Theorem1::k_bound(1.5, 4.0, 1.2, 8), expected, 1e-9);
}

TEST(Theorem1, KBoundInfiniteWhenInvalid) {
  EXPECT_TRUE(std::isinf(an::Theorem1::k_bound(1.5, 4.0, 1.2, 3)));
  // u'=1 (u=1.3, c=3 -> ⌊3.9⌋/3 = 1): log u' = 0.
  EXPECT_TRUE(std::isinf(an::Theorem1::k_bound(1.3, 4.0, 1.0, 3)));
}

TEST(Theorem1, ProofBoundAtLeastSimpleBound) {
  // k_proof uses max{5, log_{u'}(e⁴d'u')} >= 5·log_{u'}d'/... not directly
  // comparable, but both must be positive and finite in the valid regime.
  const double simple = an::Theorem1::k_bound(1.5, 4.0, 1.2, 8);
  const double proof = an::Theorem1::k_bound_proof(1.5, 4.0, 1.2, 8);
  EXPECT_GT(simple, 0.0);
  EXPECT_GT(proof, 0.0);
  EXPECT_TRUE(std::isfinite(proof));
}

TEST(Theorem1, EvaluateAssemblesConsistently) {
  const auto b = an::Theorem1::evaluate({1.5, 4.0, 1.2});
  EXPECT_TRUE(b.valid);
  EXPECT_EQ(b.c, 8u);
  EXPECT_EQ(b.k, static_cast<std::uint32_t>(std::ceil(b.k_real)));
  EXPECT_GT(b.catalog(10000), 0u);
  EXPECT_EQ(b.catalog(10000),
            static_cast<std::uint32_t>(4.0 * 10000 / b.k));
}

TEST(Theorem1, EvaluateInvalidBelowThreshold) {
  const auto b = an::Theorem1::evaluate({0.9, 4.0, 1.2});
  EXPECT_FALSE(b.valid);
  EXPECT_EQ(b.catalog(1000), 0u);
}

TEST(Theorem1, CatalogLinearInN) {
  const auto b = an::Theorem1::evaluate({1.5, 4.0, 1.2});
  const auto m1 = b.catalog(10000);
  const auto m2 = b.catalog(20000);
  ASSERT_GT(m1, 0u);
  // Exactly d·n/k up to integer truncation (k ~ 1000 here, so m is small
  // and truncation is visible; allow one-unit slack on each side).
  EXPECT_NEAR(static_cast<double>(m2) / m1, 2.0, 0.06);
}

TEST(Theorem1, ClosedFormVanishesAsCube) {
  // m(u) ~ (u-1)³ as u -> 1 (Conclusion): ratio m(1+2ε)/m(1+ε) -> 8.
  const double eps = 1e-3;
  const double m1 = an::Theorem1::catalog_closed_form(100000, 1.0 + eps, 4.0,
                                                      1.2);
  const double m2 = an::Theorem1::catalog_closed_form(100000, 1.0 + 2 * eps,
                                                      4.0, 1.2);
  EXPECT_GT(m1, 0.0);
  EXPECT_NEAR(m2 / m1, 8.0, 0.1);
}

TEST(Theorem1, Lemma2ExpansionFormula) {
  // i=100, i1=2, c=8, µ=1.2: (100 − 9.88·2)/(8+0.88) = 80.24/8.88.
  EXPECT_NEAR(an::Theorem1::lemma2_expansion(100, 2, 8, 1.2), 80.24 / 8.88,
              1e-9);
}

TEST(Theorem1, KappaAndDelta) {
  const double nu = an::Theorem1::nu(1.5, 1.2, 8);
  EXPECT_NEAR(an::Theorem1::kappa(1.5, 1.2, 8, 100), nu * 100 - 2.0, 1e-12);
  EXPECT_NEAR(an::Theorem1::delta(1.5, 4.0, 8), 4.0 * 4.0 * kE * kE / 1.5,
              1e-9);
}

// ----------------------------------------------------------------- theorem 2

TEST(Theorem2, MinAndRecommendedC) {
  // u*=1.5, µ=1.1: 4µ⁴/0.5 = 11.712... -> min_c = 12; 10µ⁴/0.5 = 29.28 -> 30.
  EXPECT_EQ(an::Theorem2::min_c(1.5, 1.1), 12u);
  EXPECT_EQ(an::Theorem2::recommended_c(1.5, 1.1), 30u);
}

TEST(Theorem2, NuAndUPrime) {
  const double mu4 = std::pow(1.1, 4.0);
  const double nu = an::Theorem2::nu(1.1, 30);
  EXPECT_NEAR(nu, 1.0 / (30 + 2 * mu4 - 1) - 1.0 / (30 + 3 * mu4), 1e-12);
  EXPECT_GT(nu, 0.0);
  EXPECT_NEAR(an::Theorem2::u_prime(1.1, 30), (30 + 3 * mu4) / 30.0, 1e-12);
  EXPECT_GT(an::Theorem2::u_prime(1.1, 30), 1.0);
}

TEST(Theorem2, EvaluateValidInRange) {
  const auto b = an::Theorem2::evaluate({1.5, 4.0, 1.1});
  EXPECT_TRUE(b.valid);
  EXPECT_EQ(b.c, 30u);
  EXPECT_GT(b.k, 0u);
  EXPECT_GT(b.catalog(100000), 0u);
}

TEST(Theorem2, ClosedFormPositiveOnlyAboveOne) {
  EXPECT_GT(an::Theorem2::catalog_closed_form(1000, 1.5, 4.0, 1.1), 0.0);
  EXPECT_EQ(an::Theorem2::catalog_closed_form(1000, 1.0, 4.0, 1.1), 0.0);
}

TEST(Theorem2, CatalogShrinksWithMu) {
  const double loose = an::Theorem2::catalog_closed_form(10000, 1.5, 4, 1.05);
  const double tight = an::Theorem2::catalog_closed_form(10000, 1.5, 4, 1.3);
  EXPECT_GT(loose, tight);
}

// ----------------------------------------------------------------- first moment

namespace {
an::FirstMomentParams base_params() {
  an::FirstMomentParams p;
  p.n = 200;
  p.c = 8;
  p.u = 1.5;
  p.d = 4.0;
  p.mu = 1.2;
  p.k = 30;
  p.m = static_cast<std::uint32_t>(p.d * p.n / p.k);
  return p;
}
}  // namespace

TEST(FirstMoment, TermZeroBelowNuFraction) {
  const auto p = base_params();
  // i1 = 1, i large: i1 <= ν i -> -inf (Lemma 4 case 1).
  EXPECT_TRUE(std::isinf(an::FirstMoment::log_term(p, 1000, 1)));
  EXPECT_LT(an::FirstMoment::log_term(p, 1000, 1), 0.0);
}

TEST(FirstMoment, TermMatchesHandFormula) {
  const auto p = base_params();
  const double up = an::Theorem1::u_prime(p.u, p.c);
  const double unc = up * p.n * p.c;
  const std::uint64_t i = 40, i1 = 35;
  const double expected = 40.0 * std::log(unc * kE / 40.0) +
                          static_cast<double>(p.k) * 35.0 *
                              std::log(40.0 / unc);
  EXPECT_NEAR(an::FirstMoment::log_term(p, i, i1), expected, 1e-9);
}

TEST(FirstMoment, MultisetCountFormula) {
  const auto p = base_params();
  const double expected =
      p2pvod::util::log_binomial(static_cast<std::int64_t>(p.m) * p.c, 5) +
      p2pvod::util::log_binomial(9, 4);
  EXPECT_NEAR(an::FirstMoment::log_multiset_count(p, 10, 5), expected, 1e-9);
}

TEST(FirstMoment, BoundDecreasesInK) {
  auto p = base_params();
  p.k = 20;
  p.m = 40;
  const double loose = an::FirstMoment::log_union_bound(p);
  p.k = 40;
  const double tight = an::FirstMoment::log_union_bound(p);
  EXPECT_LT(tight, loose);
}

TEST(FirstMoment, BoundVanishesForLargeK) {
  // At n=200 the union bound needs k in the hundreds (the theorem's k is
  // Θ(ν⁻¹ log d′) with a large constant; the bound is asymptotic in n).
  auto p = base_params();
  p.k = 300;
  p.m = static_cast<std::uint32_t>(p.d * p.n / p.k);
  EXPECT_LT(an::FirstMoment::log_union_bound(p), 0.0);
  EXPECT_LT(an::FirstMoment::probability_bound(p), 1.0);
}

TEST(FirstMoment, ProbabilityBoundClampedToOne) {
  auto p = base_params();
  p.k = 1;  // hopeless replication: bound blows past 1
  p.m = static_cast<std::uint32_t>(p.d * p.n);
  EXPECT_EQ(an::FirstMoment::probability_bound(p), 1.0);
}

TEST(FirstMoment, MinKForBoundFindsThreshold) {
  auto p = base_params();
  const auto k = an::FirstMoment::min_k_for_bound(p, 0.01, 1, 600);
  ASSERT_GT(k, 0u);
  p.k = k;
  p.m = std::max(1u, static_cast<std::uint32_t>(p.d * p.n / k));
  EXPECT_LE(an::FirstMoment::log_union_bound(p), std::log(0.01) + 1e-9);
  // And k-1 must not satisfy it (minimality).
  if (k > 1) {
    p.k = k - 1;
    p.m = std::max(1u, static_cast<std::uint32_t>(p.d * p.n / (k - 1)));
    EXPECT_GT(an::FirstMoment::log_union_bound(p), std::log(0.01));
  }
}

TEST(FirstMoment, RejectsZeroParams) {
  an::FirstMomentParams p;
  p.n = 0;
  EXPECT_THROW((void)an::FirstMoment::log_union_bound(p),
               std::invalid_argument);
}

// ----------------------------------------------------------------- obstruction

TEST(Obstruction, BurstFeasibleWithAmpleCapacity) {
  const m::Catalog catalog(4, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(6, 4.0, 4.0);
  p2pvod::util::Rng rng(1);
  const auto alloc =
      a::PermutationAllocator().allocate(catalog, profile, 3, rng);
  const std::vector<m::VideoId> demands(6, 0);  // everyone watches video 0
  EXPECT_FALSE(
      an::ObstructionSearch::probe_burst(catalog, profile, alloc, demands)
          .has_value());
}

TEST(Obstruction, BurstInfeasibleWhenUploadStarved) {
  const m::Catalog catalog(4, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(6, 0.5, 4.0);
  p2pvod::util::Rng rng(1);
  const auto alloc =
      a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  // All six boxes burst on all videos' worth of demand: u=0.5 -> 1 slot each,
  // 6 slots total, but ~6*2=12 stripe requests.
  std::vector<m::VideoId> demands(6);
  for (m::BoxId b = 0; b < 6; ++b) demands[b] = b % 4;
  const auto witness =
      an::ObstructionSearch::probe_burst(catalog, profile, alloc, demands);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GT(witness->unserved_requests, 0u);
}

TEST(Obstruction, AvoiderAssignmentAvoidsLocalData) {
  const m::Catalog catalog(8, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(4, 1.0, 8.0);
  p2pvod::util::Rng rng(3);
  const auto alloc =
      a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  const auto demands =
      an::ObstructionSearch::avoider_assignment(catalog, alloc, rng);
  for (m::BoxId b = 0; b < 4; ++b) {
    if (demands[b] == m::kInvalidVideo) continue;
    EXPECT_FALSE(alloc.box_has_video_data(b, catalog, demands[b]));
  }
}

TEST(Obstruction, ExhaustiveFindsColdStartObstruction) {
  // 2 boxes, 2 videos, c=1, k=1: video stripes on distinct boxes with u=0
  // uploads nothing -> any cross demand is an obstruction.
  const m::Catalog catalog(2, 1, 4);
  const auto profile = m::CapacityProfile::homogeneous(2, 0.0, 1.0);
  a::Allocation alloc(2, 2, {{0, 0}, {1, 1}});
  const auto witness =
      an::ObstructionSearch::exhaustive(catalog, profile, alloc);
  ASSERT_TRUE(witness.has_value());
}

TEST(Obstruction, ExhaustiveCleanWhenSelfSufficient) {
  // Every box holds every stripe: demands never need the network.
  const m::Catalog catalog(2, 1, 4);
  const auto profile = m::CapacityProfile::homogeneous(2, 1.0, 2.0);
  a::Allocation alloc(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  EXPECT_FALSE(an::ObstructionSearch::exhaustive(catalog, profile, alloc)
                   .has_value());
}

TEST(Obstruction, ExhaustiveRespectsBudget) {
  const m::Catalog catalog(10, 1, 4);
  const auto profile = m::CapacityProfile::homogeneous(20, 1.0, 10.0);
  a::Allocation alloc(20, 10, {{0, 0}});
  EXPECT_THROW((void)an::ObstructionSearch::exhaustive(catalog, profile,
                                                       alloc, 1000),
               std::invalid_argument);
}

TEST(Obstruction, MonteCarloCountsInfeasibleBursts) {
  const m::Catalog catalog(6, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(6, 0.5, 2.0);
  p2pvod::util::Rng rng(7);
  const auto alloc =
      a::PermutationAllocator().allocate(catalog, profile, 2, rng);
  const auto result =
      an::ObstructionSearch::monte_carlo(catalog, profile, alloc, 20, rng);
  EXPECT_EQ(result.trials, 20u);
  EXPECT_GT(result.infeasible, 0u);  // u=0.5 cannot serve full bursts
  EXPECT_TRUE(result.witness.has_value());
}

// ----------------------------------------------------------------- impossibility

TEST(Impossibility, CertificateAppliesBelowThreshold) {
  const m::Catalog catalog(9, 2, 8);  // m=9 > d_max·c = 8
  const auto profile = m::CapacityProfile::homogeneous(10, 0.8, 4.0);
  const auto cert = an::ImpossibilityAnalyzer::analyze(profile, catalog);
  EXPECT_TRUE(cert.applies);
  EXPECT_EQ(cert.catalog_limit, 8u);
  EXPECT_NEAR(cert.aggregate_upload, 8.0, 1e-12);
  EXPECT_NE(cert.explanation.find("must stall"), std::string::npos);
}

TEST(Impossibility, NotApplicableAboveThreshold) {
  const m::Catalog catalog(100, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(10, 1.5, 4.0);
  EXPECT_FALSE(an::ImpossibilityAnalyzer::analyze(profile, catalog).applies);
}

TEST(Impossibility, NotApplicableInConstantRegime) {
  const m::Catalog catalog(8, 2, 8);  // m = d_max·c exactly
  const auto profile = m::CapacityProfile::homogeneous(10, 0.8, 4.0);
  const auto cert = an::ImpossibilityAnalyzer::analyze(profile, catalog);
  EXPECT_FALSE(cert.applies);
}

TEST(Impossibility, ConstructsAvoiderWhenCatalogLarge) {
  // d=8, c=2: a box holds at most 16 stripes, so with m=20 videos every box
  // necessarily misses at least four videos entirely.
  const m::Catalog catalog(20, 2, 8);
  const auto profile = m::CapacityProfile::homogeneous(5, 0.8, 8.0);
  p2pvod::util::Rng rng(5);
  const auto alloc =
      a::PermutationAllocator().allocate(catalog, profile, 1, rng);
  const auto demands =
      an::ImpossibilityAnalyzer::construct_avoider_demands(catalog, alloc);
  ASSERT_TRUE(demands.has_value());
  for (m::BoxId b = 0; b < 5; ++b)
    EXPECT_FALSE(alloc.box_has_video_data(b, catalog, (*demands)[b]));
}

TEST(Impossibility, AvoiderImpossibleWhenFullyReplicated) {
  const m::Catalog catalog(2, 1, 4);
  a::Allocation alloc(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  EXPECT_FALSE(
      an::ImpossibilityAnalyzer::construct_avoider_demands(catalog, alloc)
          .has_value());
}

// ----------------------------------------------------------------- calibrate

TEST(Calibrate, TrialSpecCatalogIdentity) {
  an::TrialSpec spec;
  spec.n = 100;
  spec.d = 4.0;
  spec.k = 8;
  EXPECT_EQ(spec.catalog(), 50u);
  spec.m_override = 7;
  EXPECT_EQ(spec.catalog(), 7u);
}

TEST(Calibrate, GenerousSystemSucceeds) {
  an::TrialSpec spec;
  spec.n = 24;
  spec.u = 3.0;
  spec.d = 4.0;
  spec.mu = 1.5;
  spec.c = 4;
  spec.k = 8;
  spec.duration = 12;
  spec.rounds = 36;
  EXPECT_TRUE(an::Calibrator::run_trial(spec, 42));
}

TEST(Calibrate, StarvedSystemFails) {
  an::TrialSpec spec;
  spec.n = 24;
  spec.u = 0.5;  // below threshold
  spec.d = 2.0;
  spec.mu = 1.5;
  spec.c = 4;
  spec.k = 2;
  spec.duration = 12;
  spec.rounds = 36;
  spec.suite = an::WorkloadSuite::kAvoider;
  EXPECT_FALSE(an::Calibrator::run_trial(spec, 42));
}

TEST(Calibrate, SuccessRateBounds) {
  an::TrialSpec spec;
  spec.n = 16;
  spec.u = 3.0;
  spec.d = 4.0;
  spec.mu = 1.3;
  spec.c = 4;
  spec.k = 8;
  spec.duration = 8;
  spec.rounds = 24;
  const auto rate = an::Calibrator::success_rate(spec, 6, 99);
  EXPECT_GE(rate.estimate, 0.0);
  EXPECT_LE(rate.estimate, 1.0);
  EXPECT_LE(rate.lower, rate.estimate);
  EXPECT_GE(rate.upper, rate.estimate);
}

TEST(Calibrate, SuiteNames) {
  EXPECT_STREQ(an::suite_name(an::WorkloadSuite::kAvoider), "avoider");
  EXPECT_STREQ(an::suite_name(an::WorkloadSuite::kFull), "full");
}

TEST(Calibrate, MinKRejectsBadRange) {
  an::TrialSpec spec;
  EXPECT_THROW((void)an::Calibrator::min_feasible_k(spec, 0, 4, 1.0, 1, 1),
               std::invalid_argument);
}

// ------------------------------------------------- speculative calibration

namespace {

/// Small-but-real calibration spec: cheap enough to search repeatedly, rich
/// enough that the doubling + binary search takes several probes.
an::TrialSpec speculation_spec(double u, double d) {
  an::TrialSpec spec;
  spec.n = 12;
  spec.u = u;
  spec.d = d;
  spec.mu = 1.3;
  spec.c = 2;
  spec.duration = 4;
  spec.rounds = 8;
  spec.suite = an::WorkloadSuite::kFlashCrowd;
  return spec;
}

}  // namespace

// Acceptance criterion: speculative min_feasible_k / max_catalog return
// results identical to the sequential search at 1, 4, and 8 threads —
// including the explored (value, rate) trace, which must list exactly the
// probes the sequential search evaluates, in the same order (refuted
// speculative probes are discarded, never reported).
TEST(CalibrateSpeculative, MatchesSequentialAtOneFourEightThreads) {
  const std::uint32_t trials = 4;
  for (const double u : {0.75, 1.5, 3.0}) {
    for (const double d : {2.0, 4.0}) {
      const an::TrialSpec spec = speculation_spec(u, d);
      const auto k_hi =
          static_cast<std::uint32_t>(spec.d * static_cast<double>(spec.n));
      p2pvod::util::ThreadPool reference_pool(1);
      const auto sequential_min = an::Calibrator::min_feasible_k(
          spec, 1, k_hi, 1.0, trials, 0xCAFE, &reference_pool);
      const auto sequential_max = an::Calibrator::max_catalog(
          spec, 1.0, trials, 0xCAFE, &reference_pool);

      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        p2pvod::util::ThreadPool pool(threads);
        an::SpeculationOptions options;
        options.pool = &pool;
        options.ladder_width = 4;
        const auto speculative_min = an::Calibrator::min_feasible_k_speculative(
            spec, 1, k_hi, 1.0, trials, 0xCAFE, options);
        EXPECT_EQ(speculative_min.k, sequential_min.k)
            << "u=" << u << " d=" << d << " threads=" << threads;
        EXPECT_EQ(speculative_min.catalog, sequential_min.catalog);
        EXPECT_EQ(speculative_min.explored, sequential_min.explored)
            << "u=" << u << " d=" << d << " threads=" << threads;

        const auto speculative_max = an::Calibrator::max_catalog_speculative(
            spec, 1.0, trials, 0xCAFE, options);
        EXPECT_EQ(speculative_max.m, sequential_max.m)
            << "u=" << u << " d=" << d << " threads=" << threads;
        EXPECT_EQ(speculative_max.k, sequential_max.k);
        EXPECT_EQ(speculative_max.explored, sequential_max.explored)
            << "u=" << u << " d=" << d << " threads=" << threads;
      }
    }
  }
}

TEST(CalibrateSpeculative, LadderWidthNeverChangesTheResult) {
  const an::TrialSpec spec = speculation_spec(1.5, 4.0);
  p2pvod::util::ThreadPool pool(4);
  an::SpeculationOptions reference;
  reference.pool = &pool;
  reference.ladder_width = 1;  // degrades to the sequential path
  const auto sequential =
      an::Calibrator::min_feasible_k_speculative(spec, 1, 48, 1.0, 3, 7,
                                                 reference);
  for (const std::uint32_t width : {2u, 3u, 8u, 32u}) {
    an::SpeculationOptions options;
    options.pool = &pool;
    options.ladder_width = width;
    const auto speculative = an::Calibrator::min_feasible_k_speculative(
        spec, 1, 48, 1.0, 3, 7, options);
    EXPECT_EQ(speculative.k, sequential.k) << width;
    EXPECT_EQ(speculative.explored, sequential.explored) << width;
  }
}

TEST(CalibrateSpeculative, EnvProbeWidthKnobIsHonored) {
  // Width from P2PVOD_PROBE_WIDTH (including a garbage value falling back to
  // the default) must not change results either.
  const an::TrialSpec spec = speculation_spec(1.5, 2.0);
  p2pvod::util::ThreadPool pool(4);
  an::SpeculationOptions options;
  options.pool = &pool;  // ladder_width stays 0: resolved from env
  const auto reference = an::Calibrator::min_feasible_k(spec, 1, 24, 1.0, 3,
                                                        11, &pool);
  for (const char* width : {"2", "16", "0", "garbage"}) {
    setenv("P2PVOD_PROBE_WIDTH", width, 1);
    const auto speculative = an::Calibrator::min_feasible_k_speculative(
        spec, 1, 24, 1.0, 3, 11, options);
    EXPECT_EQ(speculative.explored, reference.explored) << width;
  }
  unsetenv("P2PVOD_PROBE_WIDTH");
}

TEST(CalibrateSpeculative, RejectsBadRangeLikeSequential) {
  an::TrialSpec spec;
  EXPECT_THROW((void)an::Calibrator::min_feasible_k_speculative(
                   spec, 0, 4, 1.0, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)an::Calibrator::min_feasible_k_speculative(
                   spec, 5, 4, 1.0, 1, 1),
               std::invalid_argument);
}

TEST(CalibrateSpeculative, DegenerateCatalogAndZeroTrials) {
  // n*d == 0 (empty catalog bound) and trials == 0 must behave exactly like
  // the sequential search instead of dividing by zero or hanging.
  an::TrialSpec zero = speculation_spec(1.5, 0.0);
  zero.n = 0;
  p2pvod::util::ThreadPool pool(4);
  an::SpeculationOptions options;
  options.pool = &pool;
  options.ladder_width = 4;
  const auto empty =
      an::Calibrator::max_catalog_speculative(zero, 1.0, 2, 3, options);
  EXPECT_EQ(empty.m, 0u);
  EXPECT_TRUE(empty.explored.empty());

  const an::TrialSpec spec = speculation_spec(1.5, 2.0);
  const auto sequential = an::Calibrator::min_feasible_k(spec, 1, 8, 1.0, 0, 3);
  const auto speculative = an::Calibrator::min_feasible_k_speculative(
      spec, 1, 8, 1.0, 0, 3, options);
  EXPECT_EQ(speculative.k, sequential.k);
  EXPECT_EQ(speculative.explored, sequential.explored);
}
