// Churn-extension tests: box failure and recovery semantics.
//
// Not in the paper (its allocation is static and fault-free); this is the
// natural robustness extension: a failed box loses its upload, its cached
// data and its in-flight playbacks, and its static replicas become
// unreachable until recovery. Replication k is what buys churn tolerance —
// tested here and measured in bench E13.
#include <gtest/gtest.h>

#include "alloc/allocation.hpp"
#include "alloc/permutation.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "sim/simulator.hpp"
#include "workload/zipf.hpp"

namespace m = p2pvod::model;
namespace a = p2pvod::alloc;
namespace s = p2pvod::sim;
namespace h = p2pvod::hetero;
namespace w = p2pvod::workload;

namespace {

/// One video, c=1, stripe held by `holders` chosen boxes at the top ids.
struct ChurnWorld {
  ChurnWorld(std::uint32_t n, std::uint32_t holder_count, double u,
             m::Round T = 10, std::uint32_t videos = 1,
             std::uint32_t c = 1)
      : catalog(videos, c, T),
        profile(m::CapacityProfile::homogeneous(n, u, 100.0)),
        allocation(build(n, videos, c, holder_count)) {}

  static a::Allocation build(std::uint32_t n, std::uint32_t videos,
                             std::uint32_t c, std::uint32_t holder_count) {
    std::vector<a::Allocation::Placement> placements;
    for (std::uint32_t v = 0; v < videos; ++v) {
      for (std::uint32_t i = 0; i < c; ++i) {
        for (std::uint32_t h = 0; h < holder_count; ++h)
          placements.push_back({n - 1 - h, v * c + i});
      }
    }
    return a::Allocation(n, videos * c, std::move(placements));
  }

  m::Catalog catalog;
  m::CapacityProfile profile;
  a::Allocation allocation;
};

}  // namespace

TEST(Churn, FailedViewerAbortsItsSession) {
  ChurnWorld world(3, 1, 2.0);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  EXPECT_EQ(sim.swarms().size(0), 1u);
  sim.set_box_online(0, false);
  EXPECT_EQ(sim.swarms().size(0), 0u);
  EXPECT_EQ(sim.report().sessions_aborted, 1u);
  EXPECT_EQ(sim.report().box_failures, 1u);
  EXPECT_EQ(sim.active_request_count(), 0u);
  // Offline boxes are not idle (workloads must skip them).
  EXPECT_FALSE(sim.box_idle(0));
  for (int t = 1; t < 6; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);  // no dangling request ever stalled
  EXPECT_EQ(sim.report().sessions_completed, 0u);  // aborted != completed
}

TEST(Churn, FailedSoleHolderStallsViewer) {
  ChurnWorld world(3, 1, 1.0);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});  // served by holder box 2
  EXPECT_TRUE(sim.report().success);
  sim.set_box_online(2, false);  // k=1: the only replica is gone
  sim.step({});
  EXPECT_FALSE(sim.report().success);
  EXPECT_EQ(sim.report().first_stall, 1);
}

TEST(Churn, ReplicationSurvivesSingleHolderFailure) {
  ChurnWorld world(4, 2, 1.0);  // k=2 holders (boxes 2 and 3)
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  sim.set_box_online(3, false);  // one holder down, box 2 remains
  for (int t = 1; t < 12; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
  EXPECT_EQ(sim.report().sessions_completed, 1u);
}

TEST(Churn, RecoveryRestoresServiceCapacity) {
  ChurnWorld world(3, 1, 1.0);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.set_box_online(2, false);
  sim.step({{0, 0}});  // demand while the only holder is down -> stall
  EXPECT_FALSE(sim.report().success);

  // Fresh world: recover before the demand; service works again.
  ChurnWorld world2(3, 1, 1.0);
  s::Simulator sim2(world2.catalog, world2.profile, world2.allocation,
                    strategy);
  sim2.set_box_online(2, false);
  sim2.step({});
  sim2.set_box_online(2, true);
  sim2.step({{0, 0}});
  for (int t = 2; t < 14; ++t) sim2.step({});
  EXPECT_TRUE(sim2.report().success);
  EXPECT_EQ(sim2.report().sessions_completed, 1u);
}

TEST(Churn, OfflineBoxRejectsDemands) {
  ChurnWorld world(3, 1, 2.0);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.set_box_online(0, false);
  sim.step({{0, 0}});
  EXPECT_EQ(sim.report().demands_admitted, 0u);
  EXPECT_EQ(sim.report().demands_rejected, 1u);
}

TEST(Churn, FailedCacheServerDropsOutOfCandidates) {
  // Box 0 views first (cache), box 1 joins later leaning on box 0's cache;
  // box 0 fails -> box 1 must fall back to the static holder alone. With the
  // holder's capacity at 1 and only box 1 active, that still works.
  ChurnWorld world(3, 1, 1.0, /*T=*/12);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.step({{0, 0}});
  sim.step({{1, 0}});
  sim.set_box_online(0, false);  // kills box 0's session AND its cache
  for (int t = 2; t < 16; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
  EXPECT_EQ(sim.report().sessions_aborted, 1u);
  EXPECT_EQ(sim.report().sessions_completed, 1u);  // box 1 finished
}

TEST(Churn, DoubleFailureIsIdempotent) {
  ChurnWorld world(3, 1, 2.0);
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  sim.set_box_online(2, false);
  sim.set_box_online(2, false);
  EXPECT_EQ(sim.report().box_failures, 1u);
  sim.set_box_online(2, true);
  sim.set_box_online(2, true);
  EXPECT_EQ(sim.report().box_failures, 1u);
}

TEST(Churn, CapacityLedgerTracksFailures) {
  ChurnWorld world(4, 2, 1.5, 10, 1, 2);  // c=2: 3 slots per box
  s::PreloadingStrategy strategy;
  s::Simulator sim(world.catalog, world.profile, world.allocation, strategy);
  const auto full = sim.total_capacity_slots();
  sim.set_box_online(1, false);
  EXPECT_EQ(sim.total_capacity_slots(), full - 3);
  EXPECT_EQ(sim.capacity_slots(1), 0u);
  sim.set_box_online(1, true);
  EXPECT_EQ(sim.total_capacity_slots(), full);
  EXPECT_EQ(sim.capacity_slots(1), 3u);
}

TEST(Churn, RelayFailureAbortsForwardedSession) {
  // Poor box 0 relays through a rich box; killing the relay mid-playback
  // aborts the poor box's session (the reserved channel died).
  const auto profile = m::CapacityProfile::two_class(4, 1, 0.5, 2.0, 4.0, 8.0);
  const m::Catalog catalog(2, 8, 16);
  std::vector<a::Allocation::Placement> placements;
  for (m::StripeId stripe = 0; stripe < catalog.stripe_count(); ++stripe)
    placements.push_back({3, stripe});
  const a::Allocation allocation(4, catalog.stripe_count(),
                                 std::move(placements));
  const auto plan = h::Compensator::plan(profile, 1.5, 8, 1.0);
  ASSERT_TRUE(plan.has_value());
  const m::BoxId relay = plan->relay[0];
  ASSERT_NE(relay, m::kInvalidBox);

  h::RelayStrategy strategy(*plan);
  s::SimulatorOptions options;
  options.capacity_override = plan->capacity_slots();
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  sim.step({{0, 0}});
  sim.step({});
  EXPECT_EQ(sim.swarms().size(0), 1u);
  sim.set_box_online(relay, false);
  EXPECT_EQ(sim.report().sessions_aborted, 1u);
  EXPECT_EQ(sim.swarms().size(0), 0u);
}

TEST(Churn, RelayFallbackWhenRelayAlreadyDown) {
  // If the relay is down when the demand arrives, the poor box degrades to
  // direct preloading (and here succeeds: the holder has capacity).
  const auto profile = m::CapacityProfile::two_class(4, 1, 0.5, 2.0, 4.0, 8.0);
  const m::Catalog catalog(2, 8, 16);
  std::vector<a::Allocation::Placement> placements;
  for (m::StripeId stripe = 0; stripe < catalog.stripe_count(); ++stripe)
    placements.push_back({3, stripe});
  const a::Allocation allocation(4, catalog.stripe_count(),
                                 std::move(placements));
  const auto plan = h::Compensator::plan(profile, 1.5, 8, 1.0);
  ASSERT_TRUE(plan.has_value());
  const m::BoxId relay = plan->relay[0];

  h::RelayStrategy strategy(*plan);
  s::SimulatorOptions options;
  options.capacity_override = plan->capacity_slots();
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  sim.set_box_online(relay, false);
  sim.step({{0, 0}});
  EXPECT_EQ(sim.report().demands_admitted, 1u);
  // All requests are direct (requester == the poor box itself).
  EXPECT_GT(sim.active_request_count(), 0u);
  for (int t = 1; t < 22; ++t) sim.step({});
  EXPECT_TRUE(sim.report().success);
}

TEST(Churn, SoakWithRandomChurnKeepsInvariants) {
  // Random fail/recover cycles against a replicated catalog while a Zipf
  // audience plays; verify_incremental cross-checks the matcher throughout.
  const std::uint32_t n = 24, c = 2, k = 6;
  const m::Catalog catalog(8, c, 8);
  const auto profile = m::CapacityProfile::homogeneous(n, 2.5, 4.0);
  p2pvod::util::Rng rng(0xC1C1);
  const auto allocation =
      a::PermutationAllocator().allocate(catalog, profile, k, rng);
  s::PreloadingStrategy strategy;
  s::SimulatorOptions options;
  options.strict = false;
  options.verify_incremental = true;
  s::Simulator sim(catalog, profile, allocation, strategy, options);
  w::ZipfDemand audience(8, 0.8, 0.2, 0xC2C2);

  std::vector<bool> down(n, false);
  for (int t = 0; t < 60; ++t) {
    if (t % 5 == 2) {  // fail one box
      const auto b = static_cast<m::BoxId>(rng.next_below(n));
      if (!down[b]) {
        sim.set_box_online(b, false);
        down[b] = true;
      }
    }
    if (t % 7 == 5) {  // recover one box
      for (m::BoxId b = 0; b < n; ++b) {
        if (down[b]) {
          sim.set_box_online(b, true);
          down[b] = false;
          break;
        }
      }
    }
    sim.step(audience.demands(sim));
  }
  const auto& report = sim.report();
  EXPECT_GT(report.box_failures, 0u);
  EXPECT_GT(report.sessions_completed, 0u);
  // Continuity may dip (k=6 tolerates most failures) but never collapses.
  EXPECT_GT(report.continuity(), 0.9);
}
