// Tests for the demand-aware placement subsystem: the proportional budget
// split, the coverage objective and its exhaustive reference, the three
// placement schemes (demand-proportional, zone-local-first, lp-greedy), and
// the E15-config acceptance property that demand-aware placement lowers the
// cross-zone floor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/demand_proportional.hpp"
#include "alloc/lp_greedy.hpp"
#include "alloc/placement.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/zone_local.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "net/topology.hpp"
#include "scenario/figures/zones_common.hpp"
#include "util/rng.hpp"

namespace a = p2pvod::alloc;
namespace m = p2pvod::model;
namespace nt = p2pvod::net;
namespace sc = p2pvod::scenario;

namespace {

/// Every stripe's holders as a sorted set per stripe, for scheme comparisons.
std::vector<std::vector<m::BoxId>> holder_sets(const a::Allocation& alloc) {
  std::vector<std::vector<m::BoxId>> sets(alloc.stripe_count());
  for (m::StripeId s = 0; s < alloc.stripe_count(); ++s) {
    const auto& holders = alloc.holders(s);
    sets[s].assign(holders.begin(), holders.end());
    std::sort(sets[s].begin(), sets[s].end());
  }
  return sets;
}

/// No box may hold the same stripe twice, and per-box storage must fit.
void check_allocation_valid(const a::Allocation& alloc,
                            const m::Catalog& catalog,
                            const m::CapacityProfile& profile) {
  const std::uint32_t c = catalog.stripes_per_video();
  std::vector<std::uint32_t> load(alloc.box_count(), 0);
  for (m::StripeId s = 0; s < alloc.stripe_count(); ++s) {
    std::set<m::BoxId> seen;
    for (const m::BoxId b : alloc.holders(s)) {
      ASSERT_TRUE(seen.insert(b).second)
          << "stripe " << s << " duplicated in box " << b;
      ++load[b];
    }
  }
  for (m::BoxId b = 0; b < alloc.box_count(); ++b)
    ASSERT_LE(load[b], profile.storage_slots(b, c)) << "box " << b;
}

}  // namespace

// ------------------------------------------------- proportional counts

TEST(ProportionalCounts, UniformDemandGivesEveryVideoK) {
  const auto counts = a::proportional_replica_counts(5, 6, {}, 100);
  ASSERT_EQ(counts.size(), 5u);
  for (const auto c : counts) EXPECT_EQ(c, 6u);
}

TEST(ProportionalCounts, SkewedDemandSplitsTheBudgetProportionally) {
  const std::vector<double> demand{8.0, 1.0, 1.0};
  const auto counts = a::proportional_replica_counts(3, 2, demand, 100);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 6u);
}

TEST(ProportionalCounts, EveryVideoKeepsAtLeastOneReplica) {
  // Near-total concentration on video 0 must not starve the tail: every
  // stripe has to stay servable.
  const std::vector<double> demand{1e6, 1e-6, 1e-6, 1e-6};
  const auto counts = a::proportional_replica_counts(4, 3, demand, 100);
  ASSERT_EQ(counts.size(), 4u);
  for (const auto c : counts) EXPECT_GE(c, 1u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 12u);
}

TEST(ProportionalCounts, CapDropsResidualBudget) {
  // One video, k=5, but at most 3 distinct boxes: the residue is dropped.
  const auto counts = a::proportional_replica_counts(1, 5, {}, 3);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 3u);
}

TEST(ProportionalCounts, RejectsBadInputs) {
  EXPECT_THROW((void)a::proportional_replica_counts(3, 0, {}, 10),
               std::invalid_argument);
  EXPECT_THROW((void)a::proportional_replica_counts(3, 2, {}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)a::proportional_replica_counts(3, 2, std::vector<double>{1.0}, 10),
      std::invalid_argument);
  EXPECT_THROW((void)a::proportional_replica_counts(
                   3, 2, std::vector<double>{1.0, -1.0, 1.0}, 10),
               std::invalid_argument);
  EXPECT_THROW((void)a::proportional_replica_counts(
                   3, 2, std::vector<double>{0.0, 0.0, 0.0}, 10),
               std::invalid_argument);
}

// ------------------------------------------------------------- schemes

TEST(DemandProportional, UniformDemandEqualsRoundRobin) {
  // Context-free the scheme is round-robin with per-video count k — the two
  // must produce identical holder sets.
  const m::Catalog catalog(6, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(9, 1.0, 4.0);
  p2pvod::util::Rng rng_a(1), rng_b(1);
  const auto rr = a::RoundRobinAllocator().allocate(catalog, profile, 3,
                                                    rng_a);
  const auto dp = a::DemandProportionalAllocator().allocate(catalog, profile,
                                                            3, rng_b);
  EXPECT_EQ(holder_sets(rr), holder_sets(dp));
}

TEST(DemandProportional, PopularVideosGetMoreReplicas) {
  const m::Catalog catalog(4, 2, 12);
  const auto profile = m::CapacityProfile::homogeneous(12, 1.0, 4.0);
  a::PlacementContext context;
  context.demand = {9.0, 1.0, 1.0, 1.0};
  p2pvod::util::Rng rng(7);
  const auto alloc = a::DemandProportionalAllocator().allocate(
      catalog, profile, 3, rng, context);
  check_allocation_valid(alloc, catalog, profile);
  const auto expected =
      a::proportional_replica_counts(4, 3, context.demand, 12);
  for (m::VideoId v = 0; v < 4; ++v) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      EXPECT_EQ(alloc.holders(catalog.stripe_id(v, i)).size(), expected[v])
          << "video " << v;
    }
  }
  EXPECT_GT(expected[0], expected[1]);
}

TEST(ZoneLocalFirst, WithoutTopologyEqualsDemandProportional) {
  const m::Catalog catalog(4, 3, 12);
  const auto profile = m::CapacityProfile::homogeneous(10, 1.0, 4.0);
  a::PlacementContext context;
  context.demand = {5.0, 2.0, 2.0, 1.0};
  p2pvod::util::Rng rng_a(3), rng_b(3);
  const auto dp = a::DemandProportionalAllocator().allocate(catalog, profile,
                                                            4, rng_a, context);
  const auto zl = a::ZoneLocalFirstAllocator().allocate(catalog, profile, 4,
                                                        rng_b, context);
  EXPECT_EQ(holder_sets(dp), holder_sets(zl));
}

TEST(ZoneLocalFirst, PinsReplicasToZonesByPopulationShare) {
  // One video, k=4, two equal zones: every stripe gets exactly two holders
  // in each zone while storage lasts.
  const m::Catalog catalog(1, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(8, 1.0, 4.0);
  const auto topology = nt::Topology::uniform(8, 2);
  a::PlacementContext context;
  context.topology = &topology;
  p2pvod::util::Rng rng(11);
  const auto alloc = a::ZoneLocalFirstAllocator().allocate(catalog, profile, 4,
                                                           rng, context);
  check_allocation_valid(alloc, catalog, profile);
  for (m::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    std::uint32_t zone0 = 0;
    std::uint32_t zone1 = 0;
    for (const m::BoxId b : alloc.holders(s))
      (topology.zone_of(b) == 0 ? zone0 : zone1) += 1;
    EXPECT_EQ(zone0, 2u) << "stripe " << s;
    EXPECT_EQ(zone1, 2u) << "stripe " << s;
  }
}

TEST(LpGreedy, SpendsTheFullBudgetValidly) {
  const m::Catalog catalog(6, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(12, 1.0, 4.0);
  const auto topology = nt::Topology::uniform(12, 3);
  a::PlacementContext context;
  context.topology = &topology;
  context.demand = {6.0, 3.0, 2.0, 1.0, 1.0, 1.0};
  p2pvod::util::Rng rng(5);
  const auto alloc = a::LpGreedyAllocator().allocate(catalog, profile, 4, rng,
                                                     context);
  check_allocation_valid(alloc, catalog, profile);
  std::uint64_t total = 0;
  for (m::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    EXPECT_GE(alloc.holders(s).size(), 1u) << "stripe " << s;  // servability
    total += alloc.holders(s).size();
  }
  EXPECT_EQ(total, 4ull * catalog.stripe_count());
}

TEST(Schemes, FactoryNamesAndContextAcceptance) {
  const m::Catalog catalog(2, 2, 12);
  const auto profile = m::CapacityProfile::homogeneous(6, 1.0, 4.0);
  const auto topology = nt::Topology::uniform(6, 2);
  a::PlacementContext context;
  context.topology = &topology;
  context.demand = {3.0, 1.0};
  for (const auto scheme :
       {a::Scheme::kPermutation, a::Scheme::kIndependent, a::Scheme::kRoundRobin,
        a::Scheme::kFullReplication, a::Scheme::kDemandProportional,
        a::Scheme::kZoneLocalFirst, a::Scheme::kLpGreedy}) {
    const auto allocator = a::make_allocator(scheme);
    EXPECT_EQ(allocator->name(), a::scheme_name(scheme));
    // Every scheme accepts every context: the context-blind ones ignore it.
    p2pvod::util::Rng rng(17);
    const auto alloc =
        allocator->allocate(catalog, profile, 2, rng, context);
    check_allocation_valid(alloc, catalog, profile);
  }
}

TEST(Schemes, DemandAwareValidation) {
  const m::Catalog catalog(2, 2, 12);
  const auto profile = m::CapacityProfile::homogeneous(4, 1.0, 4.0);
  const auto wrong_topology = nt::Topology::uniform(5, 2);
  a::PlacementContext bad;
  bad.topology = &wrong_topology;
  p2pvod::util::Rng rng(1);
  EXPECT_THROW((void)a::DemandProportionalAllocator().allocate(
                   catalog, profile, 2, rng, bad),
               std::invalid_argument);
  EXPECT_THROW((void)a::ZoneLocalFirstAllocator().allocate(catalog, profile, 2,
                                                           rng, bad),
               std::invalid_argument);
  EXPECT_THROW(
      (void)a::LpGreedyAllocator().allocate(catalog, profile, 2, rng, bad),
      std::invalid_argument);
  EXPECT_THROW(
      (void)a::LpGreedyAllocator().allocate(catalog, profile, 0, rng, {}),
      std::invalid_argument);
}

// ---------------------------------------------- objective + exact reference

TEST(PlacementObjective, CountsCoveredDemandPerZone) {
  // 4 boxes, 2 zones, 1 video of 1 stripe, demand 3 => D_z = 1.5 per zone.
  // Holders {0, 1} both sit in zone 0: min(2, 1.5) + min(0, 1.5) = 1.5.
  const m::Catalog catalog(1, 1, 12);
  const auto topology = nt::Topology::uniform(4, 2);
  a::PlacementContext context;
  context.topology = &topology;
  context.demand = {3.0};
  std::vector<a::Allocation::Placement> placements{{0, 0},
                                                   {static_cast<m::BoxId>(
                                                        topology.members(0)[1]),
                                                    0}};
  const a::Allocation alloc(4, 1, std::move(placements));
  EXPECT_DOUBLE_EQ(a::placement_objective(alloc, catalog, context), 1.5);
}

TEST(PlacementObjective, ExactReferenceUpperBoundsEveryScheme) {
  const m::Catalog catalog(2, 1, 12);
  const auto profile = m::CapacityProfile::homogeneous(5, 1.0, 1.0);
  const auto topology = nt::Topology::uniform(5, 2);
  a::PlacementContext context;
  context.topology = &topology;
  context.demand = {3.0, 1.0};
  const double optimum =
      a::optimal_placement_objective(catalog, profile, 2, context);
  for (const auto scheme :
       {a::Scheme::kRoundRobin, a::Scheme::kDemandProportional,
        a::Scheme::kZoneLocalFirst, a::Scheme::kLpGreedy}) {
    p2pvod::util::Rng rng(23);
    const auto alloc = a::make_allocator(scheme)->allocate(catalog, profile, 2,
                                                           rng, context);
    EXPECT_LE(a::placement_objective(alloc, catalog, context), optimum + 1e-9)
        << a::scheme_name(scheme);
  }
}

TEST(PlacementObjective, ExactReferenceRejectsHugeInstances) {
  const m::Catalog catalog(8, 4, 12);
  const auto profile = m::CapacityProfile::homogeneous(16, 1.0, 4.0);
  EXPECT_THROW(
      (void)a::optimal_placement_objective(catalog, profile, 2, {}),
      std::invalid_argument);
}

// Acceptance property: greedy coverage maximization stays within a constant
// factor of the exhaustive optimum on randomized small instances (the
// submodular greedy guarantee; 1/2 is the conservative bound we enforce).
TEST(LpGreedy, WithinConstantFactorOfExactOptimum) {
  p2pvod::util::Rng rng(0xA11C);
  for (int trial = 0; trial < 12; ++trial) {
    const m::Catalog catalog(2, 1, 12);
    const std::uint32_t n = 6;
    const auto profile = m::CapacityProfile::homogeneous(n, 1.0, 1.0);
    const auto topology = nt::Topology::uniform(n, 2);
    a::PlacementContext context;
    context.topology = &topology;
    context.demand = {1.0 + rng.next_double() * 5.0,
                      0.5 + rng.next_double() * 2.0};
    const std::uint32_t k = 2;

    p2pvod::util::Rng alloc_rng(trial);
    const auto greedy = a::LpGreedyAllocator().allocate(catalog, profile, k,
                                                        alloc_rng, context);
    const double achieved = a::placement_objective(greedy, catalog, context);
    const double optimum =
        a::optimal_placement_objective(catalog, profile, k, context);
    ASSERT_GE(optimum, achieved - 1e-9) << "trial " << trial;
    ASSERT_GE(achieved, 0.5 * optimum - 1e-9) << "trial " << trial;
  }
}

// ------------------------------------------------- E15-config acceptance

// Acceptance property: on the zone-family protocol point (min-cost
// matching, E17's 12-zone regime where zones > k so no striping can cover
// every zone), demand-proportional placement strictly reduces cross-zone
// chunks vs the round-robin baseline — popular videos gain replicas in
// (nearly) every zone, so fewer requests are forced across a link.
TEST(PlacementAcceptance, DemandProportionalLowersCrossZoneChunks) {
  const std::uint32_t n = 24;
  const std::uint32_t zones = 12;
  const auto topology = sc::zone_family_topology(n, zones, 1);
  a::PlacementContext context;
  context.topology = &topology;
  context.demand = sc::zone_family_forecast(n);

  std::uint64_t baseline = 0;
  std::uint64_t aware = 0;
  for (std::uint32_t t = 0; t < 3; ++t) {
    const auto rr = sc::zone_family_soak(n, 1.5, topology, /*strict=*/false,
                                         /*rounds=*/48, 0xA110C + t,
                                         0xA11AA + t, a::RoundRobinAllocator(),
                                         context);
    const auto dp = sc::zone_family_soak(
        n, 1.5, topology, /*strict=*/false, /*rounds=*/48, 0xA110C + t,
        0xA11AA + t, a::DemandProportionalAllocator(), context);
    baseline += rr.cross_zone_chunks;
    aware += dp.cross_zone_chunks;
  }
  EXPECT_LT(aware, baseline);
}
