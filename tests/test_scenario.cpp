// Tests for the scenario subsystem: registry registration/lookup, sink
// behavior, the JSON result documents, baseline regression diffing, and
// thread-count determinism of every migrated figure scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/baseline.hpp"
#include "scenario/figures.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace sc = p2pvod::scenario;
namespace u = p2pvod::util;

namespace {

/// Sets an environment variable for the test's lifetime, restoring the
/// previous value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str()); old != nullptr) {
      old_ = old;
    }
    setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

/// A cheap deterministic scenario for sink/JSON tests. `delta` shifts every
/// metric so baseline-diff tests can fabricate drifted runs.
sc::Scenario synthetic_scenario(double delta = 0.0) {
  sc::Scenario scenario;
  scenario.id = "synthetic";
  scenario.figure = "T0";
  scenario.title = "T0 / synthetic";
  scenario.claim = "doubles the x axis";
  scenario.plan = [delta] {
    sc::Plan plan;
    p2pvod::sweep::ParameterGrid grid;
    grid.free_axis("x", {1, 2, 3});
    plan.stages.push_back(
        {"main", std::move(grid),
         {"twice"},
         [delta](const p2pvod::sweep::GridPoint& point,
                 std::uint64_t /*seed*/) {
           return std::vector<double>{2.0 * point.values[0] + delta};
         }});
    plan.render = [](const sc::ScenarioRun& run, sc::Emitter& out) {
      p2pvod::util::Table table("synthetic");
      table.set_header({"x", "2x"});
      for (const auto& row : run.stage(0).rows()) {
        table.begin_row().cell(row.point.values[0]).cell(row.metrics[0]);
      }
      out.table(table, "T0_synthetic");
      out.text("trailer\n");
    };
    return plan;
  };
  return scenario;
}

std::string run_with_threads(const sc::Scenario& scenario,
                             std::size_t threads) {
  std::ostringstream out;
  sc::TableSink sink(out);
  u::ThreadPool pool(threads);
  sc::RunOptions options;
  options.sweep.pool = &pool;
  sc::run_scenario(scenario, {&sink}, options);
  return out.str();
}

u::json::Value capture_json(const sc::Scenario& scenario) {
  sc::CaptureSink capture;
  sc::run_scenario(scenario, {&capture});
  return *capture.document();
}

/// Copy of `value` with every "wall_seconds" member below the top level
/// removed — reconstructs the shape of a baseline recorded before per-stage
/// and per-point timing existed.
u::json::Value strip_inner_timing(const u::json::Value& value, int depth) {
  if (value.is_object()) {
    u::json::Value out{u::json::Value::Object{}};
    for (const auto& [key, member] : value.as_object()) {
      if (depth > 0 && key == "wall_seconds") continue;
      out.set(key, strip_inner_timing(member, depth + 1));
    }
    return out;
  }
  if (value.is_array()) {
    u::json::Value::Array out;
    for (const auto& entry : value.as_array()) {
      out.push_back(strip_inner_timing(entry, depth + 1));
    }
    return u::json::Value{std::move(out)};
  }
  return value;
}

/// Sink retaining a copy of the run so tests can rebuild JSON documents with
/// a chosen wall time.
struct RunCapture final : sc::ResultSink {
  std::optional<sc::ScenarioRun> run;
  void on_complete(const sc::Scenario& /*scenario*/,
                   const sc::ScenarioRun& completed,
                   double /*wall_seconds*/) override {
    run = completed;
  }
};

}  // namespace

// --- registry ---------------------------------------------------------------

TEST(ScenarioRegistry, BuiltinHoldsAllSixteenFiguresInOrder) {
  const auto& registry = sc::ScenarioRegistry::builtin();
  ASSERT_EQ(registry.size(), 16u);
  std::vector<std::string> ids;
  std::vector<std::string> figures;
  for (const sc::Scenario* scenario : registry.list()) {
    ids.push_back(scenario->id);
    figures.push_back(scenario->figure);
  }
  EXPECT_EQ(ids, (std::vector<std::string>{
                     "table1", "threshold", "catalog_scaling", "replication",
                     "swarm_growth", "allocation", "hetero", "tradeoff",
                     "startup_delay", "obstruction", "baseline", "churn",
                     "crosszone", "zonecap", "scaleladder", "placement"}));
  EXPECT_EQ(figures, (std::vector<std::string>{
                         "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                         "E10", "E11", "E13", "E14", "E15", "E16", "E17"}));
}

TEST(ScenarioRegistry, FindAndAtResolveIds) {
  const auto& registry = sc::ScenarioRegistry::builtin();
  ASSERT_NE(registry.find("threshold"), nullptr);
  EXPECT_EQ(registry.find("threshold")->figure, "E2");
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.at("churn").figure, "E13");
  EXPECT_THROW((void)registry.at("nope"), std::out_of_range);
}

TEST(ScenarioRegistry, RejectsBadRegistrations) {
  sc::ScenarioRegistry registry;
  registry.add(synthetic_scenario());
  EXPECT_EQ(registry.size(), 1u);
  // Duplicate id.
  EXPECT_THROW(registry.add(synthetic_scenario()), std::invalid_argument);
  // Empty id.
  sc::Scenario unnamed = synthetic_scenario();
  unnamed.id.clear();
  EXPECT_THROW(registry.add(std::move(unnamed)), std::invalid_argument);
  // Missing plan.
  sc::Scenario planless = synthetic_scenario();
  planless.id = "planless";
  planless.plan = nullptr;
  EXPECT_THROW(registry.add(std::move(planless)), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

// --- scaled_count (bench scaling fix) ---------------------------------------

TEST(ScaledCount, RoundsToNearestInsteadOfTruncating) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.9");
  // 3 * 0.9 = 2.7: truncation gave 2, rounding gives 3.
  EXPECT_EQ(u::scaled_count(3, 1), 3u);
  EXPECT_EQ(u::scaled_count(10, 1), 9u);
}

TEST(ScaledCount, RespectsFloor) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.01");
  EXPECT_EQ(u::scaled_count(8, 2), 2u);
  EXPECT_EQ(u::scaled_count(100, 1), 1u);
}

TEST(ScaledCount, IdentityAtScaleOneAndScalesUp) {
  {
    const ScopedEnv scale("P2PVOD_SCALE", "1");
    EXPECT_EQ(u::scaled_count(48, 24), 48u);
  }
  {
    const ScopedEnv scale("P2PVOD_SCALE", "2.5");
    EXPECT_EQ(u::scaled_count(2, 1), 5u);
  }
}

// --- sinks and JSON documents ------------------------------------------------

TEST(ScenarioSinks, TableSinkPrintsBannerTablesAndText) {
  const auto output = run_with_threads(synthetic_scenario(), 1);
  EXPECT_NE(output.find("# T0 / synthetic — doubles the x axis"),
            std::string::npos);
  EXPECT_NE(output.find("== synthetic =="), std::string::npos);
  EXPECT_NE(output.find("trailer\n"), std::string::npos);
}

TEST(ScenarioSinks, RunToJsonRecordsStagesRowsAndWallTime) {
  const auto document = capture_json(synthetic_scenario());
  EXPECT_EQ(document.at("id").as_string(), "synthetic");
  EXPECT_EQ(document.at("figure").as_string(), "T0");
  EXPECT_GE(document.at("wall_seconds").as_number(), 0.0);
  const auto& stages = document.at("stages").as_array();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].at("name").as_string(), "main");
  const auto& rows = stages[0].at("rows").as_array();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[2].at("values").as_array()[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(rows[2].at("metrics").as_array()[0].as_number(), 6.0);
}

TEST(ScenarioSinks, RunToJsonRecordsPerStageAndPerPointWallTimes) {
  const auto document = capture_json(synthetic_scenario());
  const auto& stage = document.at("stages").as_array()[0];
  ASSERT_NE(stage.find("wall_seconds"), nullptr);
  EXPECT_GE(stage.at("wall_seconds").as_number(), 0.0);
  for (const auto& row : stage.at("rows").as_array()) {
    ASSERT_NE(row.find("wall_seconds"), nullptr);
    EXPECT_GE(row.at("wall_seconds").as_number(), 0.0);
  }
  // The timing fields survive a serialize/parse round trip unchanged.
  const auto reparsed = u::json::parse(document.dump());
  const auto& reparsed_stage = reparsed.at("stages").as_array()[0];
  EXPECT_DOUBLE_EQ(reparsed_stage.at("wall_seconds").as_number(),
                   stage.at("wall_seconds").as_number());
  EXPECT_DOUBLE_EQ(reparsed_stage.at("rows").as_array()[1].at("wall_seconds")
                       .as_number(),
                   stage.at("rows").as_array()[1].at("wall_seconds")
                       .as_number());
}

TEST(ScenarioSinks, JsonSinkWritesParseableBenchFile) {
  const std::string dir = testing::TempDir();
  sc::JsonSink sink(dir);
  sc::run_scenario(synthetic_scenario(), {&sink});
  ASSERT_EQ(sink.written().size(), 1u);
  EXPECT_EQ(sink.written()[0], dir + "/BENCH_synthetic.json");
  const auto document = u::json::parse_file(sink.written()[0]);
  EXPECT_EQ(document.at("id").as_string(), "synthetic");
  EXPECT_EQ(document.at("schema").as_string(), "p2pvod-bench-v1");
}

TEST(ScenarioSinks, CsvSinkWritesTableCsv) {
  const std::string dir = testing::TempDir();
  std::ostringstream notice;
  sc::CsvSink sink(dir, &notice);
  sc::run_scenario(synthetic_scenario(), {&sink});
  EXPECT_NE(notice.str().find("[csv] " + dir + "/T0_synthetic.csv"),
            std::string::npos);
  const auto parsed = std::ifstream(dir + "/T0_synthetic.csv").good();
  EXPECT_TRUE(parsed);
}

// --- baseline diff -----------------------------------------------------------

TEST(BaselineDiff, IdenticalRunPasses) {
  const auto document = capture_json(synthetic_scenario());
  EXPECT_TRUE(sc::diff_against_baseline(document, document).empty());
}

TEST(BaselineDiff, MetricDriftBeyondToleranceFails) {
  const auto current = capture_json(synthetic_scenario());
  const auto baseline = capture_json(synthetic_scenario(1.0));

  const auto violations = sc::diff_against_baseline(current, baseline);
  ASSERT_EQ(violations.size(), 3u);  // every row drifted by 1.0
  EXPECT_NE(violations[0].find("metric 'twice'"), std::string::npos);

  // A loose relative tolerance accepts the same drift.
  sc::BaselineOptions loose;
  loose.rtol = 0.5;
  EXPECT_TRUE(sc::diff_against_baseline(current, baseline, loose).empty());
}

TEST(BaselineDiff, WallTimeRegressionFailsUnlessDisabled) {
  const sc::Scenario scenario = synthetic_scenario();
  RunCapture capture;
  sc::run_scenario(scenario, {&capture});
  ASSERT_TRUE(capture.run.has_value());
  // Identical metrics; only the recorded wall times differ (1s vs 10s).
  const auto baseline = sc::run_to_json(scenario, *capture.run, 1.0);
  const auto current = sc::run_to_json(scenario, *capture.run, 10.0);

  sc::BaselineOptions strict;
  strict.wall_factor = 2.0;
  strict.wall_slack = 0.25;  // budget: 1 * 2 + 0.25 = 2.25s < 10s
  const auto violations = sc::diff_against_baseline(current, baseline, strict);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("wall time regressed"), std::string::npos);

  sc::BaselineOptions disabled = strict;
  disabled.wall_factor = 0.0;
  EXPECT_TRUE(sc::diff_against_baseline(current, baseline, disabled).empty());
  // The reverse direction (got faster) also passes.
  EXPECT_TRUE(sc::diff_against_baseline(baseline, current, strict).empty());
}

TEST(BaselineDiff, PerPointAndPerStageTimingNeverTriggersRegressions) {
  // Per-stage / per-point wall times are informational: however wildly they
  // drift from the baseline's, the diff must stay clean as long as metrics
  // agree. (Only the top-level wall_seconds participates in the wall check.)
  const sc::Scenario scenario = synthetic_scenario();
  RunCapture capture;
  sc::run_scenario(scenario, {&capture});
  ASSERT_TRUE(capture.run.has_value());

  sc::ScenarioRun slow_run = *capture.run;
  for (auto& stage : slow_run.stages) {
    stage.seconds += 3600.0;
    // Rebuild the stage result with inflated per-point timings.
    p2pvod::sweep::SweepResult inflated(stage.result.axis_names(),
                                        stage.result.metric_names(),
                                        stage.result.row_count());
    for (std::size_t i = 0; i < stage.result.row_count(); ++i) {
      const auto& row = stage.result.row(i);
      inflated.set_row(i, row.point, row.metrics, row.seconds + 900.0);
    }
    stage.result = std::move(inflated);
  }
  const auto baseline = sc::run_to_json(scenario, *capture.run, 1.0);
  const auto current = sc::run_to_json(scenario, slow_run, 1.0);

  sc::BaselineOptions strict;
  strict.wall_factor = 1.0;  // tightest wall budget: only top-level counts
  strict.wall_slack = 0.0;
  EXPECT_TRUE(sc::diff_against_baseline(current, baseline, strict).empty());

  // And a baseline recorded BEFORE the timing fields existed (no
  // wall_seconds on stages/rows) still diffs clean against a current run
  // that has them — old baselines stay valid.
  const auto stripped = strip_inner_timing(baseline, 0);
  EXPECT_TRUE(sc::diff_against_baseline(current, stripped, strict).empty());
}

namespace {

/// Copy of `value` with an extra member appended to every row object —
/// simulates a future bench adding per-point columns old baselines lack.
u::json::Value add_extra_row_keys(const u::json::Value& value) {
  if (value.is_object()) {
    u::json::Value out{u::json::Value::Object{}};
    for (const auto& [key, member] : value.as_object()) {
      out.set(key, add_extra_row_keys(member));
    }
    if (value.find("values") != nullptr && value.find("metrics") != nullptr) {
      out.set("debug_cost", 1.25);
    }
    return out;
  }
  if (value.is_array()) {
    u::json::Value::Array out;
    for (const auto& entry : value.as_array()) {
      out.push_back(add_extra_row_keys(entry));
    }
    return u::json::Value{std::move(out)};
  }
  return value;
}

/// Copy of `value` without its top-level "metrics" member — the shape of a
/// baseline recorded before the observability block existed.
u::json::Value drop_metrics_block(const u::json::Value& value) {
  u::json::Value out{u::json::Value::Object{}};
  for (const auto& [key, member] : value.as_object()) {
    if (key == "metrics") continue;
    out.set(key, member);
  }
  return out;
}

}  // namespace

TEST(BaselineDiff, MetricsBlockAndExtraRowKeysDiffCleanAgainstOldBaselines) {
  // A run recorded with --metrics gains a top-level "metrics" block (and a
  // future bench may add per-point keys); both must be invisible to the
  // baseline diff so old baselines keep validating new runs.
  sc::CaptureSink capture;
  sc::RunOptions options;
  options.collect_metrics = true;
  sc::run_scenario(synthetic_scenario(), {&capture}, options);
  const u::json::Value current = *capture.document();
  ASSERT_NE(current.find("metrics"), nullptr);
  ASSERT_TRUE(current.at("metrics").is_object());
  EXPECT_FALSE(current.at("metrics").as_object().empty());

  const u::json::Value inflated = add_extra_row_keys(current);
  const u::json::Value old_baseline = drop_metrics_block(current);
  ASSERT_EQ(old_baseline.find("metrics"), nullptr);

  sc::BaselineOptions strict;
  strict.rtol = 0.0;
  strict.atol = 0.0;
  strict.wall_factor = 0.0;
  EXPECT_TRUE(
      sc::diff_against_baseline(inflated, old_baseline, strict).empty());
  // And symmetrically: a metrics-bearing baseline validates a plain run.
  EXPECT_TRUE(
      sc::diff_against_baseline(old_baseline, inflated, strict).empty());
}

TEST(ScenarioRunner, CollectMetricsAttachesSnapshotToRunAndJson) {
  RunCapture capture;
  sc::RunOptions options;
  options.collect_metrics = true;
  sc::run_scenario(synthetic_scenario(), {&capture}, options);
  ASSERT_TRUE(capture.run.has_value());
  ASSERT_TRUE(capture.run->metrics.has_value());
  // The delta covers this run: the sweep executed 3 grid points.
  const auto& values = capture.run->metrics->values;
  ASSERT_EQ(values.count("sweep/points"), 1u);
  EXPECT_EQ(values.at("sweep/points").count, 3u);

  const auto document = sc::run_to_json(synthetic_scenario(), *capture.run, 1.0);
  ASSERT_NE(document.find("metrics"), nullptr);
  const auto* entry = document.at("metrics").find("sweep/points");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->at("kind").as_string(), "counter");
  EXPECT_EQ(entry->at("stability").as_string(), "stable");
  EXPECT_DOUBLE_EQ(entry->at("value").as_number(), 3.0);

  // Without the flag the run and its JSON stay metrics-free.
  RunCapture plain;
  sc::run_scenario(synthetic_scenario(), {&plain});
  ASSERT_TRUE(plain.run.has_value());
  EXPECT_FALSE(plain.run->metrics.has_value());
  const auto plain_doc = sc::run_to_json(synthetic_scenario(), *plain.run, 1.0);
  EXPECT_EQ(plain_doc.find("metrics"), nullptr);
}

TEST(BaselineDiff, StructuralChangesFail) {
  const auto current = capture_json(synthetic_scenario());

  sc::Scenario other = synthetic_scenario();
  other.id = "other";
  auto mismatched_id = capture_json(other);
  EXPECT_FALSE(sc::diff_against_baseline(current, mismatched_id).empty());

  // Different row count (extra axis value).
  sc::Scenario wider = synthetic_scenario();
  const auto narrow_plan = wider.plan;
  wider.plan = [narrow_plan] {
    sc::Plan plan = narrow_plan();
    p2pvod::sweep::ParameterGrid grid;
    grid.free_axis("x", {1, 2, 3, 4});
    plan.stages[0].grid = std::move(grid);
    return plan;
  };
  const auto wide = capture_json(wider);
  const auto violations = sc::diff_against_baseline(wide, current);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("row count changed"), std::string::npos);
}

TEST(BaselineDiff, MissingBaselineFileReportsViolation) {
  const auto current = capture_json(synthetic_scenario());
  const auto violations = sc::diff_against_baseline_file(
      current, testing::TempDir() + "/does_not_exist.json");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("cannot load baseline"), std::string::npos);
}

// --- determinism of every migrated figure ------------------------------------

class ScenarioDeterminism : public testing::TestWithParam<const char*> {};

// Every migrated scenario must print byte-identical tables on 1, 4, and 8
// threads (acceptance criterion for the sweep migration, re-verified on the
// work-stealing pool: stealing order and per-worker deques must not leak
// into output). Runs at a reduced scale to keep the suite fast; the scale
// floors still exercise the real sweep paths.
TEST_P(ScenarioDeterminism, TablesAreByteIdenticalAcrossThreadCounts) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.25");
  const sc::Scenario& scenario =
      sc::ScenarioRegistry::builtin().at(GetParam());
  const std::string serial = run_with_threads(scenario, 1);
  EXPECT_EQ(serial, run_with_threads(scenario, 4));
  EXPECT_EQ(serial, run_with_threads(scenario, 8));
  EXPECT_FALSE(serial.empty());
}

INSTANTIATE_TEST_SUITE_P(AllFigures, ScenarioDeterminism,
                         testing::Values("table1", "threshold",
                                         "catalog_scaling", "replication",
                                         "swarm_growth", "allocation",
                                         "hetero", "tradeoff", "startup_delay",
                                         "obstruction", "baseline", "churn",
                                         "crosszone", "zonecap"));

// E16's smallest 0.25-scale rung is already 250 boxes × 6 rungs, too heavy
// for the parametrized sweep above; a tiny dedicated scale keeps the sparse
// round path inside the thread-count determinism net. (The suite name must
// keep the ScenarioDeterminism prefix: the tsan CI job filters on it.)
TEST(ScenarioDeterminismSparse, ScaleLadderIsByteIdenticalAcrossThreads) {
  const ScopedEnv scale("P2PVOD_SCALE", "0.01");
  const sc::Scenario& scenario =
      sc::ScenarioRegistry::builtin().at("scaleladder");
  const std::string serial = run_with_threads(scenario, 1);
  EXPECT_EQ(serial, run_with_threads(scenario, 4));
  EXPECT_EQ(serial, run_with_threads(scenario, 8));
  EXPECT_FALSE(serial.empty());
}
