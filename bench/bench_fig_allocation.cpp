// Thin shim: the E6 allocation figure lives in the scenario registry
// (src/scenario/figures/allocation.cpp). `p2pvod_bench allocation` is the
// primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("allocation"); }
