// E6 — permutation vs independent allocation (§2.1 / Theorem 1 remark).
//
// The permutation allocation loads every box with exactly d·c replicas; the
// independent allocation concentrates only when c = Ω(log n) — below that,
// box loads (and hence serving hot-spots) are visibly unbalanced. We report
// load-balance statistics and full-suite feasibility for both schemes, plus
// the deterministic round-robin placement as a control.
#include <cmath>
#include <iostream>

#include "alloc/allocator.hpp"
#include "analysis/calibrate.hpp"
#include "bench_common.hpp"
#include "model/catalog.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner(
      "E6 / allocation figure",
      "load balance & feasibility: permutation vs independent vs round-robin");

  const std::uint32_t trials = bench::scaled(4, 2);
  const double d = 4.0;

  // At the paper's operating point the catalog identity m = d*n/k fills
  // every slot: the permutation allocation is perfectly balanced by
  // construction, while the independent allocation needs more capacity than
  // d*c on some box — the overflow that forces c = Omega(log n).
  util::Table loads("full occupancy m=d*n/k (k=4): permutation balance vs "
                    "independent overflow (mean over " +
                    std::to_string(trials) + " seeds)");
  loads.set_header({"scheme", "n", "c", "nominal slots d*c", "max load",
                    "overflow max/(d*c)", "repl min..max"});
  for (const std::uint32_t n : {32u, 128u}) {
    for (const std::uint32_t c : {2u, 8u, 32u}) {
      const std::uint32_t k = 4;
      const auto m = static_cast<std::uint32_t>(d * n / k);
      const model::Catalog catalog(m, c, 16);
      const auto profile = model::CapacityProfile::homogeneous(n, 1.5, d);
      // For the independent scheme, measure the *unconstrained* bin loads:
      // place with 8x headroom and compare the max against the nominal d*c.
      const auto roomy = model::CapacityProfile::homogeneous(n, 1.5, 8 * d);
      const double nominal = d * c;
      for (const auto scheme :
           {alloc::Scheme::kPermutation, alloc::Scheme::kIndependent,
            alloc::Scheme::kRoundRobin}) {
        double max_load = 0.0;
        std::uint32_t rep_min = 0xffffffffu, rep_max = 0;
        for (std::uint32_t t = 0; t < trials; ++t) {
          util::Rng rng(0xE600 + t);
          const auto& place_profile =
              scheme == alloc::Scheme::kIndependent ? roomy : profile;
          const auto allocation = alloc::make_allocator(scheme)->allocate(
              catalog, place_profile, k, rng);
          max_load += allocation.max_slot_usage();
          rep_min = std::min(rep_min, allocation.min_replication());
          rep_max = std::max(rep_max, allocation.max_replication());
        }
        max_load /= trials;
        loads.begin_row()
            .cell(alloc::scheme_name(scheme))
            .cell(static_cast<std::uint64_t>(n))
            .cell(static_cast<std::uint64_t>(c))
            .cell(nominal, 4)
            .cell(max_load, 4)
            .cell(max_load / nominal, 3)
            .cell(std::to_string(rep_min) + ".." + std::to_string(rep_max));
      }
    }
  }
  p2pvod::bench::emit(loads, "E6_loads");

  std::cout << '\n';
  util::Table feas("full-suite success rate (n=48, u=1.5, c=4, k=6)");
  feas.set_header({"scheme", "success rate"});
  analysis::TrialSpec spec;
  spec.n = bench::scaled(48, 24);
  spec.u = 1.5;
  spec.d = d;
  spec.mu = 1.3;
  spec.c = 4;
  spec.k = 6;
  spec.duration = 10;
  spec.rounds = 30;
  spec.suite = analysis::WorkloadSuite::kFull;
  for (const auto scheme :
       {alloc::Scheme::kPermutation, alloc::Scheme::kIndependent,
        alloc::Scheme::kRoundRobin}) {
    spec.scheme = scheme;
    const auto rate =
        analysis::Calibrator::success_rate(spec, trials * 2, 0xE6);
    feas.begin_row().cell(alloc::scheme_name(scheme)).cell(rate.estimate, 3);
  }
  p2pvod::bench::emit(feas, "E6_feasibility");
  std::cout << "\nExpected shape: permutation and round-robin overflow "
               "exactly 1.0 (every box\nholds exactly d*c replicas); the "
               "independent scheme overflows the nominal\ncapacity by a "
               "factor that shrinks as c grows — the balls-in-bins "
               "deviation\nbehind Theorem 1's extra c = Omega(log n) "
               "requirement for independent placement.\n";
  return 0;
}
