// Thin shim: the E14 cross-zone traffic figure lives in the scenario
// registry (src/scenario/figures/crosszone.cpp). `p2pvod_bench crosszone` is
// the primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("crosszone"); }
