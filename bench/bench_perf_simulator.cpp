// E12b — simulator round-throughput benchmarks (google-benchmark).
//
// Measures full simulated rounds per second under a steady Zipf audience,
// ablating the incremental matcher (reuse last round's connections) against
// a from-scratch solve each round, and scaling n.
#include <benchmark/benchmark.h>

#include "alloc/permutation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/limiter.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace p2pvod;

struct BenchWorld {
  BenchWorld(std::uint32_t n, bool incremental)
      : catalog(std::max<std::uint32_t>(2, 4 * n / 6), 4, 16),
        profile(model::CapacityProfile::homogeneous(n, 2.0, 4.0)),
        rng(0xBEEF),
        allocation(alloc::PermutationAllocator().allocate(catalog, profile, 6,
                                                          rng)) {
    options.incremental = incremental;
    options.strict = false;
  }

  model::Catalog catalog;
  model::CapacityProfile profile;
  util::Rng rng;
  alloc::Allocation allocation;
  sim::SimulatorOptions options;
};

void run_rounds(benchmark::State& state, bool incremental) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenchWorld world(n, incremental);
  for (auto _ : state) {
    state.PauseTiming();
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(world.catalog, world.profile, world.allocation,
                             strategy, world.options);
    workload::ZipfDemand zipf(world.catalog.video_count(), 0.8, 0.1, 0x51);
    workload::GrowthLimiter limited(zipf, 1.3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(simulator.run(limited, 32).chunks_served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 32.0,
      benchmark::Counter::kIsRate);
}

void BM_SimulatorIncremental(benchmark::State& state) {
  run_rounds(state, true);
}
BENCHMARK(BM_SimulatorIncremental)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorFullRematch(benchmark::State& state) {
  run_rounds(state, false);
}
BENCHMARK(BM_SimulatorFullRematch)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Allocation cost (setup path, not the round loop).
void BM_PermutationAllocate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const model::Catalog catalog(std::max<std::uint32_t>(2, 4 * n / 6), 4, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, 4.0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        alloc::PermutationAllocator()
            .allocate(catalog, profile, 6, rng)
            .max_slot_usage());
  }
}
BENCHMARK(BM_PermutationAllocate)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
