// E12b — simulator round-throughput benchmarks (google-benchmark).
//
// Measures full simulated rounds per second under a steady Zipf audience,
// ablating the incremental matcher (reuse last round's connections) against
// a from-scratch solve each round, and scaling n.
#include <benchmark/benchmark.h>

#include "alloc/permutation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/limiter.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace p2pvod;

struct BenchWorld {
  BenchWorld(std::uint32_t n, bool incremental, bool sparse = false)
      : catalog(std::max<std::uint32_t>(2, 4 * n / 6), 4, 16),
        profile(model::CapacityProfile::homogeneous(n, 2.0, 4.0)),
        rng(0xBEEF),
        allocation(alloc::PermutationAllocator().allocate(catalog, profile, 6,
                                                          rng)) {
    options.incremental = incremental;
    options.sparse = sparse;
    options.strict = false;
  }

  model::Catalog catalog;
  model::CapacityProfile profile;
  util::Rng rng;
  alloc::Allocation allocation;
  sim::SimulatorOptions options;
};

void run_rounds(benchmark::State& state, bool incremental) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenchWorld world(n, incremental);
  for (auto _ : state) {
    state.PauseTiming();
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(world.catalog, world.profile, world.allocation,
                             strategy, world.options);
    workload::ZipfDemand zipf(world.catalog.video_count(), 0.8, 0.1, 0x51);
    workload::GrowthLimiter limited(zipf, 1.3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(simulator.run(limited, 32).chunks_served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 32.0,
      benchmark::Counter::kIsRate);
}

void BM_SimulatorIncremental(benchmark::State& state) {
  run_rounds(state, true);
}
BENCHMARK(BM_SimulatorIncremental)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorFullRematch(benchmark::State& state) {
  run_rounds(state, false);
}
BENCHMARK(BM_SimulatorFullRematch)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Sparse CSR round path (E16) at the same workshop sizes — apples-to-apples
// with the two dense variants above.
void BM_SimulatorSparse(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenchWorld world(n, /*incremental=*/true, /*sparse=*/true);
  for (auto _ : state) {
    state.PauseTiming();
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(world.catalog, world.profile, world.allocation,
                             strategy, world.options);
    workload::ZipfDemand zipf(world.catalog.video_count(), 0.8, 0.1, 0x51);
    workload::GrowthLimiter limited(zipf, 1.3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(simulator.run(limited, 32).chunks_served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 32.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSparse)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Candidate construction at production n: the dense loop re-collects every
// live row every round; the sparse loop only dirtied rows. The rows_built
// counters exported per variant are the apples-to-apples work measure (the
// E16 acceptance bar: sparse wins construction by >= 5x at n >= 1e5).
void run_rounds_at_scale(benchmark::State& state, bool sparse) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenchWorld world(n, /*incremental=*/true, sparse);
  std::uint64_t rows_built = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(world.catalog, world.profile, world.allocation,
                             strategy, world.options);
    workload::ZipfDemand zipf(world.catalog.video_count(), 0.6, 0.01, 0x51);
    state.ResumeTiming();
    benchmark::DoNotOptimize(simulator.run(zipf, 16).chunks_served);
    rows_built += simulator.report().rows_built;
    rounds += 16;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["rows_built/round"] =
      static_cast<double>(rows_built) / static_cast<double>(rounds);
}

void BM_RoundLoopDenseAtScale(benchmark::State& state) {
  run_rounds_at_scale(state, false);
}
BENCHMARK(BM_RoundLoopDenseAtScale)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RoundLoopSparseAtScale(benchmark::State& state) {
  run_rounds_at_scale(state, true);
}
BENCHMARK(BM_RoundLoopSparseAtScale)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Allocation cost (setup path, not the round loop).
void BM_PermutationAllocate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const model::Catalog catalog(std::max<std::uint32_t>(2, 4 * n / 6), 4, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, 4.0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        alloc::PermutationAllocator()
            .allocate(catalog, profile, 6, rng)
            .max_slot_usage());
  }
}
BENCHMARK(BM_PermutationAllocate)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
