// E12a — matching-engine micro-benchmarks (google-benchmark).
//
// The per-round connection matching is the simulator's inner loop; this
// binary measures the three engines on synthetic connection problems shaped
// like real rounds (requests ~ n·c, candidates ~ k + swarm backlog):
//   * Dinic on the §2.3 flow network,
//   * capacity-aware Hopcroft–Karp,
//   * the incremental matcher repairing a previous round's assignment.
#include <benchmark/benchmark.h>

#include "flow/bipartite.hpp"
#include "flow/csr_matcher.hpp"
#include "flow/csr_problem.hpp"
#include "flow/matcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2pvod;

flow::ConnectionProblem make_problem(std::uint32_t boxes,
                                     std::uint32_t requests,
                                     std::uint32_t capacity,
                                     std::uint32_t candidates_per_request,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  flow::ConnectionProblem problem(boxes);
  for (std::uint32_t b = 0; b < boxes; ++b) problem.set_capacity(b, capacity);
  std::vector<std::uint32_t> cands;
  for (std::uint32_t r = 0; r < requests; ++r) {
    cands.clear();
    for (std::uint32_t j = 0; j < candidates_per_request; ++j) {
      cands.push_back(static_cast<std::uint32_t>(rng.next_below(boxes)));
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    problem.add_request(cands);
  }
  return problem;
}

void BM_Dinic(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.solve(flow::Engine::kDinic).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_Dinic)->Arg(64)->Arg(256)->Arg(1024);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        problem.solve(flow::Engine::kHopcroftKarp).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(256)->Arg(1024);

// Incremental repair when 90% of the assignment carries over — the common
// steady-state round (only new joiners and retirements change the problem).
void BM_IncrementalRepair(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  flow::IncrementalMatcher matcher(boxes);
  const auto base =
      matcher.solve(problem, std::vector<std::int32_t>(
                                 problem.request_count(), -1));
  // Invalidate 10% of the carried assignment.
  auto carry = base.assignment;
  for (std::size_t i = 0; i < carry.size(); i += 10) carry[i] = -1;
  for (auto _ : state) {
    flow::IncrementalMatcher fresh(boxes);
    benchmark::DoNotOptimize(fresh.solve(problem, carry).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_IncrementalRepair)->Arg(64)->Arg(256)->Arg(1024);

// --- sparse CSR path (E16) --------------------------------------------------

/// CSR mirror of make_problem's instance (same candidate sets).
flow::CsrProblem make_csr(const flow::ConnectionProblem& problem) {
  flow::CsrProblem csr;
  if (problem.request_count() > 0) csr.ensure_row(problem.request_count() - 1);
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    for (const std::uint32_t b : problem.candidates(r)) csr.add_source(r, b);
  }
  return csr;
}

// Surgical row patches — the per-grant / per-expiry cost the sparse round
// loop pays instead of a full candidate reconstruction.
void BM_CsrPointPatch(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  auto csr = make_csr(problem);
  util::Rng rng(0xC5);
  std::uint64_t patches = 0;
  for (auto _ : state) {
    const auto row =
        static_cast<std::uint32_t>(rng.next_below(problem.request_count()));
    const auto box = static_cast<std::uint32_t>(rng.next_below(boxes));
    csr.add_source(row, box);
    benchmark::DoNotOptimize(csr.remove_source(row, box));
    patches += 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(patches));
}
BENCHMARK(BM_CsrPointPatch)->Arg(256)->Arg(4096);

// Dirty-row rebuild (assign_row from a collected sorted run) — the fallback
// cost when a row's ground truth changed wholesale.
void BM_CsrRowRebuild(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  auto csr = make_csr(problem);
  std::vector<std::uint32_t> row_boxes;
  std::vector<std::uint32_t> counts;
  std::uint32_t next = 0;
  for (auto _ : state) {
    const std::uint32_t r = next++ % problem.request_count();
    row_boxes.assign(problem.candidates(r).begin(),
                     problem.candidates(r).end());
    counts.assign(row_boxes.size(), 1);
    csr.assign_row(r, row_boxes, counts);
    benchmark::DoNotOptimize(csr.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CsrRowRebuild)->Arg(256)->Arg(4096);

// Matching repair with 10% of rows dirtied — CsrMatcher re-augments only the
// dirty rows, where IncrementalMatcher (BM_IncrementalRepair above) re-walks
// the whole carry vector each round.
void BM_CsrMatcherRepair(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  const auto csr = make_csr(problem);
  const std::vector<std::uint32_t>& cap = problem.capacities();
  flow::CsrMatcher matcher(boxes);
  matcher.ensure_rows(problem.request_count());
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    (void)matcher.augment(csr, cap, r);
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::uint32_t> dirty;
    for (std::uint32_t r = 0; r < problem.request_count(); r += 10) {
      if (matcher.assignment(r) >= 0) {
        matcher.unassign(r);
        dirty.push_back(r);
      }
    }
    state.ResumeTiming();
    std::uint32_t repaired = 0;
    for (const std::uint32_t r : dirty) {
      if (matcher.augment(csr, cap, r)) ++repaired;
    }
    benchmark::DoNotOptimize(repaired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count() / 10);
}
BENCHMARK(BM_CsrMatcherRepair)->Arg(64)->Arg(256)->Arg(1024);

// Witness extraction on an infeasible instance (used on every stall).
void BM_InfeasibilityWitness(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  // Capacity 1 with 4x oversubscription: heavily infeasible.
  const auto problem = make_problem(boxes, boxes * 4, 1, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.infeasibility_witness());
  }
}
BENCHMARK(BM_InfeasibilityWitness)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
