// E12a — matching-engine micro-benchmarks (google-benchmark).
//
// The per-round connection matching is the simulator's inner loop; this
// binary measures the three engines on synthetic connection problems shaped
// like real rounds (requests ~ n·c, candidates ~ k + swarm backlog):
//   * Dinic on the §2.3 flow network,
//   * capacity-aware Hopcroft–Karp,
//   * the incremental matcher repairing a previous round's assignment.
#include <benchmark/benchmark.h>

#include "flow/bipartite.hpp"
#include "flow/matcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2pvod;

flow::ConnectionProblem make_problem(std::uint32_t boxes,
                                     std::uint32_t requests,
                                     std::uint32_t capacity,
                                     std::uint32_t candidates_per_request,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  flow::ConnectionProblem problem(boxes);
  for (std::uint32_t b = 0; b < boxes; ++b) problem.set_capacity(b, capacity);
  std::vector<std::uint32_t> cands;
  for (std::uint32_t r = 0; r < requests; ++r) {
    cands.clear();
    for (std::uint32_t j = 0; j < candidates_per_request; ++j) {
      cands.push_back(static_cast<std::uint32_t>(rng.next_below(boxes)));
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    problem.add_request(cands);
  }
  return problem;
}

void BM_Dinic(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.solve(flow::Engine::kDinic).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_Dinic)->Arg(64)->Arg(256)->Arg(1024);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        problem.solve(flow::Engine::kHopcroftKarp).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(256)->Arg(1024);

// Incremental repair when 90% of the assignment carries over — the common
// steady-state round (only new joiners and retirements change the problem).
void BM_IncrementalRepair(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  const auto problem = make_problem(boxes, boxes * 4, 6, 8, 42);
  flow::IncrementalMatcher matcher(boxes);
  const auto base =
      matcher.solve(problem, std::vector<std::int32_t>(
                                 problem.request_count(), -1));
  // Invalidate 10% of the carried assignment.
  auto carry = base.assignment;
  for (std::size_t i = 0; i < carry.size(); i += 10) carry[i] = -1;
  for (auto _ : state) {
    flow::IncrementalMatcher fresh(boxes);
    benchmark::DoNotOptimize(fresh.solve(problem, carry).served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          problem.request_count());
}
BENCHMARK(BM_IncrementalRepair)->Arg(64)->Arg(256)->Arg(1024);

// Witness extraction on an infeasible instance (used on every stall).
void BM_InfeasibilityWitness(benchmark::State& state) {
  const auto boxes = static_cast<std::uint32_t>(state.range(0));
  // Capacity 1 with 4x oversubscription: heavily infeasible.
  const auto problem = make_problem(boxes, boxes * 4, 1, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.infeasibility_witness());
  }
}
BENCHMARK(BM_InfeasibilityWitness)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
