// Thin shim: the E11 baseline figure lives in the scenario registry
// (src/scenario/figures/baseline.cpp). `p2pvod_bench baseline` is the
// primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("baseline"); }
