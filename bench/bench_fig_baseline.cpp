// E11 — random allocation vs the full-replication baseline (Suh et al. [22]).
//
// The baseline stores a 1/c slice of every video on every box: it survives
// even u < 1 (pure sourcing, massive per-stripe replication) but its catalog
// is pinned at d·c regardless of n — exactly the §1.3 constant-catalog
// regime the paper improves on. The paper's random allocation needs u > 1
// but scales the catalog linearly in n.
#include <iostream>

#include "alloc/full_replication.hpp"
#include "alloc/permutation.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"

namespace {
using namespace p2pvod;

bool survives(const model::Catalog& catalog,
              const model::CapacityProfile& profile,
              const alloc::Allocation& allocation, std::uint64_t seed) {
  sim::PreloadingStrategy strategy;
  sim::Simulator simulator(catalog, profile, allocation, strategy);
  workload::SequentialViewer viewers(seed, 0.3);
  workload::GrowthLimiter limited(viewers, 1.3);
  return simulator.run(limited, 48).success;
}
}  // namespace

int main() {
  bench::banner("E11 / baseline figure",
                "catalog: full replication (constant) vs random (linear in n)");

  const double d = 4.0;
  const std::uint32_t c = 4, k = 6;

  util::Table table("catalog size and survival (binge workload, mu=1.3)");
  table.set_header({"n", "scheme", "u", "catalog m", "m/n", "survives"});
  for (const std::uint32_t n : {16u, 32u, 64u, bench::scaled(128, 96)}) {
    // Full replication: m = d*c, works below the threshold.
    {
      const auto profile = model::CapacityProfile::homogeneous(n, 0.75, d);
      const auto m = alloc::FullReplicationAllocator::max_catalog(profile, c);
      const model::Catalog catalog(m, c, 12);
      util::Rng rng(0xE1100 + n);
      const auto allocation = alloc::FullReplicationAllocator().allocate(
          catalog, profile, 1, rng);
      table.begin_row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("full-replication [22]")
          .cell(0.75)
          .cell(static_cast<std::uint64_t>(m))
          .cell(static_cast<double>(m) / n, 3)
          .cell(survives(catalog, profile, allocation, 0xE11A + n));
    }
    // Random permutation allocation: m = d*n/k, needs u > 1.
    {
      const auto profile = model::CapacityProfile::homogeneous(n, 1.5, d);
      const auto m = static_cast<std::uint32_t>(d * n / k);
      const model::Catalog catalog(m, c, 12);
      util::Rng rng(0xE1200 + n);
      const auto allocation =
          alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
      table.begin_row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("random permutation")
          .cell(1.5)
          .cell(static_cast<std::uint64_t>(m))
          .cell(static_cast<double>(m) / n, 3)
          .cell(survives(catalog, profile, allocation, 0xE11B + n));
    }
  }
  p2pvod::bench::emit(table, "E11_baseline");
  std::cout << "\nExpected shape: the baseline's catalog column is constant "
               "(d*c, independent of\nn) while the random allocation's grows "
               "linearly (m/n constant); both survive\ntheir respective "
               "operating points.\n";
  return 0;
}
