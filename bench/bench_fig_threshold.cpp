// Thin shim: the E2 threshold figure lives in the scenario registry
// (src/scenario/figures/threshold.cpp) and runs on the parallel sweep
// engine. This binary is kept for muscle memory — `p2pvod_bench threshold`
// is the primary entry point — and produces byte-identical output.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("threshold"); }
