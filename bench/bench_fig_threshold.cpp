// E2 — the upload-bandwidth threshold (abstract, §1.3, Theorem 1).
//
// Sweep the normalized upload capacity u across 1.0 and measure the fraction
// of (allocation, adversarial run) trials that survive. The paper predicts a
// phase transition at u = 1: below it the avoider adversary starves any
// linear catalog; above it a random allocation with constant k absorbs every
// µ-bounded sequence with high probability.
//
// Protocol held fixed (c=4, k=6, m=d·n/k) so the only moving part is u. The
// u grid runs on the sweep engine: points execute in parallel across cores,
// with per-cell seeds pinned to 0xE2 (the sweep's derived seeds are ignored)
// so the figure data is identical to the original serial harness.
#include <cstdint>
#include <iostream>
#include <vector>

#include "analysis/calibrate.hpp"
#include "bench_common.hpp"
#include "sweep/parameter_grid.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E2 / threshold figure",
                "success probability vs u: phase transition at u = 1");

  const std::uint32_t trials = bench::scaled(8, 2);
  analysis::TrialSpec base;
  base.n = bench::scaled(48, 24);
  base.d = 4.0;
  base.mu = 1.3;
  base.c = 4;
  base.k = 6;
  base.duration = 12;
  base.rounds = 36;

  sweep::ParameterGrid grid(base);
  grid.axis("u", {0.60, 0.80, 0.90, 0.95, 1.05, 1.10, 1.25, 1.50, 2.00,
                  3.00});

  // One grid point per u; the four workload suites are that point's metric
  // columns (plus the Wilson interval of the full suite).
  const sweep::SweepRunner runner;
  const auto result = runner.run(
      grid, {"avoider", "flash", "distinct", "full", "full_lo", "full_hi"},
      [trials](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
        std::vector<double> metrics;
        for (const auto suite :
             {analysis::WorkloadSuite::kAvoider,
              analysis::WorkloadSuite::kFlashCrowd,
              analysis::WorkloadSuite::kDistinct,
              analysis::WorkloadSuite::kFull}) {
          auto spec = point.spec;
          spec.suite = suite;
          const auto rate =
              analysis::Calibrator::success_rate(spec, trials, 0xE2);
          metrics.push_back(rate.estimate);
          if (suite == analysis::WorkloadSuite::kFull) {
            metrics.push_back(rate.lower);
            metrics.push_back(rate.upper);
          }
        }
        return metrics;
      });

  util::Table table("success fraction over " + std::to_string(trials) +
                    " seeds, n=" + std::to_string(base.n) +
                    ", c=4, k=6, m=d*n/k");
  table.set_header({"u", "avoider", "flash crowd", "distinct", "full suite",
                    "full 95% CI"});
  for (const auto& row : result.rows()) {
    table.begin_row().cell(row.point.values[0]);
    for (std::size_t metric = 0; metric < 4; ++metric) {
      table.cell(row.metrics[metric], 3);
    }
    std::string interval = "[";
    interval += util::Table::format_double(row.metrics[4], 2);
    interval += ",";
    interval += util::Table::format_double(row.metrics[5], 2);
    interval += "]";
    table.cell(interval);
  }
  p2pvod::bench::emit(table, "E2_threshold");
  std::cout << "\nExpected shape: ~0 for u < 1 (the Section 1.3 avoider "
               "argument), ~1 for u\ncomfortably above 1 (Theorem 1); the "
               "transition sits at the threshold u = 1.\n";
  return 0;
}
