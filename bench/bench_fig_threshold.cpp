// E2 — the upload-bandwidth threshold (abstract, §1.3, Theorem 1).
//
// Sweep the normalized upload capacity u across 1.0 and measure the fraction
// of (allocation, adversarial run) trials that survive. The paper predicts a
// phase transition at u = 1: below it the avoider adversary starves any
// linear catalog; above it a random allocation with constant k absorbs every
// µ-bounded sequence with high probability.
//
// Protocol held fixed (c=4, k=6, m=d·n/k) so the only moving part is u.
#include <iostream>

#include "analysis/calibrate.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E2 / threshold figure",
                "success probability vs u: phase transition at u = 1");

  const std::uint32_t trials = bench::scaled(8, 2);
  analysis::TrialSpec spec;
  spec.n = bench::scaled(48, 24);
  spec.d = 4.0;
  spec.mu = 1.3;
  spec.c = 4;
  spec.k = 6;
  spec.duration = 12;
  spec.rounds = 36;

  util::Table table("success fraction over " + std::to_string(trials) +
                    " seeds, n=" + std::to_string(spec.n) +
                    ", c=4, k=6, m=d*n/k");
  table.set_header({"u", "avoider", "flash crowd", "distinct", "full suite",
                    "full 95% CI"});
  for (const double u : {0.60, 0.80, 0.90, 0.95, 1.05, 1.10, 1.25, 1.50,
                         2.00, 3.00}) {
    spec.u = u;
    table.begin_row().cell(u);
    for (const auto suite :
         {analysis::WorkloadSuite::kAvoider,
          analysis::WorkloadSuite::kFlashCrowd,
          analysis::WorkloadSuite::kDistinct, analysis::WorkloadSuite::kFull}) {
      spec.suite = suite;
      const auto rate =
          analysis::Calibrator::success_rate(spec, trials, 0xE2);
      table.cell(rate.estimate, 3);
      if (suite == analysis::WorkloadSuite::kFull) {
        std::string interval = "[";
        interval += util::Table::format_double(rate.lower, 2);
        interval += ",";
        interval += util::Table::format_double(rate.upper, 2);
        interval += "]";
        table.cell(interval);
      }
    }
  }
  p2pvod::bench::emit(table, "E2_threshold");
  std::cout << "\nExpected shape: ~0 for u < 1 (the Section 1.3 avoider "
               "argument), ~1 for u\ncomfortably above 1 (Theorem 1); the "
               "transition sits at the threshold u = 1.\n";
  return 0;
}
