// Thin shim: the E8 trade-off figure lives in the scenario registry
// (src/scenario/figures/tradeoff.cpp). `p2pvod_bench tradeoff` is the
// primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("tradeoff"); }
