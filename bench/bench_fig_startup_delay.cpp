// E9 — constant start-up delay (§1.1, §3, §4).
//
// The model requires a constant start-up delay; the §3 preloading schedule
// yields exactly 3 rounds (demand in [t−1,t[, preload at t, postponed at
// t+1, playback from t+2), naive 2 rounds, and the §4 relay schedule for
// poor boxes doubles the cadence (≈6 rounds). Measured across workloads.
#include <iostream>

#include "alloc/permutation.hpp"
#include "bench_common.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"
#include "workload/zipf.hpp"

namespace {
using namespace p2pvod;

void measure(util::Table& table, const std::string& label,
             sim::RunReport report) {
  const auto& h = report.startup_delay;
  table.begin_row()
      .cell(label)
      .cell(h.total())
      .cell(h.total() ? h.min() : 0)
      .cell(h.total() ? h.percentile(0.5) : 0)
      .cell(h.total() ? h.max() : 0)
      .cell(h.total() ? h.mean() : 0.0, 4);
}
}  // namespace

int main() {
  bench::banner("E9 / start-up delay figure",
                "constant start-up delay: 3 rounds (Sec. 3), x2 under relay");

  const std::uint32_t n = bench::scaled(64, 32);
  const std::uint32_t c = 4, k = 6;
  const auto m = static_cast<std::uint32_t>(4.0 * n / k);
  const model::Catalog catalog(m, c, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, 4.0);
  util::Rng rng(0xE9);
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);

  util::Table table("start-up delay distribution (rounds)");
  table.set_header({"scenario", "sessions", "min", "p50", "max", "mean"});

  {
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(catalog, profile, allocation, strategy);
    workload::ZipfDemand zipf(m, 0.8, 0.08, 0xE901);
    workload::GrowthLimiter limited(zipf, 1.3);
    measure(table, "preloading + zipf", simulator.run(limited, 60));
  }
  {
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(catalog, profile, allocation, strategy);
    workload::FlashCrowd crowd(0, 1.6);
    measure(table, "preloading + flash crowd", simulator.run(crowd, 48));
  }
  {
    sim::PreloadingStrategy strategy;
    sim::Simulator simulator(catalog, profile, allocation, strategy);
    workload::SequentialViewer binge(0xE902, 0.4);
    workload::GrowthLimiter limited(binge, 1.3);
    measure(table, "preloading + binge", simulator.run(limited, 60));
  }
  {
    sim::NaiveStrategy strategy;
    sim::SimulatorOptions options;
    options.strict = false;  // naive may stall; delays are still scheduled
    sim::Simulator simulator(catalog, profile, allocation, strategy, options);
    workload::ZipfDemand zipf(m, 0.8, 0.08, 0xE903);
    workload::GrowthLimiter limited(zipf, 1.3);
    measure(table, "naive + zipf", simulator.run(limited, 60));
  }
  {
    // Heterogeneous: poor boxes relay through rich ones (delay doubles).
    const auto hetero_profile =
        model::CapacityProfile::two_class(n, n / 4, 0.5, 1.5, 4.0, 12.0);
    const auto plan = hetero::Compensator::plan(hetero_profile, 1.5, 16, 1.0);
    if (plan) {
      const auto hm = std::max<std::uint32_t>(
          2, static_cast<std::uint32_t>(hetero_profile.average_storage() * n /
                                        (2.0 * k)));
      const model::Catalog hetero_catalog(hm, 16, 20);
      util::Rng hetero_rng(0xE904);
      const auto hetero_allocation = alloc::PermutationAllocator().allocate(
          hetero_catalog, hetero_profile, k, hetero_rng);
      hetero::RelayStrategy strategy(*plan);
      sim::SimulatorOptions options;
      options.capacity_override = plan->capacity_slots();
      options.strict = false;
      sim::Simulator simulator(hetero_catalog, hetero_profile,
                               hetero_allocation, strategy, options);
      workload::ZipfDemand zipf(hm, 0.8, 0.08, 0xE905);
      workload::GrowthLimiter limited(zipf, 1.2);
      measure(table, "relay (Sec. 4) + zipf", simulator.run(limited, 60));
    }
  }
  p2pvod::bench::emit(table, "E9_startup");
  std::cout << "\nExpected shape: preloading rows pinned at 3 rounds for "
               "every workload; naive\nat 2; the Section 4 relay schedule "
               "roughly doubles the poor boxes' delay\n(max column ~6) while "
               "rich boxes stay at 4 (postponed at t+2).\n";
  return 0;
}
