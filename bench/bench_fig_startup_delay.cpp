// Thin shim: the E9 start-up delay figure lives in the scenario registry
// (src/scenario/figures/startup_delay.cpp). `p2pvod_bench startup_delay` is
// the primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("startup_delay"); }
