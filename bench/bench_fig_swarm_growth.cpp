// E5 — swarm growth vs stripe count (Theorem 1 / Lemma 2).
//
// Theorem 1 needs c > (2µ²−1)/(u−1) stripes for the preloading strategy to
// absorb swarms growing by µ each round. We drive a maximal-growth flash
// crowd against fixed (n, u, k) for a (µ, c) grid and report survival —
// the empirical frontier should track the theory's hyperbola, and the naive
// strategy should fail almost everywhere (the §3 ablation).
#include <iostream>

#include "alloc/permutation.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/flash_crowd.hpp"

namespace {

bool survives(std::uint32_t n, double u, double mu, std::uint32_t c,
              std::uint32_t k, p2pvod::sim::StrategyKind kind,
              std::uint64_t seed) {
  using namespace p2pvod;
  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(4.0 * n / k));
  const model::Catalog catalog(m, c, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, u, 4.0);
  util::Rng rng(seed);
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
  const auto strategy = sim::make_strategy(kind);
  sim::Simulator simulator(catalog, profile, allocation, *strategy);
  workload::FlashCrowd crowd(0, mu);
  return simulator.run(crowd, 48).success;
}

}  // namespace

int main() {
  using namespace p2pvod;
  bench::banner("E5 / swarm-growth figure",
                "flash-crowd survival over (mu, c); theory: c > (2mu^2-1)/(u-1)");

  const std::uint32_t n = bench::scaled(96, 48);
  const double u = 1.5;
  const std::uint32_t k = 4;
  const std::uint32_t trials = bench::scaled(3, 1);

  util::Table table("preloading strategy, n=" + std::to_string(n) +
                    ", u=1.5, k=4 (fraction of seeds surviving)");
  std::vector<std::string> header{"mu", "theory c >"};
  for (const std::uint32_t c : {1u, 2u, 4u, 8u, 16u})
    header.push_back("c=" + std::to_string(c));
  header.push_back("naive @ c=8");
  table.set_header(header);

  for (const double mu : {1.2, 1.5, 2.0, 3.0}) {
    const double frontier = (2.0 * mu * mu - 1.0) / (u - 1.0);
    table.begin_row().cell(mu).cell(frontier, 3);
    for (const std::uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
      std::uint32_t wins = 0;
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (survives(n, u, mu, c, k, sim::StrategyKind::kPreloading,
                     0xE500 + t)) {
          ++wins;
        }
      }
      table.cell(static_cast<double>(wins) / trials, 2);
    }
    std::uint32_t naive_wins = 0;
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (survives(n, u, mu, 8, k, sim::StrategyKind::kNaive, 0xE550 + t))
        ++naive_wins;
    }
    table.cell(static_cast<double>(naive_wins) / trials, 2);
  }
  p2pvod::bench::emit(table, "E5_swarm_growth");
  std::cout
      << "\nExpected shape: c=1 fails at every mu — the effective upload "
         "u' = floor(u*c)/c\ndegenerates to exactly 1, the threshold. "
         "Survival then flips to 1 once c gives\nthe swarm headroom; the "
         "empirical frontier is *looser* than the theory column\n(the "
         "theorem quantifies over all adversaries, the flash crowd is just "
         "the natural\nworst case for swarming). The naive strategy needs "
         "far more slack: at mu=3 it\ncollapses where preloading still "
         "survives, because same-wave joiners sit at\nidentical positions "
         "and cannot serve each other.\n";
  return 0;
}
