// Thin shim: the E5 swarm-growth figure lives in the scenario registry
// (src/scenario/figures/swarm_growth.cpp). `p2pvod_bench swarm_growth` is
// the primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("swarm_growth"); }
