// Thin shim: the E3 catalog-scaling figure lives in the scenario registry
// (src/scenario/figures/catalog_scaling.cpp). `p2pvod_bench catalog_scaling`
// is the primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("catalog_scaling"); }
