// E3 — catalog scalability (abstract, §1.3 vs Theorem 1).
//
// For u > 1 the maximum feasible catalog must grow linearly with n (Theorem
// 1: m = Ω(n)); for u < 1 it is pinned at the constant d_max·c = d_max/ℓ
// (§1.3). We measure the empirical maximum catalog by binary search: largest
// m such that a random permutation allocation with k = ⌊d·n/m⌋ survives the
// full adversarial suite.
#include <iostream>

#include "analysis/calibrate.hpp"
#include "analysis/impossibility.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E3 / catalog scaling figure",
                "max feasible catalog vs n: linear above u=1, constant below");

  const std::uint32_t trials = bench::scaled(4, 2);
  analysis::TrialSpec spec;
  spec.d = 4.0;
  spec.mu = 1.3;
  spec.c = 4;
  spec.duration = 10;
  spec.rounds = 30;
  spec.suite = analysis::WorkloadSuite::kFull;

  util::Table table("empirical max catalog (binary search, full suite, " +
                    std::to_string(trials) + " seeds/point)");
  table.set_header({"n", "u=1.5: max m", "m/n", "k used", "u=0.75: max m",
                    "Sec1.3 limit d*c"});
  const auto limit = static_cast<std::uint32_t>(spec.d * spec.c);
  for (const std::uint32_t n : {16u, 32u, 64u, bench::scaled(128, 96)}) {
    spec.n = n;
    spec.u = 1.5;
    const auto scalable =
        analysis::Calibrator::max_catalog(spec, 1.0, trials, 0xE3);
    spec.u = 0.75;
    const auto starved =
        analysis::Calibrator::max_catalog(spec, 1.0, trials, 0xE3);
    table.begin_row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(scalable.m))
        .cell(n == 0 ? 0.0 : static_cast<double>(scalable.m) / n, 3)
        .cell(static_cast<std::uint64_t>(scalable.k))
        .cell(static_cast<std::uint64_t>(starved.m))
        .cell(static_cast<std::uint64_t>(limit));
  }
  p2pvod::bench::emit(table, "E3_catalog_scaling");
  std::cout << "\nExpected shape: the u=1.5 column grows ~linearly in n "
               "(m/n roughly constant);\nthe u=0.75 column stays below the "
               "Section 1.3 constant d*c regardless of n.\n";
  return 0;
}
