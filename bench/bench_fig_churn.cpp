// E13 (extension, not in the paper) — churn tolerance of the static
// allocation.
//
// The paper's allocation is computed once and never repaired; the natural
// systems question is how much box churn it absorbs before repair would be
// needed. Each round every online box fails independently with probability
// p (and recovers after `outage` rounds); a Zipf audience keeps demanding.
// The replication factor k is the knob: more replicas per stripe keep
// stripes reachable through failures. We report playback continuity
// (fraction of chunk deadlines met, non-strict mode).
#include <iostream>

#include "alloc/permutation.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace p2pvod;

struct ChurnOutcome {
  double continuity = 0.0;
  double failures = 0.0;
  double aborted = 0.0;
};

ChurnOutcome run_churn(std::uint32_t n, std::uint32_t k, double fail_prob,
                       model::Round outage, std::uint32_t trials) {
  const std::uint32_t c = 4;
  const double d = 4.0;
  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(d * n / k));
  const model::Catalog catalog(m, c, 12);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, d);

  ChurnOutcome out;
  for (std::uint32_t t = 0; t < trials; ++t) {
    util::Rng rng(0xE1300 + t);
    const auto allocation =
        alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
    sim::PreloadingStrategy strategy;
    sim::SimulatorOptions options;
    options.strict = false;
    sim::Simulator simulator(catalog, profile, allocation, strategy, options);
    workload::ZipfDemand audience(m, 0.8, 0.15, 0xE13AA + t);

    std::vector<model::Round> down_until(n, -1);
    for (model::Round round = 0; round < 72; ++round) {
      for (model::BoxId b = 0; b < n; ++b) {
        if (down_until[b] >= 0 && round >= down_until[b]) {
          simulator.set_box_online(b, true);
          down_until[b] = -1;
        } else if (down_until[b] < 0 && rng.next_bool(fail_prob)) {
          simulator.set_box_online(b, false);
          down_until[b] = round + outage;
        }
      }
      simulator.step(audience.demands(simulator));
    }
    const auto& report = simulator.report();
    out.continuity += report.continuity();
    out.failures += static_cast<double>(report.box_failures);
    out.aborted += static_cast<double>(report.sessions_aborted);
  }
  out.continuity /= trials;
  out.failures /= trials;
  out.aborted /= trials;
  return out;
}

}  // namespace

int main() {
  bench::banner("E13 / churn figure (extension)",
                "playback continuity vs per-round failure probability and k");

  const std::uint32_t n = bench::scaled(48, 24);
  const std::uint32_t trials = bench::scaled(3, 2);
  const model::Round outage = 6;

  util::Table table("n=" + std::to_string(n) +
                    ", u=2, c=4, outage=6 rounds, 72-round Zipf soak (" +
                    std::to_string(trials) + " seeds)");
  std::vector<std::string> header{"fail prob/round"};
  for (const std::uint32_t k : {2u, 4u, 8u})
    header.push_back("k=" + std::to_string(k) + " continuity");
  header.push_back("failures (k=4)");
  header.push_back("aborted (k=4)");
  table.set_header(header);

  for (const double p : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
    table.begin_row().cell(p);
    ChurnOutcome mid{};
    for (const std::uint32_t k : {2u, 4u, 8u}) {
      const auto outcome = run_churn(n, k, p, outage, trials);
      if (k == 4) mid = outcome;
      table.cell(outcome.continuity, 4);
    }
    table.cell(mid.failures, 3);
    table.cell(mid.aborted, 3);
  }
  p2pvod::bench::emit(table, "E13_churn");
  std::cout << "\nExpected shape: continuity 1.0 with no churn, degrading as "
               "the failure rate\ngrows; higher k tolerates visibly more "
               "churn (a stripe stays reachable while\nany of its k holders "
               "lives). Aborted sessions grow ~linearly with the failure\n"
               "rate regardless of k (a failed viewer always loses its own "
               "playback).\n";
  return 0;
}
