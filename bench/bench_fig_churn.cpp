// Thin shim: the E13 churn figure lives in the scenario registry
// (src/scenario/figures/churn.cpp). `p2pvod_bench churn` is the primary
// entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("churn"); }
