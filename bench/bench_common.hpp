// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::bench {

/// Standard experiment banner: which table/figure this regenerates.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "#\n# " << id << " — " << claim << "\n"
            << "# (scale trials/sizes with P2PVOD_SCALE=<factor>; set "
               "P2PVOD_CSV_DIR to also write CSV series)\n#\n";
}

/// Trial count scaled by P2PVOD_SCALE, with a floor of `min_trials`.
inline std::uint32_t scaled(std::uint32_t base, std::uint32_t min_value = 1) {
  const double scale = util::bench_scale();
  const double value = static_cast<double>(base) * scale;
  return value < min_value ? min_value : static_cast<std::uint32_t>(value);
}

/// Print the table and, when P2PVOD_CSV_DIR is set, also write it as
/// <dir>/<id>.csv — the plottable artifact for each figure.
inline void emit(const util::Table& table, const std::string& id) {
  table.print(std::cout);
  if (const char* dir = std::getenv("P2PVOD_CSV_DIR"); dir != nullptr) {
    const std::string path = std::string(dir) + "/" + id + ".csv";
    try {
      table.write_csv(path);
      std::cout << "[csv] " << path << "\n";
    } catch (const std::exception& error) {
      std::cerr << "[csv] failed: " << error.what() << "\n";
    }
  }
}

}  // namespace p2pvod::bench
