// Thin shim: the E4 replication figure lives in the scenario registry
// (src/scenario/figures/replication.cpp). `p2pvod_bench replication` is the
// primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("replication"); }
