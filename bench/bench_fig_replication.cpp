// E4 — the replication factor k (Theorem 1).
//
// Theorem 1 prescribes k >= 5ν⁻¹ log d′ / log u′ replicas per stripe — a
// worst-case constant. This experiment puts three quantities side by side
// for a sweep of u:
//   * the theorem's k (asymptotic, adversarial, with-high-probability),
//   * the first-moment numeric k: smallest k whose union bound (the exact
//     Lemma 4 sum at this finite n) drops below 1%,
//   * the empirical minimum k that survives the simulated adversarial suite.
// Expected shape: all three decrease sharply as u moves away from 1; the
// theory dominates the numeric bound, which dominates the measured k.
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/first_moment.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E4 / replication figure",
                "replicas per stripe: Theorem 1 vs union bound vs measured");

  const std::uint32_t trials = bench::scaled(4, 2);
  const std::uint32_t n = bench::scaled(48, 24);
  const double d = 4.0;
  const double mu = 1.2;

  util::Table table("k required at n=" + std::to_string(n) +
                    ", d=4, mu=1.2 (c fixed per row at Theorem 1's choice)");
  table.set_header({"u", "c", "Thm1 k", "union-bound k (P<1%)",
                    "measured min k", "catalog m at measured k"});
  for (const double u : {1.25, 1.5, 2.0, 3.0}) {
    const auto bounds = analysis::Theorem1::evaluate({u, d, mu});
    analysis::FirstMomentParams fm;
    fm.n = n;
    fm.c = bounds.c;
    fm.u = u;
    fm.d = d;
    fm.mu = mu;
    const auto k_union = analysis::FirstMoment::min_k_for_bound(
        fm, 0.01, 1, static_cast<std::uint32_t>(d * n));

    analysis::TrialSpec spec;
    spec.n = n;
    spec.u = u;
    spec.d = d;
    spec.mu = mu;
    spec.c = std::min<std::uint32_t>(bounds.c, 8);  // keep runtime sane
    spec.duration = 10;
    spec.rounds = 30;
    spec.suite = analysis::WorkloadSuite::kFull;
    const auto measured = analysis::Calibrator::min_feasible_k(
        spec, 1, static_cast<std::uint32_t>(d * n / 2), 1.0, trials, 0xE4);

    table.begin_row()
        .cell(u)
        .cell(static_cast<std::uint64_t>(bounds.c))
        .cell(bounds.valid ? std::to_string(bounds.k) : std::string("-"))
        .cell(k_union == 0 ? std::string("> d*n")
                           : std::to_string(k_union))
        .cell(measured.k == 0 ? std::string("-")
                              : std::to_string(measured.k))
        .cell(static_cast<std::uint64_t>(measured.catalog));
  }
  p2pvod::bench::emit(table, "E4_replication");
  std::cout << "\nExpected shape: theory k >> union-bound k >> measured k "
               "(each layer sheds\nworst-case slack), and every column "
               "shrinks as u grows away from the threshold.\n";
  return 0;
}
