// p2pvod_bench — unified driver for the paper's figure/table scenarios.
//
//   p2pvod_bench --list                      enumerate registered scenarios
//   p2pvod_bench threshold churn             run selected scenarios
//   p2pvod_bench --all                       run every scenario
//
// Options (every --flag also reads env var P2PVOD_<FLAG>):
//   --scale X        trial/size scale factor (exports P2PVOD_SCALE)
//   --threads N      thread-pool size (exports P2PVOD_THREADS; 0 = all cores)
//   --zones N        zone count for the topology scenarios E14/E15/E17
//                    (exports P2PVOD_ZONES)
//   --seed S         sweep base seed (figures pin their own seeds; this only
//                    affects scenarios that consume the derived per-point seed)
//   --json-dir DIR   where BENCH_<id>.json files go (default ".")
//   --no-json        skip the JSON result files
//   --csv-dir DIR    also write per-figure CSV tables
//   --no-tables      suppress the human stdout tables
//   --baseline PATH  diff results against PATH (a BENCH_<id>.json file for a
//                    single scenario, or a directory of them); exit 1 on any
//                    metric/wall-time regression beyond tolerance
//   --rtol X         relative metric tolerance     (default 1e-6)
//   --atol X         absolute metric tolerance     (default 1e-9)
//   --wall-factor X  wall-time budget multiplier   (default 3; 0 disables)
//   --wall-slack X   wall-time absolute slack, sec (default 0.25)
//
// Scenario stdout (tables, commentary) is byte-identical to the legacy
// bench_fig_* binaries and is the only thing written to stdout; progress and
// diagnostics go to stderr so output stays diffable.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <optional>
#include <string>
#include <vector>

#include "scenario/baseline.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace p2pvod;

void print_usage() {
  std::cout <<
      "usage: p2pvod_bench [--list] [--all | <scenario id>...] [options]\n"
      "\n"
      "options:\n"
      "  --list           list registered scenarios and exit\n"
      "  --all            run every registered scenario\n"
      "  --scale X        trial/size scale factor (default: P2PVOD_SCALE or 1)\n"
      "  --threads N      thread-pool size (default: P2PVOD_THREADS or cores)\n"
      "  --zones N        zone count for the E14/E15/E17 topology scenarios\n"
      "                   (default: P2PVOD_ZONES; 4 for E14/E15, 12 for E17)\n"
      "  --seed S         sweep base seed (figure scenarios pin their own)\n"
      "  --json-dir DIR   directory for BENCH_<id>.json results (default .)\n"
      "  --no-json        do not write JSON result files\n"
      "  --csv-dir DIR    also write per-figure CSV tables\n"
      "  --no-tables      suppress human-readable stdout tables\n"
      "  --baseline PATH  diff against stored BENCH_<id>.json baseline(s);\n"
      "                   exit 1 on regressions beyond tolerance\n"
      "  --rtol X         relative metric tolerance (default 1e-6)\n"
      "  --atol X         absolute metric tolerance (default 1e-9)\n"
      "  --wall-factor X  wall-time budget = baseline*X + slack (default 3,\n"
      "                   0 disables the wall-time check)\n"
      "  --wall-slack X   wall-time absolute slack in seconds (default 0.25)\n"
      "  --metrics        attach the obs metric deltas to BENCH_<id>.json\n"
      "                   (also enabled by P2PVOD_METRICS=1)\n"
      "  --trace DIR      record span traces; writes DIR/TRACE_<id>.json in\n"
      "                   Chrome trace-event format (also P2PVOD_TRACE=DIR)\n"
      "  --profile DIR    aggregate spans into a call-tree profile; writes\n"
      "                   DIR/PROFILE_<id>.json and .collapsed (flamegraph\n"
      "                   collapsed-stack text; also P2PVOD_PROFILE=DIR)\n"
      "  --series DIR     record per-round metric deltas; writes\n"
      "                   DIR/SERIES_<id>.csv and .json (also\n"
      "                   P2PVOD_SERIES=DIR)\n"
      "  --help           this text\n";
}

bool is_directory(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_directory(path, ec);
}

}  // namespace

int main(int argc, char** argv) {
  // Flags that never take a value: a scenario id after "--no-json" must stay
  // positional instead of being swallowed as the flag's value.
  util::ArgParser args(argc, argv,
                       {"list", "all", "no-json", "no-tables", "metrics",
                        "help"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  // Reject misspelled options: "--basline dir" must not silently skip the
  // regression diff it was meant to run.
  static const std::vector<std::string> kKnownOptions = {
      "all",       "atol",     "baseline", "csv-dir",    "help",
      "json-dir",  "list",     "metrics",  "no-json",    "no-tables",
      "profile",   "rtol",     "scale",    "seed",       "series",
      "threads",   "trace",    "wall-factor", "wall-slack", "zones"};
  for (const std::string& name : args.option_names()) {
    if (std::find(kKnownOptions.begin(), kKnownOptions.end(), name) ==
        kKnownOptions.end()) {
      std::cerr << "p2pvod_bench: unknown option '--" << name
                << "' (see --help)\n";
      return 2;
    }
  }

  // Export --scale / --threads so util::bench_scale() and the global pool
  // (both read environment variables, possibly lazily) observe them. Must
  // happen before any scenario or pool is touched. Validate first: the env
  // readers silently fall back on garbage, which would turn a typo into a
  // full-scale run.
  try {
    if (args.get_double("scale", 1.0) <= 0.0) {
      throw std::invalid_argument("option --scale: must be > 0");
    }
    (void)args.get_int("threads", 0);
    if (args.get_int("zones", 1) <= 0) {
      throw std::invalid_argument("option --zones: must be > 0");
    }
  } catch (const std::exception& error) {
    std::cerr << "p2pvod_bench: " << error.what() << "\n";
    return 2;
  }
  if (const auto scale = args.get("scale"); scale.has_value()) {
    setenv("P2PVOD_SCALE", scale->c_str(), 1);
  }
  if (const auto threads = args.get("threads"); threads.has_value()) {
    setenv("P2PVOD_THREADS", threads->c_str(), 1);
  }
  if (const auto zones = args.get("zones"); zones.has_value()) {
    setenv("P2PVOD_ZONES", zones->c_str(), 1);
  }

  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::builtin();

  if (args.get_bool("list", false)) {
    util::Table table("registered scenarios");
    table.set_header({"id", "figure", "claim"});
    for (const scenario::Scenario* entry : registry.list()) {
      table.add_row({entry->id, entry->figure, entry->claim});
    }
    table.print(std::cout);
    return 0;
  }

  std::vector<const scenario::Scenario*> selected;
  if (args.get_bool("all", false)) {
    selected = registry.list();
  } else {
    for (const std::string& id : args.positional()) {
      const scenario::Scenario* entry = registry.find(id);
      if (entry == nullptr) {
        std::cerr << "p2pvod_bench: unknown scenario '" << id << "'\n"
                  << "known scenarios:";
        for (const scenario::Scenario* known : registry.list()) {
          std::cerr << ' ' << known->id;
        }
        std::cerr << "\n";
        return 2;
      }
      selected.push_back(entry);
    }
  }
  if (selected.empty()) {
    print_usage();
    return 2;
  }

  // Assemble the sink stack.
  scenario::TableSink table_sink(std::cout);
  std::optional<scenario::CsvSink> csv_sink;
  std::optional<scenario::JsonSink> json_sink;
  scenario::CaptureSink capture_sink;

  std::vector<scenario::ResultSink*> sinks;
  if (!args.get_bool("no-tables", false)) sinks.push_back(&table_sink);
  if (const auto dir = args.get("csv-dir"); dir.has_value()) {
    // Notices to stderr: stdout carries scenario tables only (the legacy
    // shims keep "[csv]" on stdout for byte-compatibility; the driver does
    // not have that constraint and promises diffable stdout).
    csv_sink.emplace(*dir, &std::cerr);
    sinks.push_back(&*csv_sink);
  }
  if (!args.get_bool("no-json", false)) {
    json_sink.emplace(args.get_string("json-dir", "."), &std::cerr);
    sinks.push_back(&*json_sink);
  }
  const auto baseline_path = args.get("baseline");
  if (baseline_path.has_value()) sinks.push_back(&capture_sink);

  scenario::BaselineOptions tolerance;
  scenario::RunOptions run_options;
  // Environment knobs first, command-line flags second so flags win.
  scenario::apply_obs_env(run_options);
  if (args.get_bool("metrics", false)) run_options.collect_metrics = true;
  if (const auto trace_dir = args.get("trace"); trace_dir.has_value()) {
    run_options.trace_dir = *trace_dir;
  }
  if (const auto profile_dir = args.get("profile"); profile_dir.has_value()) {
    run_options.profile_dir = *profile_dir;
  }
  if (const auto series_dir = args.get("series"); series_dir.has_value()) {
    run_options.series_dir = *series_dir;
  }
  try {
    tolerance.rtol = args.get_double("rtol", tolerance.rtol);
    tolerance.atol = args.get_double("atol", tolerance.atol);
    tolerance.wall_factor =
        args.get_double("wall-factor", tolerance.wall_factor);
    tolerance.wall_slack = args.get_double("wall-slack", tolerance.wall_slack);
    run_options.sweep.base_seed = args.get_seed("seed", 0x5eedULL);
  } catch (const std::exception& error) {
    std::cerr << "p2pvod_bench: " << error.what() << "\n";
    return 2;
  }
  const bool baseline_is_dir =
      baseline_path.has_value() && is_directory(*baseline_path);
  if (baseline_path.has_value() && !baseline_is_dir && selected.size() > 1) {
    std::cerr << "p2pvod_bench: --baseline must be a directory of "
                 "BENCH_<id>.json files when running several scenarios\n";
    return 2;
  }

  std::vector<std::string> violations;
  for (const scenario::Scenario* entry : selected) {
    double wall = 0.0;
    try {
      wall = scenario::run_scenario(*entry, sinks, run_options);
    } catch (const std::exception& error) {
      std::cerr << "p2pvod_bench: scenario '" << entry->id
                << "' failed: " << error.what() << "\n";
      return 1;
    }
    std::fprintf(stderr, "[bench] %-16s %.3fs\n", entry->id.c_str(), wall);

    if (baseline_path.has_value()) {
      const std::string file =
          baseline_is_dir ? *baseline_path + "/BENCH_" + entry->id + ".json"
                          : *baseline_path;
      const auto& document = capture_sink.document();
      if (!document.has_value()) {
        violations.push_back(entry->id + ": no result document captured");
        continue;
      }
      for (std::string& message :
           scenario::diff_against_baseline_file(*document, file, tolerance)) {
        violations.push_back(std::move(message));
      }
    }
  }

  // Requested artifacts that failed to write are a failure: a perf job whose
  // JSON silently vanished would upload nothing and stay green.
  const std::size_t artifact_failures =
      (json_sink ? json_sink->failure_count() : 0) +
      (csv_sink ? csv_sink->failure_count() : 0);
  if (artifact_failures > 0) {
    std::cerr << "p2pvod_bench: " << artifact_failures
              << " result artifact(s) could not be written\n";
    return 1;
  }

  if (!violations.empty()) {
    std::cerr << "\n[baseline] " << violations.size()
              << " regression(s) beyond tolerance:\n";
    for (const std::string& message : violations) {
      std::cerr << "  - " << message << "\n";
    }
    return 1;
  }
  if (baseline_path.has_value()) {
    std::cerr << "[baseline] all " << selected.size()
              << " scenario(s) within tolerance of " << *baseline_path << "\n";
  }
  return 0;
}
