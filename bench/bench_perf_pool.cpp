// Executor + calibration microbenchmarks (google-benchmark).
//
// Quantifies the two halves of the work-stealing change:
//   * raw pool throughput — submit/drain floods, parallel_for at several
//     grain sizes, nested submission from workers (the steal-heavy path);
//   * calibration searches — sequential vs speculative-probe
//     min_feasible_k / max_catalog at 1..8 threads. The speculative variant
//     should cut wall time at >= 4 threads on a multi-core runner while
//     returning identical results (asserted cheaply here, enforced
//     rigorously in tests/test_analysis.cpp).
//
// Wall time is what parallel execution changes, so every multithreaded
// benchmark uses UseRealTime().
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <vector>

#include "analysis/calibrate.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace p2pvod;

void BM_PoolSubmitDrain(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr int kTasks = 2048;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (auto _ : state) {
    std::atomic<int> counter{0};
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& future : futures) pool.wait(future);
    futures.clear();
    benchmark::DoNotOptimize(counter.load());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_PoolSubmitDrain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ParallelForGrain(benchmark::State& state) {
  util::ThreadPool pool(4);
  constexpr std::size_t kCount = 1 << 14;
  const auto grain = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(kCount);
  for (auto _ : state) {
    util::parallel_for(
        0, kCount,
        [&out](std::size_t i) {
          // ~100ns of real work per index so grain overhead is measurable
          // against something, not against an empty body.
          std::uint64_t h = i;
          for (int r = 0; r < 16; ++r) h = h * 0x9e3779b97f4a7c15ULL + r;
          out[i] = h;
        },
        &pool, grain);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kCount));
}
BENCHMARK(BM_ParallelForGrain)->Arg(1)->Arg(16)->Arg(256)->Arg(4096)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_NestedSubmitSteal(benchmark::State& state) {
  // Workers submit into their own deques; everyone else steals. This is the
  // pattern the old single-queue pool serialized on its global mutex.
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> counter{0};
    std::vector<std::future<void>> outer;
    outer.reserve(16);
    for (int i = 0; i < 16; ++i) {
      outer.push_back(pool.submit([&pool, &counter] {
        std::vector<std::future<void>> inner;
        inner.reserve(64);
        for (int j = 0; j < 64; ++j) {
          inner.push_back(pool.submit([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
          }));
        }
        for (auto& future : inner) pool.wait(future);
      }));
    }
    for (auto& future : outer) pool.wait(future);
    benchmark::DoNotOptimize(counter.load());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_NestedSubmitSteal)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

analysis::TrialSpec calibration_spec() {
  analysis::TrialSpec spec;
  spec.n = 32;
  spec.u = 1.5;
  spec.d = 4.0;
  spec.mu = 1.3;
  spec.c = 4;
  spec.duration = 8;
  spec.rounds = 24;
  spec.suite = analysis::WorkloadSuite::kFull;
  return spec;
}

// Few trials per probe: the regime speculation targets. The sequential
// search's wall time has a hard floor of (probes x one trial) however many
// threads exist — each probe is a barrier, and 2 trials occupy at most 2
// workers. Speculative ladders break that floor by filling the idle workers
// with the probes the search may need next.
constexpr std::uint32_t kCalibrationTrials = 2;
constexpr std::uint64_t kCalibrationSeed = 0xBE7C;

void BM_MinFeasibleKSequential(benchmark::State& state) {
  const analysis::TrialSpec spec = calibration_spec();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto result = analysis::Calibrator::min_feasible_k(
        spec, 1, 64, 1.0, kCalibrationTrials, kCalibrationSeed, &pool);
    benchmark::DoNotOptimize(result.k);
  }
}
BENCHMARK(BM_MinFeasibleKSequential)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MinFeasibleKSpeculative(benchmark::State& state) {
  const analysis::TrialSpec spec = calibration_spec();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  analysis::SpeculationOptions options;
  options.pool = &pool;  // width 0: the adaptive default users get
  // Same answer as the sequential search, or the comparison is meaningless.
  const auto reference = analysis::Calibrator::min_feasible_k(
      spec, 1, 64, 1.0, kCalibrationTrials, kCalibrationSeed, &pool);
  for (auto _ : state) {
    const auto result = analysis::Calibrator::min_feasible_k_speculative(
        spec, 1, 64, 1.0, kCalibrationTrials, kCalibrationSeed, options);
    if (result.k != reference.k) {
      state.SkipWithError("speculative result diverged from sequential");
      break;
    }
    benchmark::DoNotOptimize(result.k);
  }
}
BENCHMARK(BM_MinFeasibleKSpeculative)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MaxCatalogSequential(benchmark::State& state) {
  const analysis::TrialSpec spec = calibration_spec();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto result = analysis::Calibrator::max_catalog(
        spec, 1.0, kCalibrationTrials, kCalibrationSeed, &pool);
    benchmark::DoNotOptimize(result.m);
  }
}
BENCHMARK(BM_MaxCatalogSequential)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MaxCatalogSpeculative(benchmark::State& state) {
  const analysis::TrialSpec spec = calibration_spec();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  analysis::SpeculationOptions options;
  options.pool = &pool;  // width 0: the adaptive default users get
  const auto reference = analysis::Calibrator::max_catalog(
      spec, 1.0, kCalibrationTrials, kCalibrationSeed, &pool);
  for (auto _ : state) {
    const auto result = analysis::Calibrator::max_catalog_speculative(
        spec, 1.0, kCalibrationTrials, kCalibrationSeed, options);
    if (result.m != reference.m) {
      state.SkipWithError("speculative result diverged from sequential");
      break;
    }
    benchmark::DoNotOptimize(result.m);
  }
}
BENCHMARK(BM_MaxCatalogSpeculative)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
