// E1 — Table 1 of the paper: the model's key parameters, plus the derived
// protocol values (ν, u′, d′, k, m) that Theorem 1/2 attach to three
// reference configurations.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E1 / Table 1", "key parameters of the model");

  util::Table glossary("Table 1 — key parameters");
  glossary.set_header({"symbol", "meaning"});
  glossary.add_row({"n", "number of boxes in the system"});
  glossary.add_row({"m", "number of distinct videos stored (catalog size)"});
  glossary.add_row({"d_b / d", "storage capacity of box b / average (videos)"});
  glossary.add_row({"k", "duplicate copies per stripe (k ~ d*n/m)"});
  glossary.add_row({"u_b / u", "upload capacity of box b / average (streams)"});
  glossary.add_row({"c", "stripes per video (download all c in parallel)"});
  glossary.add_row({"mu", "swarm growth bound: f(t+1) <= ceil(max(f(t),1)*mu)"});
  glossary.add_row({"l", "minimal chunk size: l = 1/c when storing stripes"});
  p2pvod::bench::emit(glossary, "E1_glossary");
  std::cout << '\n';

  util::Table derived("derived protocol values (Theorem 1, homogeneous)");
  derived.set_header({"config", "u", "d", "mu", "c", "nu", "u'", "d'",
                      "k bound", "k", "m @ n=10^5", "m @ n=10^6"});
  struct Config {
    const char* name;
    double u, d, mu;
  };
  for (const Config& config : {Config{"DSL-tight", 1.25, 8.0, 1.1},
                               Config{"DSL-comfortable", 1.5, 4.0, 1.2},
                               Config{"fiber", 3.0, 4.0, 1.5}}) {
    const auto b = analysis::Theorem1::evaluate(
        {config.u, config.d, config.mu});
    derived.begin_row()
        .cell(config.name)
        .cell(config.u)
        .cell(config.d)
        .cell(config.mu)
        .cell(static_cast<std::uint64_t>(b.c))
        .cell(b.nu, 3)
        .cell(b.u_prime)
        .cell(b.d_prime)
        .cell(b.k_real, 5)
        .cell(static_cast<std::uint64_t>(b.k))
        .cell(static_cast<std::uint64_t>(b.catalog(100000)))
        .cell(static_cast<std::uint64_t>(b.catalog(1000000)));
  }
  p2pvod::bench::emit(derived, "E1_theorem1");
  std::cout << '\n';

  util::Table hetero("derived protocol values (Theorem 2, heterogeneous)");
  hetero.set_header({"config", "u*", "d", "mu", "c", "nu", "u'", "k bound",
                     "k", "m @ n=10^6"});
  for (const Config& config : {Config{"mixed-ADSL", 1.5, 4.0, 1.05},
                               Config{"mixed-fast", 2.0, 4.0, 1.1}}) {
    const auto b = analysis::Theorem2::evaluate(
        {config.u, config.d, config.mu});
    hetero.begin_row()
        .cell(config.name)
        .cell(config.u)
        .cell(config.d)
        .cell(config.mu)
        .cell(static_cast<std::uint64_t>(b.c))
        .cell(b.nu, 3)
        .cell(b.u_prime)
        .cell(b.k_real, 5)
        .cell(static_cast<std::uint64_t>(b.k))
        .cell(static_cast<std::uint64_t>(b.catalog(1000000)));
  }
  p2pvod::bench::emit(hetero, "E1_theorem2");
  return 0;
}
