// Thin shim: the E1 Table-1 reproduction lives in the scenario registry
// (src/scenario/figures/table1.cpp). `p2pvod_bench table1` is the primary
// entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("table1"); }
