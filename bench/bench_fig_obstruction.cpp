// E10 — the first-moment obstruction bound (Lemma 4 / proof of Theorem 1).
//
// For a small system we put three curves side by side as k grows:
//   * the exact numeric union bound P(N_k > 0) (Lemma 4's double sum),
//   * the Monte-Carlo frequency of allocations admitting a *cold-start*
//     obstruction (a defeating simultaneous burst — a lower bound on the true
//     obstruction probability, since staged sequences are not probed),
//   * the fraction of allocations defeated by the full simulated suite.
// Expected: measured <= union bound once the bound leaves the trivial
// regime, and all curves fall with k.
#include <cmath>
#include <iostream>

#include "alloc/permutation.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/first_moment.hpp"
#include "analysis/obstruction.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace p2pvod;
  bench::banner("E10 / obstruction figure",
                "P(N_k>0): union bound vs measured obstruction frequency");

  const std::uint32_t n = bench::scaled(24, 16);
  // c must satisfy c > (2µ²-1)/(u-1) for Lemma 4's ν to be positive; c=4 is
  // the minimum at (u=1.5, µ=1.2).
  const std::uint32_t c = 4;
  const double d = 4.0, u = 1.5, mu = 1.2;
  const std::uint32_t allocations = bench::scaled(24, 8);

  util::Table table("n=" + std::to_string(n) + ", c=4, u=1.5, d=4, m=d*n/k; " +
                    std::to_string(allocations) + " allocations per k");
  table.set_header({"k", "m", "log10 union bound", "union bound (clamped)",
                    "cold-burst freq", "sim-suite fail freq"});
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    const auto m = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(d * n / k));

    analysis::FirstMomentParams fm;
    fm.n = n;
    fm.m = m;
    fm.c = c;
    fm.k = k;
    fm.u = u;
    fm.d = d;
    fm.mu = mu;
    const double bound = analysis::FirstMoment::probability_bound(fm);
    const double log10_bound =
        analysis::FirstMoment::log_union_bound(fm) / std::log(10.0);

    const model::Catalog catalog(m, c, 10);
    const auto profile = model::CapacityProfile::homogeneous(n, u, d);
    std::uint32_t burst_hits = 0;
    for (std::uint32_t a = 0; a < allocations; ++a) {
      util::Rng rng(0xE1000 + a);
      const auto allocation =
          alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
      const auto result = analysis::ObstructionSearch::monte_carlo(
          catalog, profile, allocation, 12, rng);
      if (result.infeasible > 0) ++burst_hits;
    }

    analysis::TrialSpec spec;
    spec.n = n;
    spec.u = u;
    spec.d = d;
    spec.mu = mu;
    spec.c = c;
    spec.k = k;
    spec.m_override = m;
    spec.duration = 10;
    spec.rounds = 30;
    spec.suite = analysis::WorkloadSuite::kFull;
    const auto sim_rate =
        analysis::Calibrator::success_rate(spec, allocations, 0xE10);

    table.begin_row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(m))
        .cell(log10_bound, 4)
        .cell(bound, 4)
        .cell(static_cast<double>(burst_hits) / allocations, 3)
        .cell(1.0 - sim_rate.estimate, 3);
  }
  p2pvod::bench::emit(table, "E10_obstruction");
  std::cout << "\nExpected shape: the log10 of the union bound decreases "
               "monotonically in k\n(the bound is asymptotic in n, so at "
               "this toy n it only leaves the clamped\nregime for large k); "
               "the measured obstruction frequencies sit far below it "
               "and\nvanish almost immediately — the worst-case analysis is "
               "extremely conservative.\n";
  return 0;
}
