// Thin shim: the E10 obstruction figure lives in the scenario registry
// (src/scenario/figures/obstruction.cpp). `p2pvod_bench obstruction` is the
// primary entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("obstruction"); }
