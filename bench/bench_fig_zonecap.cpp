// Thin shim: the E15 zone link-cap figure lives in the scenario registry
// (src/scenario/figures/zonecap.cpp). `p2pvod_bench zonecap` is the primary
// entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("zonecap"); }
