// Thin shim: the E7 heterogeneous figure lives in the scenario registry
// (src/scenario/figures/hetero.cpp). `p2pvod_bench hetero` is the primary
// entry point; output is byte-identical.
#include "scenario/runner.hpp"

int main() { return p2pvod::scenario::run_figure_main("hetero"); }
