// adversary_hunt — find, certify and preserve a defeating demand sequence.
//
// Given an operating point (n, u, d, c, k), hunts across adversary families
// and seeds for a demand sequence that stalls the system, then:
//   * reports the Hall-violating request set at the stall (the min-cut
//     witness of Lemma 1 — the paper's "obstruction"),
//   * saves the trace to a file, and
//   * replays the trace against a fresh simulator to prove it reproduces.
// Near the threshold (u slightly above 1 with skimpy k) this finds defeats
// quickly; far above it the hunt comes back empty-handed — which is the
// paper's Theorem 1 in action.
//
//   ./adversary_hunt [--u 1.1] [--k 2] [--n 64] [--seeds 12] [--out trace.txt]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "alloc/permutation.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/adversarial.hpp"
#include "workload/distinct.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace p2pvod;
  const util::ArgParser args(argc, argv);

  const auto n = static_cast<std::uint32_t>(args.get_int("n", 64));
  const double u = args.get_double("u", 1.1);
  const double d = args.get_double("d", 4.0);
  const double mu = args.get_double("mu", 1.5);
  const auto c = static_cast<std::uint32_t>(args.get_int("c", 4));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 2));
  const auto seeds = static_cast<std::uint32_t>(args.get_int("seeds", 12));
  const model::Round T = args.get_int("duration", 12);
  const model::Round rounds = args.get_int("rounds", 48);
  const std::string out_path = args.get_string("out", "defeating_trace.txt");

  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(d * n / k));
  const model::Catalog catalog(m, c, T);
  const auto profile = model::CapacityProfile::homogeneous(n, u, d);
  std::cout << "Hunting defeats of n=" << n << " u=" << u << " c=" << c
            << " k=" << k << " m=" << m << " (mu=" << mu << ", " << seeds
            << " seeds x 3 adversary families)\n";

  sim::PreloadingStrategy strategy;
  for (std::uint32_t seed = 0; seed < seeds; ++seed) {
    util::Rng rng(0xAD0000 + seed);
    const auto allocation =
        alloc::PermutationAllocator().allocate(catalog, profile, k, rng);

    for (int family = 0; family < 3; ++family) {
      std::unique_ptr<workload::DemandGenerator> inner;
      switch (family) {
        case 0:
          inner = std::make_unique<workload::AvoiderAdversary>(seed);
          break;
        case 1:
          inner = std::make_unique<workload::FlashCrowd>(
              static_cast<model::VideoId>(seed % m), mu);
          break;
        default:
          inner = std::make_unique<workload::DistinctVideosSweep>(
              seed, /*repeat=*/true);
      }
      workload::GrowthLimiter limited(*inner, mu);
      workload::TraceRecorder recorder(limited);
      sim::Simulator simulator(catalog, profile, allocation, strategy);
      const auto report = simulator.run(recorder, rounds);
      if (report.success) continue;

      std::cout << "\nDEFEAT found: adversary=" << inner->name()
                << " seed=" << seed << "\n  " << report.summary() << "\n"
                << "  Hall-violating set at the stall: |X|="
                << report.stall_witness_size
                << " requests whose candidate boxes' capacity is "
                   "insufficient (Lemma 1).\n";
      recorder.trace().save_file(out_path);
      std::cout << "  trace (" << recorder.trace().size()
                << " demands) saved to " << out_path << "\n";

      // Replay to certify the artifact.
      workload::TraceReplay replay(workload::Trace::load_file(out_path));
      sim::Simulator fresh(catalog, profile, allocation, strategy);
      const auto again = fresh.run(replay, rounds);
      std::cout << "  replay: " << again.summary() << "\n"
                << (again.first_stall == report.first_stall
                        ? "  certified: identical stall round."
                        : "  WARNING: replay diverged!")
                << "\n";
      return EXIT_SUCCESS;
    }
  }
  std::cout << "\nNo defeating sequence found — at this operating point the "
               "random allocation\nabsorbed every adversary tried (Theorem 1 "
               "territory). Lower u or k to watch it break.\n";
  return EXIT_SUCCESS;
}
