// quickstart — the 60-second tour of the p2pvod library.
//
// Builds a homogeneous (n, u, d)-video system, lets Theorem 1 pick the
// protocol parameters (c stripes, k replicas, catalog size m), runs a
// Zipf-popularity audience against it, and prints the run report.
//
//   ./quickstart [--n 200] [--u 1.5] [--d 4] [--mu 1.3] [--rounds 120]
#include <cstdlib>
#include <iostream>

#include "core/planner.hpp"
#include "core/vod_system.hpp"
#include "util/cli.hpp"
#include "workload/limiter.hpp"
#include "workload/zipf.hpp"

int main(int argc, char** argv) {
  using namespace p2pvod;
  const util::ArgParser args(argc, argv);

  core::SystemConfig config;
  config.n = static_cast<std::uint32_t>(args.get_int("n", 200));
  config.u = args.get_double("u", 1.5);
  config.d = args.get_double("d", 4.0);
  config.mu = args.get_double("mu", 1.3);
  config.duration = args.get_int("duration", 24);
  config.seed = args.get_seed("seed", 0xC0FFEE);
  // Theorem 1's k is sized for worst-case adversaries at asymptotic n; for a
  // quickstart-sized n we let the empirical planner pick k instead.
  const core::CatalogPlanner planner(config.n, config.u, config.d, config.mu,
                                     config.duration);
  const auto theory = planner.bounds();
  std::cout << "Theorem 1 prescription: " << theory.describe() << "\n";

  config.c = theory.valid ? theory.c : 4;
  const auto plan = planner.plan(core::PlanMode::kCalibrated, /*trials=*/4,
                                 config.seed);
  if (!plan.feasible) {
    std::cerr << "no feasible plan: " << plan.notes << "\n";
    return EXIT_FAILURE;
  }
  config.k = plan.k;
  std::cout << "Calibrated plan: c=" << config.c << " k=" << config.k
            << " -> catalog m=" << plan.m << " videos ("
            << plan.notes << ")\n";

  const auto system = core::VodSystem::build(config);
  std::cout << "System: " << system.describe() << "\n\n";

  workload::ZipfDemand audience(system.catalog().video_count(),
                                /*alpha=*/0.8, /*demand prob=*/0.05,
                                config.seed ^ 0xA5A5);
  workload::GrowthLimiter limited(audience, config.mu);
  const auto rounds = args.get_int("rounds", 120);
  const auto report = system.run(limited, rounds);

  std::cout << "Run: " << report.summary() << "\n";
  std::cout << "  continuity      " << report.continuity() << "\n";
  std::cout << "  startup p50/max " << report.startup_delay.percentile(0.5)
            << "/" << report.startup_delay.max() << " rounds\n";
  std::cout << "  mean utilization " << report.upload_utilization.mean()
            << "\n";
  return report.success ? EXIT_SUCCESS : EXIT_FAILURE;
}
