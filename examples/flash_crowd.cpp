// flash_crowd — a premiere-night stress test.
//
// One video attracts joiners at the maximal growth rate µ (every round the
// swarm multiplies by µ) while the rest of the fleet idles. Runs the same
// crowd twice — once with the paper's §3 preloading strategy and once with
// the naive all-stripes-at-once strategy — and shows why the staggered
// preload is load-bearing: the naive swarm cannot serve itself and collapses
// onto the k static replicas.
//
//   ./flash_crowd [--n 256] [--mu 2.0] [--u 1.5] [--c 4] [--k 4]
#include <cstdlib>
#include <iostream>

#include "alloc/permutation.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/flash_crowd.hpp"

int main(int argc, char** argv) {
  using namespace p2pvod;
  const util::ArgParser args(argc, argv);

  const auto n = static_cast<std::uint32_t>(args.get_int("n", 256));
  const double u = args.get_double("u", 1.5);
  const double mu = args.get_double("mu", 2.0);
  const auto c = static_cast<std::uint32_t>(args.get_int("c", 4));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 4));
  const double d = args.get_double("d", 4.0);
  const model::Round T = args.get_int("duration", 24);
  const auto m = static_cast<std::uint32_t>(
      std::max(1.0, d * n / static_cast<double>(k)));

  const model::Catalog catalog(m, c, T);
  const auto profile = model::CapacityProfile::homogeneous(n, u, d);
  util::Rng rng(args.get_seed("seed", 2009));
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
  std::cout << "Fleet: n=" << n << " u=" << u << " d=" << d << "; "
            << catalog.describe() << "; swarm growth mu=" << mu << "\n\n";

  util::Table table("flash crowd: preloading (paper, Section 3) vs naive");
  table.set_header({"strategy", "outcome", "joined", "peak swarm",
                    "chunks served", "first stall", "startup p50"});
  for (const auto kind :
       {sim::StrategyKind::kPreloading, sim::StrategyKind::kNaive}) {
    const auto strategy = sim::make_strategy(kind);
    sim::Simulator simulator(catalog, profile, allocation, *strategy);
    workload::FlashCrowd crowd(/*video=*/0, mu);
    const auto report = simulator.run(crowd, 3 * T);
    table.begin_row()
        .cell(strategy->name())
        .cell(report.success ? "SURVIVED" : "COLLAPSED")
        .cell(static_cast<std::uint64_t>(crowd.total_joined()))
        .cell(static_cast<std::uint64_t>(report.peak_swarm))
        .cell(report.chunks_served)
        .cell(report.first_stall)
        .cell(report.startup_delay.total() > 0
                  ? std::to_string(report.startup_delay.percentile(0.5))
                  : "-");
  }
  table.print(std::cout);
  std::cout << "\nThe preloading strategy staggers each joiner's stripes so "
               "earlier joiners\nserve later ones (the swarm feeds itself); "
               "naive joiners all sit at the same\nplayback position and can "
               "only lean on the k static replicas.\n";
  return EXIT_SUCCESS;
}
