// catalog_planner — capacity-planning with the paper's formulas.
//
// Given a deployment (n boxes, upload u, storage d, swarm growth µ), prints:
//   * the scalability verdict (which side of the u=1 threshold),
//   * Theorem 1's protocol prescription (c, k) and catalog bound,
//   * the closed-form Ω((u−1)²·log((u+1)/2)/u³µ² · dn/log d′) catalog value,
//   * an empirically calibrated (c, k, m) for the actual fleet size, and
//   * the video-quality trade-off: catalog vs video bitrate (the Conclusion's
//     (u−1)³ observation) for the same physical link.
//
//   ./catalog_planner [--n 500] [--upload-mbps 5] [--bitrate-mbps 4] ...
#include <cstdlib>
#include <iostream>

#include "analysis/bounds.hpp"
#include "core/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace p2pvod;
  const util::ArgParser args(argc, argv);

  const auto n = static_cast<std::uint32_t>(args.get_int("n", 500));
  const double upload_mbps = args.get_double("upload-mbps", 5.0);
  const double bitrate_mbps = args.get_double("bitrate-mbps", 4.0);
  const double d = args.get_double("d", 8.0);
  const double mu = args.get_double("mu", 1.2);

  const double u = upload_mbps / bitrate_mbps;  // normalized upload (§1.1)
  std::cout << "Deployment: n=" << n << " boxes, " << upload_mbps
            << " Mbps up, " << bitrate_mbps << " Mbps video -> u=" << u
            << ", d=" << d << " videos/box, mu=" << mu << "\n\n";

  const core::CatalogPlanner planner(n, u, d, mu);
  const auto theory = planner.plan(core::PlanMode::kTheory);
  std::cout << "Theory (Theorem 1): "
            << (theory.feasible ? "feasible" : "not directly applicable")
            << "\n  " << theory.notes << "\n";
  if (theory.c != 0) {
    std::cout << "  c=" << theory.c << " k=" << theory.k
              << " catalog m=" << theory.m
              << " (closed form: " << theory.m_closed_form << ")\n";
  }

  const auto calibrated =
      planner.plan(core::PlanMode::kCalibrated, /*trials=*/4,
                   args.get_seed("seed", 37));
  if (calibrated.feasible) {
    std::cout << "Calibrated for this n: c=" << theory.c
              << " k=" << calibrated.k << " -> catalog m=" << calibrated.m
              << " distinct videos\n";
  } else {
    std::cout << "Calibration found no feasible k: " << calibrated.notes
              << "\n";
  }

  // Quality/catalog trade-off: same physical link, increasing video bitrate.
  util::Table tradeoff(
      "quality vs catalog on a fixed link (Conclusion: bound ~ (u-1)^3)");
  tradeoff.set_header({"bitrate Mbps", "u", "regime", "Thm1 k",
                       "catalog m", "closed-form m"});
  for (const double rate : {2.0, 3.0, 4.0, 4.5, 4.8, 4.95}) {
    const double uq = upload_mbps / rate;
    const auto bounds = analysis::Theorem1::evaluate({uq, d, mu});
    tradeoff.begin_row()
        .cell(rate)
        .cell(uq)
        .cell(uq > 1.0 ? "scalable" : "constant-catalog")
        .cell(bounds.valid ? std::to_string(bounds.k) : std::string("-"))
        .cell(bounds.valid ? std::to_string(bounds.catalog(n))
                           : std::string("0"))
        .cell(analysis::Theorem1::catalog_closed_form(n, uq, d, mu), 3);
  }
  tradeoff.print(std::cout);
  std::cout << "\nHigher bitrate = better quality but u -> 1 and the "
               "achievable catalog\nvanishes like (u-1)^3: the trade-off the "
               "paper's conclusion quantifies.\n";
  return EXIT_SUCCESS;
}
