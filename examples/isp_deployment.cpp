// isp_deployment — a heterogeneous ISP set-top-box fleet (§4 of the paper).
//
// Models a realistic access-network mix:
//   * ADSL boxes   — upload 0.5 streams (below playback rate: "poor")
//   * VDSL boxes   — upload 2.0 streams
//   * fiber boxes  — upload 4.0 streams
// The §4 machinery pairs every ADSL box with a fiber/VDSL relay r(b) that
// reserves upload for it, and the relay strategy routes the poor boxes'
// stripes through their relays on the 2-round cadence. The example prints the
// deficit ledger, the compensation plan, and a mixed-audience run.
//
//   ./isp_deployment [--n 120] [--adsl 0.3] [--vdsl 0.5] [--rounds 100]
#include <cstdlib>
#include <iostream>

#include "core/verdict.hpp"
#include "core/vod_system.hpp"
#include "hetero/balance.hpp"
#include "hetero/compensation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/limiter.hpp"
#include "workload/zipf.hpp"

int main(int argc, char** argv) {
  using namespace p2pvod;
  const util::ArgParser args(argc, argv);

  const auto n = static_cast<std::uint32_t>(args.get_int("n", 120));
  const double adsl_frac = args.get_double("adsl", 0.3);
  const double vdsl_frac = args.get_double("vdsl", 0.5);
  const double u_star = args.get_double("u-star", 1.5);

  // Build the three-tier fleet: ADSL first, then VDSL, then fiber.
  const auto adsl = static_cast<std::uint32_t>(adsl_frac * n);
  const auto vdsl = static_cast<std::uint32_t>(vdsl_frac * n);
  std::vector<double> upload(n), storage(n);
  for (std::uint32_t b = 0; b < n; ++b) {
    const double ub = b < adsl ? 0.5 : (b < adsl + vdsl ? 2.0 : 4.0);
    upload[b] = ub;
    storage[b] = 3.0 * ub;  // proportional: u_b/d_b constant (Section 1.1)
  }
  model::CapacityProfile profile(std::move(upload), std::move(storage));

  std::cout << "Fleet: " << profile.describe() << "\n";
  std::cout << "  ADSL " << adsl << " boxes (u=0.5), VDSL " << vdsl
            << " (u=2.0), fiber " << (n - adsl - vdsl) << " (u=4.0)\n";

  const auto verdict = core::Verdict::classify(profile, 8);
  std::cout << "Verdict: " << core::regime_name(verdict.regime) << " — "
            << verdict.message << "\n";
  const auto balance = hetero::BalanceChecker::check(profile, u_star);
  std::cout << "Balance: " << balance.describe() << "\n\n";

  core::SystemConfig config;
  config.n = n;
  config.mu = args.get_double("mu", 1.0);
  config.c = static_cast<std::uint32_t>(args.get_int("c", 16));
  config.k = static_cast<std::uint32_t>(args.get_int("k", 8));
  config.duration = args.get_int("duration", 24);
  config.seed = args.get_seed("seed", 1954);

  const auto system =
      core::VodSystem::build_heterogeneous(config, std::move(profile), u_star);
  const auto& plan = *system.compensation();
  std::cout << "Compensation: " << plan.describe() << "\n";

  util::Table relays("relay pairings (first 8 poor boxes)");
  relays.set_header({"poor box", "u_b", "relay r(b)", "u_r", "reserved on r",
                     "direct stripes c_b"});
  std::uint32_t shown = 0;
  for (model::BoxId b = 0; b < system.profile().size() && shown < 8; ++b) {
    if (plan.relay[b] == model::kInvalidBox) continue;
    const auto r = plan.relay[b];
    relays.begin_row()
        .cell(static_cast<std::uint64_t>(b))
        .cell(system.profile().upload(b))
        .cell(static_cast<std::uint64_t>(r))
        .cell(system.profile().upload(r))
        .cell(plan.reserved[r])
        .cell(static_cast<std::uint64_t>(plan.direct_stripes[b]));
    ++shown;
  }
  relays.print(std::cout);

  workload::ZipfDemand audience(system.catalog().video_count(), 0.8, 0.04,
                                config.seed ^ 0x15b);
  workload::GrowthLimiter limited(audience, config.mu);
  const auto report = system.run(limited, args.get_int("rounds", 100));
  std::cout << "\nRun: " << report.summary() << "\n";
  if (report.startup_delay.total() > 0) {
    std::cout << "Startup delays (poor boxes relay through r(b), so their "
                 "delay doubles): p50="
              << report.startup_delay.percentile(0.5)
              << " max=" << report.startup_delay.max() << " rounds\n";
  }
  return report.success ? EXIT_SUCCESS : EXIT_FAILURE;
}
