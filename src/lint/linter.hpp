// p2pvod_lint — the repo-specific determinism linter.
//
// The repo's central reproducibility contract is that every scenario emits
// byte-identical BENCH_<id>.json at any thread count. That contract dies the
// moment a result path iterates an unordered container (iteration order is
// implementation-defined and address-dependent), seeds from std::random_device
// or wall time, or spawns threads outside the work-stealing executor (whose
// reductions are order-invariant by construction). The runtime baseline diffs
// catch such breaks only when a scenario happens to exercise them; this
// scanner catches them at the source level, in every file, before they ship.
//
// It is a token-level ("AST-lite") scanner, not a compiler plugin: comments
// and string/char literals are stripped, the remainder is tokenized, and each
// rule matches short token sequences. That is deliberately simple — the rules
// target constructs whose *presence* is the problem, so no type information
// is needed beyond tracking which local/member names were declared with an
// unordered container type.
//
// Escape hatch: a comment containing `p2pvod-lint: allow(<rule>)` on the
// violating line or the line directly above suppresses that rule there.
// Suppressions are expected to carry a rationale in the same comment.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace p2pvod::lint {

/// The determinism rules. Names (see rule_name) double as the allow() keys
/// and the [tag] printed in diagnostics.
enum class Rule {
  /// Range-for or begin()/end() iteration over std::unordered_{map,set}
  /// (and multi variants). Iteration order is address-dependent, so any
  /// result derived from it varies run to run. Use std::map/std::set, sort
  /// the keys first, or allow() with a proof that order cannot escape.
  kUnorderedIteration,
  /// std::rand/srand, std::random_device, std::random_shuffle, or wall-time
  /// seeding (time(nullptr)). All randomness must flow from the explicit
  /// 64-bit seeds in src/util/rng.* so trials replay bit-for-bit.
  kBannedRandom,
  /// std::chrono::{steady,system,high_resolution}_clock::now(). Wall-clock
  /// reads are fine for *reporting* (wall_time fields in result documents)
  /// but must never influence simulation state; only the timing-whitelisted
  /// files may call them.
  kWallClock,
  /// Raw std::thread construction or .detach(). All parallelism goes through
  /// util::ThreadPool, whose deterministic reductions are what make results
  /// thread-count-invariant; a detached thread additionally outlives scope
  /// and races shutdown.
  kRawThread,
};

/// Stable kebab-case rule name used in diagnostics and allow() comments.
[[nodiscard]] std::string_view rule_name(Rule rule);

/// One-line human rationale for the rule (shown by `p2pvod_lint --rules`).
[[nodiscard]] std::string_view rule_summary(Rule rule);

/// Inverse of rule_name; nullopt for an unknown name.
[[nodiscard]] std::optional<Rule> rule_from_name(std::string_view name);

/// All rules, in a fixed order (for listing and iteration).
[[nodiscard]] const std::vector<Rule>& all_rules();

struct Diagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  Rule rule = Rule::kUnorderedIteration;
  std::string message;

  /// gcc-style "file:line: error: [rule] message" for terminal output.
  [[nodiscard]] std::string format() const;
};

/// Per-rule path allowlists. An entry exempts a file when the file's
/// generic (forward-slash) path contains the entry as a substring — so
/// "bench/" matches every file under bench/ and "src/util/rng." matches
/// rng.hpp and rng.cpp. Keep entries anchored with directory separators or
/// extension dots so they cannot match accidentally.
struct Config {
  std::vector<std::string> banned_random_allowed;
  std::vector<std::string> wall_clock_allowed;
  std::vector<std::string> raw_thread_allowed;
  std::vector<std::string> unordered_iteration_allowed;

  /// The repo's contract: randomness only in src/util/rng.*, wall-clock only
  /// in the timing layer (sweep_result, thread_pool) and bench/example mains
  /// (their stdout is never diffed), raw threads only inside the ThreadPool
  /// implementation and the bench/ harnesses that measure it.
  [[nodiscard]] static Config repo_default();
};

/// Lint one in-memory source. `path` is used for diagnostics and for the
/// allowlist match; `text` is the full file content.
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view path,
                                                  std::string_view text,
                                                  const Config& config);

/// Lint one on-disk file. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Diagnostic> lint_file(
    const std::filesystem::path& file, const Config& config);

/// Lint every C++ source (.hpp/.cpp/.h/.cc) under the given directories,
/// recursively, in sorted path order (diagnostics are deterministic too).
/// Nonexistent directories are skipped so callers can pass the canonical
/// {src, bench, examples, tools} set unconditionally.
[[nodiscard]] std::vector<Diagnostic> lint_dirs(
    const std::vector<std::filesystem::path>& dirs, const Config& config);

/// The canonical scan set for a repo checkout: src/, bench/, examples/,
/// tools/ under `root`.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::filesystem::path& root, const Config& config);

}  // namespace p2pvod::lint
