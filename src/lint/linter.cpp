#include "lint/linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace p2pvod::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

struct RuleInfo {
  Rule rule;
  std::string_view name;
  std::string_view summary;
};

constexpr std::array<RuleInfo, 4> kRules = {{
    {Rule::kUnorderedIteration, "unordered-iteration",
     "iteration over std::unordered_{map,set} is address-ordered and breaks "
     "byte-identical results; use an ordered container or sort first"},
    {Rule::kBannedRandom, "banned-random",
     "std::rand/random_device/time(nullptr) bypass the explicit-seed contract "
     "in src/util/rng.*; trials must replay bit-for-bit from a seed"},
    {Rule::kWallClock, "wall-clock",
     "chrono clock reads outside the timing whitelist can leak wall time "
     "into simulation state; results must not depend on when they ran"},
    {Rule::kRawThread, "raw-thread",
     "raw std::thread/detach bypasses util::ThreadPool, whose deterministic "
     "reductions make results thread-count-invariant"},
}};

// ---------------------------------------------------------------------------
// Pass 1: strip comments and literals, collect allow() escapes per line
// ---------------------------------------------------------------------------

struct Stripped {
  // Code with comments and string/char literal *contents* blanked; one entry
  // per source line (1-based access via line - 1).
  std::vector<std::string> code;
  // Rules suppressed by a `p2pvod-lint: allow(...)` comment on each line.
  std::vector<std::set<Rule>> allows;
};

/// Parse every `p2pvod-lint: allow(a, b)` occurrence in one line's comment
/// text. Unknown rule names are ignored (a typo then fails loudly because the
/// diagnostic it meant to suppress still fires).
std::set<Rule> parse_allows(const std::string& comment_text) {
  std::set<Rule> allows;
  static constexpr std::string_view kMarker = "p2pvod-lint:";
  std::size_t pos = 0;
  while ((pos = comment_text.find(kMarker, pos)) != std::string::npos) {
    pos += kMarker.size();
    const std::size_t open = comment_text.find("allow(", pos);
    if (open == std::string::npos) break;
    const std::size_t close = comment_text.find(')', open);
    if (close == std::string::npos) break;
    std::string names = comment_text.substr(open + 6, close - open - 6);
    std::replace(names.begin(), names.end(), ',', ' ');
    std::istringstream stream(names);
    std::string name;
    while (stream >> name) {
      if (const auto rule = rule_from_name(name)) allows.insert(*rule);
    }
    pos = close;
  }
  return allows;
}

/// True if text[pos] starts a raw-string literal's opening quote, i.e. the
/// characters before it spell an encoding prefix ending in R (R", u8R", ...).
bool is_raw_string_quote(std::string_view text, std::size_t quote) {
  if (quote == 0 || text[quote - 1] != 'R') return false;
  // Check the char before the R is not part of a longer identifier (so a
  // variable named `xR` followed by a string does not parse as raw).
  std::size_t prefix_begin = quote - 1;
  while (prefix_begin > 0) {
    const char c = text[prefix_begin - 1];
    if (c == 'u' || c == 'U' || c == 'L' || c == '8') {
      --prefix_begin;
    } else {
      break;
    }
  }
  if (prefix_begin > 0) {
    const char before = text[prefix_begin - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_')
      return false;
  }
  return true;
}

Stripped strip(std::string_view text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  Stripped out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim" terminator

  auto end_line = [&] {
    out.code.push_back(code_line);
    out.allows.push_back(parse_allows(comment_line));
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && is_raw_string_quote(text, i)) {
          state = State::kRawString;
          raw_delim = ")";
          for (std::size_t j = i + 1; j < text.size() && text[j] != '('; ++j)
            raw_delim += text[j];
          raw_delim += '"';
          code_line += ' ';
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (an escaped newline is rare; accept)
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  end_line();  // final (possibly newline-less) line
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: tokenize the stripped code
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line = 0;  // 1-based
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const Stripped& stripped) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    const std::string& line = stripped.code[li];
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t j = i + 1;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        tokens.push_back({line.substr(i, j - i), li + 1});
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", li + 1});
        i += 2;
      } else {
        tokens.push_back({std::string(1, c), li + 1});
        ++i;
      }
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Pass 3: rule matching over the token stream
// ---------------------------------------------------------------------------

const std::unordered_set<std::string_view> kUnorderedTemplates = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::unordered_set<std::string_view> kClockNames = {
    "steady_clock", "system_clock", "high_resolution_clock"};

// Only the begin() family: `it != container.end()` is the supported find()
// idiom, so end() alone must not fire — iteration always needs a begin.
const std::unordered_set<std::string_view> kIterationMembers = {
    "begin", "cbegin", "rbegin"};

struct Matcher {
  const std::vector<Token>& tokens;

  std::string_view at(std::size_t i) const {
    static const std::string kEmpty;
    return i < tokens.size() ? std::string_view(tokens[i].text) : kEmpty;
  }

  /// Skip a balanced <...> starting at `i` (which must point at "<");
  /// returns the index one past the closing ">". The tokenizer emits ">"
  /// one char at a time, so ">>" closes two levels as in the grammar.
  std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    while (i < tokens.size()) {
      if (at(i) == "<") ++depth;
      if (at(i) == ">" && --depth == 0) return i + 1;
      ++i;
    }
    return i;
  }
};

/// Names declared in this file with an unordered container type, including
/// names introduced by `using X = std::unordered_map<...>` aliases.
struct UnorderedNames {
  std::set<std::string> variables;
  std::set<std::string> type_aliases;

  bool is_unordered_expr_token(std::string_view tok) const {
    return kUnorderedTemplates.count(tok) != 0 ||
           type_aliases.count(std::string(tok)) != 0 ||
           variables.count(std::string(tok)) != 0;
  }
};

UnorderedNames collect_unordered_names(const Matcher& m) {
  UnorderedNames names;
  const auto& tokens = m.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const bool is_template = kUnorderedTemplates.count(m.at(i)) != 0;
    const bool is_alias =
        names.type_aliases.count(std::string(m.at(i))) != 0 &&
        (i == 0 || (m.at(i - 1) != "::" && m.at(i - 1) != "." &&
                    m.at(i - 1) != "="));
    if (!is_template && !is_alias) continue;
    // `using Alias = [std::] unordered_map<...>` introduces a type alias.
    if (is_template) {
      std::size_t back = i;
      if (back >= 2 && m.at(back - 1) == "::" && m.at(back - 2) == "std")
        back -= 2;
      if (back >= 3 && m.at(back - 1) == "=" && m.at(back - 3) == "using") {
        names.type_aliases.insert(std::string(m.at(back - 2)));
        continue;
      }
    }
    // A declaration: the identifier right after the (possibly templated)
    // type name, skipping reference/pointer declarators so parameters like
    // `const std::unordered_map<K, V>& cache` are tracked too.
    std::size_t after = i + 1;
    if (m.at(after) == "<") after = m.skip_template_args(after);
    while (m.at(after) == "&" || m.at(after) == "*") ++after;
    if (after < tokens.size() && !tokens[after].text.empty() &&
        is_ident_char(tokens[after].text[0]) &&
        !std::isdigit(static_cast<unsigned char>(tokens[after].text[0]))) {
      // Exclude keywords that follow a type in non-declaration positions.
      static const std::unordered_set<std::string_view> kNotVars = {
          "const",  "constexpr", "static", "return", "new",
          "typename", "using",   "struct", "class"};
      if (kNotVars.count(m.at(after)) == 0)
        names.variables.insert(std::string(m.at(after)));
    }
  }
  return names;
}

void match_banned_random(const Matcher& m, std::vector<std::size_t>& hits,
                         std::vector<std::string>& what) {
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    const std::string_view tok = m.at(i);
    if (tok == "rand" || tok == "srand" || tok == "random_device" ||
        tok == "random_shuffle") {
      hits.push_back(i);
      what.emplace_back(tok);
    } else if (tok == "time" && m.at(i + 1) == "(" &&
               (m.at(i + 2) == "nullptr" || m.at(i + 2) == "NULL" ||
                m.at(i + 2) == "0") &&
               m.at(i + 3) == ")") {
      hits.push_back(i);
      what.emplace_back("wall-time seeding via time()");
    }
  }
}

void match_wall_clock(const Matcher& m, std::vector<std::size_t>& hits,
                      std::vector<std::string>& what) {
  for (std::size_t i = 0; i + 2 < m.tokens.size(); ++i) {
    if (kClockNames.count(m.at(i)) != 0 && m.at(i + 1) == "::" &&
        m.at(i + 2) == "now") {
      hits.push_back(i);
      what.push_back(std::string(m.at(i)) + "::now()");
    }
  }
}

void match_raw_thread(const Matcher& m, std::vector<std::size_t>& hits,
                      std::vector<std::string>& what) {
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    if (m.at(i) == "std" && m.at(i + 1) == "::" && m.at(i + 2) == "thread") {
      hits.push_back(i + 2);
      what.emplace_back("std::thread");
    } else if (m.at(i) == "detach" && m.at(i + 1) == "(" && i > 0 &&
               (m.at(i - 1) == "." ||
                (m.at(i - 1) == ">" && i > 1 && m.at(i - 2) == "-"))) {
      hits.push_back(i);
      what.emplace_back(".detach()");
    }
  }
}

void match_unordered_iteration(const Matcher& m,
                               std::vector<std::size_t>& hits,
                               std::vector<std::string>& what) {
  const UnorderedNames names = collect_unordered_names(m);
  const auto& tokens = m.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Range-for over an unordered expression: `for (decl : range)` where the
    // range tokens mention an unordered template/alias/variable.
    if (m.at(i) == "for" && m.at(i + 1) == "(") {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (m.at(j) == "(") ++depth;
        if (m.at(j) == ")" && --depth == 0) break;
        if (depth == 1 && m.at(j) == ";") break;  // classic for loop
        if (depth == 1 && m.at(j) == ":") {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        int range_depth = 1;
        for (std::size_t j = colon + 1;
             j < tokens.size() && range_depth > 0; ++j) {
          if (m.at(j) == "(") ++range_depth;
          if (m.at(j) == ")") --range_depth;
          if (range_depth >= 1 && names.is_unordered_expr_token(m.at(j))) {
            hits.push_back(i);
            what.push_back("range-for over unordered container ('" +
                           std::string(m.at(j)) + "')");
            break;
          }
        }
      }
    }
    // Iterator walk: unordered_var.begin() / ->begin() and friends.
    if (names.variables.count(std::string(m.at(i))) != 0) {
      std::size_t member = 0;
      if (m.at(i + 1) == ".") member = i + 2;
      if (m.at(i + 1) == "-" && m.at(i + 2) == ">") member = i + 3;
      if (member != 0 && kIterationMembers.count(m.at(member)) != 0 &&
          m.at(member + 1) == "(") {
        hits.push_back(i);
        what.push_back("iterator over unordered container '" +
                       std::string(m.at(i)) + "." +
                       std::string(m.at(member)) + "()'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------------

std::string generic_path(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_allowed(const std::string& path,
                  const std::vector<std::string>& entries) {
  return std::any_of(entries.begin(), entries.end(),
                     [&](const std::string& entry) {
                       return path.find(entry) != std::string::npos;
                     });
}

const std::vector<std::string>& allowlist_for(const Config& config,
                                              Rule rule) {
  switch (rule) {
    case Rule::kUnorderedIteration:
      return config.unordered_iteration_allowed;
    case Rule::kBannedRandom:
      return config.banned_random_allowed;
    case Rule::kWallClock:
      return config.wall_clock_allowed;
    case Rule::kRawThread:
      return config.raw_thread_allowed;
  }
  throw std::logic_error("allowlist_for: bad rule");
}

}  // namespace

std::string_view rule_name(Rule rule) {
  for (const RuleInfo& info : kRules)
    if (info.rule == rule) return info.name;
  return "unknown";
}

std::string_view rule_summary(Rule rule) {
  for (const RuleInfo& info : kRules)
    if (info.rule == rule) return info.summary;
  return "";
}

std::optional<Rule> rule_from_name(std::string_view name) {
  for (const RuleInfo& info : kRules)
    if (info.name == name) return info.rule;
  return std::nullopt;
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> rules = [] {
    std::vector<Rule> out;
    for (const RuleInfo& info : kRules) out.push_back(info.rule);
    return out;
  }();
  return rules;
}

std::string Diagnostic::format() const {
  std::ostringstream out;
  out << file << ':' << line << ": error: [" << rule_name(rule) << "] "
      << message;
  return out.str();
}

Config Config::repo_default() {
  Config config;
  // Randomness: only the seed-plumbing layer itself.
  config.banned_random_allowed = {"src/util/rng."};
  // Wall clock: ONLY the obs clock TU. Every timing read in the tree goes
  // through obs::monotonic_ns()/obs::WallTimer, so this single entry is the
  // complete accounting of where wall time can enter the process. Other
  // files — including the rest of src/obs/ — must use obs::clock or an
  // inline allow() with a per-site rationale.
  config.wall_clock_allowed = {"src/obs/clock."};
  // Threads: only the work-stealing executor may construct them.
  config.raw_thread_allowed = {"src/util/thread_pool."};
  return config;
}

std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view text,
                                    const Config& config) {
  const std::string file = generic_path(path);
  const Stripped stripped = strip(text);
  const std::vector<Token> tokens = tokenize(stripped);
  const Matcher matcher{tokens};

  std::vector<Diagnostic> diagnostics;
  const auto run_rule = [&](Rule rule, auto&& match) {
    if (path_allowed(file, allowlist_for(config, rule))) return;
    std::vector<std::size_t> hits;
    std::vector<std::string> what;
    match(matcher, hits, what);
    for (std::size_t h = 0; h < hits.size(); ++h) {
      const std::size_t line = tokens[hits[h]].line;
      const auto line_allows = [&](std::size_t l) {
        return l >= 1 && l <= stripped.allows.size() &&
               stripped.allows[l - 1].count(rule) != 0;
      };
      if (line_allows(line) || line_allows(line - 1)) continue;
      Diagnostic diag;
      diag.file = file;
      diag.line = line;
      diag.rule = rule;
      diag.message = what[h];
      diag.message += " — ";
      diag.message += rule_summary(rule);
      diag.message += " (suppress with `// p2pvod-lint: allow(";
      diag.message += rule_name(rule);
      diag.message += ")` and a rationale)";
      diagnostics.push_back(std::move(diag));
    }
  };

  run_rule(Rule::kUnorderedIteration, match_unordered_iteration);
  run_rule(Rule::kBannedRandom, match_banned_random);
  run_rule(Rule::kWallClock, match_wall_clock);
  run_rule(Rule::kRawThread, match_raw_thread);

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.line < b.line;
            });
  return diagnostics;
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& file,
                                  const Config& config) {
  std::ifstream stream(file, std::ios::binary);
  if (!stream) {
    throw std::runtime_error("p2pvod_lint: cannot read " + file.string());
  }
  std::ostringstream content;
  content << stream.rdbuf();
  return lint_source(file.generic_string(), content.str(), config);
}

std::vector<Diagnostic> lint_dirs(
    const std::vector<std::filesystem::path>& dirs, const Config& config) {
  std::vector<std::filesystem::path> files;
  for (const auto& dir : dirs) {
    if (!std::filesystem::is_directory(dir)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Diagnostic> diagnostics;
  for (const auto& file : files) {
    auto file_diags = lint_file(file, config);
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(file_diags.begin()),
                       std::make_move_iterator(file_diags.end()));
  }
  return diagnostics;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  const Config& config) {
  return lint_dirs(
      {root / "src", root / "bench", root / "examples", root / "tools"},
      config);
}

}  // namespace p2pvod::lint
