#include "hetero/relay.hpp"

#include "sim/simulator.hpp"

namespace p2pvod::hetero {

void RelayStrategy::plan(model::BoxId b, model::VideoId v,
                         std::uint64_t ticket, model::Round now,
                         sim::Simulator& sim,
                         std::vector<sim::PlannedRequest>& out) {
  if (plan_.relay.at(b) == model::kInvalidBox) {
    plan_rich(b, v, ticket, now, sim, out);
  } else {
    plan_poor(b, v, ticket, now, sim, out);
  }
}

void RelayStrategy::plan_rich(model::BoxId b, model::VideoId v,
                              std::uint64_t ticket, model::Round now,
                              sim::Simulator& sim,
                              std::vector<sim::PlannedRequest>& out) const {
  const model::Catalog& catalog = sim.catalog();
  const std::uint32_t c = catalog.stripes_per_video();
  const auto preload_index = static_cast<std::uint32_t>(ticket % c);
  for (std::uint32_t i = 0; i < c; ++i) {
    const model::StripeId s = catalog.stripe_id(v, i);
    if (sim.allocation().box_has(b, s)) continue;
    // Postponed requests at t+2 (not t+1): the heterogeneous schedule runs on
    // a 2-round cadence so rich and relayed-poor boxes stay aligned.
    const model::Round issue = (i == preload_index) ? now : now + 2;
    out.push_back(sim::PlannedRequest::direct(b, s, issue));
  }
}

void RelayStrategy::plan_poor(model::BoxId b, model::VideoId v,
                              std::uint64_t ticket, model::Round now,
                              sim::Simulator& sim,
                              std::vector<sim::PlannedRequest>& out) const {
  const model::Catalog& catalog = sim.catalog();
  const std::uint32_t c = catalog.stripes_per_video();
  const model::BoxId relay = plan_.relay.at(b);
  const auto preload_index = static_cast<std::uint32_t>(ticket % c);
  const std::uint32_t cb = plan_.direct_stripes.at(b);

  // Churn fallback: with the relay down the reserved channel is gone; the
  // poor box degrades to the plain preloading schedule on its own (it may
  // stall — a poor box alone has no guarantee — but it is not stuck).
  if (!sim.box_online(relay)) {
    for (std::uint32_t i = 0; i < c; ++i) {
      const model::StripeId s = catalog.stripe_id(v, i);
      if (sim.allocation().box_has(b, s)) continue;
      const model::Round issue = (i == preload_index) ? now : now + 1;
      out.push_back(sim::PlannedRequest::direct(b, s, issue));
    }
    return;
  }

  // Emit a relayed request: r(b) downloads from round `issue`, forwards to b
  // one round later. If r(b) holds the stripe statically it forwards from
  // storage — no network request, b's cache entry starts at the same lag.
  auto relay_stripe = [&](model::StripeId s, model::Round issue) {
    if (sim.allocation().box_has(relay, s)) {
      sim::PlannedRequest r;  // forwarding only: b caches, nobody downloads
      r.requester = model::kInvalidBox;
      r.stripe = s;
      r.issue = issue;
      r.grants = {sim::CacheGrant{b, issue + 1}};
      // A request with no requester would be meaningless to match; instead
      // grant the cache entry directly. (The forwarding uses reserved upload,
      // which the usable-upload bookkeeping already excludes.)
      out.push_back(std::move(r));
      return;
    }
    sim::PlannedRequest r;
    r.requester = relay;
    r.stripe = s;
    r.issue = issue;
    r.grants = {sim::CacheGrant{relay, issue}, sim::CacheGrant{b, issue + 1}};
    out.push_back(std::move(r));
  };

  std::uint32_t direct_used = 0;
  for (std::uint32_t i = 0; i < c; ++i) {
    const model::StripeId s = catalog.stripe_id(v, i);
    if (sim.allocation().box_has(b, s)) continue;  // local playback
    if (i == preload_index) {
      relay_stripe(s, now);
    } else if (direct_used < cb) {
      ++direct_used;
      out.push_back(sim::PlannedRequest::direct(b, s, now + 2));
    } else {
      relay_stripe(s, now + 3);
    }
  }
}

}  // namespace p2pvod::hetero
