// RelayStrategy: the §4 request strategy for balanced heterogeneous systems.
//
// Poor box b (u_b < u*), demand admitted at round t (the paper's [t−1, t[):
//   t    — r(b) issues the preload request (stripe ticket mod c);
//   t+1  — r(b) forwards it to b over the reserved upload (not a request);
//   t+2  — b directly requests c_b = max(0, ⌊c·u_b − 4µ⁴⌋) further stripes;
//   t+3  — r(b) requests the remaining c−1−c_b and forwards them (b receives
//          from t+4).
// Rich box a: preload at t, postponed at t+2 (one idle round so poor and rich
// schedules share the ×2 time scale; growth bound becomes µ² on that scale).
//
// Cache accounting follows the paper: "each stripe forwarded by r(b) to b is
// also cached by r(b)" — so both r(b) (entry = its request round) and b
// (entry = one round later, when forwarding starts) serve later joiners.
// Stripes held statically by the relay are forwarded from storage and need no
// network request at all.
#pragma once

#include "hetero/compensation.hpp"
#include "sim/strategy.hpp"

namespace p2pvod::hetero {

class RelayStrategy final : public sim::RequestStrategy {
 public:
  explicit RelayStrategy(const CompensationPlan& plan) : plan_(plan) {}

  void plan(model::BoxId b, model::VideoId v, std::uint64_t ticket,
            model::Round now, sim::Simulator& sim,
            std::vector<sim::PlannedRequest>& out) override;
  [[nodiscard]] std::string name() const override { return "relay"; }

 private:
  void plan_rich(model::BoxId b, model::VideoId v, std::uint64_t ticket,
                 model::Round now, sim::Simulator& sim,
                 std::vector<sim::PlannedRequest>& out) const;
  void plan_poor(model::BoxId b, model::VideoId v, std::uint64_t ticket,
                 model::Round now, sim::Simulator& sim,
                 std::vector<sim::PlannedRequest>& out) const;

  const CompensationPlan& plan_;
};

}  // namespace p2pvod::hetero
