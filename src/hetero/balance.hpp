// u*-storage-balance (§4) and the elementary sub-box view.
//
// A system is u*-storage-balanced when 2 <= d_b/u_b <= d/u* for every box —
// storage should sit where upload can serve it. The paper notes any system
// with d_b >= 2 u_b can be *made* balanced by truncating storage to
// d'_b = τ·u_b with τ = min_b d_b/u_b (at the cost of average storage τ·u);
// `truncate_storage` implements that reduction.
//
// The Theorem 2 counting argument splits each box into elementary sub-boxes
// of upload 1/c and storage <= d/(u*c); `sub_box_count` exposes that view so
// tests can cross-check the analysis module's set-counting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/capacity.hpp"

namespace p2pvod::hetero {

struct BalanceReport {
  bool storage_balanced = false;
  double u_star = 1.0;
  std::vector<model::BoxId> below_lower;  ///< boxes with d_b < 2 u_b
  std::vector<model::BoxId> above_upper;  ///< boxes with d_b/u_b > d/u*
  double min_ratio = 0.0;                 ///< min_b d_b/u_b (τ)
  double max_ratio = 0.0;

  [[nodiscard]] std::string describe() const;
};

class BalanceChecker {
 public:
  [[nodiscard]] static BalanceReport check(
      const model::CapacityProfile& profile, double u_star);

  /// Reduce every box's storage to d'_b = τ·u_b, τ = min_b d_b/u_b.
  /// Requires u_b > 0 for every box with d_b > 0.
  [[nodiscard]] static model::CapacityProfile truncate_storage(
      const model::CapacityProfile& profile);

  /// Number of elementary sub-boxes (upload 1/c units) of box b: ⌊u_b·c⌋.
  [[nodiscard]] static std::uint64_t sub_box_count(
      const model::CapacityProfile& profile, std::uint32_t c);
};

}  // namespace p2pvod::hetero
