#include "hetero/balance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace p2pvod::hetero {

std::string BalanceReport::describe() const {
  std::ostringstream out;
  out << "storage-balance(u*=" << u_star << "): "
      << (storage_balanced ? "balanced" : "unbalanced")
      << " ratio[min,max]=[" << min_ratio << "," << max_ratio << "]"
      << " below=" << below_lower.size() << " above=" << above_upper.size();
  return out.str();
}

BalanceReport BalanceChecker::check(const model::CapacityProfile& profile,
                                    double u_star) {
  BalanceReport report;
  report.u_star = u_star;
  const double upper = profile.average_storage() / u_star;
  report.min_ratio = std::numeric_limits<double>::infinity();
  report.max_ratio = 0.0;
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const double ub = profile.upload(b);
    const double db = profile.storage(b);
    if (ub == 0.0) {
      // A zero-upload box is balanced only when it also stores nothing
      // (otherwise its storage can never be served at the balanced rate).
      if (db > 0.0) report.above_upper.push_back(b);
      continue;
    }
    const double ratio = db / ub;
    report.min_ratio = std::min(report.min_ratio, ratio);
    report.max_ratio = std::max(report.max_ratio, ratio);
    if (ratio < 2.0) report.below_lower.push_back(b);
    if (ratio > upper + 1e-12) report.above_upper.push_back(b);
  }
  report.storage_balanced =
      report.below_lower.empty() && report.above_upper.empty();
  return report;
}

model::CapacityProfile BalanceChecker::truncate_storage(
    const model::CapacityProfile& profile) {
  double tau = std::numeric_limits<double>::infinity();
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const double ub = profile.upload(b);
    const double db = profile.storage(b);
    if (ub == 0.0) {
      if (db > 0.0)
        throw std::invalid_argument(
            "truncate_storage: zero-upload box with storage cannot be "
            "balanced");
      continue;
    }
    tau = std::min(tau, db / ub);
  }
  if (!std::isfinite(tau))
    throw std::invalid_argument("truncate_storage: no box with upload");
  return profile.with_storage_ratio(tau);
}

std::uint64_t BalanceChecker::sub_box_count(
    const model::CapacityProfile& profile, std::uint32_t c) {
  std::uint64_t total = 0;
  for (model::BoxId b = 0; b < profile.size(); ++b)
    total += profile.upload_slots(b, c);
  return total;
}

}  // namespace p2pvod::hetero
