// u*-upload-compensation (§4).
//
// In a heterogeneous system, boxes with u_b < u* ("poor") cannot replicate
// data among themselves fast enough when they crowd into one swarm. The
// paper's remedy: every poor box b is paired with a rich relay r(b) that
// reserves upload  u* + 1 − 2·u_b  for b; a rich box a may host several
// reservations while  u_a >= u* + Σ_{b: r(b)=a} (u* + 1 − 2 u_b).
//
// CompensationPlan computes such a pairing (first-fit decreasing — the
// pairing is an existence argument in the paper, any feasible one works),
// plus the derived quantities the simulator needs:
//   * usable upload per box: u_a minus the *statically consumed* forwarding
//     bandwidth (c − c_b)/c per hosted poor box (the paper's u'_a = u_a − U^s)
//   * direct stripe count per poor box: c_b = max(0, ⌊c·u_b − 4µ⁴⌋).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/capacity.hpp"
#include "model/ids.hpp"

namespace p2pvod::hetero {

struct CompensationPlan {
  double u_star = 1.0;
  std::uint32_t c = 1;
  double mu = 1.0;

  /// relay[b] = r(b) for poor boxes; kInvalidBox for rich boxes.
  std::vector<model::BoxId> relay;
  /// Total reservation Σ (u*+1-2u_b) hosted on each box (0 for poor boxes).
  std::vector<double> reserved;
  /// Upload available for answering requests after static forwarding costs.
  std::vector<double> usable_upload;
  /// c_b for poor boxes (stripes requested directly); c for rich boxes.
  std::vector<std::uint32_t> direct_stripes;

  [[nodiscard]] std::uint32_t poor_count() const;
  /// Integral matching capacities ⌊usable·c⌋ for Simulator::capacity_override.
  [[nodiscard]] std::vector<std::uint32_t> capacity_slots() const;
  [[nodiscard]] std::string describe() const;

  /// Re-verify every §4 inequality; throws std::logic_error on violation.
  void check(const model::CapacityProfile& profile) const;
};

class Compensator {
 public:
  /// Build a compensation plan, or nullopt when no feasible pairing exists
  /// (e.g. u < u* + Δ(u*)/n, or no box is rich enough for some reservation).
  [[nodiscard]] static std::optional<CompensationPlan> plan(
      const model::CapacityProfile& profile, double u_star, std::uint32_t c,
      double mu);

  /// Necessary condition quoted by the paper: u >= u* + Δ(1)/n.
  [[nodiscard]] static bool necessary_condition(
      const model::CapacityProfile& profile, double u_star);

  /// c_b = max(0, ⌊c·u_b − 4µ⁴⌋), clamped to c−1 (at least the preload stripe
  /// always goes through the relay).
  [[nodiscard]] static std::uint32_t direct_stripe_count(double u_b,
                                                         std::uint32_t c,
                                                         double mu);
};

}  // namespace p2pvod::hetero
