#include "hetero/compensation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p2pvod::hetero {

std::uint32_t CompensationPlan::poor_count() const {
  std::uint32_t count = 0;
  for (const model::BoxId r : relay) {
    if (r != model::kInvalidBox) ++count;
  }
  return count;
}

std::vector<std::uint32_t> CompensationPlan::capacity_slots() const {
  std::vector<std::uint32_t> slots(usable_upload.size());
  for (std::size_t b = 0; b < usable_upload.size(); ++b) {
    const double s = std::floor(usable_upload[b] * c + 1e-9);
    slots[b] = s <= 0.0 ? 0u : static_cast<std::uint32_t>(s);
  }
  return slots;
}

std::string CompensationPlan::describe() const {
  std::ostringstream out;
  out << "compensation u*=" << u_star << " c=" << c << " mu=" << mu
      << " poor=" << poor_count() << "/" << relay.size();
  return out.str();
}

void CompensationPlan::check(const model::CapacityProfile& profile) const {
  if (relay.size() != profile.size())
    throw std::logic_error("CompensationPlan: size mismatch");
  std::vector<double> hosted(profile.size(), 0.0);
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const model::BoxId r = relay[b];
    if (r == model::kInvalidBox) {
      if (profile.upload(b) < u_star)
        throw std::logic_error("CompensationPlan: poor box without relay");
      continue;
    }
    if (profile.upload(b) >= u_star)
      throw std::logic_error("CompensationPlan: rich box has a relay");
    if (profile.upload(r) < u_star)
      throw std::logic_error("CompensationPlan: relay is not rich");
    hosted[r] += u_star + 1.0 - 2.0 * profile.upload(b);
  }
  for (model::BoxId a = 0; a < profile.size(); ++a) {
    if (std::abs(hosted[a] - reserved[a]) > 1e-9)
      throw std::logic_error("CompensationPlan: reserved bookkeeping drifted");
    if (hosted[a] > 0.0 && profile.upload(a) + 1e-9 < u_star + hosted[a])
      throw std::logic_error(
          "CompensationPlan: reservation inequality violated");
  }
}

bool Compensator::necessary_condition(const model::CapacityProfile& profile,
                                      double u_star) {
  return profile.average_upload() + 1e-12 >=
         u_star + profile.upload_deficit(1.0) /
                      static_cast<double>(profile.size());
}

std::uint32_t Compensator::direct_stripe_count(double u_b, std::uint32_t c,
                                               double mu) {
  const double mu4 = mu * mu * mu * mu;
  const double raw = std::floor(u_b * c - 4.0 * mu4 + 1e-9);
  if (raw <= 0.0) return 0;
  return std::min<std::uint32_t>(static_cast<std::uint32_t>(raw), c - 1);
}

std::optional<CompensationPlan> Compensator::plan(
    const model::CapacityProfile& profile, double u_star, std::uint32_t c,
    double mu) {
  if (u_star <= 1.0)
    throw std::invalid_argument("Compensator: u* must exceed 1");
  if (c == 0) throw std::invalid_argument("Compensator: c == 0");
  if (mu < 1.0) throw std::invalid_argument("Compensator: mu < 1");

  const std::uint32_t n = profile.size();
  CompensationPlan out;
  out.u_star = u_star;
  out.c = c;
  out.mu = mu;
  out.relay.assign(n, model::kInvalidBox);
  out.reserved.assign(n, 0.0);
  out.usable_upload.resize(n);
  out.direct_stripes.assign(n, c);

  // First-fit decreasing: largest reservations first, onto the box with the
  // most spare headroom (u_a − u* − hosted). Not optimal bin packing — any
  // feasible pairing satisfies Theorem 2, and FFD finds one whenever slack is
  // not razor-thin.
  std::vector<model::BoxId> poor = profile.poor_boxes(u_star);
  std::vector<model::BoxId> rich = profile.rich_boxes(u_star);
  if (poor.empty()) {
    for (model::BoxId b = 0; b < n; ++b)
      out.usable_upload[b] = profile.upload(b);
    return out;
  }
  if (rich.empty()) return std::nullopt;

  std::sort(poor.begin(), poor.end(),
            [&](model::BoxId x, model::BoxId y) {
              return profile.upload(x) < profile.upload(y);  // biggest need first
            });
  std::vector<double> headroom(n, 0.0);
  for (const model::BoxId a : rich) headroom[a] = profile.upload(a) - u_star;

  std::vector<double> forwarding(n, 0.0);  // static forwarding cost per relay
  for (const model::BoxId b : poor) {
    const double need = u_star + 1.0 - 2.0 * profile.upload(b);
    model::BoxId best = model::kInvalidBox;
    double best_headroom = -1.0;
    for (const model::BoxId a : rich) {
      if (headroom[a] >= need - 1e-12 && headroom[a] > best_headroom) {
        best_headroom = headroom[a];
        best = a;
      }
    }
    if (best == model::kInvalidBox) return std::nullopt;
    headroom[best] -= need;
    out.relay[b] = best;
    out.reserved[best] += need;
    const std::uint32_t cb = direct_stripe_count(profile.upload(b), c, mu);
    out.direct_stripes[b] = cb;
    forwarding[best] += static_cast<double>(c - cb) / static_cast<double>(c);
  }

  for (model::BoxId b = 0; b < n; ++b) {
    out.usable_upload[b] =
        std::max(0.0, profile.upload(b) - forwarding[b]);
  }
  return out;
}

}  // namespace p2pvod::hetero
