#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace p2pvod::workload {

Trace::Trace(std::vector<TraceEntry> entries) : entries_(std::move(entries)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.round < b.round;
                   });
}

void Trace::add(model::Round round, model::BoxId box, model::VideoId video) {
  if (!entries_.empty() && round < entries_.back().round)
    throw std::invalid_argument("Trace::add: rounds must be non-decreasing");
  entries_.push_back({round, box, video});
}

void Trace::save(std::ostream& out) const {
  for (const TraceEntry& e : entries_)
    out << e.round << ' ' << e.box << ' ' << e.video << '\n';
}

void Trace::save_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Trace::save_file: cannot open " + path);
  save(file);
}

Trace Trace::load(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceEntry e{};
    if (!(fields >> e.round >> e.box >> e.video))
      throw std::runtime_error("Trace::load: malformed line: " + line);
    entries.push_back(e);
  }
  return Trace(std::move(entries));
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("Trace::load_file: cannot open " + path);
  return load(file);
}

std::vector<sim::Demand> TraceRecorder::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out = inner_.demands(sim);
  for (const sim::Demand& d : out) trace_.add(sim.now(), d.box, d.video);
  return out;
}

TraceReplay::TraceReplay(Trace trace) : trace_(std::move(trace)) {}

std::vector<sim::Demand> TraceReplay::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  const auto& entries = trace_.entries();
  while (cursor_ < entries.size() && entries[cursor_].round == sim.now()) {
    out.push_back({entries[cursor_].box, entries[cursor_].video});
    ++cursor_;
  }
  return out;
}

}  // namespace p2pvod::workload
