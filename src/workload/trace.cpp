#include "workload/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace p2pvod::workload {

Trace::Trace(std::vector<TraceEntry> entries) : entries_(std::move(entries)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.round < b.round;
                   });
}

void Trace::add(model::Round round, model::BoxId box, model::VideoId video) {
  if (!entries_.empty() && round < entries_.back().round)
    throw std::invalid_argument("Trace::add: rounds must be non-decreasing");
  entries_.push_back({round, box, video});
}

void Trace::save(std::ostream& out) const {
  for (const TraceEntry& e : entries_)
    out << e.round << ' ' << e.box << ' ' << e.video << '\n';
}

void Trace::save_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Trace::save_file: cannot open " + path);
  save(file);
}

Trace Trace::load(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&line_number](const std::string& what) {
    throw std::runtime_error("Trace::load: line " +
                             std::to_string(line_number) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    // Fields are tokenized first and parsed as signed 64-bit with strtoll so
    // a negative or non-numeric box id is an error instead of silently
    // wrapping through unsigned extraction, and an overflowing value is
    // blamed on its own token (istream extraction would consume it and point
    // the diagnostic at the next field).
    const auto next_field = [&](const char* name) -> long long {
      std::string token;
      if (!(fields >> token))
        fail(std::string("truncated line (missing ") + name +
             "; expected '<round> <box> <video>'): '" + line + "'");
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0')
        fail(std::string("non-numeric ") + name + " field '" + token +
             "' in '" + line + "'");
      if (errno == ERANGE)
        fail(std::string(name) + " field '" + token + "' out of range in '" +
             line + "'");
      return value;
    };
    TraceEntry e{};
    e.round = next_field("round");
    const long long box = next_field("box");
    const long long video = next_field("video");
    if (box < 0 || box > std::numeric_limits<std::uint32_t>::max())
      fail("box id " + std::to_string(box) + " out of range");
    if (video < 0 || video > std::numeric_limits<std::uint32_t>::max())
      fail("video id " + std::to_string(video) + " out of range");
    e.box = static_cast<model::BoxId>(box);
    e.video = static_cast<model::VideoId>(video);
    if (std::string extra; fields >> extra)
      fail("trailing garbage '" + extra + "' in '" + line + "'");
    if (!entries.empty() && e.round < entries.back().round)
      fail("rounds must be non-decreasing (round " +
           std::to_string(e.round) + " after " +
           std::to_string(entries.back().round) + ")");
    entries.push_back(e);
  }
  return Trace(std::move(entries));
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("Trace::load_file: cannot open " + path);
  return load(file);
}

std::vector<sim::Demand> TraceRecorder::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out = inner_.demands(sim);
  for (const sim::Demand& d : out) trace_.add(sim.now(), d.box, d.video);
  return out;
}

TraceReplay::TraceReplay(Trace trace) : trace_(std::move(trace)) {}

std::vector<sim::Demand> TraceReplay::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  const auto& entries = trace_.entries();
  while (cursor_ < entries.size() && entries[cursor_].round == sim.now()) {
    out.push_back({entries[cursor_].box, entries[cursor_].video});
    ++cursor_;
  }
  return out;
}

}  // namespace p2pvod::workload
