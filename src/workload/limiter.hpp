// GrowthLimiter: admission control enforcing the paper's swarm-growth bound.
//
// The model assumes of every demand sequence that f(t+i) <= ceil(max(f(t),1)
// µ^i) for all t and i (§1.1). Enforcing only the one-step rule is NOT enough:
// ceilings compound (f=1, µ=1.4 gives ceil(ceil(1.4)·1.4)=3 > ceil(1.96)=2),
// so the limiter tracks, per video, the tightest anchor
//     L = min over past rounds t' of ( log max(f(t'),1) − t′·log µ )
// and admits joins only while f(t) <= ceil(exp(L + t·log µ)). Demands above
// the cap are dropped (the adversary loses that move, as the model demands).
#pragma once

#include "workload/demand.hpp"

namespace p2pvod::workload {

class GrowthLimiter final : public DemandGenerator {
 public:
  GrowthLimiter(DemandGenerator& inner, double mu);

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override {
    return "mu-limited(" + inner_.name() + ")";
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// The cap on f(now) for video v given the anchors seen so far.
  [[nodiscard]] std::uint64_t cap(model::VideoId v, model::Round now,
                                  std::uint32_t box_count) const;

 private:
  DemandGenerator& inner_;
  double mu_;
  double log_mu_;
  std::vector<double> anchor_;  ///< per-video L; +inf until first observation
  std::uint64_t dropped_ = 0;
};

}  // namespace p2pvod::workload
