#include "workload/limiter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace p2pvod::workload {

GrowthLimiter::GrowthLimiter(DemandGenerator& inner, double mu)
    : inner_(inner), mu_(mu), log_mu_(std::log(mu)) {
  if (mu < 1.0) throw std::invalid_argument("GrowthLimiter: mu < 1");
}

std::uint64_t GrowthLimiter::cap(model::VideoId v, model::Round now,
                                 std::uint32_t box_count) const {
  if (v >= anchor_.size() || anchor_[v] == std::numeric_limits<double>::infinity())
    return box_count;  // no anchor yet: first joins are unconstrained (f<=1 rule seeds below)
  const double log_cap = anchor_[v] + static_cast<double>(now) * log_mu_;
  const double log_n = std::log(static_cast<double>(box_count) + 1.0);
  if (log_cap >= log_n) return box_count;  // cap beyond population size
  return static_cast<std::uint64_t>(std::ceil(std::exp(log_cap) - 1e-9));
}

std::vector<sim::Demand> GrowthLimiter::demands(const sim::Simulator& sim) {
  const std::uint32_t m = sim.catalog().video_count();
  const std::uint32_t n = sim.profile().size();
  if (anchor_.size() < m)
    anchor_.resize(m, std::numeric_limits<double>::infinity());

  // Update anchors with the current sizes f(t): every round is a potential
  // new anchor t' for the min above.
  const model::Round now = sim.now();
  for (model::VideoId v = 0; v < m; ++v) {
    const double f = std::max<double>(1.0, sim.swarms().size(v));
    anchor_[v] = std::min(anchor_[v],
                          std::log(f) - static_cast<double>(now) * log_mu_);
  }

  std::vector<sim::Demand> raw = inner_.demands(sim);
  std::vector<sim::Demand> admitted;
  admitted.reserve(raw.size());
  // Joins this round count against the cap at t+1 (they enter the swarm now
  // and are visible as f at the next anchor check): admit while
  // f_current + joins(v) <= cap(v, now+1).
  std::vector<std::uint64_t> joins(m, 0);
  for (const sim::Demand& d : raw) {
    const std::uint64_t limit = cap(d.video, now + 1, n);
    const std::uint64_t current = sim.swarms().size(d.video) + joins[d.video];
    if (current < limit) {
      admitted.push_back(d);
      ++joins[d.video];
    } else {
      ++dropped_;
    }
  }
  return admitted;
}

}  // namespace p2pvod::workload
