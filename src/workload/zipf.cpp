#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2pvod::workload {

ZipfSampler::ZipfSampler(std::uint32_t size, double alpha) {
  if (size == 0) throw std::invalid_argument("ZipfSampler: empty support");
  if (alpha < 0.0) throw std::invalid_argument("ZipfSampler: alpha < 0");
  cumulative_.resize(size);
  double acc = 0.0;
  for (std::uint32_t r = 0; r < size; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cumulative_[r] = acc;
  }
  for (double& value : cumulative_) value /= acc;
}

std::uint32_t ZipfSampler::sample(util::Rng& rng) const {
  const double x = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  return static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

double ZipfSampler::probability(std::uint32_t rank) const {
  if (rank >= cumulative_.size())
    throw std::out_of_range("ZipfSampler::probability");
  return rank == 0 ? cumulative_[0]
                   : cumulative_[rank] - cumulative_[rank - 1];
}

std::vector<sim::Demand> ZipfDemand::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  for (const model::BoxId b : idle_boxes(sim)) {
    if (!rng_.next_bool(demand_prob_)) continue;
    out.push_back({b, sampler_.sample(rng_)});
  }
  return out;
}

}  // namespace p2pvod::workload
