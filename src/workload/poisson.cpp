#include "workload/poisson.hpp"

#include <cmath>

namespace p2pvod::workload {

std::uint32_t PoissonArrivals::sample_poisson() {
  const double limit = std::exp(-rate_);
  std::uint32_t count = 0;
  double product = rng_.next_double();
  while (product > limit) {
    ++count;
    product *= rng_.next_double();
  }
  return count;
}

std::vector<sim::Demand> PoissonArrivals::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  std::uint32_t arrivals = sample_poisson();
  if (arrivals == 0) return out;
  std::vector<model::BoxId> idle = idle_boxes(sim);
  const std::uint32_t m = sim.catalog().video_count();
  while (arrivals-- > 0 && !idle.empty()) {
    const auto pick = static_cast<std::size_t>(rng_.next_below(idle.size()));
    const model::BoxId box = idle[pick];
    idle[pick] = idle.back();
    idle.pop_back();
    out.push_back({box, static_cast<model::VideoId>(rng_.next_below(m))});
  }
  return out;
}

}  // namespace p2pvod::workload
