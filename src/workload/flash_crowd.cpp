#include "workload/flash_crowd.hpp"

#include <algorithm>
#include <cmath>

namespace p2pvod::workload {

std::vector<sim::Demand> FlashCrowd::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  if (sim.now() < start_) return out;
  if (max_joiners_ != 0 && joined_ >= max_joiners_) return out;

  // Maximal growth: the swarm may reach ceil(max(f,1)·µ) next round.
  const std::uint32_t f = sim.swarms().size(video_);
  const double target = std::ceil(std::max<double>(f, 1.0) * mu_);
  std::uint32_t joins =
      target <= f ? 0u : static_cast<std::uint32_t>(target) - f;
  if (sim.now() == start_ && f == 0 && joins == 0) joins = 1;  // seed viewer
  if (max_joiners_ != 0) joins = std::min(joins, max_joiners_ - joined_);

  for (const model::BoxId b : idle_boxes(sim)) {
    if (joins == 0) break;
    out.push_back({b, video_});
    --joins;
    ++joined_;
  }
  return out;
}

}  // namespace p2pvod::workload
