#include "workload/distinct.hpp"

namespace p2pvod::workload {

std::vector<sim::Demand> DistinctVideosSweep::demands(
    const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  if (sim.now() < start_) return out;
  const std::uint32_t n = sim.profile().size();
  const std::uint32_t m = sim.catalog().video_count();

  if (!initialized_) {
    // Random rotation offsets keep the box -> video map unbiased across
    // trials while preserving pairwise distinctness (a shifted permutation).
    const std::vector<std::uint32_t> perm = rng_.permutation(n);
    next_video_.resize(n);
    for (model::BoxId b = 0; b < n; ++b)
      next_video_[b] = perm[b] % m;
    initialized_ = true;
    out.reserve(n);
    for (model::BoxId b = 0; b < n; ++b) {
      if (!sim.box_idle(b)) continue;
      out.push_back({b, next_video_[b]});
      next_video_[b] = (next_video_[b] + 1) % m;
    }
    return out;
  }

  if (!repeat_) return out;
  for (const model::BoxId b : idle_boxes(sim)) {
    out.push_back({b, next_video_[b]});
    next_video_[b] = (next_video_[b] + 1) % m;
  }
  return out;
}

}  // namespace p2pvod::workload
