// Pairwise-distinct-videos sweep: the pure *sourcing* stress of the authors'
// preliminary work [3] ("requests concern pairwise distinct videos").
//
// At round `start`, every box demands a different video (box b gets video
// perm(b) mod m); when `repeat` is set, boxes immediately demand the next
// distinct video as they go idle. With n <= m the demands are pairwise
// distinct, so no swarming is possible and every chunk must come from static
// replicas — isolating the sourcing half of the sourcing/swarming trade-off.
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

class DistinctVideosSweep final : public DemandGenerator {
 public:
  DistinctVideosSweep(std::uint64_t seed, bool repeat = false,
                      model::Round start = 0)
      : rng_(seed), repeat_(repeat), start_(start) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "distinct-videos"; }

 private:
  util::Rng rng_;
  bool repeat_;
  model::Round start_;
  bool initialized_ = false;
  std::vector<model::VideoId> next_video_;  ///< per-box rotation cursor
};

}  // namespace p2pvod::workload
