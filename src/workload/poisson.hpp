// Poisson arrivals: `rate` demands per round on average, assigned to
// uniformly random idle boxes and uniformly random videos. The memoryless
// background load for long-running soak simulations.
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

class PoissonArrivals final : public DemandGenerator {
 public:
  PoissonArrivals(double rate, std::uint64_t seed)
      : rate_(rate), rng_(seed) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "poisson"; }

 private:
  /// Knuth sampling; fine for the modest per-round rates we simulate.
  [[nodiscard]] std::uint32_t sample_poisson();

  double rate_;
  util::Rng rng_;
};

}  // namespace p2pvod::workload
