// Sequential "binge" viewer: each box watches videos back to back.
//
// Exercises the §1.1 playback-cache corner: "If a box plays videos one after
// another, the cache then contains the end of the previous video and the
// beginning of the current one." A box that finishes video v immediately
// demands v+1 (mod m), staggered by a per-box random start so swarm positions
// spread out.
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

class SequentialViewer final : public DemandGenerator {
 public:
  SequentialViewer(std::uint64_t seed, double join_prob = 1.0)
      : rng_(seed), join_prob_(join_prob) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

 private:
  util::Rng rng_;
  double join_prob_;  ///< chance an idle box (re)joins each round
  bool initialized_ = false;
  std::vector<model::VideoId> next_video_;
};

}  // namespace p2pvod::workload
