// Flash crowd at maximal swarm growth.
//
// The hardest swarming scenario of the model: a single video attracts joiners
// as fast as the growth bound µ allows — f(t+1) = ceil(max(f(t),1)·µ) — until
// `max_joiners` boxes (or all boxes) have joined. This is the workload behind
// experiment E5 (feasibility frontier over (c, µ), Lemma 2's regime) and the
// strategy ablation (preloading vs naive).
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

class FlashCrowd final : public DemandGenerator {
 public:
  /// Joiners pick boxes in id order (deterministic) — box identity is
  /// irrelevant to the matching, only the join schedule matters.
  FlashCrowd(model::VideoId video, double mu, model::Round start_round = 0,
             std::uint32_t max_joiners = 0)
      : video_(video), mu_(mu), start_(start_round), max_joiners_(max_joiners) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "flash-crowd"; }

  [[nodiscard]] std::uint32_t total_joined() const noexcept { return joined_; }

 private:
  model::VideoId video_;
  double mu_;
  model::Round start_;
  std::uint32_t max_joiners_;  ///< 0 = every box eventually joins
  std::uint32_t joined_ = 0;
};

}  // namespace p2pvod::workload
