#include "workload/adversarial.hpp"

#include <algorithm>

namespace p2pvod::workload {

std::vector<sim::Demand> AvoiderAdversary::demands(const sim::Simulator& sim) {
  std::vector<sim::Demand> out;
  const model::Catalog& catalog = sim.catalog();
  const alloc::Allocation& allocation = sim.allocation();
  const std::uint32_t m = catalog.video_count();

  std::uint32_t emitted = 0;
  for (const model::BoxId b : idle_boxes(sim)) {
    if (max_per_round_ != 0 && emitted >= max_per_round_) break;

    // Collect the videos b has no data of; pick one uniformly to spread
    // swarms (keeps the per-video growth bound satisfied for free when n<<m).
    std::vector<model::VideoId> missing;
    missing.reserve(m);
    for (model::VideoId v = 0; v < m; ++v) {
      if (!allocation.box_has_video_data(b, catalog, v)) missing.push_back(v);
    }
    if (!missing.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng_.next_below(missing.size()));
      out.push_back({b, missing[pick]});
      ++emitted;
      continue;
    }
    if (fallback_ == Fallback::kStaySilent) continue;

    // Fallback: least locally-stored stripes (weakest local coverage).
    model::VideoId best = 0;
    std::uint32_t best_count = catalog.stripes_per_video() + 1;
    for (model::VideoId v = 0; v < m; ++v) {
      std::uint32_t count = 0;
      for (std::uint32_t i = 0; i < catalog.stripes_per_video(); ++i) {
        if (allocation.box_has(b, catalog.stripe_id(v, i))) ++count;
      }
      if (count < best_count) {
        best_count = count;
        best = v;
      }
    }
    out.push_back({b, best});
    ++emitted;
  }
  return out;
}

}  // namespace p2pvod::workload
