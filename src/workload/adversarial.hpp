// The §1.3 lower-bound adversary.
//
// "Consider a sequence of requests where each box always plays a video it
// does not possess. The aggregated download rate then becomes n whereas the
// aggregated upload rate is un < n which is not sufficient."
//
// AvoiderAdversary implements exactly that: every idle box demands a video of
// which it stores *no stripe*. When every video has local data (m <= d/ℓ, the
// constant-catalog regime), it falls back per `fallback` — either stay silent
// (the adversary has no move) or demand the video with the least local data.
// Driving a u<1 system with m > d_max/ℓ through this adversary must stall it;
// experiment E2 sweeps u across the threshold with it.
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

class AvoiderAdversary final : public DemandGenerator {
 public:
  enum class Fallback {
    kStaySilent,     ///< no demand when every video has local data
    kLeastLocalData  ///< demand the video with fewest locally stored stripes
  };

  AvoiderAdversary(std::uint64_t seed, Fallback fallback = Fallback::kStaySilent,
                   std::uint32_t max_demands_per_round = 0)
      : rng_(seed), fallback_(fallback), max_per_round_(max_demands_per_round) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "avoider"; }

 private:
  util::Rng rng_;
  Fallback fallback_;
  std::uint32_t max_per_round_;  ///< 0 = unlimited
};

}  // namespace p2pvod::workload
