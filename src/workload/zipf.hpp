// Zipf-popularity demand: the classical VoD popularity model.
//
// Each idle box demands, with probability `demand_prob` per round, a video
// drawn from a Zipf(alpha) distribution over the catalog (rank 1 most
// popular). Not adversarial — this is the "realistic load" workload used by
// the examples and the E2 success-probability experiment's background traffic.
#pragma once

#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::workload {

/// Discrete Zipf sampler over {0, ..., size-1} with exponent alpha >= 0
/// (alpha = 0 is uniform). Inverse-CDF over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t size, double alpha);

  [[nodiscard]] std::uint32_t sample(util::Rng& rng) const;
  [[nodiscard]] double probability(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(cumulative_.size());
  }

 private:
  std::vector<double> cumulative_;
};

class ZipfDemand final : public DemandGenerator {
 public:
  ZipfDemand(std::uint32_t catalog_size, double alpha, double demand_prob,
             std::uint64_t seed)
      : sampler_(catalog_size, alpha), demand_prob_(demand_prob), rng_(seed) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "zipf"; }

 private:
  ZipfSampler sampler_;
  double demand_prob_;
  util::Rng rng_;
};

}  // namespace p2pvod::workload
