#include "workload/demand.hpp"

namespace p2pvod::workload {

std::vector<model::BoxId> idle_boxes(const sim::Simulator& sim) {
  std::vector<model::BoxId> out;
  const std::uint32_t n = sim.profile().size();
  out.reserve(n);
  for (model::BoxId b = 0; b < n; ++b) {
    if (sim.box_idle(b)) out.push_back(b);
  }
  return out;
}

}  // namespace p2pvod::workload
