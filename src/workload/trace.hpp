// Demand traces: record a generator's output and replay it verbatim.
//
// Traces make adversarial counter-examples reproducible artifacts: when a
// random experiment finds a defeating sequence, the trace can be saved,
// attached to a bug report, and replayed against a fixed allocation. Plain
// text format, one demand per line: "<round> <box> <video>".
#pragma once

#include <iosfwd>

#include "workload/demand.hpp"

namespace p2pvod::workload {

struct TraceEntry {
  model::Round round;
  model::BoxId box;
  model::VideoId video;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEntry> entries);

  void add(model::Round round, model::BoxId box, model::VideoId video);
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  /// Parse "<round> <box> <video>" lines ('#' comments and blank lines
  /// skipped). Malformed input — truncated lines, non-numeric or
  /// out-of-range fields, trailing garbage, rounds out of order — throws
  /// std::runtime_error naming the offending line number.
  [[nodiscard]] static Trace load(std::istream& in);
  [[nodiscard]] static Trace load_file(const std::string& path);

 private:
  std::vector<TraceEntry> entries_;  ///< kept sorted by round (stable)
};

/// Wraps another generator, recording everything it emits.
class TraceRecorder final : public DemandGenerator {
 public:
  explicit TraceRecorder(DemandGenerator& inner) : inner_(inner) {}

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override {
    return "record(" + inner_.name() + ")";
  }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

 private:
  DemandGenerator& inner_;
  Trace trace_;
};

/// Replays a trace: demands recorded for round t are emitted at round t.
class TraceReplay final : public DemandGenerator {
 public:
  explicit TraceReplay(Trace trace);

  [[nodiscard]] std::vector<sim::Demand> demands(
      const sim::Simulator& sim) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  Trace trace_;
  std::size_t cursor_ = 0;
};

}  // namespace p2pvod::workload
