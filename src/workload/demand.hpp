// DemandGenerator: produces the demand sequence driving a simulation.
//
// The paper's results quantify over *adversarial* demand sequences subject to
// two rules the generators here respect (or are wrapped to respect):
//   * at most one video playing per box (busy boxes don't demand), and
//   * swarm growth bounded by µ (see GrowthLimiter).
// Generators see the simulator read-only and may inspect swarm sizes, idle
// boxes and the allocation — the §1.3 adversary explicitly exploits the
// allocation ("each box always plays a video it does not possess").
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace p2pvod::workload {

class DemandGenerator {
 public:
  virtual ~DemandGenerator() = default;

  /// Demands arriving this round (sim.now()). Called once per round.
  [[nodiscard]] virtual std::vector<sim::Demand> demands(
      const sim::Simulator& sim) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Helper shared by generators: ids of currently idle boxes.
[[nodiscard]] std::vector<model::BoxId> idle_boxes(const sim::Simulator& sim);

}  // namespace p2pvod::workload
