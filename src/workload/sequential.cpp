#include "workload/sequential.hpp"

namespace p2pvod::workload {

std::vector<sim::Demand> SequentialViewer::demands(const sim::Simulator& sim) {
  const std::uint32_t n = sim.profile().size();
  const std::uint32_t m = sim.catalog().video_count();
  if (!initialized_) {
    next_video_.resize(n);
    for (model::BoxId b = 0; b < n; ++b)
      next_video_[b] = static_cast<model::VideoId>(rng_.next_below(m));
    initialized_ = true;
  }

  std::vector<sim::Demand> out;
  for (const model::BoxId b : idle_boxes(sim)) {
    if (!rng_.next_bool(join_prob_)) continue;
    out.push_back({b, next_video_[b]});
    next_video_[b] = (next_video_[b] + 1) % m;
  }
  return out;
}

}  // namespace p2pvod::workload
