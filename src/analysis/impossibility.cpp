#include "analysis/impossibility.hpp"

#include <cmath>
#include <sstream>

namespace p2pvod::analysis {

std::uint32_t ImpossibilityAnalyzer::catalog_upper_bound(
    const model::CapacityProfile& profile, std::uint32_t c) {
  return static_cast<std::uint32_t>(
      std::floor(profile.max_storage() * static_cast<double>(c) + 1e-9));
}

ImpossibilityCertificate ImpossibilityAnalyzer::analyze(
    const model::CapacityProfile& profile, const model::Catalog& catalog) {
  ImpossibilityCertificate cert;
  const auto n = static_cast<double>(profile.size());
  cert.average_upload = profile.average_upload();
  cert.aggregate_upload = cert.average_upload * n;
  cert.aggregate_demand = n;
  cert.catalog_limit =
      catalog_upper_bound(profile, catalog.stripes_per_video());
  cert.catalog_size = catalog.video_count();
  cert.applies =
      cert.average_upload < 1.0 && cert.catalog_size > cert.catalog_limit;

  std::ostringstream out;
  if (cert.applies) {
    out << "u=" << cert.average_upload << " < 1 and m=" << cert.catalog_size
        << " > d_max/l=" << cert.catalog_limit
        << ": every box can avoid its local data; aggregate demand "
        << cert.aggregate_demand << " exceeds aggregate upload "
        << cert.aggregate_upload << " -> some request must stall.";
  } else if (cert.average_upload >= 1.0) {
    out << "u=" << cert.average_upload
        << " >= 1: the Section 1.3 argument does not apply.";
  } else {
    out << "m=" << cert.catalog_size << " <= d_max/l=" << cert.catalog_limit
        << ": catalog is in the constant regime; every box can hold data of "
           "every video.";
  }
  cert.explanation = out.str();
  return cert;
}

std::optional<std::vector<model::VideoId>>
ImpossibilityAnalyzer::construct_avoider_demands(
    const model::Catalog& catalog, const alloc::Allocation& allocation) {
  std::vector<model::VideoId> demands(allocation.box_count());
  for (model::BoxId b = 0; b < allocation.box_count(); ++b) {
    bool found = false;
    for (model::VideoId v = 0; v < catalog.video_count(); ++v) {
      if (!allocation.box_has_video_data(b, catalog, v)) {
        demands[b] = v;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return demands;
}

}  // namespace p2pvod::analysis
