// Monte-Carlo calibration: the empirical side of Theorem 1.
//
// The theorem says: above the threshold, a random allocation with
// k = Θ(log d′) replicas survives every µ-bounded demand sequence whp.
// Calibrator measures the *empirical* minimum k (and maximum catalog m) at
// which the simulated system survives an adversarial workload suite, so the
// experiments can put theory and measurement side by side (E3, E4).
//
// A trial = allocate with a fresh seed, then run the selected workload
// suite(s) against the same allocation in strict mode; the trial succeeds iff
// no request-round ever goes unserved. Trials are independent and run in
// parallel with deterministic child seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"
#include "sim/strategy.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2pvod::analysis {

/// Which demand sequences a trial must survive.
enum class WorkloadSuite {
  kAvoider,     ///< §1.3 avoider adversary (sourcing stress)
  kFlashCrowd,  ///< maximal-growth flash crowd (swarming stress)
  kDistinct,    ///< pairwise distinct videos ([3]'s regime)
  kFull,        ///< all of the above, same allocation
};

[[nodiscard]] const char* suite_name(WorkloadSuite suite) noexcept;

struct TrialSpec {
  std::uint32_t n = 100;
  double u = 1.5;
  double d = 4.0;
  double mu = 1.3;
  std::uint32_t c = 4;
  std::uint32_t k = 4;
  model::Round duration = 24;   ///< T
  model::Round rounds = 72;     ///< simulated rounds per workload
  alloc::Scheme scheme = alloc::Scheme::kPermutation;
  sim::StrategyKind strategy = sim::StrategyKind::kPreloading;
  WorkloadSuite suite = WorkloadSuite::kFull;
  /// Explicit catalog size; 0 derives m from the storage identity ⌊d·n/k⌋.
  std::uint32_t m_override = 0;

  /// Catalog size: m_override, or ⌊d·n/k⌋ when unset (>= 1 either way).
  [[nodiscard]] std::uint32_t catalog() const;
};

/// Tuning for the speculative-probe search variants. The speculative search
/// evaluates a small ladder of candidate k (or m) values concurrently per
/// round — the candidates the sequential doubling/binary search could visit
/// next — then discards refuted probes. Because every candidate's success
/// rate is a pure function of (spec, trials, base_seed) with deterministic
/// per-candidate child seeds, the speculative search returns results
/// identical to the sequential one at any thread count.
struct SpeculationOptions {
  /// Probes evaluated concurrently per round. 0 reads the
  /// P2PVOD_PROBE_WIDTH environment variable; when that is unset too, the
  /// width adapts to pool slack (threads / trials, at most 4) because
  /// speculation trades extra trial work for latency and only pays when
  /// spare threads exist beyond one probe's own trials. Explicit values
  /// (here or via the env) are clamped to [1, 64] and honored as-is;
  /// 1 degrades to the plain sequential search.
  std::uint32_t ladder_width = 0;
  /// Pool for the flattened (candidate x trial) evaluation; nullptr selects
  /// ThreadPool::global().
  util::ThreadPool* pool = nullptr;
};

class Calibrator {
 public:
  /// One allocation + workload-suite run. True iff every request-round was
  /// served.
  [[nodiscard]] static bool run_trial(const TrialSpec& spec,
                                      std::uint64_t seed);

  /// Fraction of successful trials with a Wilson 95% interval.
  [[nodiscard]] static util::Proportion success_rate(
      const TrialSpec& spec, std::uint32_t trials, std::uint64_t base_seed,
      util::ThreadPool* pool = nullptr);

  struct MinKResult {
    std::uint32_t k = 0;        ///< smallest k reaching the target (0 = none)
    std::uint32_t catalog = 0;  ///< m at that k
    /// (k, success rate) pairs explored, in evaluation order.
    std::vector<std::pair<std::uint32_t, double>> explored;
  };
  /// Smallest k in [k_lo, k_hi] whose success rate reaches `target`
  /// (doubling + binary search; success is treated as monotone in k).
  [[nodiscard]] static MinKResult min_feasible_k(
      TrialSpec spec, std::uint32_t k_lo, std::uint32_t k_hi, double target,
      std::uint32_t trials, std::uint64_t base_seed,
      util::ThreadPool* pool = nullptr);

  /// Speculative-probe variant of min_feasible_k: concurrent candidate
  /// ladders instead of one probe at a time. Returns a result identical to
  /// the sequential search (same k, catalog, and explored list) at any
  /// thread count; falls back to the sequential path when the ladder width
  /// is 1, the pool is serial, or the caller is already a pool worker
  /// (nested parallelism degrades to serial trial loops, where speculation
  /// would only multiply work).
  [[nodiscard]] static MinKResult min_feasible_k_speculative(
      TrialSpec spec, std::uint32_t k_lo, std::uint32_t k_hi, double target,
      std::uint32_t trials, std::uint64_t base_seed,
      const SpeculationOptions& options = {});

  struct MaxCatalogResult {
    std::uint32_t m = 0;  ///< largest feasible catalog (0 = none feasible)
    std::uint32_t k = 0;  ///< replication at that m
    std::vector<std::pair<std::uint32_t, double>> explored;  ///< (m, rate)
  };
  /// Largest m in [1, ⌊d·n⌋] with success rate >= target, replication
  /// k = ⌊d·n/m⌋ (binary search; success treated as monotone decreasing in m).
  [[nodiscard]] static MaxCatalogResult max_catalog(
      TrialSpec spec, double target, std::uint32_t trials,
      std::uint64_t base_seed, util::ThreadPool* pool = nullptr);

  /// Speculative-probe variant of max_catalog; same result-identity
  /// guarantee and fallback rules as min_feasible_k_speculative.
  [[nodiscard]] static MaxCatalogResult max_catalog_speculative(
      TrialSpec spec, double target, std::uint32_t trials,
      std::uint64_t base_seed, const SpeculationOptions& options = {});
};

}  // namespace p2pvod::analysis
