// Monte-Carlo calibration: the empirical side of Theorem 1.
//
// The theorem says: above the threshold, a random allocation with
// k = Θ(log d′) replicas survives every µ-bounded demand sequence whp.
// Calibrator measures the *empirical* minimum k (and maximum catalog m) at
// which the simulated system survives an adversarial workload suite, so the
// experiments can put theory and measurement side by side (E3, E4).
//
// A trial = allocate with a fresh seed, then run the selected workload
// suite(s) against the same allocation in strict mode; the trial succeeds iff
// no request-round ever goes unserved. Trials are independent and run in
// parallel with deterministic child seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"
#include "sim/strategy.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace p2pvod::analysis {

/// Which demand sequences a trial must survive.
enum class WorkloadSuite {
  kAvoider,     ///< §1.3 avoider adversary (sourcing stress)
  kFlashCrowd,  ///< maximal-growth flash crowd (swarming stress)
  kDistinct,    ///< pairwise distinct videos ([3]'s regime)
  kFull,        ///< all of the above, same allocation
};

[[nodiscard]] const char* suite_name(WorkloadSuite suite) noexcept;

struct TrialSpec {
  std::uint32_t n = 100;
  double u = 1.5;
  double d = 4.0;
  double mu = 1.3;
  std::uint32_t c = 4;
  std::uint32_t k = 4;
  model::Round duration = 24;   ///< T
  model::Round rounds = 72;     ///< simulated rounds per workload
  alloc::Scheme scheme = alloc::Scheme::kPermutation;
  sim::StrategyKind strategy = sim::StrategyKind::kPreloading;
  WorkloadSuite suite = WorkloadSuite::kFull;
  /// Explicit catalog size; 0 derives m from the storage identity ⌊d·n/k⌋.
  std::uint32_t m_override = 0;

  /// Catalog size: m_override, or ⌊d·n/k⌋ when unset (>= 1 either way).
  [[nodiscard]] std::uint32_t catalog() const;
};

class Calibrator {
 public:
  /// One allocation + workload-suite run. True iff every request-round was
  /// served.
  [[nodiscard]] static bool run_trial(const TrialSpec& spec,
                                      std::uint64_t seed);

  /// Fraction of successful trials with a Wilson 95% interval.
  [[nodiscard]] static util::Proportion success_rate(
      const TrialSpec& spec, std::uint32_t trials, std::uint64_t base_seed,
      util::ThreadPool* pool = nullptr);

  struct MinKResult {
    std::uint32_t k = 0;        ///< smallest k reaching the target (0 = none)
    std::uint32_t catalog = 0;  ///< m at that k
    /// (k, success rate) pairs explored, in evaluation order.
    std::vector<std::pair<std::uint32_t, double>> explored;
  };
  /// Smallest k in [k_lo, k_hi] whose success rate reaches `target`
  /// (doubling + binary search; success is treated as monotone in k).
  [[nodiscard]] static MinKResult min_feasible_k(
      TrialSpec spec, std::uint32_t k_lo, std::uint32_t k_hi, double target,
      std::uint32_t trials, std::uint64_t base_seed,
      util::ThreadPool* pool = nullptr);

  struct MaxCatalogResult {
    std::uint32_t m = 0;  ///< largest feasible catalog (0 = none feasible)
    std::uint32_t k = 0;  ///< replication at that m
    std::vector<std::pair<std::uint32_t, double>> explored;  ///< (m, rate)
  };
  /// Largest m in [1, ⌊d·n⌋] with success rate >= target, replication
  /// k = ⌊d·n/m⌋ (binary search; success treated as monotone decreasing in m).
  [[nodiscard]] static MaxCatalogResult max_catalog(
      TrialSpec spec, double target, std::uint32_t trials,
      std::uint64_t base_seed, util::ThreadPool* pool = nullptr);
};

}  // namespace p2pvod::analysis
