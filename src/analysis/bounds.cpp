#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace p2pvod::analysis {

namespace {
constexpr double kE = 2.718281828459045;
constexpr double kInf = std::numeric_limits<double>::infinity();

double mu2(double mu) { return mu * mu; }
double mu4(double mu) { return mu * mu * mu * mu; }
}  // namespace

// ---------------------------------------------------------------- Theorem 1

std::uint32_t Theorem1::min_c(double u, double mu) {
  if (u <= 1.0) return 0;
  const double threshold = (2.0 * mu2(mu) - 1.0) / (u - 1.0);
  // Smallest integer strictly above `threshold`.
  return static_cast<std::uint32_t>(std::floor(threshold + 1e-12)) + 1;
}

std::uint32_t Theorem1::recommended_c(double u, double mu) {
  if (u <= 1.0) return 0;
  const double value = 2.0 * (2.0 * mu2(mu) - 1.0) / (u - 1.0);
  const auto c = static_cast<std::uint32_t>(std::ceil(value - 1e-12));
  return std::max(c, min_c(u, mu));
}

double Theorem1::nu(double u, double mu, std::uint32_t c) {
  if (c == 0) return -kInf;
  return 1.0 / (static_cast<double>(c) + 2.0 * mu2(mu) - 1.0) -
         1.0 / (u * static_cast<double>(c));
}

double Theorem1::u_prime(double u, std::uint32_t c) {
  if (c == 0) return 0.0;
  return std::floor(u * static_cast<double>(c) + 1e-9) /
         static_cast<double>(c);
}

double Theorem1::d_prime(double d, double u) {
  return std::max({d, u, kE});
}

double Theorem1::k_bound(double u, double d, double mu, std::uint32_t c) {
  const double v = nu(u, mu, c);
  const double up = u_prime(u, c);
  if (v <= 0.0 || up <= 1.0) return kInf;
  return 5.0 / v * std::log(d_prime(d, u)) / std::log(up);
}

double Theorem1::k_bound_proof(double u, double d, double mu,
                               std::uint32_t c) {
  const double v = nu(u, mu, c);
  const double up = u_prime(u, c);
  if (v <= 0.0 || up <= 1.0) return kInf;
  const double dp = d_prime(d, u);
  const double log_term =
      std::log(kE * kE * kE * kE * dp * up) / std::log(up);
  return std::max(5.0, log_term) / v;
}

HomogeneousBounds Theorem1::evaluate(HomogeneousInputs in, std::uint32_t c) {
  HomogeneousBounds out;
  out.in = in;
  out.c = (c == 0) ? recommended_c(in.u, in.mu) : c;
  if (in.u <= 1.0 || out.c == 0) return out;  // invalid: below threshold
  out.nu = nu(in.u, in.mu, out.c);
  out.u_prime = u_prime(in.u, out.c);
  out.d_prime = d_prime(in.d, in.u);
  out.k_real = k_bound(in.u, in.d, in.mu, out.c);
  if (!std::isfinite(out.k_real)) return out;
  out.k = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(out.k_real - 1e-12)));
  out.valid = out.nu > 0.0 && out.u_prime > 1.0;
  return out;
}

std::uint32_t HomogeneousBounds::catalog(std::uint32_t n) const {
  if (!valid || k == 0) return 0;
  const double m = in.d * static_cast<double>(n) / static_cast<double>(k);
  return m < 1.0 ? 0u : static_cast<std::uint32_t>(m);
}

std::string HomogeneousBounds::describe() const {
  std::ostringstream out;
  out << "Thm1(u=" << in.u << ",d=" << in.d << ",mu=" << in.mu << "): c=" << c
      << " nu=" << nu << " u'=" << u_prime << " d'=" << d_prime
      << " k>=" << k_real << " -> k=" << k << (valid ? "" : " [INVALID]");
  return out.str();
}

double Theorem1::catalog_closed_form(std::uint32_t n, double u, double d,
                                     double mu) {
  if (u <= 1.0) return 0.0;
  const double dp = d_prime(d, u);
  const double numerator =
      (u - 1.0) * (u - 1.0) * std::log((u + 1.0) / 2.0);
  const double denominator = 40.0 * mu2(mu) * u * u * u * std::log(dp);
  if (numerator <= 0.0 || denominator <= 0.0) return 0.0;
  return numerator / denominator * d * static_cast<double>(n);
}

double Theorem1::lemma2_expansion(std::uint64_t i, std::uint64_t i1,
                                  std::uint32_t c, double mu) {
  const double num = static_cast<double>(i) -
                     (static_cast<double>(c) + 2.0 * mu2(mu) - 1.0) *
                         static_cast<double>(i1);
  return num / (static_cast<double>(c) + 2.0 * (mu2(mu) - 1.0));
}

double Theorem1::kappa(double u, double mu, std::uint32_t c, std::uint32_t k) {
  return nu(u, mu, c) * static_cast<double>(k) - 2.0;
}

double Theorem1::delta(double u, double d, std::uint32_t c) {
  const double up = u_prime(u, c);
  if (up <= 0.0) return kInf;
  return 4.0 * d_prime(d, u) * kE * kE / up;
}

// ---------------------------------------------------------------- Theorem 2

std::uint32_t Theorem2::min_c(double u_star, double mu) {
  if (u_star <= 1.0) return 0;
  const double threshold = 4.0 * mu4(mu) / (u_star - 1.0);
  return static_cast<std::uint32_t>(std::floor(threshold + 1e-12)) + 1;
}

std::uint32_t Theorem2::recommended_c(double u_star, double mu) {
  if (u_star <= 1.0) return 0;
  const double value = 10.0 * mu4(mu) / (u_star - 1.0);
  const auto c = static_cast<std::uint32_t>(std::ceil(value - 1e-12));
  return std::max(c, min_c(u_star, mu));
}

double Theorem2::nu(double mu, std::uint32_t c) {
  if (c == 0) return -kInf;
  return 1.0 / (static_cast<double>(c) + 2.0 * mu4(mu) - 1.0) -
         1.0 / (static_cast<double>(c) + 3.0 * mu4(mu));
}

double Theorem2::u_prime(double mu, std::uint32_t c) {
  if (c == 0) return 0.0;
  return (static_cast<double>(c) + 3.0 * mu4(mu)) / static_cast<double>(c);
}

double Theorem2::d_prime(double d, double u_star) {
  return std::max({d, u_star, kE});
}

double Theorem2::k_bound(double u_star, double d, double mu,
                         std::uint32_t c) {
  const double v = nu(mu, c);
  const double up = u_prime(mu, c);
  if (v <= 0.0 || up <= 1.0) return kInf;
  return 5.0 / v * std::log(d_prime(d, u_star)) / std::log(up);
}

HeterogeneousBounds Theorem2::evaluate(HeterogeneousInputs in,
                                       std::uint32_t c) {
  HeterogeneousBounds out;
  out.in = in;
  out.c = (c == 0) ? recommended_c(in.u_star, in.mu) : c;
  if (in.u_star <= 1.0 || out.c == 0) return out;
  out.nu = nu(in.mu, out.c);
  out.u_prime = u_prime(in.mu, out.c);
  out.d_prime = d_prime(in.d, in.u_star);
  out.k_real = k_bound(in.u_star, in.d, in.mu, out.c);
  if (!std::isfinite(out.k_real)) return out;
  out.k = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(out.k_real - 1e-12)));
  out.valid = out.nu > 0.0 && out.u_prime > 1.0;
  return out;
}

std::uint32_t HeterogeneousBounds::catalog(std::uint32_t n) const {
  if (!valid || k == 0) return 0;
  const double m = in.d * static_cast<double>(n) / static_cast<double>(k);
  return m < 1.0 ? 0u : static_cast<std::uint32_t>(m);
}

std::string HeterogeneousBounds::describe() const {
  std::ostringstream out;
  out << "Thm2(u*=" << in.u_star << ",d=" << in.d << ",mu=" << in.mu
      << "): c=" << c << " nu=" << nu << " u'=" << u_prime
      << " d'=" << d_prime << " k>=" << k_real << " -> k=" << k
      << (valid ? "" : " [INVALID]");
  return out.str();
}

double Theorem2::catalog_closed_form(std::uint32_t n, double u_star, double d,
                                     double mu) {
  if (u_star <= 1.0) return 0.0;
  const double dp = d_prime(d, u_star);
  const double numerator = (u_star - 1.0) * (u_star - 1.0) *
                           std::log((u_star + 3.0) / 4.0);
  const double denominator = 40.0 * mu4(mu) * std::log(dp);
  if (numerator <= 0.0 || denominator <= 0.0) return 0.0;
  return numerator / denominator * d * static_cast<double>(n);
}

}  // namespace p2pvod::analysis
