#include "analysis/first_moment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/logmath.hpp"

namespace p2pvod::analysis {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// lgamma dominates the double sum's cost; memoize log k! up to the largest
// argument seen. Thread-local so parallel sweeps need no locking.
double cached_log_factorial(std::int64_t n) {
  thread_local std::vector<double> table{0.0, 0.0};  // 0!, 1!
  if (n < 0) return kNegInf;
  const auto idx = static_cast<std::size_t>(n);
  while (table.size() <= idx) {
    table.push_back(table.back() +
                    std::log(static_cast<double>(table.size())));
  }
  return table[idx];
}

double cached_log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return cached_log_factorial(n) - cached_log_factorial(k) -
         cached_log_factorial(n - k);
}
}  // namespace

double FirstMoment::log_term(const FirstMomentParams& p, std::uint64_t i,
                             std::uint64_t i1) {
  const double nu = Theorem1::nu(p.u, p.mu, p.c);
  if (static_cast<double>(i1) <= nu * static_cast<double>(i))
    return kNegInf;  // Lemma 4 case 1: P(σ) = 0
  const double up = Theorem1::u_prime(p.u, p.c);
  const double unc = up * static_cast<double>(p.n) * static_cast<double>(p.c);
  if (unc <= 0.0) return 0.0;  // degenerate; bound is vacuous
  const double di = static_cast<double>(i);
  return di * (std::log(unc) + 1.0 - std::log(di)) +
         static_cast<double>(p.k) * static_cast<double>(i1) *
             (std::log(di) - std::log(unc));
}

double FirstMoment::log_multiset_count(const FirstMomentParams& p,
                                       std::uint64_t i, std::uint64_t i1) {
  const std::int64_t mc =
      static_cast<std::int64_t>(p.m) * static_cast<std::int64_t>(p.c);
  return cached_log_binomial(mc, static_cast<std::int64_t>(i1)) +
         cached_log_binomial(static_cast<std::int64_t>(i) - 1,
                             static_cast<std::int64_t>(i1) - 1);
}

double FirstMoment::log_union_bound(const FirstMomentParams& p) {
  if (p.n == 0 || p.m == 0 || p.c == 0 || p.k == 0)
    throw std::invalid_argument("FirstMoment: zero parameter");
  const std::uint64_t nc =
      static_cast<std::uint64_t>(p.n) * static_cast<std::uint64_t>(p.c);
  const std::uint64_t mc =
      static_cast<std::uint64_t>(p.m) * static_cast<std::uint64_t>(p.c);
  const double nu = Theorem1::nu(p.u, p.mu, p.c);

  util::LogSumAccumulator acc;
  for (std::uint64_t i = 1; i <= nc; ++i) {
    const auto i1_lo = static_cast<std::uint64_t>(std::max<double>(
        1.0, std::ceil(nu * static_cast<double>(i) + 1e-12)));
    const std::uint64_t i1_hi = std::min<std::uint64_t>(i, mc);
    for (std::uint64_t i1 = i1_lo; i1 <= i1_hi; ++i1) {
      const double lt = log_term(p, i, i1);
      if (lt == kNegInf) continue;
      acc.add_log(log_multiset_count(p, i, i1) + lt);
    }
  }
  return acc.log_total();
}

double FirstMoment::log_phi_bound(const FirstMomentParams& p) {
  const std::uint64_t nc =
      static_cast<std::uint64_t>(p.n) * static_cast<std::uint64_t>(p.c);
  const double nu = Theorem1::nu(p.u, p.mu, p.c);
  const double up = Theorem1::u_prime(p.u, p.c);
  const double kappa = Theorem1::kappa(p.u, p.mu, p.c, p.k);
  const double delta = Theorem1::delta(p.u, p.d, p.c);
  if (up <= 0.0 || nu <= 0.0) return 0.0;  // vacuous (log of bound >= 1)
  const double unc = up * static_cast<double>(p.n) * static_cast<double>(p.c);

  util::LogSumAccumulator acc;
  for (std::uint64_t i = 1; i <= nc; ++i) {
    const double di = static_cast<double>(i);
    const double log_phi =
        kappa * di * (std::log(di) - std::log(unc)) + di * std::log(delta);
    acc.add_log(di * std::log1p(-nu) + log_phi);
  }
  return acc.log_total();
}

double FirstMoment::probability_bound(const FirstMomentParams& p) {
  const double lb = log_union_bound(p);
  if (lb >= 0.0) return 1.0;
  return util::exp_clamped(lb);
}

std::uint32_t FirstMoment::min_k_for_bound(FirstMomentParams p, double target,
                                           std::uint32_t k_lo,
                                           std::uint32_t k_hi) {
  if (target <= 0.0 || target > 1.0)
    throw std::invalid_argument("min_k_for_bound: target out of (0,1]");
  if (k_lo == 0 || k_hi < k_lo)
    throw std::invalid_argument("min_k_for_bound: bad k range");
  const double log_target = std::log(target);
  auto satisfied = [&](std::uint32_t k) {
    p.k = k;
    // Hold the catalog consistent with the replication: m = d n / k.
    const double m = p.d * static_cast<double>(p.n) / static_cast<double>(k);
    p.m = m < 1.0 ? 1u : static_cast<std::uint32_t>(m);
    return log_union_bound(p) <= log_target;
  };
  // The bound is monotone decreasing in k (each extra replica multiplies
  // every term by (i/u'nc)^{i1} < 1 while shrinking the catalog), so a
  // doubling probe plus binary search suffices.
  std::uint32_t hi = k_lo;
  std::uint32_t last_fail = 0;
  while (!satisfied(hi)) {
    last_fail = hi;
    if (hi >= k_hi) return 0;
    hi = std::min(k_hi, hi * 2);
  }
  std::uint32_t lo = std::max(k_lo, last_fail + 1);
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (satisfied(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace p2pvod::analysis
