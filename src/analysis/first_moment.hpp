// Numeric evaluation of the first-moment (union) bound on obstructions.
//
// Equation (1) + Lemma 4 + the M(i,i1) count from the proof of Theorem 1:
//
//   P(N_k > 0) <= Σ_{i=1}^{nc} Σ_{i1=⌈νi⌉}^{min(i, mc)}
//                   M(i,i1) · (u′nce/i)^i · (i/(u′nc))^{k·i1}
//   with M(i,i1) = C(mc, i1) · C(i−1, i1−1).
//
// Everything is evaluated in log space (terms span hundreds of orders of
// magnitude). Also provided: the coarser closed-form φ(i) bound the paper
// uses to finish the proof, and the predicted vanishing rate O(1/n^{κ−2}).
#pragma once

#include <cstdint>

#include "analysis/bounds.hpp"

namespace p2pvod::analysis {

struct FirstMomentParams {
  std::uint32_t n = 0;   ///< boxes
  std::uint32_t m = 0;   ///< catalog size
  std::uint32_t c = 1;   ///< stripes per video
  std::uint32_t k = 1;   ///< replicas per stripe
  double u = 1.5;        ///< upload capacity
  double d = 4.0;        ///< storage (only via d′ in the φ bound)
  double mu = 1.2;       ///< swarm growth bound
};

class FirstMoment {
 public:
  /// log of one Lemma 4 term: i·log(u′nce/i) + k·i1·log(i/(u′nc)).
  /// Returns -inf when i1 <= ν·i (Lemma 4's zero case).
  [[nodiscard]] static double log_term(const FirstMomentParams& p,
                                       std::uint64_t i, std::uint64_t i1);

  /// log M(i, i1) = log C(mc, i1) + log C(i-1, i1-1).
  [[nodiscard]] static double log_multiset_count(const FirstMomentParams& p,
                                                 std::uint64_t i,
                                                 std::uint64_t i1);

  /// log of the full double sum (exact numeric evaluation). O(nc · mc) terms;
  /// use for n·c up to a few thousand.
  [[nodiscard]] static double log_union_bound(const FirstMomentParams& p);

  /// The paper's single-sum bound: Σ_i (1−ν)^i φ(i) with
  /// φ(i) = (i/(u′nc))^{κi} δ^i, κ = νk−2, δ = 4d′e²/u′.
  [[nodiscard]] static double log_phi_bound(const FirstMomentParams& p);

  /// Convenience: linear-space probability bound min(1, exp(log_union_bound)).
  [[nodiscard]] static double probability_bound(const FirstMomentParams& p);

  /// Smallest k for which the union bound drops below `target` (<=1), by
  /// linear scan from k_lo; returns 0 when not reached by k_hi.
  [[nodiscard]] static std::uint32_t min_k_for_bound(FirstMomentParams p,
                                                     double target,
                                                     std::uint32_t k_lo,
                                                     std::uint32_t k_hi);
};

}  // namespace p2pvod::analysis
