// The u < 1 impossibility argument (§1.3), made executable.
//
// "Suppose u < 1. As minimal chunk size is ℓ, each box b stores data of at
// most d_b/ℓ videos. If m > d_max/ℓ then for each box there always exists a
// video it possesses no data of. Consider a sequence of requests where each
// box always plays such a video: aggregated download n exceeds aggregated
// upload u·n. As a consequence m <= d_max/ℓ."
//
// analyze() evaluates the hypotheses and produces the certificate (bandwidth
// ledger); construct_avoider_demands() materializes the defeating assignment,
// which tests feed through the simulator/flow to confirm the stall.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "alloc/allocation.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"

namespace p2pvod::analysis {

struct ImpossibilityCertificate {
  bool applies = false;        ///< u < 1 and m > d_max/ℓ: system MUST fail
  double average_upload = 0.0;
  double aggregate_upload = 0.0;   ///< u·n
  double aggregate_demand = 0.0;   ///< n (one stream per box)
  std::uint32_t catalog_limit = 0; ///< ⌊d_max/ℓ⌋ = ⌊d_max·c⌋
  std::uint32_t catalog_size = 0;
  std::string explanation;
};

class ImpossibilityAnalyzer {
 public:
  [[nodiscard]] static ImpossibilityCertificate analyze(
      const model::CapacityProfile& profile, const model::Catalog& catalog);

  /// The defeating demand assignment: for every box, a video it stores no
  /// data of. Returns nullopt if some box possesses data of every video
  /// (the argument's hypothesis fails for this allocation).
  [[nodiscard]] static std::optional<std::vector<model::VideoId>>
  construct_avoider_demands(const model::Catalog& catalog,
                            const alloc::Allocation& allocation);

  /// Largest catalog any u<1 system can sustain: ⌊d_max·c⌋ (the §1.3 bound).
  [[nodiscard]] static std::uint32_t catalog_upper_bound(
      const model::CapacityProfile& profile, std::uint32_t c);
};

}  // namespace p2pvod::analysis
