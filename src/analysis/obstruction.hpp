// Obstruction search: does an allocation admit a defeating request set?
//
// An obstruction (§2.3) is a multiset of stripes that some reachable demand
// configuration turns into a Hall-violating request set. Deciding existence
// over *all* demand sequences is intractable; this module provides the two
// practically useful probes the experiments need:
//
//  * exhaustive cold-start search (tiny systems): enumerate every assignment
//    of demands boxes -> {idle} ∪ videos, issue all stripe requests at once
//    (the naive strategy's round-0 burst — the hardest single round, since no
//    playback cache exists yet), and test Lemma 1 feasibility by max-flow.
//    Exact for the cold-start class of sequences.
//
//  * Monte-Carlo probe (larger systems): sample demand assignments (including
//    the §1.3 avoider assignment) and report the fraction found infeasible.
//
// The measured obstruction frequency *lower-bounds* the true P(N_k > 0) —
// obstructions reachable only via staged sequences are not probed — while the
// analysis/first_moment bound upper-bounds it; experiment E10 plots both.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/allocation.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "util/rng.hpp"

namespace p2pvod::analysis {

struct ObstructionWitness {
  /// demand[b] = video demanded by box b, or kInvalidVideo for idle.
  std::vector<model::VideoId> demands;
  std::uint32_t unserved_requests = 0;
  std::uint32_t hall_set_size = 0;  ///< |X| of the min-cut witness
};

class ObstructionSearch {
 public:
  /// Is the one-round burst (every box in `demands` requests all non-local
  /// stripes of its video simultaneously) matchable? Returns the witness on
  /// infeasibility.
  [[nodiscard]] static std::optional<ObstructionWitness> probe_burst(
      const model::Catalog& catalog, const model::CapacityProfile& profile,
      const alloc::Allocation& allocation,
      const std::vector<model::VideoId>& demands);

  /// Exhaustive cold-start search over all (m+1)^n demand assignments.
  /// Throws std::invalid_argument when (m+1)^n exceeds `budget`.
  [[nodiscard]] static std::optional<ObstructionWitness> exhaustive(
      const model::Catalog& catalog, const model::CapacityProfile& profile,
      const alloc::Allocation& allocation, std::uint64_t budget = 2'000'000);

  /// Monte-Carlo: sample `trials` random full-demand assignments (every box
  /// demands a uniform video) plus the avoider assignment; returns the number
  /// of infeasible samples and the first witness found.
  struct MonteCarloResult {
    std::uint64_t trials = 0;
    std::uint64_t infeasible = 0;
    std::optional<ObstructionWitness> witness;
  };
  [[nodiscard]] static MonteCarloResult monte_carlo(
      const model::Catalog& catalog, const model::CapacityProfile& profile,
      const alloc::Allocation& allocation, std::uint64_t trials,
      util::Rng& rng);

  /// The §1.3 avoider assignment: every box demands some video it stores no
  /// data of (kInvalidVideo when none exists for a box).
  [[nodiscard]] static std::vector<model::VideoId> avoider_assignment(
      const model::Catalog& catalog, const alloc::Allocation& allocation,
      util::Rng& rng);
};

}  // namespace p2pvod::analysis
