#include "analysis/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/cli.hpp"

#include "model/catalog.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/adversarial.hpp"
#include "workload/distinct.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"

namespace p2pvod::analysis {

const char* suite_name(WorkloadSuite suite) noexcept {
  switch (suite) {
    case WorkloadSuite::kAvoider:
      return "avoider";
    case WorkloadSuite::kFlashCrowd:
      return "flash-crowd";
    case WorkloadSuite::kDistinct:
      return "distinct";
    case WorkloadSuite::kFull:
      return "full";
  }
  return "unknown";
}

std::uint32_t TrialSpec::catalog() const {
  if (m_override != 0) return m_override;
  const double m = d * static_cast<double>(n) / static_cast<double>(k);
  return m < 1.0 ? 1u : static_cast<std::uint32_t>(m);
}

namespace {

bool run_one_workload(const TrialSpec& spec, const model::Catalog& catalog,
                      const model::CapacityProfile& profile,
                      const alloc::Allocation& allocation,
                      WorkloadSuite which, std::uint64_t seed) {
  const auto strategy = sim::make_strategy(spec.strategy);
  sim::SimulatorOptions options;
  options.strict = true;
  sim::Simulator simulator(catalog, profile, allocation, *strategy, options);

  util::Rng rng(seed);
  switch (which) {
    case WorkloadSuite::kAvoider: {
      workload::AvoiderAdversary inner(rng.child(1).seed());
      workload::GrowthLimiter limited(inner, spec.mu);
      return simulator.run(limited, spec.rounds).success;
    }
    case WorkloadSuite::kFlashCrowd: {
      const auto video =
          static_cast<model::VideoId>(rng.next_below(catalog.video_count()));
      workload::FlashCrowd inner(video, spec.mu);
      return simulator.run(inner, spec.rounds).success;
    }
    case WorkloadSuite::kDistinct: {
      workload::DistinctVideosSweep inner(rng.child(2).seed(),
                                          /*repeat=*/true);
      workload::GrowthLimiter limited(inner, spec.mu);
      return simulator.run(limited, spec.rounds).success;
    }
    case WorkloadSuite::kFull:
      break;  // handled by caller
  }
  throw std::logic_error("run_one_workload: bad suite");
}

}  // namespace

bool Calibrator::run_trial(const TrialSpec& spec, std::uint64_t seed) {
  const std::uint32_t m = spec.catalog();
  const model::Catalog catalog(m, spec.c, spec.duration);
  const model::CapacityProfile profile =
      model::CapacityProfile::homogeneous(spec.n, spec.u, spec.d);

  util::Rng rng(seed);
  const auto allocator = alloc::make_allocator(spec.scheme);
  const alloc::Allocation allocation =
      allocator->allocate(catalog, profile, spec.k, rng);

  if (spec.suite != WorkloadSuite::kFull) {
    return run_one_workload(spec, catalog, profile, allocation, spec.suite,
                            rng.child(10).seed());
  }
  // Full suite: the same allocation must survive every adversary.
  for (const WorkloadSuite which :
       {WorkloadSuite::kAvoider, WorkloadSuite::kFlashCrowd,
        WorkloadSuite::kDistinct}) {
    if (!run_one_workload(spec, catalog, profile, allocation, which,
                          rng.child(10 + static_cast<std::uint64_t>(which))
                              .seed())) {
      return false;
    }
  }
  return true;
}

util::Proportion Calibrator::success_rate(const TrialSpec& spec,
                                          std::uint32_t trials,
                                          std::uint64_t base_seed,
                                          util::ThreadPool* pool) {
  if (trials == 0) return {};
  const std::vector<char> outcomes = util::parallel_map<char>(
      trials,
      [&](std::size_t trial) -> char {
        return run_trial(spec, util::child_seed(base_seed, trial)) ? 1 : 0;
      },
      pool);
  const auto successes = static_cast<std::size_t>(
      std::count(outcomes.begin(), outcomes.end(), 1));
  return util::wilson_interval(successes, trials);
}

namespace {

// --- shared search drives ---------------------------------------------------
//
// Both public searches (sequential and speculative) replay the SAME decision
// process through these drives; the only difference is where the success
// rates come from. A drive consumes rates through `lookup(value) ->
// optional<double>`: the sequential search answers every lookup by running
// trials, the speculative search answers from a memo cache and aborts the
// replay (returning the missing candidate in `need`) when a rate is unknown.
// Sharing the control flow is what makes "speculative == sequential" a
// structural property instead of two implementations kept in sync by hand.

/// Replication threshold search (doubling bracket + binary search). Returns
/// true when the search completed with `result` filled in; false when a rate
/// was missing, with `need` set to the next probe the sequential search
/// would evaluate. `result.explored` is valid only on completion.
template <typename Lookup>
bool drive_min_k(std::uint32_t k_lo, std::uint32_t k_hi, double target,
                 Lookup&& lookup, Calibrator::MinKResult& result,
                 std::uint32_t& need) {
  auto rate_at = [&](std::uint32_t k, double& rate) {
    const std::optional<double> known = lookup(k);
    if (!known.has_value()) {
      need = k;
      return false;
    }
    result.explored.emplace_back(k, *known);
    rate = *known;
    return true;
  };

  // Doubling phase to bracket the transition, then binary search.
  std::uint32_t hi = k_lo;
  std::uint32_t lo_fail = 0;  // largest known-failing k
  for (;;) {
    if (hi > k_hi) return true;  // never reached target
    double rate = 0.0;
    if (!rate_at(hi, rate)) return false;
    if (rate >= target) break;
    lo_fail = hi;
    hi = std::min(k_hi, hi * 2);
    if (hi == lo_fail) return true;  // hit the cap while failing
  }

  std::uint32_t lo = std::max(k_lo, lo_fail + 1);
  // Invariant: rate(hi) >= target; everything <= lo_fail failed.
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    double rate = 0.0;
    if (!rate_at(mid, rate)) return false;
    if (rate >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.k = hi;
  return true;
}

std::uint32_t k_for_catalog(const TrialSpec& spec, std::uint32_t m) {
  const double k =
      spec.d * static_cast<double>(spec.n) / static_cast<double>(m);
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(k));
}

/// Catalog-size search (largest feasible m, success decreasing in m). Same
/// contract as drive_min_k, over candidate catalog sizes.
template <typename Lookup>
bool drive_max_catalog(const TrialSpec& spec, double target, Lookup&& lookup,
                       Calibrator::MaxCatalogResult& result,
                       std::uint32_t& need) {
  const auto m_max =
      static_cast<std::uint32_t>(spec.d * static_cast<double>(spec.n));
  if (m_max == 0) return true;

  auto feasible = [&](std::uint32_t m, bool& is_feasible) {
    const std::optional<double> rate = lookup(m);
    if (!rate.has_value()) {
      need = m;
      return false;
    }
    result.explored.emplace_back(m, *rate);
    is_feasible = *rate >= target;
    return true;
  };

  bool ok = false;
  if (!feasible(1, ok)) return false;
  if (!ok) return true;  // even m=1 fails
  std::uint32_t lo = 1, hi = m_max;
  if (!feasible(m_max, ok)) return false;
  if (!ok) {
    // Binary search inside (1, m_max).
    while (lo + 1 < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (!feasible(mid, ok)) return false;
      if (ok) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  } else {
    lo = m_max;
  }
  result.m = lo;
  result.k = k_for_catalog(spec, lo);
  return true;
}

// --- speculation machinery --------------------------------------------------

std::uint32_t resolve_ladder_width(std::uint32_t requested,
                                   std::uint32_t trials,
                                   std::size_t threads) {
  constexpr std::uint32_t kMaxWidth = 64;
  if (requested > 0) return std::min(requested, kMaxWidth);
  if (const auto width = util::env_positive_long("P2PVOD_PROBE_WIDTH")) {
    return static_cast<std::uint32_t>(
        std::min(*width, static_cast<long>(kMaxWidth)));
  }
  // Implicit default: adapt to pool slack. Speculation trades up to
  // width-times extra trial work for search latency, so it only pays when
  // spare threads exist beyond one probe's own trials — one probe occupies
  // `trials` workers, leaving room for threads/trials concurrent probes.
  // Explicit widths (parameter or env) are honored as-is: the caller asked.
  const auto slack = static_cast<std::uint32_t>(
      threads / std::max<std::uint32_t>(1, trials));
  return std::min<std::uint32_t>(4, std::max<std::uint32_t>(slack, 1));
}

/// True when speculation cannot pay off: serial pool, degenerate width, or a
/// caller already inside a parallel region — a pool worker, or a non-worker
/// thread executing parallel_for chunks it claimed. Nested parallel helpers
/// degrade to serial loops in both cases, so a ladder would just multiply
/// the serial work by its width.
bool should_degrade_to_sequential(std::uint32_t width, std::uint32_t trials,
                                  const util::ThreadPool& pool) {
  return width <= 1 || trials == 0 || pool.size() <= 1 ||
         util::ThreadPool::current() != nullptr ||
         util::ThreadPool::inside_parallel_for();
}

/// The next `width` candidates the sequential search could probe, given what
/// is already memoized: BFS over the search's decision branches, assuming
/// success/failure in turn at every unknown probe. The first collected
/// candidate is always the probe the real replay needs next, so every ladder
/// round makes progress.
template <typename Drive>
std::vector<std::uint32_t> speculate_candidates(
    const std::unordered_map<std::uint32_t, double>& cache,
    std::uint32_t width, Drive&& drive) {
  std::vector<std::uint32_t> ladder;
  std::set<std::uint32_t> seen;
  std::deque<std::map<std::uint32_t, bool>> frontier;
  frontier.emplace_back();
  while (!frontier.empty() && ladder.size() < width) {
    const std::map<std::uint32_t, bool> assumed = std::move(frontier.front());
    frontier.pop_front();
    auto lookup = [&](std::uint32_t value) -> std::optional<double> {
      if (const auto it = cache.find(value); it != cache.end()) {
        return it->second;
      }
      if (const auto it = assumed.find(value); it != assumed.end()) {
        // Hypothetical outcome: +inf passes any target, -inf fails any.
        return it->second ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
      }
      return std::nullopt;
    };
    std::uint32_t unknown = 0;
    if (drive(lookup, unknown)) continue;  // this branch terminates
    if (seen.insert(unknown).second) ladder.push_back(unknown);
    std::map<std::uint32_t, bool> success = assumed;
    success[unknown] = true;
    frontier.push_back(std::move(success));
    std::map<std::uint32_t, bool> failure = assumed;
    failure[unknown] = false;
    frontier.push_back(std::move(failure));
  }
  return ladder;
}

/// Evaluate every candidate's success rate as one flattened (candidate x
/// trial) parallel map: trial t of every candidate uses child_seed(base_seed,
/// t) — exactly the seeds success_rate consumes — so cached rates equal what
/// the sequential search computes, bit for bit.
template <typename ApplyCandidate>
void evaluate_ladder(const TrialSpec& base,
                     const std::vector<std::uint32_t>& candidates,
                     std::uint32_t trials, std::uint64_t base_seed,
                     util::ThreadPool* pool,
                     std::unordered_map<std::uint32_t, double>& cache,
                     ApplyCandidate&& apply) {
  const std::size_t total =
      candidates.size() * static_cast<std::size_t>(trials);
  // kHigh: a ladder is latency-critical (the search is blocked on it), so
  // its trials overtake any bulk work already queued at kNormal.
  const std::vector<char> outcomes = util::parallel_map<char>(
      total,
      [&](std::size_t index) -> char {
        TrialSpec spec = base;
        apply(spec, candidates[index / trials]);
        return Calibrator::run_trial(
                   spec, util::child_seed(base_seed, index % trials))
                   ? 1
                   : 0;
      },
      pool, /*grain=*/0, util::TaskPriority::kHigh);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const auto begin = outcomes.begin() + static_cast<std::ptrdiff_t>(
                                              c * static_cast<std::size_t>(
                                                      trials));
    const auto successes = static_cast<std::size_t>(
        std::count(begin, begin + trials, 1));
    cache[candidates[c]] = util::wilson_interval(successes, trials).estimate;
  }
}

/// The shared speculative driver: replay the search against the memo cache;
/// on a missing rate, speculate a candidate ladder, evaluate it in parallel,
/// and retry. `drive(lookup, result, need)` is one of the search replays
/// above, `apply(spec, candidate)` configures a trial spec for a candidate.
/// Terminates because every ladder's first candidate is the probe the real
/// replay needs next.
template <typename Result, typename Drive, typename Apply>
Result speculative_search(const TrialSpec& spec, std::uint32_t trials,
                          std::uint64_t base_seed, util::ThreadPool* pool,
                          std::uint32_t width, Drive&& drive, Apply&& apply) {
  std::unordered_map<std::uint32_t, double> cache;
  auto cached = [&cache](std::uint32_t value) -> std::optional<double> {
    const auto it = cache.find(value);
    if (it == cache.end()) return std::nullopt;
    return it->second;
  };
  for (;;) {
    Result result;
    std::uint32_t unknown = 0;
    if (drive(cached, result, unknown)) return result;
    const std::vector<std::uint32_t> ladder = speculate_candidates(
        cache, width, [&](auto& lookup, std::uint32_t& need) {
          Result scratch;
          return drive(lookup, scratch, need);
        });
    evaluate_ladder(spec, ladder, trials, base_seed, pool, cache, apply);
  }
}

}  // namespace

Calibrator::MinKResult Calibrator::min_feasible_k(TrialSpec spec,
                                                  std::uint32_t k_lo,
                                                  std::uint32_t k_hi,
                                                  double target,
                                                  std::uint32_t trials,
                                                  std::uint64_t base_seed,
                                                  util::ThreadPool* pool) {
  MinKResult result;
  if (k_lo == 0 || k_hi < k_lo)
    throw std::invalid_argument("min_feasible_k: bad k range");

  auto lookup = [&](std::uint32_t k) -> std::optional<double> {
    spec.k = k;
    return success_rate(spec, trials, base_seed, pool).estimate;
  };
  std::uint32_t unused = 0;
  drive_min_k(k_lo, k_hi, target, lookup, result, unused);
  if (result.k != 0) {
    spec.k = result.k;
    result.catalog = spec.catalog();
  }
  return result;
}

Calibrator::MinKResult Calibrator::min_feasible_k_speculative(
    TrialSpec spec, std::uint32_t k_lo, std::uint32_t k_hi, double target,
    std::uint32_t trials, std::uint64_t base_seed,
    const SpeculationOptions& options) {
  if (k_lo == 0 || k_hi < k_lo)
    throw std::invalid_argument("min_feasible_k: bad k range");
  util::ThreadPool* pool =
      options.pool != nullptr ? options.pool : &util::ThreadPool::global();
  const std::uint32_t width =
      resolve_ladder_width(options.ladder_width, trials, pool->size());
  if (should_degrade_to_sequential(width, trials, *pool)) {
    return min_feasible_k(spec, k_lo, k_hi, target, trials, base_seed, pool);
  }

  MinKResult result = speculative_search<MinKResult>(
      spec, trials, base_seed, pool, width,
      [&](auto& lookup, MinKResult& out, std::uint32_t& need) {
        return drive_min_k(k_lo, k_hi, target, lookup, out, need);
      },
      [](TrialSpec& trial_spec, std::uint32_t k) { trial_spec.k = k; });
  if (result.k != 0) {
    spec.k = result.k;
    result.catalog = spec.catalog();
  }
  return result;
}

Calibrator::MaxCatalogResult Calibrator::max_catalog(TrialSpec spec,
                                                     double target,
                                                     std::uint32_t trials,
                                                     std::uint64_t base_seed,
                                                     util::ThreadPool* pool) {
  MaxCatalogResult result;
  auto lookup = [&](std::uint32_t m) -> std::optional<double> {
    spec.k = k_for_catalog(spec, m);
    spec.m_override = m;
    return success_rate(spec, trials, base_seed, pool).estimate;
  };
  std::uint32_t unused = 0;
  drive_max_catalog(spec, target, lookup, result, unused);
  return result;
}

Calibrator::MaxCatalogResult Calibrator::max_catalog_speculative(
    TrialSpec spec, double target, std::uint32_t trials,
    std::uint64_t base_seed, const SpeculationOptions& options) {
  util::ThreadPool* pool =
      options.pool != nullptr ? options.pool : &util::ThreadPool::global();
  const std::uint32_t width =
      resolve_ladder_width(options.ladder_width, trials, pool->size());
  if (should_degrade_to_sequential(width, trials, *pool)) {
    return max_catalog(spec, target, trials, base_seed, pool);
  }

  return speculative_search<MaxCatalogResult>(
      spec, trials, base_seed, pool, width,
      [&](auto& lookup, MaxCatalogResult& out, std::uint32_t& need) {
        return drive_max_catalog(spec, target, lookup, out, need);
      },
      [&spec](TrialSpec& trial_spec, std::uint32_t m) {
        trial_spec.k = k_for_catalog(spec, m);
        trial_spec.m_override = m;
      });
}

}  // namespace p2pvod::analysis
