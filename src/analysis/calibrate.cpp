#include "analysis/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/catalog.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/adversarial.hpp"
#include "workload/distinct.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"

namespace p2pvod::analysis {

const char* suite_name(WorkloadSuite suite) noexcept {
  switch (suite) {
    case WorkloadSuite::kAvoider:
      return "avoider";
    case WorkloadSuite::kFlashCrowd:
      return "flash-crowd";
    case WorkloadSuite::kDistinct:
      return "distinct";
    case WorkloadSuite::kFull:
      return "full";
  }
  return "unknown";
}

std::uint32_t TrialSpec::catalog() const {
  if (m_override != 0) return m_override;
  const double m = d * static_cast<double>(n) / static_cast<double>(k);
  return m < 1.0 ? 1u : static_cast<std::uint32_t>(m);
}

namespace {

bool run_one_workload(const TrialSpec& spec, const model::Catalog& catalog,
                      const model::CapacityProfile& profile,
                      const alloc::Allocation& allocation,
                      WorkloadSuite which, std::uint64_t seed) {
  const auto strategy = sim::make_strategy(spec.strategy);
  sim::SimulatorOptions options;
  options.strict = true;
  sim::Simulator simulator(catalog, profile, allocation, *strategy, options);

  util::Rng rng(seed);
  switch (which) {
    case WorkloadSuite::kAvoider: {
      workload::AvoiderAdversary inner(rng.child(1).seed());
      workload::GrowthLimiter limited(inner, spec.mu);
      return simulator.run(limited, spec.rounds).success;
    }
    case WorkloadSuite::kFlashCrowd: {
      const auto video =
          static_cast<model::VideoId>(rng.next_below(catalog.video_count()));
      workload::FlashCrowd inner(video, spec.mu);
      return simulator.run(inner, spec.rounds).success;
    }
    case WorkloadSuite::kDistinct: {
      workload::DistinctVideosSweep inner(rng.child(2).seed(),
                                          /*repeat=*/true);
      workload::GrowthLimiter limited(inner, spec.mu);
      return simulator.run(limited, spec.rounds).success;
    }
    case WorkloadSuite::kFull:
      break;  // handled by caller
  }
  throw std::logic_error("run_one_workload: bad suite");
}

}  // namespace

bool Calibrator::run_trial(const TrialSpec& spec, std::uint64_t seed) {
  const std::uint32_t m = spec.catalog();
  const model::Catalog catalog(m, spec.c, spec.duration);
  const model::CapacityProfile profile =
      model::CapacityProfile::homogeneous(spec.n, spec.u, spec.d);

  util::Rng rng(seed);
  const auto allocator = alloc::make_allocator(spec.scheme);
  const alloc::Allocation allocation =
      allocator->allocate(catalog, profile, spec.k, rng);

  if (spec.suite != WorkloadSuite::kFull) {
    return run_one_workload(spec, catalog, profile, allocation, spec.suite,
                            rng.child(10).seed());
  }
  // Full suite: the same allocation must survive every adversary.
  for (const WorkloadSuite which :
       {WorkloadSuite::kAvoider, WorkloadSuite::kFlashCrowd,
        WorkloadSuite::kDistinct}) {
    if (!run_one_workload(spec, catalog, profile, allocation, which,
                          rng.child(10 + static_cast<std::uint64_t>(which))
                              .seed())) {
      return false;
    }
  }
  return true;
}

util::Proportion Calibrator::success_rate(const TrialSpec& spec,
                                          std::uint32_t trials,
                                          std::uint64_t base_seed,
                                          util::ThreadPool* pool) {
  if (trials == 0) return {};
  const std::vector<char> outcomes = util::parallel_map<char>(
      trials,
      [&](std::size_t trial) -> char {
        return run_trial(spec, util::child_seed(base_seed, trial)) ? 1 : 0;
      },
      pool);
  const auto successes = static_cast<std::size_t>(
      std::count(outcomes.begin(), outcomes.end(), 1));
  return util::wilson_interval(successes, trials);
}

Calibrator::MinKResult Calibrator::min_feasible_k(TrialSpec spec,
                                                  std::uint32_t k_lo,
                                                  std::uint32_t k_hi,
                                                  double target,
                                                  std::uint32_t trials,
                                                  std::uint64_t base_seed,
                                                  util::ThreadPool* pool) {
  MinKResult result;
  if (k_lo == 0 || k_hi < k_lo)
    throw std::invalid_argument("min_feasible_k: bad k range");

  auto rate_at = [&](std::uint32_t k) {
    spec.k = k;
    const double rate = success_rate(spec, trials, base_seed, pool).estimate;
    result.explored.emplace_back(k, rate);
    return rate;
  };

  // Doubling phase to bracket the transition, then binary search.
  std::uint32_t hi = k_lo;
  std::uint32_t lo_fail = 0;  // largest known-failing k
  while (hi <= k_hi && rate_at(hi) < target) {
    lo_fail = hi;
    hi = std::min(k_hi, hi * 2);
    if (hi == lo_fail) break;  // hit the cap while failing
  }
  if (hi > k_hi || (hi == lo_fail)) return result;  // never reached target

  std::uint32_t lo = std::max(k_lo, lo_fail + 1);
  // Invariant: rate(hi) >= target; everything <= lo_fail failed.
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (rate_at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.k = hi;
  spec.k = hi;
  result.catalog = spec.catalog();
  return result;
}

Calibrator::MaxCatalogResult Calibrator::max_catalog(TrialSpec spec,
                                                     double target,
                                                     std::uint32_t trials,
                                                     std::uint64_t base_seed,
                                                     util::ThreadPool* pool) {
  MaxCatalogResult result;
  const auto m_max = static_cast<std::uint32_t>(
      spec.d * static_cast<double>(spec.n));
  if (m_max == 0) return result;

  auto k_for = [&](std::uint32_t m) {
    const double k = spec.d * static_cast<double>(spec.n) /
                     static_cast<double>(m);
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(k));
  };
  auto feasible = [&](std::uint32_t m) {
    spec.k = k_for(m);
    spec.m_override = m;
    const double rate = success_rate(spec, trials, base_seed, pool).estimate;
    result.explored.emplace_back(m, rate);
    return rate >= target;
  };

  // Largest m with feasible(m), success treated as decreasing in m.
  if (!feasible(1)) return result;  // even m=1 fails
  std::uint32_t lo = 1, hi = m_max;
  if (!feasible(m_max)) {
    // Binary search inside (1, m_max).
    while (lo + 1 < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (feasible(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  } else {
    lo = m_max;
  }
  result.m = lo;
  result.k = k_for(result.m);
  return result;
}

}  // namespace p2pvod::analysis
