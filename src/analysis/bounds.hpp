// Closed-form bounds of Theorem 1 (homogeneous) and Theorem 2 (heterogeneous).
//
// All formulas are transcribed from the paper with their section markers; the
// unit tests pin each one against hand-computed values. Quantities:
//   ν  = 1/(c + 2µ² − 1) − 1/(u·c)                  (Lemma 4)
//   u′ = ⌊u·c⌋/c                                    (§3, effective upload)
//   d′ = max{d, u, e}                               (Theorem 1)
//   k  ≥ 5 ν⁻¹ log d′ / log u′                      (Theorem 1)
//   m  = d n / k                                    (catalog identity, §2.1)
// plus the Lemma 2 expansion bound and the κ/δ tail exponents from the proof.
#pragma once

#include <cstdint>
#include <string>

namespace p2pvod::analysis {

/// Inputs of the homogeneous Theorem 1.
struct HomogeneousInputs {
  double u = 1.5;   ///< normalized upload capacity (> 1 for the theorem)
  double d = 4.0;   ///< storage capacity in videos
  double mu = 1.2;  ///< maximal swarm growth
};

struct HomogeneousBounds {
  HomogeneousInputs in;
  std::uint32_t c = 0;    ///< chosen stripe count
  double nu = 0.0;        ///< expansion margin ν
  double u_prime = 0.0;   ///< effective upload u′ = ⌊uc⌋/c
  double d_prime = 0.0;   ///< d′ = max{d, u, e}
  double k_real = 0.0;    ///< 5 ν⁻¹ log d′ / log u′ before rounding
  std::uint32_t k = 0;    ///< ⌈k_real⌉ (≥ 1)
  bool valid = false;     ///< all theorem preconditions hold

  /// Catalog m = d·n/k for a given n.
  [[nodiscard]] std::uint32_t catalog(std::uint32_t n) const;
  [[nodiscard]] std::string describe() const;
};

class Theorem1 {
 public:
  /// Smallest integer c satisfying c > (2µ²−1)/(u−1); 0 when u <= 1.
  [[nodiscard]] static std::uint32_t min_c(double u, double mu);
  /// The paper's choice c = ⌈2(2µ²−1)/(u−1)⌉ used in the closed form.
  [[nodiscard]] static std::uint32_t recommended_c(double u, double mu);

  [[nodiscard]] static double nu(double u, double mu, std::uint32_t c);
  [[nodiscard]] static double u_prime(double u, std::uint32_t c);
  [[nodiscard]] static double d_prime(double d, double u);

  /// k ≥ 5 ν⁻¹ log d′ / log u′ (Theorem 1); +inf when preconditions fail.
  [[nodiscard]] static double k_bound(double u, double d, double mu,
                                      std::uint32_t c);

  /// The stronger sufficient bound from the proof:
  /// k ≥ ν⁻¹ max{5, log_{u′}(e⁴ d′ u′)}.
  [[nodiscard]] static double k_bound_proof(double u, double d, double mu,
                                            std::uint32_t c);

  /// Assemble everything for a given c (or the recommended c when c == 0).
  [[nodiscard]] static HomogeneousBounds evaluate(HomogeneousInputs in,
                                                  std::uint32_t c = 0);

  /// The closed-form catalog lower bound
  /// m = (u−1)² log((u+1)/2) / (40 µ² u³) · d n / log d′ — the Ω(·) of
  /// Theorem 1 with the explicit constant from ν⁻¹ <= 8µ²u³/(u−1)² and k=5ν⁻¹
  /// log_{u′} d′ (log base (u+1)/2 since u′ >= (u+1)/2 for the chosen c).
  [[nodiscard]] static double catalog_closed_form(std::uint32_t n, double u,
                                                  double d, double mu);

  /// Lemma 2: |B(X)| ≥ (i − (c + 2µ² − 1)·i₁) / (c + 2(µ² − 1)).
  [[nodiscard]] static double lemma2_expansion(std::uint64_t i,
                                               std::uint64_t i1,
                                               std::uint32_t c, double mu);

  /// Tail exponents of the proof: κ = νk − 2 and δ = 4 d′ e² / u′.
  [[nodiscard]] static double kappa(double u, double mu, std::uint32_t c,
                                    std::uint32_t k);
  [[nodiscard]] static double delta(double u, double d, std::uint32_t c);
};

/// Inputs of the heterogeneous Theorem 2 (u*-balanced system).
struct HeterogeneousInputs {
  double u_star = 1.5;  ///< rich/poor threshold (1 < u* <= 2 for closed form)
  double d = 4.0;       ///< average storage
  double mu = 1.1;      ///< growth bound (on the original time scale)
};

struct HeterogeneousBounds {
  HeterogeneousInputs in;
  std::uint32_t c = 0;
  double nu = 0.0;
  double u_prime = 0.0;  ///< (c + 3µ⁴)/c in Theorem 2
  double d_prime = 0.0;  ///< max{d, u*, e}
  double k_real = 0.0;
  std::uint32_t k = 0;
  bool valid = false;

  [[nodiscard]] std::uint32_t catalog(std::uint32_t n) const;
  [[nodiscard]] std::string describe() const;
};

class Theorem2 {
 public:
  /// Smallest integer c with c > 4µ⁴/(u*−1).
  [[nodiscard]] static std::uint32_t min_c(double u_star, double mu);
  /// The paper's practical choice c = ⌈10µ⁴/(u*−1)⌉.
  [[nodiscard]] static std::uint32_t recommended_c(double u_star, double mu);

  [[nodiscard]] static double nu(double mu, std::uint32_t c);
  [[nodiscard]] static double u_prime(double mu, std::uint32_t c);
  [[nodiscard]] static double d_prime(double d, double u_star);
  [[nodiscard]] static double k_bound(double u_star, double d, double mu,
                                      std::uint32_t c);
  [[nodiscard]] static HeterogeneousBounds evaluate(HeterogeneousInputs in,
                                                    std::uint32_t c = 0);

  /// Closed form Ω((u*−1)² log((u*+3)/4) / µ⁴ · d n / log d′) with the
  /// explicit 1/40 constant mirroring Theorem 1's derivation.
  [[nodiscard]] static double catalog_closed_form(std::uint32_t n,
                                                  double u_star, double d,
                                                  double mu);
};

}  // namespace p2pvod::analysis
