#include "analysis/obstruction.hpp"

#include <cmath>
#include <stdexcept>

#include "flow/bipartite.hpp"

namespace p2pvod::analysis {

std::optional<ObstructionWitness> ObstructionSearch::probe_burst(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    const alloc::Allocation& allocation,
    const std::vector<model::VideoId>& demands) {
  const std::uint32_t c = catalog.stripes_per_video();
  flow::ConnectionProblem problem(profile.size());
  for (model::BoxId b = 0; b < profile.size(); ++b)
    problem.set_capacity(b, profile.upload_slots(b, c));

  std::vector<std::uint32_t> candidates;
  for (model::BoxId b = 0; b < demands.size(); ++b) {
    const model::VideoId v = demands[b];
    if (v == model::kInvalidVideo) continue;
    for (std::uint32_t i = 0; i < c; ++i) {
      const model::StripeId s = catalog.stripe_id(v, i);
      if (allocation.box_has(b, s)) continue;  // served locally
      candidates.clear();
      for (const model::BoxId holder : allocation.holders(s)) {
        if (holder != b) candidates.push_back(holder);
      }
      problem.add_request(candidates);
    }
  }
  if (problem.request_count() == 0) return std::nullopt;

  const flow::MatchResult result = problem.solve();
  if (result.complete) return std::nullopt;

  ObstructionWitness witness;
  witness.demands = demands;
  witness.unserved_requests = problem.request_count() - result.served;
  if (const auto hall = problem.infeasibility_witness())
    witness.hall_set_size = static_cast<std::uint32_t>(hall->size());
  return witness;
}

std::optional<ObstructionWitness> ObstructionSearch::exhaustive(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    const alloc::Allocation& allocation, std::uint64_t budget) {
  const std::uint32_t n = profile.size();
  const std::uint32_t m = catalog.video_count();
  const double combos =
      std::pow(static_cast<double>(m) + 1.0, static_cast<double>(n));
  if (combos > static_cast<double>(budget)) {
    throw std::invalid_argument(
        "ObstructionSearch::exhaustive: (m+1)^n exceeds budget");
  }

  std::vector<model::VideoId> demands(n, model::kInvalidVideo);
  const auto total = static_cast<std::uint64_t>(combos);
  for (std::uint64_t code = 1; code < total; ++code) {
    std::uint64_t rest = code;
    for (model::BoxId b = 0; b < n; ++b) {
      const auto digit = static_cast<std::uint32_t>(rest % (m + 1));
      demands[b] = digit == 0 ? model::kInvalidVideo
                              : static_cast<model::VideoId>(digit - 1);
      rest /= (m + 1);
    }
    if (auto witness = probe_burst(catalog, profile, allocation, demands))
      return witness;
  }
  return std::nullopt;
}

std::vector<model::VideoId> ObstructionSearch::avoider_assignment(
    const model::Catalog& catalog, const alloc::Allocation& allocation,
    util::Rng& rng) {
  const std::uint32_t n = allocation.box_count();
  const std::uint32_t m = catalog.video_count();
  std::vector<model::VideoId> demands(n, model::kInvalidVideo);
  std::vector<model::VideoId> missing;
  for (model::BoxId b = 0; b < n; ++b) {
    missing.clear();
    for (model::VideoId v = 0; v < m; ++v) {
      if (!allocation.box_has_video_data(b, catalog, v)) missing.push_back(v);
    }
    if (!missing.empty())
      demands[b] = missing[rng.next_below(missing.size())];
  }
  return demands;
}

ObstructionSearch::MonteCarloResult ObstructionSearch::monte_carlo(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    const alloc::Allocation& allocation, std::uint64_t trials,
    util::Rng& rng) {
  MonteCarloResult result;
  const std::uint32_t n = profile.size();
  const std::uint32_t m = catalog.video_count();

  // Deterministic first probe: the avoider assignment (§1.3's adversary).
  {
    const auto demands = avoider_assignment(catalog, allocation, rng);
    ++result.trials;
    if (auto witness = probe_burst(catalog, profile, allocation, demands)) {
      ++result.infeasible;
      result.witness = std::move(witness);
    }
  }

  std::vector<model::VideoId> demands(n);
  for (std::uint64_t trial = 1; trial < trials; ++trial) {
    for (model::BoxId b = 0; b < n; ++b)
      demands[b] = static_cast<model::VideoId>(rng.next_below(m));
    ++result.trials;
    if (auto witness = probe_burst(catalog, profile, allocation, demands)) {
      ++result.infeasible;
      if (!result.witness) result.witness = std::move(witness);
    }
  }
  return result;
}

}  // namespace p2pvod::analysis
