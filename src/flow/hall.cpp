#include "flow/hall.hpp"

#include <stdexcept>

namespace p2pvod::flow {

std::optional<HallViolation> HallChecker::check_subset(
    const ConnectionProblem& problem,
    const std::vector<std::uint32_t>& subset) {
  std::vector<bool> in_bx(problem.box_count(), false);
  std::uint64_t capacity = 0;
  for (const std::uint32_t r : subset) {
    for (const std::uint32_t b : problem.candidates(r)) {
      if (!in_bx[b]) {
        in_bx[b] = true;
        capacity += problem.capacity(b);
      }
    }
  }
  if (capacity >= subset.size()) return std::nullopt;
  return HallViolation{subset, subset.size(), capacity};
}

std::optional<HallViolation> HallChecker::find_violation(
    const ConnectionProblem& problem) {
  const std::uint32_t requests = problem.request_count();
  if (requests > kMaxRequests) {
    throw std::invalid_argument(
        "HallChecker: instance too large for exhaustive enumeration");
  }
  const std::uint64_t limit = 1ULL << requests;
  std::vector<std::uint32_t> subset;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    subset.clear();
    for (std::uint32_t r = 0; r < requests; ++r) {
      if (mask & (1ULL << r)) subset.push_back(r);
    }
    if (auto violation = check_subset(problem, subset)) return violation;
  }
  return std::nullopt;
}

bool HallChecker::feasible(const ConnectionProblem& problem) {
  return !find_violation(problem).has_value();
}

}  // namespace p2pvod::flow
