// Round-to-round matching with connection reuse.
//
// The paper's model lets boxes keep connections across rounds and only wire
// new ones (one round is "the time necessary for a box to establish a
// connection", §1.1). IncrementalMatcher exploits that: requests that keep a
// still-valid server stay put; only new/broken requests are (re)matched via
// augmenting paths. This is an optimization ablated in bench E12 — results
// are always verified identical in service count to a from-scratch solve.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/bipartite.hpp"

namespace p2pvod::flow {

struct IncrementalStats {
  std::uint64_t rounds = 0;
  std::uint64_t kept_connections = 0;
  std::uint64_t new_connections = 0;
  std::uint64_t augment_calls = 0;
};

class IncrementalMatcher {
 public:
  explicit IncrementalMatcher(std::uint32_t box_count);

  /// Solve the round's problem given `carry`: carry[r] is the box that served
  /// request r in the previous round (or -1 if new). Carried assignments are
  /// kept when the box is still a candidate and capacity permits; remaining
  /// requests are matched with Kuhn-style augmentation over the residual
  /// capacities. Returns the same MatchResult contract as
  /// ConnectionProblem::solve (maximum matching: augmentation is exhaustive).
  [[nodiscard]] MatchResult solve(const ConnectionProblem& problem,
                                  const std::vector<std::int32_t>& carry);

  [[nodiscard]] const IncrementalStats& stats() const noexcept {
    return stats_;
  }

 private:
  bool augment(const ConnectionProblem& problem, std::uint32_t request,
               std::vector<std::int32_t>& assignment,
               std::vector<std::uint32_t>& degree,
               std::vector<std::vector<std::uint32_t>>& served_by,
               std::vector<bool>& visited_box);

  std::uint32_t box_count_;
  IncrementalStats stats_;
};

}  // namespace p2pvod::flow
