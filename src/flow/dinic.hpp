// Dinic's maximum-flow algorithm.
//
// On the bipartite unit-request networks produced by the connection-matching
// reduction (§2.2 of the paper) Dinic runs in O(E sqrt(V)) — it degenerates
// exactly into Hopcroft–Karp — so one solver covers both the homogeneous and
// the weighted heterogeneous case (box capacities ⌊u_b c⌋ > 1).
#pragma once

#include <vector>

#include "flow/graph.hpp"

namespace p2pvod::flow {

class Dinic {
 public:
  explicit Dinic(FlowNetwork& network) : network_(network) {}

  /// Compute the maximum flow from `source` to `sink`. The network keeps the
  /// final flow (inspect via FlowNetwork::flow_on); call reset_flow() to reuse.
  Capacity max_flow(NodeId source, NodeId sink);

  /// Nodes reachable from `source` in the residual graph after max_flow();
  /// the source side of a minimum cut (used to extract Hall-violating sets).
  [[nodiscard]] std::vector<bool> min_cut_source_side(NodeId source) const;

 private:
  bool build_levels(NodeId source, NodeId sink);
  Capacity augment(NodeId v, NodeId sink, Capacity limit);

  FlowNetwork& network_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> next_arc_;
};

}  // namespace p2pvod::flow
