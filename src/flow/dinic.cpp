#include "flow/dinic.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::flow {

namespace {

// kStable: sequential algorithm, deterministic per instance.
obs::Counter& solves_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/dinic_solves");
  return counter;
}
obs::Counter& phases_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/dinic_phases");
  return counter;
}

}  // namespace

bool Dinic::build_levels(NodeId source, NodeId sink) {
  level_.assign(network_.node_count(), -1);
  std::deque<NodeId> queue;
  level_[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : network_.adjacency(v)) {
      const NodeId w = network_.to_[e];
      if (network_.cap_[e] > 0 && level_[w] < 0) {
        level_[w] = level_[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return level_[sink] >= 0;
}

Capacity Dinic::augment(NodeId v, NodeId sink, Capacity limit) {
  if (v == sink || limit == 0) return limit;
  Capacity pushed = 0;
  auto& arc = next_arc_[v];
  const auto& edges = network_.adjacency_[v];
  while (arc < edges.size()) {
    const EdgeId e = edges[arc];
    const NodeId w = network_.to_[e];
    if (network_.cap_[e] > 0 && level_[w] == level_[v] + 1) {
      const Capacity amount =
          augment(w, sink, std::min(limit - pushed, network_.cap_[e]));
      if (amount > 0) {
        network_.push(e, amount);
        pushed += amount;
        if (pushed == limit) return pushed;
        continue;  // same arc may still have residual capacity
      }
    }
    ++arc;
  }
  level_[v] = -1;  // dead end; prune for this phase
  return pushed;
}

Capacity Dinic::max_flow(NodeId source, NodeId sink) {
  OBS_SPAN("flow/dinic");
  solves_counter().add();
  Capacity total = 0;
  while (build_levels(source, sink)) {
    phases_counter().add();
    next_arc_.assign(network_.node_count(), 0);
    total += augment(source, sink, kInfCapacity);
  }
  return total;
}

std::vector<bool> Dinic::min_cut_source_side(NodeId source) const {
  std::vector<bool> reachable(network_.node_count(), false);
  std::deque<NodeId> queue;
  reachable[source] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : network_.adjacency(v)) {
      const NodeId w = network_.to_[e];
      if (network_.cap_[e] > 0 && !reachable[w]) {
        reachable[w] = true;
        queue.push_back(w);
      }
    }
  }
  return reachable;
}

}  // namespace p2pvod::flow
