#include "flow/min_cost.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "flow/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::flow {

namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

// Solver work counters. All kStable: the algorithm is sequential and
// deterministic per instance, and the multiset of instances solved is
// thread-count-invariant under the repo's seeding contract.
obs::Counter& solves_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/min_cost_solves");
  return counter;
}
obs::Counter& augmentations_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/min_cost_augmentations");
  return counter;
}
obs::Counter& potential_updates_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "flow/min_cost_potential_updates");
  return counter;
}
obs::Histogram& path_length_histogram() {
  static obs::Histogram& histogram = obs::MetricsRegistry::global().histogram(
      "flow/min_cost_path_length", obs::pow2_bounds(8));
  return histogram;
}

void validate(const ConnectionProblem& problem, const EdgeCosts& costs) {
  if (costs.size() != problem.request_count())
    throw std::invalid_argument(
        "MinCostMatcher: costs row count != request count");
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    if (costs[r].size() != problem.candidates(r).size())
      throw std::invalid_argument(
          "MinCostMatcher: costs row shape != candidate set");
    for (const Cost c : costs[r]) {
      if (c < 0)
        throw std::invalid_argument("MinCostMatcher: negative edge cost");
    }
  }
}

void validate_groups(const ConnectionProblem& problem,
                     const EdgeGroups& groups,
                     const std::vector<std::uint32_t>& caps) {
  if (groups.size() != problem.request_count())
    throw std::invalid_argument(
        "enforce_group_caps: groups row count != request count");
  for (std::uint32_t r = 0; r < problem.request_count(); ++r) {
    if (groups[r].size() != problem.candidates(r).size())
      throw std::invalid_argument(
          "enforce_group_caps: groups row shape != candidate set");
    for (const std::uint32_t g : groups[r]) {
      if (g != kUncappedGroup && g >= caps.size())
        throw std::invalid_argument(
            "enforce_group_caps: group id out of range");
    }
  }
}

bool all_zero(const EdgeCosts& costs) {
  for (const auto& row : costs) {
    for (const Cost c : row) {
      if (c != 0) return false;
    }
  }
  return true;
}

}  // namespace

MinCostResult MinCostMatcher::solve(const ConnectionProblem& problem,
                                    const EdgeCosts& costs) {
  OBS_SPAN("flow/min_cost");
  solves_counter().add();
  validate(problem, costs);

  // All-zero costs: every maximum matching is min-cost, so the plain Dinic
  // feasibility solve is the answer (and the cheaper path).
  if (all_zero(costs)) {
    MinCostResult result;
    result.match = problem.solve(Engine::kDinic);
    return result;
  }

  const std::uint32_t boxes = problem.box_count();
  const std::uint32_t requests = problem.request_count();
  FlowNetwork network(boxes + requests + 2);
  const NodeId source = boxes + requests;
  const NodeId sink = source + 1;

  // edge_cost[e] is the cost of traversing (forward or residual) edge e;
  // reverse edges refund the forward cost.
  std::vector<Cost> edge_cost;
  const auto add_edge = [&](NodeId from, NodeId to, Capacity cap, Cost cost) {
    const EdgeId id = network.add_edge(from, to, cap);
    edge_cost.resize(id + 2, 0);
    edge_cost[id] = cost;
    edge_cost[id + 1] = -cost;
    return id;
  };

  for (std::uint32_t b = 0; b < boxes; ++b) {
    if (problem.capacity(b) > 0) add_edge(source, b, problem.capacity(b), 0);
  }
  std::vector<std::vector<EdgeId>> request_box_edges(requests);
  for (std::uint32_t r = 0; r < requests; ++r) {
    const auto& candidates = problem.candidates(r);
    request_box_edges[r].reserve(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      request_box_edges[r].push_back(
          add_edge(candidates[j], boxes + r, 1, costs[r][j]));
    }
    add_edge(boxes + r, sink, 1, 0);
  }

  // Successive shortest paths with Johnson potentials. All original costs
  // are non-negative, so the initial zero potentials are feasible and every
  // reduced cost stays non-negative across augmentations.
  const NodeId nodes = network.node_count();
  std::vector<Cost> potential(nodes, 0);
  std::vector<Cost> dist(nodes);
  std::vector<EdgeId> parent_edge(nodes);
  std::vector<bool> settled(nodes);

  for (;;) {
    dist.assign(nodes, kInfCost);
    settled.assign(nodes, false);
    dist[source] = 0;
    using Entry = std::pair<Cost, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    queue.push({0, source});
    while (!queue.empty()) {
      const auto [d, v] = queue.top();
      queue.pop();
      if (settled[v]) continue;
      settled[v] = true;
      for (const EdgeId e : network.adjacency(v)) {
        if (network.residual(e) <= 0) continue;
        const NodeId to = network.edge_to(e);
        const Cost reduced = edge_cost[e] + potential[v] - potential[to];
        if (dist[v] + reduced < dist[to]) {
          dist[to] = dist[v] + reduced;
          parent_edge[to] = e;
          queue.push({dist[to], to});
        }
      }
    }
    if (dist[sink] >= kInfCost) break;  // no augmenting path left
    augmentations_counter().add();

    std::uint64_t updated = 0;
    for (NodeId v = 0; v < nodes; ++v) {
      if (dist[v] < kInfCost) {
        potential[v] += dist[v];
        ++updated;
      }
    }
    potential_updates_counter().add(updated);

    // Bottleneck is 1 (every path crosses a unit request->sink edge), but
    // compute it anyway so the loop stays correct if the reduction changes.
    Capacity bottleneck = kInfCapacity;
    std::uint64_t path_edges = 0;
    for (NodeId v = sink; v != source;) {
      const EdgeId e = parent_edge[v];
      bottleneck = std::min(bottleneck, network.residual(e));
      v = network.edge_to(e ^ 1u);
      ++path_edges;
    }
    path_length_histogram().observe(path_edges);
    for (NodeId v = sink; v != source;) {
      const EdgeId e = parent_edge[v];
      network.push(e, bottleneck);
      v = network.edge_to(e ^ 1u);
    }
  }

  MinCostResult result;
  result.match.assignment.assign(requests, -1);
  for (std::uint32_t r = 0; r < requests; ++r) {
    const auto& candidates = problem.candidates(r);
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (network.flow_on(request_box_edges[r][j]) > 0) {
        result.match.assignment[r] = static_cast<std::int32_t>(candidates[j]);
        result.total_cost += costs[r][j];
        ++result.match.served;
        break;
      }
    }
  }
  result.match.complete = (result.match.served == requests);
  return result;
}

MinCostResult min_cost_brute_force(const ConnectionProblem& problem,
                                   const EdgeCosts& costs) {
  validate(problem, costs);
  const std::uint32_t requests = problem.request_count();

  double states = 1.0;
  for (std::uint32_t r = 0; r < requests; ++r) {
    states *= static_cast<double>(problem.candidates(r).size() + 1);
    if (states > static_cast<double>(1u << 22))
      throw std::invalid_argument(
          "min_cost_brute_force: instance too large to enumerate");
  }

  std::vector<std::uint32_t> remaining(problem.capacities());
  std::vector<std::int32_t> assignment(requests, -1);
  MinCostResult best;
  best.match.assignment.assign(requests, -1);
  best.total_cost = kInfCost;

  // Depth-first over requests: leave r unserved or give it any candidate
  // with spare capacity; keep (max served, min cost) at the leaves.
  const auto recurse = [&](const auto& self, std::uint32_t r,
                           std::uint32_t served, Cost cost) -> void {
    if (r == requests) {
      if (served > best.match.served ||
          (served == best.match.served && cost < best.total_cost)) {
        best.match.served = served;
        best.total_cost = cost;
        best.match.assignment = assignment;
      }
      return;
    }
    const auto& candidates = problem.candidates(r);
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      const std::uint32_t b = candidates[j];
      if (remaining[b] == 0) continue;
      --remaining[b];
      assignment[r] = static_cast<std::int32_t>(b);
      self(self, r + 1, served + 1, cost + costs[r][j]);
      assignment[r] = -1;
      ++remaining[b];
    }
    self(self, r + 1, served, cost);
  };
  recurse(recurse, 0, 0, 0);  // the all-unserved leaf always updates `best`

  best.match.complete = (best.match.served == requests);
  return best;
}

GroupCapOutcome enforce_group_caps(const ConnectionProblem& problem,
                                   const EdgeCosts& costs,
                                   const EdgeGroups& groups,
                                   const std::vector<std::uint32_t>& caps,
                                   MatchResult& result) {
  validate(problem, costs);
  validate_groups(problem, groups, caps);
  if (result.assignment.size() != problem.request_count())
    throw std::invalid_argument(
        "enforce_group_caps: result shape != request count");

  std::vector<std::uint32_t> budget(caps);
  // The candidate index of request r's assignment — groups and costs are
  // candidate-indexed, the assignment is a box id.
  const auto candidate_index = [&](std::uint32_t r, std::uint32_t box) {
    const auto& candidates = problem.candidates(r);
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (candidates[j] == box) return j;
    }
    throw std::invalid_argument(
        "enforce_group_caps: assigned box is not a candidate");
  };

  GroupCapOutcome outcome;
  // Pass 1 — admission control in request order: connections beyond a
  // group's cap are dropped and counted. Deterministic (no RNG, fixed
  // order).
  std::vector<std::uint32_t> rejected;
  for (std::uint32_t r = 0; r < result.assignment.size(); ++r) {
    const std::int32_t assigned = result.assignment[r];
    if (assigned < 0) continue;
    const std::uint32_t g =
        groups[r][candidate_index(r, static_cast<std::uint32_t>(assigned))];
    if (g == kUncappedGroup) continue;
    std::uint32_t& left = budget[g];
    if (left == kUncappedGroup) continue;  // unlimited budget
    if (left == 0) {
      result.assignment[r] = -1;
      --result.served;
      ++outcome.rejections;
      rejected.push_back(r);
    } else {
      --left;
    }
  }

  // Pass 2 — one greedy rescue attempt per dropped request: the cheapest
  // candidate (ties to the lowest box id) with spare box capacity and group
  // budget. No augmenting here; a rescue never displaces a kept connection.
  if (!rejected.empty()) {
    std::vector<std::uint32_t> degree =
        result.box_degrees(problem.box_count());
    for (const std::uint32_t r : rejected) {
      const auto& candidates = problem.candidates(r);
      std::int32_t best = -1;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        const std::uint32_t b = candidates[j];
        if (degree[b] >= problem.capacity(b)) continue;
        const std::uint32_t g = groups[r][j];
        if (g != kUncappedGroup && budget[g] == 0) continue;
        if (best < 0 || costs[r][j] < costs[r][best_j] ||
            (costs[r][j] == costs[r][best_j] &&
             b < static_cast<std::uint32_t>(best))) {
          best = static_cast<std::int32_t>(b);
          best_j = j;
        }
      }
      if (best < 0) continue;
      result.assignment[r] = best;
      ++result.served;
      ++outcome.rescues;
      ++degree[static_cast<std::uint32_t>(best)];
      const std::uint32_t g = groups[r][best_j];
      if (g != kUncappedGroup && budget[g] != kUncappedGroup) --budget[g];
    }
  }
  result.complete =
      (result.served == static_cast<std::uint32_t>(result.assignment.size()));
  return outcome;
}

MinCostResult min_cost_capped_brute_force(
    const ConnectionProblem& problem, const EdgeCosts& costs,
    const EdgeGroups& groups, const std::vector<std::uint32_t>& caps) {
  validate(problem, costs);
  validate_groups(problem, groups, caps);
  const std::uint32_t requests = problem.request_count();

  double states = 1.0;
  for (std::uint32_t r = 0; r < requests; ++r) {
    states *= static_cast<double>(problem.candidates(r).size() + 1);
    if (states > static_cast<double>(1u << 22))
      throw std::invalid_argument(
          "min_cost_capped_brute_force: instance too large to enumerate");
  }

  std::vector<std::uint32_t> remaining(problem.capacities());
  std::vector<std::uint32_t> budget(caps);
  std::vector<std::int32_t> assignment(requests, -1);
  MinCostResult best;
  best.match.assignment.assign(requests, -1);
  best.total_cost = kInfCost;

  // min_cost_brute_force's DFS plus a group-budget dimension: an edge in a
  // capped group consumes one unit of that group's budget for the subtree.
  const auto recurse = [&](const auto& self, std::uint32_t r,
                           std::uint32_t served, Cost cost) -> void {
    if (r == requests) {
      if (served > best.match.served ||
          (served == best.match.served && cost < best.total_cost)) {
        best.match.served = served;
        best.total_cost = cost;
        best.match.assignment = assignment;
      }
      return;
    }
    const auto& candidates = problem.candidates(r);
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      const std::uint32_t b = candidates[j];
      if (remaining[b] == 0) continue;
      const std::uint32_t g = groups[r][j];
      const bool capped = g != kUncappedGroup && budget[g] != kUncappedGroup;
      if (capped && budget[g] == 0) continue;
      --remaining[b];
      if (capped) --budget[g];
      assignment[r] = static_cast<std::int32_t>(b);
      self(self, r + 1, served + 1, cost + costs[r][j]);
      assignment[r] = -1;
      if (capped) ++budget[g];
      ++remaining[b];
    }
    self(self, r + 1, served, cost);
  };
  recurse(recurse, 0, 0, 0);  // the all-unserved leaf always updates `best`

  best.match.complete = (best.match.served == requests);
  return best;
}

}  // namespace p2pvod::flow
