// Brute-force verifier of the min-cut/max-flow characterization (Lemma 1).
//
// For small instances, enumerate every subset X of requests and check the
// deficiency form of Hall's condition with box capacities:
//     Σ_{b ∈ B(X)} cap_b  >=  |X|        (capacities in stripe slots)
// The flow solvers are cross-checked against this in the property tests —
// Lemma 1 states that a complete connection matching exists iff no subset
// violates the inequality.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/bipartite.hpp"

namespace p2pvod::flow {

struct HallViolation {
  std::vector<std::uint32_t> requests;  ///< the violating X
  std::uint64_t demand = 0;             ///< |X|
  std::uint64_t capacity = 0;           ///< Σ_{b∈B(X)} cap_b
};

class HallChecker {
 public:
  /// Maximum request count accepted by the exhaustive checker (2^r subsets).
  static constexpr std::uint32_t kMaxRequests = 24;

  /// Returns a violating subset, or nullopt when the Hall condition holds for
  /// every subset (which by Lemma 1 is equivalent to matchability).
  /// Throws std::invalid_argument when the problem has too many requests.
  [[nodiscard]] static std::optional<HallViolation> find_violation(
      const ConnectionProblem& problem);

  /// Convenience: true iff no violation exists.
  [[nodiscard]] static bool feasible(const ConnectionProblem& problem);

  /// Check one specific subset of requests.
  [[nodiscard]] static std::optional<HallViolation> check_subset(
      const ConnectionProblem& problem,
      const std::vector<std::uint32_t>& subset);
};

}  // namespace p2pvod::flow
