// ConnectionProblem: one round of the paper's connection-matching question.
//
// Given the set Y of active stripe requests and, for each request, the set
// B(x) of boxes currently possessing the needed data (static replicas plus
// playback caches, §2.2), find a sub-graph where every request has degree 1
// and every box b has degree at most ⌊u_b c⌋. Lemma 1 reduces existence to a
// max-flow computation; this class owns the reduction and result extraction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/graph.hpp"

namespace p2pvod::flow {

/// Solver backend selection (benchmarked against each other in E12).
enum class Engine {
  kDinic,         ///< max-flow on the §2.3 network (handles any capacities)
  kHopcroftKarp,  ///< capacity-aware HK, specialized bipartite solver
};

[[nodiscard]] const char* engine_name(Engine engine) noexcept;

struct MatchResult {
  /// assignment[r] = serving box for request r, or -1 if unserved.
  std::vector<std::int32_t> assignment;
  std::uint32_t served = 0;
  bool complete = false;  ///< every request served

  /// Per-box degree under the returned assignment.
  [[nodiscard]] std::vector<std::uint32_t> box_degrees(
      std::uint32_t box_count) const;
};

class ConnectionProblem {
 public:
  explicit ConnectionProblem(std::uint32_t box_count);

  /// Set box capacity (stripe connections per round), ⌊u_b c⌋.
  void set_capacity(std::uint32_t box, std::uint32_t capacity);
  void set_capacities(std::vector<std::uint32_t> capacities);

  /// Add a request and its candidate server set; returns request index.
  std::uint32_t add_request(std::vector<std::uint32_t> candidate_boxes);

  [[nodiscard]] std::uint32_t box_count() const noexcept {
    return static_cast<std::uint32_t>(capacity_.size());
  }
  [[nodiscard]] std::uint32_t request_count() const noexcept {
    return static_cast<std::uint32_t>(candidates_.size());
  }
  [[nodiscard]] const std::vector<std::uint32_t>& candidates(
      std::uint32_t request) const {
    return candidates_.at(request);
  }
  [[nodiscard]] std::uint32_t capacity(std::uint32_t box) const {
    return capacity_.at(box);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& capacities() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept;

  /// Solve with the requested engine.
  [[nodiscard]] MatchResult solve(Engine engine = Engine::kDinic) const;

  /// When infeasible, extract a witness violating Lemma 1: a set X of requests
  /// with total demanded stripes |X| exceeding the capacity of B(X). Derived
  /// from the min-cut of the flow network. Empty optional when feasible.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>>
  infeasibility_witness() const;

 private:
  [[nodiscard]] MatchResult solve_dinic() const;
  [[nodiscard]] MatchResult solve_hopcroft_karp() const;

  std::vector<std::uint32_t> capacity_;
  std::vector<std::vector<std::uint32_t>> candidates_;
};

}  // namespace p2pvod::flow
