#include "flow/hopcroft_karp.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::flow {

namespace {

// kStable: sequential algorithm, deterministic per instance.
obs::Counter& solves_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/hk_solves");
  return counter;
}
obs::Counter& phases_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/hk_phases");
  return counter;
}
obs::Counter& augmentations_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/hk_augmentations");
  return counter;
}

}  // namespace

HopcroftKarp::HopcroftKarp(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::vector<std::uint32_t> capacities)
    : adjacency_(adjacency),
      capacity_(std::move(capacities)),
      degree_(capacity_.size(), 0),
      match_left_(adjacency.size(), -1),
      box_matches_(capacity_.size()) {}

bool HopcroftKarp::bfs_layers() {
  layer_.assign(adjacency_.size(), kInfLayer);
  box_layer_.assign(capacity_.size(), kInfLayer);
  std::deque<std::uint32_t> queue;  // holds request ids
  for (std::uint32_t r = 0; r < adjacency_.size(); ++r) {
    if (match_left_[r] < 0) {
      layer_[r] = 0;
      queue.push_back(r);
    }
  }
  bool found_free_box = false;
  while (!queue.empty()) {
    const std::uint32_t r = queue.front();
    queue.pop_front();
    for (const std::uint32_t b : adjacency_[r]) {
      if (box_layer_[b] != kInfLayer) continue;
      box_layer_[b] = layer_[r] + 1;
      if (degree_[b] < capacity_[b]) {
        found_free_box = true;  // augmenting path ends here
        continue;
      }
      // Saturated box: traverse its matched requests backwards.
      for (const std::uint32_t matched : box_matches_[b]) {
        if (layer_[matched] == kInfLayer) {
          layer_[matched] = box_layer_[b] + 1;
          queue.push_back(matched);
        }
      }
    }
  }
  return found_free_box;
}

bool HopcroftKarp::dfs_augment(std::uint32_t request) {
  for (const std::uint32_t b : adjacency_[request]) {
    if (box_layer_[b] != layer_[request] + 1) continue;
    const std::uint32_t next_layer = box_layer_[b] + 1;
    box_layer_[b] = kInfLayer;  // visit each box once per phase
    if (degree_[b] < capacity_[b]) {
      match_left_[request] = static_cast<std::int32_t>(b);
      box_matches_[b].push_back(request);
      ++degree_[b];
      return true;
    }
    for (auto& matched : box_matches_[b]) {
      if (layer_[matched] != next_layer) continue;  // not on a shortest path
      if (dfs_augment(matched)) {
        // `matched` moved elsewhere; reuse its slot on b for `request`.
        matched = request;
        match_left_[request] = static_cast<std::int32_t>(b);
        return true;
      }
    }
  }
  layer_[request] = kInfLayer;
  return false;
}

std::uint32_t HopcroftKarp::solve() {
  OBS_SPAN("flow/hopcroft_karp");
  solves_counter().add();
  std::uint32_t matched = 0;
  std::uint32_t augmented = 0;
  while (bfs_layers()) {
    phases_counter().add();
    for (std::uint32_t r = 0; r < adjacency_.size(); ++r) {
      if (match_left_[r] < 0 && dfs_augment(r)) {
        ++matched;
        ++augmented;
      }
    }
  }
  augmentations_counter().add(augmented);
  return matched;
}

}  // namespace p2pvod::flow
