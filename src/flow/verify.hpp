// Structural validation of a matching against its ConnectionProblem.
//
// The simulator's verify_incremental safety net used to compare only served
// *counts* against a reference solve, so a wrong-but-same-size assignment
// (server not in the request's candidate set, a box over its slot budget)
// passed silently — exactly the failure class an incremental-repair matcher
// is most likely to introduce. validate_assignment checks the assignment
// itself and throws std::logic_error naming the first offending request, so
// a verification failure pinpoints the broken edge instead of reporting a
// bare cardinality mismatch. Both the dense incremental path and the sparse
// CSR path funnel through it.
#pragma once

#include "flow/bipartite.hpp"

namespace p2pvod::flow {

/// Throws std::logic_error (with the offending request/box in the message)
/// unless `result` is a well-formed assignment for `problem`:
///   - one assignment entry per request, each -1 or a valid box id;
///   - every matched server is in that request's candidate set;
///   - no box serves more connections than its capacity;
///   - `served` equals the number of matched requests and `complete` agrees.
/// Does NOT check maximality — callers compare `served` against a reference
/// solve for that.
void validate_assignment(const ConnectionProblem& problem,
                         const MatchResult& result);

}  // namespace p2pvod::flow
