#include "flow/bipartite.hpp"

#include <stdexcept>

#include "flow/dinic.hpp"
#include "flow/hopcroft_karp.hpp"

namespace p2pvod::flow {

const char* engine_name(Engine engine) noexcept {
  switch (engine) {
    case Engine::kDinic:
      return "dinic";
    case Engine::kHopcroftKarp:
      return "hopcroft-karp";
  }
  return "unknown";
}

std::vector<std::uint32_t> MatchResult::box_degrees(
    std::uint32_t box_count) const {
  std::vector<std::uint32_t> degrees(box_count, 0);
  for (const std::int32_t b : assignment) {
    if (b >= 0) ++degrees[static_cast<std::uint32_t>(b)];
  }
  return degrees;
}

ConnectionProblem::ConnectionProblem(std::uint32_t box_count)
    : capacity_(box_count, 0) {}

void ConnectionProblem::set_capacity(std::uint32_t box,
                                     std::uint32_t capacity) {
  capacity_.at(box) = capacity;
}

void ConnectionProblem::set_capacities(std::vector<std::uint32_t> capacities) {
  if (capacities.size() != capacity_.size())
    throw std::invalid_argument("set_capacities: size mismatch");
  capacity_ = std::move(capacities);
}

std::uint32_t ConnectionProblem::add_request(
    std::vector<std::uint32_t> candidate_boxes) {
  for (const std::uint32_t b : candidate_boxes) {
    if (b >= capacity_.size())
      throw std::out_of_range("add_request: candidate box out of range");
  }
  candidates_.push_back(std::move(candidate_boxes));
  return static_cast<std::uint32_t>(candidates_.size() - 1);
}

std::uint64_t ConnectionProblem::edge_count() const noexcept {
  std::uint64_t edges = 0;
  for (const auto& cands : candidates_) edges += cands.size();
  return edges;
}

MatchResult ConnectionProblem::solve(Engine engine) const {
  switch (engine) {
    case Engine::kDinic:
      return solve_dinic();
    case Engine::kHopcroftKarp:
      return solve_hopcroft_karp();
  }
  throw std::logic_error("ConnectionProblem::solve: bad engine");
}

MatchResult ConnectionProblem::solve_dinic() const {
  // Network of §2.3: source -> box (cap ⌊u_b c⌋), box -> request (cap 1),
  // request -> sink (cap 1). Requests scaled by c so all capacities integral.
  const std::uint32_t boxes = box_count();
  const std::uint32_t requests = request_count();
  FlowNetwork network(boxes + requests + 2);
  const NodeId source = boxes + requests;
  const NodeId sink = source + 1;

  std::vector<EdgeId> request_sink_edge(requests);
  std::vector<std::vector<EdgeId>> request_box_edges(requests);
  for (std::uint32_t b = 0; b < boxes; ++b) {
    if (capacity_[b] > 0) network.add_edge(source, b, capacity_[b]);
  }
  for (std::uint32_t r = 0; r < requests; ++r) {
    request_box_edges[r].reserve(candidates_[r].size());
    for (const std::uint32_t b : candidates_[r]) {
      request_box_edges[r].push_back(network.add_edge(b, boxes + r, 1));
    }
    request_sink_edge[r] = network.add_edge(boxes + r, sink, 1);
  }

  Dinic dinic(network);
  const Capacity flow = dinic.max_flow(source, sink);

  MatchResult result;
  result.assignment.assign(requests, -1);
  result.served = static_cast<std::uint32_t>(flow);
  result.complete = (result.served == requests);
  for (std::uint32_t r = 0; r < requests; ++r) {
    for (std::size_t j = 0; j < candidates_[r].size(); ++j) {
      if (network.flow_on(request_box_edges[r][j]) > 0) {
        result.assignment[r] = static_cast<std::int32_t>(candidates_[r][j]);
        break;
      }
    }
  }
  return result;
}

MatchResult ConnectionProblem::solve_hopcroft_karp() const {
  HopcroftKarp solver(candidates_, capacity_);
  MatchResult result;
  result.served = solver.solve();
  result.assignment = solver.assignment();
  result.complete = (result.served == request_count());
  return result;
}

std::optional<std::vector<std::uint32_t>>
ConnectionProblem::infeasibility_witness() const {
  // Rebuild the flow network, run max-flow, and if some request is unserved
  // read the min cut: X = requests on the source side of the cut whose entire
  // candidate set is saturated (also source side). Such X violates
  // U_B(X) >= |X|/c in slot units.
  const std::uint32_t boxes = box_count();
  const std::uint32_t requests = request_count();
  FlowNetwork network(boxes + requests + 2);
  const NodeId source = boxes + requests;
  const NodeId sink = source + 1;
  for (std::uint32_t b = 0; b < boxes; ++b) {
    if (capacity_[b] > 0) network.add_edge(source, b, capacity_[b]);
  }
  for (std::uint32_t r = 0; r < requests; ++r) {
    for (const std::uint32_t b : candidates_[r]) {
      network.add_edge(b, boxes + r, 1);
    }
    network.add_edge(boxes + r, sink, 1);
  }
  Dinic dinic(network);
  const Capacity flow = dinic.max_flow(source, sink);
  if (flow == requests) return std::nullopt;

  const std::vector<bool> source_side = dinic.min_cut_source_side(source);
  // X = sink-side requests whose candidate boxes are all sink-side. The cut
  // accounting of Lemma 1 then gives sum of capacities of B(X) < |X| (in
  // stripe-slot units), i.e. a Hall violation, and X is non-empty whenever
  // the flow is short of |Y|.
  std::vector<std::uint32_t> witness;
  for (std::uint32_t r = 0; r < requests; ++r) {
    if (source_side[boxes + r]) continue;
    bool all_sink_side = true;
    for (const std::uint32_t b : candidates_[r]) {
      if (source_side[b]) {
        all_sink_side = false;
        break;
      }
    }
    if (all_sink_side) witness.push_back(r);
  }
  return witness;
}

}  // namespace p2pvod::flow
