// Residual flow network used by the Dinic max-flow solver.
//
// Compact adjacency-list representation with paired forward/backward edges
// (edge i's reverse is i^1), the standard layout for augmenting-path solvers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace p2pvod::flow {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Capacity = std::int64_t;

inline constexpr Capacity kInfCapacity =
    std::numeric_limits<Capacity>::max() / 4;

class FlowNetwork {
 public:
  explicit FlowNetwork(NodeId nodes = 0);

  /// Append `count` nodes; returns the id of the first one.
  NodeId add_nodes(NodeId count);
  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(adjacency_.size());
  }

  /// Add a directed edge with the given capacity (and its zero-capacity
  /// reverse). Returns the forward edge id.
  EdgeId add_edge(NodeId from, NodeId to, Capacity capacity);

  [[nodiscard]] std::size_t edge_count() const noexcept {
    return to_.size() / 2;
  }

  /// Flow currently on forward edge `e` (== capacity consumed).
  [[nodiscard]] Capacity flow_on(EdgeId e) const;
  /// Residual capacity of (forward or reverse) edge `e`.
  [[nodiscard]] Capacity residual(EdgeId e) const { return cap_[e]; }
  [[nodiscard]] NodeId edge_to(EdgeId e) const { return to_[e]; }

  /// Reset all flow to zero (capacities preserved).
  void reset_flow();

  // --- internals shared with the solver ---
  [[nodiscard]] const std::vector<EdgeId>& adjacency(NodeId v) const {
    return adjacency_[v];
  }
  void push(EdgeId e, Capacity amount);

 private:
  friend class Dinic;

  std::vector<std::vector<EdgeId>> adjacency_;
  std::vector<NodeId> to_;
  std::vector<Capacity> cap_;        // residual capacities
  std::vector<Capacity> original_;   // original capacities (forward edges)
};

}  // namespace p2pvod::flow
