#include "flow/csr_problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::flow {

namespace {

/// Extra slots granted on relocation so a growing row amortizes its moves.
std::uint32_t slack_for(std::uint32_t size) {
  return std::max<std::uint32_t>(2, size / 2);
}

/// Pool-management accounting: relocations and compactions are driven purely
/// by the edit sequence (sizes and thresholds), so both are
/// thread-count-invariant.
obs::Counter& relocation_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/csr_row_relocations");
  return counter;
}

obs::Counter& compaction_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("flow/csr_pool_compactions");
  return counter;
}

}  // namespace

void CsrProblem::ensure_row(std::uint32_t row) {
  if (row >= rows_.size()) rows_.resize(static_cast<std::size_t>(row) + 1);
}

void CsrProblem::clear_row(std::uint32_t row) {
  RowRef& ref = rows_.at(row);
  edges_ -= ref.size;
  abandoned_ += ref.capacity;
  ref = RowRef{};
  maybe_compact();
}

void CsrProblem::assign_row(std::uint32_t row,
                            std::span<const std::uint32_t> boxes,
                            std::span<const std::uint32_t> counts) {
  if (boxes.size() != counts.size())
    throw std::invalid_argument("CsrProblem::assign_row: length mismatch");
  RowRef& ref = rows_.at(row);
  const auto size = static_cast<std::uint32_t>(boxes.size());
  if (size > ref.capacity) relocate(row, size + slack_for(size));
  RowRef& placed = rows_[row];  // relocate may have moved the span
  std::copy(boxes.begin(), boxes.end(), boxes_.begin() + placed.offset);
  std::copy(counts.begin(), counts.end(), counts_.begin() + placed.offset);
  edges_ += size;
  edges_ -= placed.size;
  placed.size = size;
  maybe_compact();
}

void CsrProblem::add_source(std::uint32_t row, std::uint32_t box) {
  RowRef& ref = rows_.at(row);
  const std::uint32_t pos = lower_bound_in(ref, box);
  if (pos < ref.size && boxes_[ref.offset + pos] == box) {
    ++counts_[ref.offset + pos];
    return;
  }
  if (ref.size == ref.capacity) relocate(row, ref.size + slack_for(ref.size));
  RowRef& placed = rows_[row];
  const std::size_t at = static_cast<std::size_t>(placed.offset) + pos;
  std::copy_backward(boxes_.begin() + at,
                     boxes_.begin() + placed.offset + placed.size,
                     boxes_.begin() + placed.offset + placed.size + 1);
  std::copy_backward(counts_.begin() + at,
                     counts_.begin() + placed.offset + placed.size,
                     counts_.begin() + placed.offset + placed.size + 1);
  boxes_[at] = box;
  counts_[at] = 1;
  ++placed.size;
  ++edges_;
  maybe_compact();
}

bool CsrProblem::remove_source(std::uint32_t row, std::uint32_t box) {
  RowRef& ref = rows_.at(row);
  const std::uint32_t pos = lower_bound_in(ref, box);
  if (pos >= ref.size || boxes_[ref.offset + pos] != box) return false;
  const std::size_t at = static_cast<std::size_t>(ref.offset) + pos;
  if (--counts_[at] > 0) return false;
  std::copy(boxes_.begin() + at + 1, boxes_.begin() + ref.offset + ref.size,
            boxes_.begin() + at);
  std::copy(counts_.begin() + at + 1, counts_.begin() + ref.offset + ref.size,
            counts_.begin() + at);
  --ref.size;
  --edges_;
  return true;
}

void CsrProblem::remove_box(std::uint32_t row, std::uint32_t box) {
  RowRef& ref = rows_.at(row);
  const std::uint32_t pos = lower_bound_in(ref, box);
  if (pos >= ref.size || boxes_[ref.offset + pos] != box) return;
  const std::size_t at = static_cast<std::size_t>(ref.offset) + pos;
  std::copy(boxes_.begin() + at + 1, boxes_.begin() + ref.offset + ref.size,
            boxes_.begin() + at);
  std::copy(counts_.begin() + at + 1, counts_.begin() + ref.offset + ref.size,
            counts_.begin() + at);
  --ref.size;
  --edges_;
}

bool CsrProblem::contains(std::uint32_t row, std::uint32_t box) const {
  const RowRef& ref = rows_.at(row);
  const std::uint32_t pos = lower_bound_in(ref, box);
  return pos < ref.size && boxes_[ref.offset + pos] == box;
}

std::span<const std::uint32_t> CsrProblem::row(std::uint32_t r) const {
  const RowRef& ref = rows_.at(r);
  return {boxes_.data() + ref.offset, ref.size};
}

// Does NOT compact: callers finish their edit (the row's size field may be
// mid-update) and trigger maybe_compact() themselves once consistent.
void CsrProblem::relocate(std::uint32_t row, std::uint32_t capacity) {
  relocation_counter().add();
  RowRef& ref = rows_[row];
  const auto offset = static_cast<std::uint32_t>(boxes_.size());
  boxes_.resize(boxes_.size() + capacity);
  counts_.resize(counts_.size() + capacity);
  std::copy_n(boxes_.begin() + ref.offset, ref.size, boxes_.begin() + offset);
  std::copy_n(counts_.begin() + ref.offset, ref.size,
              counts_.begin() + offset);
  abandoned_ += ref.capacity;
  ref.offset = offset;
  ref.capacity = capacity;
}

void CsrProblem::maybe_compact() {
  if (boxes_.size() < 4096 || abandoned_ * 2 < boxes_.size()) return;
  OBS_SPAN("flow/csr_compact");
  compaction_counter().add();
  std::vector<std::uint32_t> boxes;
  std::vector<std::uint32_t> counts;
  boxes.reserve(boxes_.size() - abandoned_);
  counts.reserve(counts_.size() - abandoned_);
  for (RowRef& ref : rows_) {
    const auto offset = static_cast<std::uint32_t>(boxes.size());
    // Shrink back to a small pad; relocation slack regrows where needed.
    const std::uint32_t capacity = ref.size + std::min(slack_for(ref.size), 4u);
    boxes.resize(boxes.size() + capacity);
    counts.resize(counts.size() + capacity);
    std::copy_n(boxes_.begin() + ref.offset, ref.size, boxes.begin() + offset);
    std::copy_n(counts_.begin() + ref.offset, ref.size,
                counts.begin() + offset);
    ref.offset = offset;
    ref.capacity = capacity;
  }
  boxes_ = std::move(boxes);
  counts_ = std::move(counts);
  abandoned_ = 0;
}

std::uint32_t CsrProblem::lower_bound_in(const RowRef& ref,
                                         std::uint32_t box) const {
  const auto begin = boxes_.begin() + ref.offset;
  const auto it = std::lower_bound(begin, begin + ref.size, box);
  return static_cast<std::uint32_t>(it - begin);
}

}  // namespace p2pvod::flow
