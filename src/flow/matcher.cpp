#include "flow/matcher.hpp"

#include <stdexcept>

namespace p2pvod::flow {

IncrementalMatcher::IncrementalMatcher(std::uint32_t box_count)
    : box_count_(box_count) {}

bool IncrementalMatcher::augment(
    const ConnectionProblem& problem, std::uint32_t request,
    std::vector<std::int32_t>& assignment, std::vector<std::uint32_t>& degree,
    std::vector<std::vector<std::uint32_t>>& served_by,
    std::vector<bool>& visited_box) {
  ++stats_.augment_calls;
  for (const std::uint32_t b : problem.candidates(request)) {
    if (visited_box[b]) continue;
    visited_box[b] = true;
    if (degree[b] < problem.capacity(b)) {
      assignment[request] = static_cast<std::int32_t>(b);
      served_by[b].push_back(request);
      ++degree[b];
      return true;
    }
    for (auto& other : served_by[b]) {
      if (augment(problem, other, assignment, degree, served_by,
                  visited_box)) {
        // `other` found a different box; its slot on b goes to `request`.
        other = request;
        assignment[request] = static_cast<std::int32_t>(b);
        return true;
      }
    }
  }
  return false;
}

MatchResult IncrementalMatcher::solve(const ConnectionProblem& problem,
                                      const std::vector<std::int32_t>& carry) {
  if (problem.box_count() != box_count_)
    throw std::invalid_argument("IncrementalMatcher: box count changed");
  ++stats_.rounds;

  const std::uint32_t requests = problem.request_count();
  std::vector<std::int32_t> assignment(requests, -1);
  std::vector<std::uint32_t> degree(box_count_, 0);
  std::vector<std::vector<std::uint32_t>> served_by(box_count_);

  // Phase 1: keep carried connections that are still valid.
  for (std::uint32_t r = 0; r < requests && r < carry.size(); ++r) {
    const std::int32_t prev = carry[r];
    if (prev < 0) continue;
    const auto b = static_cast<std::uint32_t>(prev);
    if (b >= box_count_ || degree[b] >= problem.capacity(b)) continue;
    bool still_candidate = false;
    for (const std::uint32_t cand : problem.candidates(r)) {
      if (cand == b) {
        still_candidate = true;
        break;
      }
    }
    if (!still_candidate) continue;
    assignment[r] = prev;
    served_by[b].push_back(r);
    ++degree[b];
    ++stats_.kept_connections;
  }

  // Phase 2: augmenting paths for the rest. Kuhn with per-request visited
  // reset; exhaustive, so the final matching is maximum given the kept edges.
  // (Keeping edges cannot reduce the max matching size: any kept edge lies in
  // some maximum matching of this bipartite b-matching by the exchange
  // argument, applied one kept edge at a time.)
  std::vector<bool> visited_box(box_count_);
  for (std::uint32_t r = 0; r < requests; ++r) {
    if (assignment[r] >= 0) continue;
    visited_box.assign(box_count_, false);
    if (augment(problem, r, assignment, degree, served_by, visited_box))
      ++stats_.new_connections;
  }

  MatchResult result;
  result.assignment = std::move(assignment);
  for (const std::int32_t a : result.assignment) {
    if (a >= 0) ++result.served;
  }
  result.complete = (result.served == requests);
  return result;
}

}  // namespace p2pvod::flow
