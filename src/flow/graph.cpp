#include "flow/graph.hpp"

#include <stdexcept>

namespace p2pvod::flow {

FlowNetwork::FlowNetwork(NodeId nodes) : adjacency_(nodes) {}

NodeId FlowNetwork::add_nodes(NodeId count) {
  const auto first = static_cast<NodeId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + count);
  return first;
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, Capacity capacity) {
  if (from >= node_count() || to >= node_count())
    throw std::out_of_range("FlowNetwork::add_edge: node out of range");
  if (capacity < 0)
    throw std::invalid_argument("FlowNetwork::add_edge: negative capacity");
  const auto id = static_cast<EdgeId>(to_.size());
  to_.push_back(to);
  cap_.push_back(capacity);
  original_.push_back(capacity);
  adjacency_[from].push_back(id);
  to_.push_back(from);
  cap_.push_back(0);
  original_.push_back(0);
  adjacency_[to].push_back(id + 1);
  return id;
}

Capacity FlowNetwork::flow_on(EdgeId e) const {
  // Forward edges are even; the flow equals capacity moved to the reverse.
  return cap_[e ^ 1u] - original_[e ^ 1u];
}

void FlowNetwork::reset_flow() { cap_ = original_; }

void FlowNetwork::push(EdgeId e, Capacity amount) {
  cap_[e] -= amount;
  cap_[e ^ 1u] += amount;
}

}  // namespace p2pvod::flow
