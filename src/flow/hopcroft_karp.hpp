// Capacity-aware Hopcroft–Karp for bipartite degree-constrained matching.
//
// Left vertices are stripe requests (each must be matched exactly once);
// right vertices are boxes with integral capacity cap_b = ⌊u_b c⌋ (§2.2:
// "each box b has degree at most u_b c"). The classical algorithm generalizes
// to right capacities by treating a right vertex as free while its matched
// degree is below cap_b — the phase structure and O(E sqrt(V)) bound carry
// over (equivalent to HK on the graph with cap_b copies of each box, without
// materializing the copies).
#pragma once

#include <cstdint>
#include <vector>

namespace p2pvod::flow {

class HopcroftKarp {
 public:
  /// adjacency[r] lists candidate boxes of request r; capacities[b] is box
  /// b's degree budget.
  HopcroftKarp(const std::vector<std::vector<std::uint32_t>>& adjacency,
               std::vector<std::uint32_t> capacities);

  /// Maximum number of requests that can be simultaneously matched.
  std::uint32_t solve();

  /// After solve(): assignment[r] = box serving request r, or -1 if unmatched.
  [[nodiscard]] const std::vector<std::int32_t>& assignment() const {
    return match_left_;
  }

 private:
  bool bfs_layers();
  bool dfs_augment(std::uint32_t request);

  const std::vector<std::vector<std::uint32_t>>& adjacency_;
  std::vector<std::uint32_t> capacity_;
  std::vector<std::uint32_t> degree_;        // matched degree per box
  std::vector<std::int32_t> match_left_;     // request -> box
  std::vector<std::uint32_t> layer_;         // BFS layer per request
  std::vector<std::uint32_t> box_layer_;     // BFS layer per box
  std::vector<std::vector<std::uint32_t>> box_matches_;  // box -> requests
  static constexpr std::uint32_t kInfLayer = 0xffffffffu;
};

}  // namespace p2pvod::flow
