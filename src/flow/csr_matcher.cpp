#include "flow/csr_matcher.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::flow {

namespace {

/// Augment-call accounting. The multiset of augment() calls and their
/// outcomes is fixed by the round schedule (calls happen sequentially within
/// one trial), so both metrics are thread-count-invariant.
struct AugmentCounters {
  obs::Counter& calls;
  obs::Histogram& depth;
  static AugmentCounters& get() {
    static AugmentCounters counters{
        obs::MetricsRegistry::global().counter("flow/csr_augments"),
        obs::MetricsRegistry::global().histogram("flow/csr_augment_depth",
                                                 obs::pow2_bounds(12))};
    return counters;
  }
};

}  // namespace

CsrMatcher::CsrMatcher(std::uint32_t box_count)
    : degree_(box_count, 0),
      served_by_(box_count),
      visit_mark_(box_count, 0) {}

void CsrMatcher::ensure_rows(std::uint32_t rows) {
  if (rows > assignment_.size()) assignment_.resize(rows, -1);
}

void CsrMatcher::unassign(std::uint32_t row) {
  const std::int32_t assigned = assignment_.at(row);
  if (assigned < 0) return;
  assignment_[row] = -1;
  const auto box = static_cast<std::uint32_t>(assigned);
  auto& servings = served_by_[box];
  servings.erase(std::find(servings.begin(), servings.end(), row));
  --degree_[box];
}

void CsrMatcher::unassign_box(std::uint32_t box,
                              std::vector<std::uint32_t>& out) {
  auto& servings = served_by_.at(box);
  for (const std::uint32_t row : servings) {
    assignment_[row] = -1;
    out.push_back(row);
  }
  servings.clear();
  degree_[box] = 0;
}

void CsrMatcher::next_epoch() {
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
}

bool CsrMatcher::augment(const CsrProblem& csr,
                         std::span<const std::uint32_t> capacity,
                         std::uint32_t row) {
  OBS_SPAN("flow/csr_augment");
  AugmentCounters& counters = AugmentCounters::get();
  counters.calls.add();
  std::size_t max_depth = 1;
  next_epoch();
  stack_.clear();
  stack_.push_back({row, 0, 0, false});
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    const auto candidates = csr.row(f.row);
    if (!f.in_box) {
      bool descended = false;
      while (f.ci < candidates.size()) {
        const std::uint32_t box = candidates[f.ci];
        if (visit_mark_[box] == epoch_) {
          ++f.ci;
          continue;
        }
        visit_mark_[box] = epoch_;
        if (degree_[box] < capacity[box]) {
          // Free slot found: commit the whole alternating path. The tail
          // row takes the free slot; every ancestor overwrites the serving
          // its child vacated (served_by_ positions stay put, so no vector
          // churn along the path).
          assignment_[f.row] = static_cast<std::int32_t>(box);
          served_by_[box].push_back(f.row);
          ++degree_[box];
          for (std::size_t i = stack_.size() - 1; i-- > 0;) {
            const Frame& parent = stack_[i];
            const std::uint32_t parent_box = csr.row(parent.row)[parent.ci];
            served_by_[parent_box][parent.si] = parent.row;
            assignment_[parent.row] = static_cast<std::int32_t>(parent_box);
          }
          counters.depth.observe(max_depth);
          return true;
        }
        // Box saturated: try to displace one of the rows it serves.
        f.in_box = true;
        f.si = 0;
        descended = true;
        break;
      }
      if (!descended) {
        stack_.pop_back();
        if (!stack_.empty()) ++stack_.back().si;
        continue;
      }
    }
    const std::uint32_t box = candidates[f.ci];
    const auto& servings = served_by_[box];
    if (f.si >= servings.size()) {
      f.in_box = false;
      f.si = 0;
      ++f.ci;
      continue;
    }
    // Descend: can servings[f.si] be rerouted elsewhere? (Push invalidates
    // `f`; the loop re-derives the reference next iteration.)
    stack_.push_back({servings[f.si], 0, 0, false});
    max_depth = std::max(max_depth, stack_.size());
  }
  counters.depth.observe(max_depth);
  return false;
}

}  // namespace p2pvod::flow
