// Min-cost connection matching: among all maximum matchings of a
// ConnectionProblem, find one of minimum total edge cost.
//
// The reduction extends the §2.3 feasibility network with per-edge costs
// (source->box and request->sink edges cost 0, the candidate edge (b, r)
// costs whatever the caller says — in the simulator, the zone-pair transit
// cost between server and requester). Successive shortest paths with
// Johnson potentials keeps every Dijkstra non-negative, so the solver is
// exact: after k augmentations the flow is a minimum-cost flow of value k,
// hence the final matching is maximum (same size as Dinic's) and of minimum
// cost among maximum matchings. When every cost is zero the solver falls
// back to the plain Dinic solve — the cost machinery must never change
// feasibility answers.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/bipartite.hpp"

namespace p2pvod::flow {

using Cost = std::int64_t;

/// Per-request candidate costs: costs[r][j] is the cost of serving request r
/// from candidates(r)[j]. Shapes must match the problem exactly.
using EdgeCosts = std::vector<std::vector<Cost>>;

struct MinCostResult {
  MatchResult match;
  Cost total_cost = 0;
};

class MinCostMatcher {
 public:
  /// Solve for a maximum matching of minimum total cost. All costs must be
  /// non-negative; throws std::invalid_argument on a shape mismatch or a
  /// negative cost. Deterministic for a given problem (no RNG, fixed
  /// iteration order).
  [[nodiscard]] static MinCostResult solve(const ConnectionProblem& problem,
                                           const EdgeCosts& costs);
};

/// Exponential reference: enumerate every assignment, keep the best
/// (maximum served, then minimum cost). For the property tests cross-checking
/// MinCostMatcher on small instances; throws std::invalid_argument when the
/// search space exceeds ~2^22 states.
[[nodiscard]] MinCostResult min_cost_brute_force(
    const ConnectionProblem& problem, const EdgeCosts& costs);

/// Per-edge cap groups: groups[r][j] names the shared-capacity group of the
/// edge serving request r from candidates(r)[j] (in the simulator, the
/// directed zone-pair link between the server's and the requester's zones).
/// Same shape contract as EdgeCosts.
using EdgeGroups = std::vector<std::vector<std::uint32_t>>;

/// "This edge belongs to no cap group." A caps[] entry of the same value
/// means the group exists but its budget is unlimited. Numerically equal to
/// net::kUnlimitedLink — the simulator pins that with a static_assert so the
/// topology's cap matrix can be passed through unchanged.
inline constexpr std::uint32_t kUncappedGroup =
    static_cast<std::uint32_t>(-1);

/// What enforce_group_caps did to the matching. `rejections` counts pass-1
/// admission drops — every connection over a group's cap, whether or not
/// pass 2 later rescued it — and `rescues` counts the dropped requests pass 2
/// re-seated, so served-by-admission-alone = result.served - rescues.
struct GroupCapOutcome {
  std::uint64_t rejections = 0;  ///< pass-1 drops (rescued or not)
  std::uint64_t rescues = 0;     ///< pass-2 re-seats of dropped requests
};

/// Cap enforcement over a solved matching, in two deterministic passes:
/// pass 1 walks requests in order and drops any connection whose group is out
/// of budget (admission control); pass 2 gives each dropped request one
/// greedy rescue — the cheapest candidate (ties to the lowest box id) with
/// spare box capacity and group budget. A rescue never displaces a kept
/// connection, so the result can fall short of the true capped optimum;
/// min_cost_capped_brute_force is the exact reference bounding that loss.
/// Mutates `result` (assignment/served/complete) in place. Throws
/// std::invalid_argument on a shape mismatch, an out-of-range group id, or an
/// assignment that is not among the request's candidates.
GroupCapOutcome enforce_group_caps(const ConnectionProblem& problem,
                                   const EdgeCosts& costs,
                                   const EdgeGroups& groups,
                                   const std::vector<std::uint32_t>& caps,
                                   MatchResult& result);

/// Exponential reference for the capped problem: the best assignment (maximum
/// served, then minimum cost) that respects box capacities AND the group
/// caps. Upper-bounds what admission control + rescue can serve; same ~2^22
/// state guard as min_cost_brute_force. Exact capped matching is not a plain
/// flow problem — routing flow through a shared group node would let a
/// request borrow a non-candidate box — hence the exhaustive search.
[[nodiscard]] MinCostResult min_cost_capped_brute_force(
    const ConnectionProblem& problem, const EdgeCosts& costs,
    const EdgeGroups& groups, const std::vector<std::uint32_t>& caps);

}  // namespace p2pvod::flow
