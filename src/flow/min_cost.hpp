// Min-cost connection matching: among all maximum matchings of a
// ConnectionProblem, find one of minimum total edge cost.
//
// The reduction extends the §2.3 feasibility network with per-edge costs
// (source->box and request->sink edges cost 0, the candidate edge (b, r)
// costs whatever the caller says — in the simulator, the zone-pair transit
// cost between server and requester). Successive shortest paths with
// Johnson potentials keeps every Dijkstra non-negative, so the solver is
// exact: after k augmentations the flow is a minimum-cost flow of value k,
// hence the final matching is maximum (same size as Dinic's) and of minimum
// cost among maximum matchings. When every cost is zero the solver falls
// back to the plain Dinic solve — the cost machinery must never change
// feasibility answers.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/bipartite.hpp"

namespace p2pvod::flow {

using Cost = std::int64_t;

/// Per-request candidate costs: costs[r][j] is the cost of serving request r
/// from candidates(r)[j]. Shapes must match the problem exactly.
using EdgeCosts = std::vector<std::vector<Cost>>;

struct MinCostResult {
  MatchResult match;
  Cost total_cost = 0;
};

class MinCostMatcher {
 public:
  /// Solve for a maximum matching of minimum total cost. All costs must be
  /// non-negative; throws std::invalid_argument on a shape mismatch or a
  /// negative cost. Deterministic for a given problem (no RNG, fixed
  /// iteration order).
  [[nodiscard]] static MinCostResult solve(const ConnectionProblem& problem,
                                           const EdgeCosts& costs);
};

/// Exponential reference: enumerate every assignment, keep the best
/// (maximum served, then minimum cost). For the property tests cross-checking
/// MinCostMatcher on small instances; throws std::invalid_argument when the
/// search space exceeds ~2^22 states.
[[nodiscard]] MinCostResult min_cost_brute_force(
    const ConnectionProblem& problem, const EdgeCosts& costs);

}  // namespace p2pvod::flow
