// Mutable CSR candidate adjacency for the million-box round loop.
//
// The dense round loop rebuilds a ConnectionProblem from scratch every round:
// O(edges) collection, sorting and deduplication even for requests whose
// candidate set did not change. CsrProblem is the persistent alternative: one
// row per request slot, kept alive across rounds and edited surgically as
// cache grants arrive, retention windows expire and boxes churn.
//
// Each row stores its candidate boxes sorted and unique, paired with a
// *source count* — how many independent reasons (one static replica, each
// in-window cache entry) currently make the box a candidate. Counted
// membership is what makes delta maintenance exact: a cache entry expiring
// decrements one source, and the box leaves the row only when no source
// remains. All edits keep rows sorted, so iteration order — and therefore
// the augmenting-path exploration order of CsrMatcher — is deterministic.
//
// Rows live in one shared pool (structure-of-arrays: boxes and counts in
// parallel vectors). In-place edits shift within the row's capacity; growth
// beyond it relocates the row to the pool tail with slack (amortized O(1)
// per insert), and the pool compacts itself once more than half of it is
// abandoned spans.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace p2pvod::flow {

class CsrProblem {
 public:
  CsrProblem() = default;

  /// Grow the row table so `row` is addressable; new rows are empty.
  void ensure_row(std::uint32_t row);
  /// Empty `row`. Its pool span is abandoned and reclaimed on compaction.
  void clear_row(std::uint32_t row);

  /// Replace `row`'s contents. `boxes` must be sorted unique and `counts`
  /// parallel to it with every entry >= 1.
  void assign_row(std::uint32_t row, std::span<const std::uint32_t> boxes,
                  std::span<const std::uint32_t> counts);

  /// Add one source of `box` to `row`: a sorted insert when absent, a count
  /// increment when already present.
  void add_source(std::uint32_t row, std::uint32_t box);

  /// Drop one source of `box` from `row`. Returns true when that was the
  /// last source, i.e. the box just left the row. A miss (box not in the
  /// row) is a tolerated no-op returning false: the row was rebuilt from
  /// scratch after the source was recorded, which already folded the
  /// removal in.
  bool remove_source(std::uint32_t row, std::uint32_t box);

  /// Drop `box` from `row` entirely, whatever its count — every source it
  /// contributed died at once (the box went offline). Misses are no-ops.
  void remove_box(std::uint32_t row, std::uint32_t box);

  [[nodiscard]] bool contains(std::uint32_t row, std::uint32_t box) const;
  /// Sorted unique candidate boxes of row `r`.
  [[nodiscard]] std::span<const std::uint32_t> row(std::uint32_t r) const;
  [[nodiscard]] std::uint32_t row_count() const noexcept {
    return static_cast<std::uint32_t>(rows_.size());
  }
  /// Live (request, box) incidences over all rows: the matcher edge count.
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return edges_; }
  /// Pool slots currently allocated (diagnostics; includes abandoned spans).
  [[nodiscard]] std::size_t pool_size() const noexcept { return boxes_.size(); }

 private:
  struct RowRef {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
  };

  /// Move `row`'s span to the pool tail with room for `capacity` entries.
  void relocate(std::uint32_t row, std::uint32_t capacity);
  void maybe_compact();
  /// Index of the first entry in `row` that is >= box (row-relative).
  [[nodiscard]] std::uint32_t lower_bound_in(const RowRef& ref,
                                             std::uint32_t box) const;

  std::vector<RowRef> rows_;
  std::vector<std::uint32_t> boxes_;   ///< shared pool; rows span into it
  std::vector<std::uint32_t> counts_;  ///< parallel to boxes_
  std::uint64_t edges_ = 0;            ///< sum of live row sizes
  std::uint64_t abandoned_ = 0;        ///< pool slots no live row spans
};

}  // namespace p2pvod::flow
