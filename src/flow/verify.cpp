#include "flow/verify.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace p2pvod::flow {

namespace {

[[noreturn]] void fail(const std::string& detail) {
  throw std::logic_error("validate_assignment: " + detail);
}

}  // namespace

void validate_assignment(const ConnectionProblem& problem,
                         const MatchResult& result) {
  const std::uint32_t requests = problem.request_count();
  if (result.assignment.size() != requests)
    fail("assignment has " + std::to_string(result.assignment.size()) +
         " entries for " + std::to_string(requests) + " requests");

  std::vector<std::uint32_t> degree(problem.box_count(), 0);
  std::uint32_t matched = 0;
  for (std::uint32_t r = 0; r < requests; ++r) {
    const std::int32_t assigned = result.assignment[r];
    if (assigned < 0) continue;
    const auto box = static_cast<std::uint32_t>(assigned);
    if (box >= problem.box_count())
      fail("request " + std::to_string(r) + " assigned box " +
           std::to_string(box) + " out of range (" +
           std::to_string(problem.box_count()) + " boxes)");
    // Linear membership scan: candidate lists are not required to be sorted
    // here, and the validator must not inherit the assumption under test.
    const auto& candidates = problem.candidates(r);
    if (std::find(candidates.begin(), candidates.end(), box) ==
        candidates.end())
      fail("request " + std::to_string(r) + " assigned box " +
           std::to_string(box) + " which is not among its " +
           std::to_string(candidates.size()) + " candidates");
    if (++degree[box] > problem.capacity(box))
      fail("box " + std::to_string(box) + " over capacity " +
           std::to_string(problem.capacity(box)) + " at request " +
           std::to_string(r) + " (degree " + std::to_string(degree[box]) +
           ")");
    ++matched;
  }
  if (result.served != matched)
    fail("served count " + std::to_string(result.served) + " but " +
         std::to_string(matched) + " requests are assigned");
  if (result.complete != (matched == requests))
    fail("complete flag " + std::string(result.complete ? "set" : "unset") +
         " with " + std::to_string(matched) + "/" + std::to_string(requests) +
         " requests served");
}

}  // namespace p2pvod::flow
