// Incremental b-matching repair over a CsrProblem.
//
// The dense IncrementalMatcher re-derives the assignment every round from a
// carry vector and clears an O(box_count) visited array per augmentation —
// fine at workshop n, quadratic poison at a million boxes. CsrMatcher keeps
// the matching itself alive across rounds: retiring requests unassign their
// slot, churned boxes bulk-unassign everything they served, and each round
// only the currently unmatched slots seed augmenting paths.
//
// Two ingredients keep an augmentation O(edges explored):
//   - visited marks are epoch stamps (one uint32 per box, bumped per call),
//     so there is no per-call O(n) clear;
//   - the alternating-path search is an explicit frame stack, not recursion,
//     so a million-deep path cannot smash the C++ stack.
//
// Starting from any valid partial matching, exhaustively augmenting every
// unmatched slot yields a maximum matching (Berge), so the sparse round
// serves exactly as many requests as a from-scratch solve — the equivalence
// the simulator's verify path checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/csr_problem.hpp"

namespace p2pvod::flow {

class CsrMatcher {
 public:
  explicit CsrMatcher(std::uint32_t box_count);

  /// Grow the slot table so slots [0, rows) are addressable.
  void ensure_rows(std::uint32_t rows);

  /// Box serving `row`, or -1.
  [[nodiscard]] std::int32_t assignment(std::uint32_t row) const {
    return assignment_.at(row);
  }
  /// Connections currently served by `box`.
  [[nodiscard]] std::uint32_t degree(std::uint32_t box) const {
    return degree_.at(box);
  }

  /// Drop `row`'s assignment (request retired, or its server left the row).
  void unassign(std::uint32_t row);

  /// Drop every connection `box` serves (it went offline). The affected rows
  /// are appended to `out` so the caller can re-augment them.
  void unassign_box(std::uint32_t box, std::vector<std::uint32_t>& out);

  /// Find an augmenting path from unmatched `row` and apply it. Capacity is
  /// indexed by box id; candidate rows come from `csr`. Returns true when
  /// `row` ends up served (every displaced row stays served).
  bool augment(const CsrProblem& csr, std::span<const std::uint32_t> capacity,
               std::uint32_t row);

 private:
  struct Frame {
    std::uint32_t row;  ///< request slot this frame tries to serve
    std::uint32_t ci;   ///< index into the row's candidate list
    std::uint32_t si;   ///< index into served_by_[candidate] when descending
    bool in_box;        ///< true while iterating the candidate's servings
  };

  void next_epoch();

  std::vector<std::int32_t> assignment_;           ///< per slot, -1 = free
  std::vector<std::uint32_t> degree_;              ///< per box
  std::vector<std::vector<std::uint32_t>> served_by_;  ///< per box: slots
  std::vector<std::uint32_t> visit_mark_;          ///< per box, epoch stamp
  std::uint32_t epoch_ = 0;
  std::vector<Frame> stack_;  ///< reused across augment calls
};

}  // namespace p2pvod::flow
