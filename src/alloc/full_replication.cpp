#include "alloc/full_replication.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace p2pvod::alloc {

std::uint32_t FullReplicationAllocator::max_catalog(
    const model::CapacityProfile& profile, std::uint32_t c) {
  if (profile.empty()) return 0;
  std::uint32_t lo = std::numeric_limits<std::uint32_t>::max();
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    lo = std::min(lo, profile.storage_slots(b, c));
  }
  return lo;  // one slot per video (each box stores exactly one stripe of it)
}

Allocation FullReplicationAllocator::allocate(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t /*k*/, util::Rng& /*rng*/) const {
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint32_t limit = max_catalog(profile, c);
  if (catalog.video_count() > limit) {
    throw std::invalid_argument(
        "FullReplicationAllocator: catalog exceeds per-box storage "
        "(m must be <= min_b floor(d_b*c))");
  }
  std::vector<Allocation::Placement> placements;
  placements.reserve(static_cast<std::uint64_t>(profile.size()) *
                     catalog.video_count());
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const std::uint32_t index = b % c;
    for (model::VideoId v = 0; v < catalog.video_count(); ++v) {
      placements.push_back({b, catalog.stripe_id(v, index)});
    }
  }
  return Allocation(profile.size(), catalog.stripe_count(),
                    std::move(placements));
}

}  // namespace p2pvod::alloc
