#include "alloc/permutation.hpp"

#include <stdexcept>

namespace p2pvod::alloc {

Allocation PermutationAllocator::allocate(const model::Catalog& catalog,
                                          const model::CapacityProfile& profile,
                                          std::uint32_t k,
                                          util::Rng& rng) const {
  if (k == 0) throw std::invalid_argument("PermutationAllocator: k == 0");
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint64_t replicas =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();
  const std::uint64_t slots = profile.total_storage_slots(c);
  if (replicas > slots) {
    throw std::invalid_argument(
        "PermutationAllocator: k*m*c replicas exceed d*n*c slots");
  }

  // Global slot array: slot -> owning box.
  std::vector<model::BoxId> slot_owner;
  slot_owner.reserve(slots);
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const std::uint32_t box_slots = profile.storage_slots(b, c);
    slot_owner.insert(slot_owner.end(), box_slots, b);
  }

  // Draw a random permutation of slots; replica i goes to slot π(i). Only the
  // first `replicas` entries of the permutation are consumed; the remaining
  // slots stay empty (they model free catalog storage).
  std::vector<std::uint32_t> perm(
      rng.permutation(static_cast<std::uint32_t>(slots)));

  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  std::uint64_t next = 0;
  for (model::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    for (std::uint32_t r = 0; r < k; ++r) {
      placements.push_back({slot_owner[perm[next]], s});
      ++next;
    }
  }
  return Allocation(profile.size(), catalog.stripe_count(),
                    std::move(placements));
}

}  // namespace p2pvod::alloc
