#include "alloc/allocation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p2pvod::alloc {

Allocation::Allocation(std::uint32_t box_count, std::uint32_t stripe_count,
                       std::vector<Placement> placements)
    : box_count_(box_count), stripe_count_(stripe_count) {
  slot_usage_.assign(box_count_, 0);
  for (const Placement& p : placements) {
    if (p.box >= box_count_)
      throw std::out_of_range("Allocation: box id out of range");
    if (p.stripe >= stripe_count_)
      throw std::out_of_range("Allocation: stripe id out of range");
    ++slot_usage_[p.box];
  }

  // Sort by (stripe, box) to build the holders CSR with deduplication.
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              return a.stripe != b.stripe ? a.stripe < b.stripe
                                          : a.box < b.box;
            });
  holder_offsets_.assign(stripe_count_ + 1, 0);
  holder_data_.reserve(placements.size());
  {
    model::StripeId prev_stripe = model::kInvalidStripe;
    model::BoxId prev_box = model::kInvalidBox;
    for (const Placement& p : placements) {
      if (p.stripe == prev_stripe && p.box == prev_box) {
        ++duplicates_;
        continue;
      }
      holder_data_.push_back(p.box);
      ++holder_offsets_[p.stripe + 1];
      prev_stripe = p.stripe;
      prev_box = p.box;
    }
  }
  std::partial_sum(holder_offsets_.begin(), holder_offsets_.end(),
                   holder_offsets_.begin());

  // Second direction: (box, stripe), deduplicated identically.
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              return a.box != b.box ? a.box < b.box : a.stripe < b.stripe;
            });
  stored_offsets_.assign(box_count_ + 1, 0);
  stored_data_.reserve(holder_data_.size());
  {
    model::StripeId prev_stripe = model::kInvalidStripe;
    model::BoxId prev_box = model::kInvalidBox;
    for (const Placement& p : placements) {
      if (p.stripe == prev_stripe && p.box == prev_box) continue;
      stored_data_.push_back(p.stripe);
      ++stored_offsets_[p.box + 1];
      prev_stripe = p.stripe;
      prev_box = p.box;
    }
  }
  std::partial_sum(stored_offsets_.begin(), stored_offsets_.end(),
                   stored_offsets_.begin());
}

std::span<const model::BoxId> Allocation::holders(model::StripeId s) const {
  if (s >= stripe_count_) throw std::out_of_range("Allocation::holders");
  return {holder_data_.data() + holder_offsets_[s],
          holder_data_.data() + holder_offsets_[s + 1]};
}

std::span<const model::StripeId> Allocation::stored(model::BoxId b) const {
  if (b >= box_count_) throw std::out_of_range("Allocation::stored");
  return {stored_data_.data() + stored_offsets_[b],
          stored_data_.data() + stored_offsets_[b + 1]};
}

bool Allocation::box_has(model::BoxId b, model::StripeId s) const {
  const auto range = stored(b);
  return std::binary_search(range.begin(), range.end(), s);
}

bool Allocation::box_has_video_data(model::BoxId b,
                                    const model::Catalog& catalog,
                                    model::VideoId v) const {
  const auto range = stored(b);
  // Stripes of v occupy the contiguous id interval [v*c, (v+1)*c).
  const model::StripeId lo = catalog.stripe_id(v, 0);
  const auto it = std::lower_bound(range.begin(), range.end(), lo);
  return it != range.end() && *it < lo + catalog.stripes_per_video();
}

std::uint32_t Allocation::slot_usage(model::BoxId b) const {
  if (b >= box_count_) throw std::out_of_range("Allocation::slot_usage");
  return slot_usage_[b];
}

std::uint32_t Allocation::min_replication() const {
  std::uint32_t lo = static_cast<std::uint32_t>(-1);
  for (model::StripeId s = 0; s < stripe_count_; ++s) {
    lo = std::min(lo, holder_offsets_[s + 1] - holder_offsets_[s]);
  }
  return stripe_count_ == 0 ? 0 : lo;
}

std::uint32_t Allocation::max_replication() const {
  std::uint32_t hi = 0;
  for (model::StripeId s = 0; s < stripe_count_; ++s) {
    hi = std::max(hi, holder_offsets_[s + 1] - holder_offsets_[s]);
  }
  return hi;
}

std::uint32_t Allocation::max_slot_usage() const {
  if (slot_usage_.empty()) return 0;
  return *std::max_element(slot_usage_.begin(), slot_usage_.end());
}

double Allocation::mean_slot_usage() const {
  if (slot_usage_.empty()) return 0.0;
  return std::accumulate(slot_usage_.begin(), slot_usage_.end(), 0.0) /
         static_cast<double>(slot_usage_.size());
}

void Allocation::check_integrity(const model::CapacityProfile* profile,
                                 std::uint32_t c) const {
  // Holder lists sorted and unique.
  for (model::StripeId s = 0; s < stripe_count_; ++s) {
    const auto range = holders(s);
    for (std::size_t i = 1; i < range.size(); ++i) {
      if (range[i - 1] >= range[i])
        throw std::logic_error("Allocation: holder list not sorted/unique");
    }
  }
  // Inverse-map consistency: b in holders(s) <=> s in stored(b).
  std::uint64_t forward = 0;
  for (model::StripeId s = 0; s < stripe_count_; ++s) {
    for (const model::BoxId b : holders(s)) {
      if (!box_has(b, s))
        throw std::logic_error("Allocation: holders/stored mismatch");
      ++forward;
    }
  }
  if (forward != stored_data_.size())
    throw std::logic_error("Allocation: relation sizes differ");
  // Slot capacity (when a profile is supplied).
  if (profile != nullptr) {
    if (profile->size() != box_count_)
      throw std::logic_error("Allocation: profile size mismatch");
    for (model::BoxId b = 0; b < box_count_; ++b) {
      if (slot_usage_[b] > profile->storage_slots(b, c))
        throw std::logic_error("Allocation: box over storage capacity");
    }
  }
}

std::string Allocation::describe() const {
  std::ostringstream out;
  out << "allocation boxes=" << box_count_ << " stripes=" << stripe_count_
      << " replicas=" << stored_data_.size()
      << " dup=" << duplicates_ << " repl[min,max]=[" << min_replication()
      << "," << max_replication() << "] load[max]=" << max_slot_usage();
  return out.str();
}

}  // namespace p2pvod::alloc
