// Random permutation allocation (§2.1).
//
// The k·m·c stripe replicas are mapped through a uniform random permutation π
// onto the Σ_b round(d_b·c) storage slots of the boxes (slot j of the global
// slot array belongs to the box whose slot range contains j). With equal
// storage this stores exactly d·c replicas per box — perfectly balanced by
// construction, which is why Theorem 1 does not need c = Ω(log n) for it.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class PermutationAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "permutation"; }
};

}  // namespace p2pvod::alloc
