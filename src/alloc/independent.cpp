#include "alloc/independent.hpp"

#include <stdexcept>

namespace p2pvod::alloc {

Allocation IndependentAllocator::allocate(const model::Catalog& catalog,
                                          const model::CapacityProfile& profile,
                                          std::uint32_t k,
                                          util::Rng& rng) const {
  if (k == 0) throw std::invalid_argument("IndependentAllocator: k == 0");
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint64_t replicas =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();
  const std::uint64_t slots = profile.total_storage_slots(c);
  if (replicas > slots) {
    throw std::invalid_argument(
        "IndependentAllocator: k*m*c replicas exceed d*n*c slots");
  }

  // "Probability proportional to storage capacity" == draw a uniform global
  // slot index and take its owner (static weights, independent of fill).
  std::vector<model::BoxId> slot_owner;
  slot_owner.reserve(slots);
  for (model::BoxId b = 0; b < profile.size(); ++b) {
    const std::uint32_t box_slots = profile.storage_slots(b, c);
    slot_owner.insert(slot_owner.end(), box_slots, b);
  }
  std::vector<std::uint32_t> free_slots(profile.size());
  for (model::BoxId b = 0; b < profile.size(); ++b)
    free_slots[b] = profile.storage_slots(b, c);

  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  for (model::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    for (std::uint32_t r = 0; r < k; ++r) {
      model::BoxId box = slot_owner[rng.next_below(slots)];
      if (free_slots[box] == 0) {
        if (policy_ == FullBoxPolicy::kFail) {
          throw std::runtime_error(
              "IndependentAllocator: replica fell into a full box");
        }
        do {
          box = slot_owner[rng.next_below(slots)];
        } while (free_slots[box] == 0);
      }
      --free_slots[box];
      placements.push_back({box, s});
    }
  }
  return Allocation(profile.size(), catalog.stripe_count(),
                    std::move(placements));
}

}  // namespace p2pvod::alloc
