// Allocator interface and factory for the schemes of §2.1 plus baselines.
#pragma once

#include <memory>
#include <string>

#include "alloc/allocation.hpp"
#include "alloc/placement.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "util/rng.hpp"

namespace p2pvod::alloc {

/// Which placement scheme to use (DESIGN.md S4).
enum class Scheme {
  kPermutation,         ///< §2.1 random permutation of replicas into slots
  kIndependent,         ///< §2.1 independent box choice per replica
  kRoundRobin,          ///< deterministic striping (test/sanity baseline)
  kFullReplication,     ///< Push-to-Peer-style constant catalog ([22])
  kDemandProportional,  ///< replica count ∝ forecast audience (Tan–Massoulié)
  kZoneLocalFirst,      ///< proportional counts pinned to forecast zones
  kLpGreedy,            ///< greedy coverage maximization of F (placement.hpp)
};

[[nodiscard]] const char* scheme_name(Scheme scheme) noexcept;

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Place k replicas of every stripe of `catalog` onto boxes with the
  /// capacities of `profile`. Throws std::invalid_argument when the replicas
  /// cannot fit (k m c > total slots) or the scheme's preconditions fail.
  [[nodiscard]] virtual Allocation allocate(
      const model::Catalog& catalog, const model::CapacityProfile& profile,
      std::uint32_t k, util::Rng& rng) const = 0;

  /// Context-aware variant: demand-aware schemes read the topology and the
  /// forecast out of `context`; context-blind schemes fall through to the
  /// 4-argument overload (the default here), so every scheme accepts every
  /// context.
  [[nodiscard]] virtual Allocation allocate(
      const model::Catalog& catalog, const model::CapacityProfile& profile,
      std::uint32_t k, util::Rng& rng,
      const PlacementContext& /*context*/) const {
    return allocate(catalog, profile, k, rng);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

[[nodiscard]] std::unique_ptr<Allocator> make_allocator(Scheme scheme);

}  // namespace p2pvod::alloc
