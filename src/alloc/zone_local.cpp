#include "alloc/zone_local.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2pvod::alloc {

namespace {

/// Split `count` replicas across zones proportionally to zone population
/// (largest remainder, ties toward lower zone ids), each quota capped at the
/// zone's size so a stripe never needs two replicas in one box of the zone.
/// Σ sizes = n ≥ count (count ≤ n), so the split always succeeds.
std::vector<std::uint32_t> zone_quotas(std::uint32_t count,
                                       const std::vector<std::uint32_t>& sizes,
                                       std::uint32_t boxes) {
  const auto zones = static_cast<std::uint32_t>(sizes.size());
  std::vector<std::uint32_t> quota(zones, 0);
  std::vector<double> fraction(zones, 0.0);
  std::uint32_t assigned = 0;
  for (std::uint32_t z = 0; z < zones; ++z) {
    const double ideal = static_cast<double>(count) *
                         static_cast<double>(sizes[z]) /
                         static_cast<double>(boxes);
    quota[z] = std::min(static_cast<std::uint32_t>(std::floor(ideal)),
                        sizes[z]);
    fraction[z] = ideal - std::floor(ideal);
    assigned += quota[z];
  }
  while (assigned < count) {
    std::uint32_t best = zones;
    for (std::uint32_t z = 0; z < zones; ++z) {
      if (quota[z] >= sizes[z]) continue;
      if (best == zones || fraction[z] > fraction[best]) best = z;
    }
    if (best == zones)
      throw std::logic_error("ZoneLocalFirstAllocator: quota overflow");
    ++quota[best];
    fraction[best] -= 1.0;
    ++assigned;
  }
  return quota;
}

}  // namespace

Allocation ZoneLocalFirstAllocator::allocate(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t k, util::Rng& rng) const {
  return allocate(catalog, profile, k, rng, PlacementContext{});
}

Allocation ZoneLocalFirstAllocator::allocate(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t k, util::Rng& /*rng*/,
    const PlacementContext& context) const {
  if (k == 0) throw std::invalid_argument("ZoneLocalFirstAllocator: k == 0");
  const std::uint32_t n = profile.size();
  if (k > n) {
    throw std::invalid_argument(
        "ZoneLocalFirstAllocator: k > n would duplicate a stripe within a "
        "box");
  }
  if (context.topology != nullptr && context.topology->box_count() != n)
    throw std::invalid_argument(
        "ZoneLocalFirstAllocator: topology/profile size mismatch");
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint64_t replicas =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();
  if (replicas > profile.total_storage_slots(c)) {
    throw std::invalid_argument(
        "ZoneLocalFirstAllocator: k*m*c replicas exceed d*n*c slots");
  }

  const std::vector<std::uint32_t> counts = proportional_replica_counts(
      catalog.video_count(), k, context.demand, /*max_per_video=*/n);

  // Zone membership (one all-box pseudo-zone without a topology).
  std::vector<std::vector<model::BoxId>> members;
  if (context.topology == nullptr) {
    members.emplace_back();
    for (model::BoxId b = 0; b < n; ++b) members[0].push_back(b);
  } else {
    for (net::ZoneId z = 0; z < context.topology->zone_count(); ++z)
      members.push_back(context.topology->members(z));
  }
  const auto zones = static_cast<std::uint32_t>(members.size());
  std::vector<std::uint32_t> sizes(zones);
  for (std::uint32_t z = 0; z < zones; ++z)
    sizes[z] = static_cast<std::uint32_t>(members[z].size());

  std::vector<std::uint32_t> free_slots(n);
  for (model::BoxId b = 0; b < n; ++b)
    free_slots[b] = profile.storage_slots(b, c);

  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  std::vector<std::uint64_t> zone_cursor(zones, 0);
  std::uint64_t spill_cursor = 0;

  // One global replica placement onto any box with a free slot (the spill
  // path once a zone's storage is exhausted).
  const auto place_spill = [&](model::StripeId s) {
    std::uint32_t probes = 0;
    while (free_slots[spill_cursor % n] == 0) {
      ++spill_cursor;
      if (++probes > n)
        throw std::logic_error("ZoneLocalFirstAllocator: no free slot found");
    }
    const auto box = static_cast<model::BoxId>(spill_cursor % n);
    --free_slots[box];
    placements.push_back({box, s});
    ++spill_cursor;
  };

  for (model::VideoId v = 0; v < catalog.video_count(); ++v) {
    const std::vector<std::uint32_t> quota = zone_quotas(counts[v], sizes, n);
    for (std::uint32_t index = 0; index < c; ++index) {
      const model::StripeId s = catalog.stripe_id(v, index);
      for (std::uint32_t z = 0; z < zones; ++z) {
        for (std::uint32_t j = 0; j < quota[z]; ++j) {
          // Pin to the zone while it has storage; spill globally otherwise.
          std::uint32_t probes = 0;
          bool placed = false;
          while (probes < sizes[z]) {
            const model::BoxId box =
                members[z][zone_cursor[z] % sizes[z]];
            ++zone_cursor[z];
            ++probes;
            if (free_slots[box] > 0) {
              --free_slots[box];
              placements.push_back({box, s});
              placed = true;
              break;
            }
          }
          if (!placed) place_spill(s);
        }
      }
    }
  }
  return Allocation(n, catalog.stripe_count(), std::move(placements));
}

}  // namespace p2pvod::alloc
