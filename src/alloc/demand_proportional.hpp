// Demand-proportional replication (Tan & Massoulié's proportional rule).
//
// The replica budget k·m is split across videos proportionally to the
// forecast audience (largest remainder, floor 1 so every stripe stays
// servable, cap n so no stripe needs a duplicate within one box); each
// stripe of video v then receives its count_v replicas by deterministic
// round-robin striping over boxes with free slots — round_robin's mechanics
// with a per-video replica count. Context-free (empty forecast) it degrades
// to uniform counts, i.e. the round-robin baseline.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class DemandProportionalAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k, util::Rng& rng,
                                    const PlacementContext& context)
      const override;
  [[nodiscard]] std::string name() const override {
    return "demand-proportional";
  }
};

}  // namespace p2pvod::alloc
