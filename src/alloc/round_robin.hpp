// Deterministic round-robin allocation.
//
// Replica j of stripe s goes to box (s·k + j) mod n (skipping full boxes).
// Not an allocation the paper analyzes — it is the deterministic sanity
// baseline used by tests (no randomness, perfectly predictable holders) and
// by benches to contrast "structured" vs random placement.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class RoundRobinAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

}  // namespace p2pvod::alloc
