// Full-replication baseline (Push-to-Peer style, Suh et al. [22]).
//
// "Each box stores a constant portion of each video" (§1.2): box b stores
// stripe index (b mod c) of every video in the catalog. Every box therefore
// possesses data of every video (portion ℓ = 1/c), each stripe has ≈ n/c
// holders, and the catalog is pinned at m ≤ d·c = d/ℓ — the §1.3 constant-
// catalog regime. This is the comparator for experiment E11: it serves
// arbitrary demand even with u < 1 (massive sourcing) but cannot scale the
// catalog with n, whereas the paper's random allocation scales m = Ω(n) but
// requires u > 1.
//
// The replication parameter k is ignored (replication is n/c by structure);
// callers pass the catalog whose size m must satisfy m <= floor(d_b*c) for
// every box.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class FullReplicationAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override {
    return "full-replication";
  }

  /// Largest catalog this scheme supports: min_b floor(d_b · c).
  [[nodiscard]] static std::uint32_t max_catalog(
      const model::CapacityProfile& profile, std::uint32_t c);
};

}  // namespace p2pvod::alloc
