#include "alloc/allocator.hpp"

#include <stdexcept>

#include "alloc/demand_proportional.hpp"
#include "alloc/full_replication.hpp"
#include "alloc/independent.hpp"
#include "alloc/lp_greedy.hpp"
#include "alloc/permutation.hpp"
#include "alloc/round_robin.hpp"
#include "alloc/zone_local.hpp"

namespace p2pvod::alloc {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kPermutation:
      return "permutation";
    case Scheme::kIndependent:
      return "independent";
    case Scheme::kRoundRobin:
      return "round-robin";
    case Scheme::kFullReplication:
      return "full-replication";
    case Scheme::kDemandProportional:
      return "demand-proportional";
    case Scheme::kZoneLocalFirst:
      return "zone-local-first";
    case Scheme::kLpGreedy:
      return "lp-greedy";
  }
  return "unknown";
}

std::unique_ptr<Allocator> make_allocator(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPermutation:
      return std::make_unique<PermutationAllocator>();
    case Scheme::kIndependent:
      return std::make_unique<IndependentAllocator>();
    case Scheme::kRoundRobin:
      return std::make_unique<RoundRobinAllocator>();
    case Scheme::kFullReplication:
      return std::make_unique<FullReplicationAllocator>();
    case Scheme::kDemandProportional:
      return std::make_unique<DemandProportionalAllocator>();
    case Scheme::kZoneLocalFirst:
      return std::make_unique<ZoneLocalFirstAllocator>();
    case Scheme::kLpGreedy:
      return std::make_unique<LpGreedyAllocator>();
  }
  throw std::logic_error("make_allocator: bad scheme");
}

}  // namespace p2pvod::alloc
