#include "alloc/allocator.hpp"

#include <stdexcept>

#include "alloc/full_replication.hpp"
#include "alloc/independent.hpp"
#include "alloc/permutation.hpp"
#include "alloc/round_robin.hpp"

namespace p2pvod::alloc {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kPermutation:
      return "permutation";
    case Scheme::kIndependent:
      return "independent";
    case Scheme::kRoundRobin:
      return "round-robin";
    case Scheme::kFullReplication:
      return "full-replication";
  }
  return "unknown";
}

std::unique_ptr<Allocator> make_allocator(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPermutation:
      return std::make_unique<PermutationAllocator>();
    case Scheme::kIndependent:
      return std::make_unique<IndependentAllocator>();
    case Scheme::kRoundRobin:
      return std::make_unique<RoundRobinAllocator>();
    case Scheme::kFullReplication:
      return std::make_unique<FullReplicationAllocator>();
  }
  throw std::logic_error("make_allocator: bad scheme");
}

}  // namespace p2pvod::alloc
