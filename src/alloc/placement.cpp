#include "alloc/placement.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace p2pvod::alloc {

namespace {

/// Forecast weights normalized to the catalog: empty -> all ones (uniform),
/// otherwise a verified copy. Weights are used raw by the objective (the
/// absolute scale is the saturation point) and ratio-only by the counts.
std::vector<double> forecast_or_uniform(std::uint32_t videos,
                                        std::span<const double> demand) {
  if (demand.empty()) return std::vector<double>(videos, 1.0);
  if (demand.size() != videos)
    throw std::invalid_argument(
        "placement: demand forecast size != catalog video count");
  for (const double w : demand) {
    if (!(w >= 0.0))
      throw std::invalid_argument("placement: negative demand weight");
  }
  return {demand.begin(), demand.end()};
}

/// Per-zone expected demand D_{z,v} = demand[v] * |zone z| / n for one video.
/// With a null topology the single "zone" carries the whole forecast.
std::vector<double> zone_demand_for(const net::Topology* topology,
                                    std::uint32_t boxes, double video_demand) {
  if (topology == nullptr) return {video_demand};
  std::vector<double> out(topology->zone_count());
  for (net::ZoneId z = 0; z < topology->zone_count(); ++z) {
    out[z] = video_demand * static_cast<double>(topology->zone_size(z)) /
             static_cast<double>(boxes);
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> proportional_replica_counts(
    std::uint32_t videos, std::uint32_t k, std::span<const double> demand,
    std::uint32_t max_per_video) {
  if (videos == 0) return {};
  if (k == 0)
    throw std::invalid_argument("proportional_replica_counts: k == 0");
  if (max_per_video == 0)
    throw std::invalid_argument(
        "proportional_replica_counts: max_per_video == 0");
  const std::vector<double> weights = forecast_or_uniform(videos, demand);
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;
  if (!(total_weight > 0.0))
    throw std::invalid_argument(
        "proportional_replica_counts: forecast weights sum to zero");

  const std::uint64_t budget = static_cast<std::uint64_t>(k) * videos;
  std::vector<std::uint32_t> counts(videos);
  std::vector<double> fraction(videos);
  std::uint64_t assigned = 0;
  for (std::uint32_t v = 0; v < videos; ++v) {
    const double ideal =
        static_cast<double>(budget) * weights[v] / total_weight;
    const double floored = std::floor(ideal);
    counts[v] = static_cast<std::uint32_t>(std::clamp(
        floored, 1.0, static_cast<double>(max_per_video)));
    fraction[v] = ideal - floored;
    assigned += counts[v];
  }

  // The "at least one replica" floor can push the total over budget when the
  // forecast concentrates on few videos; claw the surplus back from the
  // largest counts (ties toward higher video ids, so popular low ranks keep
  // their replicas longest).
  while (assigned > budget) {
    std::uint32_t victim = videos;
    for (std::uint32_t v = 0; v < videos; ++v) {
      if (counts[v] > 1 && (victim == videos || counts[v] >= counts[victim]))
        victim = v;
    }
    if (victim == videos) break;  // everything at the floor already
    --counts[victim];
    --assigned;
  }

  // Largest-remainder distribution of the leftover budget, skipping videos at
  // the cap; ties go to the lower video id (the more popular rank under the
  // usual rank-ordered forecasts).
  while (assigned < budget) {
    std::uint32_t best = videos;
    for (std::uint32_t v = 0; v < videos; ++v) {
      if (counts[v] >= max_per_video) continue;
      if (best == videos || fraction[v] > fraction[best]) best = v;
    }
    if (best == videos) break;  // every video at the cap: drop the residue
    ++counts[best];
    fraction[best] -= 1.0;
    ++assigned;
  }
  return counts;
}

double placement_objective(const Allocation& allocation,
                           const model::Catalog& catalog,
                           const PlacementContext& context) {
  if (context.topology != nullptr &&
      context.topology->box_count() != allocation.box_count())
    throw std::invalid_argument(
        "placement_objective: topology/allocation box-count mismatch");
  const std::vector<double> weights =
      forecast_or_uniform(catalog.video_count(), context.demand);
  const std::uint32_t zones =
      context.topology == nullptr ? 1 : context.topology->zone_count();

  double objective = 0.0;
  std::vector<std::uint32_t> per_zone(zones);
  for (model::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    std::fill(per_zone.begin(), per_zone.end(), 0u);
    for (const model::BoxId b : allocation.holders(s)) {
      per_zone[context.topology == nullptr ? 0 : context.topology->zone_of(b)]++;
    }
    const std::vector<double> demand = zone_demand_for(
        context.topology, allocation.box_count(), weights[catalog.video_of(s)]);
    for (std::uint32_t z = 0; z < zones; ++z) {
      objective += std::min(static_cast<double>(per_zone[z]), demand[z]);
    }
  }
  return objective;
}

double optimal_placement_objective(const model::Catalog& catalog,
                                   const model::CapacityProfile& profile,
                                   std::uint32_t k,
                                   const PlacementContext& context,
                                   std::uint64_t max_states) {
  const std::uint32_t n = profile.size();
  const std::uint32_t stripes = catalog.stripe_count();
  if (n == 0 || stripes == 0) return 0.0;
  if (n > 20)
    throw std::invalid_argument(
        "optimal_placement_objective: > 20 boxes cannot be enumerated");
  if (context.topology != nullptr && context.topology->box_count() != n)
    throw std::invalid_argument(
        "optimal_placement_objective: topology/profile box-count mismatch");

  // Pre-flight state estimate, as in flow::min_cost_brute_force: each stripe
  // contributes a factor of 2^n holder subsets.
  double states = 1.0;
  for (std::uint32_t s = 0; s < stripes; ++s) {
    states *= static_cast<double>(std::uint64_t{1} << n);
    if (states > static_cast<double>(max_states))
      throw std::invalid_argument(
          "optimal_placement_objective: instance too large to enumerate");
  }

  const std::uint32_t c = catalog.stripes_per_video();
  const std::vector<double> weights =
      forecast_or_uniform(catalog.video_count(), context.demand);

  std::vector<std::uint32_t> free_slots(n);
  for (model::BoxId b = 0; b < n; ++b)
    free_slots[b] = profile.storage_slots(b, c);
  std::uint64_t budget =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();

  // value_of(s, mask): the objective F restricted to stripe s with holder set
  // `mask` — F decomposes per stripe, so only the slot/budget constraints
  // couple the choices and a stripe-by-stripe DFS is exact.
  const auto value_of = [&](model::StripeId s, std::uint32_t mask) {
    const std::vector<double> demand = zone_demand_for(
        context.topology, n, weights[catalog.video_of(s)]);
    const std::uint32_t zones = static_cast<std::uint32_t>(demand.size());
    std::vector<std::uint32_t> per_zone(zones, 0u);
    for (std::uint32_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) {
        per_zone[context.topology == nullptr ? 0
                                             : context.topology->zone_of(b)]++;
      }
    }
    double value = 0.0;
    for (std::uint32_t z = 0; z < zones; ++z)
      value += std::min(static_cast<double>(per_zone[z]), demand[z]);
    return value;
  };

  double best = 0.0;
  const auto recurse = [&](const auto& self, model::StripeId s,
                           double value) -> void {
    if (s == stripes) {
      best = std::max(best, value);
      return;
    }
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      const auto replicas =
          static_cast<std::uint32_t>(std::popcount(mask));
      if (replicas > budget) continue;
      bool fits = true;
      for (std::uint32_t b = 0; b < n && fits; ++b) {
        if ((mask & (1u << b)) && free_slots[b] == 0) fits = false;
      }
      if (!fits) continue;
      for (std::uint32_t b = 0; b < n; ++b) {
        if (mask & (1u << b)) --free_slots[b];
      }
      budget -= replicas;
      self(self, s + 1, value + value_of(s, mask));
      budget += replicas;
      for (std::uint32_t b = 0; b < n; ++b) {
        if (mask & (1u << b)) ++free_slots[b];
      }
    }
  };
  recurse(recurse, 0, 0.0);
  return best;
}

}  // namespace p2pvod::alloc
