// Demand-aware placement: the context, budget split, and coverage objective
// shared by the placement schemes of the Tan & Massoulié line
// (demand-proportional, zone-local-first, lp-greedy) plus the exhaustive
// exact reference the property tests pin the greedy scheme against.
//
// The placement objective scores an allocation by the expected demand it can
// serve zone-locally:
//
//   F(A) = Σ_{stripe s, zone z} min(r_{s,z}, D_{z,v(s)})
//
// where r_{s,z} is the number of distinct boxes of zone z holding a replica
// of s and D_{z,v} the expected concurrent stripe-s requests from zone z for
// video v (the forecast demand[v] scaled by the zone's population share).
// F is monotone submodular in the replica set: each additional local replica
// covers at most one more unit of local demand, and covers less the more
// replicas the zone already has. Greedy maximization therefore carries a
// constant-factor guarantee against the optimum, which
// optimal_placement_objective computes exhaustively at small n.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/allocation.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "net/topology.hpp"

namespace p2pvod::alloc {

/// What a demand-aware scheme may see beyond the catalog and the capacity
/// profile: the zone topology replicas should respect and the per-video
/// demand forecast. Both are optional — a null topology means "one zone" and
/// an empty forecast means "uniform demand" — so every scheme also works
/// context-free (and the context-blind schemes ignore the context entirely).
struct PlacementContext {
  /// Not owned; must outlive the allocate() call. Null = a single zone.
  const net::Topology* topology = nullptr;
  /// demand[v] = expected concurrent viewers of video v. Only the ratios
  /// matter for replica counts; the absolute scale sets where lp_greedy's
  /// coverage objective saturates (use n · demand-rate · duration · w_v for
  /// a workload with per-round per-box demand probability and Zipf weights
  /// w_v). Empty = uniform demand; otherwise the size must equal the
  /// catalog's video count.
  std::vector<double> demand;
};

/// Split the per-stripe replica budget k·videos into per-video counts
/// proportional to the forecast (largest-remainder rounding, deterministic
/// ties toward lower video ids), each clamped to [1, max_per_video]. The
/// counts sum to k·videos whenever the clamps leave room; when every video
/// sits at max_per_video the residual budget is dropped. Throws
/// std::invalid_argument on k == 0, a forecast/video-count mismatch, or a
/// non-positive forecast weight sum.
[[nodiscard]] std::vector<std::uint32_t> proportional_replica_counts(
    std::uint32_t videos, std::uint32_t k, std::span<const double> demand,
    std::uint32_t max_per_video);

/// The coverage objective F above. A null context topology scores everything
/// in one zone; an empty forecast weighs every video equally (weight 1).
[[nodiscard]] double placement_objective(const Allocation& allocation,
                                         const model::Catalog& catalog,
                                         const PlacementContext& context);

/// Exhaustive maximum of F over every placement that stores at most k·m·c
/// replicas, respects per-box storage slots, and never duplicates a stripe
/// within a box. Exponential reference for the lp_greedy property tests;
/// throws std::invalid_argument when the search space exceeds `max_states`
/// leaf evaluations (default ~4M) or when the profile spans more than 20
/// boxes (the subset enumeration is a bitmask per stripe).
[[nodiscard]] double optimal_placement_objective(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t k, const PlacementContext& context,
    std::uint64_t max_states = std::uint64_t{1} << 22);

}  // namespace p2pvod::alloc
