// Greedy coverage maximization of the placement objective F (placement.hpp).
//
// The LP whose rounding this scheme approximates maximizes
// F(A) = Σ_{s,z} min(r_{s,z}, D_{z,v(s)}) subject to the k·m·c replica
// budget, per-box storage slots, and one replica of a stripe per box. F is
// monotone submodular and the constraints form a partition-style matroid, so
// plain greedy — place the replica with the largest marginal gain until the
// budget runs out — carries a constant-factor guarantee; the property tests
// pin it against the exhaustive optimal_placement_objective at small n.
// Seeds one replica per stripe first (servability floor), then spends the
// rest of the budget by gain; zero-gain ties fall back to balanced striping
// (fewest-replica stripe, emptiest box), so the context-free scheme stays a
// sane uniform baseline.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class LpGreedyAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k, util::Rng& rng,
                                    const PlacementContext& context)
      const override;
  [[nodiscard]] std::string name() const override { return "lp-greedy"; }
};

}  // namespace p2pvod::alloc
