#include "alloc/lp_greedy.hpp"

#include <algorithm>
#include <stdexcept>

namespace p2pvod::alloc {

Allocation LpGreedyAllocator::allocate(const model::Catalog& catalog,
                                       const model::CapacityProfile& profile,
                                       std::uint32_t k, util::Rng& rng) const {
  return allocate(catalog, profile, k, rng, PlacementContext{});
}

Allocation LpGreedyAllocator::allocate(const model::Catalog& catalog,
                                       const model::CapacityProfile& profile,
                                       std::uint32_t k, util::Rng& /*rng*/,
                                       const PlacementContext& context) const {
  if (k == 0) throw std::invalid_argument("LpGreedyAllocator: k == 0");
  const std::uint32_t n = profile.size();
  if (k > n) {
    throw std::invalid_argument(
        "LpGreedyAllocator: k > n would duplicate a stripe within a box");
  }
  if (context.topology != nullptr && context.topology->box_count() != n)
    throw std::invalid_argument(
        "LpGreedyAllocator: topology/profile size mismatch");
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint32_t stripes = catalog.stripe_count();
  const std::uint64_t replicas = static_cast<std::uint64_t>(k) * stripes;
  if (replicas > profile.total_storage_slots(c)) {
    throw std::invalid_argument(
        "LpGreedyAllocator: k*m*c replicas exceed d*n*c slots");
  }
  // The holder matrix and the gain scan are Θ(stripes·n); refuse instances
  // where that footprint stops being a placement-time rounding error.
  if (static_cast<std::uint64_t>(stripes) * n > (std::uint64_t{1} << 26)) {
    throw std::invalid_argument(
        "LpGreedyAllocator: stripes*boxes too large for the greedy scan");
  }

  std::vector<double> weights;
  if (context.demand.empty()) {
    weights.assign(catalog.video_count(), 1.0);
  } else {
    if (context.demand.size() != catalog.video_count())
      throw std::invalid_argument(
          "LpGreedyAllocator: demand forecast size != catalog video count");
    for (const double w : context.demand) {
      if (!(w >= 0.0))
        throw std::invalid_argument("LpGreedyAllocator: negative demand");
    }
    weights = context.demand;
  }

  // Zone membership (one all-box pseudo-zone without a topology).
  std::vector<std::vector<model::BoxId>> members;
  if (context.topology == nullptr) {
    members.emplace_back();
    for (model::BoxId b = 0; b < n; ++b) members[0].push_back(b);
  } else {
    for (net::ZoneId z = 0; z < context.topology->zone_count(); ++z)
      members.push_back(context.topology->members(z));
  }
  const auto zones = static_cast<std::uint32_t>(members.size());

  // D_{z,v} = weights[v] · |zone z| / n: where each stripe's coverage
  // saturates per zone.
  std::vector<double> zone_share(zones);
  for (std::uint32_t z = 0; z < zones; ++z) {
    zone_share[z] =
        static_cast<double>(members[z].size()) / static_cast<double>(n);
  }

  std::vector<std::uint32_t> free_slots(n);
  for (model::BoxId b = 0; b < n; ++b)
    free_slots[b] = profile.storage_slots(b, c);
  std::vector<char> holder(static_cast<std::size_t>(stripes) * n, 0);
  std::vector<std::uint32_t> per_zone(static_cast<std::size_t>(stripes) *
                                          zones,
                                      0);
  std::vector<std::uint32_t> total(stripes, 0);
  std::vector<char> dead(static_cast<std::size_t>(stripes) * zones, 0);

  const auto gain_of = [&](model::StripeId s, std::uint32_t z) {
    const double demand = weights[catalog.video_of(s)] * zone_share[z];
    const auto r =
        static_cast<double>(per_zone[static_cast<std::size_t>(s) * zones + z]);
    return std::min(r + 1.0, demand) - std::min(r, demand);
  };
  // Deterministic box choice inside a zone: most free slots, then lowest id,
  // skipping boxes that are full or already hold the stripe. Returns n when
  // the zone has nothing left to offer this stripe.
  const auto pick_box = [&](model::StripeId s, std::uint32_t z) {
    model::BoxId best = n;
    for (const model::BoxId b : members[z]) {
      if (free_slots[b] == 0 ||
          holder[static_cast<std::size_t>(s) * n + b] != 0)
        continue;
      if (best == n || free_slots[b] > free_slots[best]) best = b;
    }
    return best;
  };

  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  const auto place = [&](model::StripeId s, std::uint32_t z,
                         model::BoxId box) {
    --free_slots[box];
    holder[static_cast<std::size_t>(s) * n + box] = 1;
    ++per_zone[static_cast<std::size_t>(s) * zones + z];
    ++total[s];
    placements.push_back({box, s});
  };

  // Servability floor: every stripe gets one replica before the budget is
  // spent by gain, placed in its best feasible zone.
  for (model::StripeId s = 0; s < stripes; ++s) {
    std::uint32_t best_zone = zones;
    double best_gain = -1.0;
    for (std::uint32_t z = 0; z < zones; ++z) {
      if (pick_box(s, z) == n) continue;
      const double g = gain_of(s, z);
      if (best_zone == zones || g > best_gain) {
        best_zone = z;
        best_gain = g;
      }
    }
    if (best_zone == zones)
      throw std::logic_error("LpGreedyAllocator: no slot for stripe seed");
    place(s, best_zone, pick_box(s, best_zone));
  }

  // Greedy budget spend: largest marginal gain wins; ties go to the stripe
  // with the fewest replicas, then the lower stripe id, then the lower zone
  // id — so an all-zero-gain run degrades to balanced striping. A pair whose
  // zone can no longer host the stripe is dead for good (slots only shrink,
  // holders only grow); when every pair is dead the residue is dropped,
  // matching proportional_replica_counts.
  std::uint64_t remaining = replicas - stripes;
  while (remaining > 0) {
    model::StripeId best_s = stripes;
    std::uint32_t best_z = 0;
    double best_gain = 0.0;
    for (model::StripeId s = 0; s < stripes; ++s) {
      for (std::uint32_t z = 0; z < zones; ++z) {
        if (dead[static_cast<std::size_t>(s) * zones + z] != 0) continue;
        const double g = gain_of(s, z);
        const bool better =
            best_s == stripes || g > best_gain ||
            (g == best_gain && total[s] < total[best_s]);
        if (better) {
          best_s = s;
          best_z = z;
          best_gain = g;
        }
      }
    }
    if (best_s == stripes) break;  // every pair dead: drop the residue
    const model::BoxId box = pick_box(best_s, best_z);
    if (box == n) {
      dead[static_cast<std::size_t>(best_s) * zones + best_z] = 1;
      continue;
    }
    place(best_s, best_z, box);
    --remaining;
  }
  return Allocation(n, stripes, std::move(placements));
}

}  // namespace p2pvod::alloc
