// Allocation: the static placement of stripe replicas onto boxes.
//
// "An allocation is the process of storing stripe replicas into boxes
// statically" (§1.1). This class is the immutable result: who stores which
// stripe. It maintains both directions of the relation —
//   box -> stripes stored (sorted, deduplicated)
//   stripe -> holder boxes (sorted, deduplicated)
// plus raw slot-usage counts for load-balance experiments (duplicates of the
// same stripe in one box occupy slots but add no serving power).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "model/ids.hpp"

namespace p2pvod::alloc {

class Allocation {
 public:
  /// `placements[i] = {box, stripe}` for every stored replica.
  struct Placement {
    model::BoxId box;
    model::StripeId stripe;
  };

  Allocation(std::uint32_t box_count, std::uint32_t stripe_count,
             std::vector<Placement> placements);

  [[nodiscard]] std::uint32_t box_count() const noexcept { return box_count_; }
  [[nodiscard]] std::uint32_t stripe_count() const noexcept {
    return stripe_count_;
  }

  /// Boxes holding stripe `s` (sorted, unique).
  [[nodiscard]] std::span<const model::BoxId> holders(
      model::StripeId s) const;
  /// Distinct stripes stored on box `b` (sorted, unique).
  [[nodiscard]] std::span<const model::StripeId> stored(model::BoxId b) const;

  /// True iff box `b` stores stripe `s` (binary search).
  [[nodiscard]] bool box_has(model::BoxId b, model::StripeId s) const;

  /// True iff box `b` stores at least one stripe of video `v` (i.e. "b
  /// possesses data of v" in the §1.3 sense).
  [[nodiscard]] bool box_has_video_data(model::BoxId b,
                                        const model::Catalog& catalog,
                                        model::VideoId v) const;

  /// Slots consumed on box `b` (counting duplicate replicas).
  [[nodiscard]] std::uint32_t slot_usage(model::BoxId b) const;

  /// Number of distinct holders of the least/most replicated stripe.
  [[nodiscard]] std::uint32_t min_replication() const;
  [[nodiscard]] std::uint32_t max_replication() const;
  /// Max and mean slot usage across boxes (load balance, experiment E6).
  [[nodiscard]] std::uint32_t max_slot_usage() const;
  [[nodiscard]] double mean_slot_usage() const;
  /// Replicas wasted as duplicates (same stripe twice in one box).
  [[nodiscard]] std::uint64_t duplicate_replicas() const noexcept {
    return duplicates_;
  }

  /// Verify structural invariants; throws std::logic_error on violation:
  /// inverse maps consistent, holder lists sorted/unique, per-box slot usage
  /// within `profile` capacity (when given).
  void check_integrity(const model::CapacityProfile* profile = nullptr,
                       std::uint32_t c = 1) const;

  [[nodiscard]] std::string describe() const;

 private:
  std::uint32_t box_count_;
  std::uint32_t stripe_count_;
  std::uint64_t duplicates_ = 0;

  // CSR-style storage for both directions.
  std::vector<std::uint32_t> holder_offsets_;
  std::vector<model::BoxId> holder_data_;
  std::vector<std::uint32_t> stored_offsets_;
  std::vector<model::StripeId> stored_data_;
  std::vector<std::uint32_t> slot_usage_;
};

}  // namespace p2pvod::alloc
