// Zone-local-first placement: demand-proportional counts pinned to zones.
//
// Per-video replica counts come from the same proportional split as
// demand_proportional; each video's count is then quota'd across zones by
// population share (largest remainder — the forecast-weighted zone audience
// under the repo's per-box demand model), and each stripe fills its per-zone
// quota on that zone's members first (per-zone round-robin cursors), spilling
// to a global round-robin over boxes with free slots only when a zone runs
// out of storage. Without a topology there is a single zone and the scheme
// degrades to demand_proportional exactly.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

class ZoneLocalFirstAllocator final : public Allocator {
 public:
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k, util::Rng& rng,
                                    const PlacementContext& context)
      const override;
  [[nodiscard]] std::string name() const override {
    return "zone-local-first";
  }
};

}  // namespace p2pvod::alloc
