#include "alloc/demand_proportional.hpp"

#include <stdexcept>

namespace p2pvod::alloc {

Allocation DemandProportionalAllocator::allocate(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t k, util::Rng& rng) const {
  return allocate(catalog, profile, k, rng, PlacementContext{});
}

Allocation DemandProportionalAllocator::allocate(
    const model::Catalog& catalog, const model::CapacityProfile& profile,
    std::uint32_t k, util::Rng& /*rng*/,
    const PlacementContext& context) const {
  if (k == 0)
    throw std::invalid_argument("DemandProportionalAllocator: k == 0");
  const std::uint32_t n = profile.size();
  if (k > n) {
    throw std::invalid_argument(
        "DemandProportionalAllocator: k > n would duplicate a stripe within "
        "a box");
  }
  if (context.topology != nullptr && context.topology->box_count() != n)
    throw std::invalid_argument(
        "DemandProportionalAllocator: topology/profile size mismatch");
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint64_t replicas =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();
  if (replicas > profile.total_storage_slots(c)) {
    throw std::invalid_argument(
        "DemandProportionalAllocator: k*m*c replicas exceed d*n*c slots");
  }

  const std::vector<std::uint32_t> counts = proportional_replica_counts(
      catalog.video_count(), k, context.demand, /*max_per_video=*/n);

  std::vector<std::uint32_t> free_slots(n);
  for (model::BoxId b = 0; b < n; ++b)
    free_slots[b] = profile.storage_slots(b, c);

  // Round-robin striping with the per-video counts; Σ counts = k·m keeps the
  // total at (or under, when the n-cap dropped residue) the k·m·c budget.
  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  std::uint64_t cursor = 0;
  for (model::VideoId v = 0; v < catalog.video_count(); ++v) {
    for (std::uint32_t index = 0; index < c; ++index) {
      const model::StripeId s = catalog.stripe_id(v, index);
      for (std::uint32_t j = 0; j < counts[v]; ++j) {
        std::uint32_t probes = 0;
        while (free_slots[cursor % n] == 0) {
          ++cursor;
          if (++probes > n)
            throw std::logic_error(
                "DemandProportionalAllocator: no free slot found");
        }
        const auto box = static_cast<model::BoxId>(cursor % n);
        --free_slots[box];
        placements.push_back({box, s});
        ++cursor;
      }
    }
  }
  return Allocation(n, catalog.stripe_count(), std::move(placements));
}

}  // namespace p2pvod::alloc
