#include "alloc/round_robin.hpp"

#include <stdexcept>

namespace p2pvod::alloc {

Allocation RoundRobinAllocator::allocate(const model::Catalog& catalog,
                                         const model::CapacityProfile& profile,
                                         std::uint32_t k,
                                         util::Rng& /*rng*/) const {
  if (k == 0) throw std::invalid_argument("RoundRobinAllocator: k == 0");
  const std::uint32_t n = profile.size();
  if (k > n) {
    throw std::invalid_argument(
        "RoundRobinAllocator: k > n would duplicate a stripe within a box");
  }
  const std::uint32_t c = catalog.stripes_per_video();
  const std::uint64_t replicas =
      static_cast<std::uint64_t>(k) * catalog.stripe_count();
  if (replicas > profile.total_storage_slots(c)) {
    throw std::invalid_argument(
        "RoundRobinAllocator: k*m*c replicas exceed d*n*c slots");
  }

  std::vector<std::uint32_t> free_slots(n);
  for (model::BoxId b = 0; b < n; ++b)
    free_slots[b] = profile.storage_slots(b, c);

  std::vector<Allocation::Placement> placements;
  placements.reserve(replicas);
  std::uint64_t cursor = 0;
  for (model::StripeId s = 0; s < catalog.stripe_count(); ++s) {
    for (std::uint32_t j = 0; j < k; ++j) {
      // Advance to the next box with a free slot; total replicas fit, so a
      // free slot always exists within n probes.
      std::uint32_t probes = 0;
      while (free_slots[cursor % n] == 0) {
        ++cursor;
        if (++probes > n)
          throw std::logic_error("RoundRobinAllocator: no free slot found");
      }
      const auto box = static_cast<model::BoxId>(cursor % n);
      --free_slots[box];
      placements.push_back({box, s});
      ++cursor;
    }
  }
  return Allocation(n, catalog.stripe_count(), std::move(placements));
}

}  // namespace p2pvod::alloc
