// Random independent allocation (§2.1).
//
// Each replica independently picks a box with probability proportional to the
// box's storage capacity. The paper notes the process "is stopped as soon as
// a replica falls in a completely filled-up box"; we expose that as a policy:
//   kFail   — throw (the paper's reading: the allocation attempt fails)
//   kRedraw — redraw until a box with free slots is found (practical variant)
// Box loads concentrate only when c = Ω(log n) (Theorem 1's remark), which
// experiment E6 demonstrates.
#pragma once

#include "alloc/allocator.hpp"

namespace p2pvod::alloc {

enum class FullBoxPolicy { kFail, kRedraw };

class IndependentAllocator final : public Allocator {
 public:
  explicit IndependentAllocator(FullBoxPolicy policy = FullBoxPolicy::kRedraw)
      : policy_(policy) {}

  [[nodiscard]] Allocation allocate(const model::Catalog& catalog,
                                    const model::CapacityProfile& profile,
                                    std::uint32_t k,
                                    util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "independent"; }

 private:
  FullBoxPolicy policy_;
};

}  // namespace p2pvod::alloc
