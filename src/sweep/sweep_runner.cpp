#include "sweep/sweep_runner.hpp"

#include <chrono>
#include <utility>

namespace p2pvod::sweep {

SweepResult SweepRunner::run(const ParameterGrid& grid,
                             std::vector<std::string> metric_names,
                             const PointFn& fn) const {
  const std::size_t count = grid.size();
  SweepResult result(grid.names(), std::move(metric_names), count);

  util::parallel_for(
      0, count,
      [&](std::size_t index) {
        GridPoint point = grid.point(index);
        // Per-point wall time is reporting only (wall_time column, diffed
        // under a wide tolerance); metrics and seeds never see it.
        // p2pvod-lint: allow(wall-clock)
        const auto start = std::chrono::steady_clock::now();
        std::vector<double> metrics =
            fn(point, point_seed(options_.base_seed, index));
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() -  // p2pvod-lint: allow(wall-clock)
            start;
        // set_row validates the metric count.
        result.set_row(index, std::move(point), std::move(metrics),
                       elapsed.count());
      },
      options_.pool);

  return result;
}

}  // namespace p2pvod::sweep
