#include "sweep/sweep_runner.hpp"

#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pvod::sweep {

namespace {

// kStable: the grid fully determines how many points are evaluated.
obs::Counter& points_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("sweep/points");
  return counter;
}

}  // namespace

SweepResult SweepRunner::run(const ParameterGrid& grid,
                             std::vector<std::string> metric_names,
                             const PointFn& fn) const {
  const std::size_t count = grid.size();
  SweepResult result(grid.names(), std::move(metric_names), count);

  util::parallel_for(
      0, count,
      [&](std::size_t index) {
        OBS_SPAN("sweep/point");
        points_counter().add();
        GridPoint point = grid.point(index);
        // Per-point wall time is reporting only (wall_time column, diffed
        // under a wide tolerance); metrics and seeds never see it.
        const obs::WallTimer timer;
        std::vector<double> metrics =
            fn(point, point_seed(options_.base_seed, index));
        // set_row validates the metric count.
        result.set_row(index, std::move(point), std::move(metrics),
                       timer.seconds());
      },
      options_.pool);

  return result;
}

}  // namespace p2pvod::sweep
