// Aggregated output of a parameter sweep: one row per grid point (in grid
// index order), one numeric column per metric. Converts to util::Table for
// aligned printing and CSV export so figure benches keep a single output
// path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/parameter_grid.hpp"
#include "util/table.hpp"

namespace p2pvod::sweep {

class SweepResult {
 public:
  struct Row {
    GridPoint point;
    std::vector<double> metrics;
    /// Wall time spent evaluating this point, seconds. Informational only:
    /// it is exported to the JSON result documents but never participates in
    /// baseline regression comparisons (timing varies run to run).
    double seconds = 0.0;
  };

  SweepResult() = default;
  SweepResult(std::vector<std::string> axis_names,
              std::vector<std::string> metric_names, std::size_t rows);

  [[nodiscard]] const std::vector<std::string>& axis_names() const noexcept {
    return axis_names_;
  }
  [[nodiscard]] const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  /// Throws std::out_of_range on a bad index.
  [[nodiscard]] const Row& row(std::size_t index) const {
    return rows_.at(index);
  }

  /// Store the outcome of grid point `index`. Called by SweepRunner (possibly
  /// from several threads, each on a distinct index — rows are preallocated so
  /// no rehashing/reallocation races exist).
  void set_row(std::size_t index, GridPoint point, std::vector<double> metrics,
               double seconds = 0.0);

  /// Metric value by name; throws std::invalid_argument on an unknown name.
  [[nodiscard]] double metric(std::size_t row, const std::string& name) const;

  /// Axis columns followed by metric columns. `precision` applies to metric
  /// and axis cells alike (Table trims trailing zeros).
  [[nodiscard]] util::Table to_table(std::string title = {},
                                     int precision = 4) const;
  [[nodiscard]] std::string to_csv() const;
  /// Write CSV to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> axis_names_;
  std::vector<std::string> metric_names_;
  std::vector<Row> rows_;
};

}  // namespace p2pvod::sweep
