// Parallel execution of a ParameterGrid.
//
// SweepRunner batches grid points onto a util::ThreadPool and collects the
// per-point metric vectors into a SweepResult in grid-index order. Two rules
// make the output independent of thread count and scheduling:
//
//   1. Every point gets a deterministic seed child_seed(base_seed, index)
//      (util/rng); nothing about scheduling feeds the RNG.
//   2. Nested parallel helpers called from inside a point function on the
//      same pool degrade to serial loops (ThreadPool::on_worker_thread), so
//      Calibrator's internally-parallel trial loops are safe to call from a
//      point function and consume their seeds in the same order as a serial
//      run.
//
// Figure benches therefore scale with cores across grid points while
// producing byte-identical tables to a serial run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/parameter_grid.hpp"
#include "sweep/sweep_result.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace p2pvod::sweep {

struct SweepOptions {
  /// Root seed for the sweep; point `i` receives child_seed(base_seed, i).
  std::uint64_t base_seed = 0x5eedULL;
  /// Pool to batch points onto; nullptr selects ThreadPool::global().
  util::ThreadPool* pool = nullptr;
};

class SweepRunner {
 public:
  /// Computes the metric vector for one grid point. `seed` is the point's
  /// deterministic child seed; experiments that pin their own seeds (to
  /// reproduce a published figure exactly) may ignore it. Must return
  /// exactly as many values as metric names were passed to run().
  using PointFn =
      std::function<std::vector<double>(const GridPoint&, std::uint64_t seed)>;

  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Evaluate `fn` on every grid point; rows come back in grid-index order
  /// regardless of thread count. Throws std::invalid_argument (propagated
  /// out of the pool) if `fn` returns the wrong number of metrics.
  [[nodiscard]] SweepResult run(const ParameterGrid& grid,
                                std::vector<std::string> metric_names,
                                const PointFn& fn) const;

  /// Seed handed to point `index` under `base_seed`.
  [[nodiscard]] static std::uint64_t point_seed(std::uint64_t base_seed,
                                                std::size_t index) noexcept {
    return util::child_seed(base_seed, static_cast<std::uint64_t>(index));
  }

 private:
  SweepOptions options_;
};

}  // namespace p2pvod::sweep
