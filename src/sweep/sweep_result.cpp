#include "sweep/sweep_result.hpp"

#include <stdexcept>
#include <utility>

namespace p2pvod::sweep {

SweepResult::SweepResult(std::vector<std::string> axis_names,
                         std::vector<std::string> metric_names,
                         std::size_t rows)
    : axis_names_(std::move(axis_names)),
      metric_names_(std::move(metric_names)),
      rows_(rows) {}

void SweepResult::set_row(std::size_t index, GridPoint point,
                          std::vector<double> metrics, double seconds) {
  if (metrics.size() != metric_names_.size()) {
    throw std::invalid_argument(
        "SweepResult::set_row: expected " +
        std::to_string(metric_names_.size()) + " metrics, got " +
        std::to_string(metrics.size()));
  }
  Row& row = rows_.at(index);
  row.point = std::move(point);
  row.metrics = std::move(metrics);
  row.seconds = seconds;
}

double SweepResult::metric(std::size_t row, const std::string& name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i) {
    if (metric_names_[i] == name) return rows_.at(row).metrics.at(i);
  }
  throw std::invalid_argument("SweepResult::metric: no metric '" + name + "'");
}

util::Table SweepResult::to_table(std::string title, int precision) const {
  util::Table table(std::move(title));
  std::vector<std::string> header = axis_names_;
  header.insert(header.end(), metric_names_.begin(), metric_names_.end());
  table.set_header(std::move(header));
  for (const Row& row : rows_) {
    table.begin_row();
    for (const double value : row.point.values) table.cell(value, precision);
    for (const double value : row.metrics) table.cell(value, precision);
  }
  return table;
}

std::string SweepResult::to_csv() const { return to_table().to_csv(); }

void SweepResult::write_csv(const std::string& path) const {
  to_table().write_csv(path);
}

}  // namespace p2pvod::sweep
