#include "sweep/parameter_grid.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace p2pvod::sweep {

namespace {

template <typename Field>
void assign_clamped(Field& field, double value) {
  // Clamp both ends: casting a double outside Field's range is UB. NaN is
  // rejected earlier, in axis().
  constexpr double kMin =
      static_cast<double>(std::numeric_limits<Field>::lowest());
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<Field>::max());
  if (value <= kMin) {
    field = std::numeric_limits<Field>::lowest();
  } else if (value >= kMax) {
    field = std::numeric_limits<Field>::max();
  } else {
    field = static_cast<Field>(value);
  }
}

}  // namespace

ParameterGrid::ParameterGrid(analysis::TrialSpec base) : base_(base) {}

void ParameterGrid::validate_axis(const std::string& name,
                                  const std::vector<double>& values) const {
  if (name.empty()) {
    throw std::invalid_argument("ParameterGrid::axis: empty axis name");
  }
  if (values.empty()) {
    throw std::invalid_argument("ParameterGrid::axis: empty value list for '" +
                                name + "'");
  }
  for (const double value : values) {
    if (std::isnan(value)) {
      throw std::invalid_argument("ParameterGrid::axis: NaN value on axis '" +
                                  name + "'");
    }
  }
  for (const Axis& existing : axes_) {
    if (existing.name == name) {
      throw std::invalid_argument("ParameterGrid::axis: duplicate axis '" +
                                  name + "'");
    }
  }
}

ParameterGrid& ParameterGrid::axis(const std::string& name,
                                   std::vector<double> values) {
  validate_axis(name, values);

  Setter setter = nullptr;
  if (name == "n") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.n, v);
    };
  } else if (name == "u") {
    setter = [](analysis::TrialSpec& s, double v) { s.u = v; };
  } else if (name == "d") {
    setter = [](analysis::TrialSpec& s, double v) { s.d = v; };
  } else if (name == "mu") {
    setter = [](analysis::TrialSpec& s, double v) { s.mu = v; };
  } else if (name == "c") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.c, v);
    };
  } else if (name == "k") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.k, v);
    };
  } else if (name == "m") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.m_override, v);
    };
  } else if (name == "duration") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.duration, v);
    };
  } else if (name == "rounds") {
    setter = [](analysis::TrialSpec& s, double v) {
      assign_clamped(s.rounds, v);
    };
  } else {
    throw std::invalid_argument("ParameterGrid::axis: unknown axis '" + name +
                                "'");
  }

  axes_.push_back(Axis{name, std::move(values), setter});
  return *this;
}

ParameterGrid& ParameterGrid::free_axis(const std::string& name,
                                        std::vector<double> values) {
  validate_axis(name, values);
  // nullptr setter: the axis enumerates cells without touching the spec.
  axes_.push_back(Axis{name, std::move(values), nullptr});
  return *this;
}

std::vector<std::string> ParameterGrid::names() const {
  std::vector<std::string> result;
  result.reserve(axes_.size());
  for (const Axis& axis : axes_) result.push_back(axis.name);
  return result;
}

const std::vector<double>& ParameterGrid::values(const std::string& name) const {
  for (const Axis& axis : axes_) {
    if (axis.name == name) return axis.values;
  }
  throw std::invalid_argument("ParameterGrid::values: no axis '" + name + "'");
}

std::size_t ParameterGrid::size() const noexcept {
  std::size_t product = 1;
  for (const Axis& axis : axes_) product *= axis.values.size();
  return product;
}

GridPoint ParameterGrid::point(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("ParameterGrid::point: index out of range");
  }
  GridPoint result;
  result.index = index;
  result.spec = base_;
  result.values.resize(axes_.size());
  // Row-major decode: last axis varies fastest.
  std::size_t remainder = index;
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const Axis& axis = axes_[i];
    const std::size_t which = remainder % axis.values.size();
    remainder /= axis.values.size();
    result.values[i] = axis.values[which];
    if (axis.setter != nullptr) axis.setter(result.spec, axis.values[which]);
  }
  return result;
}

std::vector<GridPoint> ParameterGrid::expand() const {
  std::vector<GridPoint> points;
  const std::size_t count = size();
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) points.push_back(point(i));
  return points;
}

}  // namespace p2pvod::sweep
