// Cartesian parameter grids over analysis::TrialSpec axes.
//
// A grid is a base TrialSpec plus named value axes; expansion is row-major
// with the FIRST axis slowest, so every grid point has a stable index that is
// independent of how a sweep later schedules the work. Figure benches build a
// grid per figure (e.g. axis "u" for the threshold plot, axes "n" x "u" for
// catalog scaling) and hand it to SweepRunner.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/calibrate.hpp"

namespace p2pvod::sweep {

/// One cell of an expanded grid: its row-major index, the raw axis values
/// that produced it (grid axis order), and the TrialSpec with those values
/// applied to the grid's base spec.
struct GridPoint {
  std::size_t index = 0;
  std::vector<double> values;
  analysis::TrialSpec spec;
};

class ParameterGrid {
 public:
  explicit ParameterGrid(analysis::TrialSpec base = {});

  /// Append an axis addressing a TrialSpec field by name. Supported names:
  /// "n", "u", "d", "mu", "c", "k", "m" (the m_override), "duration",
  /// "rounds". Values are doubles; integer fields truncate, clamping to the
  /// field's range. Throws std::invalid_argument on an unknown or duplicate
  /// name, an empty value list, or a NaN value. Returns *this for chaining.
  ParameterGrid& axis(const std::string& name, std::vector<double> values);

  /// Append a free axis: its values enumerate grid cells and appear in
  /// GridPoint::values (and sweep output columns) but do NOT touch the
  /// TrialSpec. Scenarios whose parameters are not TrialSpec fields (failure
  /// probability, allocation scheme index, workload case, ...) use this to
  /// run their loops as parallel grid points. Same validation as axis()
  /// except any non-empty name is accepted.
  ParameterGrid& free_axis(const std::string& name, std::vector<double> values);

  [[nodiscard]] const analysis::TrialSpec& base() const noexcept {
    return base_;
  }
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return axes_.size();
  }
  [[nodiscard]] std::vector<std::string> names() const;
  /// Values of the named axis; throws std::invalid_argument if absent.
  [[nodiscard]] const std::vector<double>& values(const std::string& name) const;

  /// Number of grid points: product of axis sizes (1 for an axis-less grid,
  /// which still sweeps the bare base spec).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Materialize point `index` (row-major, first axis slowest). Throws
  /// std::out_of_range when index >= size().
  [[nodiscard]] GridPoint point(std::size_t index) const;

  /// All points in index order.
  [[nodiscard]] std::vector<GridPoint> expand() const;

 private:
  using Setter = void (*)(analysis::TrialSpec&, double);

  struct Axis {
    std::string name;
    std::vector<double> values;
    Setter setter;  ///< nullptr for free axes
  };

  void validate_axis(const std::string& name,
                     const std::vector<double>& values) const;

  analysis::TrialSpec base_;
  std::vector<Axis> axes_;
};

}  // namespace p2pvod::sweep
