#include "scenario/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "scenario/registry.hpp"

namespace p2pvod::scenario {

double run_scenario(const Scenario& scenario,
                    const std::vector<ResultSink*>& sinks,
                    const RunOptions& options) {
  Emitter emitter(scenario, sinks);
  emitter.banner();

  // Stage/scenario wall times land in the wall_time report fields, which the
  // baseline differ compares only under a wide tolerance — they never feed
  // back into metrics or seeds.
  // p2pvod-lint: allow(wall-clock)
  const auto start = std::chrono::steady_clock::now();
  Plan plan = scenario.plan();

  ScenarioRun run;
  run.stages.reserve(plan.stages.size());
  const sweep::SweepRunner runner(options.sweep);
  for (Stage& stage : plan.stages) {
    // p2pvod-lint: allow(wall-clock)
    const auto stage_start = std::chrono::steady_clock::now();
    sweep::SweepResult result =
        runner.run(stage.grid, stage.metrics, stage.evaluate);
    const std::chrono::duration<double> stage_elapsed =
        std::chrono::steady_clock::now() -  // p2pvod-lint: allow(wall-clock)
        stage_start;
    run.stages.push_back(
        {stage.name, std::move(result), stage_elapsed.count()});
  }
  if (plan.render) plan.render(run, emitter);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() -  // p2pvod-lint: allow(wall-clock)
      start;

  emitter.complete(run, elapsed.count());
  return elapsed.count();
}

int run_figure_main(const std::string& id) {
  try {
    const Scenario& scenario = ScenarioRegistry::builtin().at(id);
    TableSink table_sink(std::cout);
    std::optional<CsvSink> csv_sink;
    std::vector<ResultSink*> sinks{&table_sink};
    if (const char* dir = std::getenv("P2PVOD_CSV_DIR"); dir != nullptr) {
      csv_sink.emplace(dir);
      sinks.push_back(&*csv_sink);
    }
    run_scenario(scenario, sinks);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace p2pvod::scenario
