#include "scenario/runner.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"

namespace p2pvod::scenario {

namespace {

/// Stops a trace session abandoned by an exception unwinding through
/// run_scenario, so a failed scenario doesn't leave recording enabled for
/// the rest of the process.
struct TraceAbortGuard {
  bool armed = false;
  ~TraceAbortGuard() {
    if (armed && obs::TraceSession::active()) (void)obs::TraceSession::stop();
  }
};

}  // namespace

void apply_obs_env(RunOptions& options) {
  if (const char* metrics = std::getenv("P2PVOD_METRICS");
      metrics != nullptr && std::string(metrics) != "0") {
    options.collect_metrics = true;
  }
  if (const char* trace = std::getenv("P2PVOD_TRACE");
      trace != nullptr && *trace != '\0') {
    options.trace_dir = trace;
  }
}

double run_scenario(const Scenario& scenario,
                    const std::vector<ResultSink*>& sinks,
                    const RunOptions& options) {
  Emitter emitter(scenario, sinks);
  emitter.banner();

  const bool tracing = !options.trace_dir.empty();
  TraceAbortGuard trace_guard;
  if (tracing) {
    obs::TraceSession::start();
    trace_guard.armed = true;
  }
  std::optional<obs::MetricsSnapshot> metrics_before;
  if (options.collect_metrics)
    metrics_before = obs::MetricsRegistry::global().snapshot();

  // Stage/scenario wall times land in the wall_time report fields, which the
  // baseline differ compares only under a wide tolerance — they never feed
  // back into metrics or seeds.
  const obs::WallTimer timer;
  Plan plan = scenario.plan();

  ScenarioRun run;
  run.stages.reserve(plan.stages.size());
  const sweep::SweepRunner runner(options.sweep);
  for (Stage& stage : plan.stages) {
    OBS_SPAN_DYN([&] { return "scenario/" + scenario.id + ":" + stage.name; });
    const obs::WallTimer stage_timer;
    sweep::SweepResult result =
        runner.run(stage.grid, stage.metrics, stage.evaluate);
    run.stages.push_back(
        {stage.name, std::move(result), stage_timer.seconds()});
  }
  if (plan.render) plan.render(run, emitter);

  if (options.collect_metrics) {
    run.metrics =
        obs::MetricsRegistry::global().snapshot().delta_since(*metrics_before);
  }
  const double elapsed = timer.seconds();
  if (tracing) {
    trace_guard.armed = false;
    const std::string path =
        options.trace_dir + "/TRACE_" + scenario.id + ".json";
    try {
      obs::TraceSession::stop_to_file(path);
      emitter.text("[trace] " + path + "\n");
    } catch (const std::exception& error) {
      // Trace output is diagnostics, not results: report and carry on.
      std::cerr << "[trace] failed: " << error.what() << "\n";
    }
  }

  emitter.complete(run, elapsed);
  return elapsed;
}

int run_figure_main(const std::string& id) {
  try {
    const Scenario& scenario = ScenarioRegistry::builtin().at(id);
    TableSink table_sink(std::cout);
    std::optional<CsvSink> csv_sink;
    std::vector<ResultSink*> sinks{&table_sink};
    if (const char* dir = std::getenv("P2PVOD_CSV_DIR"); dir != nullptr) {
      csv_sink.emplace(dir);
      sinks.push_back(&*csv_sink);
    }
    RunOptions options;
    apply_obs_env(options);
    run_scenario(scenario, sinks, options);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace p2pvod::scenario
