#include "scenario/runner.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"

namespace p2pvod::scenario {

namespace {

/// Stops recording sessions abandoned by an exception unwinding through
/// run_scenario, so a failed scenario doesn't leave trace or time-series
/// recording enabled for the rest of the process.
struct ObsAbortGuard {
  bool trace_armed = false;
  bool series_armed = false;
  ~ObsAbortGuard() {
    if (trace_armed && obs::TraceSession::active())
      (void)obs::TraceSession::stop();
    if (series_armed && obs::RoundSeries::active())
      (void)obs::RoundSeries::stop();
  }
};

}  // namespace

void apply_obs_env(RunOptions& options) {
  if (const char* metrics = std::getenv("P2PVOD_METRICS");
      metrics != nullptr && std::string(metrics) != "0") {
    options.collect_metrics = true;
  }
  if (const char* trace = std::getenv("P2PVOD_TRACE");
      trace != nullptr && *trace != '\0') {
    options.trace_dir = trace;
  }
  if (const char* profile = std::getenv("P2PVOD_PROFILE");
      profile != nullptr && *profile != '\0') {
    options.profile_dir = profile;
  }
  if (const char* series = std::getenv("P2PVOD_SERIES");
      series != nullptr && *series != '\0') {
    options.series_dir = series;
  }
}

double run_scenario(const Scenario& scenario,
                    const std::vector<ResultSink*>& sinks,
                    const RunOptions& options) {
  Emitter emitter(scenario, sinks);
  emitter.banner();

  const bool tracing = !options.trace_dir.empty();
  const bool profiling = !options.profile_dir.empty();
  ObsAbortGuard obs_guard;
  if (tracing || profiling) {
    obs::TraceSession::start();
    obs_guard.trace_armed = true;
  }
  if (!options.series_dir.empty()) {
    obs::RoundSeries::start();
    obs_guard.series_armed = true;
  }
  std::optional<obs::MetricsSnapshot> metrics_before;
  if (options.collect_metrics)
    metrics_before = obs::MetricsRegistry::global().snapshot();

  // Stage/scenario wall times land in the wall_time report fields, which the
  // baseline differ compares only under a wide tolerance — they never feed
  // back into metrics or seeds.
  const obs::WallTimer timer;
  Plan plan = scenario.plan();

  ScenarioRun run;
  run.stages.reserve(plan.stages.size());
  const sweep::SweepRunner runner(options.sweep);
  for (Stage& stage : plan.stages) {
    OBS_SPAN_DYN([&] { return "scenario/" + scenario.id + ":" + stage.name; });
    const obs::WallTimer stage_timer;
    sweep::SweepResult result =
        runner.run(stage.grid, stage.metrics, stage.evaluate);
    run.stages.push_back(
        {stage.name, std::move(result), stage_timer.seconds()});
  }
  if (plan.render) plan.render(run, emitter);

  if (options.collect_metrics) {
    run.metrics =
        obs::MetricsRegistry::global().snapshot().delta_since(*metrics_before);
  }
  const double elapsed = timer.seconds();
  if (obs_guard.series_armed) {
    obs_guard.series_armed = false;
    try {
      obs::RoundSeries::stop_to_files(options.series_dir, scenario.id);
      // Artifact notices for profile/series go to stderr so stdout (tables,
      // BENCH docs) stays byte-identical with and without them.
      std::cerr << "[series] " << options.series_dir << "/SERIES_"
                << scenario.id << ".csv\n";
    } catch (const std::exception& error) {
      std::cerr << "[series] failed: " << error.what() << "\n";
    }
  }
  if (tracing || profiling) {
    obs_guard.trace_armed = false;
    const std::vector<obs::TraceEvent> events = obs::TraceSession::stop();
    if (tracing) {
      const std::string path =
          options.trace_dir + "/TRACE_" + scenario.id + ".json";
      try {
        obs::TraceSession::write_file(path, events);
        emitter.text("[trace] " + path + "\n");
      } catch (const std::exception& error) {
        // Trace output is diagnostics, not results: report and carry on.
        std::cerr << "[trace] failed: " << error.what() << "\n";
      }
    }
    if (profiling) {
      try {
        obs::Profile::from_events(events).write_files(options.profile_dir,
                                                      scenario.id);
        std::cerr << "[profile] " << options.profile_dir << "/PROFILE_"
                  << scenario.id << ".json\n";
      } catch (const std::exception& error) {
        std::cerr << "[profile] failed: " << error.what() << "\n";
      }
    }
  }

  emitter.complete(run, elapsed);
  return elapsed;
}

int run_figure_main(const std::string& id) {
  try {
    const Scenario& scenario = ScenarioRegistry::builtin().at(id);
    TableSink table_sink(std::cout);
    std::optional<CsvSink> csv_sink;
    std::vector<ResultSink*> sinks{&table_sink};
    if (const char* dir = std::getenv("P2PVOD_CSV_DIR"); dir != nullptr) {
      csv_sink.emplace(dir);
      sinks.push_back(&*csv_sink);
    }
    RunOptions options;
    apply_obs_env(options);
    run_scenario(scenario, sinks, options);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace p2pvod::scenario
