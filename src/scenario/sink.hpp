// Pluggable result sinks for scenario runs.
//
// A run is a stream of events — banner, tables, free text, completion — and
// every sink sees all of them:
//   * TableSink renders the exact stdout the legacy figure binaries printed
//     (banner block, aligned tables, trailing commentary),
//   * CsvSink writes each table as <dir>/<table_id>.csv and echoes the
//     legacy "[csv] <path>" notice,
//   * JsonSink writes one machine-readable BENCH_<id>.json per scenario with
//     wall time and per-point metrics — the artifact the --baseline
//     regression diff consumes,
//   * CaptureSink keeps the JSON document in memory (driver baseline mode).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void on_banner(const Scenario& /*scenario*/) {}
  virtual void on_table(const Scenario& /*scenario*/,
                        const util::Table& /*table*/,
                        const std::string& /*table_id*/) {}
  virtual void on_text(const Scenario& /*scenario*/,
                       const std::string& /*text*/) {}
  virtual void on_complete(const Scenario& /*scenario*/,
                           const ScenarioRun& /*run*/,
                           double /*wall_seconds*/) {}
};

/// Human-readable sink; byte-identical to the pre-registry figure binaries.
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& out) : out_(out) {}

  void on_banner(const Scenario& scenario) override;
  void on_table(const Scenario& scenario, const util::Table& table,
                const std::string& table_id) override;
  void on_text(const Scenario& scenario, const std::string& text) override;

 private:
  std::ostream& out_;
};

/// Writes <dir>/<table_id>.csv per table. `notice` (default std::cout)
/// receives the legacy "[csv] <path>" confirmation line; failures go to
/// stderr and do not abort the run.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string dir, std::ostream* notice = nullptr);

  void on_table(const Scenario& scenario, const util::Table& table,
                const std::string& table_id) override;

  /// Tables whose CSV could not be written (failures are logged, never
  /// thrown, so the legacy shims keep running; drivers may turn a non-zero
  /// count into a failing exit code).
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return failures_;
  }

 private:
  std::string dir_;
  std::ostream* notice_;
  std::size_t failures_ = 0;
};

/// Builds the machine-readable result document for one scenario run.
[[nodiscard]] util::json::Value run_to_json(const Scenario& scenario,
                                            const ScenarioRun& run,
                                            double wall_seconds);

/// Writes <dir>/BENCH_<id>.json on completion. `notice` (nullable) receives
/// one "[json] <path>" line per file.
class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(std::string dir, std::ostream* notice = nullptr);

  void on_complete(const Scenario& scenario, const ScenarioRun& run,
                   double wall_seconds) override;

  /// Paths written so far, in completion order.
  [[nodiscard]] const std::vector<std::string>& written() const noexcept {
    return written_;
  }

  /// Documents that could not be written (logged, not thrown).
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return failures_;
  }

 private:
  std::string dir_;
  std::ostream* notice_;
  std::vector<std::string> written_;
  std::size_t failures_ = 0;
};

/// Keeps the last run's JSON document in memory (no file I/O).
class CaptureSink final : public ResultSink {
 public:
  void on_complete(const Scenario& scenario, const ScenarioRun& run,
                   double wall_seconds) override;

  [[nodiscard]] const std::optional<util::json::Value>& document()
      const noexcept {
    return document_;
  }

 private:
  std::optional<util::json::Value> document_;
};

/// Fans run events out to a sink list; what scenario render callbacks write
/// tables and text through.
class Emitter {
 public:
  Emitter(const Scenario& scenario, std::vector<ResultSink*> sinks)
      : scenario_(scenario), sinks_(std::move(sinks)) {}

  void table(const util::Table& table, const std::string& table_id);
  /// Raw text (commentary, blank separator lines); includes its own '\n's.
  void text(const std::string& text);

  // Used by run_scenario():
  void banner();
  void complete(const ScenarioRun& run, double wall_seconds);

 private:
  const Scenario& scenario_;
  std::vector<ResultSink*> sinks_;
};

}  // namespace p2pvod::scenario
