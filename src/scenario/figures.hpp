// The paper's figure/table scenarios, one maker per experiment.
//
// Each maker returns the Scenario that reproduces one artifact of the paper
// (or a documented extension); register_builtin_scenarios() installs all of
// them, in figure order, into a registry. Definitions live in
// src/scenario/figures/<id>.cpp and preserve the exact output bytes of the
// pre-registry bench/bench_fig_*.cpp binaries (which are now thin shims).
#pragma once

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace p2pvod::scenario {

Scenario make_table1_scenario();          // E1  — Table 1 parameters
Scenario make_threshold_scenario();       // E2  — phase transition at u = 1
Scenario make_catalog_scaling_scenario(); // E3  — max catalog vs n
Scenario make_replication_scenario();     // E4  — replicas per stripe
Scenario make_swarm_growth_scenario();    // E5  — survival over (mu, c)
Scenario make_allocation_scenario();      // E6  — permutation vs independent
Scenario make_hetero_scenario();          // E7  — Section 4 compensation
Scenario make_tradeoff_scenario();        // E8  — catalog bound ~ (u-1)^3
Scenario make_startup_delay_scenario();   // E9  — constant start-up delay
Scenario make_obstruction_scenario();     // E10 — union bound vs measured
Scenario make_baseline_scenario();        // E11 — full replication baseline
Scenario make_churn_scenario();           // E13 — churn tolerance (extension)
Scenario make_crosszone_scenario();       // E14 — cross-zone traffic vs u
Scenario make_zonecap_scenario();         // E15 — threshold under link caps
Scenario make_scaleladder_scenario();     // E16 — million-box sparse ladder
Scenario make_placement_scenario();       // E17 — demand-aware placement

/// Register all 16 builtin scenarios in figure order. Throws (via add) if
/// any id is already present in `registry`.
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace p2pvod::scenario
