// The Scenario abstraction: one paper claim, reproduced as parameter sweeps.
//
// Each figure/table of the paper is described declaratively as a Scenario:
// an id, the claim it reproduces, and a plan() builder that yields one or
// more Stages — a ParameterGrid (the declarative axes), metric column names,
// and a point-evaluation function — plus a render callback that turns the
// SweepResults into the human tables. Stages execute on the parallel
// SweepRunner; render only formats, so a scenario's stdout is byte-identical
// at any thread count (see src/sweep/ determinism rules).
//
// The plan is rebuilt on every run because stage shapes depend on
// P2PVOD_SCALE (util::scaled_count) read at run time; the plan's closures
// capture the scaled values shared between evaluate and render.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sweep/parameter_grid.hpp"
#include "sweep/sweep_result.hpp"
#include "sweep/sweep_runner.hpp"

namespace p2pvod::scenario {

class Emitter;

/// One sweep within a scenario: a grid, its metric columns, and the function
/// evaluating one grid point. Scenarios with several independent tables
/// (e.g. E6's load-balance and feasibility tables) declare several stages.
struct Stage {
  std::string name;  ///< stable key in BENCH_<id>.json ("main" by convention)
  sweep::ParameterGrid grid;
  std::vector<std::string> metrics;
  sweep::SweepRunner::PointFn evaluate;
};

/// Results of an executed stage, in declaration order.
struct StageResult {
  std::string name;
  sweep::SweepResult result;
  /// Wall time of the stage's sweep, seconds. Exported to the JSON result
  /// documents as an informational field; the baseline diff ignores it, so a
  /// perf regression can be localized to a stage without failing on noise.
  double seconds = 0.0;
};

struct ScenarioRun {
  std::vector<StageResult> stages;

  /// Per-run metric deltas (present when RunOptions::collect_metrics is on):
  /// process-wide counters/histograms snapshotted before and after the run,
  /// differenced so concurrent/global activity before the run is excluded.
  /// Exported as the "metrics" block of BENCH_<id>.json, which the baseline
  /// differ ignores.
  std::optional<obs::MetricsSnapshot> metrics;

  /// Stage result by declaration index; throws std::out_of_range.
  [[nodiscard]] const sweep::SweepResult& stage(std::size_t index) const {
    return stages.at(index).result;
  }
};

/// A scenario's executable shape, built fresh per run.
struct Plan {
  std::vector<Stage> stages;
  /// Formats the stage results into tables/text on the Emitter. Cheap
  /// closed-form side computations (e.g. E8's recurrence table) may live
  /// here; anything Monte-Carlo belongs in a stage.
  std::function<void(const ScenarioRun&, Emitter&)> render;
};

struct Scenario {
  std::string id;      ///< registry key and JSON file stem, e.g. "threshold"
  std::string figure;  ///< paper artifact, e.g. "E2"
  std::string title;   ///< banner headline, e.g. "E2 / threshold figure"
  std::string claim;   ///< one-line paper claim shown in the banner / --list
  std::function<Plan()> plan;
};

}  // namespace p2pvod::scenario
