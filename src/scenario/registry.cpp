#include "scenario/registry.hpp"

#include <mutex>
#include <stdexcept>

#include "scenario/figures.hpp"

namespace p2pvod::scenario {

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.id.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: empty scenario id");
  }
  if (!scenario.plan) {
    throw std::invalid_argument("ScenarioRegistry::add: scenario '" +
                                scenario.id + "' has no plan");
  }
  if (find(scenario.id) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry::add: duplicate scenario '" +
                                scenario.id + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& id) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.id == id) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(const std::string& id) const {
  if (const Scenario* scenario = find(id); scenario != nullptr) {
    return *scenario;
  }
  std::string known;
  for (const Scenario& scenario : scenarios_) {
    if (!known.empty()) known += ", ";
    known += scenario.id;
  }
  throw std::out_of_range("ScenarioRegistry: unknown scenario '" + id +
                          "' (known: " + known + ")");
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) out.push_back(&scenario);
  return out;
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static ScenarioRegistry registry;
  static std::once_flag once;
  std::call_once(once, [] { register_builtin_scenarios(registry); });
  return registry;
}

}  // namespace p2pvod::scenario
