// Regression diff between a run's BENCH_<id>.json and a stored baseline.
//
// This is the hook CI uses for performance tracking: a perf-smoke job runs
// `p2pvod_bench --all` at a reduced scale, then diffs the fresh JSON against
// baselines checked into the repository. A diff fails when
//   * the result structure changed (stages, axes, metric columns, rows),
//   * any metric moved beyond atol + rtol * |baseline value|, or
//   * wall time regressed beyond baseline * wall_factor + wall_slack
//     (wall_factor <= 0 disables the wall check).
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace p2pvod::scenario {

struct BaselineOptions {
  double rtol = 1e-6;  ///< relative metric tolerance
  double atol = 1e-9;  ///< absolute metric tolerance
  /// Wall-time budget: fail when current > baseline * wall_factor +
  /// wall_slack. Generous by default — run-to-run noise dwarfs real
  /// regressions at bench scale; CI tightens or loosens per machine class.
  double wall_factor = 3.0;
  double wall_slack = 0.25;  ///< seconds; absorbs timer noise on tiny runs
};

/// Human-readable violation messages; empty means the run is within
/// tolerance. Malformed documents yield a violation (never a throw), so the
/// driver can keep diffing the remaining scenarios.
[[nodiscard]] std::vector<std::string> diff_against_baseline(
    const util::json::Value& current, const util::json::Value& baseline,
    const BaselineOptions& options = {});

/// Load `baseline_path` and diff `current` against it. File-not-found /
/// parse errors are reported as violations.
[[nodiscard]] std::vector<std::string> diff_against_baseline_file(
    const util::json::Value& current, const std::string& baseline_path,
    const BaselineOptions& options = {});

}  // namespace p2pvod::scenario
