#include "scenario/baseline.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace p2pvod::scenario {

namespace {

using util::json::Value;

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

std::string string_field(const Value& doc, const char* key) {
  const Value* field = doc.find(key);
  return field != nullptr && field->is_string() ? field->as_string()
                                                : std::string("<missing>");
}

/// Names from a JSON string array, e.g. the "axes"/"metrics" stage fields.
std::vector<std::string> name_list(const Value& stage, const char* key) {
  std::vector<std::string> out;
  if (const Value* list = stage.find(key);
      list != nullptr && list->is_array()) {
    for (const Value& entry : list->as_array()) {
      out.push_back(entry.is_string() ? entry.as_string() : "?");
    }
  }
  return out;
}

void diff_rows(const std::string& where, const Value& current_stage,
               const Value& baseline_stage,
               const std::vector<std::string>& metric_names,
               const BaselineOptions& options,
               std::vector<std::string>& violations) {
  const Value* current_rows = current_stage.find("rows");
  const Value* baseline_rows = baseline_stage.find("rows");
  if (current_rows == nullptr || !current_rows->is_array() ||
      baseline_rows == nullptr || !baseline_rows->is_array()) {
    violations.push_back(where + ": missing rows array");
    return;
  }
  if (current_rows->as_array().size() != baseline_rows->as_array().size()) {
    violations.push_back(
        where + ": row count changed (" +
        std::to_string(current_rows->as_array().size()) + " vs baseline " +
        std::to_string(baseline_rows->as_array().size()) +
        ") — was the run scaled differently than the baseline?");
    return;
  }
  for (std::size_t row = 0; row < current_rows->as_array().size(); ++row) {
    const Value& current_row = current_rows->as_array()[row];
    const Value& baseline_row = baseline_rows->as_array()[row];
    const std::string row_where = where + " row " + std::to_string(row);

    // Grid values must agree exactly-ish: a drifted axis means the scenario
    // definition changed and metric comparisons would be apples to oranges.
    const Value* current_values = current_row.find("values");
    const Value* baseline_values = baseline_row.find("values");
    if (current_values == nullptr || baseline_values == nullptr ||
        !current_values->is_array() || !baseline_values->is_array() ||
        current_values->as_array().size() !=
            baseline_values->as_array().size()) {
      violations.push_back(row_where + ": malformed grid values");
      continue;
    }
    bool grid_changed = false;
    for (std::size_t i = 0; i < current_values->as_array().size(); ++i) {
      const double a = current_values->as_array()[i].as_number();
      const double b = baseline_values->as_array()[i].as_number();
      if (std::fabs(a - b) > 1e-12 + 1e-9 * std::fabs(b)) {
        violations.push_back(row_where + ": grid value " + std::to_string(i) +
                             " changed (" + format_value(a) + " vs baseline " +
                             format_value(b) + ")");
        grid_changed = true;
      }
    }
    if (grid_changed) continue;

    const Value* current_metrics = current_row.find("metrics");
    const Value* baseline_metrics = baseline_row.find("metrics");
    if (current_metrics == nullptr || baseline_metrics == nullptr ||
        !current_metrics->is_array() || !baseline_metrics->is_array() ||
        current_metrics->as_array().size() !=
            baseline_metrics->as_array().size()) {
      violations.push_back(row_where + ": malformed metrics");
      continue;
    }
    for (std::size_t i = 0; i < current_metrics->as_array().size(); ++i) {
      const Value& current_cell = current_metrics->as_array()[i];
      const Value& baseline_cell = baseline_metrics->as_array()[i];
      // NaN/Inf serialize as null; treat null==null as agreement.
      if (current_cell.is_null() && baseline_cell.is_null()) continue;
      if (current_cell.is_null() != baseline_cell.is_null()) {
        violations.push_back(row_where + ": metric '" +
                             (i < metric_names.size() ? metric_names[i]
                                                      : std::to_string(i)) +
                             "' became " +
                             (current_cell.is_null() ? "non-finite" : "finite"));
        continue;
      }
      const double a = current_cell.as_number();
      const double b = baseline_cell.as_number();
      if (std::fabs(a - b) > options.atol + options.rtol * std::fabs(b)) {
        violations.push_back(
            row_where + ": metric '" +
            (i < metric_names.size() ? metric_names[i] : std::to_string(i)) +
            "' regressed: " + format_value(a) + " vs baseline " +
            format_value(b));
      }
    }
  }
}

}  // namespace

std::vector<std::string> diff_against_baseline(const Value& current,
                                               const Value& baseline,
                                               const BaselineOptions& options) {
  std::vector<std::string> violations;
  if (!current.is_object() || !baseline.is_object()) {
    violations.push_back("malformed result document (not a JSON object)");
    return violations;
  }

  const std::string id = string_field(current, "id");
  const std::string baseline_id = string_field(baseline, "id");
  if (id != baseline_id) {
    violations.push_back("scenario id mismatch: '" + id + "' vs baseline '" +
                         baseline_id + "'");
    return violations;
  }

  // Comparing runs at different scales is meaningless; catch it up front
  // with a clear message instead of a wall of per-row mismatches.
  const Value* current_scale = current.find("scale");
  const Value* baseline_scale = baseline.find("scale");
  if (current_scale != nullptr && baseline_scale != nullptr &&
      current_scale->is_number() && baseline_scale->is_number() &&
      std::fabs(current_scale->as_number() - baseline_scale->as_number()) >
          1e-12) {
    violations.push_back(
        id + ": scale mismatch (" + format_value(current_scale->as_number()) +
        " vs baseline " + format_value(baseline_scale->as_number()) +
        ") — rerun with P2PVOD_SCALE matching the baseline");
    return violations;
  }

  const Value* current_stages = current.find("stages");
  const Value* baseline_stages = baseline.find("stages");
  if (current_stages == nullptr || !current_stages->is_array() ||
      baseline_stages == nullptr || !baseline_stages->is_array()) {
    violations.push_back(id + ": missing stages array");
    return violations;
  }
  if (current_stages->as_array().size() != baseline_stages->as_array().size()) {
    violations.push_back(id + ": stage count changed (" +
                         std::to_string(current_stages->as_array().size()) +
                         " vs baseline " +
                         std::to_string(baseline_stages->as_array().size()) +
                         ")");
    return violations;
  }

  for (std::size_t s = 0; s < current_stages->as_array().size(); ++s) {
    const Value& current_stage = current_stages->as_array()[s];
    const Value& baseline_stage = baseline_stages->as_array()[s];
    const std::string stage_name = string_field(current_stage, "name");
    const std::string where = id + " stage '" + stage_name + "'";

    if (stage_name != string_field(baseline_stage, "name")) {
      violations.push_back(where + ": name changed (baseline '" +
                           string_field(baseline_stage, "name") + "')");
      continue;
    }
    const auto current_axes = name_list(current_stage, "axes");
    if (current_axes != name_list(baseline_stage, "axes")) {
      violations.push_back(where + ": axis names changed");
      continue;
    }
    const auto metric_names = name_list(current_stage, "metrics");
    if (metric_names != name_list(baseline_stage, "metrics")) {
      violations.push_back(where + ": metric names changed");
      continue;
    }
    diff_rows(where, current_stage, baseline_stage, metric_names, options,
              violations);
  }

  if (options.wall_factor > 0.0) {
    const Value* current_wall = current.find("wall_seconds");
    const Value* baseline_wall = baseline.find("wall_seconds");
    if (current_wall != nullptr && baseline_wall != nullptr &&
        current_wall->is_number() && baseline_wall->is_number()) {
      const double wall = current_wall->as_number();
      const double budget = baseline_wall->as_number() * options.wall_factor +
                            options.wall_slack;
      if (wall > budget) {
        std::ostringstream message;
        message << id << ": wall time regressed: " << format_value(wall)
                << "s vs baseline " << format_value(baseline_wall->as_number())
                << "s (budget " << format_value(budget) << "s = baseline * "
                << format_value(options.wall_factor) << " + "
                << format_value(options.wall_slack) << "s)";
        violations.push_back(message.str());
      }
    }
  }

  return violations;
}

std::vector<std::string> diff_against_baseline_file(
    const Value& current, const std::string& baseline_path,
    const BaselineOptions& options) {
  try {
    return diff_against_baseline(current, util::json::parse_file(baseline_path),
                                 options);
  } catch (const std::exception& error) {
    return {std::string("cannot load baseline ") + baseline_path + ": " +
            error.what()};
  }
}

}  // namespace p2pvod::scenario
