#include "scenario/sink.hpp"

#include <iostream>

#include "util/cli.hpp"

namespace p2pvod::scenario {

void TableSink::on_banner(const Scenario& scenario) {
  // Byte-identical to the legacy bench::banner() block.
  out_ << "#\n# " << scenario.title << " — " << scenario.claim << "\n"
       << "# (scale trials/sizes with P2PVOD_SCALE=<factor>; set "
          "P2PVOD_CSV_DIR to also write CSV series)\n#\n";
}

void TableSink::on_table(const Scenario& /*scenario*/, const util::Table& table,
                         const std::string& /*table_id*/) {
  table.print(out_);
}

void TableSink::on_text(const Scenario& /*scenario*/, const std::string& text) {
  out_ << text;
}

CsvSink::CsvSink(std::string dir, std::ostream* notice)
    : dir_(std::move(dir)), notice_(notice == nullptr ? &std::cout : notice) {}

void CsvSink::on_table(const Scenario& /*scenario*/, const util::Table& table,
                       const std::string& table_id) {
  const std::string path = dir_ + "/" + table_id + ".csv";
  try {
    table.write_csv(path);
    *notice_ << "[csv] " << path << "\n";
  } catch (const std::exception& error) {
    ++failures_;
    std::cerr << "[csv] failed: " << error.what() << "\n";
  }
}

util::json::Value run_to_json(const Scenario& scenario, const ScenarioRun& run,
                              double wall_seconds) {
  using util::json::Value;
  Value doc{Value::Object{}};
  doc.set("schema", "p2pvod-bench-v1");
  doc.set("id", scenario.id);
  doc.set("figure", scenario.figure);
  doc.set("title", scenario.title);
  doc.set("claim", scenario.claim);
  doc.set("scale", util::bench_scale());
  doc.set("wall_seconds", wall_seconds);

  Value::Array stages;
  for (const StageResult& stage : run.stages) {
    Value entry{Value::Object{}};
    entry.set("name", stage.name);
    // Informational: the baseline diff never compares per-stage or per-point
    // timing, so these fields can drift freely between machines.
    entry.set("wall_seconds", stage.seconds);

    Value::Array axes;
    for (const std::string& axis : stage.result.axis_names())
      axes.emplace_back(axis);
    entry.set("axes", std::move(axes));

    Value::Array metrics;
    for (const std::string& metric : stage.result.metric_names())
      metrics.emplace_back(metric);
    entry.set("metrics", std::move(metrics));

    Value::Array rows;
    for (const auto& row : stage.result.rows()) {
      Value row_entry{Value::Object{}};
      Value::Array values;
      for (const double value : row.point.values) values.emplace_back(value);
      row_entry.set("values", std::move(values));
      Value::Array row_metrics;
      for (const double value : row.metrics) row_metrics.emplace_back(value);
      row_entry.set("metrics", std::move(row_metrics));
      row_entry.set("wall_seconds", row.seconds);
      rows.push_back(std::move(row_entry));
    }
    entry.set("rows", std::move(rows));
    stages.push_back(std::move(entry));
  }
  doc.set("stages", std::move(stages));
  // Informational: the baseline differ compares only the keys it knows, so
  // this extra top-level block never breaks an old baseline.
  if (run.metrics.has_value()) doc.set("metrics", run.metrics->to_json());
  return doc;
}

JsonSink::JsonSink(std::string dir, std::ostream* notice)
    : dir_(std::move(dir)), notice_(notice) {}

void JsonSink::on_complete(const Scenario& scenario, const ScenarioRun& run,
                           double wall_seconds) {
  const std::string path = dir_ + "/BENCH_" + scenario.id + ".json";
  try {
    util::json::write_file(path, run_to_json(scenario, run, wall_seconds));
    written_.push_back(path);
    if (notice_ != nullptr) *notice_ << "[json] " << path << "\n";
  } catch (const std::exception& error) {
    ++failures_;
    std::cerr << "[json] failed: " << error.what() << "\n";
  }
}

void CaptureSink::on_complete(const Scenario& scenario, const ScenarioRun& run,
                              double wall_seconds) {
  document_ = run_to_json(scenario, run, wall_seconds);
}

void Emitter::table(const util::Table& table, const std::string& table_id) {
  for (ResultSink* sink : sinks_) sink->on_table(scenario_, table, table_id);
}

void Emitter::text(const std::string& text) {
  for (ResultSink* sink : sinks_) sink->on_text(scenario_, text);
}

void Emitter::banner() {
  for (ResultSink* sink : sinks_) sink->on_banner(scenario_);
}

void Emitter::complete(const ScenarioRun& run, double wall_seconds) {
  for (ResultSink* sink : sinks_) {
    sink->on_complete(scenario_, run, wall_seconds);
  }
}

}  // namespace p2pvod::scenario
