// Executes a Scenario: stages on the SweepRunner, results through the sinks.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/sink.hpp"
#include "sweep/sweep_runner.hpp"

namespace p2pvod::scenario {

struct RunOptions {
  /// Pool/seed for the stage sweeps. options.sweep.pool == nullptr selects
  /// the global pool (P2PVOD_THREADS). Point functions that pin their own
  /// seeds (every paper figure does, to reproduce published data) ignore the
  /// base seed.
  sweep::SweepOptions sweep;
  /// Snapshot the obs::MetricsRegistry around the run and attach the delta
  /// to ScenarioRun::metrics (and thence BENCH_<id>.json).
  bool collect_metrics = false;
  /// When non-empty, record a TraceSession for the run and write
  /// <trace_dir>/TRACE_<id>.json in Chrome trace-event format.
  std::string trace_dir;
  /// When non-empty, aggregate the run's spans into a call-tree profile and
  /// write <profile_dir>/PROFILE_<id>.{json,collapsed}. Shares one
  /// TraceSession with trace_dir when both are set.
  std::string profile_dir;
  /// When non-empty, record per-round metric deltas (obs::RoundSeries) and
  /// write <series_dir>/SERIES_<id>.{csv,json}.
  std::string series_dir;
};

/// Apply the observability environment knobs to `options`: P2PVOD_METRICS
/// (set and != "0" enables collect_metrics), and the artifact directories
/// P2PVOD_TRACE / P2PVOD_PROFILE / P2PVOD_SERIES. Command-line flags should
/// be applied after this so they win over the environment.
void apply_obs_env(RunOptions& options);

/// Run one scenario: banner event, plan(), each stage on the SweepRunner,
/// render, completion event. Returns the wall time in seconds (covering
/// plan + stages + render). Exceptions from stage evaluation propagate.
double run_scenario(const Scenario& scenario,
                    const std::vector<ResultSink*>& sinks,
                    const RunOptions& options = {});

/// Entry point shared by the legacy per-figure shim binaries: run builtin
/// scenario `id` with the stdout table sink (plus a CSV sink when
/// P2PVOD_CSV_DIR is set) and map exceptions to a non-zero exit code.
int run_figure_main(const std::string& id);

}  // namespace p2pvod::scenario
