// E7 — heterogeneous systems and upload compensation (§4, Theorem 2).
//
// Two-class fleets (poor u=0.5 boxes + rich boxes) with a growing poor
// fraction, compared under the Section 4 relay compensation and under plain
// preloading. Each poor-fraction row is an independent grid point; fleet
// seeds pinned to 0xE700 + trial as in the serial harness.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/demand.hpp"

namespace p2pvod::scenario {

namespace {

// The Section 4 lower-bound scenario, verbatim: "all rich boxes watch a video
// they do not possess and poor boxes start to play the same video v at
// maximum growth rate". Rich boxes binge distinct videos != v (consuming the
// fleet's sourcing capacity); poor boxes flood v at growth µ.
class Section4Adversary final : public workload::DemandGenerator {
 public:
  Section4Adversary(std::uint32_t poor_count, double mu)
      : poor_count_(poor_count), mu_(mu) {}

  std::vector<sim::Demand> demands(const sim::Simulator& sim) override {
    std::vector<sim::Demand> out;
    const std::uint32_t n = sim.profile().size();
    const std::uint32_t m = sim.catalog().video_count();
    // Rich boxes (ids >= poor_count): distinct videos, never video 0.
    for (model::BoxId b = poor_count_; b < n; ++b) {
      if (!sim.box_idle(b)) continue;
      if (m <= 1) break;
      out.push_back(
          {b, static_cast<model::VideoId>(1 + (b + epoch_) % (m - 1))});
    }
    ++epoch_;
    // Poor boxes: flood video 0 at maximal growth.
    const std::uint32_t f = sim.swarms().size(0);
    const double target = std::ceil(std::max<double>(f, 1.0) * mu_);
    std::uint32_t joins =
        target <= f ? 0u : static_cast<std::uint32_t>(target) - f;
    for (model::BoxId b = 0; b < poor_count_ && joins > 0; ++b) {
      if (!sim.box_idle(b)) continue;
      out.push_back({b, 0});
      --joins;
    }
    return out;
  }
  std::string name() const override { return "section4-adversary"; }

 private:
  std::uint32_t poor_count_;
  double mu_;
  std::uint64_t epoch_ = 0;
};

struct FleetOutcome {
  bool comp_feasible = true;
  double success_rate = 0.0;
  double continuity = 0.0;
};

FleetOutcome run_fleet(const model::CapacityProfile& profile,
                       std::uint32_t poor_count, bool compensated,
                       double u_star, double mu, std::uint32_t trials) {
  const std::uint32_t c = 16, k = 6;
  const auto m = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(profile.average_storage() *
                                    profile.size() / (2.0 * k)));
  const model::Catalog catalog(m, c, 20);

  FleetOutcome out;
  std::uint32_t wins = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    util::Rng rng(0xE700 + t);
    const auto allocation =
        alloc::PermutationAllocator().allocate(catalog, profile, k, rng);

    std::unique_ptr<sim::RequestStrategy> strategy;
    sim::SimulatorOptions options;
    options.strict = false;  // measure continuity, not just pass/fail
    std::optional<hetero::CompensationPlan> plan;
    if (compensated) {
      plan = hetero::Compensator::plan(profile, u_star, c, mu);
      if (!plan) {
        out.comp_feasible = false;
        return out;
      }
      strategy = std::make_unique<hetero::RelayStrategy>(*plan);
      options.capacity_override = plan->capacity_slots();
    } else {
      strategy = sim::make_strategy(sim::StrategyKind::kPreloading);
    }
    sim::Simulator simulator(catalog, profile, allocation, *strategy,
                             options);
    Section4Adversary adversary(poor_count, mu);
    const auto report = simulator.run(adversary, 60);
    if (report.chunks_stalled == 0) ++wins;
    out.continuity += report.continuity();
  }
  out.success_rate = static_cast<double>(wins) / trials;
  out.continuity /= trials;
  return out;
}

constexpr double kMu = 2.0;

}  // namespace

Scenario make_hetero_scenario() {
  Scenario scenario;
  scenario.id = "hetero";
  scenario.figure = "E7";
  scenario.title = "E7 / heterogeneous figure";
  scenario.claim =
      "poor-box flash crowd: Section 4 relay compensation vs none";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(48, 24);
    const std::uint32_t trials = util::scaled_count(4, 2);
    const double u_star = 1.5;

    sweep::ParameterGrid grid;
    grid.free_axis("frac", {0.15, 0.3, 0.45, 0.6, 0.8, 0.9, 0.95});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"u_avg", "deficit", "condition", "comp_feasible", "relay_success",
          "relay_continuity", "nocomp_success", "nocomp_continuity"},
         [n, trials, u_star](const sweep::GridPoint& point,
                             std::uint64_t /*seed*/) {
           const double frac = point.values[0];
           const auto poor = static_cast<std::uint32_t>(frac * n);
           const auto profile = model::CapacityProfile::two_class(
               n, poor, 0.5, 1.5, 4.0, 12.0);
           const double deficit =
               profile.upload_deficit(1.0) / static_cast<double>(n);
           const bool condition = profile.average_upload() > 1.0 + deficit;

           const auto with =
               run_fleet(profile, poor, true, u_star, kMu, trials);
           const auto without =
               run_fleet(profile, poor, false, u_star, kMu, trials);
           return std::vector<double>{profile.average_upload(),
                                      deficit,
                                      condition ? 1.0 : 0.0,
                                      with.comp_feasible ? 1.0 : 0.0,
                                      with.success_rate,
                                      with.continuity,
                                      without.success_rate,
                                      without.continuity};
         }});

    plan.render = [](const ScenarioRun& run, Emitter& out) {
      util::Table table(
          "two-class fleet under the Section 4 adversary: rich boxes binge "
          "distinct videos, poor boxes flood video 0 at growth mu");
      table.set_header({"poor frac", "mu", "u avg", "Delta(1)/n", "u>1+D/n?",
                        "comp feasible", "relay success", "relay continuity",
                        "no-comp success", "no-comp continuity"});
      for (const auto& row : run.stage(0).rows()) {
        const bool comp_feasible = row.metrics[3] != 0.0;
        table.begin_row()
            .cell(row.point.values[0])
            .cell(kMu)
            .cell(row.metrics[0], 3)
            .cell(row.metrics[1], 3)
            .cell(row.metrics[2] != 0.0)
            .cell(comp_feasible)
            .cell(comp_feasible
                      ? util::Table::format_double(row.metrics[4], 2)
                      : std::string("-"))
            .cell(comp_feasible
                      ? util::Table::format_double(row.metrics[5], 4)
                      : std::string("-"))
            .cell(row.metrics[6], 2)
            .cell(row.metrics[7], 4);
      }
      out.table(table, "E7_hetero");
      out.text(
          "\nExpected shape, three regimes:\n"
          "  1. comp feasible (poor frac <= ~0.5): the relay system gives "
          "full service\n     despite statically reserving upload — the "
          "guarantee costs nothing here.\n"
          "  2. comp infeasible but u comfortably above 1 + Delta(1)/n: the "
          "plain strategy\n     still rides the aggregate headroom (the "
          "Section 4 bound is about worst-case\n     sequences, which this "
          "adversary approximates only at the margin).\n"
          "  3. deficit regime (poor frac >= ~0.9, u < 1 + Delta(1)/n, "
          "eventually u < 1):\n     the uncompensated fleet collapses — the "
          "necessary condition of Section 4.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
