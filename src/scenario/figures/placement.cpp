// E17 (extension, not in the paper) — demand-aware replica placement vs the
// cross-zone floor.
//
// E14/E15 established that a min-cost matcher pins cross-zone traffic near a
// structural floor: the requests whose stripe has no replica in the local
// zone at all. That floor is a *placement* property — no matcher can undo
// it. This scenario ablates placement scheme × matching mode on the E15
// protocol point, run at 12 zones — with zones > k a stripe cannot live in
// every zone, so placement has to pick which zones get which content (at
// E15's 4 zones any k=6 striping covers everything and the floor is zero
// for every scheme): round-robin (context-blind baseline) against the three
// demand-aware schemes (demand-proportional counts, zone-local-first
// pinning, lp-greedy coverage maximization), each run cost-blind, min-cost,
// and min-cost + link caps. Demand-aware placement lowers the floor itself
// — fewer cross-zone chunks at the same u. Under link caps the picture
// splits: demand-proportional keeps the floor low while spreading the
// residual cross traffic over many links, but the zone-pinning schemes
// concentrate it onto few links and stall. A second stage bounds the
// admission+rescue heuristic's loss against the exact cap-constrained
// matching (flow::min_cost_capped_brute_force) on small synthetic rounds.
// Seeds 0xE1700/0xE17AA + trial; exact-gap instances 0xE17B0 + case.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flow/bipartite.hpp"
#include "flow/min_cost.hpp"
#include "scenario/figures.hpp"
#include "scenario/figures/zones_common.hpp"
#include "scenario/sink.hpp"
#include "sim/report.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

namespace {

// Axis order matters for the table layout: scheme slowest, u fastest.
const std::vector<double> kSchemes = {0, 1, 2, 3};
const std::vector<double> kUploads = {0.75, 1.00, 1.50, 3.00};
constexpr std::uint32_t kCap = 3;  // E15's moderate per-link cap

alloc::Scheme scheme_of(double axis) {
  switch (static_cast<std::uint32_t>(axis)) {
    case 0:
      return alloc::Scheme::kRoundRobin;
    case 1:
      return alloc::Scheme::kDemandProportional;
    case 2:
      return alloc::Scheme::kZoneLocalFirst;
    default:
      return alloc::Scheme::kLpGreedy;
  }
}

struct PlacementOutcome {
  double blind = 0.0;    ///< cross-zone share, cost-blind matching
  double mincost = 0.0;  ///< cross-zone share, min-cost matching
  double xchunks = 0.0;  ///< mean cross-zone chunks per trial (min-cost)
  double success = 0.0;  ///< strict success fraction under link caps
  double rescues = 0.0;  ///< mean pass-2 rescues per trial under link caps
};

PlacementOutcome run_placement(std::uint32_t n, std::uint32_t zones,
                               alloc::Scheme scheme, double u,
                               std::uint32_t trials) {
  const auto allocator = alloc::make_allocator(scheme);
  const std::vector<double> forecast = zone_family_forecast(n);

  const auto blind_topology = zone_family_topology(n, zones, 0);
  const auto costed_topology = zone_family_topology(n, zones, 1);
  auto capped_topology = zone_family_topology(n, zones, 1);
  capped_topology.set_uniform_link_cap(kCap);

  // All three soaks of a trial share seeds, so they see the same placement
  // and demand sequence; only the matcher's cost/cap view differs.
  const auto soak = [&](const net::Topology& topology, double upload,
                        bool strict, std::uint32_t t) {
    alloc::PlacementContext context;
    context.topology = &topology;
    context.demand = forecast;
    return zone_family_soak(n, upload, topology, strict, /*rounds=*/48,
                            0xE1700 + t, 0xE17AA + t, *allocator, context);
  };

  PlacementOutcome out;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto blind = soak(blind_topology, u, /*strict=*/false, t);
    const auto costed = soak(costed_topology, u, /*strict=*/false, t);
    const auto capped = soak(capped_topology, u, /*strict=*/true, t);
    out.blind += blind.cross_zone_fraction.count() > 0
                     ? blind.cross_zone_fraction.mean()
                     : 0.0;
    out.mincost += costed.cross_zone_fraction.count() > 0
                       ? costed.cross_zone_fraction.mean()
                       : 0.0;
    out.xchunks += static_cast<double>(costed.cross_zone_chunks);
    if (capped.success) out.success += 1.0;
    out.rescues += static_cast<double>(capped.link_cap_rescues);
  }
  out.blind /= trials;
  out.mincost /= trials;
  out.xchunks /= trials;
  out.success /= trials;
  out.rescues /= trials;
  return out;
}

/// One small synthetic capped round: 6 boxes in 2 zones (box b in zone b%2),
/// every link scarce (intra capped at 2, cross at 1); candidates drawn
/// from a seeded Rng so every case is a different shape. Returns
/// {admission-only served, admission+rescue served, exact capped served}.
std::vector<double> run_exact_gap(std::uint32_t index) {
  constexpr std::uint32_t kBoxes = 6;
  constexpr std::uint32_t kZones = 2;
  util::Rng rng(0xE17B0 + index);

  flow::ConnectionProblem problem(kBoxes);
  for (std::uint32_t b = 0; b < kBoxes; ++b) problem.set_capacity(b, 2);
  const auto requests =
      static_cast<std::uint32_t>(5 + rng.next_below(3));  // 5..7
  flow::EdgeCosts costs(requests);
  flow::EdgeGroups groups(requests);
  for (std::uint32_t r = 0; r < requests; ++r) {
    const std::uint32_t zone = r % kZones;
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t b = 0; b < kBoxes; ++b) {
      if (rng.next_bool(0.5)) candidates.push_back(b);
    }
    if (candidates.empty())
      candidates.push_back(static_cast<std::uint32_t>(rng.next_below(kBoxes)));
    for (const std::uint32_t b : candidates) {
      const std::uint32_t from = b % kZones;
      costs[r].push_back(from == zone ? 0 : 1);
      groups[r].push_back(from * kZones + zone);
    }
    problem.add_request(std::move(candidates));
  }
  // Every link is scarce: intra links capped at 2, cross links at 1. The
  // min-cost matcher loads the free-looking intra links first, so admission
  // drops, rescues, and a residual heuristic-vs-exact gap all show up.
  std::vector<std::uint32_t> caps(kZones * kZones, 2);
  caps[0 * kZones + 1] = 1;
  caps[1 * kZones + 0] = 1;

  flow::MatchResult heuristic = flow::MinCostMatcher::solve(problem, costs).match;
  const flow::GroupCapOutcome outcome =
      flow::enforce_group_caps(problem, costs, groups, caps, heuristic);
  const auto exact = flow::min_cost_capped_brute_force(problem, costs, groups,
                                                       caps);
  return {static_cast<double>(heuristic.served - outcome.rescues),
          static_cast<double>(heuristic.served),
          static_cast<double>(exact.match.served)};
}

const char* scheme_label(double axis) {
  return alloc::scheme_name(scheme_of(axis));
}

}  // namespace

Scenario make_placement_scenario() {
  Scenario scenario;
  scenario.id = "placement";
  scenario.figure = "E17";
  scenario.title = "E17 / demand-aware placement figure (extension)";
  scenario.claim = "demand-aware placement lowers the cross-zone floor";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(48, 24);
    const std::uint32_t trials = util::scaled_count(4, 2);
    // Placement only matters when zones outnumber k: with zones <= k = 6,
    // round-robin's consecutive replicas already cover every zone and the
    // floor is zero for everyone. E14/E15 run 4 zones; this figure runs 12
    // so that context-blind striping covers only half the zones and the
    // schemes have something to decide.
    const std::uint32_t zones = zones_from_env(12, n);
    const std::uint32_t gap_cases = 6;

    sweep::ParameterGrid grid;
    grid.free_axis("scheme", kSchemes).free_axis("u", kUploads);

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"blind", "mincost", "xchunks", "success", "rescues"},
         [n, zones, trials](const sweep::GridPoint& point,
                            std::uint64_t /*seed*/) {
           const auto outcome = run_placement(
               n, zones, scheme_of(point.values[0]), point.values[1], trials);
           return std::vector<double>{outcome.blind, outcome.mincost,
                                      outcome.xchunks, outcome.success,
                                      outcome.rescues};
         }});

    sweep::ParameterGrid gap_grid;
    std::vector<double> cases(gap_cases);
    for (std::uint32_t i = 0; i < gap_cases; ++i) cases[i] = i;
    gap_grid.free_axis("case", cases);
    plan.stages.push_back(
        {"exactgap", std::move(gap_grid),
         {"admit", "heuristic", "exact"},
         [](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           return run_exact_gap(static_cast<std::uint32_t>(point.values[0]));
         }});

    plan.render = [n, zones, trials, gap_cases](const ScenarioRun& run,
                                                Emitter& out) {
      const std::size_t u_count = kUploads.size();

      util::Table floor_table(
          "cross-zone chunks under min-cost matching, n=" + std::to_string(n) +
          ", zones=" + std::to_string(zones) + ", 48-round Zipf soak (" +
          std::to_string(trials) + " seeds); placement sets the floor");
      std::vector<std::string> header{"u"};
      for (const double s : kSchemes)
        header.push_back(scheme_label(s));
      floor_table.set_header(header);
      for (std::size_t ui = 0; ui < u_count; ++ui) {
        floor_table.begin_row().cell(kUploads[ui]);
        for (std::size_t si = 0; si < kSchemes.size(); ++si) {
          floor_table.cell(run.stage(0).row(si * u_count + ui).metrics[2], 6);
        }
      }
      out.table(floor_table, "E17_floor");

      util::Table cap_table(
          "strict success fraction with per-link cap " + std::to_string(kCap) +
          " (same trials); spreading cross traffic beats pinning it");
      cap_table.set_header(header);
      for (std::size_t ui = 0; ui < u_count; ++ui) {
        cap_table.begin_row().cell(kUploads[ui]);
        for (std::size_t si = 0; si < kSchemes.size(); ++si) {
          cap_table.cell(run.stage(0).row(si * u_count + ui).metrics[3], 3);
        }
      }
      out.table(cap_table, "E17_capped");

      util::Table gap_table(
          "admission+rescue heuristic vs exact cap-constrained matching on " +
          std::to_string(gap_cases) +
          " small synthetic rounds (2 zones, intra links capped at 2, cross "
          "at 1)");
      gap_table.set_header({"case", "admission only", "with rescue", "exact"});
      for (std::uint32_t i = 0; i < gap_cases; ++i) {
        const auto& row = run.stage(1).row(i);
        gap_table.begin_row().cell(static_cast<double>(i));
        gap_table.cell(row.metrics[0], 0);
        gap_table.cell(row.metrics[1], 0);
        gap_table.cell(row.metrics[2], 0);
      }
      out.table(gap_table, "E17_exactgap");

      out.text("\nExpected shape: with zones > k, round-robin covers only k "
               "of the zones per\nstripe, and the popular-video requests the "
               "other zones cannot serve locally set\na high cross-zone "
               "floor. The demand-aware schemes give popular videos "
               "replicas\nin (nearly) every zone and lower the floor. Under "
               "link caps the floor is not\nthe whole story: "
               "demand-proportional spreads its residual cross traffic "
               "over\nmany links and keeps strict success, while the "
               "zone-pinning schemes concentrate\ntail-video replicas into "
               "few zones, saturate those links, and stall. The\nexact-gap "
               "table bounds the two-pass heuristic: admission only <= with "
               "rescue <=\nexact, and the exact column upper-bounds what any "
               "cap-respecting matcher could\nhave served.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
