// E4 — the replication factor k (Theorem 1).
//
// Theorem 1 prescribes k >= 5ν⁻¹ log d′ / log u′ replicas per stripe. The
// scenario tabulates, per u: the theorem's k, the first-moment numeric k
// (smallest k whose union bound drops below 1%), and the empirical minimum
// k surviving the simulated adversarial suite. Each u is an independent grid
// point; Calibrator seeds pinned to 0xE4 as in the serial harness.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/first_moment.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

Scenario make_replication_scenario() {
  Scenario scenario;
  scenario.id = "replication";
  scenario.figure = "E4";
  scenario.title = "E4 / replication figure";
  scenario.claim = "replicas per stripe: Theorem 1 vs union bound vs measured";
  scenario.plan = [] {
    const std::uint32_t trials = util::scaled_count(4, 2);
    const std::uint32_t n = util::scaled_count(48, 24);
    const double d = 4.0;
    const double mu = 1.2;

    sweep::ParameterGrid grid;
    grid.free_axis("u", {1.25, 1.5, 2.0, 3.0});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"c", "thm_valid", "thm_k", "union_k", "measured_k",
          "measured_catalog"},
         [trials, n, d, mu](const sweep::GridPoint& point,
                            std::uint64_t /*seed*/) {
           const double u = point.values[0];
           const auto bounds = analysis::Theorem1::evaluate({u, d, mu});
           analysis::FirstMomentParams fm;
           fm.n = n;
           fm.c = bounds.c;
           fm.u = u;
           fm.d = d;
           fm.mu = mu;
           const auto k_union = analysis::FirstMoment::min_k_for_bound(
               fm, 0.01, 1, static_cast<std::uint32_t>(d * n));

           analysis::TrialSpec spec;
           spec.n = n;
           spec.u = u;
           spec.d = d;
           spec.mu = mu;
           spec.c = std::min<std::uint32_t>(bounds.c, 8);  // keep runtime sane
           spec.duration = 10;
           spec.rounds = 30;
           spec.suite = analysis::WorkloadSuite::kFull;
           // Speculative probing degrades to the exact sequential search
           // inside a sweep worker, and returns identical results either
           // way, so the figure stays byte-stable.
           const auto measured =
               analysis::Calibrator::min_feasible_k_speculative(
                   spec, 1, static_cast<std::uint32_t>(d * n / 2), 1.0, trials,
                   0xE4);

           return std::vector<double>{static_cast<double>(bounds.c),
                                      bounds.valid ? 1.0 : 0.0,
                                      static_cast<double>(bounds.k),
                                      static_cast<double>(k_union),
                                      static_cast<double>(measured.k),
                                      static_cast<double>(measured.catalog)};
         }});

    const std::uint32_t n_title = n;
    plan.render = [n_title](const ScenarioRun& run, Emitter& out) {
      util::Table table("k required at n=" + std::to_string(n_title) +
                        ", d=4, mu=1.2 (c fixed per row at Theorem 1's choice)");
      table.set_header({"u", "c", "Thm1 k", "union-bound k (P<1%)",
                        "measured min k", "catalog m at measured k"});
      for (const auto& row : run.stage(0).rows()) {
        const auto thm_k = static_cast<std::uint32_t>(row.metrics[2]);
        const auto union_k = static_cast<std::uint32_t>(row.metrics[3]);
        const auto measured_k = static_cast<std::uint32_t>(row.metrics[4]);
        table.begin_row()
            .cell(row.point.values[0])
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[1] != 0.0 ? std::to_string(thm_k)
                                        : std::string("-"))
            .cell(union_k == 0 ? std::string("> d*n")
                               : std::to_string(union_k))
            .cell(measured_k == 0 ? std::string("-")
                                  : std::to_string(measured_k))
            .cell(static_cast<std::uint64_t>(row.metrics[5]));
      }
      out.table(table, "E4_replication");
      out.text("\nExpected shape: theory k >> union-bound k >> measured k "
               "(each layer sheds\nworst-case slack), and every column "
               "shrinks as u grows away from the threshold.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
