// E3 — catalog scalability (abstract, §1.3 vs Theorem 1).
//
// For u > 1 the maximum feasible catalog must grow linearly with n (Theorem
// 1: m = Ω(n)); for u < 1 it is pinned at the constant d_max·c = d_max/ℓ
// (§1.3). Each of the 8 binary searches is an independent grid point with
// seeds pinned to 0xE3, matching the original serial harness.
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/calibrate.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

Scenario make_catalog_scaling_scenario() {
  Scenario scenario;
  scenario.id = "catalog_scaling";
  scenario.figure = "E3";
  scenario.title = "E3 / catalog scaling figure";
  scenario.claim =
      "max feasible catalog vs n: linear above u=1, constant below";
  scenario.plan = [] {
    const std::uint32_t trials = util::scaled_count(4, 2);
    analysis::TrialSpec base;
    base.d = 4.0;
    base.mu = 1.3;
    base.c = 4;
    base.duration = 10;
    base.rounds = 30;
    base.suite = analysis::WorkloadSuite::kFull;

    const std::vector<double> n_values = {
        16, 32, 64, static_cast<double>(util::scaled_count(128, 96))};
    sweep::ParameterGrid grid(base);
    grid.axis("n", n_values).axis("u", {1.5, 0.75});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"max_m", "k"},
         [trials](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const auto found = analysis::Calibrator::max_catalog_speculative(
               point.spec, 1.0, trials, 0xE3);
           return std::vector<double>{static_cast<double>(found.m),
                                      static_cast<double>(found.k)};
         }});

    const double d = base.d;
    const std::uint32_t c = base.c;
    plan.render = [trials, n_values, d, c](const ScenarioRun& run,
                                           Emitter& out) {
      util::Table table("empirical max catalog (binary search, full suite, " +
                        std::to_string(trials) + " seeds/point)");
      table.set_header({"n", "u=1.5: max m", "m/n", "k used", "u=0.75: max m",
                        "Sec1.3 limit d*c"});
      const auto limit = static_cast<std::uint32_t>(d * c);
      for (std::size_t ni = 0; ni < n_values.size(); ++ni) {
        // Row-major grid: point 2*ni is u=1.5, point 2*ni+1 is u=0.75.
        const auto& scalable = run.stage(0).row(2 * ni);
        const auto& starved = run.stage(0).row(2 * ni + 1);
        const auto n = static_cast<std::uint32_t>(n_values[ni]);
        table.begin_row()
            .cell(static_cast<std::uint64_t>(n))
            .cell(static_cast<std::uint64_t>(scalable.metrics[0]))
            .cell(n == 0 ? 0.0 : scalable.metrics[0] / n, 3)
            .cell(static_cast<std::uint64_t>(scalable.metrics[1]))
            .cell(static_cast<std::uint64_t>(starved.metrics[0]))
            .cell(static_cast<std::uint64_t>(limit));
      }
      out.table(table, "E3_catalog_scaling");
      out.text("\nExpected shape: the u=1.5 column grows ~linearly in n "
               "(m/n roughly constant);\nthe u=0.75 column stays below the "
               "Section 1.3 constant d*c regardless of n.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
