// E11 — random allocation vs the full-replication baseline (Suh et al. [22]).
//
// The baseline stores a 1/c slice of every video on every box: it survives
// even u < 1 but its catalog is pinned at d·c regardless of n; the paper's
// random allocation needs u > 1 but scales the catalog linearly in n. Each n
// is an independent grid point with the serial harness's n-derived seeds.
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/full_replication.hpp"
#include "alloc/permutation.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"

namespace p2pvod::scenario {

namespace {

bool binge_survives(const model::Catalog& catalog,
                    const model::CapacityProfile& profile,
                    const alloc::Allocation& allocation, std::uint64_t seed) {
  sim::PreloadingStrategy strategy;
  sim::Simulator simulator(catalog, profile, allocation, strategy);
  workload::SequentialViewer viewers(seed, 0.3);
  workload::GrowthLimiter limited(viewers, 1.3);
  return simulator.run(limited, 48).success;
}

}  // namespace

Scenario make_baseline_scenario() {
  Scenario scenario;
  scenario.id = "baseline";
  scenario.figure = "E11";
  scenario.title = "E11 / baseline figure";
  scenario.claim =
      "catalog: full replication (constant) vs random (linear in n)";
  scenario.plan = [] {
    const double d = 4.0;
    const std::uint32_t c = 4, k = 6;

    sweep::ParameterGrid grid;
    grid.free_axis("n", {16, 32, 64,
                         static_cast<double>(util::scaled_count(128, 96))});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"fullrep_m", "fullrep_survives", "random_m", "random_survives"},
         [d, c, k](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const auto n = static_cast<std::uint32_t>(point.values[0]);
           std::vector<double> metrics;
           // Full replication: m = d*c, works below the threshold.
           {
             const auto profile =
                 model::CapacityProfile::homogeneous(n, 0.75, d);
             const auto m =
                 alloc::FullReplicationAllocator::max_catalog(profile, c);
             const model::Catalog catalog(m, c, 12);
             util::Rng rng(0xE1100 + n);
             const auto allocation = alloc::FullReplicationAllocator().allocate(
                 catalog, profile, 1, rng);
             metrics.push_back(static_cast<double>(m));
             metrics.push_back(
                 binge_survives(catalog, profile, allocation, 0xE11A + n)
                     ? 1.0
                     : 0.0);
           }
           // Random permutation allocation: m = d*n/k, needs u > 1.
           {
             const auto profile =
                 model::CapacityProfile::homogeneous(n, 1.5, d);
             const auto m = static_cast<std::uint32_t>(d * n / k);
             const model::Catalog catalog(m, c, 12);
             util::Rng rng(0xE1200 + n);
             const auto allocation = alloc::PermutationAllocator().allocate(
                 catalog, profile, k, rng);
             metrics.push_back(static_cast<double>(m));
             metrics.push_back(
                 binge_survives(catalog, profile, allocation, 0xE11B + n)
                     ? 1.0
                     : 0.0);
           }
           return metrics;
         }});

    plan.render = [](const ScenarioRun& run, Emitter& out) {
      util::Table table("catalog size and survival (binge workload, mu=1.3)");
      table.set_header({"n", "scheme", "u", "catalog m", "m/n", "survives"});
      for (const auto& row : run.stage(0).rows()) {
        const auto n = static_cast<std::uint32_t>(row.point.values[0]);
        table.begin_row()
            .cell(static_cast<std::uint64_t>(n))
            .cell("full-replication [22]")
            .cell(0.75)
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[0] / n, 3)
            .cell(row.metrics[1] != 0.0);
        table.begin_row()
            .cell(static_cast<std::uint64_t>(n))
            .cell("random permutation")
            .cell(1.5)
            .cell(static_cast<std::uint64_t>(row.metrics[2]))
            .cell(row.metrics[2] / n, 3)
            .cell(row.metrics[3] != 0.0);
      }
      out.table(table, "E11_baseline");
      out.text("\nExpected shape: the baseline's catalog column is constant "
               "(d*c, independent of\nn) while the random allocation's grows "
               "linearly (m/n constant); both survive\ntheir respective "
               "operating points.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
