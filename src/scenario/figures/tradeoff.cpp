// E8 — the video-quality / catalog-size trade-off (Conclusion).
//
// "For higher video bit-rate, we obtain better quality, but the normalized
// upload u tends to 1 and our lower bound on catalog size tends to 0
// proportionally to (u−1)² log((u+1)/2) ~ (u−1)³."
//
// The closed-form table is a cheap sequential recurrence (each exponent uses
// the previous row) computed at render time; the empirical binary searches
// run as parallel grid points with seeds pinned to 0xE8.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/calibrate.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

Scenario make_tradeoff_scenario() {
  Scenario scenario;
  scenario.id = "tradeoff";
  scenario.figure = "E8";
  scenario.title = "E8 / trade-off figure";
  scenario.claim = "catalog bound ~ (u-1)^3 as u -> 1 (quality vs catalog)";
  scenario.plan = [] {
    const double d = 4.0, mu = 1.2;
    const std::uint32_t n = util::scaled_count(40, 24);
    const std::uint32_t trials = util::scaled_count(3, 2);

    analysis::TrialSpec base;
    base.n = n;
    base.d = d;
    base.mu = mu;
    base.c = 4;
    base.duration = 10;
    base.rounds = 30;
    base.suite = analysis::WorkloadSuite::kFull;

    sweep::ParameterGrid grid(base);
    grid.axis("u", {1.1, 1.25, 1.5, 2.0, 3.0});

    Plan plan;
    plan.stages.push_back(
        {"empirical", std::move(grid),
         {"max_m"},
         [trials](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const auto found = analysis::Calibrator::max_catalog_speculative(
               point.spec, 1.0, trials, 0xE8);
           return std::vector<double>{static_cast<double>(found.m)};
         }});

    plan.render = [d, mu, n](const ScenarioRun& run, Emitter& out) {
      const std::uint32_t n_closed = 1000000;
      util::Table table("closed-form catalog bound, n=10^6, d=4, mu=1.2");
      table.set_header({"u", "bound m(u)", "local exponent",
                        "(u-1)^3 reference"});
      double prev_u = 0.0, prev_m = 0.0;
      for (const double u : {1.02, 1.04, 1.08, 1.16, 1.32, 1.64, 2.28}) {
        const double m = analysis::Theorem1::catalog_closed_form(n_closed, u,
                                                                 d, mu);
        double exponent = 0.0;
        if (prev_m > 0.0) {
          // Successive u values double (u-1): exponent = log2(m2/m1).
          exponent = std::log2(m / prev_m);
          (void)prev_u;
        }
        table.begin_row()
            .cell(u)
            .cell(m, 5)
            .cell(prev_m > 0.0 ? util::Table::format_double(exponent, 3)
                               : std::string("-"))
            .cell(std::pow(u - 1.0, 3.0), 4);
        prev_u = u;
        prev_m = m;
      }
      out.table(table, "E8_closed_form");

      out.text("\n");
      util::Table emp("empirical max catalog at n=" + std::to_string(n) +
                      " (full suite)");
      emp.set_header({"u", "max m measured", "m / (d*n)"});
      for (const auto& row : run.stage(0).rows()) {
        emp.begin_row()
            .cell(row.point.values[0])
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[0] / (d * n), 3);
      }
      out.table(emp, "E8_empirical");
      out.text("\nExpected shape: the local exponent of the closed form "
               "approaches 3 as u -> 1\n(the bound vanishes like (u-1)^3); "
               "the measured catalog also shrinks toward the\nthreshold, far "
               "less brutally (the bound is worst-case).\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
