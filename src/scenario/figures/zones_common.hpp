// Shared knobs of the E14/E15 zone-topology scenario family.
//
// Both figures run the same protocol point (c=4, k=6, d=4, m = max(1, d·n/k))
// on the same round-robin topology and read the zone count from the same env
// knob, so the rules live here once: a change to the P2PVOD_ZONES default or
// its clamp-to-n behavior (documented in the README) must hit both scenarios.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/permutation.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace p2pvod::scenario {

/// Protocol constants shared by the zone family (E2's fixed protocol).
inline constexpr std::uint32_t kZoneFamilyStripes = 4;    // c
inline constexpr std::uint32_t kZoneFamilyReplicas = 6;   // k
inline constexpr double kZoneFamilyStorage = 4.0;         // d
inline constexpr std::uint32_t kZoneFamilyDuration = 12;  // T
inline constexpr double kZoneFamilyZipfAlpha = 0.8;
inline constexpr double kZoneFamilyDemandRate = 0.45;

/// Catalog size m = max(1, d·n/k).
[[nodiscard]] inline std::uint32_t zone_family_catalog(std::uint32_t n) {
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(kZoneFamilyStorage * n /
                                    kZoneFamilyReplicas));
}

/// Zone count: P2PVOD_ZONES when set (else `fallback`, 4 for the builtin
/// figures), clamped to n so every zone can hold at least one box.
[[nodiscard]] inline std::uint32_t zones_from_env(std::uint32_t fallback,
                                                  std::uint32_t n) {
  std::uint32_t zones = fallback;
  if (const auto env = util::env_positive_long("P2PVOD_ZONES"); env) {
    zones = static_cast<std::uint32_t>(*env);
  }
  return std::min(zones, n);
}

/// The family's topology: round-robin membership, free intra-zone serving,
/// `inter` transit units across zones (0 = the cost-blind ablation).
[[nodiscard]] inline net::Topology zone_family_topology(std::uint32_t n,
                                                        std::uint32_t zones,
                                                        net::Cost inter) {
  auto topology = net::Topology::uniform(n, zones);
  topology.set_uniform_cost(0, inter);
  return topology;
}

/// The family's demand forecast: expected concurrent viewers of video v
/// under the workload below — n boxes demanding at rate 0.45 per round, each
/// playback lasting T=12 rounds, popularity 0.8-Zipf. This is the forecast
/// the demand-aware placement schemes (E17) are fed; only the ratios matter
/// for replica counts, the absolute scale is where lp-greedy's coverage
/// objective saturates.
[[nodiscard]] inline std::vector<double> zone_family_forecast(
    std::uint32_t n) {
  const auto m = zone_family_catalog(n);
  const workload::ZipfSampler sampler(m, kZoneFamilyZipfAlpha);
  std::vector<double> forecast(m);
  for (std::uint32_t v = 0; v < m; ++v) {
    forecast[v] = static_cast<double>(n) * kZoneFamilyDemandRate *
                  kZoneFamilyDuration * sampler.probability(v);
  }
  return forecast;
}

/// One trial of the family's workload with a caller-chosen placement scheme:
/// T=12 catalog, homogeneous (u, d) profile, `allocator` placement seeded
/// `alloc_seed` and fed `context`, preloading strategy, and a 0.8-Zipf
/// audience demanding at rate 0.45 (seeded `demand_seed`) for `rounds`
/// rounds against `topology` (which must span n boxes). Strict runs stop at
/// the first stall, as everywhere else.
[[nodiscard]] inline sim::RunReport zone_family_soak(
    std::uint32_t n, double u, const net::Topology& topology, bool strict,
    model::Round rounds, std::uint64_t alloc_seed, std::uint64_t demand_seed,
    const alloc::Allocator& allocator,
    const alloc::PlacementContext& context) {
  const auto m = zone_family_catalog(n);
  const model::Catalog catalog(m, kZoneFamilyStripes, kZoneFamilyDuration);
  const auto profile =
      model::CapacityProfile::homogeneous(n, u, kZoneFamilyStorage);
  util::Rng rng(alloc_seed);
  const auto allocation = allocator.allocate(catalog, profile,
                                             kZoneFamilyReplicas, rng, context);
  sim::PreloadingStrategy strategy;
  sim::SimulatorOptions options;
  options.strict = strict;
  options.topology = &topology;
  sim::Simulator simulator(catalog, profile, allocation, strategy, options);
  workload::ZipfDemand audience(m, kZoneFamilyZipfAlpha, kZoneFamilyDemandRate,
                                demand_seed);
  return simulator.run(audience, rounds);
}

/// The historical E14/E15 trial: permutation placement, context-free.
[[nodiscard]] inline sim::RunReport zone_family_soak(
    std::uint32_t n, double u, const net::Topology& topology, bool strict,
    model::Round rounds, std::uint64_t alloc_seed, std::uint64_t demand_seed) {
  return zone_family_soak(n, u, topology, strict, rounds, alloc_seed,
                          demand_seed, alloc::PermutationAllocator(),
                          alloc::PlacementContext{});
}

}  // namespace p2pvod::scenario
