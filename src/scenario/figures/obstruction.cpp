// E10 — the first-moment obstruction bound (Lemma 4 / proof of Theorem 1).
//
// Per k: the exact numeric union bound P(N_k > 0), the Monte-Carlo frequency
// of allocations admitting a cold-start obstruction, and the fraction of
// allocations defeated by the full simulated suite. Each k is an independent
// grid point; seeds 0xE1000/0xE10 as in the serial harness.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/first_moment.hpp"
#include "analysis/obstruction.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

Scenario make_obstruction_scenario() {
  Scenario scenario;
  scenario.id = "obstruction";
  scenario.figure = "E10";
  scenario.title = "E10 / obstruction figure";
  scenario.claim = "P(N_k>0): union bound vs measured obstruction frequency";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(24, 16);
    // c must satisfy c > (2µ²-1)/(u-1) for Lemma 4's ν to be positive; c=4
    // is the minimum at (u=1.5, µ=1.2).
    const std::uint32_t c = 4;
    const double d = 4.0, u = 1.5, mu = 1.2;
    const std::uint32_t allocations = util::scaled_count(24, 8);

    sweep::ParameterGrid grid;
    grid.free_axis("k", {2, 4, 8, 16, 32});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"m", "log10_bound", "bound", "burst_freq", "sim_fail_freq"},
         [n, c, d, u, mu, allocations](const sweep::GridPoint& point,
                                       std::uint64_t /*seed*/) {
           const auto k = static_cast<std::uint32_t>(point.values[0]);
           const auto m = std::max<std::uint32_t>(
               1, static_cast<std::uint32_t>(d * n / k));

           analysis::FirstMomentParams fm;
           fm.n = n;
           fm.m = m;
           fm.c = c;
           fm.k = k;
           fm.u = u;
           fm.d = d;
           fm.mu = mu;
           const double bound = analysis::FirstMoment::probability_bound(fm);
           const double log10_bound =
               analysis::FirstMoment::log_union_bound(fm) / std::log(10.0);

           const model::Catalog catalog(m, c, 10);
           const auto profile = model::CapacityProfile::homogeneous(n, u, d);
           std::uint32_t burst_hits = 0;
           for (std::uint32_t a = 0; a < allocations; ++a) {
             util::Rng rng(0xE1000 + a);
             const auto allocation = alloc::PermutationAllocator().allocate(
                 catalog, profile, k, rng);
             const auto result = analysis::ObstructionSearch::monte_carlo(
                 catalog, profile, allocation, 12, rng);
             if (result.infeasible > 0) ++burst_hits;
           }

           analysis::TrialSpec spec;
           spec.n = n;
           spec.u = u;
           spec.d = d;
           spec.mu = mu;
           spec.c = c;
           spec.k = k;
           spec.m_override = m;
           spec.duration = 10;
           spec.rounds = 30;
           spec.suite = analysis::WorkloadSuite::kFull;
           const auto sim_rate =
               analysis::Calibrator::success_rate(spec, allocations, 0xE10);

           return std::vector<double>{
               static_cast<double>(m), log10_bound, bound,
               static_cast<double>(burst_hits) / allocations,
               1.0 - sim_rate.estimate};
         }});

    plan.render = [n, allocations](const ScenarioRun& run, Emitter& out) {
      util::Table table("n=" + std::to_string(n) +
                        ", c=4, u=1.5, d=4, m=d*n/k; " +
                        std::to_string(allocations) + " allocations per k");
      table.set_header({"k", "m", "log10 union bound", "union bound (clamped)",
                        "cold-burst freq", "sim-suite fail freq"});
      for (const auto& row : run.stage(0).rows()) {
        table.begin_row()
            .cell(static_cast<std::uint64_t>(row.point.values[0]))
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[1], 4)
            .cell(row.metrics[2], 4)
            .cell(row.metrics[3], 3)
            .cell(row.metrics[4], 3);
      }
      out.table(table, "E10_obstruction");
      out.text("\nExpected shape: the log10 of the union bound decreases "
               "monotonically in k\n(the bound is asymptotic in n, so at "
               "this toy n it only leaves the clamped\nregime for large k); "
               "the measured obstruction frequencies sit far below it "
               "and\nvanish almost immediately — the worst-case analysis is "
               "extremely conservative.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
