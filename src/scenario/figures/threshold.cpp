// E2 — the upload-bandwidth threshold (abstract, §1.3, Theorem 1).
//
// Sweep the normalized upload capacity u across 1.0 and measure the fraction
// of (allocation, adversarial run) trials that survive. The paper predicts a
// phase transition at u = 1. Protocol held fixed (c=4, k=6, m=d·n/k) so the
// only moving part is u; per-cell seeds are pinned to 0xE2 so the figure
// data is identical to the original serial harness at any thread count.
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/calibrate.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

Scenario make_threshold_scenario() {
  Scenario scenario;
  scenario.id = "threshold";
  scenario.figure = "E2";
  scenario.title = "E2 / threshold figure";
  scenario.claim = "success probability vs u: phase transition at u = 1";
  scenario.plan = [] {
    const std::uint32_t trials = util::scaled_count(8, 2);
    analysis::TrialSpec base;
    base.n = util::scaled_count(48, 24);
    base.d = 4.0;
    base.mu = 1.3;
    base.c = 4;
    base.k = 6;
    base.duration = 12;
    base.rounds = 36;

    sweep::ParameterGrid grid(base);
    grid.axis("u", {0.60, 0.80, 0.90, 0.95, 1.05, 1.10, 1.25, 1.50, 2.00,
                    3.00});

    Plan plan;
    // One grid point per u; the four workload suites are that point's metric
    // columns (plus the Wilson interval of the full suite).
    plan.stages.push_back(
        {"main", std::move(grid),
         {"avoider", "flash", "distinct", "full", "full_lo", "full_hi"},
         [trials](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           std::vector<double> metrics;
           for (const auto suite :
                {analysis::WorkloadSuite::kAvoider,
                 analysis::WorkloadSuite::kFlashCrowd,
                 analysis::WorkloadSuite::kDistinct,
                 analysis::WorkloadSuite::kFull}) {
             auto spec = point.spec;
             spec.suite = suite;
             const auto rate =
                 analysis::Calibrator::success_rate(spec, trials, 0xE2);
             metrics.push_back(rate.estimate);
             if (suite == analysis::WorkloadSuite::kFull) {
               metrics.push_back(rate.lower);
               metrics.push_back(rate.upper);
             }
           }
           return metrics;
         }});

    const std::uint32_t n = base.n;
    plan.render = [trials, n](const ScenarioRun& run, Emitter& out) {
      util::Table table("success fraction over " + std::to_string(trials) +
                        " seeds, n=" + std::to_string(n) +
                        ", c=4, k=6, m=d*n/k");
      table.set_header({"u", "avoider", "flash crowd", "distinct",
                        "full suite", "full 95% CI"});
      for (const auto& row : run.stage(0).rows()) {
        table.begin_row().cell(row.point.values[0]);
        for (std::size_t metric = 0; metric < 4; ++metric) {
          table.cell(row.metrics[metric], 3);
        }
        std::string interval = "[";
        interval += util::Table::format_double(row.metrics[4], 2);
        interval += ",";
        interval += util::Table::format_double(row.metrics[5], 2);
        interval += "]";
        table.cell(interval);
      }
      out.table(table, "E2_threshold");
      out.text("\nExpected shape: ~0 for u < 1 (the Section 1.3 avoider "
               "argument), ~1 for u\ncomfortably above 1 (Theorem 1); the "
               "transition sits at the threshold u = 1.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
