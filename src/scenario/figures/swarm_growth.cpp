// E5 — swarm growth vs stripe count (Theorem 1 / Lemma 2).
//
// Theorem 1 needs c > (2µ²−1)/(u−1) stripes for the preloading strategy to
// absorb swarms growing by µ each round. A maximal-growth flash crowd runs
// against fixed (n, u, k) for a (µ, c) grid plus a naive-strategy ablation
// column; every cell is an independent grid point with the serial harness's
// seeds (0xE500/0xE550 + trial).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/flash_crowd.hpp"

namespace p2pvod::scenario {

namespace {

bool swarm_survives(std::uint32_t n, double u, double mu, std::uint32_t c,
                    std::uint32_t k, sim::StrategyKind kind,
                    std::uint64_t seed) {
  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(4.0 * n / k));
  const model::Catalog catalog(m, c, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, u, 4.0);
  util::Rng rng(seed);
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
  const auto strategy = sim::make_strategy(kind);
  sim::Simulator simulator(catalog, profile, allocation, *strategy);
  workload::FlashCrowd crowd(0, mu);
  return simulator.run(crowd, 48).success;
}

// Single source for both the grid axes and the table layout.
const std::vector<double> kMuValues = {1.2, 1.5, 2.0, 3.0};
const std::vector<double> kStripeValues = {1, 2, 4, 8, 16};

}  // namespace

Scenario make_swarm_growth_scenario() {
  Scenario scenario;
  scenario.id = "swarm_growth";
  scenario.figure = "E5";
  scenario.title = "E5 / swarm-growth figure";
  scenario.claim =
      "flash-crowd survival over (mu, c); theory: c > (2mu^2-1)/(u-1)";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(96, 48);
    const double u = 1.5;
    const std::uint32_t k = 4;
    const std::uint32_t trials = util::scaled_count(3, 1);

    sweep::ParameterGrid preloading_grid;
    preloading_grid.free_axis("mu", kMuValues).free_axis("c", kStripeValues);

    Plan plan;
    plan.stages.push_back(
        {"preloading", std::move(preloading_grid),
         {"survival"},
         [n, u, k, trials](const sweep::GridPoint& point,
                           std::uint64_t /*seed*/) {
           const double mu = point.values[0];
           const auto c = static_cast<std::uint32_t>(point.values[1]);
           std::uint32_t wins = 0;
           for (std::uint32_t t = 0; t < trials; ++t) {
             if (swarm_survives(n, u, mu, c, k, sim::StrategyKind::kPreloading,
                                0xE500 + t)) {
               ++wins;
             }
           }
           return std::vector<double>{static_cast<double>(wins) / trials};
         }});

    sweep::ParameterGrid naive_grid;
    naive_grid.free_axis("mu", kMuValues);
    plan.stages.push_back(
        {"naive", std::move(naive_grid),
         {"survival"},
         [n, u, k, trials](const sweep::GridPoint& point,
                           std::uint64_t /*seed*/) {
           const double mu = point.values[0];
           std::uint32_t wins = 0;
           for (std::uint32_t t = 0; t < trials; ++t) {
             if (swarm_survives(n, u, mu, 8, k, sim::StrategyKind::kNaive,
                                0xE550 + t)) {
               ++wins;
             }
           }
           return std::vector<double>{static_cast<double>(wins) / trials};
         }});

    plan.render = [n, u](const ScenarioRun& run, Emitter& out) {
      util::Table table("preloading strategy, n=" + std::to_string(n) +
                        ", u=1.5, k=4 (fraction of seeds surviving)");
      std::vector<std::string> header{"mu", "theory c >"};
      for (const double c : kStripeValues)
        header.push_back("c=" + std::to_string(static_cast<std::uint32_t>(c)));
      header.push_back("naive @ c=8");
      table.set_header(header);

      const std::size_t stripe_count = kStripeValues.size();
      for (std::size_t mi = 0; mi < kMuValues.size(); ++mi) {
        const double mu = kMuValues[mi];
        const double frontier = (2.0 * mu * mu - 1.0) / (u - 1.0);
        table.begin_row().cell(mu).cell(frontier, 3);
        for (std::size_t ci = 0; ci < stripe_count; ++ci) {
          // Row-major (mu slowest): cell (mi, ci) is point mi*|c| + ci.
          table.cell(run.stage(0).row(mi * stripe_count + ci).metrics[0], 2);
        }
        table.cell(run.stage(1).row(mi).metrics[0], 2);
      }
      out.table(table, "E5_swarm_growth");
      out.text(
          "\nExpected shape: c=1 fails at every mu — the effective upload "
          "u' = floor(u*c)/c\ndegenerates to exactly 1, the threshold. "
          "Survival then flips to 1 once c gives\nthe swarm headroom; the "
          "empirical frontier is *looser* than the theory column\n(the "
          "theorem quantifies over all adversaries, the flash crowd is just "
          "the natural\nworst case for swarming). The naive strategy needs "
          "far more slack: at mu=3 it\ncollapses where preloading still "
          "survives, because same-wave joiners sit at\nidentical positions "
          "and cannot serve each other.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
