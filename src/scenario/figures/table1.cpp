// E1 — Table 1 of the paper: the model's key parameters, plus the derived
// protocol values (ν, u′, d′, k, m) that Theorem 1/2 attach to reference
// configurations. Migrated from bench/bench_table1_parameters.cpp with
// byte-identical output; the closed-form evaluations run as (cheap) grid
// points so the JSON sink records the derived values per configuration.
#include <cstdint>

#include "analysis/bounds.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

namespace {

struct Config {
  const char* name;
  double u, d, mu;
};

constexpr Config kTheorem1Configs[] = {{"DSL-tight", 1.25, 8.0, 1.1},
                                       {"DSL-comfortable", 1.5, 4.0, 1.2},
                                       {"fiber", 3.0, 4.0, 1.5}};
constexpr Config kTheorem2Configs[] = {{"mixed-ADSL", 1.5, 4.0, 1.05},
                                       {"mixed-fast", 2.0, 4.0, 1.1}};

}  // namespace

Scenario make_table1_scenario() {
  Scenario scenario;
  scenario.id = "table1";
  scenario.figure = "E1";
  scenario.title = "E1 / Table 1";
  scenario.claim = "key parameters of the model";
  scenario.plan = [] {
    Plan plan;

    sweep::ParameterGrid theorem1_grid;
    theorem1_grid.free_axis("config", {0, 1, 2});
    plan.stages.push_back(
        {"theorem1", std::move(theorem1_grid),
         {"c", "nu", "u_prime", "d_prime", "k_bound", "k", "m_1e5", "m_1e6"},
         [](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const Config& config =
               kTheorem1Configs[static_cast<std::size_t>(point.values[0])];
           const auto b = analysis::Theorem1::evaluate(
               {config.u, config.d, config.mu});
           return std::vector<double>{
               static_cast<double>(b.c), b.nu, b.u_prime, b.d_prime, b.k_real,
               static_cast<double>(b.k), static_cast<double>(b.catalog(100000)),
               static_cast<double>(b.catalog(1000000))};
         }});

    sweep::ParameterGrid theorem2_grid;
    theorem2_grid.free_axis("config", {0, 1});
    plan.stages.push_back(
        {"theorem2", std::move(theorem2_grid),
         {"c", "nu", "u_prime", "k_bound", "k", "m_1e6"},
         [](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const Config& config =
               kTheorem2Configs[static_cast<std::size_t>(point.values[0])];
           const auto b = analysis::Theorem2::evaluate(
               {config.u, config.d, config.mu});
           return std::vector<double>{
               static_cast<double>(b.c), b.nu, b.u_prime, b.k_real,
               static_cast<double>(b.k),
               static_cast<double>(b.catalog(1000000))};
         }});

    plan.render = [](const ScenarioRun& run, Emitter& out) {
      util::Table glossary("Table 1 — key parameters");
      glossary.set_header({"symbol", "meaning"});
      glossary.add_row({"n", "number of boxes in the system"});
      glossary.add_row(
          {"m", "number of distinct videos stored (catalog size)"});
      glossary.add_row(
          {"d_b / d", "storage capacity of box b / average (videos)"});
      glossary.add_row({"k", "duplicate copies per stripe (k ~ d*n/m)"});
      glossary.add_row(
          {"u_b / u", "upload capacity of box b / average (streams)"});
      glossary.add_row(
          {"c", "stripes per video (download all c in parallel)"});
      glossary.add_row(
          {"mu", "swarm growth bound: f(t+1) <= ceil(max(f(t),1)*mu)"});
      glossary.add_row(
          {"l", "minimal chunk size: l = 1/c when storing stripes"});
      out.table(glossary, "E1_glossary");
      out.text("\n");

      util::Table derived("derived protocol values (Theorem 1, homogeneous)");
      derived.set_header({"config", "u", "d", "mu", "c", "nu", "u'", "d'",
                          "k bound", "k", "m @ n=10^5", "m @ n=10^6"});
      for (const auto& row : run.stage(0).rows()) {
        const Config& config =
            kTheorem1Configs[static_cast<std::size_t>(row.point.values[0])];
        derived.begin_row()
            .cell(config.name)
            .cell(config.u)
            .cell(config.d)
            .cell(config.mu)
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[1], 3)
            .cell(row.metrics[2])
            .cell(row.metrics[3])
            .cell(row.metrics[4], 5)
            .cell(static_cast<std::uint64_t>(row.metrics[5]))
            .cell(static_cast<std::uint64_t>(row.metrics[6]))
            .cell(static_cast<std::uint64_t>(row.metrics[7]));
      }
      out.table(derived, "E1_theorem1");
      out.text("\n");

      util::Table hetero("derived protocol values (Theorem 2, heterogeneous)");
      hetero.set_header({"config", "u*", "d", "mu", "c", "nu", "u'", "k bound",
                         "k", "m @ n=10^6"});
      for (const auto& row : run.stage(1).rows()) {
        const Config& config =
            kTheorem2Configs[static_cast<std::size_t>(row.point.values[0])];
        hetero.begin_row()
            .cell(config.name)
            .cell(config.u)
            .cell(config.d)
            .cell(config.mu)
            .cell(static_cast<std::uint64_t>(row.metrics[0]))
            .cell(row.metrics[1], 3)
            .cell(row.metrics[2])
            .cell(row.metrics[3], 5)
            .cell(static_cast<std::uint64_t>(row.metrics[4]))
            .cell(static_cast<std::uint64_t>(row.metrics[5]));
      }
      out.table(hetero, "E1_theorem2");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
