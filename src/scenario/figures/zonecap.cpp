// E15 (extension, not in the paper) — locality-constrained feasibility:
// threshold shift under zone link caps.
//
// Same zone topology as E14, but every inter-zone link additionally carries a
// hard capacity cap (stripe connections per round, per directed zone pair).
// Connections beyond a cap are admission-controlled away; a request that
// cannot be rescued over another link goes unserved, which in strict mode is
// a feasibility failure. The paper's threshold u = 1 assumes transit is free
// *and unlimited*; capping the links shifts the measured threshold upward —
// the tighter the caps, the more upload headroom the system needs before
// every round's matching fits inside the links. Cap 0 in the axis is the
// "unlimited" sentinel (the E14 regime). Seeds 0xE1500/0xE15AA + trial.
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/figures.hpp"
#include "scenario/figures/zones_common.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

namespace {

struct ZoneCapOutcome {
  double success = 0.0;     ///< fraction of trials with every chunk served
  double rejections = 0.0;  ///< mean pass-1 admission drops per trial
  double rescues = 0.0;     ///< mean pass-2 re-seats per trial (<= rejections)
  double crosszone = 0.0;   ///< mean per-round cross-zone share
};

ZoneCapOutcome run_zonecap(std::uint32_t n, std::uint32_t zones, double u,
                           std::uint32_t cap, std::uint32_t trials) {
  auto topology = zone_family_topology(n, zones, 1);
  if (cap > 0) topology.set_uniform_link_cap(cap);

  ZoneCapOutcome out;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto report = zone_family_soak(n, u, topology, /*strict=*/true,
                                         /*rounds=*/48, 0xE1500 + t,
                                         0xE15AA + t);
    if (report.success) out.success += 1.0;
    out.rejections += static_cast<double>(report.link_cap_rejections);
    out.rescues += static_cast<double>(report.link_cap_rescues);
    out.crosszone += report.cross_zone_fraction.count() > 0
                         ? report.cross_zone_fraction.mean()
                         : 0.0;
  }
  out.success /= trials;
  out.rejections /= trials;
  out.rescues /= trials;
  out.crosszone /= trials;
  return out;
}

// Axis order matters for the table layout: cap slowest, u fastest.
const std::vector<double> kCaps = {0, 6, 3, 2};  // 0 = unlimited
const std::vector<double> kUploads = {0.75, 1.00, 1.50, 2.00, 3.00};

std::string cap_label(double cap) {
  return cap == 0 ? std::string("inf")
                  : std::to_string(static_cast<std::uint32_t>(cap));
}

}  // namespace

Scenario make_zonecap_scenario() {
  Scenario scenario;
  scenario.id = "zonecap";
  scenario.figure = "E15";
  scenario.title = "E15 / zone link-cap figure (extension)";
  scenario.claim = "threshold shift under per-zone-pair link capacity caps";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(48, 24);
    const std::uint32_t trials = util::scaled_count(6, 2);
    const std::uint32_t zones = zones_from_env(4, n);

    sweep::ParameterGrid grid;
    grid.free_axis("cap", kCaps).free_axis("u", kUploads);

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"success", "rejections", "rescues", "crosszone"},
         [n, zones, trials](const sweep::GridPoint& point,
                            std::uint64_t /*seed*/) {
           const auto cap = static_cast<std::uint32_t>(point.values[0]);
           const double u = point.values[1];
           const auto outcome = run_zonecap(n, zones, u, cap, trials);
           return std::vector<double>{outcome.success, outcome.rejections,
                                      outcome.rescues, outcome.crosszone};
         }});

    plan.render = [n, zones, trials](const ScenarioRun& run, Emitter& out) {
      util::Table table("strict feasibility over " + std::to_string(trials) +
                        " seeds, n=" + std::to_string(n) + ", zones=" +
                        std::to_string(zones) +
                        ", 48-round Zipf demand; cap = connections per "
                        "directed zone pair per round");
      std::vector<std::string> header{"u"};
      for (const double cap : kCaps)
        header.push_back("cap=" + cap_label(cap));
      header.push_back("rejections (cap=" + cap_label(kCaps.back()) + ")");
      header.push_back("rescues (cap=" + cap_label(kCaps.back()) + ")");
      table.set_header(header);

      // Row-major with cap slowest: cell (cap ci, u ui) is point
      // ci * |u| + ui.
      const std::size_t u_count = kUploads.size();
      for (std::size_t ui = 0; ui < u_count; ++ui) {
        table.begin_row().cell(kUploads[ui]);
        for (std::size_t ci = 0; ci < kCaps.size(); ++ci) {
          table.cell(run.stage(0).row(ci * u_count + ui).metrics[0], 3);
        }
        const auto& tightest =
            run.stage(0).row((kCaps.size() - 1) * u_count + ui);
        table.cell(tightest.metrics[1], 2);
        table.cell(tightest.metrics[2], 2);
      }
      out.table(table, "E15_zonecap");
      out.text("\nExpected shape: with unlimited links the success column "
               "reproduces the E2\nphase transition; moderate caps push the "
               "transition to larger u — the system\nneeds spare local "
               "headroom before each round's matching fits inside the "
               "links.\nCaps below the structural cross-zone floor (stripes "
               "with no local copy at all)\ncannot be bought back with upload: "
               "that column stays near zero at every u,\nthe placement-driven "
               "limit the Tan & Massoulie line of work predicts.\n\n"
               "Rejections count pass-1 admission drops at a capped link; "
               "rescues are the\ndropped requests the greedy pass-2 re-seated "
               "over another link in the same\nround. Net service lost to "
               "caps is rejections - rescues.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
