// E14 (extension, not in the paper) — cross-zone traffic fraction vs u near
// the threshold.
//
// Boxes live in zones (P2PVOD_ZONES, default 4, round-robin membership) with
// free intra-zone serving and unit-cost inter-zone transit; each round's
// matching minimizes total transit among maximum matchings (flow/min_cost).
// Sweeping the normalized upload u across the threshold shows how much
// locality the min-cost matcher can buy: with spare capacity (u >> 1) most
// chunks come from the local zone, while near u = 1 the matcher is forced to
// pull from wherever capacity remains. Feasibility itself never changes —
// the min-cost matching is maximum, so continuity equals the cost-blind run.
// Seeds 0xE1400/0xE14AA + trial, as in the serial harnesses.
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/figures.hpp"
#include "scenario/figures/zones_common.hpp"
#include "scenario/sink.hpp"
#include "sim/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

namespace {

struct CrossZoneOutcome {
  double mincost = 0.0;     ///< cross-zone share under min-cost matching
  double blind = 0.0;       ///< same workload, cost-blind (zero-cost) matching
  double continuity = 0.0;
};

/// One soak of the (u, seed) cell: `costed` selects the unit-inter-cost
/// topology (min-cost matching) or the zero-cost one (MinCostMatcher then
/// degrades to the plain Dinic solve — the cost-blind ablation; zone
/// accounting still happens). Identical seeds either way, so the two runs see
/// the same allocation and demand sequence.
sim::RunReport soak(std::uint32_t n, std::uint32_t zones, double u,
                    std::uint32_t t, bool costed) {
  const auto topology = zone_family_topology(n, zones, costed ? 1 : 0);
  return zone_family_soak(n, u, topology, /*strict=*/false, /*rounds=*/72,
                          0xE1400 + t, 0xE14AA + t);
}

CrossZoneOutcome run_crosszone(std::uint32_t n, std::uint32_t zones, double u,
                               std::uint32_t trials) {
  CrossZoneOutcome out;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto costed = soak(n, zones, u, t, true);
    const auto blind = soak(n, zones, u, t, false);
    out.mincost += costed.cross_zone_fraction.count() > 0
                       ? costed.cross_zone_fraction.mean()
                       : 0.0;
    out.blind += blind.cross_zone_fraction.count() > 0
                     ? blind.cross_zone_fraction.mean()
                     : 0.0;
    out.continuity += costed.continuity();
  }
  out.mincost /= trials;
  out.blind /= trials;
  out.continuity /= trials;
  return out;
}

const std::vector<double> kUploads = {0.50, 0.75, 1.00, 1.50, 2.00, 3.00};

}  // namespace

Scenario make_crosszone_scenario() {
  Scenario scenario;
  scenario.id = "crosszone";
  scenario.figure = "E14";
  scenario.title = "E14 / cross-zone traffic figure (extension)";
  scenario.claim = "cross-zone chunk fraction vs u near the threshold";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(48, 24);
    const std::uint32_t trials = util::scaled_count(3, 2);
    const std::uint32_t zones = zones_from_env(4, n);

    sweep::ParameterGrid grid;
    grid.free_axis("u", kUploads);

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"mincost", "blind", "continuity"},
         [n, zones, trials](const sweep::GridPoint& point,
                            std::uint64_t /*seed*/) {
           const auto outcome =
               run_crosszone(n, zones, point.values[0], trials);
           return std::vector<double>{outcome.mincost, outcome.blind,
                                      outcome.continuity};
         }});

    plan.render = [n, zones, trials](const ScenarioRun& run, Emitter& out) {
      util::Table table("n=" + std::to_string(n) + ", zones=" +
                        std::to_string(zones) +
                        " (round-robin), c=4, k=6, intra cost 0 / inter 1, "
                        "72-round Zipf soak (" + std::to_string(trials) +
                        " seeds)");
      table.set_header({"u", "cross-zone (min-cost)", "cross-zone (blind)",
                        "continuity"});
      for (const auto& row : run.stage(0).rows()) {
        table.begin_row().cell(row.point.values[0]);
        table.cell(row.metrics[0], 4);
        table.cell(row.metrics[1], 4);
        table.cell(row.metrics[2], 4);
      }
      out.table(table, "E14_crosszone");
      out.text("\nExpected shape: a cost-blind matcher routes most chunks "
               "across zones (roughly\nthe foreign share of replicas); the "
               "min-cost matcher pins traffic near the\nstructural floor — "
               "the requests whose stripe simply has no local copy. "
               "The\nlocality win shrinks as u drops toward the threshold: "
               "with no spare local\nslots the min-cost matcher too must pull "
               "from wherever capacity remains.\nContinuity is identical in "
               "both columns at every u — min-cost matching is\nstill a "
               "maximum matching, so locality never costs feasibility.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
