// E9 — constant start-up delay (§1.1, §3, §4).
//
// The §3 preloading schedule yields exactly 3 rounds, naive 2, and the §4
// relay schedule for poor boxes roughly doubles the cadence. Each workload
// case is an independent grid point; the shared allocation is recomputed
// deterministically (seed 0xE9) inside every point, so parallel execution
// reproduces the serial harness byte for byte.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "hetero/compensation.hpp"
#include "hetero/relay.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/flash_crowd.hpp"
#include "workload/limiter.hpp"
#include "workload/sequential.hpp"
#include "workload/zipf.hpp"

namespace p2pvod::scenario {

namespace {

constexpr const char* kCaseLabels[] = {
    "preloading + zipf", "preloading + flash crowd", "preloading + binge",
    "naive + zipf", "relay (Sec. 4) + zipf"};

/// Metrics shared by every case row: [present, sessions, min, p50, max, mean].
std::vector<double> delay_metrics(const sim::RunReport& report) {
  const auto& h = report.startup_delay;
  return {1.0,
          static_cast<double>(h.total()),
          static_cast<double>(h.total() ? h.min() : 0),
          static_cast<double>(h.total() ? h.percentile(0.5) : 0),
          static_cast<double>(h.total() ? h.max() : 0),
          h.total() ? h.mean() : 0.0};
}

std::vector<double> run_delay_case(std::uint32_t n, std::size_t which) {
  const std::uint32_t c = 4, k = 6;
  const auto m = static_cast<std::uint32_t>(4.0 * n / k);
  const model::Catalog catalog(m, c, 16);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, 4.0);
  util::Rng rng(0xE9);
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);

  switch (which) {
    case 0: {
      sim::PreloadingStrategy strategy;
      sim::Simulator simulator(catalog, profile, allocation, strategy);
      workload::ZipfDemand zipf(m, 0.8, 0.08, 0xE901);
      workload::GrowthLimiter limited(zipf, 1.3);
      return delay_metrics(simulator.run(limited, 60));
    }
    case 1: {
      sim::PreloadingStrategy strategy;
      sim::Simulator simulator(catalog, profile, allocation, strategy);
      workload::FlashCrowd crowd(0, 1.6);
      return delay_metrics(simulator.run(crowd, 48));
    }
    case 2: {
      sim::PreloadingStrategy strategy;
      sim::Simulator simulator(catalog, profile, allocation, strategy);
      workload::SequentialViewer binge(0xE902, 0.4);
      workload::GrowthLimiter limited(binge, 1.3);
      return delay_metrics(simulator.run(limited, 60));
    }
    case 3: {
      sim::NaiveStrategy strategy;
      sim::SimulatorOptions options;
      options.strict = false;  // naive may stall; delays are still scheduled
      sim::Simulator simulator(catalog, profile, allocation, strategy,
                               options);
      workload::ZipfDemand zipf(m, 0.8, 0.08, 0xE903);
      workload::GrowthLimiter limited(zipf, 1.3);
      return delay_metrics(simulator.run(limited, 60));
    }
    default: {
      // Heterogeneous: poor boxes relay through rich ones (delay doubles).
      const auto hetero_profile =
          model::CapacityProfile::two_class(n, n / 4, 0.5, 1.5, 4.0, 12.0);
      const auto plan = hetero::Compensator::plan(hetero_profile, 1.5, 16,
                                                  1.0);
      if (!plan) return {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
      const auto hm = std::max<std::uint32_t>(
          2, static_cast<std::uint32_t>(hetero_profile.average_storage() * n /
                                        (2.0 * k)));
      const model::Catalog hetero_catalog(hm, 16, 20);
      util::Rng hetero_rng(0xE904);
      const auto hetero_allocation = alloc::PermutationAllocator().allocate(
          hetero_catalog, hetero_profile, k, hetero_rng);
      hetero::RelayStrategy strategy(*plan);
      sim::SimulatorOptions options;
      options.capacity_override = plan->capacity_slots();
      options.strict = false;
      sim::Simulator simulator(hetero_catalog, hetero_profile,
                               hetero_allocation, strategy, options);
      workload::ZipfDemand zipf(hm, 0.8, 0.08, 0xE905);
      workload::GrowthLimiter limited(zipf, 1.2);
      return delay_metrics(simulator.run(limited, 60));
    }
  }
}

}  // namespace

Scenario make_startup_delay_scenario() {
  Scenario scenario;
  scenario.id = "startup_delay";
  scenario.figure = "E9";
  scenario.title = "E9 / start-up delay figure";
  scenario.claim = "constant start-up delay: 3 rounds (Sec. 3), x2 under relay";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(64, 32);

    sweep::ParameterGrid grid;
    grid.free_axis("case", {0, 1, 2, 3, 4});

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"present", "sessions", "min", "p50", "max", "mean"},
         [n](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           return run_delay_case(n,
                                 static_cast<std::size_t>(point.values[0]));
         }});

    plan.render = [](const ScenarioRun& run, Emitter& out) {
      util::Table table("start-up delay distribution (rounds)");
      table.set_header({"scenario", "sessions", "min", "p50", "max", "mean"});
      for (const auto& row : run.stage(0).rows()) {
        if (row.metrics[0] == 0.0) continue;  // relay plan infeasible
        table.begin_row()
            .cell(kCaseLabels[static_cast<std::size_t>(row.point.values[0])])
            .cell(static_cast<std::uint64_t>(row.metrics[1]))
            .cell(static_cast<std::int64_t>(row.metrics[2]))
            .cell(static_cast<std::int64_t>(row.metrics[3]))
            .cell(static_cast<std::int64_t>(row.metrics[4]))
            .cell(row.metrics[5], 4);
      }
      out.table(table, "E9_startup");
      out.text("\nExpected shape: preloading rows pinned at 3 rounds for "
               "every workload; naive\nat 2; the Section 4 relay schedule "
               "roughly doubles the poor boxes' delay\n(max column ~6) while "
               "rich boxes stay at 4 (postponed at t+2).\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
