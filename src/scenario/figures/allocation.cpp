// E6 — permutation vs independent allocation (§2.1 / Theorem 1 remark).
//
// The permutation allocation loads every box with exactly d·c replicas; the
// independent allocation concentrates only when c = Ω(log n). Stage one
// measures load-balance statistics per (n, c, scheme) cell; stage two runs
// full-suite feasibility per scheme. Seeds 0xE600/0xE6 as in the serial
// harness; each cell is an independent grid point.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "analysis/calibrate.hpp"
#include "model/catalog.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace p2pvod::scenario {

namespace {

constexpr alloc::Scheme kSchemes[] = {alloc::Scheme::kPermutation,
                                      alloc::Scheme::kIndependent,
                                      alloc::Scheme::kRoundRobin};

}  // namespace

Scenario make_allocation_scenario() {
  Scenario scenario;
  scenario.id = "allocation";
  scenario.figure = "E6";
  scenario.title = "E6 / allocation figure";
  scenario.claim =
      "load balance & feasibility: permutation vs independent vs round-robin";
  scenario.plan = [] {
    const std::uint32_t trials = util::scaled_count(4, 2);
    const double d = 4.0;

    sweep::ParameterGrid loads_grid;
    loads_grid.free_axis("n", {32, 128})
        .free_axis("c", {2, 8, 32})
        .free_axis("scheme", {0, 1, 2});

    Plan plan;
    // At the paper's operating point the catalog identity m = d*n/k fills
    // every slot: the permutation allocation is perfectly balanced by
    // construction, while the independent allocation needs more capacity
    // than d*c on some box — the overflow that forces c = Omega(log n).
    plan.stages.push_back(
        {"loads", std::move(loads_grid),
         {"max_load", "repl_min", "repl_max"},
         [trials, d](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const auto n = static_cast<std::uint32_t>(point.values[0]);
           const auto c = static_cast<std::uint32_t>(point.values[1]);
           const auto scheme =
               kSchemes[static_cast<std::size_t>(point.values[2])];
           const std::uint32_t k = 4;
           const auto m = static_cast<std::uint32_t>(d * n / k);
           const model::Catalog catalog(m, c, 16);
           const auto profile = model::CapacityProfile::homogeneous(n, 1.5, d);
           // For the independent scheme, measure the *unconstrained* bin
           // loads: place with 8x headroom and compare the max against the
           // nominal d*c.
           const auto roomy = model::CapacityProfile::homogeneous(n, 1.5,
                                                                  8 * d);
           double max_load = 0.0;
           std::uint32_t rep_min = 0xffffffffu, rep_max = 0;
           for (std::uint32_t t = 0; t < trials; ++t) {
             util::Rng rng(0xE600 + t);
             const auto& place_profile =
                 scheme == alloc::Scheme::kIndependent ? roomy : profile;
             const auto allocation = alloc::make_allocator(scheme)->allocate(
                 catalog, place_profile, k, rng);
             max_load += allocation.max_slot_usage();
             rep_min = std::min(rep_min, allocation.min_replication());
             rep_max = std::max(rep_max, allocation.max_replication());
           }
           max_load /= trials;
           return std::vector<double>{max_load, static_cast<double>(rep_min),
                                      static_cast<double>(rep_max)};
         }});

    sweep::ParameterGrid feasibility_grid;
    feasibility_grid.free_axis("scheme", {0, 1, 2});
    plan.stages.push_back(
        {"feasibility", std::move(feasibility_grid),
         {"success_rate"},
         [trials, d](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           analysis::TrialSpec spec;
           spec.n = util::scaled_count(48, 24);
           spec.u = 1.5;
           spec.d = d;
           spec.mu = 1.3;
           spec.c = 4;
           spec.k = 6;
           spec.duration = 10;
           spec.rounds = 30;
           spec.suite = analysis::WorkloadSuite::kFull;
           spec.scheme = kSchemes[static_cast<std::size_t>(point.values[0])];
           const auto rate =
               analysis::Calibrator::success_rate(spec, trials * 2, 0xE6);
           return std::vector<double>{rate.estimate};
         }});

    plan.render = [trials, d](const ScenarioRun& run, Emitter& out) {
      util::Table loads("full occupancy m=d*n/k (k=4): permutation balance vs "
                        "independent overflow (mean over " +
                        std::to_string(trials) + " seeds)");
      loads.set_header({"scheme", "n", "c", "nominal slots d*c", "max load",
                        "overflow max/(d*c)", "repl min..max"});
      for (const auto& row : run.stage(0).rows()) {
        const auto n = static_cast<std::uint32_t>(row.point.values[0]);
        const auto c = static_cast<std::uint32_t>(row.point.values[1]);
        const auto scheme =
            kSchemes[static_cast<std::size_t>(row.point.values[2])];
        const double nominal = d * c;
        const double max_load = row.metrics[0];
        const auto rep_min = static_cast<std::uint32_t>(row.metrics[1]);
        const auto rep_max = static_cast<std::uint32_t>(row.metrics[2]);
        loads.begin_row()
            .cell(alloc::scheme_name(scheme))
            .cell(static_cast<std::uint64_t>(n))
            .cell(static_cast<std::uint64_t>(c))
            .cell(nominal, 4)
            .cell(max_load, 4)
            .cell(max_load / nominal, 3)
            .cell(std::to_string(rep_min) + ".." + std::to_string(rep_max));
      }
      out.table(loads, "E6_loads");

      out.text("\n");
      util::Table feas("full-suite success rate (n=48, u=1.5, c=4, k=6)");
      feas.set_header({"scheme", "success rate"});
      for (const auto& row : run.stage(1).rows()) {
        const auto scheme =
            kSchemes[static_cast<std::size_t>(row.point.values[0])];
        feas.begin_row()
            .cell(alloc::scheme_name(scheme))
            .cell(row.metrics[0], 3);
      }
      out.table(feas, "E6_feasibility");
      out.text("\nExpected shape: permutation and round-robin overflow "
               "exactly 1.0 (every box\nholds exactly d*c replicas); the "
               "independent scheme overflows the nominal\ncapacity by a "
               "factor that shrinks as c grows — the balls-in-bins "
               "deviation\nbehind Theorem 1's extra c = Omega(log n) "
               "requirement for independent placement.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
