// E16 (extension, not in the paper) — the million-box scale ladder.
//
// The paper argues the allocation works at "set-top box population" scale;
// the dense round loop cannot show it (per-round candidate reconstruction is
// O(n) even when nothing changed). E16 climbs n from 10^3 to 10^6 on the
// sparse CSR round path (SimulatorOptions::sparse): persistent candidate
// rows patched by grant/expiry/churn deltas and an incrementally repaired
// matching. Every rung runs the same Zipf audience plus a deterministic
// round-robin churn drizzle; the table reports only deterministic counters
// (served, stalls, matcher edges, rows built, row patches, kept
// connections) so the BENCH document is byte-stable across thread counts —
// throughput lives in the per-stage wall_seconds field of the JSON, which
// the baseline differ ignores. Small rungs run with verify_incremental: the
// sparse assignment is structurally validated against a dense reference
// solve every round, so the ladder self-checks before it gets expensive.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/zipf.hpp"

namespace p2pvod::scenario {

namespace {

struct LadderOutcome {
  double served = 0.0;
  double stalled = 0.0;
  double matcher_edges = 0.0;
  double rows_built = 0.0;
  double row_patches = 0.0;
  double kept = 0.0;
};

/// Rung population bases; each rung is scaled by P2PVOD_SCALE (floor 64) so
/// the CI smoke at scale 0.25 tops out at 250k boxes while the full run
/// reaches a million.
const std::vector<double> kLadderBases = {1000, 4000, 16000, 64000, 250000,
                                          1000000};

constexpr std::uint32_t kRounds = 20;
constexpr model::Round kOutage = 4;

std::uint32_t rung_population(double base) {
  return util::scaled_count(static_cast<std::uint32_t>(base), 64);
}

LadderOutcome run_rung(std::uint32_t n) {
  const std::uint32_t c = 4;
  const std::uint32_t k = 6;
  const double d = 4.0;  // storage per box, videos
  const auto m = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(d * n / k));
  const model::Catalog catalog(m, c, 12);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, d);

  util::Rng rng(0xE1600);
  const auto allocation =
      alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
  sim::PreloadingStrategy strategy;
  sim::SimulatorOptions options;
  options.strict = false;
  options.sparse = true;
  // Self-check rungs: cheap enough below a few thousand boxes to validate
  // the sparse assignment against a dense reference solve every round.
  options.verify_incremental = n <= 4000;
  sim::Simulator simulator(catalog, profile, allocation, strategy, options);
  workload::ZipfDemand audience(m, 0.6, 0.01, 0xE16AA);

  // Deterministic churn drizzle: a round-robin cursor fails `per_round`
  // boxes each round for kOutage rounds — enough to exercise the offline /
  // online delta paths at every rung without an RNG in the hot loop.
  const std::uint32_t per_round = std::max<std::uint32_t>(1, n / 100000);
  std::vector<std::pair<model::Round, model::BoxId>> down;  // (up round, box)
  std::uint32_t cursor = 0;
  for (model::Round round = 0; round < kRounds; ++round) {
    while (!down.empty() && down.front().first <= round) {
      simulator.set_box_online(down.front().second, true);
      down.erase(down.begin());
    }
    for (std::uint32_t i = 0; i < per_round; ++i) {
      const model::BoxId victim = cursor;
      cursor = (cursor + 1) % n;
      if (!simulator.box_online(victim)) continue;
      simulator.set_box_online(victim, false);
      down.emplace_back(round + kOutage, victim);
    }
    simulator.step(audience.demands(simulator));
  }

  const auto& report = simulator.report();
  LadderOutcome out;
  out.served = static_cast<double>(report.chunks_served);
  out.stalled = static_cast<double>(report.chunks_stalled);
  out.matcher_edges = static_cast<double>(report.matcher_edges);
  out.rows_built = static_cast<double>(report.rows_built);
  out.row_patches = static_cast<double>(report.row_patches);
  out.kept = static_cast<double>(report.kept_connections);
  return out;
}

}  // namespace

Scenario make_scaleladder_scenario() {
  Scenario scenario;
  scenario.id = "scaleladder";
  scenario.figure = "E16";
  scenario.title = "E16 / scale ladder (extension)";
  scenario.claim =
      "sparse CSR round loop sustains the model at 10^6 boxes";
  scenario.plan = [] {
    sweep::ParameterGrid grid;
    grid.free_axis("n_base", kLadderBases);

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"served", "stalled", "matcher_edges", "rows_built", "row_patches",
          "kept"},
         [](const sweep::GridPoint& point, std::uint64_t /*seed*/) {
           const auto outcome = run_rung(rung_population(point.values[0]));
           return std::vector<double>{outcome.served, outcome.stalled,
                                      outcome.matcher_edges,
                                      outcome.rows_built, outcome.row_patches,
                                      outcome.kept};
         }});

    plan.render = [](const ScenarioRun& run, Emitter& out) {
      util::Table table(
          "u=2, c=4, k=6, 20-round Zipf audience + round-robin churn "
          "(sparse CSR round path)");
      table.set_header({"n", "served", "stalled", "edges", "rows built",
                        "row patches", "kept"});
      const auto count = [](double value) {
        return static_cast<std::uint64_t>(value);
      };
      for (std::size_t i = 0; i < kLadderBases.size(); ++i) {
        const auto& row = run.stage(0).row(i);
        table.begin_row()
            .cell(rung_population(kLadderBases[i]))
            .cell(count(row.metrics[0]))
            .cell(count(row.metrics[1]))
            .cell(count(row.metrics[2]))
            .cell(count(row.metrics[3]))
            .cell(count(row.metrics[4]))
            .cell(count(row.metrics[5]));
      }
      out.table(table, "E16_scaleladder");
      out.text("\nExpected shape: served scales ~linearly with n while rows "
               "built stays a small\nfraction of served — the sparse path "
               "collects only dirtied rows, where the dense\nloop would pay "
               "one row per live request per round. Row patches grow with "
               "the\ncache-grant rate; stalls stay near zero at u=2 "
               "(capacity is ample; the churn\ndrizzle only dents it). "
               "Throughput (rounds/sec) is in the per-stage wall_seconds\n"
               "field of BENCH_scaleladder.json, which the baseline diff "
               "ignores.\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
