// E13 (extension, not in the paper) — churn tolerance of the static
// allocation.
//
// Each round every online box fails independently with probability p (and
// recovers after `outage` rounds); a Zipf audience keeps demanding. The
// replication factor k is the knob. Each (p, k) cell is an independent grid
// point; seeds 0xE1300/0xE13AA + trial as in the serial harness.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/permutation.hpp"
#include "scenario/figures.hpp"
#include "scenario/sink.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/zipf.hpp"

namespace p2pvod::scenario {

namespace {

struct ChurnOutcome {
  double continuity = 0.0;
  double failures = 0.0;
  double aborted = 0.0;
};

ChurnOutcome run_churn(std::uint32_t n, std::uint32_t k, double fail_prob,
                       model::Round outage, std::uint32_t trials) {
  const std::uint32_t c = 4;
  const double d = 4.0;
  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(d * n / k));
  const model::Catalog catalog(m, c, 12);
  const auto profile = model::CapacityProfile::homogeneous(n, 2.0, d);

  ChurnOutcome out;
  for (std::uint32_t t = 0; t < trials; ++t) {
    util::Rng rng(0xE1300 + t);
    const auto allocation =
        alloc::PermutationAllocator().allocate(catalog, profile, k, rng);
    sim::PreloadingStrategy strategy;
    sim::SimulatorOptions options;
    options.strict = false;
    sim::Simulator simulator(catalog, profile, allocation, strategy, options);
    workload::ZipfDemand audience(m, 0.8, 0.15, 0xE13AA + t);

    std::vector<model::Round> down_until(n, -1);
    for (model::Round round = 0; round < 72; ++round) {
      for (model::BoxId b = 0; b < n; ++b) {
        if (down_until[b] >= 0 && round >= down_until[b]) {
          simulator.set_box_online(b, true);
          down_until[b] = -1;
        } else if (down_until[b] < 0 && rng.next_bool(fail_prob)) {
          simulator.set_box_online(b, false);
          down_until[b] = round + outage;
        }
      }
      simulator.step(audience.demands(simulator));
    }
    const auto& report = simulator.report();
    out.continuity += report.continuity();
    out.failures += static_cast<double>(report.box_failures);
    out.aborted += static_cast<double>(report.sessions_aborted);
  }
  out.continuity /= trials;
  out.failures /= trials;
  out.aborted /= trials;
  return out;
}

// Single source for both the grid axes and the table layout.
const std::vector<double> kFailProbs = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05};
const std::vector<double> kReplication = {2, 4, 8};

}  // namespace

Scenario make_churn_scenario() {
  Scenario scenario;
  scenario.id = "churn";
  scenario.figure = "E13";
  scenario.title = "E13 / churn figure (extension)";
  scenario.claim = "playback continuity vs per-round failure probability and k";
  scenario.plan = [] {
    const std::uint32_t n = util::scaled_count(48, 24);
    const std::uint32_t trials = util::scaled_count(3, 2);
    const model::Round outage = 6;

    sweep::ParameterGrid grid;
    grid.free_axis("p", kFailProbs).free_axis("k", kReplication);

    Plan plan;
    plan.stages.push_back(
        {"main", std::move(grid),
         {"continuity", "failures", "aborted"},
         [n, trials, outage](const sweep::GridPoint& point,
                             std::uint64_t /*seed*/) {
           const double p = point.values[0];
           const auto k = static_cast<std::uint32_t>(point.values[1]);
           const auto outcome = run_churn(n, k, p, outage, trials);
           return std::vector<double>{outcome.continuity, outcome.failures,
                                      outcome.aborted};
         }});

    plan.render = [n, trials](const ScenarioRun& run, Emitter& out) {
      util::Table table("n=" + std::to_string(n) +
                        ", u=2, c=4, outage=6 rounds, 72-round Zipf soak (" +
                        std::to_string(trials) + " seeds)");
      std::vector<std::string> header{"fail prob/round"};
      for (const double k : kReplication)
        header.push_back("k=" + std::to_string(static_cast<std::uint32_t>(k)) +
                         " continuity");
      header.push_back("failures (k=4)");
      header.push_back("aborted (k=4)");
      table.set_header(header);

      const std::size_t k_count = kReplication.size();
      for (std::size_t pi = 0; pi < kFailProbs.size(); ++pi) {
        table.begin_row().cell(kFailProbs[pi]);
        for (std::size_t ki = 0; ki < k_count; ++ki) {
          // Row-major (p slowest): cell (pi, ki) is point pi*|k| + ki.
          table.cell(run.stage(0).row(pi * k_count + ki).metrics[0], 4);
        }
        // failures/aborted columns report the middle k=4 cell (ki == 1).
        const auto& mid = run.stage(0).row(pi * k_count + 1);
        table.cell(mid.metrics[1], 3);
        table.cell(mid.metrics[2], 3);
      }
      out.table(table, "E13_churn");
      out.text("\nExpected shape: continuity 1.0 with no churn, degrading as "
               "the failure rate\ngrows; higher k tolerates visibly more "
               "churn (a stripe stays reachable while\nany of its k holders "
               "lives). Aborted sessions grow ~linearly with the failure\n"
               "rate regardless of k (a failed viewer always loses its own "
               "playback).\n");
    };
    return plan;
  };
  return scenario;
}

}  // namespace p2pvod::scenario
