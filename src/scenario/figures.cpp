#include "scenario/figures.hpp"

namespace p2pvod::scenario {

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.add(make_table1_scenario());
  registry.add(make_threshold_scenario());
  registry.add(make_catalog_scaling_scenario());
  registry.add(make_replication_scenario());
  registry.add(make_swarm_growth_scenario());
  registry.add(make_allocation_scenario());
  registry.add(make_hetero_scenario());
  registry.add(make_tradeoff_scenario());
  registry.add(make_startup_delay_scenario());
  registry.add(make_obstruction_scenario());
  registry.add(make_baseline_scenario());
  registry.add(make_churn_scenario());
  registry.add(make_crosszone_scenario());
  registry.add(make_zonecap_scenario());
  registry.add(make_scaleladder_scenario());
  registry.add(make_placement_scenario());
}

}  // namespace p2pvod::scenario
