// Process-wide scenario registry.
//
// The registry maps scenario ids to their definitions; the unified
// p2pvod_bench driver, the legacy per-figure shim binaries, and the tests
// all resolve scenarios through it. Instances are cheap (tests build their
// own); builtin() is the lazily-populated singleton holding the 14 builtin
// figure/table scenarios, registered explicitly (no static-initializer
// tricks, so nothing depends on object-file link order).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace p2pvod::scenario {

class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  /// Register a scenario. Throws std::invalid_argument on an empty id, a
  /// duplicate id, or a missing plan.
  void add(Scenario scenario);

  /// Lookup by id; nullptr when absent.
  [[nodiscard]] const Scenario* find(const std::string& id) const noexcept;

  /// Lookup by id; throws std::out_of_range (message lists known ids).
  [[nodiscard]] const Scenario& at(const std::string& id) const;

  /// All scenarios in registration order. Pointers stay valid across later
  /// add() calls (deque storage).
  [[nodiscard]] std::vector<const Scenario*> list() const;

  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }

  /// The 14 builtin scenarios (E1..E11, E13..E15), registered on first use.
  static const ScenarioRegistry& builtin();

 private:
  std::deque<Scenario> scenarios_;
};

}  // namespace p2pvod::scenario
