// Network topology: the zones (ISPs, regions) the boxes live in.
//
// The paper's model treats the network as a uniform cloud — any box can serve
// any other box at zero cost. The practical-algorithms line it builds on
// (Viennot et al.; Tan & Massoulié on placement) shows that *where* replicas
// sit relative to demand decides whether the threshold is achievable in a
// real network. Topology is the missing layer: every box belongs to exactly
// one zone, serving across zones carries a per-zone-pair cost, and a zone
// pair may carry an optional link capacity cap (stripe connections per
// round). The simulator consumes a Topology to make the per-round connection
// matching cost-aware (src/flow/min_cost.hpp) and to account cross-zone
// traffic in RunReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"

namespace p2pvod::net {

using ZoneId = std::uint32_t;

/// Cost of one stripe connection between a zone pair, in abstract transit
/// units. Integral so min-cost matching stays exact (no float comparisons).
using Cost = std::int64_t;

/// Sentinel for "no cap" on a zone-pair link.
inline constexpr std::uint32_t kUnlimitedLink =
    static_cast<std::uint32_t>(-1);

class Topology {
 public:
  /// Explicit membership: zone_of[b] is box b's zone, each < zone_count.
  /// Costs default to zero everywhere, links to unlimited.
  Topology(std::vector<ZoneId> zone_of, std::uint32_t zone_count);

  // --- deterministic zone-assignment builders ---

  /// Round-robin assignment: box b lives in zone b % zones. Zone sizes differ
  /// by at most one.
  [[nodiscard]] static Topology uniform(std::uint32_t boxes,
                                        std::uint32_t zones);

  /// Zipf-sized zones: zone z receives a share proportional to 1/(z+1)^skew
  /// (largest-remainder rounding, every zone at least one box when boxes >=
  /// zones); which boxes land in which zone is a seeded permutation, so the
  /// same (boxes, zones, skew, seed) always yields the same topology.
  [[nodiscard]] static Topology zipf_sized(std::uint32_t boxes,
                                           std::uint32_t zones, double skew,
                                           std::uint64_t seed);

  /// Independent uniform assignment per box from a seeded RNG (zones may end
  /// up empty). Deterministic for a given seed.
  [[nodiscard]] static Topology random(std::uint32_t boxes,
                                       std::uint32_t zones,
                                       std::uint64_t seed);

  // --- cost model (chainable setters) ---

  /// cost(z, z) = intra for all z; cost(a, b) = inter for all a != b.
  Topology& set_uniform_cost(Cost intra, Cost inter);
  /// Directed per-pair override (serving from `from` into `to`).
  Topology& set_cost(ZoneId from, ZoneId to, Cost cost);
  /// Cost of a connection served from zone `from` into zone `to`.
  [[nodiscard]] Cost cost(ZoneId from, ZoneId to) const;
  /// Cost of `server` uploading one stripe connection to `client`.
  [[nodiscard]] Cost box_cost(model::BoxId server, model::BoxId client) const {
    return cost(zone_of(server), zone_of(client));
  }
  /// True when every zone-pair cost is zero (min-cost matching then degrades
  /// to the plain Dinic feasibility solve).
  [[nodiscard]] bool all_costs_zero() const noexcept;

  // --- link capacity caps (chainable setters) ---

  /// Cap every inter-zone pair (a != b) at `cap` connections per round;
  /// intra-zone links stay unlimited.
  Topology& set_uniform_link_cap(std::uint32_t cap);
  /// Directed per-pair cap; kUnlimitedLink removes it.
  Topology& set_link_cap(ZoneId from, ZoneId to, std::uint32_t cap);
  [[nodiscard]] std::uint32_t link_cap(ZoneId from, ZoneId to) const;
  [[nodiscard]] bool has_link_caps() const noexcept;

  // --- membership queries ---

  [[nodiscard]] ZoneId zone_of(model::BoxId b) const {
    return zone_of_.at(b);
  }
  [[nodiscard]] std::uint32_t zone_count() const noexcept {
    return zone_count_;
  }
  [[nodiscard]] std::uint32_t box_count() const noexcept {
    return static_cast<std::uint32_t>(zone_of_.size());
  }
  [[nodiscard]] std::uint32_t zone_size(ZoneId z) const;
  /// Box ids of zone z, ascending.
  [[nodiscard]] std::vector<model::BoxId> members(ZoneId z) const;

  [[nodiscard]] std::string describe() const;

 private:
  [[nodiscard]] std::size_t pair_index(ZoneId from, ZoneId to) const;

  std::vector<ZoneId> zone_of_;
  std::uint32_t zone_count_ = 0;
  std::vector<Cost> cost_;            ///< zone_count^2, row-major [from][to]
  std::vector<std::uint32_t> link_cap_;  ///< same layout; kUnlimitedLink = none
};

}  // namespace p2pvod::net
