#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace p2pvod::net {

Topology::Topology(std::vector<ZoneId> zone_of, std::uint32_t zone_count)
    : zone_of_(std::move(zone_of)),
      zone_count_(zone_count),
      cost_(static_cast<std::size_t>(zone_count) * zone_count, 0),
      link_cap_(static_cast<std::size_t>(zone_count) * zone_count,
                kUnlimitedLink) {
  if (zone_count_ == 0)
    throw std::invalid_argument("Topology: zone_count must be positive");
  for (const ZoneId z : zone_of_) {
    if (z >= zone_count_)
      throw std::invalid_argument("Topology: box zone out of range");
  }
}

Topology Topology::uniform(std::uint32_t boxes, std::uint32_t zones) {
  if (zones == 0)
    throw std::invalid_argument("Topology::uniform: zones must be positive");
  std::vector<ZoneId> zone_of(boxes);
  for (std::uint32_t b = 0; b < boxes; ++b) zone_of[b] = b % zones;
  return Topology(std::move(zone_of), zones);
}

Topology Topology::zipf_sized(std::uint32_t boxes, std::uint32_t zones,
                              double skew, std::uint64_t seed) {
  if (zones == 0)
    throw std::invalid_argument("Topology::zipf_sized: zones must be positive");
  if (!(skew >= 0.0))
    throw std::invalid_argument(
        "Topology::zipf_sized: skew must be non-negative");

  // Zone z's share ~ 1/(z+1)^skew; largest-remainder rounding so the sizes
  // sum to `boxes` exactly. When boxes >= zones every zone keeps at least one
  // box (a zero-sized "ISP" is a degenerate topology nobody intends here).
  std::vector<double> weight(zones);
  double total = 0.0;
  for (std::uint32_t z = 0; z < zones; ++z) {
    weight[z] = 1.0 / std::pow(static_cast<double>(z + 1), skew);
    total += weight[z];
  }
  const std::uint32_t reserved = boxes >= zones ? zones : 0;
  const std::uint32_t to_share = boxes - reserved;
  std::vector<std::uint32_t> size(zones, reserved > 0 ? 1u : 0u);
  std::vector<std::pair<double, ZoneId>> remainder(zones);
  std::uint32_t assigned = 0;
  for (std::uint32_t z = 0; z < zones; ++z) {
    const double exact = to_share * weight[z] / total;
    const auto whole = static_cast<std::uint32_t>(exact);
    size[z] += whole;
    assigned += whole;
    remainder[z] = {exact - whole, z};
  }
  // Ties broken toward the lower zone id: stable order in, stable sort.
  std::stable_sort(remainder.begin(), remainder.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::uint32_t i = 0; assigned < to_share; ++i, ++assigned) {
    ++size[remainder[i % zones].second];
  }

  // A seeded permutation decides which boxes land where, so two topologies
  // with the same parameters and seed are identical.
  util::Rng rng(seed);
  const std::vector<std::uint32_t> order = rng.permutation(boxes);
  std::vector<ZoneId> zone_of(boxes);
  std::uint32_t cursor = 0;
  for (ZoneId z = 0; z < zones; ++z) {
    for (std::uint32_t i = 0; i < size[z]; ++i) zone_of[order[cursor++]] = z;
  }
  return Topology(std::move(zone_of), zones);
}

Topology Topology::random(std::uint32_t boxes, std::uint32_t zones,
                          std::uint64_t seed) {
  if (zones == 0)
    throw std::invalid_argument("Topology::random: zones must be positive");
  util::Rng rng(seed);
  std::vector<ZoneId> zone_of(boxes);
  for (std::uint32_t b = 0; b < boxes; ++b)
    zone_of[b] = static_cast<ZoneId>(rng.next_below(zones));
  return Topology(std::move(zone_of), zones);
}

std::size_t Topology::pair_index(ZoneId from, ZoneId to) const {
  if (from >= zone_count_ || to >= zone_count_)
    throw std::out_of_range("Topology: zone id out of range");
  return static_cast<std::size_t>(from) * zone_count_ + to;
}

Topology& Topology::set_uniform_cost(Cost intra, Cost inter) {
  if (intra < 0 || inter < 0)
    throw std::invalid_argument("Topology: costs must be non-negative");
  for (ZoneId a = 0; a < zone_count_; ++a) {
    for (ZoneId b = 0; b < zone_count_; ++b) {
      cost_[pair_index(a, b)] = (a == b) ? intra : inter;
    }
  }
  return *this;
}

Topology& Topology::set_cost(ZoneId from, ZoneId to, Cost cost) {
  if (cost < 0)
    throw std::invalid_argument("Topology: costs must be non-negative");
  cost_[pair_index(from, to)] = cost;
  return *this;
}

Cost Topology::cost(ZoneId from, ZoneId to) const {
  return cost_[pair_index(from, to)];
}

bool Topology::all_costs_zero() const noexcept {
  return std::all_of(cost_.begin(), cost_.end(),
                     [](Cost c) { return c == 0; });
}

Topology& Topology::set_uniform_link_cap(std::uint32_t cap) {
  for (ZoneId a = 0; a < zone_count_; ++a) {
    for (ZoneId b = 0; b < zone_count_; ++b) {
      if (a != b) link_cap_[pair_index(a, b)] = cap;
    }
  }
  return *this;
}

Topology& Topology::set_link_cap(ZoneId from, ZoneId to, std::uint32_t cap) {
  link_cap_[pair_index(from, to)] = cap;
  return *this;
}

std::uint32_t Topology::link_cap(ZoneId from, ZoneId to) const {
  return link_cap_[pair_index(from, to)];
}

bool Topology::has_link_caps() const noexcept {
  return std::any_of(link_cap_.begin(), link_cap_.end(),
                     [](std::uint32_t cap) { return cap != kUnlimitedLink; });
}

std::uint32_t Topology::zone_size(ZoneId z) const {
  if (z >= zone_count_)
    throw std::out_of_range("Topology::zone_size: zone id out of range");
  std::uint32_t count = 0;
  for (const ZoneId zone : zone_of_) {
    if (zone == z) ++count;
  }
  return count;
}

std::vector<model::BoxId> Topology::members(ZoneId z) const {
  if (z >= zone_count_)
    throw std::out_of_range("Topology::members: zone id out of range");
  std::vector<model::BoxId> out;
  for (model::BoxId b = 0; b < zone_of_.size(); ++b) {
    if (zone_of_[b] == z) out.push_back(b);
  }
  return out;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << "topology zones=" << zone_count_ << " boxes=" << box_count()
      << " sizes=[";
  for (ZoneId z = 0; z < zone_count_; ++z) {
    if (z > 0) out << ',';
    out << zone_size(z);
  }
  out << ']';
  if (!all_costs_zero()) out << " costed";
  if (has_link_caps()) out << " capped";
  return out.str();
}

}  // namespace p2pvod::net
