#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "model/capacity.hpp"

namespace p2pvod::core {

CatalogPlanner::CatalogPlanner(std::uint32_t n, double u, double d, double mu,
                               model::Round duration)
    : n_(n), u_(u), d_(d), mu_(mu), duration_(duration) {}

analysis::HomogeneousBounds CatalogPlanner::bounds() const {
  return analysis::Theorem1::evaluate({u_, d_, mu_});
}

Plan CatalogPlanner::plan(PlanMode mode, std::uint32_t trials,
                          std::uint64_t seed) const {
  Plan out;
  const auto profile = model::CapacityProfile::homogeneous(n_, u_, d_);
  const auto b = bounds();
  const auto verdict = Verdict::classify(profile, std::max(b.c, 1u));
  out.regime = verdict.regime;

  std::ostringstream notes;
  if (verdict.regime != Regime::kScalable) {
    out.feasible = false;
    notes << verdict.message;
    out.notes = notes.str();
    return out;
  }

  out.c = b.c;
  out.k_theory = b.k_real;
  out.m_closed_form =
      analysis::Theorem1::catalog_closed_form(n_, u_, d_, mu_);

  if (mode == PlanMode::kTheory) {
    out.k = b.k;
    out.m = b.catalog(n_);
    out.feasible = b.valid && out.m >= 1;
    notes << "Theorem 1 prescription: " << b.describe();
    // With small n the theoretical k can exceed the storage budget d·n —
    // the theorem is asymptotic; flag instead of failing silently.
    if (static_cast<double>(out.k) > d_ * static_cast<double>(n_)) {
      out.feasible = false;
      notes << " [k exceeds storage budget d*n at this n]";
    }
  } else {
    analysis::TrialSpec spec;
    spec.n = n_;
    spec.u = u_;
    spec.d = d_;
    spec.mu = mu_;
    spec.c = std::max(1u, b.c);
    spec.duration = duration_;
    spec.rounds = 3 * duration_;
    const auto k_hi = static_cast<std::uint32_t>(
        std::max(1.0, d_ * static_cast<double>(n_) / 2.0));
    const auto result = analysis::Calibrator::min_feasible_k_speculative(
        spec, 1, k_hi, 1.0, trials, seed);
    out.k = result.k;
    out.m = result.catalog;
    out.feasible = result.k != 0;
    notes << "calibrated k over " << trials << " trials (suite=full, c="
          << spec.c << ")";
  }
  out.notes = notes.str();
  return out;
}

}  // namespace p2pvod::core
