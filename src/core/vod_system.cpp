#include "core/vod_system.hpp"

#include <sstream>
#include <stdexcept>

#include "analysis/bounds.hpp"
#include "hetero/relay.hpp"
#include "model/params.hpp"
#include "util/rng.hpp"
#include "workload/demand.hpp"

namespace p2pvod::core {

VodSystem::VodSystem(SystemConfig config, model::CapacityProfile profile)
    : config_(std::move(config)), profile_(std::move(profile)) {}

VodSystem VodSystem::build(const SystemConfig& config) {
  config.validate();
  VodSystem system(config,
                   model::CapacityProfile::homogeneous(config.n, config.u,
                                                       config.d));
  SystemConfig& cfg = system.config_;

  // Derive protocol parameters from Theorem 1 where not overridden.
  if (cfg.c == 0 || cfg.k == 0) {
    const auto bounds =
        analysis::Theorem1::evaluate({cfg.u, cfg.d, cfg.mu}, cfg.c);
    if (cfg.c == 0) {
      if (bounds.c == 0)
        throw std::invalid_argument(
            "VodSystem::build: u <= 1, Theorem 1 cannot derive c; set c "
            "explicitly");
      cfg.c = bounds.c;
    }
    if (cfg.k == 0) {
      if (!bounds.valid)
        throw std::invalid_argument(
            "VodSystem::build: Theorem 1 bound invalid for these "
            "parameters; set k explicitly");
      cfg.k = bounds.k;
    }
  }
  if (cfg.m == 0) {
    cfg.m = model::SystemParams::catalog_from_replication(cfg.n, cfg.d, cfg.k);
  }

  system.catalog_ =
      std::make_unique<model::Catalog>(cfg.m, cfg.c, cfg.duration);
  util::Rng rng(cfg.seed);
  const auto allocator = alloc::make_allocator(cfg.scheme);
  system.allocation_ = std::make_unique<alloc::Allocation>(
      allocator->allocate(*system.catalog_, system.profile_, cfg.k, rng));
  system.strategy_ = sim::make_strategy(cfg.strategy);

  system.simulator_options_.engine = cfg.engine;
  system.simulator_options_.incremental = cfg.incremental_matching;
  system.simulator_options_.strict = cfg.strict;
  system.install_topology();
  return system;
}

VodSystem VodSystem::build_heterogeneous(const SystemConfig& config,
                                         model::CapacityProfile profile,
                                         double u_star) {
  config.validate();
  if (profile.size() != config.n)
    throw std::invalid_argument(
        "VodSystem::build_heterogeneous: profile size != n");

  VodSystem system(config, std::move(profile));
  SystemConfig& cfg = system.config_;
  cfg.u = system.profile_.average_upload();
  cfg.d = system.profile_.average_storage();

  if (cfg.c == 0 || cfg.k == 0) {
    const auto bounds =
        analysis::Theorem2::evaluate({u_star, cfg.d, cfg.mu}, cfg.c);
    if (cfg.c == 0) {
      if (bounds.c == 0)
        throw std::invalid_argument(
            "VodSystem::build_heterogeneous: u* <= 1; set c explicitly");
      cfg.c = bounds.c;
    }
    if (cfg.k == 0) {
      if (!bounds.valid)
        throw std::invalid_argument(
            "VodSystem::build_heterogeneous: Theorem 2 bound invalid; set k "
            "explicitly");
      cfg.k = bounds.k;
    }
  }
  if (cfg.m == 0) {
    cfg.m = model::SystemParams::catalog_from_replication(cfg.n, cfg.d, cfg.k);
  }

  auto plan = hetero::Compensator::plan(system.profile_, u_star, cfg.c,
                                        cfg.mu);
  if (!plan) {
    throw std::invalid_argument(
        "VodSystem::build_heterogeneous: no feasible u*-compensation "
        "(deficit too large for the rich boxes)");
  }
  plan->check(system.profile_);
  system.compensation_ = std::move(*plan);

  system.catalog_ =
      std::make_unique<model::Catalog>(cfg.m, cfg.c, cfg.duration);
  util::Rng rng(cfg.seed);
  const auto allocator = alloc::make_allocator(cfg.scheme);
  system.allocation_ = std::make_unique<alloc::Allocation>(
      allocator->allocate(*system.catalog_, system.profile_, cfg.k, rng));
  system.strategy_ =
      std::make_unique<hetero::RelayStrategy>(*system.compensation_);

  system.simulator_options_.engine = cfg.engine;
  system.simulator_options_.incremental = cfg.incremental_matching;
  system.simulator_options_.strict = cfg.strict;
  system.simulator_options_.capacity_override =
      system.compensation_->capacity_slots();
  system.install_topology();
  return system;
}

void VodSystem::install_topology() {
  if (config_.zones == 0) return;
  // Round-robin zones with unit inter-zone transit cost: the matching then
  // minimizes cross-zone traffic each round without changing feasibility.
  auto topology = net::Topology::uniform(config_.n, config_.zones);
  topology.set_uniform_cost(0, 1);
  topology_ = std::make_unique<net::Topology>(std::move(topology));
  simulator_options_.topology = topology_.get();
}

std::unique_ptr<sim::Simulator> VodSystem::make_simulator() const {
  return std::make_unique<sim::Simulator>(*catalog_, profile_, *allocation_,
                                          *strategy_, simulator_options_);
}

sim::RunReport VodSystem::run(workload::DemandGenerator& generator,
                              model::Round rounds) const {
  return make_simulator()->run(generator, rounds);
}

std::string VodSystem::describe() const {
  std::ostringstream out;
  out << config_.describe() << " | " << catalog_->describe() << " | "
      << allocation_->describe();
  if (compensation_) out << " | " << compensation_->describe();
  if (topology_) out << " | " << topology_->describe();
  return out.str();
}

}  // namespace p2pvod::core
