// CatalogPlanner: turn deployment parameters into protocol parameters.
//
// Given (n, u, d, µ) the planner prescribes (c, k, m) two ways:
//   * kTheory     — Theorem 1's formulas verbatim (conservative: the theorem's
//                   constants are worst-case over all adversaries);
//   * kCalibrated — the theory's c plus an empirically calibrated k from
//                   Monte-Carlo trials against the adversarial suite (what a
//                   deployment would actually provision).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/calibrate.hpp"
#include "core/verdict.hpp"

namespace p2pvod::core {

enum class PlanMode { kTheory, kCalibrated };

struct Plan {
  bool feasible = false;
  Regime regime = Regime::kAtThreshold;
  std::uint32_t c = 0;
  std::uint32_t k = 0;
  std::uint32_t m = 0;        ///< achievable catalog with this (c, k)
  double k_theory = 0.0;      ///< the un-rounded Theorem 1 bound
  double m_closed_form = 0.0; ///< the Ω(·) closed-form catalog value
  std::string notes;
};

class CatalogPlanner {
 public:
  CatalogPlanner(std::uint32_t n, double u, double d, double mu,
                 model::Round duration = 24);

  [[nodiscard]] Plan plan(PlanMode mode = PlanMode::kTheory,
                          std::uint32_t trials = 8,
                          std::uint64_t seed = 0x9e3779b9ULL) const;

  /// The underlying Theorem 1 evaluation (exposed for reports).
  [[nodiscard]] analysis::HomogeneousBounds bounds() const;

 private:
  std::uint32_t n_;
  double u_;
  double d_;
  double mu_;
  model::Round duration_;
};

}  // namespace p2pvod::core
