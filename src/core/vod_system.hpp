// VodSystem: the library's front door.
//
// Owns a complete system instance — catalog, capacity profile, static
// allocation, request strategy — and spins up fresh simulators to run demand
// workloads against it. Homogeneous systems derive (c, k, m) from Theorem 1
// unless overridden; heterogeneous systems take a capacity profile and a
// threshold u*, derive (c, k, m) from Theorem 2, and wire the §4 relay
// machinery (compensation plan + relay strategy + reduced matching
// capacities) automatically.
//
// Typical use (see examples/quickstart.cpp):
//   auto system = core::VodSystem::build(config);
//   workload::ZipfDemand zipf(system.catalog().video_count(), 0.8, 0.05, 7);
//   auto report = system.run(zipf, /*rounds=*/200);
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "alloc/allocation.hpp"
#include "core/config.hpp"
#include "hetero/compensation.hpp"
#include "model/capacity.hpp"
#include "model/catalog.hpp"
#include "net/topology.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "sim/strategy.hpp"

namespace p2pvod::core {

class VodSystem {
 public:
  /// Build a homogeneous system from the config (Theorem 1 fills c, k, m).
  [[nodiscard]] static VodSystem build(const SystemConfig& config);

  /// Build a heterogeneous system: Theorem 2 fills c and k from (u*, d, µ);
  /// the §4 compensation plan and relay strategy are installed. Throws
  /// std::invalid_argument when the profile cannot be u*-compensated.
  [[nodiscard]] static VodSystem build_heterogeneous(
      const SystemConfig& config, model::CapacityProfile profile,
      double u_star);

  /// Run a workload for `rounds` rounds on a fresh simulator.
  [[nodiscard]] sim::RunReport run(workload::DemandGenerator& generator,
                                   model::Round rounds) const;

  /// A fresh simulator for step-level control (kept alive by the caller; the
  /// VodSystem must outlive it).
  [[nodiscard]] std::unique_ptr<sim::Simulator> make_simulator() const;

  // --- accessors ---
  [[nodiscard]] const model::Catalog& catalog() const { return *catalog_; }
  [[nodiscard]] const model::CapacityProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] const alloc::Allocation& allocation() const {
    return *allocation_;
  }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const std::optional<hetero::CompensationPlan>& compensation()
      const {
    return compensation_;
  }
  /// The zone topology simulators run against (config.zones > 0), else null.
  [[nodiscard]] const net::Topology* topology() const {
    return topology_.get();
  }
  [[nodiscard]] std::string describe() const;

 private:
  VodSystem(SystemConfig config, model::CapacityProfile profile);
  /// Build the zone topology from config.zones and point the simulator
  /// options at it (no-op when zones == 0).
  void install_topology();

  SystemConfig config_;
  model::CapacityProfile profile_;
  std::unique_ptr<model::Catalog> catalog_;
  std::unique_ptr<alloc::Allocation> allocation_;
  std::unique_ptr<sim::RequestStrategy> strategy_;
  std::optional<hetero::CompensationPlan> compensation_;
  std::unique_ptr<net::Topology> topology_;  ///< stable address for options_
  sim::SimulatorOptions simulator_options_;
};

}  // namespace p2pvod::core
