// SystemConfig: the user-facing knob set for building a VodSystem.
//
// Only (n, u, d, µ, T) are required; c, k and m default to the Theorem 1
// prescription (see core/planner.hpp) and can be overridden for experiments.
#pragma once

#include <cstdint>
#include <string>

#include "alloc/allocator.hpp"
#include "flow/bipartite.hpp"
#include "model/ids.hpp"
#include "sim/strategy.hpp"

namespace p2pvod::core {

struct SystemConfig {
  // --- the (n, u, d)-video system ---
  std::uint32_t n = 200;  ///< boxes
  double u = 1.5;         ///< normalized upload (streams)
  double d = 4.0;         ///< storage (videos)

  // --- dynamics ---
  double mu = 1.3;              ///< maximal swarm growth
  model::Round duration = 24;   ///< video duration T in rounds

  // --- protocol overrides (0 = derive from Theorem 1) ---
  std::uint32_t c = 0;  ///< stripes per video
  std::uint32_t k = 0;  ///< replicas per stripe
  std::uint32_t m = 0;  ///< catalog size (0 = ⌊d·n/k⌋)

  // --- network topology (0 = the paper's uniform cloud, no topology) ---
  /// Number of zones; boxes are assigned round-robin and serving across
  /// zones costs 1 transit unit per connection (intra-zone is free). The
  /// matching then minimizes cross-zone traffic (src/net, flow/min_cost).
  std::uint32_t zones = 0;

  // --- machinery ---
  alloc::Scheme scheme = alloc::Scheme::kPermutation;
  sim::StrategyKind strategy = sim::StrategyKind::kPreloading;
  flow::Engine engine = flow::Engine::kDinic;
  bool incremental_matching = true;
  bool strict = true;
  std::uint64_t seed = 0x5eedULL;

  /// Throws std::invalid_argument on out-of-domain values.
  void validate() const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace p2pvod::core
