#include "core/config.hpp"

#include <sstream>
#include <stdexcept>

namespace p2pvod::core {

void SystemConfig::validate() const {
  auto fail = [](const std::string& message) {
    throw std::invalid_argument("SystemConfig: " + message);
  };
  if (n == 0) fail("n must be positive");
  if (u < 0.0) fail("u must be non-negative");
  if (d <= 0.0) fail("d must be positive");
  if (mu < 1.0) fail("mu must be at least 1");
  if (duration <= 0) fail("duration must be positive");
  if (zones > n) fail("zones must not exceed n");
}

std::string SystemConfig::describe() const {
  std::ostringstream out;
  out << "config n=" << n << " u=" << u << " d=" << d << " mu=" << mu
      << " T=" << duration;
  if (c != 0) out << " c=" << c;
  if (k != 0) out << " k=" << k;
  if (m != 0) out << " m=" << m;
  if (zones != 0) out << " zones=" << zones;
  out << " scheme=" << alloc::scheme_name(scheme) << " seed=" << seed;
  return out.str();
}

}  // namespace p2pvod::core
