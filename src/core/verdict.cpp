#include "core/verdict.hpp"

#include <cmath>
#include <sstream>

namespace p2pvod::core {

const char* regime_name(Regime regime) noexcept {
  switch (regime) {
    case Regime::kBelowThreshold:
      return "below-threshold";
    case Regime::kAtThreshold:
      return "at-threshold";
    case Regime::kScalable:
      return "scalable";
    case Regime::kDeficitBound:
      return "deficit-bound";
  }
  return "unknown";
}

ScalabilityVerdict Verdict::classify(const model::CapacityProfile& profile,
                                     std::uint32_t c, double tolerance) {
  ScalabilityVerdict verdict;
  verdict.u = profile.average_upload();
  verdict.deficit_per_box =
      profile.upload_deficit(1.0) / static_cast<double>(profile.size());

  std::ostringstream out;
  if (verdict.u < 1.0 - tolerance) {
    verdict.regime = Regime::kBelowThreshold;
    verdict.constant_catalog_limit = static_cast<std::uint32_t>(
        std::floor(profile.max_storage() * static_cast<double>(c) + 1e-9));
    out << "u=" << verdict.u << " < 1: catalog cannot exceed d_max*c="
        << verdict.constant_catalog_limit << " (Section 1.3).";
  } else if (std::abs(verdict.u - 1.0) <= tolerance) {
    verdict.regime = Regime::kAtThreshold;
    out << "u=1: exactly at the threshold; neither bound applies.";
  } else if (!profile.is_homogeneous() &&
             verdict.u <= 1.0 + verdict.deficit_per_box + tolerance) {
    verdict.regime = Regime::kDeficitBound;
    out << "heterogeneous with u=" << verdict.u
        << " <= 1 + Delta(1)/n=" << 1.0 + verdict.deficit_per_box
        << ": upload compensation cannot cover the deficit (Section 4).";
  } else {
    verdict.regime = Regime::kScalable;
    out << "u=" << verdict.u
        << " > 1: linear catalog achievable (Theorem "
        << (profile.is_homogeneous() ? "1" : "2") << ").";
  }
  verdict.message = out.str();
  return verdict;
}

}  // namespace p2pvod::core
