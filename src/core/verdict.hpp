// ScalabilityVerdict: where does a configuration sit w.r.t. the threshold?
//
// The paper's dichotomy (abstract, §1.3, Theorems 1-2):
//   u < 1                      -> catalog stuck at O(1) (m <= d_max·c)
//   u > 1 (homogeneous)        -> m = Ω(n) achievable (Theorem 1)
//   heterogeneous              -> needs u > 1 + Δ(1)/n, and a u*-balanced
//                                 system with u* > 1 scales (Theorem 2)
#pragma once

#include <cstdint>
#include <string>

#include "model/capacity.hpp"

namespace p2pvod::core {

enum class Regime {
  kBelowThreshold,    ///< u < 1: constant catalog only
  kAtThreshold,       ///< u == 1 (within tolerance): boundary, no guarantee
  kScalable,          ///< u > 1 homogeneous (or balanced heterogeneous)
  kDeficitBound,      ///< heterogeneous with u <= 1 + Δ(1)/n: not compensable
};

[[nodiscard]] const char* regime_name(Regime regime) noexcept;

struct ScalabilityVerdict {
  Regime regime = Regime::kAtThreshold;
  double u = 1.0;               ///< average upload
  double deficit_per_box = 0.0; ///< Δ(1)/n
  std::uint32_t constant_catalog_limit = 0;  ///< ⌊d_max·c⌋ when below threshold
  std::string message;
};

class Verdict {
 public:
  /// Classify with the given stripe count (for the constant-catalog limit).
  [[nodiscard]] static ScalabilityVerdict classify(
      const model::CapacityProfile& profile, std::uint32_t c,
      double tolerance = 1e-9);
};

}  // namespace p2pvod::core
