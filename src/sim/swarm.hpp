// Swarm registry: per-video population accounting and preload tickets.
//
// The paper bounds the growth of each swarm — the population of boxes
// viewing the same video — by f(t+1) <= ceil(max(f(t),1) * µ) and balances
// preload stripes by numbering boxes as they enter: "the pth box then
// preloads stripe number p modulo c" (§3). SwarmRegistry owns both.
#pragma once

#include <cstdint>
#include <vector>

#include "model/ids.hpp"

namespace p2pvod::sim {

class SwarmRegistry {
 public:
  explicit SwarmRegistry(std::uint32_t video_count);

  /// A box enters the swarm of `v` (demand admitted at round `now`); returns
  /// the box's entry number p (0-based) for preload-stripe selection.
  std::uint64_t enter(model::VideoId v, model::Round now);

  /// A viewing session of `v` ended (box left the swarm).
  void leave(model::VideoId v);

  /// Called once per round *before* demands are admitted; freezes f(t-1)
  /// used by the growth rule.
  void begin_round(model::Round now);

  /// Current population f(t) of the swarm of v.
  [[nodiscard]] std::uint32_t size(model::VideoId v) const;
  /// Population at the start of the round, before this round's joins.
  [[nodiscard]] std::uint32_t size_at_round_start(model::VideoId v) const;
  /// Lifetime entry counter (the preload ticket counter).
  [[nodiscard]] std::uint64_t total_entries(model::VideoId v) const;

  /// Joins still admissible this round under growth bound µ:
  /// ceil(max(f_start,1) * µ) - f_current, clamped at 0.
  [[nodiscard]] std::uint32_t admissible_joins(model::VideoId v,
                                               double mu) const;

  /// Largest swarm size ever observed (report metric).
  [[nodiscard]] std::uint32_t peak_size() const noexcept { return peak_; }

  [[nodiscard]] std::uint32_t video_count() const noexcept {
    return static_cast<std::uint32_t>(current_.size());
  }

 private:
  std::vector<std::uint32_t> current_;      // f(t) live
  std::vector<std::uint32_t> round_start_;  // f at begin_round
  std::vector<std::uint64_t> entries_;      // lifetime joins
  std::uint32_t peak_ = 0;
};

}  // namespace p2pvod::sim
