// Request strategies: how a demand for a video turns into stripe requests.
//
// The paper's positive results hinge on the §3 *preloading* strategy: on a
// demand for v at round t, one stripe — chosen round-robin by the box's entry
// number in the swarm of v — is requested at t, and the remaining c-1 are
// postponed to t+1. This staggering is what lets a swarm that doubles every
// round serve itself: the pth joiner's preload stripe is spread uniformly, so
// every stripe of v acquires fresh cached copies at every round.
//
// The *naive* strategy (all c stripes at t) is the ablation: with it, all
// simultaneous joiners sit at the same position and can never serve each
// other, so flash crowds must be absorbed by the k static replicas alone.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "sim/request.hpp"

namespace p2pvod::sim {

class Simulator;  // strategies query swarm tickets and local storage

class RequestStrategy {
 public:
  virtual ~RequestStrategy() = default;

  /// Plan the stripe requests for a demand (box `b` wants video `v`, admitted
  /// at round `now`; `ticket` is b's entry number in the swarm of v, the "p"
  /// of the §3 round-robin preload rule). Implementations append
  /// PlannedRequests to `out`; stripes stored statically on `b` are played
  /// locally and need none.
  virtual void plan(model::BoxId b, model::VideoId v, std::uint64_t ticket,
                    model::Round now, Simulator& sim,
                    std::vector<PlannedRequest>& out) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// §3 preloading strategy (the paper's). Start-up delay: 3 rounds.
class PreloadingStrategy final : public RequestStrategy {
 public:
  void plan(model::BoxId b, model::VideoId v, std::uint64_t ticket,
            model::Round now, Simulator& sim,
            std::vector<PlannedRequest>& out) override;
  [[nodiscard]] std::string name() const override { return "preloading"; }
};

/// Ablation: request all c stripes immediately at t.
class NaiveStrategy final : public RequestStrategy {
 public:
  void plan(model::BoxId b, model::VideoId v, std::uint64_t ticket,
            model::Round now, Simulator& sim,
            std::vector<PlannedRequest>& out) override;
  [[nodiscard]] std::string name() const override { return "naive"; }
};

enum class StrategyKind { kPreloading, kNaive };
[[nodiscard]] std::unique_ptr<RequestStrategy> make_strategy(
    StrategyKind kind);

}  // namespace p2pvod::sim
