#include "sim/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace p2pvod::sim {

CacheIndex::CacheIndex(std::uint32_t stripe_count, model::Round window)
    : per_stripe_(stripe_count), window_(window) {
  if (window <= 0) throw std::invalid_argument("CacheIndex: window <= 0");
}

void CacheIndex::grant(model::StripeId stripe, model::BoxId box,
                       model::Round entry) {
  if (stripe >= per_stripe_.size())
    throw std::out_of_range("CacheIndex::grant");
  per_stripe_[stripe].push_back({box, entry});
  ++entries_;
}

std::size_t CacheIndex::collect_servers(model::StripeId stripe,
                                        model::Round issue, model::Round now,
                                        model::BoxId exclude,
                                        std::vector<model::BoxId>& out) const {
  if (stripe >= per_stripe_.size())
    throw std::out_of_range("CacheIndex::collect_servers");
  const model::Round oldest = now - window_;
  std::size_t appended = 0;
  for (const Entry& e : per_stripe_[stripe]) {
    if (e.entry >= oldest && e.entry < issue && e.box != exclude) {
      out.push_back(e.box);
      ++appended;
    }
  }
  return appended;
}

std::uint64_t CacheIndex::remove_box(model::BoxId box,
                                     std::vector<model::StripeId>* affected) {
  std::uint64_t removed = 0;
  for (model::StripeId stripe = 0; stripe < per_stripe_.size(); ++stripe) {
    auto& entries = per_stripe_[stripe];
    const auto keep =
        std::remove_if(entries.begin(), entries.end(),
                       [box](const Entry& e) { return e.box == box; });
    const auto dropped = static_cast<std::uint64_t>(entries.end() - keep);
    if (dropped > 0 && affected != nullptr) affected->push_back(stripe);
    removed += dropped;
    entries.erase(keep, entries.end());
  }
  entries_ -= removed;
  return removed;
}

void CacheIndex::prune(model::Round now) {
  const model::Round oldest = now - window_;
  for (auto& entries : per_stripe_) {
    if (entries.empty()) continue;
    const auto keep = std::remove_if(
        entries.begin(), entries.end(),
        [oldest](const Entry& e) { return e.entry < oldest; });
    entries_ -= static_cast<std::uint64_t>(entries.end() - keep);
    entries.erase(keep, entries.end());
  }
}

}  // namespace p2pvod::sim
