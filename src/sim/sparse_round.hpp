// Cross-round sparse candidate index + incremental matching repair.
//
// The dense round loop rebuilds every request's candidate list every round
// (collect, sort, unique) and re-derives the matching from a carry vector.
// SparseRoundState is the million-box replacement: it owns a flow::CsrProblem
// whose rows persist across rounds and a flow::CsrMatcher whose matching
// persists across rounds, and maintains both by deltas:
//
//   - a cache grant point-inserts one source into the live rows of its
//     stripe (and schedules its retention-window expiry);
//   - an expiry decrements one source per affected row, via a calendar of
//     events keyed by the round the entry leaves the window;
//   - box churn bulk-removes (offline) or re-adds (online) the box across
//     the rows of the stripes it stores/caches, guarded by per-box epochs so
//     calendar events of cache entries that died with the box are skipped;
//   - request arrival marks its new row dirty; dirty rows are rebuilt from
//     ground truth (the collector callback) at the next solve. When the
//     dirty fraction crosses a threshold the whole table is rebuilt instead
//     (patching would cost more than collecting).
//
// Invariant tying it together: a row's per-box source count always equals
// the number of ground-truth reasons the box can serve that request (static
// replica while online, plus each in-window cache entry with entry < issue).
// Every source is added exactly once (insert or rebuild) and retired exactly
// once (its calendar event, an offline bulk-removal, or the row's rebuild
// folding it in), so rows never drift from what the dense collector would
// produce — the equivalence the simulator's verify path asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "flow/csr_matcher.hpp"
#include "flow/csr_problem.hpp"
#include "model/ids.hpp"

namespace p2pvod::sim {

/// Cumulative work counters for the sparse path (reported like
/// flow::IncrementalStats).
struct SparseStats {
  std::uint64_t rounds = 0;
  std::uint64_t rows_built = 0;     ///< rows collected from ground truth
  std::uint64_t row_patches = 0;    ///< surgical source inserts/removals
  std::uint64_t expiry_events = 0;  ///< calendar events processed
  std::uint64_t full_rebuilds = 0;  ///< dirty-fraction fallback trips
  std::uint64_t kept_connections = 0;
  std::uint64_t new_connections = 0;
};

class SparseRoundState {
 public:
  /// Ground-truth candidate collection for one request, exactly what the
  /// dense path feeds ConnectionProblem::add_request (duplicates allowed;
  /// each occurrence is one source).
  using RowCollector =
      std::function<void(model::StripeId stripe, model::Round issue,
                         model::BoxId requester, std::vector<model::BoxId>&)>;

  SparseRoundState(std::uint32_t box_count, std::uint32_t stripe_count,
                   model::Round window, double rebuild_fraction);

  /// Register a new live request; returns its slot id (slots are recycled).
  std::uint32_t add_request(model::StripeId stripe, model::Round issue,
                            model::BoxId requester);
  /// Retire a live request: drops its assignment and row.
  void remove_request(std::uint32_t slot);

  /// A cache grant was registered: patch the live rows of `stripe` and
  /// schedule the entry's retention-window expiry.
  void on_grant(model::StripeId stripe, model::BoxId box, model::Round entry,
                model::Round now);
  /// `box` went offline: its assignments dissolve and it leaves every row of
  /// the stripes it held statically (`stored`) or served from cache
  /// (`cached`).
  void on_box_offline(model::BoxId box,
                      std::span<const model::StripeId> stored,
                      std::span<const model::StripeId> cached);
  /// `box` came back: its static replicas serve again (cache died with it).
  void on_box_online(model::BoxId box,
                     std::span<const model::StripeId> stored);

  /// Run one round: process due expiries, rebuild dirty rows via `collect`,
  /// then augment every unmatched live slot. Returns the number of served
  /// requests (a maximum matching, equal to a from-scratch solve).
  std::uint32_t solve(model::Round now,
                      const std::vector<std::uint32_t>& capacity,
                      const RowCollector& collect);

  /// Box serving `slot` after the last solve, or -1.
  [[nodiscard]] std::int32_t assignment(std::uint32_t slot) const {
    return matcher_.assignment(slot);
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return csr_.edge_count();
  }
  [[nodiscard]] std::uint32_t live_rows() const noexcept {
    return live_count_;
  }
  [[nodiscard]] const SparseStats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    model::StripeId stripe = model::kInvalidStripe;
    model::Round issue = 0;
    model::BoxId requester = model::kInvalidBox;
    std::uint32_t stripe_pos = 0;  ///< index in slots_of_stripe_[stripe]
    bool live = false;
    bool dirty = false;
  };
  /// One scheduled retention-window expiry: at the keyed round, cache entry
  /// (stripe, box, entry) stops serving. `box_epoch` pins the box's churn
  /// generation at grant time — the entry died early if the box went
  /// offline since, and the event must then be skipped.
  struct Expiry {
    model::StripeId stripe;
    model::BoxId box;
    model::Round entry;
    std::uint32_t box_epoch;
  };

  void mark_dirty(std::uint32_t slot);
  void rebuild_row(std::uint32_t slot, const RowCollector& collect);
  void process_expiries(model::Round now);

  flow::CsrProblem csr_;
  flow::CsrMatcher matcher_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<std::uint32_t>> slots_of_stripe_;
  std::vector<std::uint32_t> dirty_slots_;  ///< queue; flags de-dup entries
  std::uint32_t dirty_count_ = 0;
  std::map<model::Round, std::vector<Expiry>> calendar_;
  std::vector<std::uint32_t> box_epoch_;
  model::Round window_;
  double rebuild_fraction_;
  std::uint32_t live_count_ = 0;
  SparseStats stats_;

  // scratch reused across rounds
  std::vector<std::uint32_t> scratch_unassigned_;
  std::vector<model::BoxId> scratch_row_;
  std::vector<std::uint32_t> scratch_boxes_;
  std::vector<std::uint32_t> scratch_counts_;
};

}  // namespace p2pvod::sim
