// Request records exchanged between strategies and the simulator.
//
// A *planned* request is what a strategy emits when a user demands a video:
// which box downloads which stripe starting at which round, and which boxes
// gain playback-cache entries as the data flows (normally just the requester;
// under the §4 relay strategy both the relay and the poor box do, with the
// poor box lagging one round behind the forwarder).
//
// An *active* request is a planned request currently downloading. At round
// `now` it needs the chunk at position (now - issue); it completes after
// position T-1 is delivered (§2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "model/ids.hpp"

namespace p2pvod::sim {

/// Session id: one per (box, demand) playback; groups requests for metrics.
using SessionId = std::uint32_t;
inline constexpr SessionId kInvalidSession = static_cast<SessionId>(-1);

/// A playback-cache entry handed to the availability index: `box` holds the
/// stream of a stripe as if it had started downloading it at round `entry`.
struct CacheGrant {
  model::BoxId box;
  model::Round entry;
};

struct PlannedRequest {
  model::BoxId requester = model::kInvalidBox;  ///< box whose download this is
  model::StripeId stripe = model::kInvalidStripe;
  model::Round issue = 0;  ///< round at which the request becomes active
  /// Boxes whose caches fill with this stripe's data (see CacheGrant).
  std::vector<CacheGrant> grants;

  /// Convenience: the common case of a box downloading for itself.
  [[nodiscard]] static PlannedRequest direct(model::BoxId box,
                                             model::StripeId stripe,
                                             model::Round issue) {
    PlannedRequest r;
    r.requester = box;
    r.stripe = stripe;
    r.issue = issue;
    r.grants = {CacheGrant{box, issue}};
    return r;
  }
};

struct ActiveRequest {
  model::StripeId stripe = model::kInvalidStripe;
  model::Round issue = 0;
  model::BoxId requester = model::kInvalidBox;
  SessionId session = kInvalidSession;

  /// Position needed at round `now` (0-based chunk index).
  [[nodiscard]] model::Round position(model::Round now) const noexcept {
    return now - issue;
  }
  /// Active while 0 <= position < duration.
  [[nodiscard]] bool active_at(model::Round now,
                               model::Round duration) const noexcept {
    const model::Round p = position(now);
    return p >= 0 && p < duration;
  }
};

}  // namespace p2pvod::sim
