// Request records exchanged between strategies and the simulator.
//
// A *planned* request is what a strategy emits when a user demands a video:
// which box downloads which stripe starting at which round, and which boxes
// gain playback-cache entries as the data flows (normally just the requester;
// under the §4 relay strategy both the relay and the poor box do, with the
// poor box lagging one round behind the forwarder).
//
// An *active* request is a planned request currently downloading. At round
// `now` it needs the chunk at position (now - issue); it completes after
// position T-1 is delivered (§2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "model/ids.hpp"

namespace p2pvod::sim {

/// Session id: one per (box, demand) playback; groups requests for metrics.
using SessionId = std::uint32_t;
inline constexpr SessionId kInvalidSession = static_cast<SessionId>(-1);

/// A playback-cache entry handed to the availability index: `box` holds the
/// stream of a stripe as if it had started downloading it at round `entry`.
struct CacheGrant {
  model::BoxId box;
  model::Round entry;
};

struct PlannedRequest {
  model::BoxId requester = model::kInvalidBox;  ///< box whose download this is
  model::StripeId stripe = model::kInvalidStripe;
  model::Round issue = 0;  ///< round at which the request becomes active
  /// Boxes whose caches fill with this stripe's data (see CacheGrant).
  std::vector<CacheGrant> grants;

  /// Convenience: the common case of a box downloading for itself.
  [[nodiscard]] static PlannedRequest direct(model::BoxId box,
                                             model::StripeId stripe,
                                             model::Round issue) {
    PlannedRequest r;
    r.requester = box;
    r.stripe = stripe;
    r.issue = issue;
    r.grants = {CacheGrant{box, issue}};
    return r;
  }
};

struct ActiveRequest {
  model::StripeId stripe = model::kInvalidStripe;
  model::Round issue = 0;
  model::BoxId requester = model::kInvalidBox;
  SessionId session = kInvalidSession;

  /// Position needed at round `now` (0-based chunk index).
  [[nodiscard]] model::Round position(model::Round now) const noexcept {
    return now - issue;
  }
  /// Active while 0 <= position < duration.
  [[nodiscard]] bool active_at(model::Round now,
                               model::Round duration) const noexcept {
    const model::Round p = position(now);
    return p >= 0 && p < duration;
  }
};

/// Sparse-path slot id of a live request; kNoSparseSlot when the simulator
/// runs the dense engine (no SparseRoundState attached).
inline constexpr std::uint32_t kNoSparseSlot = static_cast<std::uint32_t>(-1);

/// Struct-of-arrays storage for the live request set. The round loop scans
/// these fields linearly every round (candidate building, retirement, zone
/// accounting), so parallel arrays keep each scan on the one field it needs
/// instead of striding over whole ActiveRequest records — the difference is
/// real cache traffic at the million-box scale the sparse engine targets.
struct LiveRequestSoA {
  std::vector<model::StripeId> stripe;
  std::vector<model::Round> issue;
  std::vector<model::BoxId> requester;
  std::vector<SessionId> session;
  std::vector<std::int32_t> carry;  ///< previous round's server, or -1
  std::vector<std::uint32_t> slot;  ///< sparse slot id, or kNoSparseSlot

  [[nodiscard]] std::size_t size() const noexcept { return stripe.size(); }
  [[nodiscard]] bool empty() const noexcept { return stripe.empty(); }

  void push_back(model::StripeId s, model::Round i, model::BoxId r,
                 SessionId id, std::uint32_t sparse_slot) {
    stripe.push_back(s);
    issue.push_back(i);
    requester.push_back(r);
    session.push_back(id);
    carry.push_back(-1);
    slot.push_back(sparse_slot);
  }

  /// Overwrite entry `dst` with entry `src` (compaction scans).
  void move_to(std::size_t dst, std::size_t src) {
    stripe[dst] = stripe[src];
    issue[dst] = issue[src];
    requester[dst] = requester[src];
    session[dst] = session[src];
    carry[dst] = carry[src];
    slot[dst] = slot[src];
  }

  void resize(std::size_t n) {
    stripe.resize(n);
    issue.resize(n);
    requester.resize(n);
    session.resize(n);
    carry.resize(n);
    slot.resize(n);
  }

  /// Position needed at round `now` by request `i`.
  [[nodiscard]] model::Round position(std::size_t i,
                                      model::Round now) const noexcept {
    return now - issue[i];
  }
};

}  // namespace p2pvod::sim
