#include "sim/sparse_round.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace p2pvod::sim {

SparseRoundState::SparseRoundState(std::uint32_t box_count,
                                   std::uint32_t stripe_count,
                                   model::Round window,
                                   double rebuild_fraction)
    : matcher_(box_count),
      slots_of_stripe_(stripe_count),
      box_epoch_(box_count, 0),
      window_(window),
      rebuild_fraction_(rebuild_fraction) {
  if (window <= 0)
    throw std::invalid_argument("SparseRoundState: window <= 0");
  if (rebuild_fraction < 0.0)
    throw std::invalid_argument("SparseRoundState: rebuild_fraction < 0");
}

std::uint32_t SparseRoundState::add_request(model::StripeId stripe,
                                            model::Round issue,
                                            model::BoxId requester) {
  if (stripe >= slots_of_stripe_.size())
    throw std::out_of_range("SparseRoundState::add_request");
  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    csr_.ensure_row(slot);
    matcher_.ensure_rows(slot + 1);
  }
  auto& by_stripe = slots_of_stripe_[stripe];
  slots_[slot] = Slot{stripe, issue, requester,
                      static_cast<std::uint32_t>(by_stripe.size()),
                      /*live=*/true, /*dirty=*/slots_[slot].dirty};
  by_stripe.push_back(slot);
  ++live_count_;
  mark_dirty(slot);
  return slot;
}

void SparseRoundState::remove_request(std::uint32_t slot) {
  Slot& s = slots_.at(slot);
  if (!s.live)
    throw std::logic_error("SparseRoundState::remove_request: slot not live");
  matcher_.unassign(slot);
  csr_.clear_row(slot);
  // Swap-pop out of the stripe's slot list; fix the moved slot's back-link.
  auto& by_stripe = slots_of_stripe_[s.stripe];
  const std::uint32_t moved = by_stripe.back();
  by_stripe[s.stripe_pos] = moved;
  slots_[moved].stripe_pos = s.stripe_pos;
  by_stripe.pop_back();
  s.live = false;  // a queued dirty flag survives; rebuilds skip dead slots
  free_slots_.push_back(slot);
  --live_count_;
}

void SparseRoundState::on_grant(model::StripeId stripe, model::BoxId box,
                                model::Round entry, model::Round now) {
  OBS_SPAN("sim/sparse_grant_patch");
  if (stripe >= slots_of_stripe_.size())
    throw std::out_of_range("SparseRoundState::on_grant");
  const model::Round expires = entry + window_ + 1;
  if (expires <= now) return;  // already outside the window: never a source
  calendar_[expires].push_back({stripe, box, entry, box_epoch_.at(box)});
  for (const std::uint32_t slot : slots_of_stripe_[stripe]) {
    const Slot& s = slots_[slot];
    if (s.dirty) continue;  // rebuild will collect it from ground truth
    if (entry < s.issue && box != s.requester) {
      csr_.add_source(slot, box);
      ++stats_.row_patches;
    }
  }
}

void SparseRoundState::on_box_offline(model::BoxId box,
                                      std::span<const model::StripeId> stored,
                                      std::span<const model::StripeId> cached) {
  OBS_SPAN("sim/sparse_churn_patch");
  // Invalidate every pending expiry of the box's (now destroyed) cache
  // entries; their sources are removed wholesale right here.
  ++box_epoch_.at(box);
  scratch_unassigned_.clear();
  matcher_.unassign_box(box, scratch_unassigned_);
  const auto strip = [&](std::span<const model::StripeId> stripes) {
    for (const model::StripeId stripe : stripes) {
      for (const std::uint32_t slot : slots_of_stripe_.at(stripe)) {
        if (slots_[slot].dirty) continue;
        csr_.remove_box(slot, box);  // miss (e.g. own request) is a no-op
        ++stats_.row_patches;
      }
    }
  };
  strip(stored);
  strip(cached);  // may overlap `stored`; second removal is a no-op
}

void SparseRoundState::on_box_online(model::BoxId box,
                                     std::span<const model::StripeId> stored) {
  OBS_SPAN("sim/sparse_churn_patch");
  for (const model::StripeId stripe : stored) {
    for (const std::uint32_t slot : slots_of_stripe_.at(stripe)) {
      const Slot& s = slots_[slot];
      if (s.dirty || s.requester == box) continue;
      csr_.add_source(slot, box);
      ++stats_.row_patches;
    }
  }
}

void SparseRoundState::mark_dirty(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.dirty) return;
  s.dirty = true;
  ++dirty_count_;
  dirty_slots_.push_back(slot);
}

void SparseRoundState::rebuild_row(std::uint32_t slot,
                                   const RowCollector& collect) {
  const Slot& s = slots_[slot];
  scratch_row_.clear();
  collect(s.stripe, s.issue, s.requester, scratch_row_);
  std::sort(scratch_row_.begin(), scratch_row_.end());
  // Run-length encode: each occurrence of a box is one source.
  scratch_boxes_.clear();
  scratch_counts_.clear();
  for (std::size_t i = 0; i < scratch_row_.size();) {
    std::size_t j = i + 1;
    while (j < scratch_row_.size() && scratch_row_[j] == scratch_row_[i]) ++j;
    scratch_boxes_.push_back(scratch_row_[i]);
    scratch_counts_.push_back(static_cast<std::uint32_t>(j - i));
    i = j;
  }
  csr_.assign_row(slot, scratch_boxes_, scratch_counts_);
  ++stats_.rows_built;
  const std::int32_t assigned = matcher_.assignment(slot);
  if (assigned >= 0 &&
      !csr_.contains(slot, static_cast<std::uint32_t>(assigned)))
    matcher_.unassign(slot);
}

void SparseRoundState::process_expiries(model::Round now) {
  while (!calendar_.empty() && calendar_.begin()->first <= now) {
    for (const Expiry& e : calendar_.begin()->second) {
      ++stats_.expiry_events;
      if (box_epoch_[e.box] != e.box_epoch) continue;  // died with the box
      for (const std::uint32_t slot : slots_of_stripe_[e.stripe]) {
        const Slot& s = slots_[slot];
        if (s.dirty) continue;
        if (e.entry >= s.issue || e.box == s.requester) continue;
        ++stats_.row_patches;
        if (csr_.remove_source(slot, e.box) &&
            matcher_.assignment(slot) == static_cast<std::int32_t>(e.box))
          matcher_.unassign(slot);
      }
    }
    calendar_.erase(calendar_.begin());
  }
}

std::uint32_t SparseRoundState::solve(model::Round now,
                                      const std::vector<std::uint32_t>& capacity,
                                      const RowCollector& collect) {
  ++stats_.rounds;
  {
    OBS_SPAN("sim/sparse_expiry");
    process_expiries(now);
  }

  {
    OBS_SPAN("sim/sparse_rebuild");
    // Fallback: past the threshold, patch bookkeeping costs more than honest
    // collection — rebuild everything. (Equality keeps the all-new first
    // round counted as a plain rebuild of each row, not a "fallback".)
    if (live_count_ > 0 &&
        static_cast<double>(dirty_count_) >
            rebuild_fraction_ * static_cast<double>(live_count_) &&
        dirty_count_ < live_count_) {
      ++stats_.full_rebuilds;
      for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
        if (slots_[slot].live) mark_dirty(slot);
      }
    }

    // Rebuild in ascending slot order: determinism does not depend on the
    // arrival order of dirty marks.
    std::sort(dirty_slots_.begin(), dirty_slots_.end());
    for (const std::uint32_t slot : dirty_slots_) {
      Slot& s = slots_[slot];
      if (!s.dirty) continue;  // duplicate queue entry
      s.dirty = false;
      if (!s.live) continue;  // retired while dirty; row already cleared
      rebuild_row(slot, collect);
    }
    dirty_slots_.clear();
    dirty_count_ = 0;
  }

  // Matching repair: everything still assigned is kept; only unmatched
  // slots seed augmenting paths. One exhaustive pass from a valid partial
  // matching yields a maximum matching.
  OBS_SPAN("sim/sparse_augment");
  std::uint32_t served = 0;
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(slots_.size()); ++slot) {
    if (!slots_[slot].live) continue;
    if (matcher_.assignment(slot) >= 0) {
      ++served;
      ++stats_.kept_connections;
      continue;
    }
    if (matcher_.augment(csr_, capacity, slot)) {
      ++served;
      ++stats_.new_connections;
    }
  }
  return served;
}

}  // namespace p2pvod::sim
