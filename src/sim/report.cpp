#include "sim/report.hpp"

#include <sstream>

namespace p2pvod::sim {

std::string RunReport::summary() const {
  std::ostringstream out;
  out << (success ? "SUCCESS" : "STALLED") << " rounds=" << rounds
      << " demands=" << demands_admitted << " (+" << demands_rejected
      << " rejected)"
      << " requests=" << requests_issued << " chunks=" << chunks_served;
  if (chunks_stalled > 0) {
    out << " stalls=" << chunks_stalled << " continuity=" << continuity();
  }
  if (first_stall >= 0) {
    out << " first_stall@" << first_stall << " |X|=" << stall_witness_size;
  }
  out << " sessions_done=" << sessions_completed
      << " peak_swarm=" << peak_swarm;
  if (startup_delay.total() > 0) {
    out << " startup[p50=" << startup_delay.percentile(0.5)
        << ",max=" << startup_delay.max() << "]";
  }
  if (upload_utilization.count() > 0) {
    out << " util=" << upload_utilization.mean();
  }
  // Zone accounting only exists when a Topology was attached; stay silent
  // otherwise so topology-less runs keep their historical summary bytes.
  if (intra_zone_chunks + cross_zone_chunks + link_cap_rejections > 0) {
    out << " crosszone=" << cross_zone_share()
        << " zone_cost=" << zone_cost_total;
    if (link_cap_rejections > 0) out << " link_rejects=" << link_cap_rejections;
    if (link_cap_rescues > 0) out << " link_rescues=" << link_cap_rescues;
  }
  return out.str();
}

}  // namespace p2pvod::sim
