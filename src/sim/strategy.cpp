#include "sim/strategy.hpp"

#include <stdexcept>

#include "sim/simulator.hpp"

namespace p2pvod::sim {

void PreloadingStrategy::plan(model::BoxId b, model::VideoId v,
                              std::uint64_t ticket, model::Round now,
                              Simulator& sim,
                              std::vector<PlannedRequest>& out) {
  const model::Catalog& catalog = sim.catalog();
  const std::uint32_t c = catalog.stripes_per_video();
  const auto preload_index = static_cast<std::uint32_t>(ticket % c);
  for (std::uint32_t i = 0; i < c; ++i) {
    const model::StripeId s = catalog.stripe_id(v, i);
    if (sim.allocation().box_has(b, s)) continue;  // plays from local storage
    const model::Round issue = (i == preload_index) ? now : now + 1;
    out.push_back(PlannedRequest::direct(b, s, issue));
  }
}

void NaiveStrategy::plan(model::BoxId b, model::VideoId v,
                         std::uint64_t /*ticket*/, model::Round now,
                         Simulator& sim, std::vector<PlannedRequest>& out) {
  const model::Catalog& catalog = sim.catalog();
  for (std::uint32_t i = 0; i < catalog.stripes_per_video(); ++i) {
    const model::StripeId s = catalog.stripe_id(v, i);
    if (sim.allocation().box_has(b, s)) continue;
    out.push_back(PlannedRequest::direct(b, s, now));
  }
}

std::unique_ptr<RequestStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kPreloading:
      return std::make_unique<PreloadingStrategy>();
    case StrategyKind::kNaive:
      return std::make_unique<NaiveStrategy>();
  }
  throw std::logic_error("make_strategy: bad kind");
}

}  // namespace p2pvod::sim
