// The round-based fully-distributed VoD simulator (DESIGN.md S5).
//
// One step() is one time round of the paper's model (§1.1): demands arrive,
// the request strategy turns them into stripe requests, and a connection
// matching (Lemma 1) is computed over all active requests — every active
// request must receive its current chunk from a box possessing it (static
// replica or playback cache), with box b serving at most ⌊u_b c⌋ stripe
// connections. In strict mode an unserved request ends the run: the demand
// sequence defeated the allocation.
//
// Round pipeline (at round t):
//   1. sessions ending at t release their boxes and leave their swarms
//   2. swarm sizes are frozen (the f(t) of the growth rule)
//   3. demands are admitted (busy boxes reject; one video per box)
//   4. the strategy plans requests; cache grants are registered
//   5. requests issued at t activate; expired cache entries are pruned
//   6. the connection matching is solved; chunks are accounted
//   7. requests that received their last chunk retire
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "alloc/allocation.hpp"
#include "flow/bipartite.hpp"
#include "flow/matcher.hpp"
#include "flow/min_cost.hpp"
#include "model/capacity.hpp"
#include "net/topology.hpp"
#include "model/catalog.hpp"
#include "model/ids.hpp"
#include "sim/cache.hpp"
#include "sim/report.hpp"
#include "sim/request.hpp"
#include "sim/sparse_round.hpp"
#include "sim/strategy.hpp"
#include "sim/swarm.hpp"

namespace p2pvod::workload {
class DemandGenerator;
}  // namespace p2pvod::workload

namespace p2pvod::sim {

/// A user demand: box wants to play video. Demands arriving at round t are
/// the paper's "demand during [t-1, t[" — the strategy reacts at t.
struct Demand {
  model::BoxId box;
  model::VideoId video;
};

struct SimulatorOptions {
  flow::Engine engine = flow::Engine::kDinic;
  /// Reuse last round's connections and only rewire the difference (E12).
  bool incremental = true;
  /// Cross-check the incremental matcher against a from-scratch solve every
  /// round (tests; expensive).
  bool verify_incremental = false;
  /// Stop at the first unserved request (the paper's feasibility semantics).
  /// When false, stalls are counted and positions advance (continuity metric).
  bool strict = true;
  /// Per-box upload override in stripe slots (hetero relay reserves upload);
  /// empty = ⌊u_b c⌋ from the capacity profile.
  std::vector<std::uint32_t> capacity_override;
  /// Zone topology (not owned; must outlive the simulator). When set, each
  /// round's matching minimizes total zone-pair cost among maximum matchings
  /// (flow/min_cost) and cross-zone traffic is accounted in RunReport; link
  /// caps, when present, admission-control per-zone-pair connections.
  /// Supersedes `incremental` — connection reuse is not cost-aware.
  const net::Topology* topology = nullptr;
  /// Million-box path (E16): keep the candidate adjacency in a persistent
  /// CSR structure patched by deltas instead of rebuilt per round, and
  /// repair last round's matching from the unmatched slots only. Serves
  /// exactly as many requests as the dense solve (both are maximum
  /// matchings; verify_incremental cross-checks the assignment itself);
  /// connection-level assignments may differ. Incompatible with `topology` —
  /// cost-aware matching is dense-only, and asking for both throws
  /// std::invalid_argument. Env: P2PVOD_SPARSE=1 forces it on for any run
  /// without a topology; zone-aware runs stay dense and count the downgrade
  /// (sim/sparse_topology_downgrades).
  bool sparse = false;
  /// Dirty-row fraction above which the sparse path rebuilds every row from
  /// ground truth instead of patching (patch bookkeeping stops paying once
  /// most rows changed anyway). Env: P2PVOD_SPARSE_REBUILD_PCT (0..100).
  double sparse_rebuild_fraction = 0.5;
};

class Simulator {
 public:
  Simulator(const model::Catalog& catalog,
            const model::CapacityProfile& profile,
            const alloc::Allocation& allocation, RequestStrategy& strategy,
            SimulatorOptions options = {});

  /// Advance one round with the given demands. No-op once stalled in strict
  /// mode.
  void step(const std::vector<Demand>& demands);

  /// Churn extension: take a box offline or bring it back.
  ///
  /// Going offline models a crash: the box's upload capacity drops to zero,
  /// its static replicas and cached data become unreachable, every playback
  /// it was watching is aborted, and — relay case — every session it was
  /// forwarding for is aborted too (the §4 reserved channel dies with it).
  /// Coming back restores capacity and static storage; the playback cache is
  /// gone (it was volatile state).
  void set_box_online(model::BoxId box, bool online);
  [[nodiscard]] bool box_online(model::BoxId box) const {
    return online_.at(box);
  }

  /// Drive `rounds` rounds pulling demands from `generator`; returns the
  /// final report (also kept, see report()).
  RunReport run(workload::DemandGenerator& generator, model::Round rounds);

  // --- queries (used by strategies, workloads, tests) ---
  [[nodiscard]] model::Round now() const noexcept { return now_; }
  [[nodiscard]] const model::Catalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const model::CapacityProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const alloc::Allocation& allocation() const noexcept {
    return allocation_;
  }
  [[nodiscard]] const SwarmRegistry& swarms() const noexcept {
    return swarms_;
  }
  [[nodiscard]] bool box_idle(model::BoxId b) const;
  [[nodiscard]] std::uint32_t idle_box_count() const;
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }
  [[nodiscard]] std::uint32_t active_request_count() const noexcept {
    return static_cast<std::uint32_t>(live_.size());
  }
  [[nodiscard]] const RunReport& report() const noexcept { return report_; }
  [[nodiscard]] std::uint32_t capacity_slots(model::BoxId b) const {
    return capacity_slots_.at(b);
  }
  [[nodiscard]] std::uint64_t total_capacity_slots() const noexcept {
    return total_capacity_slots_;
  }
  /// True when rounds run on the sparse CSR engine (options or env knob).
  [[nodiscard]] bool sparse_active() const noexcept {
    return sparse_ != nullptr;
  }

 private:
  struct Session {
    model::BoxId box;
    model::VideoId video;
    model::Round demand_round;
    model::Round playback_start;
    model::Round ends;  ///< first round the box is idle again
    std::uint32_t pending_requests;
    bool aborted = false;  ///< killed by churn; end event becomes a no-op
  };

  struct PendingRequest {
    PlannedRequest plan;
    SessionId session;
  };

  void admit(const Demand& demand);
  void activate_pending();
  void solve_round();
  /// Dense engine: build this round's ConnectionProblem from scratch and
  /// solve it (zone-aware / incremental / plain). Returns requests served.
  std::uint32_t solve_round_dense();
  /// Sparse engine: patch-and-repair round on the persistent CSR state.
  std::uint32_t solve_round_sparse();
  /// The round's dense ConnectionProblem, collected from ground truth (also
  /// the reference the sparse verify path validates against).
  [[nodiscard]] flow::ConnectionProblem build_connection_problem();
  /// Hall-violating witness for the first stall (rebuilds the round's
  /// problem; runs once per run at most).
  void record_stall_witness();
  /// Cost-aware matching for the round (options_.topology set): min-cost
  /// solve, link-cap admission control, cross-zone accounting.
  [[nodiscard]] flow::MatchResult solve_zone_aware(
      const flow::ConnectionProblem& problem);
  /// Link-cap enforcement: maps each candidate edge to its directed
  /// zone-pair group and delegates to flow::enforce_group_caps (pass-1
  /// admission drops are RunReport::link_cap_rejections, pass-2 re-seats are
  /// link_cap_rescues). `costs` is the same matrix the min-cost solve used.
  void enforce_link_caps(const flow::ConnectionProblem& problem,
                         const flow::EdgeCosts& costs,
                         flow::MatchResult& result);
  void retire_completed();
  void abort_session(SessionId id);
  /// Debug builds: assert total_capacity_slots_ matches a full rescan after
  /// a ±delta update.
  void debug_check_capacity_total() const;

  const model::Catalog& catalog_;
  const model::CapacityProfile& profile_;
  const alloc::Allocation& allocation_;
  RequestStrategy& strategy_;
  SimulatorOptions options_;

  SwarmRegistry swarms_;
  CacheIndex cache_;
  flow::IncrementalMatcher matcher_;
  /// Persistent CSR adjacency + matching; null on the dense engine.
  std::unique_ptr<SparseRoundState> sparse_;
  /// SparseStats values already mirrored into the obs counters; the stats
  /// are cumulative per state, so each round adds only the delta.
  SparseStats sparse_reported_;

  std::vector<Session> sessions_;
  std::vector<model::Round> busy_until_;
  std::map<model::Round, std::vector<PendingRequest>> pending_;
  std::map<model::Round, std::vector<SessionId>> end_events_;
  LiveRequestSoA live_;  ///< live requests + carry, struct-of-arrays
  std::vector<std::uint32_t> capacity_slots_;
  std::vector<std::uint32_t> nominal_capacity_;  ///< restored on recovery
  std::vector<bool> online_;
  std::uint64_t total_capacity_slots_ = 0;

  RunReport report_;
  model::Round now_ = 0;
  bool stalled_ = false;

  // scratch buffers reused across rounds
  std::vector<model::BoxId> scratch_candidates_;
  std::vector<PlannedRequest> scratch_plans_;
  std::vector<model::StripeId> scratch_cache_stripes_;
};

}  // namespace p2pvod::sim
