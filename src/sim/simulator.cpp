#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <type_traits>

#include "flow/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "workload/demand.hpp"

namespace p2pvod::sim {

namespace {

// Round-loop work counters, aggregated across every Simulator instance in
// the process. kStable: each trial is sequential and fully determined by its
// seed, and the multiset of trials evaluated is thread-count-invariant under
// the repo's seeding contract. (Exception: speculative calibration evaluates
// a thread-count-dependent probe set — see the Observability notes in the
// README; pin P2PVOD_PROBE_WIDTH=1 to compare across thread counts there.)
struct SimCounters {
  obs::Counter& rounds;
  obs::Counter& demands_admitted;
  obs::Counter& demands_rejected;
  obs::Counter& chunks_matched;
  obs::Counter& chunks_unmatched;
  obs::Counter& matcher_edges;
  obs::Counter& intra_zone_chunks;
  obs::Counter& cross_zone_chunks;
  obs::Counter& link_cap_rejections;
  obs::Counter& link_cap_rescues;
  obs::Counter& sparse_topology_downgrades;
  obs::Histogram& round_active_requests;
};

SimCounters& sim_counters() {
  auto& registry = obs::MetricsRegistry::global();
  static auto* counters = new SimCounters{
      registry.counter("sim/rounds"),
      registry.counter("sim/demands_admitted"),
      registry.counter("sim/demands_rejected"),
      registry.counter("sim/chunks_matched"),
      registry.counter("sim/chunks_unmatched"),
      registry.counter("sim/matcher_edges"),
      registry.counter("sim/intra_zone_chunks"),
      registry.counter("sim/cross_zone_chunks"),
      registry.counter("sim/link_cap_rejections"),
      registry.counter("sim/link_cap_rescues"),
      registry.counter("sim/sparse_topology_downgrades"),
      registry.histogram("sim/round_active_requests", obs::pow2_bounds(16)),
  };
  return *counters;
}

/// Sparse-path work counters, mirrored once per round from the engine's
/// cumulative SparseStats (as deltas) so the E16 scale ladder shows up in
/// --metrics output like the dense path does. kStable for the same reason
/// as SimCounters: each trial's round loop is sequential and seed-determined.
struct SparseCounters {
  obs::Counter& rows_built;
  obs::Counter& row_patches;
  obs::Counter& full_rebuilds;
  obs::Counter& expiry_events;
  obs::Counter& kept_connections;
  obs::Counter& new_connections;
};

SparseCounters& sparse_counters() {
  auto& registry = obs::MetricsRegistry::global();
  static auto* counters = new SparseCounters{
      registry.counter("sim/sparse_rows_built"),
      registry.counter("sim/sparse_row_patches"),
      registry.counter("sim/sparse_full_rebuilds"),
      registry.counter("sim/sparse_expiry_events"),
      registry.counter("sim/sparse_kept_connections"),
      registry.counter("sim/sparse_new_connections"),
  };
  return *counters;
}

}  // namespace

// solve_zone_aware feeds net::Cost values into flow::EdgeCosts; the aliases
// live in layers that don't include each other, so pin their agreement here.
static_assert(std::is_same_v<net::Cost, flow::Cost>,
              "net::Cost and flow::Cost must be the same type");

Simulator::Simulator(const model::Catalog& catalog,
                     const model::CapacityProfile& profile,
                     const alloc::Allocation& allocation,
                     RequestStrategy& strategy, SimulatorOptions options)
    : catalog_(catalog),
      profile_(profile),
      allocation_(allocation),
      strategy_(strategy),
      options_(std::move(options)),
      swarms_(catalog.video_count()),
      cache_(catalog.stripe_count(), catalog.duration()),
      matcher_(profile.size()),
      busy_until_(profile.size(), 0) {
  if (allocation_.box_count() != profile_.size())
    throw std::invalid_argument("Simulator: allocation/profile size mismatch");
  if (allocation_.stripe_count() != catalog_.stripe_count())
    throw std::invalid_argument(
        "Simulator: allocation/catalog stripe mismatch");
  if (options_.topology != nullptr &&
      options_.topology->box_count() != profile_.size())
    throw std::invalid_argument("Simulator: topology/profile size mismatch");
  const std::uint32_t c = catalog_.stripes_per_video();
  if (options_.capacity_override.empty()) {
    capacity_slots_.resize(profile_.size());
    for (model::BoxId b = 0; b < profile_.size(); ++b)
      capacity_slots_[b] = profile_.upload_slots(b, c);
  } else {
    if (options_.capacity_override.size() != profile_.size())
      throw std::invalid_argument(
          "Simulator: capacity_override size mismatch");
    capacity_slots_ = options_.capacity_override;
  }
  for (const std::uint32_t slots : capacity_slots_)
    total_capacity_slots_ += slots;
  nominal_capacity_ = capacity_slots_;
  online_.assign(profile_.size(), true);

  // The sparse engine repairs last round's matching and is blind to costs,
  // so it cannot honor a topology. Asking for both in code is a config
  // error; the P2PVOD_SPARSE env override instead downgrades to dense with a
  // counter, so re-running a scenario suite under the knob doesn't crash the
  // zone-aware scenarios.
  if (options_.sparse && options_.topology != nullptr)
    throw std::invalid_argument(
        "Simulator: sparse engine cannot honor a topology (cost-aware "
        "matching is dense-only)");
  if (util::env_positive_long("P2PVOD_SPARSE").value_or(0) > 0) {
    if (options_.topology != nullptr) {
      sim_counters().sparse_topology_downgrades.add();
    } else {
      options_.sparse = true;
    }
  }
  if (const auto pct = util::env_positive_long("P2PVOD_SPARSE_REBUILD_PCT"))
    options_.sparse_rebuild_fraction =
        static_cast<double>(std::min(*pct, 100L)) / 100.0;
  if (options_.sparse) {
    sparse_ = std::make_unique<SparseRoundState>(
        profile_.size(), catalog_.stripe_count(), catalog_.duration(),
        options_.sparse_rebuild_fraction);
  }
}

bool Simulator::box_idle(model::BoxId b) const {
  return online_.at(b) && now_ >= busy_until_.at(b);
}

std::uint32_t Simulator::idle_box_count() const {
  std::uint32_t idle = 0;
  for (model::BoxId b = 0; b < profile_.size(); ++b) {
    if (box_idle(b)) ++idle;
  }
  return idle;
}

void Simulator::admit(const Demand& demand) {
  if (!catalog_.contains_video(demand.video))
    throw std::out_of_range("Simulator: demand for unknown video");
  if (demand.box >= profile_.size())
    throw std::out_of_range("Simulator: demand from unknown box");
  if (!online_[demand.box] || !box_idle(demand.box)) {
    ++report_.demands_rejected;
    sim_counters().demands_rejected.add();
    return;
  }
  ++report_.demands_admitted;
  const std::uint64_t ticket = swarms_.enter(demand.video, now_);

  scratch_plans_.clear();
  strategy_.plan(demand.box, demand.video, ticket, now_, *this,
                 scratch_plans_);

  // Playback can start once every stripe has delivered its first chunk to
  // the viewer; with no network requests the box plays from local storage.
  model::Round viewer_last_entry = now_;
  for (const PlannedRequest& plan : scratch_plans_) {
    for (const CacheGrant& grant : plan.grants) {
      if (grant.box == demand.box)
        viewer_last_entry = std::max(viewer_last_entry, grant.entry);
    }
  }
  const model::Round playback_start = viewer_last_entry + 1;
  const model::Round ends = playback_start + catalog_.duration();

  // Plans with no requester are forwarding-from-storage (the §4 relay holds
  // the stripe statically): they register cache grants but no network request.
  // A plan whose requester is offline cannot be served at all (e.g. a custom
  // strategy routed through a dead relay): reject the demand outright.
  std::uint32_t network_requests = 0;
  for (const PlannedRequest& plan : scratch_plans_) {
    if (plan.requester == model::kInvalidBox) continue;
    if (!online_.at(plan.requester)) {
      swarms_.leave(demand.video);  // roll back the enter() above
      --report_.demands_admitted;
      ++report_.demands_rejected;
      sim_counters().demands_rejected.add();
      return;
    }
    ++network_requests;
  }
  // Global counter only after the rollback window: counters are monotonic.
  sim_counters().demands_admitted.add();

  const auto session_id = static_cast<SessionId>(sessions_.size());
  sessions_.push_back({demand.box, demand.video, now_, playback_start, ends,
                       network_requests});
  busy_until_[demand.box] = ends;
  end_events_[ends].push_back(session_id);

  // Start-up delay measured from the start of the arrival interval [t-1, t[:
  // preloading gives (t+1)+1 - (t-1) = 3 rounds, as in §3.
  report_.startup_delay.add(playback_start - (now_ - 1));

  for (const PlannedRequest& plan : scratch_plans_) {
    if (plan.issue < now_)
      throw std::logic_error("Simulator: plan issued in the past");
    if (!catalog_.contains(plan.stripe))
      throw std::out_of_range("Simulator: plan for unknown stripe");
    for (const CacheGrant& grant : plan.grants) {
      cache_.grant(plan.stripe, grant.box, grant.entry);
      if (sparse_ != nullptr)
        sparse_->on_grant(plan.stripe, grant.box, grant.entry, now_);
    }
    if (plan.requester == model::kInvalidBox) continue;
    ++report_.requests_issued;
    pending_[plan.issue].push_back({plan, session_id});
  }
}

void Simulator::activate_pending() {
  const auto it = pending_.find(now_);
  if (it == pending_.end()) return;
  for (const PendingRequest& pending : it->second) {
    const std::uint32_t slot =
        sparse_ != nullptr
            ? sparse_->add_request(pending.plan.stripe, pending.plan.issue,
                                   pending.plan.requester)
            : kNoSparseSlot;
    live_.push_back(pending.plan.stripe, pending.plan.issue,
                    pending.plan.requester, pending.session, slot);
  }
  pending_.erase(it);
}

void Simulator::solve_round() {
  if (live_.empty()) return;
  OBS_SPAN("sim/solve_round");

  const std::uint32_t served =
      sparse_ != nullptr ? solve_round_sparse() : solve_round_dense();

  report_.chunks_served += served;
  sim_counters().chunks_matched.add(served);
  const std::uint64_t unserved = live_.size() - served;
  sim_counters().chunks_unmatched.add(unserved);
  if (unserved > 0) {
    report_.chunks_stalled += unserved;
    if (report_.first_stall < 0) {
      report_.first_stall = now_;
      record_stall_witness();
    }
    if (options_.strict) {
      report_.success = false;
      stalled_ = true;
    }
  }

  if (total_capacity_slots_ > 0) {
    report_.upload_utilization.add(static_cast<double>(served) /
                                   static_cast<double>(total_capacity_slots_));
  }
}

flow::ConnectionProblem Simulator::build_connection_problem() {
  flow::ConnectionProblem problem(profile_.size());
  problem.set_capacities(capacity_slots_);
  OBS_SPAN("sim/build_candidates");
  for (std::size_t i = 0; i < live_.size(); ++i) {
    scratch_candidates_.clear();
    for (const model::BoxId holder : allocation_.holders(live_.stripe[i])) {
      if (holder != live_.requester[i] && online_[holder])
        scratch_candidates_.push_back(holder);
    }
    cache_.collect_servers(live_.stripe[i], live_.issue[i], now_,
                           live_.requester[i], scratch_candidates_);
    std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
    scratch_candidates_.erase(
        std::unique(scratch_candidates_.begin(), scratch_candidates_.end()),
        scratch_candidates_.end());
    problem.add_request(scratch_candidates_);
  }
  return problem;
}

void Simulator::record_stall_witness() {
  const flow::ConnectionProblem problem = build_connection_problem();
  if (const auto witness = problem.infeasibility_witness())
    report_.stall_witness_size = static_cast<std::uint32_t>(witness->size());
}

std::uint32_t Simulator::solve_round_dense() {
  flow::ConnectionProblem problem = build_connection_problem();
  report_.rows_built += live_.size();  // dense collects every row, every round
  report_.matcher_edges += problem.edge_count();
  sim_counters().matcher_edges.add(problem.edge_count());

  flow::MatchResult result;
  {
    OBS_SPAN("sim/match");
    if (options_.topology != nullptr) {
      result = solve_zone_aware(problem);
    } else if (options_.incremental) {
      result = matcher_.solve(problem, live_.carry);
      if (options_.verify_incremental) {
        flow::validate_assignment(problem, result);
        const flow::MatchResult reference = problem.solve(options_.engine);
        if (reference.served != result.served)
          throw std::logic_error(
              "Simulator: incremental matcher disagrees with reference solve");
      }
    } else {
      result = problem.solve(options_.engine);
    }
  }

  const std::uint32_t served = result.served;
  live_.carry = std::move(result.assignment);
  // Connection-reuse accounting comes from the incremental matcher, which a
  // topology supersedes — don't report stats from a matcher that never ran.
  if (options_.incremental && options_.topology == nullptr) {
    report_.kept_connections = matcher_.stats().kept_connections;
    report_.new_connections = matcher_.stats().new_connections;
  }
  return served;
}

std::uint32_t Simulator::solve_round_sparse() {
  const auto collect = [this](model::StripeId stripe, model::Round issue,
                              model::BoxId requester,
                              std::vector<model::BoxId>& out) {
    for (const model::BoxId holder : allocation_.holders(stripe)) {
      if (holder != requester && online_[holder]) out.push_back(holder);
    }
    cache_.collect_servers(stripe, issue, now_, requester, out);
  };
  std::uint32_t served = 0;
  {
    OBS_SPAN("sim/match");
    served = sparse_->solve(now_, capacity_slots_, collect);
  }
  report_.matcher_edges += sparse_->edge_count();
  sim_counters().matcher_edges.add(sparse_->edge_count());
  for (std::size_t i = 0; i < live_.size(); ++i)
    live_.carry[i] = sparse_->assignment(live_.slot[i]);
  const SparseStats& stats = sparse_->stats();
  report_.kept_connections = stats.kept_connections;
  report_.new_connections = stats.new_connections;
  report_.rows_built = stats.rows_built;
  report_.row_patches = stats.row_patches;
  report_.sparse_full_rebuilds = stats.full_rebuilds;
  SparseCounters& mirrored = sparse_counters();
  mirrored.rows_built.add(stats.rows_built - sparse_reported_.rows_built);
  mirrored.row_patches.add(stats.row_patches - sparse_reported_.row_patches);
  mirrored.full_rebuilds.add(stats.full_rebuilds -
                             sparse_reported_.full_rebuilds);
  mirrored.expiry_events.add(stats.expiry_events -
                             sparse_reported_.expiry_events);
  mirrored.kept_connections.add(stats.kept_connections -
                                sparse_reported_.kept_connections);
  mirrored.new_connections.add(stats.new_connections -
                               sparse_reported_.new_connections);
  sparse_reported_ = stats;

  if (options_.verify_incremental) {
    // Reconstruct the round's dense problem from ground truth and validate
    // the sparse assignment against it: membership and capacity violations
    // surface here with the offending request named, and a served-count
    // mismatch against the reference solve catches lost maximality.
    const flow::ConnectionProblem problem = build_connection_problem();
    flow::MatchResult check;
    check.assignment = live_.carry;
    check.served = served;
    check.complete = served == live_.size();
    flow::validate_assignment(problem, check);
    const flow::MatchResult reference = problem.solve(options_.engine);
    if (reference.served != served)
      throw std::logic_error(
          "Simulator: sparse matcher disagrees with reference solve");
  }
  return served;
}

flow::MatchResult Simulator::solve_zone_aware(
    const flow::ConnectionProblem& problem) {
  const net::Topology& topology = *options_.topology;

  // Candidate edge (b, r) costs the zone-pair transit from b's zone into the
  // requester's zone; the solver minimizes the round's total transit among
  // maximum matchings (so feasibility answers match the Dinic path exactly).
  flow::EdgeCosts costs(live_.size());
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const net::ZoneId dest = topology.zone_of(live_.requester[i]);
    const auto& candidates = problem.candidates(static_cast<std::uint32_t>(i));
    costs[i].reserve(candidates.size());
    for (const std::uint32_t b : candidates) {
      costs[i].push_back(topology.cost(topology.zone_of(b), dest));
    }
  }
  flow::MatchResult result = flow::MinCostMatcher::solve(problem, costs).match;

  if (topology.has_link_caps()) enforce_link_caps(problem, costs, result);

  // Per-round zone accounting over the final assignment.
  std::uint64_t intra = 0;
  std::uint64_t cross = 0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const std::int32_t assigned = result.assignment[i];
    if (assigned < 0) continue;
    const auto b = static_cast<model::BoxId>(assigned);
    const net::ZoneId from = topology.zone_of(b);
    const net::ZoneId to = topology.zone_of(live_.requester[i]);
    (from == to ? intra : cross) += 1;
    report_.zone_cost_total += topology.cost(from, to);
  }
  report_.intra_zone_chunks += intra;
  report_.cross_zone_chunks += cross;
  sim_counters().intra_zone_chunks.add(intra);
  sim_counters().cross_zone_chunks.add(cross);
  if (intra + cross > 0) {
    report_.cross_zone_fraction.add(static_cast<double>(cross) /
                                    static_cast<double>(intra + cross));
  }
  return result;
}

// The topology's "no cap" sentinel must be flow's "no group / unlimited
// budget" sentinel for the cap matrix to pass through unchanged.
static_assert(net::kUnlimitedLink == flow::kUncappedGroup,
              "net::kUnlimitedLink and flow::kUncappedGroup must agree");

void Simulator::enforce_link_caps(const flow::ConnectionProblem& problem,
                                  const flow::EdgeCosts& costs,
                                  flow::MatchResult& result) {
  const net::Topology& topology = *options_.topology;
  const std::uint32_t zones = topology.zone_count();

  // Each candidate edge's cap group is the directed zone-pair link it would
  // cross; the flattened link-cap matrix is the budget table.
  flow::EdgeGroups groups(live_.size());
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const net::ZoneId dest = topology.zone_of(live_.requester[i]);
    const auto& candidates = problem.candidates(static_cast<std::uint32_t>(i));
    groups[i].reserve(candidates.size());
    for (const std::uint32_t b : candidates) {
      groups[i].push_back(
          static_cast<std::uint32_t>(topology.zone_of(b)) * zones + dest);
    }
  }
  std::vector<std::uint32_t> caps(static_cast<std::size_t>(zones) * zones);
  for (net::ZoneId a = 0; a < zones; ++a) {
    for (net::ZoneId b = 0; b < zones; ++b) {
      caps[static_cast<std::size_t>(a) * zones + b] = topology.link_cap(a, b);
    }
  }

  const flow::GroupCapOutcome outcome =
      flow::enforce_group_caps(problem, costs, groups, caps, result);
  report_.link_cap_rejections += outcome.rejections;
  report_.link_cap_rescues += outcome.rescues;
  sim_counters().link_cap_rejections.add(outcome.rejections);
  sim_counters().link_cap_rescues.add(outcome.rescues);
}

void Simulator::retire_completed() {
  const model::Round duration = catalog_.duration();
  std::size_t write = 0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_.position(i, now_) + 1 >= duration) {
      // Last chunk delivered this round; the request retires.
      Session& session = sessions_[live_.session[i]];
      if (session.pending_requests == 0)
        throw std::logic_error("Simulator: session underflow");
      --session.pending_requests;
      if (sparse_ != nullptr) sparse_->remove_request(live_.slot[i]);
      continue;
    }
    live_.move_to(write, i);
    ++write;
  }
  live_.resize(write);
}

void Simulator::abort_session(SessionId id) {
  Session& session = sessions_.at(id);
  if (session.aborted) return;
  if (session.ends <= now_) return;  // already finished normally
  session.aborted = true;
  swarms_.leave(session.video);
  ++report_.sessions_aborted;
  busy_until_[session.box] = std::min(busy_until_[session.box], now_);

  // Drop the session's live requests (order-preserving, keeps carry aligned)
  // and its not-yet-activated pending requests.
  std::size_t write = 0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_.session[i] == id) {
      if (sparse_ != nullptr) sparse_->remove_request(live_.slot[i]);
      continue;
    }
    live_.move_to(write, i);
    ++write;
  }
  live_.resize(write);
  for (auto& [round, pending] : pending_) {
    std::erase_if(pending, [id](const PendingRequest& p) {
      return p.session == id;
    });
    (void)round;
  }
}

void Simulator::debug_check_capacity_total() const {
#ifndef NDEBUG
  std::uint64_t rescan = 0;
  for (const std::uint32_t slots : capacity_slots_) rescan += slots;
  assert(rescan == total_capacity_slots_ &&
         "Simulator: capacity ±delta diverged from a full rescan");
#endif
}

void Simulator::set_box_online(model::BoxId box, bool online) {
  if (box >= profile_.size())
    throw std::out_of_range("Simulator::set_box_online");
  if (online_[box] == online) return;
  online_[box] = online;
  // ±delta, not a rescan: churn is per-event, and an O(n) sweep here was a
  // round-loop hot spot of its own at production n with per-round failures.
  const std::uint32_t was = capacity_slots_[box];
  const std::uint32_t is = online ? nominal_capacity_[box] : 0u;
  capacity_slots_[box] = is;
  total_capacity_slots_ = total_capacity_slots_ - was + is;
  debug_check_capacity_total();

  if (online) {
    busy_until_[box] = now_;  // rejoins idle; static storage is intact
    if (sparse_ != nullptr)
      sparse_->on_box_online(box, allocation_.stored(box));
    return;
  }

  ++report_.box_failures;
  // Volatile cache dies with the box; the sparse index also needs to strip
  // the box from the rows of every stripe it could serve.
  scratch_cache_stripes_.clear();
  cache_.remove_box(box,
                    sparse_ != nullptr ? &scratch_cache_stripes_ : nullptr);
  if (sparse_ != nullptr)
    sparse_->on_box_offline(box, allocation_.stored(box),
                            scratch_cache_stripes_);

  // Abort every playback the box was watching and every session that relied
  // on it as the downloading requester (the §4 relay channel).
  std::vector<bool> doomed(sessions_.size(), false);
  for (SessionId id = 0; id < sessions_.size(); ++id) {
    const Session& session = sessions_[id];
    if (!session.aborted && session.ends > now_ && session.box == box)
      doomed[id] = true;
  }
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_.requester[i] == box) doomed[live_.session[i]] = true;
  }
  for (const auto& [round, pending] : pending_) {
    for (const PendingRequest& p : pending) {
      if (p.plan.requester == box) doomed[p.session] = true;
    }
    (void)round;
  }
  for (SessionId id = 0; id < sessions_.size(); ++id) {
    if (doomed[id]) abort_session(id);
  }
}

void Simulator::step(const std::vector<Demand>& demands) {
  if (stalled_ && options_.strict) return;

  // 1. Sessions ending now free their boxes and leave their swarms.
  if (const auto it = end_events_.find(now_); it != end_events_.end()) {
    for (const SessionId id : it->second) {
      const Session& session = sessions_[id];
      if (session.aborted) continue;  // churn already settled this one
      swarms_.leave(session.video);
      ++report_.sessions_completed;
    }
    end_events_.erase(it);
  }

  // 2. Freeze f(t) for the growth rule, then 3./4. admit demands.
  swarms_.begin_round(now_);
  for (const Demand& demand : demands) admit(demand);

  // 5. Activate requests issued this round; drop expired cache entries.
  activate_pending();
  cache_.prune(now_);

  // 6. Connection matching for this round.
  report_.active_requests.add(static_cast<double>(live_.size()));
  sim_counters().rounds.add();
  sim_counters().round_active_requests.observe(live_.size());
  solve_round();

  // 7. Retire requests whose final chunk was delivered.
  if (!(stalled_ && options_.strict)) retire_completed();

  // End-of-round time-series sample (one relaxed load when disabled). The
  // label is the round just simulated.
  if (obs::RoundSeries::active()) obs::RoundSeries::tick(now_);

  report_.peak_swarm = swarms_.peak_size();
  ++now_;
  report_.rounds = now_;
}

RunReport Simulator::run(workload::DemandGenerator& generator,
                         model::Round rounds) {
  for (model::Round t = 0; t < rounds; ++t) {
    const std::vector<Demand> demands = generator.demands(*this);
    step(demands);
    if (stalled_ && options_.strict) break;
  }
  return report_;
}

}  // namespace p2pvod::sim
