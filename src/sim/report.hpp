// RunReport: everything a simulation run measured.
#pragma once

#include <cstdint>
#include <string>

#include "model/ids.hpp"
#include "util/stats.hpp"

namespace p2pvod::sim {

struct RunReport {
  // --- outcome ---
  bool success = true;           ///< no request-round went unserved
  model::Round first_stall = -1; ///< round of the first unserved request (-1 if none)
  std::uint32_t stall_witness_size = 0;  ///< |X| of the Hall-violating set at first stall

  // --- volume ---
  model::Round rounds = 0;
  std::uint64_t demands_admitted = 0;
  std::uint64_t demands_rejected = 0;    ///< box busy (at most one video per box)
  std::uint64_t requests_issued = 0;
  std::uint64_t chunks_served = 0;       ///< request-rounds satisfied
  std::uint64_t chunks_stalled = 0;      ///< request-rounds missed (non-strict mode)
  std::uint64_t sessions_completed = 0;

  // --- churn (box failure extension) ---
  std::uint64_t box_failures = 0;     ///< set_box_online(b, false) events
  std::uint64_t sessions_aborted = 0; ///< playbacks killed by a failure

  // --- quality ---
  util::Histogram startup_delay;         ///< demand round -> first playback round + 1
  util::OnlineStats upload_utilization;  ///< per-round served / capacity
  util::OnlineStats active_requests;     ///< per-round |Y|
  std::uint32_t peak_swarm = 0;

  // --- matcher accounting ---
  std::uint64_t kept_connections = 0;
  std::uint64_t new_connections = 0;
  std::uint64_t matcher_edges = 0;       ///< total candidate edges examined

  // --- candidate-construction accounting (sparse-vs-dense comparisons) ---
  /// Candidate rows collected from ground truth. The dense path pays one per
  /// live request per round; the sparse path only for dirtied rows.
  std::uint64_t rows_built = 0;
  std::uint64_t row_patches = 0;          ///< surgical CSR row edits (sparse)
  std::uint64_t sparse_full_rebuilds = 0; ///< dirty-fraction fallback trips

  // --- topology (zone-aware matching extension; all zero without one) ---
  std::uint64_t intra_zone_chunks = 0;   ///< chunks served within a zone
  std::uint64_t cross_zone_chunks = 0;   ///< chunks served across zones
  /// Connections dropped at a capped zone link in the admission pass
  /// (pass 1 of cap enforcement). Counts every over-cap drop, whether or not
  /// the rescue pass re-seated the request — so rejections alone overstate
  /// lost service; subtract link_cap_rescues for the net loss.
  std::uint64_t link_cap_rejections = 0;
  /// Dropped requests re-seated by the greedy rescue pass (pass 2): served
  /// over another link (or box) with spare budget in the same round. Always
  /// <= link_cap_rejections.
  std::uint64_t link_cap_rescues = 0;
  std::int64_t zone_cost_total = 0;      ///< Σ zone-pair costs of served chunks
  util::OnlineStats cross_zone_fraction; ///< per-round cross-zone share of served

  /// Lifetime cross-zone share of served chunks (0.0 when nothing served or
  /// no topology was attached).
  [[nodiscard]] double cross_zone_share() const noexcept {
    const std::uint64_t total = intra_zone_chunks + cross_zone_chunks;
    return total == 0 ? 0.0
                      : static_cast<double>(cross_zone_chunks) /
                            static_cast<double>(total);
  }

  /// Fraction of request-rounds served (1.0 on success).
  [[nodiscard]] double continuity() const noexcept {
    const std::uint64_t total = chunks_served + chunks_stalled;
    return total == 0 ? 1.0
                      : static_cast<double>(chunks_served) /
                            static_cast<double>(total);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace p2pvod::sim
