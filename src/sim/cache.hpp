// Playback-cache availability index.
//
// §1.1: "a box stores the video it is playing, as data arrives, in a cache
// ... this cache contains all the data most recently viewed up to a video
// file size." §2.2 turns that into the availability rule we index here: the
// data at position (t - t_i) of stripe s is possessed by every box whose own
// request for s was issued at t_j with  t - T <= t_j < t_i  (strictly earlier
// joiners still inside the retention window).
//
// The index stores, per stripe, the cache grants (box, entry round) and
// answers "who can serve request (s, t_i) at round t" — excluding the
// requester itself. Entries older than the window are pruned lazily.
#pragma once

#include <cstdint>
#include <vector>

#include "model/ids.hpp"
#include "sim/request.hpp"

namespace p2pvod::sim {

class CacheIndex {
 public:
  CacheIndex(std::uint32_t stripe_count, model::Round window);

  /// Record that `box` holds the stream of `stripe` as if started at `entry`.
  void grant(model::StripeId stripe, model::BoxId box, model::Round entry);

  /// Append to `out` every box that, per the §2.2 rule, possesses the chunk a
  /// request issued at `issue` needs at round `now`; `exclude` (the
  /// requester) is skipped. Returns the number of boxes appended.
  std::size_t collect_servers(model::StripeId stripe, model::Round issue,
                              model::Round now, model::BoxId exclude,
                              std::vector<model::BoxId>& out) const;

  /// Drop entries that left the retention window (entry < now - window).
  void prune(model::Round now);

  /// Drop every entry of `box` (the box failed: its cache is gone). Returns
  /// the number of entries removed. When `affected` is non-null, the id of
  /// each stripe that lost at least one entry is appended once (the sparse
  /// candidate index needs to know which rows to strip).
  std::uint64_t remove_box(model::BoxId box,
                           std::vector<model::StripeId>* affected = nullptr);

  [[nodiscard]] std::uint64_t entry_count() const noexcept { return entries_; }
  [[nodiscard]] model::Round window() const noexcept { return window_; }

 private:
  struct Entry {
    model::BoxId box;
    model::Round entry;
  };

  std::vector<std::vector<Entry>> per_stripe_;
  model::Round window_;
  std::uint64_t entries_ = 0;
};

}  // namespace p2pvod::sim
