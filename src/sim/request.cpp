#include "sim/request.hpp"

// Header-only records; this translation unit pins the header's syntax into
// the build (and hosts future out-of-line helpers).
