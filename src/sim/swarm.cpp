#include "sim/swarm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2pvod::sim {

SwarmRegistry::SwarmRegistry(std::uint32_t video_count)
    : current_(video_count, 0),
      round_start_(video_count, 0),
      entries_(video_count, 0) {}

std::uint64_t SwarmRegistry::enter(model::VideoId v, model::Round /*now*/) {
  if (v >= current_.size()) throw std::out_of_range("SwarmRegistry::enter");
  const std::uint64_t ticket = entries_[v]++;
  ++current_[v];
  peak_ = std::max(peak_, current_[v]);
  return ticket;
}

void SwarmRegistry::leave(model::VideoId v) {
  if (v >= current_.size()) throw std::out_of_range("SwarmRegistry::leave");
  if (current_[v] == 0)
    throw std::logic_error("SwarmRegistry::leave: empty swarm");
  --current_[v];
}

void SwarmRegistry::begin_round(model::Round /*now*/) {
  round_start_ = current_;
}

std::uint32_t SwarmRegistry::size(model::VideoId v) const {
  if (v >= current_.size()) throw std::out_of_range("SwarmRegistry::size");
  return current_[v];
}

std::uint32_t SwarmRegistry::size_at_round_start(model::VideoId v) const {
  if (v >= round_start_.size())
    throw std::out_of_range("SwarmRegistry::size_at_round_start");
  return round_start_[v];
}

std::uint64_t SwarmRegistry::total_entries(model::VideoId v) const {
  if (v >= entries_.size())
    throw std::out_of_range("SwarmRegistry::total_entries");
  return entries_[v];
}

std::uint32_t SwarmRegistry::admissible_joins(model::VideoId v,
                                              double mu) const {
  const double f0 = std::max<double>(1.0, size_at_round_start(v));
  const auto limit = static_cast<std::uint64_t>(std::ceil(f0 * mu));
  const std::uint32_t now_size = size(v);
  if (now_size >= limit) return 0;
  return static_cast<std::uint32_t>(limit - now_size);
}

}  // namespace p2pvod::sim
