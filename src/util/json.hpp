// Minimal JSON document model, parser, and writer.
//
// The bench driver's machine-readable result sinks (BENCH_<id>.json) and the
// baseline regression diff need structured output without adding a third
// party dependency. This is deliberately small: a Value variant (null, bool,
// number, string, array, object), a strict recursive-descent parser, and a
// writer whose number formatting round-trips doubles. Object keys keep
// insertion order so emitted files diff cleanly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p2pvod::util::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Insertion-ordered; lookup is linear (documents here are tiny).
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() noexcept : kind_(Kind::kNull) {}
  Value(bool value) noexcept : kind_(Kind::kBool), bool_(value) {}
  Value(double value) noexcept : kind_(Kind::kNumber), number_(value) {}
  Value(int value) noexcept : Value(static_cast<double>(value)) {}
  Value(std::int64_t value) noexcept : Value(static_cast<double>(value)) {}
  Value(std::uint64_t value) noexcept : Value(static_cast<double>(value)) {}
  Value(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Value(const char* value) : Value(std::string(value)) {}
  Value(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Value(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const noexcept;
  /// Object member by key; throws std::runtime_error when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Append a member to an object value (throws on non-objects).
  void set(std::string key, Value value);

  /// Serialize. indent < 0 gives a compact single line; indent >= 0 pretty
  /// prints with that many spaces per level. Numbers round-trip: integral
  /// values in the exact double range print without a fraction, others with
  /// max_digits10 precision.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a complete JSON document (trailing garbage is an error). Throws
/// std::runtime_error with a byte offset on malformed input.
[[nodiscard]] Value parse(const std::string& text);

/// Read and parse a JSON file; throws std::runtime_error on I/O failure.
[[nodiscard]] Value parse_file(const std::string& path);

/// Write `value.dump(indent)` plus a trailing newline to `path`; throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace p2pvod::util::json
